/**
 * @file
 * IR tour: the compiler-side workflow for users bringing their own
 * kernels — build, verify, print, parse back, optimize, and execute
 * functionally, all without touching the timed simulator.
 *
 * Build & run:  ./build/examples/ir_tour
 */

#include <cstdio>

#include "ir/interpreter.hh"
#include "ir/ir_builder.hh"
#include "ir/parser.hh"
#include "ir/printer.hh"
#include "ir/verifier.hh"
#include "opt/pass_manager.hh"

using namespace salam;
using namespace salam::ir;

int
main()
{
    // Build: dot product of two i64 vectors.
    Module mod("tour");
    IRBuilder b(mod);
    Context &ctx = b.context();
    Function *fn = b.createFunction("dot", ctx.i64());
    Argument *xs = fn->addArgument(ctx.pointerTo(ctx.i64()), "xs");
    Argument *ys = fn->addArgument(ctx.pointerTo(ctx.i64()), "ys");

    BasicBlock *entry = b.createBlock("entry");
    BasicBlock *loop = b.createBlock("loop");
    BasicBlock *done = b.createBlock("done");
    b.setInsertPoint(entry);
    b.br(loop);
    b.setInsertPoint(loop);
    PhiInst *i = b.phi(ctx.i64(), "i");
    PhiInst *acc = b.phi(ctx.i64(), "acc");
    Value *prod = b.mul(b.load(b.gep(ctx.i64(), xs, i, "px"), "vx"),
                        b.load(b.gep(ctx.i64(), ys, i, "py"), "vy"),
                        "prod");
    Value *acc_next = b.add(acc, prod, "acc.next");
    Value *inext = b.add(i, b.constI64(1), "i.next");
    Value *cond =
        b.icmp(Predicate::SLT, inext, b.constI64(16), "cond");
    b.condBr(cond, loop, done);
    i->addIncoming(b.constI64(0), entry);
    i->addIncoming(inext, loop);
    acc->addIncoming(b.constI64(0), entry);
    acc->addIncoming(acc_next, loop);
    b.setInsertPoint(done);
    b.ret(acc_next);

    // Verify.
    auto problems = Verifier::verify(*fn);
    std::printf("verifier: %zu problems\n", problems.size());

    // Print the LLVM-assembly form...
    std::string text = Printer::toString(mod);
    std::printf("---- printed IR ----\n%s", text.c_str());

    // ...and parse it back (what you would do with IR on disk).
    auto reparsed = Parser::parseModule(text, "reparsed");
    Function *fn2 = reparsed->findFunction("dot");
    std::printf("---- reparsed: @%s, %zu blocks, %zu "
                "instructions ----\n",
                fn2->name().c_str(), fn2->numBlocks(),
                fn2->instructionCount());

    // Optimize the reparsed copy: unroll fully, then clean up.
    opt::PassManager::run(*fn2, {opt::PassSpec::unrollFull("loop"),
                                 opt::PassSpec::cleanup()});
    std::printf("after full unroll + cleanup: %zu blocks, %zu "
                "instructions\n",
                fn2->numBlocks(), fn2->instructionCount());

    // Execute functionally on flat memory.
    FlatMemory memory;
    for (unsigned k = 0; k < 16; ++k) {
        memory.writeI64(0x100 + 8ull * k, k);
        memory.writeI64(0x200 + 8ull * k, 2 * k);
    }
    Interpreter interp(memory);
    RuntimeValue result =
        interp.run(*fn2, {RuntimeValue::fromPointer(0x100),
                          RuntimeValue::fromPointer(0x200)});
    std::printf("dot(xs, ys) = %lld (expected 2480)\n",
                static_cast<long long>(
                    result.asSInt(reparsed->context().i64())));
    return result.asSInt(reparsed->context().i64()) == 2480 ? 0 : 1;
}

/**
 * @file
 * Design-space sweep: the Sec. IV-D workflow — sweep datapath and
 * memory parameters independently and emit a CSV for Pareto
 * analysis (the decoupling that trace-based models cannot offer).
 *
 * Each grid point is an independent Simulation, so the sweep runs
 * on a SweepRunner pool: every point gets its own SimContext and
 * the CSV rows come out in grid order no matter which worker
 * finished first.
 *
 * Build & run:  ./build/examples/design_space_sweep [threads] [telemetry.json] > sweep.csv
 *               (threads: worker count, 0 = all cores, default 1;
 *               telemetry.json: host-telemetry summary + Chrome
 *               trace of per-worker timelines)
 */

#include <cstdio>
#include <cstdlib>

#include "core/compute_unit.hh"
#include "core/power_report.hh"
#include "drive/sweep_runner.hh"
#include "drive/sweep_spec.hh"
#include "kernels/machsuite.hh"
#include "mem/backdoor.hh"
#include "mem/scratchpad.hh"
#include "sim/simulation.hh"

using namespace salam;
using namespace salam::kernels;

namespace
{

struct Point
{
    std::uint64_t cycles;
    double powerMw;
    double areaUm2;
};

Point
evaluate(unsigned unroll, unsigned fp_units, unsigned ports)
{
    auto kernel = makeGemm(16, unroll);
    ir::Module mod("sweep");
    ir::IRBuilder b(mod);
    ir::Function *fn = kernel->buildOptimized(b);

    Simulation sim;
    core::DeviceConfig dev;
    dev.setFuLimit(hw::FuType::FpAddSubDouble, fp_units);
    dev.setFuLimit(hw::FuType::FpMultiplierDouble, fp_units);
    dev.readPortsPerCycle = ports;
    dev.writePortsPerCycle = ports;

    mem::ScratchpadConfig scfg;
    scfg.range = mem::AddrRange{0x10000, 0x10000 + 64 * 1024};
    scfg.readPorts = ports;
    scfg.writePorts = ports;
    auto &spm = sim.create<mem::Scratchpad>("spm", dev.clockPeriod,
                                            scfg);

    core::CommInterfaceConfig ccfg;
    ccfg.mmrRange = mem::AddrRange{0x2000, 0x2000 + 256};
    ccfg.dataPorts.push_back({"spm", {scfg.range}});
    auto &comm = sim.create<core::CommInterface>(
        "comm", dev.clockPeriod, ccfg);
    mem::bindPorts(comm.dataPort(0), spm.port(0));
    auto &cu = sim.create<core::ComputeUnit>("acc", *fn, dev, comm);

    mem::ScratchpadBackdoor backdoor(spm);
    kernel->seed(backdoor, 0x10000);
    cu.start(kernel->args(0x10000));
    sim.run();
    if (!cu.finished() ||
        !kernel->check(backdoor, 0x10000).empty()) {
        fatal("sweep point produced wrong results");
    }

    core::AcceleratorReport report = core::buildReport(cu, &spm);
    return Point{report.cycles, report.power.totalMw(),
                 report.area.totalUm2()};
}

} // namespace

int
main(int argc, char **argv)
{
    // The grid, declared once: axes expand row-major (first axis
    // slowest), exactly the order of the nested loops this replaces.
    drive::SweepSpec spec;
    spec.axis("unroll", {4, 8, 16})
        .axisPow("fp_units", 2, 16)
        .axisPow("ports", 2, 16);

    drive::SweepRunner::Options opts;
    opts.pointAxes = [&](std::size_t idx) {
        return spec.axesJson(idx);
    };
    if (argc > 1)
        opts.threads = static_cast<unsigned>(
            std::strtoul(argv[1], nullptr, 10));
    // Optional second argument: host-telemetry output base — writes
    // the scaling summary JSON there and a Chrome trace with
    // per-worker tracks to "<path>.trace.json".
    const char *telemetry_out = argc > 2 ? argv[2] : nullptr;
    opts.hostTelemetry = telemetry_out != nullptr;
    drive::SweepRunner runner(opts);

    std::vector<Point> points(spec.numPoints());
    auto results =
        runner.run(spec.numPoints(), [&](std::size_t idx) {
            auto v = spec.valuesAt(idx);
            points[idx] =
                evaluate(static_cast<unsigned>(v[0]),
                         static_cast<unsigned>(v[1]),
                         static_cast<unsigned>(v[2]));
            return std::string();
        });

    std::printf("unroll,fp_units,ports,cycles,time_us,power_mw,"
                "area_um2\n");
    for (std::size_t i = 0; i < spec.numPoints(); ++i) {
        if (!results[i].ok) {
            std::fprintf(stderr, "point %zu failed: %s\n", i,
                         results[i].error.c_str());
            continue;
        }
        auto v = spec.valuesAt(i);
        const Point &p = points[i];
        std::printf("%llu,%llu,%llu,%llu,%.2f,%.3f,%.0f\n",
                    static_cast<unsigned long long>(v[0]),
                    static_cast<unsigned long long>(v[1]),
                    static_cast<unsigned long long>(v[2]),
                    static_cast<unsigned long long>(p.cycles),
                    static_cast<double>(p.cycles) / 100.0,
                    p.powerMw, p.areaUm2);
    }
    std::fprintf(stderr, "# %zu points, %u threads, %.2fs wall\n",
                 spec.numPoints(), runner.lastThreads(),
                 runner.lastWallSeconds());
    if (telemetry_out != nullptr &&
        !runner.writeHostTelemetryFiles(telemetry_out,
                                        "design_space_sweep")) {
        std::fprintf(stderr, "# could not write host telemetry\n");
        return 1;
    }
    if (runner.interrupted())
        return drive::SweepRunner::interruptedExitCode;
    return 0;
}

/**
 * @file
 * Design-space sweep: the Sec. IV-D workflow — sweep datapath and
 * memory parameters independently and emit a CSV for Pareto
 * analysis (the decoupling that trace-based models cannot offer).
 *
 * Build & run:  ./build/examples/design_space_sweep > sweep.csv
 */

#include <cstdio>

#include "core/compute_unit.hh"
#include "core/power_report.hh"
#include "kernels/machsuite.hh"
#include "mem/backdoor.hh"
#include "mem/scratchpad.hh"
#include "sim/simulation.hh"

using namespace salam;
using namespace salam::kernels;

namespace
{

struct Point
{
    std::uint64_t cycles;
    double powerMw;
    double areaUm2;
};

Point
evaluate(unsigned unroll, unsigned fp_units, unsigned ports)
{
    auto kernel = makeGemm(16, unroll);
    ir::Module mod("sweep");
    ir::IRBuilder b(mod);
    ir::Function *fn = kernel->buildOptimized(b);

    Simulation sim;
    core::DeviceConfig dev;
    dev.setFuLimit(hw::FuType::FpAddSubDouble, fp_units);
    dev.setFuLimit(hw::FuType::FpMultiplierDouble, fp_units);
    dev.readPortsPerCycle = ports;
    dev.writePortsPerCycle = ports;

    mem::ScratchpadConfig scfg;
    scfg.range = mem::AddrRange{0x10000, 0x10000 + 64 * 1024};
    scfg.readPorts = ports;
    scfg.writePorts = ports;
    auto &spm = sim.create<mem::Scratchpad>("spm", dev.clockPeriod,
                                            scfg);

    core::CommInterfaceConfig ccfg;
    ccfg.mmrRange = mem::AddrRange{0x2000, 0x2000 + 256};
    ccfg.dataPorts.push_back({"spm", {scfg.range}});
    auto &comm = sim.create<core::CommInterface>(
        "comm", dev.clockPeriod, ccfg);
    mem::bindPorts(comm.dataPort(0), spm.port(0));
    auto &cu = sim.create<core::ComputeUnit>("acc", *fn, dev, comm);

    mem::ScratchpadBackdoor backdoor(spm);
    kernel->seed(backdoor, 0x10000);
    cu.start(kernel->args(0x10000));
    sim.run();
    if (!cu.finished() ||
        !kernel->check(backdoor, 0x10000).empty()) {
        fatal("sweep point produced wrong results");
    }

    core::AcceleratorReport report = core::buildReport(cu, &spm);
    return Point{report.cycles, report.power.totalMw(),
                 report.area.totalUm2()};
}

} // namespace

int
main()
{
    std::printf("unroll,fp_units,ports,cycles,time_us,power_mw,"
                "area_um2\n");
    for (unsigned unroll : {4u, 8u, 16u}) {
        for (unsigned fp_units : {2u, 4u, 8u, 16u}) {
            for (unsigned ports : {2u, 4u, 8u, 16u}) {
                Point p = evaluate(unroll, fp_units, ports);
                std::printf("%u,%u,%u,%llu,%.2f,%.3f,%.0f\n",
                            unroll, fp_units, ports,
                            static_cast<unsigned long long>(
                                p.cycles),
                            static_cast<double>(p.cycles) / 100.0,
                            p.powerMw, p.areaUm2);
            }
        }
    }
    return 0;
}

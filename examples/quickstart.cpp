/**
 * @file
 * Quickstart: simulate one accelerator in five steps.
 *
 *   1. Express the kernel in IR through the IRBuilder (the role
 *      clang plays in the original gem5-SALAM flow).
 *   2. Apply optimizations (unrolling controls datapath ILP).
 *   3. Build a small system: scratchpad + communications interface
 *      + compute unit.
 *   4. Seed data, run, and read results back.
 *   5. Inspect cycles, power, and area.
 *
 * Build & run:  ./build/examples/quickstart
 *
 * Observability (both optional):
 *   --trace-out <file>   write a Chrome trace_event JSON trace
 *                        (load it at https://ui.perfetto.dev)
 *   --report-out <file>  append a machine-readable run report
 */

#include <cstdio>
#include <cstring>

#include "core/compute_unit.hh"
#include "core/power_report.hh"
#include "ir/ir_builder.hh"
#include "mem/backdoor.hh"
#include "mem/scratchpad.hh"
#include "obs/run_report.hh"
#include "opt/pass_manager.hh"
#include "sim/simulation.hh"

using namespace salam;

int
main(int argc, char **argv)
{
    const char *trace_out = nullptr;
    const char *report_out = nullptr;
    for (int k = 1; k < argc; ++k) {
        if (std::strcmp(argv[k], "--trace-out") == 0 && k + 1 < argc)
            trace_out = argv[++k];
        else if (std::strcmp(argv[k], "--report-out") == 0 &&
                 k + 1 < argc)
            report_out = argv[++k];
        else
            fatal("usage: quickstart [--trace-out FILE] "
                  "[--report-out FILE]");
    }
    // ---- 1. The kernel: y[i] = a * x[i] + y[i] over 64 doubles.
    ir::Module mod("quickstart");
    ir::IRBuilder b(mod);
    ir::Context &ctx = b.context();
    const ir::Type *f64 = ctx.doubleType();

    ir::Function *fn = b.createFunction("daxpy", ctx.voidType());
    ir::Argument *a = fn->addArgument(f64, "a");
    ir::Argument *x = fn->addArgument(ctx.pointerTo(f64), "x");
    ir::Argument *y = fn->addArgument(ctx.pointerTo(f64), "y");

    ir::BasicBlock *entry = b.createBlock("entry");
    ir::BasicBlock *loop = b.createBlock("loop");
    ir::BasicBlock *done = b.createBlock("done");

    b.setInsertPoint(entry);
    b.br(loop);

    b.setInsertPoint(loop);
    ir::PhiInst *i = b.phi(ctx.i64(), "i");
    ir::Value *px = b.gep(f64, x, i, "px");
    ir::Value *py = b.gep(f64, y, i, "py");
    ir::Value *sum = b.fadd(b.fmul(a, b.load(px, "vx"), "ax"),
                            b.load(py, "vy"), "sum");
    b.store(sum, py);
    ir::Value *inext = b.add(i, b.constI64(1), "i.next");
    ir::Value *cond = b.icmp(ir::Predicate::SLT, inext,
                             b.constI64(64), "cond");
    b.condBr(cond, loop, done);
    i->addIncoming(b.constI64(0), entry);
    i->addIncoming(inext, loop);

    b.setInsertPoint(done);
    b.ret();

    // ---- 2. Optimize: unroll by 8 for an 8-wide datapath.
    opt::PassManager::run(*fn, {opt::PassSpec::unroll("loop", 8),
                                opt::PassSpec::cleanup()});

    // ---- 3. The system: SPM + CommInterface + ComputeUnit.
    Simulation sim;
    if (trace_out != nullptr)
        sim.enableTracing();
    core::DeviceConfig dev; // 100 MHz, 1-to-1 FU map by default
    dev.readPortsPerCycle = 8;
    dev.writePortsPerCycle = 8;

    mem::ScratchpadConfig scfg;
    scfg.range = mem::AddrRange{0x10000, 0x10000 + 64 * 1024};
    scfg.readPorts = 8;
    scfg.writePorts = 8;
    auto &spm = sim.create<mem::Scratchpad>("spm", dev.clockPeriod,
                                            scfg);

    core::CommInterfaceConfig ccfg;
    ccfg.mmrRange = mem::AddrRange{0x2000, 0x2000 + 256};
    ccfg.dataPorts.push_back({"spm", {scfg.range}});
    auto &comm = sim.create<core::CommInterface>(
        "comm", dev.clockPeriod, ccfg);
    mem::bindPorts(comm.dataPort(0), spm.port(0));

    auto &cu = sim.create<core::ComputeUnit>("acc", *fn, dev, comm);

    // ---- 4. Seed inputs, run, verify.
    const std::uint64_t xa = 0x10000, ya = 0x12000;
    mem::ScratchpadBackdoor backdoor(spm);
    for (int k = 0; k < 64; ++k) {
        backdoor.writeF64(xa + 8u * static_cast<unsigned>(k), k);
        backdoor.writeF64(ya + 8u * static_cast<unsigned>(k),
                          100.0);
    }
    cu.start({ir::RuntimeValue::fromDouble(0.5),
              ir::RuntimeValue::fromPointer(xa),
              ir::RuntimeValue::fromPointer(ya)});
    sim.run();

    bool ok = true;
    for (int k = 0; k < 64; ++k) {
        double got =
            backdoor.readF64(ya + 8u * static_cast<unsigned>(k));
        ok &= (got == 100.0 + 0.5 * k);
    }

    // ---- 5. Report.
    core::AcceleratorReport report = core::buildReport(cu, &spm);
    std::printf("daxpy results: %s\n", ok ? "CORRECT" : "WRONG");
    std::printf("cycles:        %llu (%.2f us @ 100 MHz)\n",
                static_cast<unsigned long long>(report.cycles),
                report.runtimeNs / 1000.0);
    std::printf("power:         %.3f mW (%.3f dynamic, %.3f "
                "static)\n",
                report.power.totalMw(),
                report.power.dynamicTotalMw(),
                report.power.staticTotalMw());
    std::printf("area:          %.0f um^2 datapath, %.0f um^2 "
                "SPM\n",
                report.area.fuUm2 + report.area.registerUm2,
                report.area.spmUm2);

    // ---- 6. Optional machine-readable outputs.
    sim.finalizeAll();
    if (obs::TraceSink *sink = sim.traceSink()) {
        if (!sink->writeChromeTraceFile(trace_out))
            fatal("could not write trace to '%s'", trace_out);
        std::printf("trace:         %s (%zu events)\n", trace_out,
                    sink->size());
    }
    if (report_out != nullptr) {
        obs::RunReport run_report;
        run_report.run = "quickstart.daxpy";
        for (int k = 0; k < argc; ++k) {
            if (k > 0)
                run_report.commandLine += ' ';
            run_report.commandLine += argv[k];
        }
        run_report.configHash =
            obs::fnv1aHash("quickstart.daxpy|n=64");
        run_report.cycles = report.cycles;
        run_report.extra = {
            {"power_mw", report.power.totalMw()},
            {"spm_reads",
             static_cast<double>(spm.readCount())},
            {"spm_writes",
             static_cast<double>(spm.writeCount())},
        };
        run_report.statsJson = sim.stats().dumpJsonString();
        if (!run_report.appendToFile(report_out))
            fatal("could not append run report to '%s'", report_out);
        std::printf("run report:    %s\n", report_out);
    }
    return ok ? 0 : 1;
}

/**
 * @file
 * CNN pipeline: three accelerators (conv3x3, ReLU, maxpool2x2)
 * chained through stream buffers inside one cluster — the
 * self-synchronizing integration of Fig. 16(c), on the public API.
 *
 * The host stages the image into the convolution accelerator's
 * private scratchpad with a DMA, starts all three stages at once,
 * and only hears back when the final stage interrupts. No central
 * controller synchronizes the stages: the FIFO handshakes do.
 *
 * Build & run:  ./build/examples/cnn_pipeline
 */

#include <algorithm>
#include <cstdio>
#include <vector>

#include "kernels/machsuite.hh"
#include "sys/system.hh"

using namespace salam;
using namespace salam::kernels;
using namespace salam::sys;
using namespace salam::mem;

int
main()
{
    constexpr unsigned W = 32, H = 32;
    constexpr unsigned CW = W - 2, CH = H - 2;

    Simulation sim;
    SalamSystem sys(sim);
    auto &cluster = sys.addCluster("cnn", periodFromMhz(100));

    ScratchpadConfig proto;
    proto.readPorts = 4;
    proto.writePorts = 4;
    proto.numPorts = 2;
    auto &conv_spm = cluster.addSpm("conv_spm", 16 * 1024, proto);
    auto &pool_spm = cluster.addSpm("pool_spm", 16 * 1024, proto);
    cluster.localXbar().connectDevice(conv_spm.port(1),
                                      conv_spm.config().range);
    cluster.localXbar().connectDevice(pool_spm.port(1),
                                      pool_spm.config().range);

    auto &fifo1 = cluster.addStreamBuffer("fifo1", 64);
    auto &fifo2 = cluster.addStreamBuffer("fifo2", 64);

    auto &dma = cluster.addDma("dma");
    unsigned dma_irq = sys.allocateIrq();
    dma.setIrqCallback(sys.gic().lineCallback(dma_irq));

    // Kernels: conv streams out; relu streams through; pool
    // streams in and writes its private SPM.
    ir::Module mod("cnn");
    ir::IRBuilder b(mod);
    ir::Function *conv_fn = makeConv2d(W, H, true)->build(b);
    ir::Function *relu_fn = makeRelu(CW * CH, true, true)->build(b);
    ir::Function *pool_fn =
        makeMaxPool(CW, CH, true, false)->build(b);

    auto &conv = cluster.addAccelerator(
        "conv", *conv_fn, {},
        {{"spm", {conv_spm.config().range}, false},
         {"out", {fifo1.config().writeRange}, false}});
    bindPorts(conv.comm->dataPort(0), conv_spm.port(0));
    bindPorts(conv.comm->dataPort(1), fifo1.writePort());

    auto &relu = cluster.addAccelerator(
        "relu", *relu_fn, {},
        {{"in", {fifo1.config().readRange}, false},
         {"out", {fifo2.config().writeRange}, false}});
    bindPorts(relu.comm->dataPort(0), fifo1.readPort());
    bindPorts(relu.comm->dataPort(1), fifo2.writePort());

    auto &pool = cluster.addAccelerator(
        "pool", *pool_fn, {},
        {{"in", {fifo2.config().readRange}, false},
         {"spm", {pool_spm.config().range}, false}});
    bindPorts(pool.comm->dataPort(0), fifo2.readPort());
    bindPorts(pool.comm->dataPort(1), pool_spm.port(0));

    // Stage image + weights in DRAM.
    kernels::Lcg rng(42);
    std::vector<float> image(W * H + 9);
    for (auto &v : image)
        v = static_cast<float>(rng.nextDouble()) - 0.5f;
    std::uint64_t dram_in = SystemAddressMap::dramBase + 0x1000;
    std::uint64_t dram_out = SystemAddressMap::dramBase + 0x9000;
    sys.dram().backdoorWrite(dram_in, image.data(),
                             image.size() * 4);

    std::uint64_t conv_in = conv_spm.config().range.start;
    std::uint64_t conv_wts = conv_in + 4ull * W * H;
    std::uint64_t rowbuf = pool_spm.config().range.start;
    std::uint64_t pool_out = rowbuf + 0x200;
    std::uint64_t out_bytes = 4ull * (CW / 2) * (CH / 2);

    DriverCpu &host = sys.host();
    host.push(HostOp::mark("begin"));
    driver::pushDmaTransfer(host, dma.config().mmrRange.start,
                            dram_in, conv_in, image.size() * 4);
    host.push(HostOp::waitIrq(dma_irq));
    driver::pushAcceleratorStart(
        host, pool,
        {fifo2.config().readRange.start, rowbuf, pool_out});
    driver::pushAcceleratorStart(
        host, relu,
        {fifo1.config().readRange.start,
         fifo2.config().writeRange.start});
    driver::pushAcceleratorStart(
        host, conv,
        {conv_in, conv_wts, fifo1.config().writeRange.start});
    host.push(HostOp::waitIrq(pool.irqId));
    driver::pushDmaTransfer(host, dma.config().mmrRange.start,
                            pool_out, dram_out, out_bytes);
    host.push(HostOp::waitIrq(dma_irq));
    host.push(HostOp::mark("end"));
    sys.run();

    // Verify against a host-side golden model.
    const float *wts = image.data() + W * H;
    bool ok = true;
    for (unsigned r = 0; r < CH / 2 && ok; ++r) {
        for (unsigned c = 0; c < CW / 2 && ok; ++c) {
            float best = 0.0f;
            for (unsigned dr = 0; dr < 2; ++dr) {
                for (unsigned dc = 0; dc < 2; ++dc) {
                    unsigned rr = 2 * r + dr, cc = 2 * c + dc;
                    float acc = 0.0f;
                    for (unsigned k1 = 0; k1 < 3; ++k1)
                        for (unsigned k2 = 0; k2 < 3; ++k2)
                            acc += wts[k1 * 3 + k2] *
                                image[(rr + k1) * W + cc + k2];
                    best = std::max(best, std::max(acc, 0.0f));
                }
            }
            float got = 0;
            sys.dram().backdoorRead(
                dram_out + 4ull * (r * (CW / 2) + c), &got, 4);
            ok = std::abs(got - best) < 1e-4f;
        }
    }

    double us = static_cast<double>(host.markAt("end") -
                                    host.markAt("begin")) /
        1e6;
    std::printf("cnn pipeline: %s, end-to-end %.2f us, %llu bytes "
                "streamed through fifo1\n",
                ok ? "CORRECT" : "WRONG", us,
                static_cast<unsigned long long>(
                    fifo1.bytesStreamed()));
    std::printf("cumulative FIFO wait (summed across requests): "
                "consumer %.2f us, producer %.2f us\n",
                static_cast<double>(fifo1.consumerStallTicks()) /
                    1e6,
                static_cast<double>(fifo1.producerStallTicks()) /
                    1e6);
    return ok ? 0 : 1;
}

/**
 * @file
 * Multi-cluster: two accelerator clusters sharing DRAM through the
 * global crossbar, running different kernels concurrently — the
 * scalable accelerator-rich-SoC composition of Sec. III-D2.
 *
 * Cluster 0 runs stencil2d, cluster 1 runs NW; both are programmed
 * by the same host, execute in parallel, and report completion by
 * interrupt. The bench prints per-cluster and overlapped timings to
 * show the concurrency.
 *
 * Build & run:  ./build/examples/multi_cluster
 */

#include <algorithm>
#include <cstdio>

#include "kernels/machsuite.hh"
#include "mem/backdoor.hh"
#include "sys/system.hh"

using namespace salam;
using namespace salam::kernels;
using namespace salam::sys;
using namespace salam::mem;

namespace
{

struct ClusterSetup
{
    AcceleratorCluster *cluster = nullptr;
    Scratchpad *spm = nullptr;
    ClusterAccelerator *accel = nullptr;
    std::unique_ptr<Kernel> kernel;
    std::uint64_t dataBase = 0;
};

ClusterSetup
buildCluster(SalamSystem &sys, ir::IRBuilder &b,
             std::unique_ptr<Kernel> kernel, const char *name,
             unsigned index)
{
    ClusterSetup setup;
    setup.kernel = std::move(kernel);
    setup.cluster =
        &sys.addCluster(name, periodFromMhz(100), index);

    std::uint64_t bytes =
        ((setup.kernel->footprintBytes() + 0xFFF) & ~0xFFFull) +
        0x1000;
    ScratchpadConfig proto;
    proto.readPorts = 4;
    proto.writePorts = 4;
    setup.spm = &setup.cluster->addSpm("spm", bytes, proto);

    ir::Function *fn = setup.kernel->buildOptimized(b);
    setup.accel = &setup.cluster->addAccelerator(
        name, *fn, {},
        {{"spm", {setup.spm->config().range}, false}});
    bindPorts(setup.accel->comm->dataPort(0), setup.spm->port(0));

    setup.dataBase = setup.spm->config().range.start;
    ScratchpadBackdoor backdoor(*setup.spm);
    setup.kernel->seed(backdoor, setup.dataBase);
    return setup;
}

} // namespace

int
main()
{
    Simulation sim;
    SalamSystem sys(sim);
    ir::Module mod("multi");
    ir::IRBuilder b(mod);

    ClusterSetup c0 =
        buildCluster(sys, b, makeStencil2d(), "stencil", 0);
    ClusterSetup c1 = buildCluster(sys, b, makeNw(), "nw", 1);

    // Program both accelerators back to back, then wait for both:
    // they execute concurrently on their own clusters.
    DriverCpu &host = sys.host();
    host.push(HostOp::mark("begin"));
    for (ClusterSetup *setup : {&c0, &c1}) {
        std::vector<std::uint64_t> arg_bits;
        for (const auto &arg :
             setup->kernel->args(setup->dataBase)) {
            arg_bits.push_back(arg.bits);
        }
        driver::pushAcceleratorStart(host, *setup->accel,
                                     arg_bits);
    }
    host.push(HostOp::waitIrq(c0.accel->irqId));
    host.push(HostOp::mark("stencil.done"));
    host.push(HostOp::waitIrq(c1.accel->irqId));
    host.push(HostOp::mark("nw.done"));
    sys.run();

    bool ok = true;
    for (ClusterSetup *setup : {&c0, &c1}) {
        ScratchpadBackdoor backdoor(*setup->spm);
        std::string failure =
            setup->kernel->check(backdoor, setup->dataBase);
        if (!failure.empty()) {
            std::printf("%s FAILED: %s\n",
                        setup->kernel->name().c_str(),
                        failure.c_str());
            ok = false;
        }
    }

    auto us = [&](const char *m) {
        return static_cast<double>(host.markAt(m) -
                                   host.markAt("begin")) /
            1e6;
    };
    double stencil_cycles = static_cast<double>(
        c0.accel->cu->cycleCount());
    double nw_cycles =
        static_cast<double>(c1.accel->cu->cycleCount());
    double total = std::max(us("stencil.done"), us("nw.done"));
    double serial = (stencil_cycles + nw_cycles) / 100.0;

    std::printf("results: %s\n", ok ? "CORRECT" : "WRONG");
    std::printf("stencil2d: %.0f cycles, nw: %.0f cycles\n",
                stencil_cycles, nw_cycles);
    std::printf("overlapped end-to-end: %.2f us (serial would be "
                ">= %.2f us)\n",
                total, serial);
    std::printf("concurrency benefit: %.2fx\n", serial / total);
    return ok ? 0 : 1;
}

file(REMOVE_RECURSE
  "CMakeFiles/salam_sys.dir/driver_cpu.cc.o"
  "CMakeFiles/salam_sys.dir/driver_cpu.cc.o.d"
  "CMakeFiles/salam_sys.dir/system.cc.o"
  "CMakeFiles/salam_sys.dir/system.cc.o.d"
  "libsalam_sys.a"
  "libsalam_sys.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/salam_sys.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

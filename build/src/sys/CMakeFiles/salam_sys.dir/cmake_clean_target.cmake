file(REMOVE_RECURSE
  "libsalam_sys.a"
)

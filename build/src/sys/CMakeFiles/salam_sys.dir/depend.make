# Empty dependencies file for salam_sys.
# This may be replaced when dependencies are built.

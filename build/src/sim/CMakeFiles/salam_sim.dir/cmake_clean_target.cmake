file(REMOVE_RECURSE
  "libsalam_sim.a"
)

# Empty dependencies file for salam_sim.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/salam_sim.dir/event_queue.cc.o"
  "CMakeFiles/salam_sim.dir/event_queue.cc.o.d"
  "CMakeFiles/salam_sim.dir/logging.cc.o"
  "CMakeFiles/salam_sim.dir/logging.cc.o.d"
  "CMakeFiles/salam_sim.dir/sim_object.cc.o"
  "CMakeFiles/salam_sim.dir/sim_object.cc.o.d"
  "CMakeFiles/salam_sim.dir/simulation.cc.o"
  "CMakeFiles/salam_sim.dir/simulation.cc.o.d"
  "CMakeFiles/salam_sim.dir/statistics.cc.o"
  "CMakeFiles/salam_sim.dir/statistics.cc.o.d"
  "libsalam_sim.a"
  "libsalam_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/salam_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for salam_baseline.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/salam_baseline.dir/aladdin.cc.o"
  "CMakeFiles/salam_baseline.dir/aladdin.cc.o.d"
  "CMakeFiles/salam_baseline.dir/trace.cc.o"
  "CMakeFiles/salam_baseline.dir/trace.cc.o.d"
  "libsalam_baseline.a"
  "libsalam_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/salam_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libsalam_baseline.a"
)

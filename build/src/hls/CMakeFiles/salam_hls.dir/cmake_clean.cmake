file(REMOVE_RECURSE
  "CMakeFiles/salam_hls.dir/dc_estimator.cc.o"
  "CMakeFiles/salam_hls.dir/dc_estimator.cc.o.d"
  "CMakeFiles/salam_hls.dir/hls_scheduler.cc.o"
  "CMakeFiles/salam_hls.dir/hls_scheduler.cc.o.d"
  "libsalam_hls.a"
  "libsalam_hls.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/salam_hls.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

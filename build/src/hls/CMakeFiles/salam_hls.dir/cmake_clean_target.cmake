file(REMOVE_RECURSE
  "libsalam_hls.a"
)

# Empty compiler generated dependencies file for salam_hls.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/opt/clone.cc" "src/opt/CMakeFiles/salam_opt.dir/clone.cc.o" "gcc" "src/opt/CMakeFiles/salam_opt.dir/clone.cc.o.d"
  "/root/repo/src/opt/fold.cc" "src/opt/CMakeFiles/salam_opt.dir/fold.cc.o" "gcc" "src/opt/CMakeFiles/salam_opt.dir/fold.cc.o.d"
  "/root/repo/src/opt/loop_analysis.cc" "src/opt/CMakeFiles/salam_opt.dir/loop_analysis.cc.o" "gcc" "src/opt/CMakeFiles/salam_opt.dir/loop_analysis.cc.o.d"
  "/root/repo/src/opt/pass_manager.cc" "src/opt/CMakeFiles/salam_opt.dir/pass_manager.cc.o" "gcc" "src/opt/CMakeFiles/salam_opt.dir/pass_manager.cc.o.d"
  "/root/repo/src/opt/unroll.cc" "src/opt/CMakeFiles/salam_opt.dir/unroll.cc.o" "gcc" "src/opt/CMakeFiles/salam_opt.dir/unroll.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/salam_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/salam_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/salam_opt.dir/clone.cc.o"
  "CMakeFiles/salam_opt.dir/clone.cc.o.d"
  "CMakeFiles/salam_opt.dir/fold.cc.o"
  "CMakeFiles/salam_opt.dir/fold.cc.o.d"
  "CMakeFiles/salam_opt.dir/loop_analysis.cc.o"
  "CMakeFiles/salam_opt.dir/loop_analysis.cc.o.d"
  "CMakeFiles/salam_opt.dir/pass_manager.cc.o"
  "CMakeFiles/salam_opt.dir/pass_manager.cc.o.d"
  "CMakeFiles/salam_opt.dir/unroll.cc.o"
  "CMakeFiles/salam_opt.dir/unroll.cc.o.d"
  "libsalam_opt.a"
  "libsalam_opt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/salam_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

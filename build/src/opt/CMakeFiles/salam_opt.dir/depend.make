# Empty dependencies file for salam_opt.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libsalam_opt.a"
)

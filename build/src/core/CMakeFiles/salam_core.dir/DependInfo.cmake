
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/comm_interface.cc" "src/core/CMakeFiles/salam_core.dir/comm_interface.cc.o" "gcc" "src/core/CMakeFiles/salam_core.dir/comm_interface.cc.o.d"
  "/root/repo/src/core/compute_unit.cc" "src/core/CMakeFiles/salam_core.dir/compute_unit.cc.o" "gcc" "src/core/CMakeFiles/salam_core.dir/compute_unit.cc.o.d"
  "/root/repo/src/core/dma.cc" "src/core/CMakeFiles/salam_core.dir/dma.cc.o" "gcc" "src/core/CMakeFiles/salam_core.dir/dma.cc.o.d"
  "/root/repo/src/core/power_report.cc" "src/core/CMakeFiles/salam_core.dir/power_report.cc.o" "gcc" "src/core/CMakeFiles/salam_core.dir/power_report.cc.o.d"
  "/root/repo/src/core/runtime_engine.cc" "src/core/CMakeFiles/salam_core.dir/runtime_engine.cc.o" "gcc" "src/core/CMakeFiles/salam_core.dir/runtime_engine.cc.o.d"
  "/root/repo/src/core/static_cdfg.cc" "src/core/CMakeFiles/salam_core.dir/static_cdfg.cc.o" "gcc" "src/core/CMakeFiles/salam_core.dir/static_cdfg.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/salam_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/salam_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/salam_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/salam_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

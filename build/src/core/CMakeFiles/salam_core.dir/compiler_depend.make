# Empty compiler generated dependencies file for salam_core.
# This may be replaced when dependencies are built.

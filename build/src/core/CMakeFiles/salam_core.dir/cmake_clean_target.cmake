file(REMOVE_RECURSE
  "libsalam_core.a"
)

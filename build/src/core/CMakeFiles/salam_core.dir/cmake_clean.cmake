file(REMOVE_RECURSE
  "CMakeFiles/salam_core.dir/comm_interface.cc.o"
  "CMakeFiles/salam_core.dir/comm_interface.cc.o.d"
  "CMakeFiles/salam_core.dir/compute_unit.cc.o"
  "CMakeFiles/salam_core.dir/compute_unit.cc.o.d"
  "CMakeFiles/salam_core.dir/dma.cc.o"
  "CMakeFiles/salam_core.dir/dma.cc.o.d"
  "CMakeFiles/salam_core.dir/power_report.cc.o"
  "CMakeFiles/salam_core.dir/power_report.cc.o.d"
  "CMakeFiles/salam_core.dir/runtime_engine.cc.o"
  "CMakeFiles/salam_core.dir/runtime_engine.cc.o.d"
  "CMakeFiles/salam_core.dir/static_cdfg.cc.o"
  "CMakeFiles/salam_core.dir/static_cdfg.cc.o.d"
  "libsalam_core.a"
  "libsalam_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/salam_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/salam_kernels.dir/bfs.cc.o"
  "CMakeFiles/salam_kernels.dir/bfs.cc.o.d"
  "CMakeFiles/salam_kernels.dir/cnn.cc.o"
  "CMakeFiles/salam_kernels.dir/cnn.cc.o.d"
  "CMakeFiles/salam_kernels.dir/fft.cc.o"
  "CMakeFiles/salam_kernels.dir/fft.cc.o.d"
  "CMakeFiles/salam_kernels.dir/gemm.cc.o"
  "CMakeFiles/salam_kernels.dir/gemm.cc.o.d"
  "CMakeFiles/salam_kernels.dir/kernel.cc.o"
  "CMakeFiles/salam_kernels.dir/kernel.cc.o.d"
  "CMakeFiles/salam_kernels.dir/md.cc.o"
  "CMakeFiles/salam_kernels.dir/md.cc.o.d"
  "CMakeFiles/salam_kernels.dir/nw.cc.o"
  "CMakeFiles/salam_kernels.dir/nw.cc.o.d"
  "CMakeFiles/salam_kernels.dir/spmv.cc.o"
  "CMakeFiles/salam_kernels.dir/spmv.cc.o.d"
  "CMakeFiles/salam_kernels.dir/stencil.cc.o"
  "CMakeFiles/salam_kernels.dir/stencil.cc.o.d"
  "libsalam_kernels.a"
  "libsalam_kernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/salam_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

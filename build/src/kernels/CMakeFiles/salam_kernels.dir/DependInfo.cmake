
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kernels/bfs.cc" "src/kernels/CMakeFiles/salam_kernels.dir/bfs.cc.o" "gcc" "src/kernels/CMakeFiles/salam_kernels.dir/bfs.cc.o.d"
  "/root/repo/src/kernels/cnn.cc" "src/kernels/CMakeFiles/salam_kernels.dir/cnn.cc.o" "gcc" "src/kernels/CMakeFiles/salam_kernels.dir/cnn.cc.o.d"
  "/root/repo/src/kernels/fft.cc" "src/kernels/CMakeFiles/salam_kernels.dir/fft.cc.o" "gcc" "src/kernels/CMakeFiles/salam_kernels.dir/fft.cc.o.d"
  "/root/repo/src/kernels/gemm.cc" "src/kernels/CMakeFiles/salam_kernels.dir/gemm.cc.o" "gcc" "src/kernels/CMakeFiles/salam_kernels.dir/gemm.cc.o.d"
  "/root/repo/src/kernels/kernel.cc" "src/kernels/CMakeFiles/salam_kernels.dir/kernel.cc.o" "gcc" "src/kernels/CMakeFiles/salam_kernels.dir/kernel.cc.o.d"
  "/root/repo/src/kernels/md.cc" "src/kernels/CMakeFiles/salam_kernels.dir/md.cc.o" "gcc" "src/kernels/CMakeFiles/salam_kernels.dir/md.cc.o.d"
  "/root/repo/src/kernels/nw.cc" "src/kernels/CMakeFiles/salam_kernels.dir/nw.cc.o" "gcc" "src/kernels/CMakeFiles/salam_kernels.dir/nw.cc.o.d"
  "/root/repo/src/kernels/spmv.cc" "src/kernels/CMakeFiles/salam_kernels.dir/spmv.cc.o" "gcc" "src/kernels/CMakeFiles/salam_kernels.dir/spmv.cc.o.d"
  "/root/repo/src/kernels/stencil.cc" "src/kernels/CMakeFiles/salam_kernels.dir/stencil.cc.o" "gcc" "src/kernels/CMakeFiles/salam_kernels.dir/stencil.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/salam_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/opt/CMakeFiles/salam_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/salam_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

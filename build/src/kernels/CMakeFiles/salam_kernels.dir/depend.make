# Empty dependencies file for salam_kernels.
# This may be replaced when dependencies are built.

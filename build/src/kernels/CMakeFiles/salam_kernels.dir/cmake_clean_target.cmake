file(REMOVE_RECURSE
  "libsalam_kernels.a"
)

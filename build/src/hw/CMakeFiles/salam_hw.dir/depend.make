# Empty dependencies file for salam_hw.
# This may be replaced when dependencies are built.

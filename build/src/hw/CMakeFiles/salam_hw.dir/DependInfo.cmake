
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hw/cacti_lite.cc" "src/hw/CMakeFiles/salam_hw.dir/cacti_lite.cc.o" "gcc" "src/hw/CMakeFiles/salam_hw.dir/cacti_lite.cc.o.d"
  "/root/repo/src/hw/functional_unit.cc" "src/hw/CMakeFiles/salam_hw.dir/functional_unit.cc.o" "gcc" "src/hw/CMakeFiles/salam_hw.dir/functional_unit.cc.o.d"
  "/root/repo/src/hw/hardware_profile.cc" "src/hw/CMakeFiles/salam_hw.dir/hardware_profile.cc.o" "gcc" "src/hw/CMakeFiles/salam_hw.dir/hardware_profile.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/salam_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/salam_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "libsalam_hw.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/salam_hw.dir/cacti_lite.cc.o"
  "CMakeFiles/salam_hw.dir/cacti_lite.cc.o.d"
  "CMakeFiles/salam_hw.dir/functional_unit.cc.o"
  "CMakeFiles/salam_hw.dir/functional_unit.cc.o.d"
  "CMakeFiles/salam_hw.dir/hardware_profile.cc.o"
  "CMakeFiles/salam_hw.dir/hardware_profile.cc.o.d"
  "libsalam_hw.a"
  "libsalam_hw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/salam_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for salam_ir.
# This may be replaced when dependencies are built.

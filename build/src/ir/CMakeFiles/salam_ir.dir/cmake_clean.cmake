file(REMOVE_RECURSE
  "CMakeFiles/salam_ir.dir/context.cc.o"
  "CMakeFiles/salam_ir.dir/context.cc.o.d"
  "CMakeFiles/salam_ir.dir/eval.cc.o"
  "CMakeFiles/salam_ir.dir/eval.cc.o.d"
  "CMakeFiles/salam_ir.dir/interpreter.cc.o"
  "CMakeFiles/salam_ir.dir/interpreter.cc.o.d"
  "CMakeFiles/salam_ir.dir/ir.cc.o"
  "CMakeFiles/salam_ir.dir/ir.cc.o.d"
  "CMakeFiles/salam_ir.dir/ir_builder.cc.o"
  "CMakeFiles/salam_ir.dir/ir_builder.cc.o.d"
  "CMakeFiles/salam_ir.dir/parser.cc.o"
  "CMakeFiles/salam_ir.dir/parser.cc.o.d"
  "CMakeFiles/salam_ir.dir/printer.cc.o"
  "CMakeFiles/salam_ir.dir/printer.cc.o.d"
  "CMakeFiles/salam_ir.dir/type.cc.o"
  "CMakeFiles/salam_ir.dir/type.cc.o.d"
  "CMakeFiles/salam_ir.dir/verifier.cc.o"
  "CMakeFiles/salam_ir.dir/verifier.cc.o.d"
  "libsalam_ir.a"
  "libsalam_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/salam_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libsalam_ir.a"
)

# Empty compiler generated dependencies file for salam_mem.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mem/cache.cc" "src/mem/CMakeFiles/salam_mem.dir/cache.cc.o" "gcc" "src/mem/CMakeFiles/salam_mem.dir/cache.cc.o.d"
  "/root/repo/src/mem/crossbar.cc" "src/mem/CMakeFiles/salam_mem.dir/crossbar.cc.o" "gcc" "src/mem/CMakeFiles/salam_mem.dir/crossbar.cc.o.d"
  "/root/repo/src/mem/port.cc" "src/mem/CMakeFiles/salam_mem.dir/port.cc.o" "gcc" "src/mem/CMakeFiles/salam_mem.dir/port.cc.o.d"
  "/root/repo/src/mem/scratchpad.cc" "src/mem/CMakeFiles/salam_mem.dir/scratchpad.cc.o" "gcc" "src/mem/CMakeFiles/salam_mem.dir/scratchpad.cc.o.d"
  "/root/repo/src/mem/simple_dram.cc" "src/mem/CMakeFiles/salam_mem.dir/simple_dram.cc.o" "gcc" "src/mem/CMakeFiles/salam_mem.dir/simple_dram.cc.o.d"
  "/root/repo/src/mem/stream_buffer.cc" "src/mem/CMakeFiles/salam_mem.dir/stream_buffer.cc.o" "gcc" "src/mem/CMakeFiles/salam_mem.dir/stream_buffer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/salam_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "libsalam_mem.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/salam_mem.dir/cache.cc.o"
  "CMakeFiles/salam_mem.dir/cache.cc.o.d"
  "CMakeFiles/salam_mem.dir/crossbar.cc.o"
  "CMakeFiles/salam_mem.dir/crossbar.cc.o.d"
  "CMakeFiles/salam_mem.dir/port.cc.o"
  "CMakeFiles/salam_mem.dir/port.cc.o.d"
  "CMakeFiles/salam_mem.dir/scratchpad.cc.o"
  "CMakeFiles/salam_mem.dir/scratchpad.cc.o.d"
  "CMakeFiles/salam_mem.dir/simple_dram.cc.o"
  "CMakeFiles/salam_mem.dir/simple_dram.cc.o.d"
  "CMakeFiles/salam_mem.dir/stream_buffer.cc.o"
  "CMakeFiles/salam_mem.dir/stream_buffer.cc.o.d"
  "libsalam_mem.a"
  "libsalam_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/salam_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/fig14_gemm_stalls.dir/fig14_gemm_stalls.cc.o"
  "CMakeFiles/fig14_gemm_stalls.dir/fig14_gemm_stalls.cc.o.d"
  "fig14_gemm_stalls"
  "fig14_gemm_stalls.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_gemm_stalls.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for fig14_gemm_stalls.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fig4_power_breakdown.dir/fig4_power_breakdown.cc.o"
  "CMakeFiles/fig4_power_breakdown.dir/fig4_power_breakdown.cc.o.d"
  "fig4_power_breakdown"
  "fig4_power_breakdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_power_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for fig4_power_breakdown.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for abl_scheduler_modes.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/abl_scheduler_modes.dir/abl_scheduler_modes.cc.o"
  "CMakeFiles/abl_scheduler_modes.dir/abl_scheduler_modes.cc.o.d"
  "abl_scheduler_modes"
  "abl_scheduler_modes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_scheduler_modes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

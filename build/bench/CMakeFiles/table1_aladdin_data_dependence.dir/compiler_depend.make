# Empty compiler generated dependencies file for table1_aladdin_data_dependence.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/table1_aladdin_data_dependence.dir/table1_aladdin_data_dependence.cc.o"
  "CMakeFiles/table1_aladdin_data_dependence.dir/table1_aladdin_data_dependence.cc.o.d"
  "table1_aladdin_data_dependence"
  "table1_aladdin_data_dependence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_aladdin_data_dependence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/fig13_gemm_pareto.dir/fig13_gemm_pareto.cc.o"
  "CMakeFiles/fig13_gemm_pareto.dir/fig13_gemm_pareto.cc.o.d"
  "fig13_gemm_pareto"
  "fig13_gemm_pareto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_gemm_pareto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

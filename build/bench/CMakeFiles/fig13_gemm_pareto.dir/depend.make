# Empty dependencies file for fig13_gemm_pareto.
# This may be replaced when dependencies are built.

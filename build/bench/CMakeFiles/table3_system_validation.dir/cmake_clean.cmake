file(REMOVE_RECURSE
  "CMakeFiles/table3_system_validation.dir/table3_system_validation.cc.o"
  "CMakeFiles/table3_system_validation.dir/table3_system_validation.cc.o.d"
  "table3_system_validation"
  "table3_system_validation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_system_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for fig15_gemm_codesign.
# This may be replaced when dependencies are built.

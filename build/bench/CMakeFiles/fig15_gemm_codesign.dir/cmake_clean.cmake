file(REMOVE_RECURSE
  "CMakeFiles/fig15_gemm_codesign.dir/fig15_gemm_codesign.cc.o"
  "CMakeFiles/fig15_gemm_codesign.dir/fig15_gemm_codesign.cc.o.d"
  "fig15_gemm_codesign"
  "fig15_gemm_codesign.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_gemm_codesign.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/fig10_timing_validation.dir/fig10_timing_validation.cc.o"
  "CMakeFiles/fig10_timing_validation.dir/fig10_timing_validation.cc.o.d"
  "fig10_timing_validation"
  "fig10_timing_validation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_timing_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

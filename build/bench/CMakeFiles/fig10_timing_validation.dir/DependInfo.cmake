
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig10_timing_validation.cc" "bench/CMakeFiles/fig10_timing_validation.dir/fig10_timing_validation.cc.o" "gcc" "bench/CMakeFiles/fig10_timing_validation.dir/fig10_timing_validation.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/salam_core.dir/DependInfo.cmake"
  "/root/repo/build/src/kernels/CMakeFiles/salam_kernels.dir/DependInfo.cmake"
  "/root/repo/build/src/hls/CMakeFiles/salam_hls.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/salam_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/sys/CMakeFiles/salam_sys.dir/DependInfo.cmake"
  "/root/repo/build/src/opt/CMakeFiles/salam_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/salam_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/salam_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/salam_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/salam_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

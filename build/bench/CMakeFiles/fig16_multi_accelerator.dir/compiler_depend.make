# Empty compiler generated dependencies file for fig16_multi_accelerator.
# This may be replaced when dependencies are built.

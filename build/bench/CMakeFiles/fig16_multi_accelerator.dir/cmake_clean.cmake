file(REMOVE_RECURSE
  "CMakeFiles/fig16_multi_accelerator.dir/fig16_multi_accelerator.cc.o"
  "CMakeFiles/fig16_multi_accelerator.dir/fig16_multi_accelerator.cc.o.d"
  "fig16_multi_accelerator"
  "fig16_multi_accelerator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_multi_accelerator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for fig12_area_validation.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fig12_area_validation.dir/fig12_area_validation.cc.o"
  "CMakeFiles/fig12_area_validation.dir/fig12_area_validation.cc.o.d"
  "fig12_area_validation"
  "fig12_area_validation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_area_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

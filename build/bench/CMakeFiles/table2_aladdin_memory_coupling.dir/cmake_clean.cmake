file(REMOVE_RECURSE
  "CMakeFiles/table2_aladdin_memory_coupling.dir/table2_aladdin_memory_coupling.cc.o"
  "CMakeFiles/table2_aladdin_memory_coupling.dir/table2_aladdin_memory_coupling.cc.o.d"
  "table2_aladdin_memory_coupling"
  "table2_aladdin_memory_coupling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_aladdin_memory_coupling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for table2_aladdin_memory_coupling.
# This may be replaced when dependencies are built.

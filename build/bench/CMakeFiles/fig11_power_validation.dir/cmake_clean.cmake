file(REMOVE_RECURSE
  "CMakeFiles/fig11_power_validation.dir/fig11_power_validation.cc.o"
  "CMakeFiles/fig11_power_validation.dir/fig11_power_validation.cc.o.d"
  "fig11_power_validation"
  "fig11_power_validation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_power_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

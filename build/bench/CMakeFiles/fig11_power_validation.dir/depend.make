# Empty dependencies file for fig11_power_validation.
# This may be replaced when dependencies are built.

# Empty dependencies file for table4_simulation_time.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/table4_simulation_time.dir/table4_simulation_time.cc.o"
  "CMakeFiles/table4_simulation_time.dir/table4_simulation_time.cc.o.d"
  "table4_simulation_time"
  "table4_simulation_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_simulation_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/cnn_pipeline.dir/cnn_pipeline.cpp.o"
  "CMakeFiles/cnn_pipeline.dir/cnn_pipeline.cpp.o.d"
  "cnn_pipeline"
  "cnn_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cnn_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for cnn_pipeline.
# This may be replaced when dependencies are built.

# Empty dependencies file for multi_cluster.
# This may be replaced when dependencies are built.

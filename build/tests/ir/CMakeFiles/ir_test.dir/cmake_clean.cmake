file(REMOVE_RECURSE
  "CMakeFiles/ir_test.dir/test_builder.cc.o"
  "CMakeFiles/ir_test.dir/test_builder.cc.o.d"
  "CMakeFiles/ir_test.dir/test_eval.cc.o"
  "CMakeFiles/ir_test.dir/test_eval.cc.o.d"
  "CMakeFiles/ir_test.dir/test_interpreter.cc.o"
  "CMakeFiles/ir_test.dir/test_interpreter.cc.o.d"
  "CMakeFiles/ir_test.dir/test_parser.cc.o"
  "CMakeFiles/ir_test.dir/test_parser.cc.o.d"
  "CMakeFiles/ir_test.dir/test_property.cc.o"
  "CMakeFiles/ir_test.dir/test_property.cc.o.d"
  "CMakeFiles/ir_test.dir/test_types.cc.o"
  "CMakeFiles/ir_test.dir/test_types.cc.o.d"
  "CMakeFiles/ir_test.dir/test_verifier.cc.o"
  "CMakeFiles/ir_test.dir/test_verifier.cc.o.d"
  "ir_test"
  "ir_test.pdb"
  "ir_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ir_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/ir/test_builder.cc" "tests/ir/CMakeFiles/ir_test.dir/test_builder.cc.o" "gcc" "tests/ir/CMakeFiles/ir_test.dir/test_builder.cc.o.d"
  "/root/repo/tests/ir/test_eval.cc" "tests/ir/CMakeFiles/ir_test.dir/test_eval.cc.o" "gcc" "tests/ir/CMakeFiles/ir_test.dir/test_eval.cc.o.d"
  "/root/repo/tests/ir/test_interpreter.cc" "tests/ir/CMakeFiles/ir_test.dir/test_interpreter.cc.o" "gcc" "tests/ir/CMakeFiles/ir_test.dir/test_interpreter.cc.o.d"
  "/root/repo/tests/ir/test_parser.cc" "tests/ir/CMakeFiles/ir_test.dir/test_parser.cc.o" "gcc" "tests/ir/CMakeFiles/ir_test.dir/test_parser.cc.o.d"
  "/root/repo/tests/ir/test_property.cc" "tests/ir/CMakeFiles/ir_test.dir/test_property.cc.o" "gcc" "tests/ir/CMakeFiles/ir_test.dir/test_property.cc.o.d"
  "/root/repo/tests/ir/test_types.cc" "tests/ir/CMakeFiles/ir_test.dir/test_types.cc.o" "gcc" "tests/ir/CMakeFiles/ir_test.dir/test_types.cc.o.d"
  "/root/repo/tests/ir/test_verifier.cc" "tests/ir/CMakeFiles/ir_test.dir/test_verifier.cc.o" "gcc" "tests/ir/CMakeFiles/ir_test.dir/test_verifier.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/salam_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/opt/CMakeFiles/salam_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/salam_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/sys_test.dir/test_full_system.cc.o"
  "CMakeFiles/sys_test.dir/test_full_system.cc.o.d"
  "CMakeFiles/sys_test.dir/test_gic_driver.cc.o"
  "CMakeFiles/sys_test.dir/test_gic_driver.cc.o.d"
  "sys_test"
  "sys_test.pdb"
  "sys_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sys_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

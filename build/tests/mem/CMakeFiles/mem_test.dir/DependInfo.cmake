
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/mem/test_cache.cc" "tests/mem/CMakeFiles/mem_test.dir/test_cache.cc.o" "gcc" "tests/mem/CMakeFiles/mem_test.dir/test_cache.cc.o.d"
  "/root/repo/tests/mem/test_dram_xbar.cc" "tests/mem/CMakeFiles/mem_test.dir/test_dram_xbar.cc.o" "gcc" "tests/mem/CMakeFiles/mem_test.dir/test_dram_xbar.cc.o.d"
  "/root/repo/tests/mem/test_scratchpad.cc" "tests/mem/CMakeFiles/mem_test.dir/test_scratchpad.cc.o" "gcc" "tests/mem/CMakeFiles/mem_test.dir/test_scratchpad.cc.o.d"
  "/root/repo/tests/mem/test_stream_buffer.cc" "tests/mem/CMakeFiles/mem_test.dir/test_stream_buffer.cc.o" "gcc" "tests/mem/CMakeFiles/mem_test.dir/test_stream_buffer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mem/CMakeFiles/salam_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/salam_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/mem_test.dir/test_cache.cc.o"
  "CMakeFiles/mem_test.dir/test_cache.cc.o.d"
  "CMakeFiles/mem_test.dir/test_dram_xbar.cc.o"
  "CMakeFiles/mem_test.dir/test_dram_xbar.cc.o.d"
  "CMakeFiles/mem_test.dir/test_scratchpad.cc.o"
  "CMakeFiles/mem_test.dir/test_scratchpad.cc.o.d"
  "CMakeFiles/mem_test.dir/test_stream_buffer.cc.o"
  "CMakeFiles/mem_test.dir/test_stream_buffer.cc.o.d"
  "mem_test"
  "mem_test.pdb"
  "mem_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mem_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/sim_test.dir/test_event_queue.cc.o"
  "CMakeFiles/sim_test.dir/test_event_queue.cc.o.d"
  "CMakeFiles/sim_test.dir/test_sim_object.cc.o"
  "CMakeFiles/sim_test.dir/test_sim_object.cc.o.d"
  "CMakeFiles/sim_test.dir/test_statistics.cc.o"
  "CMakeFiles/sim_test.dir/test_statistics.cc.o.d"
  "sim_test"
  "sim_test.pdb"
  "sim_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

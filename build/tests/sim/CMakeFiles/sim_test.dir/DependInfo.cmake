
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/sim/test_event_queue.cc" "tests/sim/CMakeFiles/sim_test.dir/test_event_queue.cc.o" "gcc" "tests/sim/CMakeFiles/sim_test.dir/test_event_queue.cc.o.d"
  "/root/repo/tests/sim/test_sim_object.cc" "tests/sim/CMakeFiles/sim_test.dir/test_sim_object.cc.o" "gcc" "tests/sim/CMakeFiles/sim_test.dir/test_sim_object.cc.o.d"
  "/root/repo/tests/sim/test_statistics.cc" "tests/sim/CMakeFiles/sim_test.dir/test_statistics.cc.o" "gcc" "tests/sim/CMakeFiles/sim_test.dir/test_statistics.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/salam_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

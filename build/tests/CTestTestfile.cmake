# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("sim")
subdirs("ir")
subdirs("opt")
subdirs("hw")
subdirs("mem")
subdirs("core")
subdirs("kernels")
subdirs("hls")
subdirs("baseline")
subdirs("sys")

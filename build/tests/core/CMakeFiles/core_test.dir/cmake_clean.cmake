file(REMOVE_RECURSE
  "CMakeFiles/core_test.dir/test_cache_accel.cc.o"
  "CMakeFiles/core_test.dir/test_cache_accel.cc.o.d"
  "CMakeFiles/core_test.dir/test_comm_dma.cc.o"
  "CMakeFiles/core_test.dir/test_comm_dma.cc.o.d"
  "CMakeFiles/core_test.dir/test_engine_property.cc.o"
  "CMakeFiles/core_test.dir/test_engine_property.cc.o.d"
  "CMakeFiles/core_test.dir/test_runtime_engine.cc.o"
  "CMakeFiles/core_test.dir/test_runtime_engine.cc.o.d"
  "core_test"
  "core_test.pdb"
  "core_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

/**
 * @file
 * Table II reproduction: Aladdin datapath vs memory design.
 *
 * GEMM n-cubed with a fully unrolled inner loop is run through the
 * trace-based baseline over a sweep of cache sizes (and a
 * multi-ported SPM). Because the datapath is reverse-engineered
 * from the memory-retimed trace, the functional-unit allocation
 * changes with every memory configuration — the coupling
 * gem5-SALAM eliminates by separating datapath from memory.
 */

#include "baseline/aladdin.hh"
#include "common.hh"
#include "core/static_cdfg.hh"

using namespace salam;
using namespace salam::bench;
using namespace salam::kernels;
using namespace salam::baseline;

namespace
{

constexpr unsigned gemmN = 16;

AladdinResult
run(const AladdinConfig &cfg)
{
    // Fully unrolled inner loop (unroll == N).
    auto kernel = makeGemm(gemmN, gemmN);
    ir::Module mod("m");
    ir::IRBuilder b(mod);
    ir::Function *fn = kernel->buildOptimized(b);
    ir::FlatMemory mem;
    kernel->seed(mem, 0x10000);
    AladdinSimulator sim(cfg);
    return sim.run(*fn, kernel->args(0x10000), mem,
                   "/tmp/salam_table2_trace.txt");
}

} // namespace

int
main(int argc, char **argv)
{
    salam::bench::parseObsArgs(argc, argv);
    header("Table II: Aladdin datapath vs. memory design "
           "(GEMM, fully unrolled inner loop)");
    std::printf("%-8s %-8s %6s %6s\n", "Type", "Size", "FMUL",
                "FADD");

    auto fmul =
        static_cast<std::size_t>(hw::FuType::FpMultiplierDouble);
    auto fadd =
        static_cast<std::size_t>(hw::FuType::FpAddSubDouble);

    std::vector<unsigned> fmul_seen;
    for (std::uint64_t size :
         {256u, 512u, 1024u, 2048u, 4096u, 8192u, 16384u}) {
        AladdinConfig cfg;
        cfg.memory.kind = AladdinMemoryConfig::Kind::Cache;
        cfg.memory.cacheSizeBytes = size;
        auto result = run(cfg);
        std::string label = size >= 1024
            ? std::to_string(size / 1024) + "kB"
            : std::to_string(size) + "B";
        std::printf("%-8s %-8s %6u %6u\n", "Cache", label.c_str(),
                    result.fuCounts[fmul], result.fuCounts[fadd]);
        fmul_seen.push_back(result.fuCounts[fmul]);
    }

    AladdinConfig spm_cfg;
    spm_cfg.memory.spmReadPorts = 4;
    spm_cfg.memory.spmWritePorts = 4;
    auto spm = run(spm_cfg);
    std::printf("%-8s %-8s %6u %6u\n", "SPM", "-",
                spm.fuCounts[fmul], spm.fuCounts[fadd]);
    fmul_seen.push_back(spm.fuCounts[fmul]);

    // Contrast: SALAM's static datapath is memory-invariant.
    auto kernel = makeGemm(gemmN, gemmN);
    ir::Module mod("m");
    ir::IRBuilder b(mod);
    ir::Function *fn = kernel->buildOptimized(b);
    core::StaticCdfg cdfg(*fn, core::DeviceConfig{});
    std::printf("\ngem5-SALAM static datapath (any memory): "
                "FMUL=%u FADD=%u\n",
                cdfg.fuDemand(hw::FuType::FpMultiplierDouble),
                cdfg.fuDemand(hw::FuType::FpAddSubDouble));

    bool varies = false;
    for (unsigned c : fmul_seen)
        varies |= (c != fmul_seen.front());
    std::printf("\nShape check (paper: FU allocation varies across "
                "the memory sweep): %s\n",
                varies ? "REPRODUCED" : "NOT REPRODUCED");
    return varies ? 0 : 1;
}

/**
 * @file
 * Fig. 12 reproduction: area validation against the Design
 * Compiler surrogate. MD-Grid is excluded, as in the paper (custom
 * IPs in its datapath prevented DC area estimation there).
 */

#include <cmath>

#include "common.hh"
#include "hls/dc_estimator.hh"
#include "hls/hls_scheduler.hh"

using namespace salam;
using namespace salam::bench;
using namespace salam::kernels;
using namespace salam::hls;

int
main(int argc, char **argv)
{
    salam::bench::parseObsArgs(argc, argv);
    header("Fig. 12: area validation (um^2 vs Design Compiler)");
    std::printf("%-14s %12s %12s %9s\n", "Benchmark",
                "gem5-SALAM", "DC", "error");

    const char *names[] = {"bfs-queue", "fft-strided", "gemm",
                           "md-knn",    "nw",          "spmv-crs",
                           "stencil2d", "stencil3d"};

    double total_abs_err = 0.0;
    int count = 0;
    for (const char *name : names) {
        auto kernel = makeKernel(name);

        ir::Module mod("m");
        ir::IRBuilder b(mod);
        ir::Function *fn = kernel->buildOptimized(b);
        core::StaticCdfg cdfg(*fn, core::DeviceConfig{});
        double salam_area = cdfg.area().fuUm2 +
            cdfg.area().registerUm2;

        ir::FlatMemory mem;
        kernel->seed(mem, 0x10000);
        HlsScheduler scheduler;
        HlsResult hls =
            scheduler.estimate(*fn, kernel->args(0x10000), mem);
        // The RTL instantiates one operator per static operation
        // (unconstrained HLS); DC prices that netlist.
        for (std::size_t t = 0; t < hw::numFuTypes; ++t) {
            hls.boundUnits[t] =
                cdfg.fuDemand(static_cast<hw::FuType>(t));
        }
        DcEstimator dc;
        DcReport ref = dc.estimate(hls, cdfg.registerBits());

        double err = pctError(salam_area, ref.datapathAreaUm2);
        total_abs_err += std::abs(err);
        ++count;
        std::printf("%-14s %12.0f %12.0f %8.2f%%\n", name,
                    salam_area, ref.datapathAreaUm2, err);
    }
    std::printf("\nAverage |error|: %.2f%% (paper: ~2.24%%)\n",
                total_abs_err / count);
    return 0;
}

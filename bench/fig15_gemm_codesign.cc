/**
 * @file
 * Fig. 15 reproduction: GEMM memory/compute co-design exploration,
 * with floating-point adders held at 64 units (the co-design
 * decision reached in Sec. IV-D2).
 *
 * (a) stalled vs new-execution cycles per port configuration;
 * (b) memory-parallelism (cycles issuing loads and stores together)
 *     against FP-multiplier occupancy;
 * (c) instruction-mix of scheduled operations against execution
 *     time — optimal performance lands where the scheduled mix
 *     matches GEMM's intrinsic FLOP:memory ratio;
 * (d) the same mix against total datapath power.
 */

#include "common.hh"
#include "drive/sweep_runner.hh"

using namespace salam;
using namespace salam::bench;
using namespace salam::kernels;

int
main(int argc, char **argv)
{
    salam::bench::parseObsArgs(argc, argv);
    constexpr unsigned gemmN = 32;
    constexpr unsigned unroll = 32;
    constexpr unsigned fadd_units = 64;

    struct Row
    {
        unsigned ports;
        BenchRun run;
        core::DeviceConfig dev;
    };
    drive::SweepSpec spec;
    spec.axis("ports", {64, 32, 16, 8, 4});
    std::vector<Row> rows(spec.numPoints());

    auto sweep_opts = sweepRunnerOptions(effectiveSweepThreads());
    sweep_opts.pointAxes = [&](std::size_t idx) {
        return spec.axesJson(idx);
    };
    drive::SweepRunner runner(sweep_opts);
    auto results =
        runner.run(spec.numPoints(), [&](std::size_t idx) {
            auto ports = static_cast<unsigned>(spec.value(idx, 0));
            auto kernel = makeGemm(gemmN, unroll);
            core::DeviceConfig dev;
            dev.setFuLimit(hw::FuType::FpAddSubDouble, fadd_units);
            dev.readPortsPerCycle = ports;
            dev.writePortsPerCycle = ports;
            dev.readQueueSize = std::max(ports, 16u);
            dev.writeQueueSize = std::max(ports, 16u);
            BenchMemory memcfg;
            memcfg.spmReadPorts = ports;
            memcfg.spmWritePorts = ports;
            rows[idx] = {ports,
                         runSalamMode(*kernel, "n32u32", dev,
                                      memcfg),
                         dev};
            return "{\"mode\":\"" + rows[idx].run.simMode + "\"}";
        });
    // Interrupted (skipped) and resume-cached points carry no fresh
    // row data; drop them from the tables instead of printing
    // zeroed rows. Real failures still abort the experiment.
    std::vector<Row> fresh;
    for (const auto &r : results) {
        if (r.outcome == "skipped" || r.outcome == "cached")
            continue;
        if (!r.ok)
            fatal("sweep point %zu failed: %s", r.index,
                  r.error.c_str());
        fresh.push_back(rows[r.index]);
    }
    if (fresh.size() != rows.size())
        std::printf("(%zu of %zu points have fresh data; "
                    "cached/skipped rows omitted)\n",
                    fresh.size(), rows.size());
    rows = std::move(fresh);

    header("Fig. 15(a): datapath stalls vs memory ports "
           "(FADD = 64)");
    std::printf("%-6s %10s %10s\n", "ports", "stalled",
                "new-exec");
    for (const Row &row : rows) {
        const auto &s = row.run.stats;
        double total = static_cast<double>(s.totalCycles);
        std::printf("%-6u %9.1f%% %9.1f%%\n", row.ports,
                    100.0 * s.stallCycles / total,
                    100.0 * s.newExecCycles / total);
    }

    header("Fig. 15(b): memory parallelism vs FP multiplier "
           "occupancy");
    std::printf("%-6s %12s %12s %12s %14s\n", "ports", "ld+st",
                "load-only", "store-only", "fmul occupancy");
    for (const Row &row : rows) {
        const auto &s = row.run.stats;
        double total = static_cast<double>(s.totalCycles);
        auto fmul = static_cast<std::size_t>(
            hw::FuType::FpMultiplierDouble);
        // Occupancy: average busy fmul pipelines over the run,
        // normalized to the allocated (static) multiplier count.
        double busy_avg =
            static_cast<double>(s.fuBusyCycleSum[fmul]) / total;
        double occupancy = 100.0 * busy_avg /
            static_cast<double>(gemmN);
        std::printf("%-6u %11.1f%% %11.1f%% %11.1f%% %13.2f%%\n",
                    row.ports,
                    100.0 * s.cyclesWithLoadAndStoreIssue / total,
                    100.0 *
                        (s.cyclesWithLoadIssue -
                         s.cyclesWithLoadAndStoreIssue) /
                        total,
                    100.0 *
                        (s.cyclesWithStoreIssue -
                         s.cyclesWithLoadAndStoreIssue) /
                        total,
                    occupancy);
    }

    header("Fig. 15(c): scheduled-operation mix vs execution time");
    std::printf("%-6s %10s %10s %10s %12s\n", "ports", "load",
                "store", "fp", "cycles");
    for (const Row &row : rows) {
        const auto &s = row.run.stats;
        double issued = static_cast<double>(
            s.loadsIssued + s.storesIssued + s.fpOpsIssued);
        std::printf("%-6u %9.1f%% %9.1f%% %9.1f%% %12llu\n",
                    row.ports, 100.0 * s.loadsIssued / issued,
                    100.0 * s.storesIssued / issued,
                    100.0 * s.fpOpsIssued / issued,
                    static_cast<unsigned long long>(
                        s.totalCycles));
    }
    std::printf("(GEMM intrinsic ratio: 2 loads : 2 FLOPs per MAC; "
                "best configs issue near it)\n");

    header("Fig. 15(d): scheduled-operation mix vs datapath power");
    std::printf("%-6s %10s %10s %10s %14s\n", "ports", "load",
                "store", "fp", "power(mW)");
    for (const Row &row : rows) {
        const auto &s = row.run.stats;
        const auto &p = row.run.report.power;
        double issued = static_cast<double>(
            s.loadsIssued + s.storesIssued + s.fpOpsIssued);
        double datapath = p.dynamicFuMw + p.dynamicRegisterMw +
            p.staticFuMw + p.staticRegisterMw;
        std::printf("%-6u %9.1f%% %9.1f%% %9.1f%% %14.3f\n",
                    row.ports, 100.0 * s.loadsIssued / issued,
                    100.0 * s.storesIssued / issued,
                    100.0 * s.fpOpsIssued / issued, datapath);
    }
    writeSweepHostTelemetry(runner, "fig15.gemm_codesign");
    return sweepExitCode(runner);
}

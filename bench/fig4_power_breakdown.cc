/**
 * @file
 * Fig. 4 reproduction: total power breakdown per benchmark with
 * private SPMs — dynamic functional units / internal registers /
 * SPM reads / SPM writes, and static FUs / registers / SPM.
 */

#include "common.hh"

using namespace salam;
using namespace salam::bench;
using namespace salam::kernels;

int
main(int argc, char **argv)
{
    salam::bench::parseObsArgs(argc, argv);
    header("Fig. 4: total power contribution breakdown "
           "(private SPM)");
    std::printf("%-14s %8s | %7s %7s %7s %7s %7s %7s %7s\n",
                "Benchmark", "mW", "dynFU", "dynReg", "spmRd",
                "spmWr", "stFU", "stReg", "stSPM");

    for (const auto &kernel : machsuiteKernels()) {
        BenchRun run = runSalam(*kernel);
        const hw::PowerBreakdown &p = run.report.power;
        double total = p.totalMw();
        auto pct = [total](double v) {
            return total > 0 ? 100.0 * v / total : 0.0;
        };
        std::printf("%-14s %8.3f | %6.1f%% %6.1f%% %6.1f%% "
                    "%6.1f%% %6.1f%% %6.1f%% %6.1f%%\n",
                    kernel->name().c_str(), total,
                    pct(p.dynamicFuMw), pct(p.dynamicRegisterMw),
                    pct(p.dynamicSpmReadMw),
                    pct(p.dynamicSpmWriteMw), pct(p.staticFuMw),
                    pct(p.staticRegisterMw), pct(p.staticSpmMw));
    }
    return 0;
}

/**
 * @file
 * Table I reproduction: Aladdin datapath vs data-dependent
 * execution.
 *
 * The SPMV-CRS kernel carries a bit-shift on the column index behind
 * a data-dependent branch. Dataset 1 never triggers it; dataset 2
 * does. The trace-based baseline reverse-engineers a different
 * datapath for each dataset — including dropping the shifter
 * entirely for dataset 1 — while gem5-SALAM's static elaboration
 * yields one datapath for the kernel regardless of input.
 */

#include "baseline/aladdin.hh"
#include "common.hh"
#include "core/static_cdfg.hh"

using namespace salam;
using namespace salam::bench;
using namespace salam::kernels;
using namespace salam::baseline;

namespace
{

AladdinResult
aladdinRun(unsigned dataset)
{
    auto kernel = makeSpmv(64, 8, /*guarded=*/true, dataset);
    ir::Module mod("m");
    ir::IRBuilder b(mod);
    ir::Function *fn = kernel->buildOptimized(b);
    ir::FlatMemory mem;
    kernel->seed(mem, 0x10000);
    AladdinSimulator sim;
    return sim.run(*fn, kernel->args(0x10000), mem,
                   "/tmp/salam_table1_trace.txt");
}

unsigned
count(const AladdinResult &result, hw::FuType type)
{
    return result.fuCounts[static_cast<std::size_t>(type)];
}

} // namespace

int
main(int argc, char **argv)
{
    salam::bench::parseObsArgs(argc, argv);
    header("Table I: Aladdin datapath vs data-dependent execution");
    std::printf("%-12s %-9s %6s %6s %12s\n", "Accelerator",
                "Dataset", "FMUL", "FADD", "Int Shifter");

    AladdinResult sets[2] = {aladdinRun(1), aladdinRun(2)};
    for (unsigned d = 0; d < 2; ++d) {
        std::printf("%-12s %-9u %6u %6u %12u\n", "SPMV-CRS", d + 1,
                    count(sets[d], hw::FuType::FpMultiplierDouble),
                    count(sets[d], hw::FuType::FpAddSubDouble),
                    count(sets[d], hw::FuType::Shifter));
    }

    // Contrast: gem5-SALAM's static elaboration is input-invariant.
    auto kernel = makeSpmv(64, 8, true, 1);
    ir::Module mod("m");
    ir::IRBuilder b(mod);
    ir::Function *fn = kernel->buildOptimized(b);
    core::DeviceConfig dev;
    core::StaticCdfg cdfg(*fn, dev);
    std::printf("\ngem5-SALAM static datapath (any dataset): "
                "FMUL=%u FADD=%u Shifter=%u\n",
                cdfg.fuDemand(hw::FuType::FpMultiplierDouble),
                cdfg.fuDemand(hw::FuType::FpAddSubDouble),
                cdfg.fuDemand(hw::FuType::Shifter));

    bool shifter_dropped =
        count(sets[0], hw::FuType::Shifter) == 0 &&
        count(sets[1], hw::FuType::Shifter) > 0;
    std::printf("\nShape check (paper: shifter absent for dataset 1,"
                " present for dataset 2): %s\n",
                shifter_dropped ? "REPRODUCED" : "NOT REPRODUCED");
    return shifter_dropped ? 0 : 1;
}

/**
 * @file
 * Ablation: dynamic dataflow import vs block-sequential (FSM)
 * import in the runtime scheduler.
 *
 * gem5-SALAM's reservation queue imports successor blocks the moment
 * a terminator evaluates, letting independent loop iterations overlap
 * like a dataflow machine. The block-sequential option (used for
 * HLS-matched validation) drains the pipeline at every state
 * transition instead. This ablation quantifies what the paper's
 * "execute-in-execute" dynamic scheduling buys on every MachSuite
 * kernel.
 */

#include <cmath>

#include "common.hh"

using namespace salam;
using namespace salam::bench;
using namespace salam::kernels;

int
main(int argc, char **argv)
{
    salam::bench::parseObsArgs(argc, argv);
    header("Ablation: dataflow vs block-sequential scheduling");
    std::printf("%-14s %12s %12s %9s\n", "Benchmark", "dataflow",
                "sequential", "speedup");

    double product = 1.0;
    int count = 0;
    for (const auto &kernel : machsuiteKernels()) {
        core::DeviceConfig dataflow;
        BenchRun a = runSalam(*kernel, dataflow);

        core::DeviceConfig fsm;
        fsm.blockSequentialImport = true;
        BenchRun b = runSalam(*kernel, fsm);

        double speedup = static_cast<double>(b.cycles) /
            static_cast<double>(a.cycles);
        product *= speedup;
        ++count;
        std::printf("%-14s %12llu %12llu %8.2fx\n",
                    kernel->name().c_str(),
                    static_cast<unsigned long long>(a.cycles),
                    static_cast<unsigned long long>(b.cycles),
                    speedup);
    }
    std::printf("\nGeomean dataflow speedup: %.2fx\n",
                std::pow(product, 1.0 / count));
    return 0;
}

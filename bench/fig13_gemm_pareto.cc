/**
 * @file
 * Fig. 13 reproduction: GEMM design-space Pareto curve.
 *
 * Sweeps functional-unit allocations and memory bandwidth for the
 * GEMM accelerator and reports (execution time, power) points for
 * three accounting scopes: datapath only, datapath + SPM, and
 * datapath + cache. Over-allocated configurations show up as
 * duplicate runtimes at higher power — the paper's observation
 * motivating the co-design study of Figs. 14-15.
 *
 * The 20 points are independent simulations, so they are sharded
 * over a SweepRunner pool (--sweep-threads); results are collected
 * per point and printed in configuration order, identical to the
 * serial output.
 */

#include "common.hh"
#include "drive/sweep_runner.hh"
#include "hw/cacti_lite.hh"

using namespace salam;
using namespace salam::bench;
using namespace salam::kernels;

int
main(int argc, char **argv)
{
    // --fu-limits trims the FU axis (e.g. "16" for a 5-point slice);
    // check.sh diffs two such slices with salam-query.
    std::vector<unsigned> fu_limits = {8u, 16u, 32u, 64u};
    salam::bench::parseObsArgs(
        argc, argv,
        {{"--fu-limits", "<a,b,...>",
          "comma-separated FU-allocation axis (default 8,16,32,64)",
          [&](const std::string &v) {
              fu_limits.clear();
              std::string item;
              std::istringstream is(v);
              while (std::getline(is, item, ',')) {
                  std::uint64_t limit =
                      benchParseUint("--fu-limits", item);
                  if (limit == 0 || limit > 4096)
                      fatal("--fu-limits: bad FU count '%s'",
                            item.c_str());
                  fu_limits.push_back(
                      static_cast<unsigned>(limit));
              }
              if (fu_limits.empty())
                  fatal("--fu-limits needs at least one count");
          }}});
    header("Fig. 13: GEMM design space Pareto sweep");
    std::printf("%-6s %-6s %10s | %12s %12s %12s\n", "fu", "ports",
                "time(us)", "datapath(mW)", "+SPM(mW)",
                "+cache(mW)");

    constexpr unsigned gemmN = 32;
    constexpr unsigned unroll = 32;

    // Declarative grid: first axis slowest, so the point numbering
    // matches the historical nested fu/ports loops (resume compat).
    drive::SweepSpec spec;
    spec.axis("fu_limit", {fu_limits.begin(), fu_limits.end()})
        .axis("ports", {4, 8, 16, 32, 64});

    // The dev/memcfg a grid point denotes, shared by the point
    // function and the resume-hash callback.
    auto point_config = [&spec](std::size_t idx,
                                core::DeviceConfig &dev,
                                BenchMemory &memcfg) {
        auto fu_limit = static_cast<unsigned>(spec.value(idx, 0));
        auto ports = static_cast<unsigned>(spec.value(idx, 1));
        dev.setFuLimit(hw::FuType::FpAddSubDouble, fu_limit);
        dev.setFuLimit(hw::FuType::FpMultiplierDouble, fu_limit);
        dev.readPortsPerCycle = ports;
        dev.writePortsPerCycle = ports;
        dev.readQueueSize = std::max(ports, 16u);
        dev.writeQueueSize = std::max(ports, 16u);
        memcfg.spmReadPorts = ports;
        memcfg.spmWritePorts = ports;
        return ports;
    };

    struct Row
    {
        double timeUs;
        double datapath;
        double withSpm;
        double withCache;
    };
    std::vector<Row> rows(spec.numPoints());

    auto sweep_opts = sweepRunnerOptions(effectiveSweepThreads());
    // Resume identity: mirror the dev/memcfg construction inside the
    // point function, so the hash of an unrun point matches the
    // RunReport a completed run of it recorded.
    const std::string kernel_name = makeGemm(gemmN, unroll)->name();
    sweep_opts.pointHash = [&](std::size_t idx) {
        core::DeviceConfig dev;
        BenchMemory memcfg;
        point_config(idx, dev, memcfg);
        return runConfigHash(kernel_name, dev, memcfg);
    };
    sweep_opts.pointAxes = [&](std::size_t idx) {
        return spec.axesJson(idx);
    };
    drive::SweepRunner runner(sweep_opts);
    auto results =
        runner.run(spec.numPoints(), [&](std::size_t idx) {
        auto kernel = makeGemm(gemmN, unroll);
        core::DeviceConfig dev;
        BenchMemory memcfg;
        unsigned ports = point_config(idx, dev, memcfg);

        BenchRun run = runSalamMode(*kernel, "n32u32", dev, memcfg);
        const hw::PowerBreakdown &p = run.report.power;

        double datapath = p.dynamicFuMw + p.dynamicRegisterMw +
            p.staticFuMw + p.staticRegisterMw;
        double with_spm = datapath + p.dynamicSpmReadMw +
            p.dynamicSpmWriteMw + p.staticSpmMw;

        // Cache alternative: same accesses through a cache sized
        // for the working set.
        hw::SramConfig cache_cfg;
        cache_cfg.sizeBytes = 16 * 1024;
        cache_cfg.wordBytes = 8;
        cache_cfg.ports = std::max(1u, ports / 8);
        auto cache = hw::CactiLite::evaluateCache(cache_cfg, 4);
        double runtime_ns = run.report.runtimeNs;
        double with_cache = datapath +
            (static_cast<double>(run.spmReads) *
                 cache.readEnergyPj +
             static_cast<double>(run.spmWrites) *
                 cache.writeEnergyPj) /
                runtime_ns +
            cache.leakagePowerMw;

        rows[idx] = {run.runtimeUs(dev), datapath, with_spm,
                     with_cache};
        return "{\"mode\":\"" + run.simMode + "\"}";
    });

    for (std::size_t i = 0; i < spec.numPoints(); ++i) {
        auto fu = static_cast<unsigned>(spec.value(i, 0));
        auto ports = static_cast<unsigned>(spec.value(i, 1));
        if (results[i].outcome == "cached") {
            std::printf("%-6u %-6u     cached | ok in resume "
                        "store\n",
                        fu, ports);
            continue;
        }
        if (results[i].outcome == "skipped") {
            std::printf("%-6u %-6u    skipped | shutdown drain; "
                        "re-run with --resume\n",
                        fu, ports);
            continue;
        }
        if (!results[i].ok) {
            std::printf("%-6u %-6u     FAILED | %s\n", fu, ports,
                        results[i].error.c_str());
            continue;
        }
        std::printf("%-6u %-6u %10.2f | %12.3f %12.3f %12.3f\n",
                    fu, ports, rows[i].timeUs, rows[i].datapath,
                    rows[i].withSpm, rows[i].withCache);
    }
    std::printf("(%zu points, %u thread%s, %.2fs wall)\n",
                spec.numPoints(), runner.lastThreads(),
                runner.lastThreads() == 1 ? "" : "s",
                runner.lastWallSeconds());
    writeSweepHostTelemetry(runner, "fig13.gemm_pareto");
    return sweepExitCode(runner);
}

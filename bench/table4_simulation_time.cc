/**
 * @file
 * Table IV reproduction: simulator setup and runtime execution
 * timing, gem5-SALAM vs the trace-based baseline.
 *
 * The baseline pays for instrumented execution + trace-file I/O in
 * preprocessing, and for trace loading + DDDG construction in
 * simulation; gem5-SALAM's only preprocessing is compiling the
 * kernel (building + optimizing IR), and its simulation operates on
 * the static CDFG with small runtime queues. The paper reports
 * average speedups of 123x (preprocess) and 697x (simulate); the
 * shape to reproduce is preprocessing much faster across the board
 * and simulation faster particularly for kernels with large traces.
 *
 * Beyond the table, this bench is the repo's simulation-rate probe:
 * it writes BENCH_simrate.json with per-kernel simulated-ticks per
 * wall-second plus a serial-vs-parallel GEMM sweep comparison, so
 * perf regressions in the engine hot path are machine-checkable.
 *
 *   --simrate-out <file>   simulation-rate JSON path (default
 *                          BENCH_simrate.json)
 *   --gemm-only            probe mode: only the GEMM kernel and the
 *                          sweep section (fast, used by check.sh)
 *   --no-sweep             skip the serial-vs-parallel sweep legs
 *                          (single-run timing only; the telemetry
 *                          overhead gate uses this)
 */

#include <cmath>
#include <fstream>
#include <thread>

#include "baseline/aladdin.hh"
#include "common.hh"
#include "drive/sweep_runner.hh"

using namespace salam;
using namespace salam::bench;
using namespace salam::kernels;
using namespace salam::baseline;

namespace
{

struct KernelRate
{
    std::string name;
    std::uint64_t cycles = 0;
    double wallSeconds = 0.0;
    double ticksPerSec = 0.0;
};

/**
 * Time an 8-point GEMM port/FU sweep at the given worker count and
 * return wall-clock seconds. The points are identical between calls
 * so serial and parallel legs do the same work.
 */
double
timedGemmSweep(unsigned threads,
               drive::SweepHostSummary *host = nullptr)
{
    struct Config
    {
        unsigned fuLimit;
        unsigned ports;
    };
    std::vector<Config> grid;
    for (unsigned fu_limit : {16u, 64u})
        for (unsigned ports : {4u, 8u, 16u, 32u})
            grid.push_back({fu_limit, ports});

    drive::SweepRunner::Options opts;
    opts.threads = threads;
    // The probe legs always carry host telemetry: the scaling
    // summary (worker busy fractions, lock-wait share) goes into
    // the simrate JSON so parallel-efficiency regressions are
    // machine-checkable, not just the headline speedup.
    opts.hostTelemetry = true;
    opts.captureSimTracePoint = -1;
    opts.store = benchStore();
    opts.storeName = obsOptions().benchName;
    drive::SweepRunner runner(opts);
    auto results = runner.run(grid.size(), [&](std::size_t idx) {
        auto kernel = makeGemm(32, 32);
        core::DeviceConfig dev;
        dev.setFuLimit(hw::FuType::FpAddSubDouble,
                       grid[idx].fuLimit);
        dev.setFuLimit(hw::FuType::FpMultiplierDouble,
                       grid[idx].fuLimit);
        dev.readPortsPerCycle = grid[idx].ports;
        dev.writePortsPerCycle = grid[idx].ports;
        dev.readQueueSize = std::max(grid[idx].ports, 16u);
        dev.writeQueueSize = std::max(grid[idx].ports, 16u);
        BenchMemory memcfg;
        memcfg.spmReadPorts = grid[idx].ports;
        memcfg.spmWritePorts = grid[idx].ports;
        runSalam(*kernel, dev, memcfg);
        return std::string();
    });
    for (const auto &r : results) {
        // "skipped" = SIGINT/SIGTERM drain: the probe is cut short
        // but should still exit through the interrupted path, not
        // fatal() over a point that never ran.
        if (!r.ok && r.outcome != "skipped")
            fatal("sweep point %zu failed: %s", r.index,
                  r.error.c_str());
    }
    if (host != nullptr)
        *host = runner.hostSummary();
    return runner.lastWallSeconds();
}

void
writeSimrateJson(const std::string &path,
                 const std::vector<KernelRate> &rates,
                 unsigned sweep_threads, double serial_seconds,
                 double parallel_seconds,
                 const drive::SweepHostSummary *parallel_host)
{
    std::ofstream os(path);
    if (!os) {
        warn("cannot write %s", path.c_str());
        return;
    }
    core::DeviceConfig dev;
    os << "{\"bench\": \"table4_simulation_time\",\n";
    os << " \"clock_period_ticks\": " << dev.clockPeriod << ",\n";
    os << " \"kernels\": [\n";
    for (std::size_t i = 0; i < rates.size(); ++i) {
        const KernelRate &r = rates[i];
        os << "  {\"kernel\": \"" << obs::jsonEscape(r.name)
           << "\", \"cycles\": " << r.cycles
           << ", \"wall_seconds\": " << obs::jsonNumber(r.wallSeconds)
           << ", \"ticks_per_sec\": "
           << obs::jsonNumber(r.ticksPerSec) << "}"
           << (i + 1 < rates.size() ? "," : "") << "\n";
    }
    os << " ],\n";
    os << " \"sweep\": {\"kernel\": \"gemm\", \"points\": 8,\n";
    os << "  \"serial_wall_seconds\": "
       << obs::jsonNumber(serial_seconds) << ",\n";
    os << "  \"threads\": " << sweep_threads << ",\n";
    // Speedup is only interpretable against the machine that
    // measured it: a 4-thread sweep on 2 cores SHOULD look bad.
    os << "  \"host_cores\": "
       << std::thread::hardware_concurrency() << ",\n";
    os << "  \"parallel_wall_seconds\": "
       << obs::jsonNumber(parallel_seconds) << ",\n";
    os << "  \"speedup\": "
       << obs::jsonNumber(parallel_seconds > 0.0
                              ? serial_seconds / parallel_seconds
                              : 0.0);
    if (parallel_host != nullptr) {
        os << ",\n  \"host\": ";
        parallel_host->writeJson(os);
    }
    os << "}}\n";
    inform("wrote simulation rates to %s", path.c_str());
}

} // namespace

int
main(int argc, char **argv)
{
    std::string simrate_out = "BENCH_simrate.json";
    bool gemm_only = false;
    bool no_sweep = false;
    salam::bench::parseObsArgs(
        argc, argv,
        {{"--simrate-out", "<file>",
          "simulation-rate JSON path (default BENCH_simrate.json)",
          [&](const std::string &v) { simrate_out = v; }, true},
         {"--gemm-only", "",
          "probe mode: only the GEMM kernel and the sweep section",
          [&](const std::string &) { gemm_only = true; }},
         {"--no-sweep", "",
          "skip the serial-vs-parallel sweep legs",
          [&](const std::string &) { no_sweep = true; }}});

    core::DeviceConfig default_dev;
    std::vector<KernelRate> rates;

    if (!gemm_only) {
        header("Table IV: simulator setup and runtime execution "
               "timing");
        std::printf("%-14s | %10s %10s | %10s %10s | %9s %9s\n",
                    "Benchmark", "tracegen", "aladdin", "compile",
                    "salam", "pre.spd", "sim.spd");

        double pre_product = 1.0, sim_product = 1.0;
        int count = 0;
        for (const auto &kernel : machsuiteKernels()) {
            // Baseline: trace generation + trace-based simulation.
            ir::Module mod("m");
            ir::IRBuilder b(mod);
            ir::Function *fn = kernel->buildOptimized(b);
            ir::FlatMemory mem;
            kernel->seed(mem, 0x10000);
            AladdinSimulator baseline;
            AladdinResult base = baseline.run(
                *fn, kernel->args(0x10000), mem,
                "/tmp/salam_table4_trace.txt");

            // gem5-SALAM: compilation + engine simulation.
            BenchRun salam_run = runSalam(*kernel);
            rates.push_back(
                {kernel->name(), salam_run.cycles,
                 salam_run.simulateSeconds,
                 static_cast<double>(salam_run.cycles) *
                     static_cast<double>(default_dev.clockPeriod) /
                     std::max(salam_run.simulateSeconds, 1e-9)});

            double pre_speedup = base.traceGenSeconds /
                std::max(salam_run.compileSeconds, 1e-9);
            double sim_speedup = base.simulateSeconds /
                std::max(salam_run.simulateSeconds, 1e-9);
            pre_product *= pre_speedup;
            sim_product *= sim_speedup;
            ++count;

            std::printf("%-14s | %9.4fs %9.4fs | %9.4fs %9.4fs | "
                        "%8.1fx %8.1fx\n",
                        kernel->name().c_str(),
                        base.traceGenSeconds, base.simulateSeconds,
                        salam_run.compileSeconds,
                        salam_run.simulateSeconds, pre_speedup,
                        sim_speedup);
        }
        std::printf("\nGeomean speedup: preprocess %.1fx, simulate "
                    "%.1fx (paper averages: 123x / 697x)\n",
                    std::pow(pre_product, 1.0 / count),
                    std::pow(sim_product, 1.0 / count));
    } else {
        header("Simulation-rate probe (GEMM only)");
        for (const auto &kernel : machsuiteKernels()) {
            if (kernel->name() != "gemm")
                continue;
            BenchRun salam_run = runSalam(*kernel);
            rates.push_back(
                {kernel->name(), salam_run.cycles,
                 salam_run.simulateSeconds,
                 static_cast<double>(salam_run.cycles) *
                     static_cast<double>(default_dev.clockPeriod) /
                     std::max(salam_run.simulateSeconds, 1e-9)});
        }
        if (rates.empty())
            fatal("no gemm kernel in the MachSuite set");
    }

    for (const KernelRate &r : rates) {
        std::printf("%-14s %12llu cycles %9.4fs  %.3e ticks/s\n",
                    r.name.c_str(),
                    static_cast<unsigned long long>(r.cycles),
                    r.wallSeconds, r.ticksPerSec);
    }

    if (no_sweep) {
        writeSimrateJson(simrate_out, rates, 0, 0.0, 0.0, nullptr);
        return 0;
    }

    // Serial vs parallel sweep: the same 8 GEMM points, once on one
    // thread and once on the worker pool. --sweep-threads 0 means
    // "all hardware threads" (resolveThreads); the default probe
    // width stays 4.
    unsigned sweep_threads = obsOptions().sweepThreads != 1
        ? effectiveSweepThreads() : 4;
    sweep_threads = drive::SweepRunner::resolveThreads(sweep_threads);
    header("GEMM sweep wall-clock: serial vs parallel");
    double serial_seconds = timedGemmSweep(1);
    drive::SweepHostSummary parallel_host;
    double parallel_seconds =
        timedGemmSweep(sweep_threads, &parallel_host);
    std::printf("8 points serial:     %.3fs\n", serial_seconds);
    std::printf("8 points, %u threads: %.3fs (%.2fx)\n",
                sweep_threads, parallel_seconds,
                parallel_seconds > 0.0
                    ? serial_seconds / parallel_seconds
                    : 0.0);

    writeSimrateJson(simrate_out, rates, sweep_threads,
                     serial_seconds, parallel_seconds,
                     &parallel_host);
    // An interrupted probe produced a truncated timing comparison;
    // the distinct exit code tells wrappers not to trust it.
    if (drive::SweepRunner::shutdownRequested())
        return drive::SweepRunner::interruptedExitCode;
    return 0;
}

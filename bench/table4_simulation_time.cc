/**
 * @file
 * Table IV reproduction: simulator setup and runtime execution
 * timing, gem5-SALAM vs the trace-based baseline.
 *
 * The baseline pays for instrumented execution + trace-file I/O in
 * preprocessing, and for trace loading + DDDG construction in
 * simulation; gem5-SALAM's only preprocessing is compiling the
 * kernel (building + optimizing IR), and its simulation operates on
 * the static CDFG with small runtime queues. The paper reports
 * average speedups of 123x (preprocess) and 697x (simulate); the
 * shape to reproduce is preprocessing much faster across the board
 * and simulation faster particularly for kernels with large traces.
 */

#include <cmath>

#include "baseline/aladdin.hh"
#include "common.hh"

using namespace salam;
using namespace salam::bench;
using namespace salam::kernels;
using namespace salam::baseline;

int
main(int argc, char **argv)
{
    salam::bench::parseObsArgs(argc, argv);
    header("Table IV: simulator setup and runtime execution timing");
    std::printf("%-14s | %10s %10s | %10s %10s | %9s %9s\n",
                "Benchmark", "tracegen", "aladdin", "compile",
                "salam", "pre.spd", "sim.spd");

    double pre_product = 1.0, sim_product = 1.0;
    int count = 0;
    for (const auto &kernel : machsuiteKernels()) {
        // Baseline: trace generation + trace-based simulation.
        ir::Module mod("m");
        ir::IRBuilder b(mod);
        ir::Function *fn = kernel->buildOptimized(b);
        ir::FlatMemory mem;
        kernel->seed(mem, 0x10000);
        AladdinSimulator baseline;
        AladdinResult base = baseline.run(
            *fn, kernel->args(0x10000), mem,
            "/tmp/salam_table4_trace.txt");

        // gem5-SALAM: compilation + engine simulation.
        BenchRun salam_run = runSalam(*kernel);

        double pre_speedup = base.traceGenSeconds /
            std::max(salam_run.compileSeconds, 1e-9);
        double sim_speedup = base.simulateSeconds /
            std::max(salam_run.simulateSeconds, 1e-9);
        pre_product *= pre_speedup;
        sim_product *= sim_speedup;
        ++count;

        std::printf("%-14s | %9.4fs %9.4fs | %9.4fs %9.4fs | "
                    "%8.1fx %8.1fx\n",
                    kernel->name().c_str(), base.traceGenSeconds,
                    base.simulateSeconds, salam_run.compileSeconds,
                    salam_run.simulateSeconds, pre_speedup,
                    sim_speedup);
    }
    std::printf("\nGeomean speedup: preprocess %.1fx, simulate "
                "%.1fx (paper averages: 123x / 697x)\n",
                std::pow(pre_product, 1.0 / count),
                std::pow(sim_product, 1.0 / count));
    return 0;
}

/**
 * @file
 * Table III reproduction: system validation against the FPGA-board
 * surrogate.
 *
 * Five benchmarks run as full-system simulations — host driver
 * programs a cluster DMA to stage inputs into the accelerator SPM,
 * starts the accelerator over MMRs, waits for its interrupt, and
 * DMAs results back — and the measured compute / bulk-transfer /
 * total times are compared against the analytic ZCU102 surrogate
 * (HLS cycles at the fabric clock + DDR streaming model).
 */

#include <cmath>

#include "common.hh"
#include "hls/fpga_model.hh"
#include "hls/hls_scheduler.hh"
#include "sys/system.hh"

using namespace salam;
using namespace salam::bench;
using namespace salam::kernels;
using namespace salam::sys;
using namespace salam::mem;

namespace
{

struct SystemTimes
{
    double computeUs = 0.0;
    double transferUs = 0.0;

    double totalUs() const { return computeUs + transferUs; }
};

/** Full-system run: DMA in, compute, DMA out; times from marks. */
SystemTimes
runFullSystem(const kernels::Kernel &kernel)
{
    ir::Module mod("m");
    ir::IRBuilder b(mod);
    ir::Function *fn = kernel.buildOptimized(b);

    Simulation sim;
    SalamSystem sys(sim);
    core::DeviceConfig dev;
    dev.blockSequentialImport = true; // ILP-matched to the RTL
    auto &cluster = sys.addCluster("c0", dev.clockPeriod);

    std::uint64_t bytes = kernel.footprintBytes();
    std::uint64_t spm_bytes = ((bytes + 0xFFF) & ~0xFFFull) + 0x1000;

    ScratchpadConfig sproto;
    sproto.readPorts = 2;
    sproto.writePorts = 2;
    sproto.numPorts = 2;
    auto &spm = cluster.addSpm("spm", spm_bytes, sproto, false);
    cluster.localXbar().connectDevice(spm.port(1),
                                      spm.config().range);

    core::DmaConfig dma_proto;
    dma_proto.burstBytes = 64;
    auto &dma = cluster.addDma("dma", dma_proto);
    unsigned dma_irq = sys.allocateIrq();
    dma.setIrqCallback(sys.gic().lineCallback(dma_irq));

    auto &accel = cluster.addAccelerator(
        "acc", *fn, dev, {{"spm", {spm.config().range}, false}});
    bindPorts(accel.comm->dataPort(0), spm.port(0));

    // Stage the dataset in DRAM; the driver DMAs it across.
    std::uint64_t dram_base = SystemAddressMap::dramBase + 0x10000;
    std::uint64_t spm_base = spm.config().range.start;
    DramBackdoor dram_backdoor(sys.dram());
    kernel.seed(dram_backdoor, dram_base);

    auto args = kernel.args(dram_base);
    std::vector<std::uint64_t> arg_bits;
    for (const auto &arg : args) {
        // Rebase pointer arguments from DRAM to the SPM.
        if (arg.bits >= dram_base &&
            arg.bits < dram_base + bytes) {
            arg_bits.push_back(arg.bits - dram_base + spm_base);
        } else {
            arg_bits.push_back(arg.bits);
        }
    }

    DriverCpu &host = sys.host();
    host.push(HostOp::mark("xfer_in.begin"));
    driver::pushDmaTransfer(host, dma.config().mmrRange.start,
                            dram_base, spm_base, bytes);
    host.push(HostOp::waitIrq(dma_irq));
    host.push(HostOp::mark("compute.begin"));
    driver::pushAcceleratorStart(host, accel, arg_bits);
    host.push(HostOp::waitIrq(accel.irqId));
    host.push(HostOp::mark("compute.end"));
    driver::pushDmaTransfer(host, dma.config().mmrRange.start,
                            spm_base, dram_base, bytes);
    host.push(HostOp::waitIrq(dma_irq));
    host.push(HostOp::mark("xfer_out.end"));
    sys.run();

    // Correctness gate: results made it back to DRAM.
    std::string failure = kernel.check(dram_backdoor, dram_base);
    if (!failure.empty())
        fatal("table3: %s wrong result: %s",
              kernel.name().c_str(), failure.c_str());

    SystemTimes t;
    t.computeUs = static_cast<double>(
                      host.markAt("compute.end") -
                      host.markAt("compute.begin")) /
        1e6;
    t.transferUs = static_cast<double>(
                       (host.markAt("compute.begin") -
                        host.markAt("xfer_in.begin")) +
                       (host.markAt("xfer_out.end") -
                        host.markAt("compute.end"))) /
        1e6;
    return t;
}

/** FPGA-board surrogate reference for the same workload. */
SystemTimes
referenceTimes(const kernels::Kernel &kernel)
{
    ir::Module mod("m");
    ir::IRBuilder b(mod);
    ir::Function *fn = kernel.buildOptimized(b);
    ir::FlatMemory mem;
    kernel.seed(mem, 0x10000);
    hls::HlsScheduler scheduler;
    hls::HlsResult hls =
        scheduler.estimate(*fn, kernel.args(0x10000), mem);

    hls::FpgaModel board;
    std::uint64_t bytes = kernel.footprintBytes();
    hls::FpgaTiming t = board.timing(hls.totalCycles, bytes, bytes);
    return SystemTimes{t.computeUs, t.bulkTransferUs};
}

} // namespace

int
main(int argc, char **argv)
{
    salam::bench::parseObsArgs(argc, argv);
    header("Table III: system validation vs FPGA surrogate");
    std::printf("%-14s | %10s %10s %10s | %10s %10s %10s | "
                "%8s %8s %8s\n",
                "Benchmark", "fpga.comp", "fpga.xfer", "fpga.tot",
                "sim.comp", "sim.xfer", "sim.tot", "e.comp",
                "e.xfer", "e.tot");

    const char *names[] = {"fft-strided", "gemm", "stencil2d",
                           "stencil3d", "md-knn"};
    double sum_comp = 0, sum_xfer = 0, sum_tot = 0;
    int count = 0;
    for (const char *name : names) {
        auto kernel = makeKernel(name);
        SystemTimes sim_t = runFullSystem(*kernel);
        SystemTimes ref_t = referenceTimes(*kernel);
        double e_comp = pctError(sim_t.computeUs, ref_t.computeUs);
        double e_xfer =
            pctError(sim_t.transferUs, ref_t.transferUs);
        double e_tot = pctError(sim_t.totalUs(), ref_t.totalUs());
        sum_comp += std::abs(e_comp);
        sum_xfer += std::abs(e_xfer);
        sum_tot += std::abs(e_tot);
        ++count;
        std::printf("%-14s | %10.2f %10.2f %10.2f | %10.2f %10.2f "
                    "%10.2f | %7.2f%% %7.2f%% %7.2f%%\n",
                    name, ref_t.computeUs, ref_t.transferUs,
                    ref_t.totalUs(), sim_t.computeUs,
                    sim_t.transferUs, sim_t.totalUs(), e_comp,
                    e_xfer, e_tot);
    }
    std::printf("\nAverage |error|: compute %.2f%%, transfer "
                "%.2f%%, total %.2f%% (paper: 1.94 / 2.35 / "
                "1.62)\n",
                sum_comp / count, sum_xfer / count,
                sum_tot / count);
    return 0;
}

/**
 * @file
 * Fig. 14 reproduction: GEMM stall analysis over read/write ports.
 *
 * (a) proportion of stalled vs new-execution cycles as memory
 *     bandwidth shrinks from 64 to 4 read/write ports;
 * (b) breakdown of what was outstanding during stalled cycles
 *     (loads+computation, loads+stores+computation, computation
 *     only, ...), exposing that GEMM's design space is dominated by
 *     floating-point computation and data transfer.
 */

#include "common.hh"

using namespace salam;
using namespace salam::bench;
using namespace salam::kernels;

int
main(int argc, char **argv)
{
    salam::bench::parseObsArgs(argc, argv);
    constexpr unsigned gemmN = 32;
    constexpr unsigned unroll = 32;

    header("Fig. 14(a): runtime instruction scheduling vs ports");
    std::printf("%-6s %10s %10s %10s\n", "ports", "cycles",
                "stalled", "new-exec");

    struct Row
    {
        unsigned ports;
        core::EngineStats stats;
    };
    std::vector<Row> rows;

    for (unsigned ports : {64u, 32u, 16u, 8u, 4u}) {
        auto kernel = makeGemm(gemmN, unroll);
        core::DeviceConfig dev;
        dev.readPortsPerCycle = ports;
        dev.writePortsPerCycle = ports;
        dev.readQueueSize = std::max(ports, 16u);
        dev.writeQueueSize = std::max(ports, 16u);
        BenchMemory memcfg;
        memcfg.spmReadPorts = ports;
        memcfg.spmWritePorts = ports;
        BenchRun run = runSalam(*kernel, dev, memcfg);
        rows.push_back({ports, run.stats});

        double total = static_cast<double>(run.stats.totalCycles);
        std::printf("%-6u %10llu %9.1f%% %9.1f%%\n", ports,
                    static_cast<unsigned long long>(
                        run.stats.totalCycles),
                    100.0 * run.stats.stallCycles / total,
                    100.0 * run.stats.newExecCycles / total);
    }

    header("Fig. 14(b): stall-source breakdown (% of stalled "
           "cycles; 'comp-only' are the paper's solid-black "
           "FP-computation bands)");
    std::printf("%-6s %10s %10s %10s %10s %10s %10s\n", "ports",
                "comp-only", "ld+comp", "st+comp", "ld+st+cmp",
                "mem-only", "empty");
    for (const Row &row : rows) {
        const core::EngineStats &s = row.stats;
        double stalls =
            std::max<double>(1.0, static_cast<double>(
                                      s.stallCycles));
        double mem_only = static_cast<double>(
            s.stallLoadOnly + s.stallStoreOnly + s.stallLoadStore);
        std::printf("%-6u %9.1f%% %9.1f%% %9.1f%% %9.1f%% %9.1f%% "
                    "%9.1f%%\n",
                    row.ports,
                    100.0 * s.stallComputeOnly / stalls,
                    100.0 * s.stallLoadCompute / stalls,
                    100.0 * s.stallStoreCompute / stalls,
                    100.0 * s.stallLoadStoreCompute / stalls,
                    100.0 * mem_only / stalls,
                    100.0 * s.stallEmpty / stalls);
    }
    return 0;
}

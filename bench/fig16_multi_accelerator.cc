/**
 * @file
 * Fig. 16 / Sec. IV-E reproduction: producer-consumer accelerator
 * scenarios for a CNN layer (conv2d -> ReLU -> max-pool).
 *
 * (a) private scratchpads: DMAs move data between accelerators and
 *     the host activates and synchronizes every stage (baseline,
 *     the gem5-Aladdin-style integration);
 * (b) shared scratchpad: no inter-accelerator copies, but a central
 *     controller (the host) still sequences the stages — the
 *     PARADE-style integration (paper: ~25% faster);
 * (c) stream buffers: accelerators pipeline directly through FIFO
 *     handshakes with no central synchronization (paper: 2.08x
 *     over the baseline) — the integration only gem5-SALAM models.
 */

#include <algorithm>
#include <vector>

#include "common.hh"
#include "sys/system.hh"

using namespace salam;
using namespace salam::bench;
using namespace salam::kernels;
using namespace salam::sys;
using namespace salam::mem;

namespace
{

constexpr unsigned imgW = 32, imgH = 32;
constexpr unsigned convW = imgW - 2, convH = imgH - 2; // 30x30
constexpr unsigned poolW = convW / 2, poolH = convH / 2; // 15x15
constexpr std::uint64_t imageBytes = 4ull * imgW * imgH;
constexpr std::uint64_t weightBytes = 4ull * 9;
constexpr std::uint64_t convOutBytes = 4ull * convW * convH;
constexpr std::uint64_t poolOutBytes = 4ull * poolW * poolH;

std::vector<float>
makeImage()
{
    Lcg rng(2020);
    std::vector<float> image(imgW * imgH + 9);
    for (auto &v : image)
        v = static_cast<float>(rng.nextDouble()) - 0.5f;
    return image;
}

/** Host-side golden: conv -> relu -> pool. */
std::vector<float>
golden(const std::vector<float> &image)
{
    const float *weights = image.data() + imgW * imgH;
    std::vector<float> conv(convW * convH);
    for (unsigned r = 0; r < convH; ++r) {
        for (unsigned c = 0; c < convW; ++c) {
            float acc = 0.0f;
            for (unsigned k1 = 0; k1 < 3; ++k1)
                for (unsigned k2 = 0; k2 < 3; ++k2)
                    acc += weights[k1 * 3 + k2] *
                        image[(r + k1) * imgW + c + k2];
            conv[r * convW + c] = std::max(acc, 0.0f); // + relu
        }
    }
    std::vector<float> pool(poolW * poolH);
    for (unsigned r = 0; r < poolH; ++r) {
        for (unsigned c = 0; c < poolW; ++c) {
            pool[r * poolW + c] = std::max(
                {conv[(2 * r) * convW + 2 * c],
                 conv[(2 * r) * convW + 2 * c + 1],
                 conv[(2 * r + 1) * convW + 2 * c],
                 conv[(2 * r + 1) * convW + 2 * c + 1]});
        }
    }
    return pool;
}

void
checkOutput(SalamSystem &sys, std::uint64_t dram_out,
            const std::vector<float> &expected, const char *tag)
{
    for (unsigned i = 0; i < expected.size(); ++i) {
        float got = 0;
        sys.dram().backdoorRead(dram_out + 4ull * i, &got, 4);
        if (std::abs(got - expected[i]) > 1e-4f)
            fatal("fig16 %s: wrong output at %u (%f vs %f)", tag,
                  i, got, expected[i]);
    }
}

ScratchpadConfig
spmProto()
{
    ScratchpadConfig proto;
    proto.readPorts = 4;
    proto.writePorts = 4;
    proto.numPorts = 2;
    return proto;
}

/** Scenario (a): private SPMs, DMA transfers, host-sequenced. */
Tick
scenarioPrivate(const std::vector<float> &image,
                const std::vector<float> &expected,
                const InterconnectConfig &icfg)
{
    Simulation sim;
    SalamSystem sys(sim);
    auto &cluster = sys.addCluster("c0", periodFromMhz(100), 0,
                                   icfg);

    auto &conv_spm = cluster.addSpm("conv_spm", 16 * 1024,
                                    spmProto());
    auto &relu_spm = cluster.addSpm("relu_spm", 16 * 1024,
                                    spmProto());
    auto &pool_spm = cluster.addSpm("pool_spm", 16 * 1024,
                                    spmProto());
    for (Scratchpad *spm : {&conv_spm, &relu_spm, &pool_spm}) {
        cluster.localXbar().connectDevice(spm->port(1),
                                          spm->config().range);
    }

    core::DmaConfig dma_proto;
    dma_proto.burstBytes = 16; // modest cluster data mover
    dma_proto.maxOutstanding = 2;
    auto &dma = cluster.addDma("dma", dma_proto);
    unsigned dma_irq = sys.allocateIrq();
    dma.setIrqCallback(sys.gic().lineCallback(dma_irq));

    ir::Module mod("m");
    ir::IRBuilder b(mod);
    ir::Function *conv_fn = makeConv2d(imgW, imgH)->buildOptimized(b);
    ir::Function *relu_fn = makeRelu(convW * convH)->buildOptimized(b);
    ir::Function *pool_fn = makeMaxPool(convW, convH)->buildOptimized(b);

    auto &conv = cluster.addAccelerator(
        "conv", *conv_fn, {},
        {{"spm", {conv_spm.config().range}, false}});
    bindPorts(conv.comm->dataPort(0), conv_spm.port(0));
    auto &relu = cluster.addAccelerator(
        "relu", *relu_fn, {},
        {{"spm", {relu_spm.config().range}, false}});
    bindPorts(relu.comm->dataPort(0), relu_spm.port(0));
    auto &pool = cluster.addAccelerator(
        "pool", *pool_fn, {},
        {{"spm", {pool_spm.config().range}, false}});
    bindPorts(pool.comm->dataPort(0), pool_spm.port(0));

    // DRAM staging.
    std::uint64_t dram_in = SystemAddressMap::dramBase + 0x10000;
    std::uint64_t dram_out = SystemAddressMap::dramBase + 0x40000;
    sys.dram().backdoorWrite(dram_in, image.data(),
                             image.size() * 4);

    std::uint64_t conv_in = conv_spm.config().range.start;
    std::uint64_t conv_wts = conv_in + imageBytes;
    std::uint64_t conv_out = conv_wts + 0x100;
    std::uint64_t relu_in = relu_spm.config().range.start;
    std::uint64_t relu_out = relu_in + convOutBytes;
    std::uint64_t pool_in = pool_spm.config().range.start;
    std::uint64_t pool_rowbuf = pool_in + convOutBytes;
    std::uint64_t pool_out = pool_rowbuf + 0x200;

    DriverCpu &host = sys.host();
    std::uint64_t dma_mmr = dma.config().mmrRange.start;
    host.push(HostOp::mark("begin"));
    driver::pushDmaTransfer(host, dma_mmr, dram_in, conv_in,
                            imageBytes + weightBytes);
    host.push(HostOp::waitIrq(dma_irq));
    driver::pushAcceleratorStart(host, conv,
                                 {conv_in, conv_wts, conv_out});
    host.push(HostOp::waitIrq(conv.irqId));
    driver::pushDmaTransfer(host, dma_mmr, conv_out, relu_in,
                            convOutBytes);
    host.push(HostOp::waitIrq(dma_irq));
    driver::pushAcceleratorStart(host, relu, {relu_in, relu_out});
    host.push(HostOp::waitIrq(relu.irqId));
    driver::pushDmaTransfer(host, dma_mmr, relu_out, pool_in,
                            convOutBytes);
    host.push(HostOp::waitIrq(dma_irq));
    driver::pushAcceleratorStart(
        host, pool, {pool_in, pool_rowbuf, pool_out});
    host.push(HostOp::waitIrq(pool.irqId));
    driver::pushDmaTransfer(host, dma_mmr, pool_out, dram_out,
                            poolOutBytes);
    host.push(HostOp::waitIrq(dma_irq));
    host.push(HostOp::mark("end"));
    sys.run();

    checkOutput(sys, dram_out, expected, "private");
    return host.markAt("end") - host.markAt("begin");
}

/** Scenario (b): shared SPM, host-sequenced (central control). */
Tick
scenarioShared(const std::vector<float> &image,
               const std::vector<float> &expected,
               const InterconnectConfig &icfg)
{
    Simulation sim;
    SalamSystem sys(sim);
    auto &cluster = sys.addCluster("c0", periodFromMhz(100), 0,
                                   icfg);

    // Multi-ported shared SPM: one direct port per accelerator
    // (the paper's shared-scratchpad organization) plus one routed
    // through the local crossbar for the DMA.
    ScratchpadConfig proto = spmProto();
    proto.numPorts = 4;
    proto.readPorts = 6;
    proto.writePorts = 6;
    auto &shared = cluster.addSpm("shared", 64 * 1024, proto,
                                  false);
    cluster.localXbar().connectDevice(shared.port(3),
                                      shared.config().range);

    core::DmaConfig dma_proto;
    dma_proto.burstBytes = 16; // modest cluster data mover
    dma_proto.maxOutstanding = 2;
    auto &dma = cluster.addDma("dma", dma_proto);
    unsigned dma_irq = sys.allocateIrq();
    dma.setIrqCallback(sys.gic().lineCallback(dma_irq));

    ir::Module mod("m");
    ir::IRBuilder b(mod);
    ir::Function *conv_fn = makeConv2d(imgW, imgH)->buildOptimized(b);
    ir::Function *relu_fn = makeRelu(convW * convH)->buildOptimized(b);
    ir::Function *pool_fn = makeMaxPool(convW, convH)->buildOptimized(b);

    AcceleratorCluster::DataPortSpec shared_port{
        "mem", {shared.config().range}, false};
    auto &conv = cluster.addAccelerator("conv", *conv_fn, {},
                                        {shared_port});
    bindPorts(conv.comm->dataPort(0), shared.port(0));
    auto &relu = cluster.addAccelerator("relu", *relu_fn, {},
                                        {shared_port});
    bindPorts(relu.comm->dataPort(0), shared.port(1));
    auto &pool = cluster.addAccelerator("pool", *pool_fn, {},
                                        {shared_port});
    bindPorts(pool.comm->dataPort(0), shared.port(2));

    std::uint64_t dram_in = SystemAddressMap::dramBase + 0x10000;
    std::uint64_t dram_out = SystemAddressMap::dramBase + 0x40000;
    sys.dram().backdoorWrite(dram_in, image.data(),
                             image.size() * 4);

    std::uint64_t base = shared.config().range.start;
    std::uint64_t in = base;
    std::uint64_t wts = in + imageBytes;
    std::uint64_t conv_out = wts + 0x100;
    std::uint64_t relu_out = conv_out + convOutBytes;
    std::uint64_t rowbuf = relu_out + convOutBytes;
    std::uint64_t pool_out = rowbuf + 0x200;

    DriverCpu &host = sys.host();
    std::uint64_t dma_mmr = dma.config().mmrRange.start;
    host.push(HostOp::mark("begin"));
    driver::pushDmaTransfer(host, dma_mmr, dram_in, in,
                            imageBytes + weightBytes);
    host.push(HostOp::waitIrq(dma_irq));
    driver::pushAcceleratorStart(host, conv, {in, wts, conv_out});
    host.push(HostOp::waitIrq(conv.irqId));
    driver::pushAcceleratorStart(host, relu,
                                 {conv_out, relu_out});
    host.push(HostOp::waitIrq(relu.irqId));
    driver::pushAcceleratorStart(host, pool,
                                 {relu_out, rowbuf, pool_out});
    host.push(HostOp::waitIrq(pool.irqId));
    driver::pushDmaTransfer(host, dma_mmr, pool_out, dram_out,
                            poolOutBytes);
    host.push(HostOp::waitIrq(dma_irq));
    host.push(HostOp::mark("end"));
    sys.run();

    checkOutput(sys, dram_out, expected, "shared");
    return host.markAt("end") - host.markAt("begin");
}

/** Scenario (c): direct stream-buffer pipeline, self-synchronized. */
Tick
scenarioStream(const std::vector<float> &image,
               const std::vector<float> &expected,
               const InterconnectConfig &icfg)
{
    Simulation sim;
    SalamSystem sys(sim);
    auto &cluster = sys.addCluster("c0", periodFromMhz(100), 0,
                                   icfg);

    auto &conv_spm = cluster.addSpm("conv_spm", 16 * 1024,
                                    spmProto());
    auto &pool_spm = cluster.addSpm("pool_spm", 16 * 1024,
                                    spmProto());
    cluster.localXbar().connectDevice(conv_spm.port(1),
                                      conv_spm.config().range);
    cluster.localXbar().connectDevice(pool_spm.port(1),
                                      pool_spm.config().range);

    auto &fifo1 = cluster.addStreamBuffer("fifo1", 64);
    auto &fifo2 = cluster.addStreamBuffer("fifo2", 64);

    core::DmaConfig dma_proto;
    dma_proto.burstBytes = 16; // modest cluster data mover
    dma_proto.maxOutstanding = 2;
    auto &dma = cluster.addDma("dma", dma_proto);
    unsigned dma_irq = sys.allocateIrq();
    dma.setIrqCallback(sys.gic().lineCallback(dma_irq));

    ir::Module mod("m");
    ir::IRBuilder b(mod);
    ir::Function *conv_fn =
        makeConv2d(imgW, imgH, /*stream_out=*/true)->buildOptimized(b);
    ir::Function *relu_fn =
        makeRelu(convW * convH, true, true)->buildOptimized(b);
    ir::Function *pool_fn =
        makeMaxPool(convW, convH, /*stream_in=*/true, false)
            ->buildOptimized(b);

    auto &conv = cluster.addAccelerator(
        "conv", *conv_fn, {},
        {{"spm", {conv_spm.config().range}, false},
         {"stream", {fifo1.config().writeRange}, false}});
    bindPorts(conv.comm->dataPort(0), conv_spm.port(0));
    bindPorts(conv.comm->dataPort(1), fifo1.writePort());

    auto &relu = cluster.addAccelerator(
        "relu", *relu_fn, {},
        {{"stream_in", {fifo1.config().readRange}, false},
         {"stream_out", {fifo2.config().writeRange}, false}});
    bindPorts(relu.comm->dataPort(0), fifo1.readPort());
    bindPorts(relu.comm->dataPort(1), fifo2.writePort());

    auto &pool = cluster.addAccelerator(
        "pool", *pool_fn, {},
        {{"stream_in", {fifo2.config().readRange}, false},
         {"spm", {pool_spm.config().range}, false}});
    bindPorts(pool.comm->dataPort(0), fifo2.readPort());
    bindPorts(pool.comm->dataPort(1), pool_spm.port(0));

    std::uint64_t dram_in = SystemAddressMap::dramBase + 0x10000;
    std::uint64_t dram_out = SystemAddressMap::dramBase + 0x40000;
    sys.dram().backdoorWrite(dram_in, image.data(),
                             image.size() * 4);

    std::uint64_t conv_in = conv_spm.config().range.start;
    std::uint64_t conv_wts = conv_in + imageBytes;
    std::uint64_t rowbuf = pool_spm.config().range.start;
    std::uint64_t pool_out = rowbuf + 0x200;

    DriverCpu &host = sys.host();
    std::uint64_t dma_mmr = dma.config().mmrRange.start;
    host.push(HostOp::mark("begin"));
    driver::pushDmaTransfer(host, dma_mmr, dram_in, conv_in,
                            imageBytes + weightBytes);
    host.push(HostOp::waitIrq(dma_irq));
    // Start all three stages; the FIFOs self-synchronize them.
    driver::pushAcceleratorStart(
        host, pool,
        {fifo2.config().readRange.start, rowbuf, pool_out});
    driver::pushAcceleratorStart(
        host, relu,
        {fifo1.config().readRange.start,
         fifo2.config().writeRange.start});
    driver::pushAcceleratorStart(
        host, conv,
        {conv_in, conv_wts, fifo1.config().writeRange.start});
    host.push(HostOp::waitIrq(pool.irqId));
    driver::pushDmaTransfer(host, dma_mmr, pool_out, dram_out,
                            poolOutBytes);
    host.push(HostOp::waitIrq(dma_irq));
    host.push(HostOp::mark("end"));
    sys.run();

    checkOutput(sys, dram_out, expected, "stream");
    return host.markAt("end") - host.markAt("begin");
}

} // namespace

int
main(int argc, char **argv)
{
    // --interconnect selects the cluster-local fabric: "direct"
    // keeps the historical default crossbar; "xbar"/"axi" (with
    // --bus-width/--ic-credits) rerun all three scenarios with the
    // chosen fabric carrying the DMA and host-MMIO traffic. The
    // check.sh contention smoke compares xbar against a narrow AXI
    // bus here.
    InterconnectChoice fabric;
    salam::bench::parseObsArgs(argc, argv, fabric.options());
    InterconnectConfig icfg =
        fabric.direct() ? InterconnectConfig{} : fabric.config();
    auto image = makeImage();
    auto expected = golden(image);

    header("Fig. 16: producer-consumer accelerator scenarios "
           "(CNN layer: conv3x3 -> ReLU -> maxpool2x2)");

    Tick t_private = scenarioPrivate(image, expected, icfg);
    Tick t_shared = scenarioShared(image, expected, icfg);
    Tick t_stream = scenarioStream(image, expected, icfg);

    auto us = [](Tick t) { return static_cast<double>(t) / 1e6; };
    std::printf("%-28s %12s %10s\n", "Scenario", "end-to-end(us)",
                "speedup");
    std::printf("%-28s %12.2f %9.2fx\n",
                "(a) private SPM + DMA", us(t_private), 1.0);
    std::printf("%-28s %12.2f %9.2fx\n",
                "(b) shared SPM, central sync", us(t_shared),
                static_cast<double>(t_private) /
                    static_cast<double>(t_shared));
    std::printf("%-28s %12.2f %9.2fx\n",
                "(c) stream buffers, self-sync", us(t_stream),
                static_cast<double>(t_private) /
                    static_cast<double>(t_stream));
    std::printf("\n(paper: (b) ~1.25x, (c) ~2.08x over the "
                "baseline)\n");

    // Machine-parseable summary for check.sh's contention compare.
    std::printf("fig16-summary kind=%s width=%u credits=%u "
                "private=%llu shared=%llu stream=%llu\n",
                fabric.kind.c_str(), fabric.busWidthBytes,
                fabric.credits,
                static_cast<unsigned long long>(t_private),
                static_cast<unsigned long long>(t_shared),
                static_cast<unsigned long long>(t_stream));

    // --store-out: one record per fabric configuration, queryable
    // with salam-query (the configHash distinguishes fabric knobs,
    // so xbar vs narrow-axi runs land as separate records).
    if (obs::ResultStore *store = benchStore()) {
        obs::RunReport report;
        report.run = "fig16-contention";
        report.commandLine = obsOptions().commandLine;
        report.configHash = obs::fnv1aHash(
            std::string("fig16|ic=") + fabric.kind + "|icw=" +
            std::to_string(fabric.busWidthBytes) + "|icc=" +
            std::to_string(fabric.credits));
        report.cycles = t_private; // baseline scenario
        report.extra = {
            {"t_private_ticks", static_cast<double>(t_private)},
            {"t_shared_ticks", static_cast<double>(t_shared)},
            {"t_stream_ticks", static_cast<double>(t_stream)},
            {"bus_width_bytes",
             static_cast<double>(fabric.busWidthBytes)},
            {"credits", fabric.credits == mem::unlimitedCredits
                 ? -1.0
                 : static_cast<double>(fabric.credits)},
        };
        store->appendRunReport(report, obsOptions().benchName);
    }

    bool shape = t_shared < t_private && t_stream < t_shared;
    std::printf("Shape check (a > b > c): %s\n",
                shape ? "REPRODUCED" : "NOT REPRODUCED");
    return shape ? 0 : 1;
}

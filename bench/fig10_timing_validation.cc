/**
 * @file
 * Fig. 10 reproduction: timing validation against the HLS
 * surrogate.
 *
 * Eight MachSuite benchmarks run through both models with matched
 * ILP (same optimized IR, same memory-port assumptions): the
 * gem5-SALAM dynamic engine on one side, the static-schedule HLS
 * surrogate on the other. The paper reports ~1% average error with
 * MD-KNN worst; the shape to reproduce is small errors overall with
 * the FP-reuse-heavy kernels at the high end.
 */

#include <cmath>

#include "common.hh"
#include "hls/hls_scheduler.hh"

using namespace salam;
using namespace salam::bench;
using namespace salam::kernels;
using namespace salam::hls;

int
main(int argc, char **argv)
{
    // --interconnect xbar/axi reruns the validation with a modeled
    // fabric between accelerator and SPM; the check.sh A/B gate uses
    // it to prove a wide bus with unlimited credits is
    // cycle-identical to the crossbar.
    InterconnectChoice fabric;
    salam::bench::parseObsArgs(argc, argv, fabric.options());
    header("Fig. 10: performance validation (cycles vs HLS)");
    std::printf("%-14s %12s %12s %9s\n", "Benchmark",
                "gem5-SALAM", "HLS", "error");

    const char *names[] = {"fft-strided", "gemm", "md-grid",
                           "md-knn",      "nw",   "spmv-crs",
                           "stencil2d",   "stencil3d"};

    double total_abs_err = 0.0;
    int count = 0;
    for (const char *name : names) {
        auto kernel = makeKernel(name);

        // gem5-SALAM with ports matched to the HLS assumption
        // (dual-ported BRAM).
        core::DeviceConfig dev;
        dev.blockSequentialImport = true; // ILP-matched to HLS
        dev.readPortsPerCycle = 2;
        dev.writePortsPerCycle = 2;
        BenchMemory memcfg;
        memcfg.spmReadPorts = 2;
        memcfg.spmWritePorts = 2;
        fabric.apply(memcfg);
        BenchRun salam_run = runSalam(*kernel, dev, memcfg);

        // HLS surrogate on the same optimized IR.
        ir::Module mod("m");
        ir::IRBuilder b(mod);
        ir::Function *fn = kernel->buildOptimized(b);
        ir::FlatMemory mem;
        kernel->seed(mem, 0x10000);
        HlsScheduler scheduler;
        HlsResult hls =
            scheduler.estimate(*fn, kernel->args(0x10000), mem);

        double err = pctError(
            static_cast<double>(salam_run.cycles),
            static_cast<double>(hls.totalCycles));
        total_abs_err += std::abs(err);
        ++count;
        std::printf("%-14s %12llu %12llu %8.2f%%\n", name,
                    static_cast<unsigned long long>(
                        salam_run.cycles),
                    static_cast<unsigned long long>(
                        hls.totalCycles),
                    err);
    }
    std::printf("\nAverage |error|: %.2f%% (paper: ~1%%)\n",
                total_abs_err / count);
    return 0;
}

/**
 * @file
 * Shared experiment harness for the paper-reproduction benches.
 *
 * Each bench binary regenerates one table or figure from the paper.
 * The common piece is a single-accelerator testbench: kernel +
 * private scratchpad + communications interface, run to completion
 * with seeded data and checked against the golden reference, with
 * all statistics surfaced for the experiment to print.
 */

#ifndef SALAM_BENCH_COMMON_HH
#define SALAM_BENCH_COMMON_HH

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/compute_unit.hh"
#include "core/dyn_trace.hh"
#include "core/power_report.hh"
#include "core/static_cdfg.hh"
#include "drive/options.hh"
#include "drive/sweep_runner.hh"
#include "drive/sweep_spec.hh"
#include "drive/trace_replay.hh"
#include "inject/fault_injector.hh"
#include "inject/progress_sentinel.hh"
#include "kernels/machsuite.hh"
#include "mem/backdoor.hh"
#include "mem/interconnect.hh"
#include "mem/scratchpad.hh"
#include "obs/critical_path.hh"
#include "obs/debug_flags.hh"
#include "obs/host_telemetry.hh"
#include "obs/interval_stats.hh"
#include "obs/result_store.hh"
#include "obs/run_report.hh"
#include "sim/simulation.hh"

namespace salam::bench
{

/**
 * Observability options shared by every bench binary. Parsed once in
 * main() by parseObsArgs(); runSalam() consults them for each run.
 */
struct ObsOptions
{
    /** Chrome trace_event JSON path; the last run's trace wins. */
    std::string traceOut;

    /** RunReport JSONL path; one line appended per run. */
    std::string reportOut;

    /** StatRegistry::dumpJson path; the last run's stats win. */
    std::string statsOut;

    /**
     * Critical-path hotspot report path (JSON); folded stacks go to
     * "<path>.folded". Enables profiling; the last run wins.
     */
    std::string profileOut;

    /** Interval-stats period in engine cycles; 0 disables. */
    std::uint64_t statsInterval = 0;

    /** Fault specs from --inject, in "kind@site[:k=v]*" grammar. */
    std::vector<std::string> injectSpecs;

    /** Campaign seed resolving unspecified nth/bit fields. */
    std::uint64_t injectSeed = 1;

    /** Watchdog no-progress window in ticks; 0 disables. */
    Tick watchdogTicks = 0;

    /** Hang state-dump destination. */
    std::string dumpOut = "state_dump.json";

    /**
     * Worker threads for design-space sweeps (0 = hardware
     * concurrency). Forced to 1 by effectiveSweepThreads() when
     * per-run artifact options are active.
     */
    unsigned sweepThreads = 1;

    /**
     * Host-performance telemetry: attribute the simulator's own
     * wall time to phases, count lock contention, and (in sweeps)
     * record per-worker timelines. Sweep-safe: per-point telemetry
     * is owned by the point's SimContext, so this does NOT force
     * --sweep-threads 1.
     */
    bool hostTelemetry = false;

    /**
     * Host-telemetry output path. Single runs write the telemetry
     * JSON here (last run wins); sweeps write the scaling summary
     * here and a Chrome trace to "<path>.trace.json".
     */
    std::string hostTelemetryOut;

    /**
     * Result-store directory (--store-out). Every run appends a
     * queryable record here (and sweeps add per-point records); the
     * store is multi-writer safe, so this does NOT force
     * --sweep-threads 1.
     */
    std::string storeOut;

    /**
     * Per-point wall-clock budget for sweeps (--point-timeout,
     * seconds; 0 disables). A point that exceeds it is terminated
     * with outcome "timeout" plus a hang dump and the pool moves on.
     */
    double pointTimeoutSeconds = 0.0;

    /** Extra attempts per failed sweep point (--point-retries). */
    unsigned pointRetries = 0;

    /**
     * Resume store path (--resume): sweep points that already have
     * an ok record there are skipped with outcome "cached".
     */
    std::string resumePath;

    /**
     * Simulation mode for sweep points (--sim-mode):
     *  - "full": every point is a complete event-driven simulation;
     *  - "fast": capture the kernel's dynamic trace once, then
     *    re-schedule it per point (trace-reuse fast path), falling
     *    back to full simulation with a warning when a point's
     *    configuration could change control flow;
     *  - "auto": like "fast" but falls back silently.
     */
    std::string simMode = "full";

    /** This bench's name (argv[0] basename), stamped on records. */
    std::string benchName;

    /** The invoking command line (argv joined with spaces). */
    std::string commandLine;
};

inline ObsOptions &
obsOptions()
{
    static ObsOptions options;
    return options;
}

/**
 * The bench process's main-thread HostTelemetry. parseObsArgs()
 * attaches it to the launching thread's SimContext when
 * --host-telemetry is given; sweep workers get their own per-point
 * instances from SweepRunner instead.
 */
inline obs::HostTelemetry &
mainHostTelemetry()
{
    static obs::HostTelemetry telemetry;
    return telemetry;
}

/**
 * One command-line option a bench accepts — the shared table-driven
 * parser from drive/options.hh. The shared observability options
 * live in one table (sharedBenchOptions()); a bench passes its extra
 * options to parseObsArgs() instead of hand-peeling argv, so every
 * binary gets the same "--opt value"/"--opt=value" handling, the
 * same unknown-argument listing, --help for free, and
 * parent-directory creation on every output path.
 */
using BenchOption = drive::Option;

using BenchOptionList = drive::OptionList;

/** Parse an unsigned integer option value; fatal()s on junk. */
inline std::uint64_t
benchParseUint(const std::string &flag, const std::string &value,
               int base = 10)
{
    return drive::parseUint(flag, value, base);
}

/** Process-wide --store-out store slot; see benchStore(). */
inline std::unique_ptr<obs::ResultStore> &
benchStoreSlot()
{
    static std::unique_ptr<obs::ResultStore> store;
    return store;
}

/**
 * The bench's --store-out result store, or null when not requested.
 * Opened by parseObsArgs(); the static slot's destructor flushes any
 * queued records at process exit (fatal() in Exit mode runs static
 * destructors too, so graceful-fatal runs still land).
 */
inline obs::ResultStore *
benchStore()
{
    return benchStoreSlot().get();
}

/** The shared observability option table. */
inline BenchOptionList
sharedBenchOptions()
{
    auto o = []() -> ObsOptions & { return obsOptions(); };
    return {
        {"--trace-out", "<file>",
         "write a Chrome trace_event JSON trace (last run wins)",
         [o](const std::string &v) { o().traceOut = v; }, true},
        {"--report-out", "<file>",
         "append one RunReport JSON line per run",
         [o](const std::string &v) { o().reportOut = v; }, true},
        {"--stats-out", "<file>",
         "write the statistics dump as JSON (last run wins)",
         [o](const std::string &v) { o().statsOut = v; }, true},
        {"--profile-out", "<file>",
         "write the critical-path hotspot report (JSON; folded "
         "stacks to <file>.folded) and enable profiling",
         [o](const std::string &v) { o().profileOut = v; }, true},
        {"--store-out", "<dir>",
         "append queryable run records to a result store "
         "(inspect with salam-query; sweep-safe)",
         [o](const std::string &v) { o().storeOut = v; }, false},
        {"--stats-interval", "<N>",
         "dump+reset statistics every N engine cycles (JSONL "
         "series next to --stats-out, or stats.intervals.jsonl)",
         [o](const std::string &v) {
             std::uint64_t cycles =
                 benchParseUint("--stats-interval", v);
             if (cycles == 0)
                 fatal("--stats-interval needs a positive cycle "
                       "count");
             o().statsInterval = cycles;
         }},
        {"--debug-flags", "<spec>",
         "enable debug flags, e.g. \"Cache,DMA\" or \"All,-Event\"",
         [](const std::string &v) {
             std::string error = obs::DebugFlagRegistry::instance()
                                     .applySpecStrict(v);
             if (!error.empty())
                 fatal("%s", error.c_str());
         }},
        {"--verbose", "", "enable inform()/warn() output",
         [](const std::string &) { LogControl::setVerbose(true); }},
        {"--inject", "<spec>",
         "inject a fault, \"kind@site[:key=value]*\" (repeatable)",
         [o](const std::string &v) { o().injectSpecs.push_back(v); }},
        {"--inject-seed", "<N>",
         "campaign seed for unspecified nth/bit",
         [o](const std::string &v) {
             o().injectSeed = benchParseUint("--inject-seed", v, 0);
         }},
        {"--watchdog", "<ticks>",
         "forward-progress watchdog window",
         [o](const std::string &v) {
             std::uint64_t ticks = benchParseUint("--watchdog", v, 0);
             if (ticks == 0)
                 fatal("--watchdog needs a positive tick count");
             o().watchdogTicks = ticks;
         }},
        {"--dump-out", "<file>",
         "hang state-dump path (default state_dump.json)",
         [o](const std::string &v) { o().dumpOut = v; }, true},
        {"--sweep-threads", "<N>",
         "worker threads for design-space sweeps (0 = all hardware "
         "threads; default 1)",
         [o](const std::string &v) {
             std::uint64_t threads =
                 benchParseUint("--sweep-threads", v);
             if (threads > 1024)
                 fatal("--sweep-threads needs a thread count "
                       "(0 = hardware concurrency), got '%s'",
                       v.c_str());
             o().sweepThreads = static_cast<unsigned>(threads);
         }},
        {"--point-timeout", "<seconds>",
         "per-point wall-clock budget in sweeps; a hung point is "
         "classified outcome=timeout and the pool moves on "
         "(0 disables)",
         [o](const std::string &v) {
             char *end = nullptr;
             double seconds = std::strtod(v.c_str(), &end);
             if (end == v.c_str() || *end != '\0' || seconds < 0.0)
                 fatal("--point-timeout needs a non-negative "
                       "seconds value, got '%s'",
                       v.c_str());
             o().pointTimeoutSeconds = seconds;
         }},
        {"--point-retries", "<N>",
         "extra attempts for a failed sweep point, with exponential "
         "backoff (default 0)",
         [o](const std::string &v) {
             o().pointRetries = static_cast<unsigned>(
                 benchParseUint("--point-retries", v));
         }},
        {"--resume", "<store>",
         "skip sweep points that already have an ok record in this "
         "result store (outcome=cached); pair with --store-out to "
         "checkpoint into the same store",
         [o](const std::string &v) { o().resumePath = v; }},
        {"--sim-mode", "<mode>",
         "sweep-point simulation mode: full (default), fast "
         "(trace-reuse re-scheduling; warns on fallback), or auto "
         "(fast with silent fallback)",
         [o](const std::string &v) {
             if (v != "full" && v != "fast" && v != "auto")
                 fatal("--sim-mode needs full, fast, or auto, got "
                       "'%s'",
                       v.c_str());
             o().simMode = v;
         }},
        {"--host-telemetry", "",
         "attribute the simulator's own wall time to host phases "
         "and count lock contention",
         [o](const std::string &) { o().hostTelemetry = true; }},
        {"--host-telemetry-out", "<file>",
         "implies --host-telemetry; single runs write the telemetry "
         "JSON here, sweeps the scaling summary plus "
         "<file>.trace.json",
         [o](const std::string &v) {
             o().hostTelemetryOut = v;
             o().hostTelemetry = true;
         }, true},
    };
}

/**
 * Parse the shared observability arguments (see
 * sharedBenchOptions() for the list) plus this bench's @p extra
 * options. Recognizes "--opt value" and "--opt=value"; --help prints
 * the combined table and exits; anything unrecognized is fatal with
 * the full option listing. Output-path option values get their
 * missing parent directories created here, at parse time, so a typo
 * fails before a long simulation instead of after it.
 */
inline void
parseObsArgs(int argc, char **argv,
             const BenchOptionList &extra = {})
{
    ObsOptions &options = obsOptions();
    for (int i = 0; i < argc; ++i) {
        if (i > 0)
            options.commandLine += ' ';
        options.commandLine += argv[i];
    }
    if (argc > 0) {
        options.benchName = argv[0];
        if (auto slash = options.benchName.find_last_of('/');
            slash != std::string::npos)
            options.benchName.erase(0, slash + 1);
    }

    BenchOptionList table = sharedBenchOptions();
    table.insert(table.end(), extra.begin(), extra.end());

    drive::ParsePolicy policy;
    policy.program = options.benchName;
    drive::parseOptions(argc, argv, table, policy);

    if (options.hostTelemetry)
        SimContext::current().setHostTelemetry(&mainHostTelemetry());
    if (!options.storeOut.empty()) {
        std::string error;
        benchStoreSlot() =
            obs::ResultStore::open(options.storeOut, &error);
        if (benchStore() == nullptr)
            fatal("--store-out: %s", error.c_str());
    }
}

/**
 * The sweep thread count a bench should actually use: --sweep-threads
 * unless a per-run artifact or fault option is active. Those options
 * target "the run" (last-writer-wins trace/stats files, injection
 * logs on stdout), which only makes sense serially — quietly running
 * them on a pool would interleave or drop artifacts.
 */
inline unsigned
effectiveSweepThreads()
{
    const ObsOptions &options = obsOptions();
    const bool perRunArtifacts = !options.traceOut.empty() ||
                                 !options.statsOut.empty() ||
                                 !options.profileOut.empty() ||
                                 options.statsInterval > 0 ||
                                 !options.injectSpecs.empty();
    if (perRunArtifacts && options.sweepThreads != 1) {
        warn("per-run artifact/inject options force "
             "--sweep-threads 1");
        return 1;
    }
    return options.sweepThreads;
}

/**
 * SweepRunner options honouring the bench flags: the effective
 * thread count, host telemetry when --host-telemetry is on, and the
 * --store-out store (sweeps add per-point and summary records).
 */
inline drive::SweepRunner::Options
sweepRunnerOptions(unsigned threads)
{
    drive::SweepRunner::Options options;
    options.threads = threads;
    options.hostTelemetry = obsOptions().hostTelemetry;
    options.store = benchStore();
    options.storeName = obsOptions().benchName;
    options.pointTimeoutSeconds = obsOptions().pointTimeoutSeconds;
    options.pointRetries = obsOptions().pointRetries;
    options.resumePath = obsOptions().resumePath;
    // Durable per-point checkpoints whenever records are kept: a
    // killed sweep then loses at most its in-flight points.
    options.durable = options.store != nullptr;
    return options;
}

/**
 * The process exit code after a sweep: interruptedExitCode (75,
 * EX_TEMPFAIL) when the run was drained by SIGINT/SIGTERM — distinct
 * from both success and failure so wrappers know to --resume — else 0.
 */
inline int
sweepExitCode(const drive::SweepRunner &runner)
{
    if (!runner.interrupted())
        return 0;
    const std::string &store = obsOptions().storeOut;
    warn("sweep interrupted; finish the remaining points with "
         "--resume %s",
         store.empty() ? "<store>" : store.c_str());
    return drive::SweepRunner::interruptedExitCode;
}

/**
 * After a sweep: write the scaling summary + per-worker Chrome
 * trace when --host-telemetry-out was given. fatal()s on I/O
 * failure — the user asked for the file.
 */
inline void
writeSweepHostTelemetry(const drive::SweepRunner &runner,
                        const std::string &name)
{
    const ObsOptions &options = obsOptions();
    if (options.hostTelemetryOut.empty())
        return;
    if (!runner.writeHostTelemetryFiles(options.hostTelemetryOut,
                                        name))
        fatal("could not write host telemetry to '%s'",
              options.hostTelemetryOut.c_str());
}

/**
 * Build the fault injector described by --inject/--inject-seed and
 * attach it to @p sim; nullptr when no faults were requested. The
 * caller owns the injector (it must outlive sim.run()).
 */
inline std::unique_ptr<inject::FaultInjector>
makeFaultInjector(Simulation &sim)
{
    const ObsOptions &options = obsOptions();
    if (options.injectSpecs.empty())
        return nullptr;
    inject::FaultPlan plan;
    plan.seed = options.injectSeed;
    for (const std::string &spec : options.injectSpecs) {
        std::string error = plan.parse(spec);
        if (!error.empty())
            fatal("--inject %s: %s", spec.c_str(), error.c_str());
    }
    auto injector = std::make_unique<inject::FaultInjector>(
        std::move(plan));
    injector->attach(sim);
    return injector;
}

/** Arm the --watchdog sentinel over @p sim; no-op when disabled. */
inline void
installWatchdog(Simulation &sim, std::function<bool()> done)
{
    const ObsOptions &options = obsOptions();
    if (options.watchdogTicks == 0)
        return;
    inject::ProgressSentinel::Config cfg;
    cfg.windowTicks = options.watchdogTicks;
    cfg.dumpPath = options.dumpOut;
    cfg.done = std::move(done);
    sim.create<inject::ProgressSentinel>("watchdog", std::move(cfg))
        .start();
}

/** Print every fault that fired, for campaign replay comparison. */
inline void
printInjectionLog(const inject::FaultInjector *injector)
{
    if (injector == nullptr)
        return;
    std::printf("injections fired: %zu\n", injector->log().size());
    for (const inject::InjectionRecord &rec : injector->log()) {
        std::printf("  tick=%llu kind=%s site=%s %s\n",
                    static_cast<unsigned long long>(rec.tick),
                    inject::faultKindName(rec.kind),
                    rec.site.c_str(), rec.detail.c_str());
    }
}

/**
 * Graceful-degradation hook for a bench run: when the run dies
 * through fatal() (wrong results, watchdog, injected deadlock), flush
 * the trace, stats, and a run report carrying the fatal outcome so
 * the campaign still gets machine-readable artifacts. The returned
 * RAII handle deregisters the hook when the normal path takes over.
 */
inline ScopedTerminationHook
benchTerminationHook(Simulation &sim, std::string run_name)
{
    return ScopedTerminationHook(
        [&sim, run_name = std::move(run_name)](
            const char *outcome, const std::string &message) {
            const ObsOptions &options = obsOptions();
            if (obs::TraceSink *sink = sim.traceSink()) {
                if (!options.traceOut.empty())
                    sink->writeChromeTraceFile(options.traceOut);
            }
            if (!options.statsOut.empty()) {
                std::ofstream os(options.statsOut);
                if (os)
                    sim.stats().dumpJson(os);
            }
            if (!options.reportOut.empty() ||
                benchStore() != nullptr) {
                obs::RunReport report;
                report.run = run_name;
                report.commandLine = options.commandLine;
                report.outcome = outcome;
                report.extra = {
                    {"fatal_message_hash",
                     static_cast<double>(
                         obs::fnv1aHash(message) & 0xFFFFFFFFull)},
                };
                report.statsJson = sim.stats().dumpJsonString();
                if (!options.reportOut.empty())
                    report.appendToFile(options.reportOut);
                if (obs::ResultStore *store = benchStore()) {
                    store->appendRunReport(report,
                                           options.benchName);
                    // The process may be about to exit(1); make the
                    // fatal record durable now.
                    store->flush();
                }
            }
        });
}

/** Memory configuration for the single-accelerator testbench. */
struct BenchMemory
{
    unsigned spmReadPorts = 2;
    unsigned spmWritePorts = 2;
    unsigned spmLatency = 1;
    unsigned spmBanks = 1;

    /**
     * Insert a modeled interconnect between the accelerator's data
     * port and the SPM. Default false: the historical direct port
     * bind (zero fabric latency). When true, @ref interconnect
     * selects the fabric kind and its parameters.
     */
    bool useInterconnect = false;
    mem::InterconnectConfig interconnect;
};

/**
 * Shared --interconnect/--bus-width/--ic-credits handling: a bench
 * keeps one of these alive across parseObsArgs (append options() to
 * its extra list) and calls apply() on each BenchMemory it builds.
 */
struct InterconnectChoice
{
    /** "direct" (historical port bind), "xbar", or "axi". */
    std::string kind = "direct";
    unsigned busWidthBytes = 64;
    unsigned credits = mem::unlimitedCredits;

    bool direct() const { return kind == "direct"; }

    mem::InterconnectConfig
    config() const
    {
        mem::InterconnectConfig ic;
        ic.kind = kind == "axi" ? mem::InterconnectKind::AxiBus
                                : mem::InterconnectKind::Crossbar;
        ic.busWidthBytes = busWidthBytes;
        ic.maxOutstandingPerRequester = credits;
        return ic;
    }

    void
    apply(BenchMemory &memcfg) const
    {
        memcfg.useInterconnect = !direct();
        if (memcfg.useInterconnect)
            memcfg.interconnect = config();
    }

    BenchOptionList
    options()
    {
        return {
            {"--interconnect", "<kind>",
             "fabric between accelerator and memory: direct "
             "(default), xbar, or axi",
             [this](const std::string &v) {
                 if (v != "direct" && v != "xbar" && v != "axi")
                     fatal("--interconnect needs direct, xbar, or "
                           "axi, got '%s'",
                           v.c_str());
                 kind = v;
             }},
            {"--bus-width", "<bytes>",
             "AXI-like bus data-channel beat width in bytes "
             "(default 64)",
             [this](const std::string &v) {
                 busWidthBytes = static_cast<unsigned>(
                     benchParseUint("--bus-width", v));
             }},
            {"--ic-credits", "<N>",
             "outstanding-transaction credits per requester "
             "(default unlimited; 0 is rejected at elaboration)",
             [this](const std::string &v) {
                 credits = static_cast<unsigned>(
                     benchParseUint("--ic-credits", v));
             }},
        };
    }
};

/** Everything an experiment wants to know about one run. */
struct BenchRun
{
    std::uint64_t cycles = 0;
    core::EngineStats stats;
    core::AcceleratorReport report;
    std::uint64_t spmReads = 0;
    std::uint64_t spmWrites = 0;
    /** Wall-clock seconds: IR construction + optimization. */
    double compileSeconds = 0.0;
    /** Wall-clock seconds: timed simulation. */
    double simulateSeconds = 0.0;
    /** Golden-check diagnostic; empty on success. */
    std::string checkFailure;
    /** Critical-path analysis; empty unless profiling was on. */
    obs::CriticalPathReport profile;
    /**
     * How this run was produced: "full" (event-driven simulation),
     * "fast" (trace-reuse replay), or "full-fallback" (fast was
     * requested but a blocker forced full simulation).
     */
    std::string simMode = "full";
    /** Why the fast path was declined (simMode "full-fallback"). */
    std::string fallbackReason;

    double
    runtimeUs(const core::DeviceConfig &dev) const
    {
        return static_cast<double>(cycles) *
            static_cast<double>(dev.clockPeriod) / 1e6;
    }
};

/**
 * Fingerprint of the timing-relevant knobs of one testbench run —
 * the RunReport configHash that runSalam() records. Factored out so
 * a sweep can compute the hash of a point it has NOT run yet: the
 * --resume lookup key (SweepRunner::Options::pointHash).
 */
inline std::uint64_t
runConfigHash(const std::string &kernel_name,
              const core::DeviceConfig &dev,
              const BenchMemory &memcfg)
{
    std::string key = kernel_name + "|clk=" +
        std::to_string(dev.clockPeriod) + "|drp=" +
        std::to_string(dev.readPortsPerCycle) + "|dwp=" +
        std::to_string(dev.writePortsPerCycle) + "|rq=" +
        std::to_string(dev.readQueueSize) + "|wq=" +
        std::to_string(dev.writeQueueSize) + "|seq=" +
        std::to_string(dev.blockSequentialImport ? 1 : 0);
    // Only non-default FU limits enter the key, so configurations
    // that never touch a unit type hash the same across profiles
    // that add new types.
    for (std::size_t t = 0; t < dev.fuLimits.size(); ++t) {
        if (dev.fuLimits[t] != 0)
            key += "|fu" + std::to_string(t) + "=" +
                std::to_string(dev.fuLimits[t]);
    }
    key += "|rp=" + std::to_string(memcfg.spmReadPorts) + "|wp=" +
        std::to_string(memcfg.spmWritePorts) + "|lat=" +
        std::to_string(memcfg.spmLatency) + "|banks=" +
        std::to_string(memcfg.spmBanks);
    // Interconnect keys only enter the hash when a fabric is in the
    // path, so direct-bind configurations hash exactly as they did
    // before the interconnect existed (resume/store compatibility).
    if (memcfg.useInterconnect) {
        const mem::InterconnectConfig &ic = memcfg.interconnect;
        key += std::string("|ic=") + interconnectKindName(ic.kind) +
            "|icf=" + std::to_string(ic.forwardLatency) + "|icr=" +
            std::to_string(ic.responseLatency) + "|icq=" +
            std::to_string(ic.requestsPerCycle) + "|icw=" +
            std::to_string(ic.busWidthBytes) + "|icc=" +
            std::to_string(ic.maxOutstandingPerRequester);
    }
    return obs::fnv1aHash(key);
}

/**
 * Run @p kernel on the single-accelerator SALAM testbench.
 * fatal()s if the functional check fails — an experiment over wrong
 * results is meaningless.
 *
 * @param capture When non-null, record the run's dynamic trace here
 *        (the trace-reuse fast path's input; see runSalamMode).
 * @param suppress_artifacts Skip every user-facing artifact: traces,
 *        stats/profile files, run reports, and store records. Set
 *        for internal runs (trace capture) that must not pollute the
 *        experiment's outputs or pair up in `salam-query diff`.
 */
inline BenchRun
runSalam(const kernels::Kernel &kernel,
         const core::DeviceConfig &dev = {},
         const BenchMemory &memcfg = {},
         core::DynTrace *capture = nullptr,
         bool suppress_artifacts = false)
{
    using clock = std::chrono::steady_clock;
    BenchRun out;

    // Host telemetry (if attached to this thread's context) spans
    // the whole run: everything from IR build to the first event is
    // elaboration; sim.run() self-attributes via the event queue.
    obs::HostTelemetry *tel =
        SimContext::current().hostTelemetry();
    if (tel != nullptr)
        tel->beginPhase(obs::HostPhase::Elaboration);

    auto t0 = clock::now();
    ir::Module mod("bench");
    ir::IRBuilder builder(mod);
    ir::Function *fn = kernel.buildOptimized(builder);
    auto t1 = clock::now();

    Simulation sim;
    std::unique_ptr<inject::FaultInjector> injector =
        makeFaultInjector(sim);
    ScopedTerminationHook flush_on_fatal =
        benchTerminationHook(sim, kernel.name());
    if (!suppress_artifacts) {
        if (!obsOptions().traceOut.empty())
            sim.enableTracing();
        // A sweep may ask one representative point to capture its
        // simulated-time trace for the host-telemetry Chrome dump.
        if (tel != nullptr && tel->wantSimTraceCapture())
            sim.enableTracing();
        if (!obsOptions().profileOut.empty() ||
            obs::flag::Profile.enabled()) {
            sim.enableProfiling();
        }
    }
    constexpr std::uint64_t spm_base = 0x10000;
    std::uint64_t spm_bytes =
        ((kernel.footprintBytes() + 0xFFF) & ~0xFFFull) + 0x1000;

    mem::ScratchpadConfig scfg;
    scfg.range = mem::AddrRange{spm_base, spm_base + spm_bytes};
    scfg.latencyCycles = memcfg.spmLatency;
    scfg.readPorts = memcfg.spmReadPorts;
    scfg.writePorts = memcfg.spmWritePorts;
    scfg.banks = memcfg.spmBanks;
    auto &spm = sim.create<mem::Scratchpad>("spm", dev.clockPeriod,
                                            scfg);

    core::CommInterfaceConfig ccfg;
    ccfg.mmrRange = mem::AddrRange{0x2000, 0x2000 + 256};
    ccfg.dataPorts.push_back({"spm", {scfg.range}});
    auto &comm = sim.create<core::CommInterface>(
        "comm", dev.clockPeriod, ccfg);
    if (memcfg.useInterconnect) {
        // Route the accelerator's data traffic through a modeled
        // fabric instead of the direct bind. Validation happens in
        // makeInterconnect — before any CDFG is built.
        mem::Interconnect &fabric = mem::makeInterconnect(
            sim, "fabric", dev.clockPeriod, memcfg.interconnect);
        fabric.connectDevice(spm.port(0), scfg.range);
        mem::bindPorts(comm.dataPort(0),
                       fabric.addRequester("acc.data"));
    } else {
        mem::bindPorts(comm.dataPort(0), spm.port(0));
    }
    auto &cu =
        sim.create<core::ComputeUnit>("acc", *fn, dev, comm);
    if (capture != nullptr)
        cu.enableTraceCapture(capture);

    mem::ScratchpadBackdoor backdoor(spm);
    kernel.seed(backdoor, spm_base);

    std::unique_ptr<obs::IntervalStats> intervals;
    if (!suppress_artifacts && obsOptions().statsInterval > 0) {
        obs::IntervalStats::Config icfg;
        icfg.intervalTicks = obsOptions().statsInterval *
            static_cast<Tick>(dev.clockPeriod);
        icfg.path = obsOptions().statsOut.empty()
            ? std::string("stats.intervals.jsonl")
            : obsOptions().statsOut + ".intervals.jsonl";
        icfg.active = [&cu] { return !cu.finished(); };
        intervals = std::make_unique<obs::IntervalStats>(
            sim.eventQueue(), sim.stats(), icfg);
        intervals->setEnergyProbe([&cu, &spm] {
            return core::accumulatedDynamicEnergyPj(cu, &spm);
        });
        intervals->start();
    }

    installWatchdog(sim, [&cu] { return cu.finished(); });

    // Per-point deadline (no-op unless the SweepRunner armed one on
    // this context via --point-timeout). Point-suffixed dump path so
    // parallel workers never clobber each other's hang dumps.
    std::string deadline_dump = obsOptions().dumpOut;
    if (long pt = SimContext::current().sweepPointIndex(); pt >= 0)
        deadline_dump += ".point" + std::to_string(pt) + ".json";
    inject::armPointDeadline(sim, [&cu] { return cu.finished(); },
                             deadline_dump);

    if (tel != nullptr)
        tel->endPhase(); // Elaboration

    auto t2 = clock::now();
    cu.start(kernel.args(spm_base));
    sim.run();
    auto t3 = clock::now();

    if (!cu.finished()) {
        inject::reportHang(sim,
                           "event queue drained with kernel '" +
                               kernel.name() + "' unfinished",
                           obsOptions().dumpOut);
    }
    out.checkFailure = kernel.check(backdoor, spm_base);
    if (!out.checkFailure.empty())
        fatal("bench: %s wrong result: %s", kernel.name().c_str(),
              out.checkFailure.c_str());

    out.cycles = cu.cycleCount();
    out.stats = cu.stats();
    if (tel != nullptr) {
        tel->noteArena(out.stats.arenaHits, out.stats.arenaMisses);
        tel->samplePeakRss();
    }
    out.report = core::buildReport(cu, &spm);
    out.spmReads = spm.readCount();
    out.spmWrites = spm.writeCount();
    if (capture != nullptr) {
        capture->capturedBlockSequential = dev.blockSequentialImport;
        capture->sourceConfigHash =
            runConfigHash(kernel.name(), dev, memcfg);
    }
    out.compileSeconds =
        std::chrono::duration<double>(t1 - t0).count();
    out.simulateSeconds =
        std::chrono::duration<double>(t3 - t2).count();

    if (tel != nullptr)
        tel->beginPhase(obs::HostPhase::StatsEmit);
    sim.finalizeAll();
    if (intervals)
        intervals->finalize();
    if (sim.profilingEnabled() && !sim.profilers().empty()) {
        out.profile =
            obs::analyzeCriticalPath(*sim.profilers().front().second);
    }
    const ObsOptions &options = obsOptions();
    // The user explicitly asked for these files; failing to produce
    // one is an error, not a warning hidden behind the Warn flag.
    if (!suppress_artifacts && !options.profileOut.empty()) {
        if (!out.profile.writeJsonFile(options.profileOut))
            fatal("could not write profile to '%s'",
                  options.profileOut.c_str());
        std::string folded = options.profileOut + ".folded";
        if (!out.profile.writeFoldedFile(folded))
            fatal("could not write folded stacks to '%s'",
                  folded.c_str());
    }
    if (!options.traceOut.empty()) {
        if (obs::TraceSink *sink = sim.traceSink()) {
            if (!sink->writeChromeTraceFile(options.traceOut))
                fatal("could not write trace to '%s'",
                      options.traceOut.c_str());
        }
    }
    if (tel != nullptr && tel->wantSimTraceCapture()) {
        if (obs::TraceSink *sink = sim.traceSink())
            tel->captureSimTrace(sink->events());
    }
    if (!suppress_artifacts && !options.statsOut.empty()) {
        std::ofstream os(options.statsOut);
        if (os) {
            sim.stats().dumpJson(os);
        } else {
            fatal("could not write stats to '%s'",
                  options.statsOut.c_str());
        }
    }
    if (tel != nullptr)
        tel->endPhase(); // StatsEmit
    if (!suppress_artifacts &&
        (!options.reportOut.empty() || benchStore() != nullptr)) {
        obs::RunReport report;
        report.run = kernel.name();
        report.commandLine = options.commandLine;
        // Fingerprint the knobs that shape this run's timing. Also
        // the store's memoization key: findByConfigHash() answers
        // "has this exact configuration already been simulated?",
        // and --resume skips points whose hash already has an ok
        // record.
        report.configHash = runConfigHash(kernel.name(), dev, memcfg);
        report.cycles = out.cycles;
        report.simSeconds = out.simulateSeconds;
        report.compileSeconds = out.compileSeconds;
        report.extra = {
            {"spm_reads", static_cast<double>(out.spmReads)},
            {"spm_writes", static_cast<double>(out.spmWrites)},
            {"stall_cycles",
             static_cast<double>(out.stats.stallCycles)},
            {"dynamic_insts",
             static_cast<double>(out.stats.dynamicInstructions)},
            // Lets salam-query regress compute ticks/sec from a
            // record alone, whatever clock this point used.
            {"clock_period_ticks",
             static_cast<double>(dev.clockPeriod)},
        };
        if (injector) {
            report.extra.push_back(
                {"injections_fired",
                 static_cast<double>(injector->log().size())});
        }
        report.statsJson = sim.stats().dumpJsonString();
        // Host-side wall-time attribution for this context
        // (cumulative over the runs it has executed).
        if (tel != nullptr)
            report.hostJson = tel->dumpJsonString();
        if (!options.reportOut.empty() &&
            !report.appendToFile(options.reportOut))
            fatal("could not append run report to '%s'",
                  options.reportOut.c_str());
        if (obs::ResultStore *store = benchStore()) {
            store->appendRunReport(report, options.benchName);
            if (sim.profilingEnabled() &&
                !sim.profilers().empty()) {
                std::ostringstream prof;
                out.profile.writeJson(prof);
                obs::StoreRecord rec;
                rec.kind = "profile";
                rec.bench = options.benchName;
                rec.kernel = kernel.name();
                rec.configHash = report.configHash;
                rec.json = prof.str();
                store->append(std::move(rec));
            }
        }
    }
    printInjectionLog(injector.get());
    // Single-run telemetry dump (last run wins). Sweep workers run
    // under per-point telemetry, not the main object, so a pool
    // never races on this file — the sweep writes its own summary.
    if (!suppress_artifacts && !options.hostTelemetryOut.empty() &&
        tel != nullptr && tel == &mainHostTelemetry()) {
        std::ofstream os(options.hostTelemetryOut);
        if (!os)
            fatal("could not write host telemetry to '%s'",
                  options.hostTelemetryOut.c_str());
        tel->writeJsonWithLocks(os);
        os << "\n";
    }
    return out;
}

/**
 * Process-wide trace cache for --sim-mode fast/auto sweeps: one
 * capture run per (kernel, input) key, shared by every sweep worker.
 */
inline drive::TraceCache &
benchTraceCache()
{
    static drive::TraceCache cache;
    return cache;
}

/**
 * Capture @p kernel's dynamic trace plus the IR the replays will
 * re-schedule. The capture run uses the cheapest sound
 * configuration — dedicated FUs and wide memory minimize its cycle
 * count — while matching @p dev's block-sequential import regime,
 * the one knob that must agree between capture and replay.
 */
inline drive::TraceCache::Entry
captureTraceEntry(const kernels::Kernel &kernel,
                  const core::DeviceConfig &dev)
{
    using clock = std::chrono::steady_clock;
    auto t0 = clock::now();
    drive::TraceCache::Entry entry;

    core::DeviceConfig cap;
    cap.blockSequentialImport = dev.blockSequentialImport;
    cap.readPortsPerCycle = 64;
    cap.writePortsPerCycle = 64;
    cap.readQueueSize = 64;
    cap.writeQueueSize = 64;
    BenchMemory capmem;
    capmem.spmReadPorts = 64;
    capmem.spmWritePorts = 64;
    runSalam(kernel, cap, capmem, &entry.trace,
             /*suppress_artifacts=*/true);

    // The replays' static CDFG is rebuilt per point from this IR
    // (FU binding and latency tables depend on the point's
    // DeviceConfig); kernel IR construction is deterministic, so
    // its static ids match the capture run's.
    auto mod = std::make_shared<ir::Module>("replay");
    ir::IRBuilder builder(*mod);
    entry.fn = kernel.buildOptimized(builder);
    entry.holder = mod;

    // The trace's scheduling skeleton (producer/conflict edges) is
    // config-independent, so compute it once here and share it with
    // every replay; any elaboration of this IR works for that.
    core::StaticCdfg prep_cdfg(*entry.fn, cap);
    entry.prep = std::make_shared<const drive::ReplayPrep>(
        drive::buildReplayPrep(prep_cdfg, entry.trace));

    entry.captureSeconds =
        std::chrono::duration<double>(clock::now() - t0).count();
    return entry;
}

/**
 * Trace-reuse fast path for one sweep point: re-schedule the cached
 * trace under (@p dev, @p memcfg) without re-executing the kernel.
 * Emits a RunReport/store record with the same configHash and the
 * same numeric fields as a full run of the point, so `salam-query
 * diff` pairs fast and full stores and proves their cycle counts
 * identical. Returns simMode "fast", or falls back to full
 * simulation (simMode "full-fallback") if the replay reports a
 * trace/static mismatch.
 */
inline BenchRun
runSalamReplay(const kernels::Kernel &kernel,
               const drive::TraceCache::Entry &entry,
               const core::DeviceConfig &dev,
               const BenchMemory &memcfg)
{
    using clock = std::chrono::steady_clock;
    auto t0 = clock::now();
    core::StaticCdfg cdfg(*entry.fn, dev);
    auto t1 = clock::now();

    constexpr std::uint64_t spm_base = 0x10000;
    std::uint64_t spm_bytes =
        ((kernel.footprintBytes() + 0xFFF) & ~0xFFFull) + 0x1000;
    drive::ReplaySpmConfig spm;
    spm.rangeStart = spm_base;
    spm.latencyCycles = memcfg.spmLatency;
    spm.readPorts = memcfg.spmReadPorts;
    spm.writePorts = memcfg.spmWritePorts;
    spm.banks = memcfg.spmBanks;
    spm.wordBytes = mem::ScratchpadConfig{}.wordBytes;

    drive::TraceReplayer replayer(cdfg, dev, entry.trace, spm,
                                  entry.prep.get());
    drive::ReplayResult res = replayer.run();
    auto t2 = clock::now();
    if (!res.ok) {
        warn("trace replay failed (%s); falling back to full "
             "simulation",
             res.error.c_str());
        BenchRun full = runSalam(kernel, dev, memcfg);
        full.simMode = "full-fallback";
        full.fallbackReason = res.error;
        return full;
    }

    BenchRun out;
    out.simMode = "fast";
    out.cycles = res.stats.totalCycles;
    out.stats = res.stats;
    out.spmReads = res.spmReads;
    out.spmWrites = res.spmWrites;
    core::SpmUsage usage;
    usage.sizeBytes = spm_bytes;
    usage.wordBytes = spm.wordBytes;
    usage.readPorts = memcfg.spmReadPorts;
    usage.writePorts = memcfg.spmWritePorts;
    usage.banks = memcfg.spmBanks;
    usage.reads = res.spmReads;
    usage.writes = res.spmWrites;
    out.report = core::buildReport(cdfg, dev, res.stats, &usage);
    out.compileSeconds =
        std::chrono::duration<double>(t1 - t0).count();
    out.simulateSeconds =
        std::chrono::duration<double>(t2 - t1).count();

    const ObsOptions &options = obsOptions();
    if (!options.reportOut.empty() || benchStore() != nullptr) {
        obs::RunReport report;
        report.run = kernel.name();
        report.commandLine = options.commandLine;
        report.configHash = runConfigHash(kernel.name(), dev, memcfg);
        report.cycles = out.cycles;
        report.simSeconds = out.simulateSeconds;
        report.compileSeconds = out.compileSeconds;
        report.extra = {
            {"spm_reads", static_cast<double>(out.spmReads)},
            {"spm_writes", static_cast<double>(out.spmWrites)},
            {"stall_cycles",
             static_cast<double>(out.stats.stallCycles)},
            {"dynamic_insts",
             static_cast<double>(out.stats.dynamicInstructions)},
            {"clock_period_ticks",
             static_cast<double>(dev.clockPeriod)},
            // Fast-path-only keys: unshared keys are never compared
            // by `salam-query diff`, and *_seconds fields are noisy
            // by convention, so these don't perturb the
            // fast-vs-full equivalence gate.
            {"fast_path", 1.0},
            {"capture_seconds", entry.captureSeconds},
        };
        if (!options.reportOut.empty() &&
            !report.appendToFile(options.reportOut))
            fatal("could not append run report to '%s'",
                  options.reportOut.c_str());
        if (obs::ResultStore *store = benchStore())
            store->appendRunReport(report, options.benchName);
    }
    return out;
}

/**
 * Run one sweep point under the --sim-mode policy: "full" simulates,
 * "fast"/"auto" replay the kernel's cached dynamic trace, falling
 * back to full simulation when fastPathBlocker() reports the point's
 * configuration could change data-dependent control flow (or fault
 * injection is active). "fast" warns on fallback, "auto" is silent.
 *
 * @param trace_key Identity of the (kernel variant, input) pair
 *        beyond kernel.name() — e.g. "n32u32" for a GEMM size and
 *        unroll. Two calls with the same name and key MUST build
 *        identical IR and seed identical data.
 */
inline BenchRun
runSalamMode(const kernels::Kernel &kernel,
             const std::string &trace_key,
             const core::DeviceConfig &dev = {},
             const BenchMemory &memcfg = {})
{
    const ObsOptions &options = obsOptions();
    if (options.simMode == "full")
        return runSalam(kernel, dev, memcfg);

    std::string blocker;
    drive::TraceCache::EntryPtr entry;
    if (!options.injectSpecs.empty()) {
        blocker = "fault injection makes outcomes "
                  "schedule-dependent";
    } else {
        entry = benchTraceCache().getOrBuild(
            kernel.name() + "|" + trace_key,
            [&] { return captureTraceEntry(kernel, dev); });
        blocker = drive::fastPathBlocker(entry->trace, dev, false,
                                         memcfg.useInterconnect);
    }
    if (!blocker.empty()) {
        if (options.simMode == "fast")
            warn("--sim-mode fast: falling back to full "
                 "simulation: %s",
                 blocker.c_str());
        BenchRun full = runSalam(kernel, dev, memcfg);
        full.simMode = "full-fallback";
        full.fallbackReason = blocker;
        return full;
    }
    return runSalamReplay(kernel, *entry, dev, memcfg);
}

/** Percent error of @p measured against @p reference. */
inline double
pctError(double measured, double reference)
{
    if (reference == 0.0)
        return 0.0;
    return 100.0 * (measured - reference) / reference;
}

/** Print a section header. */
inline void
header(const char *title)
{
    std::printf("\n=== %s ===\n", title);
}

} // namespace salam::bench

#endif // SALAM_BENCH_COMMON_HH

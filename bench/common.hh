/**
 * @file
 * Shared experiment harness for the paper-reproduction benches.
 *
 * Each bench binary regenerates one table or figure from the paper.
 * The common piece is a single-accelerator testbench: kernel +
 * private scratchpad + communications interface, run to completion
 * with seeded data and checked against the golden reference, with
 * all statistics surfaced for the experiment to print.
 */

#ifndef SALAM_BENCH_COMMON_HH
#define SALAM_BENCH_COMMON_HH

#include <chrono>
#include <cstdio>
#include <memory>
#include <string>

#include "core/compute_unit.hh"
#include "core/power_report.hh"
#include "kernels/machsuite.hh"
#include "mem/backdoor.hh"
#include "mem/scratchpad.hh"
#include "sim/simulation.hh"

namespace salam::bench
{

/** Memory configuration for the single-accelerator testbench. */
struct BenchMemory
{
    unsigned spmReadPorts = 2;
    unsigned spmWritePorts = 2;
    unsigned spmLatency = 1;
    unsigned spmBanks = 1;
};

/** Everything an experiment wants to know about one run. */
struct BenchRun
{
    std::uint64_t cycles = 0;
    core::EngineStats stats;
    core::AcceleratorReport report;
    std::uint64_t spmReads = 0;
    std::uint64_t spmWrites = 0;
    /** Wall-clock seconds: IR construction + optimization. */
    double compileSeconds = 0.0;
    /** Wall-clock seconds: timed simulation. */
    double simulateSeconds = 0.0;
    /** Golden-check diagnostic; empty on success. */
    std::string checkFailure;

    double
    runtimeUs(const core::DeviceConfig &dev) const
    {
        return static_cast<double>(cycles) *
            static_cast<double>(dev.clockPeriod) / 1e6;
    }
};

/**
 * Run @p kernel on the single-accelerator SALAM testbench.
 * fatal()s if the functional check fails — an experiment over wrong
 * results is meaningless.
 */
inline BenchRun
runSalam(const kernels::Kernel &kernel,
         const core::DeviceConfig &dev = {},
         const BenchMemory &memcfg = {})
{
    using clock = std::chrono::steady_clock;
    BenchRun out;

    auto t0 = clock::now();
    ir::Module mod("bench");
    ir::IRBuilder builder(mod);
    ir::Function *fn = kernel.buildOptimized(builder);
    auto t1 = clock::now();

    Simulation sim;
    constexpr std::uint64_t spm_base = 0x10000;
    std::uint64_t spm_bytes =
        ((kernel.footprintBytes() + 0xFFF) & ~0xFFFull) + 0x1000;

    mem::ScratchpadConfig scfg;
    scfg.range = mem::AddrRange{spm_base, spm_base + spm_bytes};
    scfg.latencyCycles = memcfg.spmLatency;
    scfg.readPorts = memcfg.spmReadPorts;
    scfg.writePorts = memcfg.spmWritePorts;
    scfg.banks = memcfg.spmBanks;
    auto &spm = sim.create<mem::Scratchpad>("spm", dev.clockPeriod,
                                            scfg);

    core::CommInterfaceConfig ccfg;
    ccfg.mmrRange = mem::AddrRange{0x2000, 0x2000 + 256};
    ccfg.dataPorts.push_back({"spm", {scfg.range}});
    auto &comm = sim.create<core::CommInterface>(
        "comm", dev.clockPeriod, ccfg);
    mem::bindPorts(comm.dataPort(0), spm.port(0));
    auto &cu =
        sim.create<core::ComputeUnit>("acc", *fn, dev, comm);

    mem::ScratchpadBackdoor backdoor(spm);
    kernel.seed(backdoor, spm_base);

    auto t2 = clock::now();
    cu.start(kernel.args(spm_base));
    sim.run();
    auto t3 = clock::now();

    if (!cu.finished())
        fatal("bench: %s did not finish", kernel.name().c_str());
    out.checkFailure = kernel.check(backdoor, spm_base);
    if (!out.checkFailure.empty())
        fatal("bench: %s wrong result: %s", kernel.name().c_str(),
              out.checkFailure.c_str());

    out.cycles = cu.cycleCount();
    out.stats = cu.stats();
    out.report = core::buildReport(cu, &spm);
    out.spmReads = spm.readCount();
    out.spmWrites = spm.writeCount();
    out.compileSeconds =
        std::chrono::duration<double>(t1 - t0).count();
    out.simulateSeconds =
        std::chrono::duration<double>(t3 - t2).count();
    return out;
}

/** Percent error of @p measured against @p reference. */
inline double
pctError(double measured, double reference)
{
    if (reference == 0.0)
        return 0.0;
    return 100.0 * (measured - reference) / reference;
}

/** Print a section header. */
inline void
header(const char *title)
{
    std::printf("\n=== %s ===\n", title);
}

} // namespace salam::bench

#endif // SALAM_BENCH_COMMON_HH

/**
 * @file
 * Shared experiment harness for the paper-reproduction benches.
 *
 * Each bench binary regenerates one table or figure from the paper.
 * The common piece is a single-accelerator testbench: kernel +
 * private scratchpad + communications interface, run to completion
 * with seeded data and checked against the golden reference, with
 * all statistics surfaced for the experiment to print.
 */

#ifndef SALAM_BENCH_COMMON_HH
#define SALAM_BENCH_COMMON_HH

#include <chrono>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>

#include "core/compute_unit.hh"
#include "core/power_report.hh"
#include "kernels/machsuite.hh"
#include "mem/backdoor.hh"
#include "mem/scratchpad.hh"
#include "obs/debug_flags.hh"
#include "obs/run_report.hh"
#include "sim/simulation.hh"

namespace salam::bench
{

/**
 * Observability options shared by every bench binary. Parsed once in
 * main() by parseObsArgs(); runSalam() consults them for each run.
 */
struct ObsOptions
{
    /** Chrome trace_event JSON path; the last run's trace wins. */
    std::string traceOut;

    /** RunReport JSONL path; one line appended per run. */
    std::string reportOut;

    /** StatRegistry::dumpJson path; the last run's stats win. */
    std::string statsOut;
};

inline ObsOptions &
obsOptions()
{
    static ObsOptions options;
    return options;
}

/**
 * Parse the shared observability arguments:
 *   --trace-out <file>    write a Chrome trace_event JSON trace
 *   --report-out <file>   append one RunReport JSON line per run
 *   --stats-out <file>    write the statistics dump as JSON
 *   --debug-flags <spec>  enable debug flags, e.g. "Cache,DMA" or
 *                         "All,-Event"
 *   --verbose             enable inform()/warn() output
 * fatal()s on anything it does not recognize.
 */
inline void
parseObsArgs(int argc, char **argv)
{
    ObsOptions &options = obsOptions();
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        // Accept both "--opt value" and "--opt=value".
        std::string inline_value;
        bool has_inline_value = false;
        if (auto eq = arg.find('='); eq != std::string::npos) {
            inline_value = arg.substr(eq + 1);
            has_inline_value = true;
            arg.erase(eq);
        }
        auto next = [&]() -> std::string {
            if (has_inline_value)
                return inline_value;
            if (i + 1 >= argc)
                fatal("%s needs a value", arg.c_str());
            return argv[++i];
        };
        if (arg == "--trace-out") {
            options.traceOut = next();
        } else if (arg == "--report-out") {
            options.reportOut = next();
        } else if (arg == "--stats-out") {
            options.statsOut = next();
        } else if (arg == "--debug-flags") {
            if (!obs::DebugFlagRegistry::instance().applySpec(next()))
                fatal("unknown debug flag in --debug-flags spec");
        } else if (arg == "--verbose") {
            if (has_inline_value)
                fatal("--verbose takes no value");
            LogControl::setVerbose(true);
        } else {
            fatal("unknown argument '%s' (expected --trace-out, "
                  "--report-out, --stats-out, --debug-flags, or "
                  "--verbose)",
                  arg.c_str());
        }
    }
}

/** Memory configuration for the single-accelerator testbench. */
struct BenchMemory
{
    unsigned spmReadPorts = 2;
    unsigned spmWritePorts = 2;
    unsigned spmLatency = 1;
    unsigned spmBanks = 1;
};

/** Everything an experiment wants to know about one run. */
struct BenchRun
{
    std::uint64_t cycles = 0;
    core::EngineStats stats;
    core::AcceleratorReport report;
    std::uint64_t spmReads = 0;
    std::uint64_t spmWrites = 0;
    /** Wall-clock seconds: IR construction + optimization. */
    double compileSeconds = 0.0;
    /** Wall-clock seconds: timed simulation. */
    double simulateSeconds = 0.0;
    /** Golden-check diagnostic; empty on success. */
    std::string checkFailure;

    double
    runtimeUs(const core::DeviceConfig &dev) const
    {
        return static_cast<double>(cycles) *
            static_cast<double>(dev.clockPeriod) / 1e6;
    }
};

/**
 * Run @p kernel on the single-accelerator SALAM testbench.
 * fatal()s if the functional check fails — an experiment over wrong
 * results is meaningless.
 */
inline BenchRun
runSalam(const kernels::Kernel &kernel,
         const core::DeviceConfig &dev = {},
         const BenchMemory &memcfg = {})
{
    using clock = std::chrono::steady_clock;
    BenchRun out;

    auto t0 = clock::now();
    ir::Module mod("bench");
    ir::IRBuilder builder(mod);
    ir::Function *fn = kernel.buildOptimized(builder);
    auto t1 = clock::now();

    Simulation sim;
    if (!obsOptions().traceOut.empty())
        sim.enableTracing();
    constexpr std::uint64_t spm_base = 0x10000;
    std::uint64_t spm_bytes =
        ((kernel.footprintBytes() + 0xFFF) & ~0xFFFull) + 0x1000;

    mem::ScratchpadConfig scfg;
    scfg.range = mem::AddrRange{spm_base, spm_base + spm_bytes};
    scfg.latencyCycles = memcfg.spmLatency;
    scfg.readPorts = memcfg.spmReadPorts;
    scfg.writePorts = memcfg.spmWritePorts;
    scfg.banks = memcfg.spmBanks;
    auto &spm = sim.create<mem::Scratchpad>("spm", dev.clockPeriod,
                                            scfg);

    core::CommInterfaceConfig ccfg;
    ccfg.mmrRange = mem::AddrRange{0x2000, 0x2000 + 256};
    ccfg.dataPorts.push_back({"spm", {scfg.range}});
    auto &comm = sim.create<core::CommInterface>(
        "comm", dev.clockPeriod, ccfg);
    mem::bindPorts(comm.dataPort(0), spm.port(0));
    auto &cu =
        sim.create<core::ComputeUnit>("acc", *fn, dev, comm);

    mem::ScratchpadBackdoor backdoor(spm);
    kernel.seed(backdoor, spm_base);

    auto t2 = clock::now();
    cu.start(kernel.args(spm_base));
    sim.run();
    auto t3 = clock::now();

    if (!cu.finished())
        fatal("bench: %s did not finish", kernel.name().c_str());
    out.checkFailure = kernel.check(backdoor, spm_base);
    if (!out.checkFailure.empty())
        fatal("bench: %s wrong result: %s", kernel.name().c_str(),
              out.checkFailure.c_str());

    out.cycles = cu.cycleCount();
    out.stats = cu.stats();
    out.report = core::buildReport(cu, &spm);
    out.spmReads = spm.readCount();
    out.spmWrites = spm.writeCount();
    out.compileSeconds =
        std::chrono::duration<double>(t1 - t0).count();
    out.simulateSeconds =
        std::chrono::duration<double>(t3 - t2).count();

    sim.finalizeAll();
    const ObsOptions &options = obsOptions();
    // The user explicitly asked for these files; failing to produce
    // one is an error, not a warning hidden behind the Warn flag.
    if (obs::TraceSink *sink = sim.traceSink()) {
        if (!sink->writeChromeTraceFile(options.traceOut))
            fatal("could not write trace to '%s'",
                  options.traceOut.c_str());
    }
    if (!options.statsOut.empty()) {
        std::ofstream os(options.statsOut);
        if (os) {
            sim.stats().dumpJson(os);
        } else {
            fatal("could not write stats to '%s'",
                  options.statsOut.c_str());
        }
    }
    if (!options.reportOut.empty()) {
        obs::RunReport report;
        report.run = kernel.name();
        report.cycles = out.cycles;
        report.simSeconds = out.simulateSeconds;
        report.compileSeconds = out.compileSeconds;
        report.extra = {
            {"spm_reads", static_cast<double>(out.spmReads)},
            {"spm_writes", static_cast<double>(out.spmWrites)},
            {"stall_cycles",
             static_cast<double>(out.stats.stallCycles)},
            {"dynamic_insts",
             static_cast<double>(out.stats.dynamicInstructions)},
        };
        report.statsJson = sim.stats().dumpJsonString();
        if (!report.appendToFile(options.reportOut))
            fatal("could not append run report to '%s'",
                  options.reportOut.c_str());
    }
    return out;
}

/** Percent error of @p measured against @p reference. */
inline double
pctError(double measured, double reference)
{
    if (reference == 0.0)
        return 0.0;
    return 100.0 * (measured - reference) / reference;
}

/** Print a section header. */
inline void
header(const char *title)
{
    std::printf("\n=== %s ===\n", title);
}

} // namespace salam::bench

#endif // SALAM_BENCH_COMMON_HH

/**
 * @file
 * Fault-campaign driver: one seeded full-system run under injection.
 *
 * The system is the smallest realistic full stack — host CPU, GIC,
 * DMA, one ReLU accelerator with a private scratchpad — so every
 * injection site class is exercised: scratchpad and DRAM responses,
 * crossbar retries, DMA bursts, accelerator done-interrupts, and the
 * host's interrupt waits. scripts/check.sh invokes this binary once
 * per fault kind and asserts the exit code, the run-report outcome,
 * and (for hangs) that the state dump names the stuck component.
 *
 * Inputs are strictly positive so ReLU is the identity function: any
 * injected bit flip anywhere on the data path changes the output and
 * is caught by the exact golden comparison.
 *
 *   fault_campaign [--inject <spec>]... [--inject-seed N]
 *                  [--watchdog T] [--dump-out F] [--report-out F] ...
 */

#include <cmath>
#include <vector>

#include "common.hh"
#include "sys/system.hh"

using namespace salam;
using namespace salam::bench;
using namespace salam::kernels;
using namespace salam::sys;
using namespace salam::mem;

namespace
{

constexpr unsigned count = 1024;
constexpr std::uint64_t dataBytes = 4ull * count;

} // namespace

int
main(int argc, char **argv)
{
    parseObsArgs(argc, argv);
    const ObsOptions &options = obsOptions();

    // Positive inputs: ReLU output == input, bit-exact.
    Lcg rng(7);
    std::vector<float> input(count);
    for (auto &v : input)
        v = 0.5f + static_cast<float>(rng.nextDouble());

    Simulation sim;
    std::unique_ptr<inject::FaultInjector> injector =
        makeFaultInjector(sim);
    ScopedTerminationHook flush_on_fatal =
        benchTerminationHook(sim, "fault_campaign.relu");

    SystemConfig syscfg;
    syscfg.watchdogWindowTicks = options.watchdogTicks;
    syscfg.stateDumpPath = options.dumpOut;
    SalamSystem sys(sim, syscfg);
    auto &cluster = sys.addCluster("c0", periodFromMhz(100));

    ScratchpadConfig sproto;
    sproto.numPorts = 2;
    sproto.readPorts = 4;
    sproto.writePorts = 4;
    auto &spm = cluster.addSpm("spm", 16 * 1024, sproto);
    cluster.localXbar().connectDevice(spm.port(1),
                                      spm.config().range);

    core::DmaConfig dma_proto;
    dma_proto.burstBytes = 16;
    dma_proto.maxOutstanding = 2;
    auto &dma = cluster.addDma("dma", dma_proto);
    unsigned dma_irq = sys.allocateIrq();
    dma.setIrqCallback(sys.gic().lineCallback(dma_irq));

    ir::Module mod("m");
    ir::IRBuilder b(mod);
    ir::Function *relu_fn = makeRelu(count)->buildOptimized(b);
    auto &relu = cluster.addAccelerator(
        "relu", *relu_fn, {},
        {{"spm", {spm.config().range}, false}});
    bindPorts(relu.comm->dataPort(0), spm.port(0));

    std::uint64_t dram_in = SystemAddressMap::dramBase + 0x10000;
    std::uint64_t dram_out = SystemAddressMap::dramBase + 0x20000;
    sys.dram().backdoorWrite(dram_in, input.data(), dataBytes);

    std::uint64_t spm_in = spm.config().range.start;
    std::uint64_t spm_out = spm_in + dataBytes;

    DriverCpu &host = sys.host();
    std::uint64_t dma_mmr = dma.config().mmrRange.start;
    host.push(HostOp::mark("begin"));
    driver::pushDmaTransfer(host, dma_mmr, dram_in, spm_in,
                            dataBytes);
    host.push(HostOp::waitIrq(dma_irq));
    driver::pushAcceleratorStart(host, relu, {spm_in, spm_out});
    host.push(HostOp::waitIrq(relu.irqId));
    // Snapshot the output the instant the host believes the kernel
    // is done. A spurious wake-up captures an incomplete scratchpad
    // here regardless of how the later DMA races the accelerator.
    std::vector<float> snapshot(count);
    host.push(HostOp::call([&spm, &snapshot, spm_out] {
        spm.backdoorRead(spm_out, snapshot.data(), dataBytes);
    }));
    driver::pushDmaTransfer(host, dma_mmr, spm_out, dram_out,
                            dataBytes);
    host.push(HostOp::waitIrq(dma_irq));
    host.push(HostOp::mark("end"));

    Tick end = sys.run();

    unsigned mismatches = 0;
    unsigned stale = 0;
    for (unsigned i = 0; i < count; ++i) {
        float got = 0.0f;
        sys.dram().backdoorRead(dram_out + 4ull * i, &got, 4);
        if (got != input[i])
            ++mismatches;
        if (snapshot[i] != input[i])
            ++stale;
    }
    printInjectionLog(injector.get());
    if (mismatches > 0 || stale > 0) {
        fatal("fault_campaign: wrong result, %u of %u outputs "
              "differ from the golden reference (%u stale at the "
              "host's done-snapshot)",
              mismatches, count, stale);
    }

    sim.finalizeAll();
    std::printf("fault_campaign: ok, %llu ticks end-to-end, "
                "%zu injections fired\n",
                static_cast<unsigned long long>(
                    host.markAt("end") - host.markAt("begin")),
                injector ? injector->log().size()
                         : static_cast<std::size_t>(0));

    if (!options.reportOut.empty() || benchStore() != nullptr) {
        obs::RunReport report;
        report.run = "fault_campaign.relu";
        report.commandLine = options.commandLine;
        report.cycles = relu.cu->cycleCount();
        report.extra = {
            {"end_to_end_ticks", static_cast<double>(end)},
            {"injections_fired",
             injector ? static_cast<double>(injector->log().size())
                      : 0.0},
        };
        report.statsJson = sim.stats().dumpJsonString();
        if (!options.reportOut.empty() &&
            !report.appendToFile(options.reportOut))
            fatal("could not append run report to '%s'",
                  options.reportOut.c_str());
        if (obs::ResultStore *store = benchStore()) {
            store->appendRunReport(report, options.benchName);
            // One queryable record per fired fault, so a campaign
            // over many seeds can be sliced by site/kind with
            // salam-query instead of scraping stdout.
            if (injector) {
                for (const inject::InjectionRecord &rec :
                     injector->log()) {
                    obs::StoreRecord srec;
                    srec.kind = "injection";
                    srec.bench = options.benchName;
                    srec.kernel =
                        inject::faultKindName(rec.kind);
                    std::ostringstream payload;
                    payload << "{\"tick\":" << rec.tick
                            << ",\"fault_kind\":\""
                            << obs::jsonEscape(
                                   inject::faultKindName(rec.kind))
                            << "\",\"site\":\""
                            << obs::jsonEscape(rec.site)
                            << "\",\"detail\":\""
                            << obs::jsonEscape(rec.detail) << "\"}";
                    srec.json = payload.str();
                    store->append(std::move(srec));
                }
            }
            store->flush();
        }
    }
    return 0;
}

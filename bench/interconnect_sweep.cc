/**
 * @file
 * Interconnect design-space sweep: fabric kind, bus width, and
 * outstanding-transaction credits as SweepSpec axes.
 *
 * Two parts:
 *
 * 1. A SweepRunner grid over the single-accelerator GEMM testbench
 *    with ic_kind x bus_width x credits axes. Points with a modeled
 *    fabric are exactly the ones the trace-reuse fast path must NOT
 *    replay (the replay models a private scratchpad only), so under
 *    `--sim-mode auto` every fabric point falls back to full
 *    simulation while the direct baseline still takes the fast
 *    path. check.sh diffs an auto store against a full store here:
 *    cycles must be bit-identical.
 *
 * 2. Contention curves on fig16's multi-accelerator cluster: the
 *    conv -> ReLU -> max-pool private-SPM pipeline (scenario (a) of
 *    fig16) re-timed with an AXI-like local fabric across a
 *    bus-width x credit grid. The DMA moves every intermediate
 *    tensor through the fabric, so narrowing the data channel or
 *    starving the requesters of credits stretches the end-to-end
 *    time — the curve flattens to the crossbar baseline as the bus
 *    widens and the credit pool deepens.
 */

#include <algorithm>
#include <vector>

#include "common.hh"
#include "drive/sweep_runner.hh"
#include "sys/system.hh"

using namespace salam;
using namespace salam::bench;
using namespace salam::kernels;
using namespace salam::sys;
using namespace salam::mem;

namespace
{

constexpr unsigned imgW = 32, imgH = 32;
constexpr unsigned convW = imgW - 2, convH = imgH - 2;
constexpr unsigned poolW = convW / 2, poolH = convH / 2;
constexpr std::uint64_t imageBytes = 4ull * imgW * imgH;
constexpr std::uint64_t weightBytes = 4ull * 9;
constexpr std::uint64_t convOutBytes = 4ull * convW * convH;
constexpr std::uint64_t poolOutBytes = 4ull * poolW * poolH;

/**
 * End-to-end ticks of fig16's private-SPM pipeline (conv -> relu ->
 * pool, DMA-staged, host-sequenced) on a cluster whose local fabric
 * is @p icfg.
 */
Tick
clusterEndToEnd(const InterconnectConfig &icfg)
{
    Lcg rng(2020);
    std::vector<float> image(imgW * imgH + 9);
    for (auto &v : image)
        v = static_cast<float>(rng.nextDouble()) - 0.5f;

    Simulation sim;
    SalamSystem sys(sim);
    auto &cluster = sys.addCluster("c0", periodFromMhz(100), 0,
                                   icfg);

    ScratchpadConfig proto;
    proto.readPorts = 4;
    proto.writePorts = 4;
    proto.numPorts = 2;
    auto &conv_spm = cluster.addSpm("conv_spm", 16 * 1024, proto);
    auto &relu_spm = cluster.addSpm("relu_spm", 16 * 1024, proto);
    auto &pool_spm = cluster.addSpm("pool_spm", 16 * 1024, proto);
    for (Scratchpad *spm : {&conv_spm, &relu_spm, &pool_spm}) {
        cluster.localXbar().connectDevice(spm->port(1),
                                          spm->config().range);
    }

    // A more aggressive data mover than fig16's (64-byte bursts,
    // deep outstanding window) so the cluster fabric — not the DMA's
    // own request pacing — is the bottleneck the curve measures.
    // fig16's 16B/2-deep mover is latency-bound and would flatten
    // the bus-width axis.
    core::DmaConfig dma_proto;
    dma_proto.burstBytes = 64;
    dma_proto.maxOutstanding = 8;
    auto &dma = cluster.addDma("dma", dma_proto);
    unsigned dma_irq = sys.allocateIrq();
    dma.setIrqCallback(sys.gic().lineCallback(dma_irq));

    ir::Module mod("m");
    ir::IRBuilder b(mod);
    ir::Function *conv_fn = makeConv2d(imgW, imgH)->buildOptimized(b);
    ir::Function *relu_fn = makeRelu(convW * convH)->buildOptimized(b);
    ir::Function *pool_fn = makeMaxPool(convW, convH)->buildOptimized(b);

    auto &conv = cluster.addAccelerator(
        "conv", *conv_fn, {},
        {{"spm", {conv_spm.config().range}, false}});
    bindPorts(conv.comm->dataPort(0), conv_spm.port(0));
    auto &relu = cluster.addAccelerator(
        "relu", *relu_fn, {},
        {{"spm", {relu_spm.config().range}, false}});
    bindPorts(relu.comm->dataPort(0), relu_spm.port(0));
    auto &pool = cluster.addAccelerator(
        "pool", *pool_fn, {},
        {{"spm", {pool_spm.config().range}, false}});
    bindPorts(pool.comm->dataPort(0), pool_spm.port(0));

    std::uint64_t dram_in = SystemAddressMap::dramBase + 0x10000;
    std::uint64_t dram_out = SystemAddressMap::dramBase + 0x40000;
    sys.dram().backdoorWrite(dram_in, image.data(),
                             image.size() * 4);

    std::uint64_t conv_in = conv_spm.config().range.start;
    std::uint64_t conv_wts = conv_in + imageBytes;
    std::uint64_t conv_out = conv_wts + 0x100;
    std::uint64_t relu_in = relu_spm.config().range.start;
    std::uint64_t relu_out = relu_in + convOutBytes;
    std::uint64_t pool_in = pool_spm.config().range.start;
    std::uint64_t pool_rowbuf = pool_in + convOutBytes;
    std::uint64_t pool_out = pool_rowbuf + 0x200;

    DriverCpu &host = sys.host();
    std::uint64_t dma_mmr = dma.config().mmrRange.start;
    host.push(HostOp::mark("begin"));
    driver::pushDmaTransfer(host, dma_mmr, dram_in, conv_in,
                            imageBytes + weightBytes);
    host.push(HostOp::waitIrq(dma_irq));
    driver::pushAcceleratorStart(host, conv,
                                 {conv_in, conv_wts, conv_out});
    host.push(HostOp::waitIrq(conv.irqId));
    driver::pushDmaTransfer(host, dma_mmr, conv_out, relu_in,
                            convOutBytes);
    host.push(HostOp::waitIrq(dma_irq));
    driver::pushAcceleratorStart(host, relu, {relu_in, relu_out});
    host.push(HostOp::waitIrq(relu.irqId));
    driver::pushDmaTransfer(host, dma_mmr, relu_out, pool_in,
                            convOutBytes);
    host.push(HostOp::waitIrq(dma_irq));
    driver::pushAcceleratorStart(
        host, pool, {pool_in, pool_rowbuf, pool_out});
    host.push(HostOp::waitIrq(pool.irqId));
    driver::pushDmaTransfer(host, dma_mmr, pool_out, dram_out,
                            poolOutBytes);
    host.push(HostOp::waitIrq(dma_irq));
    host.push(HostOp::mark("end"));
    sys.run();

    return host.markAt("end") - host.markAt("begin");
}

} // namespace

int
main(int argc, char **argv)
{
    bool cluster_curve = true;
    std::vector<unsigned> curve_widths = {64, 16, 8, 4};
    std::vector<unsigned> curve_credits = {0, 2, 1}; // 0 = unlimited
    auto parse_list = [](const char *flag, const std::string &v,
                         std::vector<unsigned> &out) {
        out.clear();
        std::string item;
        std::istringstream is(v);
        while (std::getline(is, item, ','))
            out.push_back(static_cast<unsigned>(
                benchParseUint(flag, item)));
        if (out.empty())
            fatal("%s needs at least one value", flag);
    };
    salam::bench::parseObsArgs(
        argc, argv,
        {{"--skip-cluster-curve", "",
          "run only the SweepSpec grid, not the fig16-cluster "
          "contention curves",
          [&](const std::string &) { cluster_curve = false; }},
         {"--curve-widths", "<a,b,...>",
          "bus widths (bytes) for the cluster contention curve "
          "(default 64,16,8,4)",
          [&](const std::string &v) {
              parse_list("--curve-widths", v, curve_widths);
          }},
         {"--curve-credits", "<a,b,...>",
          "credit limits for the cluster contention curve; 0 means "
          "unlimited (default 0,2,1)",
          [&](const std::string &v) {
              parse_list("--curve-credits", v, curve_credits);
          }}});
    header("Interconnect sweep: fabric kind / bus width / credits");

    constexpr unsigned gemmN = 16;
    constexpr unsigned unroll = 8;
    const std::string trace_key = "n16u8";

    // Part 1: SweepSpec grid over the single-accelerator testbench.
    // ic_kind 1 = crossbar, 2 = AXI-like bus; credits 0 = unlimited.
    // The crossbar ignores bus_width, so its rows stay flat — the
    // printed grid doubles as an A/B of handshake-limited vs
    // beat-limited fabrics.
    drive::SweepSpec spec;
    spec.axis("ic_kind", {1, 2})
        .axis("bus_width", {4, 64})
        .axis("credits", {0, 2});

    auto point_config = [&spec](std::size_t idx,
                                core::DeviceConfig &dev,
                                BenchMemory &memcfg) {
        (void)dev;
        auto kind = spec.value(idx, 0);
        auto width = static_cast<unsigned>(spec.value(idx, 1));
        auto credits = static_cast<unsigned>(spec.value(idx, 2));
        memcfg.useInterconnect = true;
        memcfg.interconnect.kind = kind == 2
            ? InterconnectKind::AxiBus
            : InterconnectKind::Crossbar;
        memcfg.interconnect.busWidthBytes = width;
        memcfg.interconnect.maxOutstandingPerRequester =
            credits == 0 ? unlimitedCredits : credits;
    };

    // Direct-bind baseline: no fabric, so under --sim-mode auto this
    // is the one run the trace-reuse fast path may serve.
    core::DeviceConfig base_dev;
    BenchMemory base_mem;
    BenchRun baseline = runSalamMode(*makeGemm(gemmN, unroll),
                                     trace_key, base_dev, base_mem);
    std::printf("%-8s %-10s %-10s %12s %8s  %s\n", "kind",
                "bus_width", "credits", "cycles", "vs_base",
                "mode");
    std::printf("%-8s %-10s %-10s %12llu %7.2fx  %s\n", "direct",
                "-", "-",
                static_cast<unsigned long long>(baseline.cycles),
                1.0, baseline.simMode.c_str());

    struct Row
    {
        std::uint64_t cycles = 0;
        std::string mode;
    };
    std::vector<Row> rows(spec.numPoints());

    auto sweep_opts = sweepRunnerOptions(effectiveSweepThreads());
    const std::string kernel_name = makeGemm(gemmN, unroll)->name();
    sweep_opts.pointHash = [&](std::size_t idx) {
        core::DeviceConfig dev;
        BenchMemory memcfg;
        point_config(idx, dev, memcfg);
        return runConfigHash(kernel_name, dev, memcfg);
    };
    sweep_opts.pointAxes = [&](std::size_t idx) {
        return spec.axesJson(idx);
    };
    drive::SweepRunner runner(sweep_opts);
    auto results =
        runner.run(spec.numPoints(), [&](std::size_t idx) {
            auto kernel = makeGemm(gemmN, unroll);
            core::DeviceConfig dev;
            BenchMemory memcfg;
            point_config(idx, dev, memcfg);
            BenchRun run =
                runSalamMode(*kernel, trace_key, dev, memcfg);
            rows[idx] = {run.cycles, run.simMode};
            return "{\"mode\":\"" + run.simMode + "\"}";
        });

    for (std::size_t i = 0; i < spec.numPoints(); ++i) {
        const char *kind = spec.value(i, 0) == 2 ? "axi" : "xbar";
        auto width = static_cast<unsigned>(spec.value(i, 1));
        auto credits = static_cast<unsigned>(spec.value(i, 2));
        char credit_buf[16];
        if (credits == 0)
            std::snprintf(credit_buf, sizeof(credit_buf), "unl");
        else
            std::snprintf(credit_buf, sizeof(credit_buf), "%u",
                          credits);
        if (results[i].outcome == "cached") {
            std::printf("%-8s %-10u %-10s       cached | ok in "
                        "resume store\n",
                        kind, width, credit_buf);
            continue;
        }
        if (!results[i].ok) {
            std::printf("%-8s %-10u %-10s       FAILED | %s\n",
                        kind, width, credit_buf,
                        results[i].error.c_str());
            continue;
        }
        std::printf("%-8s %-10u %-10s %12llu %7.2fx  %s\n", kind,
                    width, credit_buf,
                    static_cast<unsigned long long>(rows[i].cycles),
                    static_cast<double>(rows[i].cycles) /
                        static_cast<double>(baseline.cycles),
                    rows[i].mode.c_str());
    }
    std::printf("(%zu points, %u thread%s, %.2fs wall)\n",
                spec.numPoints(), runner.lastThreads(),
                runner.lastThreads() == 1 ? "" : "s",
                runner.lastWallSeconds());
    writeSweepHostTelemetry(runner, "interconnect.sweep");

    // Part 2: contention curves on fig16's multi-accelerator
    // cluster (private-SPM pipeline, AXI fabric).
    if (cluster_curve) {
        std::printf("\nfig16 cluster contention curve "
                    "(conv->relu->pool, private SPM + DMA):\n");
        Tick xbar_t = clusterEndToEnd(InterconnectConfig{});
        std::printf("%-8s %-10s %-10s %14s %9s\n", "fabric",
                    "bus_width", "credits", "end-to-end(us)",
                    "vs_xbar");
        std::printf("%-8s %-10s %-10s %14.2f %8.2fx\n", "xbar",
                    "-", "-", static_cast<double>(xbar_t) / 1e6,
                    1.0);
        for (unsigned credits : curve_credits) {
            for (unsigned width : curve_widths) {
                InterconnectConfig ic;
                ic.kind = InterconnectKind::AxiBus;
                ic.busWidthBytes = width;
                ic.maxOutstandingPerRequester =
                    credits == 0 ? unlimitedCredits : credits;
                Tick t = clusterEndToEnd(ic);
                char credit_buf[16];
                if (credits == 0)
                    std::snprintf(credit_buf, sizeof(credit_buf),
                                  "unl");
                else
                    std::snprintf(credit_buf, sizeof(credit_buf),
                                  "%u", credits);
                std::printf("%-8s %-10u %-10s %14.2f %8.2fx\n",
                            "axi", width, credit_buf,
                            static_cast<double>(t) / 1e6,
                            static_cast<double>(t) /
                                static_cast<double>(xbar_t));
                // Machine-parseable for check.sh / plotting.
                std::printf("curve-point width=%u credits=%s "
                            "ticks=%llu\n",
                            width, credit_buf,
                            static_cast<unsigned long long>(t));
            }
        }
    }
    return sweepExitCode(runner);
}

/**
 * @file
 * Fig. 11 reproduction: power validation against the Design
 * Compiler surrogate. Stencil3D is excluded, as in the paper
 * (Design Compiler ran out of memory during elaboration there).
 */

#include <cmath>

#include "common.hh"
#include "hls/dc_estimator.hh"
#include "hls/hls_scheduler.hh"

using namespace salam;
using namespace salam::bench;
using namespace salam::kernels;
using namespace salam::hls;

int
main(int argc, char **argv)
{
    salam::bench::parseObsArgs(argc, argv);
    header("Fig. 11: power validation (mW vs Design Compiler)");
    std::printf("%-14s %12s %12s %9s\n", "Benchmark",
                "gem5-SALAM", "DC", "error");

    const char *names[] = {"bfs-queue", "fft-strided", "gemm",
                           "md-grid",   "md-knn",      "nw",
                           "spmv-crs",  "stencil2d"};

    double total_abs_err = 0.0;
    int count = 0;
    for (const char *name : names) {
        auto kernel = makeKernel(name);
        core::DeviceConfig dev;
        dev.blockSequentialImport = true; // ILP-matched to HLS
        BenchRun salam_run = runSalam(*kernel, dev);
        double salam_power =
            salam_run.report.power.dynamicFuMw +
            salam_run.report.power.dynamicRegisterMw +
            salam_run.report.power.staticFuMw +
            salam_run.report.power.staticRegisterMw;

        // DC reference for the same design (datapath only, to
        // match the paper's Design Compiler scope).
        ir::Module mod("m");
        ir::IRBuilder b(mod);
        ir::Function *fn = kernel->buildOptimized(b);
        ir::FlatMemory mem;
        kernel->seed(mem, 0x10000);
        HlsScheduler scheduler;
        HlsResult hls =
            scheduler.estimate(*fn, kernel->args(0x10000), mem);
        core::StaticCdfg cdfg(*fn, core::DeviceConfig{});
        // The RTL instantiates one operator per static operation
        // (unconstrained HLS); DC prices that netlist.
        for (std::size_t t = 0; t < hw::numFuTypes; ++t) {
            hls.boundUnits[t] =
                cdfg.fuDemand(static_cast<hw::FuType>(t));
        }
        DcEstimator dc;
        DcReport ref = dc.estimate(hls, cdfg.registerBits());

        double err = pctError(salam_power, ref.totalPowerMw);
        total_abs_err += std::abs(err);
        ++count;
        std::printf("%-14s %12.3f %12.3f %8.2f%%\n", name,
                    salam_power, ref.totalPowerMw, err);
    }
    std::printf("\nAverage |error|: %.2f%% (paper: ~3.25%%)\n",
                total_abs_err / count);
    return 0;
}

/**
 * @file
 * HlsScheduler: the Vivado-HLS surrogate used as the timing
 * reference in the validation experiments (Fig. 10, Table III).
 *
 * Works the way an HLS tool does, and *unlike* the SALAM runtime
 * engine: every basic block gets a static resource-constrained list
 * schedule, self-loops are pipelined with an initiation interval
 * derived from resource and recurrence constraints, and the total
 * cycle count follows from the (functionally simulated) block
 * execution sequence. Because the mechanism is independent —
 * static schedule + II algebra here, dynamic queues there — the
 * agreement between the two is a meaningful validation, and the
 * residual error arises organically from modeling differences
 * (e.g. FP operator binding) just as the paper reports.
 */

#ifndef SALAM_HLS_HLS_SCHEDULER_HH
#define SALAM_HLS_HLS_SCHEDULER_HH

#include <array>
#include <cstdint>
#include <map>
#include <vector>

#include "hw/hardware_profile.hh"
#include "ir/interpreter.hh"

namespace salam::hls
{

/** HLS target resource model. */
struct HlsConfig
{
    /** Memory ports the synthesized RTL assumes (dual-port BRAM). */
    unsigned readPorts = 2;
    unsigned writePorts = 2;
    /** SPM/BRAM access latency in cycles. */
    unsigned memoryLatency = 1;
    /**
     * Cap on expensive FP operators per type (HLS minimizes and
     * reuses FP resources). 0 = unbounded.
     */
    unsigned fpUnitCap = 0;
    /** Operator latencies; defaults mirror Vivado's FP cores. */
    hw::HardwareProfile profile = hw::HardwareProfile::defaultProfile();
};

/** Static schedule of one basic block. */
struct BlockSchedule
{
    /** Cycles from block start to completion of the last op. */
    std::uint64_t latency = 0;
    /** Pipelined initiation interval for self-loop blocks. */
    std::uint64_t initiationInterval = 1;
    /**
     * Cycles until the terminator resolves and the FSM can advance
     * to the next state; successor work overlaps the remainder of
     * this block's schedule (datapath chaining).
     */
    std::uint64_t controlLatency = 1;
    /** Per-instruction start cycles (for reports/debug). */
    std::map<const ir::Instruction *, std::uint64_t> startCycle;
    /** Peak concurrent units per FU type (the HLS binding). */
    std::array<unsigned, hw::numFuTypes> boundUnits{};
};

/** Result of scheduling + simulated execution. */
struct HlsResult
{
    std::uint64_t totalCycles = 0;
    /** Bound FU counts across the whole design (max over blocks). */
    std::array<unsigned, hw::numFuTypes> boundUnits{};
    /** Dynamic operation counts by FU type (from execution). */
    std::array<std::uint64_t, hw::numFuTypes> opCounts{};
    std::uint64_t dynamicInstructions = 0;
};

/** The scheduler/estimator. */
class HlsScheduler
{
  public:
    explicit HlsScheduler(const HlsConfig &config = {})
        : cfg(config)
    {}

    /** Compute the static schedule of one block. */
    BlockSchedule scheduleBlock(const ir::BasicBlock &block) const;

    /**
     * Estimate the end-to-end cycle count of @p fn on @p args:
     * functionally execute to obtain the block trace, then apply
     * the static schedule algebra (pipelined II for repeated
     * blocks, full latency on block entry).
     */
    HlsResult estimate(const ir::Function &fn,
                       const std::vector<ir::RuntimeValue> &args,
                       ir::MemoryAccessor &memory) const;

    const HlsConfig &config() const { return cfg; }

  private:
    unsigned latencyOf(const ir::Instruction &inst) const;

    unsigned fuLimit(hw::FuType type) const;

    HlsConfig cfg;
};

} // namespace salam::hls

#endif // SALAM_HLS_HLS_SCHEDULER_HH

#include "dc_estimator.hh"

#include <cmath>

#include "hw/hardware_profile.hh"
#include "sim/logging.hh"

namespace salam::hls
{

using namespace salam::hw;

double
DcEstimator::cellFactor(std::size_t cell_index, unsigned salt) const
{
    // Deterministic hash -> uniform in [-1, 1] -> scaled skew.
    std::uint64_t h = (cell_index + 1) * 0x9E3779B97F4A7C15ULL +
        salt * 0xD1B54A32D192ED03ULL;
    h ^= h >> 29;
    h *= 0xBF58476D1CE4E5B9ULL;
    h ^= h >> 32;
    double unit = static_cast<double>(h & 0xFFFFFF) /
        static_cast<double>(0xFFFFFF);
    return 1.0 + cfg.librarySkew * (2.0 * unit - 1.0);
}

DcReport
DcEstimator::estimate(const HlsResult &hls,
                      std::uint64_t register_bits,
                      const SramConfig *spm, std::uint64_t spm_reads,
                      std::uint64_t spm_writes) const
{
    const HardwareProfile profile = HardwareProfile::defaultProfile();
    const double runtime_ns =
        static_cast<double>(hls.totalCycles) * cfg.clockNs;
    SALAM_ASSERT(runtime_ns > 0.0);

    DcReport report;

    // Functional-unit cells, bound per the HLS schedule.
    for (std::size_t t = 0; t < numFuTypes; ++t) {
        const FuParams &params =
            profile.fu(static_cast<FuType>(t));
        double e_factor = cellFactor(t, 1);
        double l_factor = cellFactor(t, 2);
        double a_factor = cellFactor(t, 3);
        report.dynamicPowerMw +=
            static_cast<double>(hls.opCounts[t]) *
            params.dynamicEnergyPj * e_factor / runtime_ns;
        report.leakagePowerMw += hls.boundUnits[t] *
            params.leakagePowerMw * l_factor;
        report.datapathAreaUm2 +=
            hls.boundUnits[t] * params.areaUm2 * a_factor;
    }

    // Register file: gate-level tools see the real flop count; the
    // average switched width per operation is the library's own
    // characterization rather than per-value bookkeeping.
    const RegisterParams &regs = profile.registers();
    double reg_factor = cellFactor(numFuTypes, 4);
    constexpr double avgSwitchedBits = 3.0 * 44.0;
    report.dynamicPowerMw +=
        static_cast<double>(hls.dynamicInstructions) *
        avgSwitchedBits *
        0.5 * (regs.readEnergyPjPerBit + regs.writeEnergyPjPerBit) *
        reg_factor / runtime_ns;
    report.leakagePowerMw += static_cast<double>(register_bits) *
        regs.leakagePowerMwPerBit * reg_factor;
    report.datapathAreaUm2 += static_cast<double>(register_bits) *
        regs.areaUm2PerBit * cellFactor(numFuTypes, 5);

    // Memory macros.
    if (spm != nullptr) {
        SramMetrics metrics = CactiLite::evaluate(*spm);
        double m_factor = cellFactor(numFuTypes + 1, 6);
        report.dynamicPowerMw +=
            (static_cast<double>(spm_reads) *
                 metrics.readEnergyPj +
             static_cast<double>(spm_writes) *
                 metrics.writeEnergyPj) *
            m_factor / runtime_ns;
        report.leakagePowerMw += metrics.leakagePowerMw * m_factor;
        report.memoryAreaUm2 = metrics.areaUm2 * m_factor;
    }

    report.totalPowerMw =
        report.dynamicPowerMw + report.leakagePowerMw;
    return report;
}

} // namespace salam::hls

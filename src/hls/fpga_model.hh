/**
 * @file
 * FpgaModel: the ZCU102 system-validation surrogate (Table III).
 *
 * Produces reference end-to-end times for a kernel deployed on a
 * Zynq UltraScale+ style board: compute time from the HLS schedule
 * at the fabric clock, plus bulk transfer time from a DDR streaming
 * model with data-mover setup and cache-maintenance overheads. The
 * same workload is then run through the gem5-SALAM full-system model
 * and the two are compared, mirroring the paper's FPGA validation.
 */

#ifndef SALAM_HLS_FPGA_MODEL_HH
#define SALAM_HLS_FPGA_MODEL_HH

#include "hls_scheduler.hh"

namespace salam::hls
{

/** Board parameters (ZCU102-like defaults). */
struct FpgaConfig
{
    /** Programmable-logic clock (MHz). */
    double fabricClockMhz = 100.0;
    /** Sustained DDR streaming bandwidth for the data mover (GB/s),
     * calibrated against measured data-mover throughput. */
    double ddrBandwidthGbs = 2.15;
    /** Data-mover setup cost per transfer descriptor (us). */
    double dmaSetupUs = 0.15;
    /** Cache maintenance (flush/invalidate) cost per KiB (us). */
    double cacheMaintenanceUsPerKib = 0.02;
    /** Driver/interrupt overhead per kernel invocation (us). */
    double invocationOverheadUs = 0.3;
};

/** End-to-end reference timing. */
struct FpgaTiming
{
    double computeUs = 0.0;
    double bulkTransferUs = 0.0;

    double totalUs() const { return computeUs + bulkTransferUs; }
};

/** The analytic board model. */
class FpgaModel
{
  public:
    explicit FpgaModel(const FpgaConfig &config = {}) : cfg(config) {}

    /**
     * Reference timing for a kernel.
     * @param hls_cycles Cycle count from the HLS surrogate.
     * @param bytes_in / bytes_out Bulk transfer volumes.
     * @param transfers Number of DMA descriptors programmed.
     */
    FpgaTiming
    timing(std::uint64_t hls_cycles, std::uint64_t bytes_in,
           std::uint64_t bytes_out, unsigned transfers = 2) const
    {
        FpgaTiming t;
        t.computeUs = static_cast<double>(hls_cycles) /
            cfg.fabricClockMhz +
            cfg.invocationOverheadUs;
        double bytes = static_cast<double>(bytes_in + bytes_out);
        t.bulkTransferUs = bytes / (cfg.ddrBandwidthGbs * 1e3) +
            transfers * cfg.dmaSetupUs +
            (bytes / 1024.0) * cfg.cacheMaintenanceUsPerKib;
        return t;
    }

    const FpgaConfig &config() const { return cfg; }

  private:
    FpgaConfig cfg;
};

} // namespace salam::hls

#endif // SALAM_HLS_FPGA_MODEL_HH

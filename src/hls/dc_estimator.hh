/**
 * @file
 * DcEstimator: the Synopsys Design Compiler surrogate used as the
 * power/area reference (Figs. 11, 12).
 *
 * Estimates the power and area of the RTL the HLS surrogate would
 * emit: functional units from the HLS binding (not SALAM's 1-to-1
 * elaboration), gate-level activity from exact dynamic operation
 * counts, and an independently characterized cell library — the
 * default profile perturbed by per-cell systematic factors, playing
 * the role of the real 40nm standard cells that differ from any
 * simulator's calibration table. Disagreement with gem5-SALAM's
 * estimate is therefore structural, exactly like the paper's
 * validation errors.
 */

#ifndef SALAM_HLS_DC_ESTIMATOR_HH
#define SALAM_HLS_DC_ESTIMATOR_HH

#include "hls_scheduler.hh"
#include "hw/cacti_lite.hh"
#include "hw/power_model.hh"

namespace salam::hls
{

/** DC-style report for a synthesized accelerator. */
struct DcReport
{
    /** Average total power over the run (mW). */
    double totalPowerMw = 0.0;
    double dynamicPowerMw = 0.0;
    double leakagePowerMw = 0.0;
    /** Cell area (um^2), excluding memories. */
    double datapathAreaUm2 = 0.0;
    /** Memory macro area (um^2) when an SPM is attached. */
    double memoryAreaUm2 = 0.0;

    double totalAreaUm2() const
    { return datapathAreaUm2 + memoryAreaUm2; }
};

/** Configuration of the surrogate cell library. */
struct DcConfig
{
    /** Accelerator clock period in nanoseconds. */
    double clockNs = 10.0;
    /**
     * Systematic library perturbation amplitude. Each cell type's
     * power/area differs from the simulator's calibration table by
     * a deterministic factor within +/- this fraction.
     */
    double librarySkew = 0.05;
};

/** The estimator. */
class DcEstimator
{
  public:
    explicit DcEstimator(const DcConfig &config = {}) : cfg(config) {}

    /**
     * Produce the reference report for a design described by the
     * HLS result (binding + activity).
     *
     * @param hls The scheduled/bound design and its activity.
     * @param registerBits Register bits in the RTL (from the IR).
     * @param spm Optional attached scratchpad configuration.
     * @param spmReads / spmWrites Observed scratchpad activity.
     */
    DcReport estimate(const HlsResult &hls,
                      std::uint64_t register_bits,
                      const hw::SramConfig *spm = nullptr,
                      std::uint64_t spm_reads = 0,
                      std::uint64_t spm_writes = 0) const;

    const DcConfig &config() const { return cfg; }

  private:
    /** Deterministic per-cell perturbation factor in [1-s, 1+s]. */
    double cellFactor(std::size_t cell_index, unsigned salt) const;

    DcConfig cfg;
};

} // namespace salam::hls

#endif // SALAM_HLS_DC_ESTIMATOR_HH

#include "hls_scheduler.hh"

#include <algorithm>
#include <functional>

#include "sim/logging.hh"

namespace salam::hls
{

using namespace salam::ir;
using namespace salam::hw;

unsigned
HlsScheduler::latencyOf(const Instruction &inst) const
{
    if (inst.isMemoryOp())
        return cfg.memoryLatency;
    return cfg.profile.latencyFor(inst);
}

unsigned
HlsScheduler::fuLimit(FuType type) const
{
    if (cfg.fpUnitCap > 0 && isFpUnit(type))
        return cfg.fpUnitCap;
    return 0; // unbounded
}

BlockSchedule
HlsScheduler::scheduleBlock(const BasicBlock &block) const
{
    BlockSchedule sched;

    // Per-cycle usage counters for constrained resources.
    std::map<std::uint64_t, std::array<unsigned, numFuTypes>> fu_use;
    std::map<std::uint64_t, unsigned> read_use;
    std::map<std::uint64_t, unsigned> write_use;

    // Running totals for the II resource bound.
    std::array<unsigned, numFuTypes> op_totals{};
    unsigned loads = 0, stores = 0;

    for (std::size_t i = 0; i < block.size(); ++i) {
        const Instruction *inst = block.instruction(i);

        // ASAP: ready when in-block operands complete. Phis and
        // out-of-block values are register reads at cycle 0.
        std::uint64_t ready = 0;
        for (std::size_t o = 0; o < inst->numOperands(); ++o) {
            const auto *dep =
                dynamic_cast<const Instruction *>(inst->operand(o));
            if (dep == nullptr || dep->parent() != &block)
                continue;
            auto it = sched.startCycle.find(dep);
            if (it == sched.startCycle.end())
                continue; // phi self-reference across iterations
            ready = std::max(ready,
                             it->second + latencyOf(*dep));
        }

        // Resource-constrained placement.
        FuType type = fuTypeFor(*inst);
        unsigned limit = fuLimit(type);
        bool is_load = inst->opcode() == Opcode::Load;
        bool is_store = inst->opcode() == Opcode::Store;
        std::uint64_t start = ready;
        while (true) {
            bool ok = true;
            if (limit > 0 && type != FuType::None &&
                fu_use[start][static_cast<std::size_t>(type)] >=
                    limit) {
                ok = false;
            }
            if (is_load && read_use[start] >= cfg.readPorts)
                ok = false;
            if (is_store && write_use[start] >= cfg.writePorts)
                ok = false;
            if (ok)
                break;
            ++start;
        }
        if (type != FuType::None)
            ++fu_use[start][static_cast<std::size_t>(type)];
        if (is_load)
            ++read_use[start];
        if (is_store)
            ++write_use[start];

        sched.startCycle[inst] = start;
        sched.latency = std::max(sched.latency,
                                 start + latencyOf(*inst));

        if (type != FuType::None)
            ++op_totals[static_cast<std::size_t>(type)];
        if (is_load)
            ++loads;
        if (is_store)
            ++stores;
    }

    // Binding: peak per-cycle concurrency is the number of units
    // the RTL instantiates for each type.
    for (auto &[cycle, usage] : fu_use) {
        for (std::size_t t = 0; t < numFuTypes; ++t) {
            sched.boundUnits[t] =
                std::max(sched.boundUnits[t], usage[t]);
        }
    }

    // Initiation interval for pipelined self-loops:
    // resource MII ...
    std::uint64_t ii = 1;
    for (std::size_t t = 0; t < numFuTypes; ++t) {
        unsigned limit = fuLimit(static_cast<FuType>(t));
        if (limit > 0 && op_totals[t] > 0) {
            ii = std::max<std::uint64_t>(
                ii, (op_totals[t] + limit - 1) / limit);
        }
    }
    if (cfg.readPorts > 0) {
        ii = std::max<std::uint64_t>(
            ii, (loads + cfg.readPorts - 1) / cfg.readPorts);
    }
    if (cfg.writePorts > 0) {
        ii = std::max<std::uint64_t>(
            ii, (stores + cfg.writePorts - 1) / cfg.writePorts);
    }
    // Recurrence MII via steady-state relaxation. The carried
    // cycles of a pipelined loop run through three edge kinds:
    //   RAW   consumer issues when the producer commits (including
    //         loads fed by the previous iteration's store);
    //   WAR   without register renaming, the next iteration may not
    //         overwrite a value until every reader of the current
    //         one has issued;
    //   unit  an unpipelined operator accepts one input per
    //         initiation interval.
    // Iterating the constraint system to its fixed point yields the
    // steady-state initiation interval, the quantity an HLS tool's
    // modulo scheduler converges to.
    {
        // Carried memory RAW edges: store -> next iteration's load
        // of the same address (affine index delta equal to a pure
        // constant on a matching base array).
        auto root_pointer = [](const Value *v) -> const Value * {
            while (const auto *gep =
                       dynamic_cast<const GetElementPtrInst *>(v)) {
                v = gep->base();
            }
            return v;
        };
        // Affine form of an index expression: coefficients over
        // leaf symbols (phis / out-of-block values) + constant.
        using Affine = std::map<const Value *, std::int64_t>;
        std::function<bool(const Value *, Affine &, std::int64_t &,
                           int)>
            affine_of = [&](const Value *v, Affine &coeffs,
                            std::int64_t &konst,
                            int sign) -> bool {
            if (const auto *ci =
                    dynamic_cast<const ConstantInt *>(v)) {
                konst += sign * ci->sext();
                return true;
            }
            const auto *inst =
                dynamic_cast<const Instruction *>(v);
            if (inst == nullptr || inst->parent() != &block ||
                inst->opcode() == Opcode::Phi) {
                coeffs[v] += sign;
                return true;
            }
            if (inst->opcode() == Opcode::Add) {
                return affine_of(inst->operand(0), coeffs, konst,
                                 sign) &&
                    affine_of(inst->operand(1), coeffs, konst,
                              sign);
            }
            if (inst->opcode() == Opcode::Sub) {
                return affine_of(inst->operand(0), coeffs, konst,
                                 sign) &&
                    affine_of(inst->operand(1), coeffs, konst,
                              -sign);
            }
            // Treat any other in-block computation as an opaque
            // symbol (loop-invariant or non-affine).
            coeffs[v] += sign;
            return true;
        };

        // gep address in affine form (single-index geps only).
        auto address_affine = [&](const Value *pointer, Affine &a,
                                  std::int64_t &c) -> bool {
            const auto *gep =
                dynamic_cast<const GetElementPtrInst *>(pointer);
            if (gep == nullptr || gep->numIndices() != 1)
                return false;
            auto size = static_cast<std::int64_t>(
                gep->sourceElementType()->storeSize());
            Affine idx;
            std::int64_t ik = 0;
            if (!affine_of(gep->index(0), idx, ik, 1))
                return false;
            for (auto &[sym, coeff] : idx)
                a[sym] += coeff * size;
            c += ik * size;
            return true;
        };

        // load -> feeding store (previous iteration), when provable.
        std::map<const Instruction *, const Instruction *>
            carried_store;
        for (std::size_t j = 0; j < block.size(); ++j) {
            const Instruction *load = block.instruction(j);
            if (load->opcode() != Opcode::Load)
                continue;
            const Value *lp =
                static_cast<const LoadInst *>(load)->pointer();
            for (std::size_t i = 0; i < block.size(); ++i) {
                const Instruction *store = block.instruction(i);
                if (store->opcode() != Opcode::Store)
                    continue;
                const Value *sp =
                    static_cast<const StoreInst *>(store)
                        ->pointer();
                if (root_pointer(lp) != root_pointer(sp))
                    continue;
                Affine delta;
                std::int64_t dconst = 0;
                if (!address_affine(sp, delta, dconst))
                    continue;
                Affine ld;
                std::int64_t lconst = 0;
                if (!address_affine(lp, ld, lconst))
                    continue;
                for (auto &[sym, coeff] : ld)
                    delta[sym] -= coeff;
                dconst -= lconst;
                bool pure_const = true;
                for (auto &[sym, coeff] : delta)
                    pure_const &= (coeff == 0);
                if (pure_const && dconst >= 0 && dconst <= 64)
                    carried_store[load] = store;
            }
        }

        // Readers of each in-block value (for WAR edges).
        std::map<const Instruction *,
                 std::vector<const Instruction *>>
            readers;
        for (std::size_t i = 0; i < block.size(); ++i) {
            const Instruction *inst = block.instruction(i);
            for (std::size_t o = 0; o < inst->numOperands(); ++o) {
                const auto *dep =
                    dynamic_cast<const Instruction *>(
                        inst->operand(o));
                if (dep != nullptr && dep->parent() == &block)
                    readers[dep].push_back(inst);
            }
        }

        // Relaxation over successive iterations, seeded from a
        // dependence-only ASAP schedule: port pressure is a separate
        // (resource) floor and must not leak into the recurrence
        // measurement through the initial state.
        std::map<const Instruction *, double> issue_prev,
            commit_prev;
        for (std::size_t i = 0; i < block.size(); ++i) {
            const Instruction *inst = block.instruction(i);
            double start = 0.0;
            for (std::size_t o = 0; o < inst->numOperands(); ++o) {
                const auto *dep =
                    dynamic_cast<const Instruction *>(
                        inst->operand(o));
                if (dep == nullptr || dep->parent() != &block)
                    continue;
                auto it = commit_prev.find(dep);
                if (it != commit_prev.end())
                    start = std::max(start, it->second);
            }
            issue_prev[inst] = start;
            commit_prev[inst] = start + latencyOf(*inst);
        }

        double period = static_cast<double>(ii);
        double prev_period = -1.0;
        for (int round = 0; round < 64; ++round) {
            std::map<const Instruction *, double> issue_cur,
                commit_cur;
            double max_delta = 1.0;
            for (std::size_t i = 0; i < block.size(); ++i) {
                const Instruction *inst = block.instruction(i);
                double ready = 0.0;
                if (const auto *phi =
                        dynamic_cast<const PhiInst *>(inst)) {
                    const auto *update =
                        dynamic_cast<const Instruction *>(
                            phi->valueFor(&block));
                    if (update != nullptr &&
                        update->parent() == &block) {
                        ready = commit_prev.at(update);
                    }
                } else {
                    for (std::size_t o = 0;
                         o < inst->numOperands(); ++o) {
                        const auto *dep =
                            dynamic_cast<const Instruction *>(
                                inst->operand(o));
                        if (dep == nullptr ||
                            dep->parent() != &block) {
                            continue;
                        }
                        auto it = commit_cur.find(dep);
                        if (it != commit_cur.end())
                            ready = std::max(ready, it->second);
                    }
                }
                auto cs = carried_store.find(inst);
                if (cs != carried_store.end())
                    ready = std::max(ready,
                                     commit_prev.at(cs->second));
                // WAR: previous instance's readers must have issued.
                auto rd = readers.find(inst);
                if (rd != readers.end()) {
                    for (const Instruction *r : rd->second) {
                        ready = std::max(ready,
                                         issue_prev.at(r));
                    }
                }
                // Unpipelined unit back-to-back constraint.
                FuType type = fuTypeFor(*inst);
                if (type != FuType::None) {
                    ready = std::max(
                        ready,
                        issue_prev.at(inst) +
                            cfg.profile.fu(type)
                                .initiationInterval);
                }
                issue_cur[inst] = ready;
                commit_cur[inst] = ready + latencyOf(*inst);
                max_delta = std::max(
                    max_delta, ready - issue_prev.at(inst));
            }
            prev_period = period;
            period = max_delta;
            issue_prev = std::move(issue_cur);
            commit_prev = std::move(commit_cur);
            if (round > 4 && period == prev_period)
                break; // converged
        }
        ii = std::max<std::uint64_t>(
            ii, static_cast<std::uint64_t>(period + 0.5));
    }
    sched.initiationInterval = ii;

    // Control latency: when the terminator's condition resolves,
    // the controller advances; one extra cycle for the state
    // transition (matching the engine's block-import fence).
    sched.controlLatency = 1;
    const Instruction *term = block.terminator();
    if (term != nullptr && term->opcode() == Opcode::Ret) {
        sched.controlLatency = std::max<std::uint64_t>(
            sched.latency, 1);
    } else if (term != nullptr) {
        const auto *br = static_cast<const BranchInst *>(term);
        if (br->isConditional()) {
            const auto *cond = dynamic_cast<const Instruction *>(
                br->condition());
            if (cond != nullptr && cond->parent() == &block) {
                sched.controlLatency = sched.startCycle.at(cond) +
                    latencyOf(*cond) + 1;
            }
        }
    }
    return sched;
}

HlsResult
HlsScheduler::estimate(const Function &fn,
                       const std::vector<RuntimeValue> &args,
                       MemoryAccessor &memory) const
{
    // Static schedules for every block.
    std::map<const BasicBlock *, BlockSchedule> schedules;
    for (std::size_t bi = 0; bi < fn.numBlocks(); ++bi) {
        const BasicBlock *block = fn.block(bi);
        schedules[block] = scheduleBlock(*block);
    }

    HlsResult result;
    for (const auto &[block, sched] : schedules) {
        for (std::size_t t = 0; t < numFuTypes; ++t) {
            result.boundUnits[t] = std::max(result.boundUnits[t],
                                            sched.boundUnits[t]);
        }
    }

    // Functional execution to recover the dynamic block sequence
    // and the operation counts (for the power reference).
    std::vector<const BasicBlock *> block_trace;
    bool new_block = true;
    Interpreter interp(memory);
    interp.setObserver([&](const ExecRecord &rec) {
        // A block execution begins at the first record after a
        // terminator (or at program start); consecutive executions
        // of a loop body each contribute one trace entry.
        if (new_block) {
            block_trace.push_back(rec.block);
            new_block = false;
        }
        if (rec.inst->isTerminator())
            new_block = true;
        FuType type = fuTypeFor(*rec.inst);
        if (type != FuType::None) {
            ++result.opCounts[static_cast<std::size_t>(type)];
        }
        ++result.dynamicInstructions;
    });
    interp.run(fn, args);

    // Timing algebra: a run of k consecutive executions of a
    // pipelined loop block costs latency + (k - 1) * II; distinct
    // blocks in sequence cost their full latencies (the controller
    // chains them).
    std::uint64_t cycles = 0;
    std::size_t i = 0;
    while (i < block_trace.size()) {
        const BasicBlock *block = block_trace[i];
        std::size_t run = 1;
        while (i + run < block_trace.size() &&
               block_trace[i + run] == block) {
            ++run;
        }
        const BlockSchedule &sched = schedules.at(block);
        std::uint64_t latency =
            std::max<std::uint64_t>(sched.latency, 1);
        bool last = (i + run == block_trace.size());
        // Pipelined loop: prologue fills the pipeline, then one
        // initiation interval per iteration. Every FSM state
        // transition to a different state costs one cycle after the
        // block drains.
        cycles += latency + (run - 1) * sched.initiationInterval +
            (last ? 0 : 1);
        i += run;
    }
    result.totalCycles = cycles;
    return result;
}

} // namespace salam::hls

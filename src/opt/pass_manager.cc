#include "pass_manager.hh"

#include "fold.hh"
#include "ir/verifier.hh"
#include "sim/logging.hh"
#include "unroll.hh"

namespace salam::opt
{

void
PassManager::run(ir::Function &fn,
                 const std::vector<PassSpec> &pipeline)
{
    for (const PassSpec &pass : pipeline) {
        switch (pass.kind) {
          case PassSpec::Kind::Cleanup:
            cleanup(fn);
            break;
          case PassSpec::Kind::Unroll:
            if (Unroller::unrollByLabel(fn, pass.label,
                                        pass.factor) == 0) {
                fatal("unroll: no simple loop at label '%s' in @%s",
                      pass.label.c_str(), fn.name().c_str());
            }
            break;
          case PassSpec::Kind::UnrollFull: {
            ir::BasicBlock *block = fn.findBlock(pass.label);
            if (block == nullptr)
                fatal("unroll-full: no block '%s' in @%s",
                      pass.label.c_str(), fn.name().c_str());
            auto loop = LoopAnalysis::analyze(fn, block);
            if (!loop)
                fatal("unroll-full: '%s' is not a simple loop in @%s",
                      pass.label.c_str(), fn.name().c_str());
            Unroller::unroll(fn, *loop, loop->tripCount);
            break;
          }
          case PassSpec::Kind::UnrollAll:
            Unroller::unrollAll(fn);
            break;
          case PassSpec::Kind::Balance:
            balanceReductions(fn);
            break;
        }
        ir::Verifier::verifyOrDie(fn);
    }
}

} // namespace salam::opt

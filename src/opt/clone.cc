#include "clone.hh"

#include "sim/logging.hh"

namespace salam::opt
{

using namespace salam::ir;

std::unique_ptr<Instruction>
cloneInstruction(const Instruction &inst, const ValueMap &map,
                 const std::string &name)
{
    auto op = [&](std::size_t i) {
        return mapped(map, inst.operand(i));
    };

    switch (inst.opcode()) {
      case Opcode::ICmp:
      case Opcode::FCmp: {
        const auto &cmp = static_cast<const CmpInst &>(inst);
        return std::make_unique<CmpInst>(inst.opcode(),
                                         cmp.predicate(), inst.type(),
                                         op(0), op(1), name);
      }
      case Opcode::Trunc:
      case Opcode::ZExt:
      case Opcode::SExt:
      case Opcode::FPToSI:
      case Opcode::SIToFP:
      case Opcode::FPTrunc:
      case Opcode::FPExt:
      case Opcode::BitCast:
      case Opcode::PtrToInt:
      case Opcode::IntToPtr:
        return std::make_unique<CastInst>(inst.opcode(), op(0),
                                          inst.type(), name);
      case Opcode::Load:
        return std::make_unique<LoadInst>(op(0), name);
      case Opcode::Store:
        return std::make_unique<StoreInst>(inst.type(), op(0), op(1));
      case Opcode::GetElementPtr: {
        const auto &gep =
            static_cast<const GetElementPtrInst &>(inst);
        std::vector<Value *> indices;
        for (std::size_t i = 0; i < gep.numIndices(); ++i)
            indices.push_back(mapped(map, gep.index(i)));
        return std::make_unique<GetElementPtrInst>(
            gep.sourceElementType(), gep.type(), op(0), indices,
            name);
      }
      case Opcode::Select:
        return std::make_unique<SelectInst>(op(0), op(1), op(2),
                                            name);
      case Opcode::Call: {
        const auto &call = static_cast<const CallInst &>(inst);
        std::vector<Value *> args;
        for (std::size_t i = 0; i < call.numOperands(); ++i)
            args.push_back(op(i));
        return std::make_unique<CallInst>(call.type(), call.callee(),
                                          args, name);
      }
      case Opcode::Br: {
        const auto &br = static_cast<const BranchInst &>(inst);
        auto map_block = [&](BasicBlock *b) {
            return static_cast<BasicBlock *>(
                mapped(map, static_cast<Value *>(b)));
        };
        if (br.isConditional()) {
            return std::make_unique<BranchInst>(
                inst.type(), op(0), map_block(br.ifTrue()),
                map_block(br.ifFalse()));
        }
        return std::make_unique<BranchInst>(inst.type(),
                                            map_block(br.ifTrue()));
      }
      case Opcode::Ret: {
        const auto &ret = static_cast<const ReturnInst &>(inst);
        if (ret.hasValue())
            return std::make_unique<ReturnInst>(inst.type(), op(0));
        return std::make_unique<ReturnInst>(inst.type());
      }
      case Opcode::Phi:
        panic("cloneInstruction cannot clone phi nodes");
      default: {
        // Binary arithmetic/bitwise.
        return std::make_unique<BinaryOp>(inst.opcode(), op(0), op(1),
                                          name);
      }
    }
}

} // namespace salam::opt

/**
 * @file
 * PassManager: named optimization pipelines.
 *
 * Device configurations name their optimization recipe the way a
 * build would pass flags to clang; the PassManager resolves names
 * like "unroll(loop,8)" or "cleanup" and applies them in order.
 */

#ifndef SALAM_OPT_PASS_MANAGER_HH
#define SALAM_OPT_PASS_MANAGER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "ir/function.hh"

namespace salam::opt
{

/** One optimization directive. */
struct PassSpec
{
    enum class Kind
    {
        Cleanup,       ///< fold + dce + simplify to fixpoint
        Unroll,        ///< unroll(label, factor)
        UnrollFull,    ///< unroll-full(label)
        UnrollAll,     ///< fully unroll every loop, repeatedly
        Balance,       ///< balance reduction chains into trees
    };

    Kind kind = Kind::Cleanup;
    std::string label;
    std::uint64_t factor = 1;

    static PassSpec cleanup() { return {Kind::Cleanup, "", 1}; }

    static PassSpec
    unroll(std::string loop_label, std::uint64_t factor)
    {
        return {Kind::Unroll, std::move(loop_label), factor};
    }

    static PassSpec
    unrollFull(std::string loop_label)
    {
        return {Kind::UnrollFull, std::move(loop_label), 1};
    }

    static PassSpec unrollAll() { return {Kind::UnrollAll, "", 1}; }

    static PassSpec balance() { return {Kind::Balance, "", 1}; }
};

/** Applies a pipeline of passes to a function. */
class PassManager
{
  public:
    /**
     * Run the pipeline on @p fn, verifying after each pass.
     * fatal()s if a pass breaks the IR (simulator-quality gate).
     */
    static void run(ir::Function &fn,
                    const std::vector<PassSpec> &pipeline);
};

} // namespace salam::opt

#endif // SALAM_OPT_PASS_MANAGER_HH

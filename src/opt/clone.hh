/**
 * @file
 * Instruction cloning with operand remapping, used by the unroller.
 */

#ifndef SALAM_OPT_CLONE_HH
#define SALAM_OPT_CLONE_HH

#include <map>
#include <memory>
#include <string>

#include "ir/function.hh"

namespace salam::opt
{

/** Maps original values to their replacements during cloning. */
using ValueMap = std::map<ir::Value *, ir::Value *>;

/** Look up @p v in @p map, defaulting to @p v itself. */
inline ir::Value *
mapped(const ValueMap &map, ir::Value *v)
{
    auto it = map.find(v);
    return it == map.end() ? v : it->second;
}

/**
 * Clone a non-phi instruction with operands remapped through @p map.
 * Branch targets are remapped as well when present in @p map.
 *
 * @param inst Instruction to clone.
 * @param map  Value substitutions to apply.
 * @param name Result name for the clone.
 */
std::unique_ptr<ir::Instruction>
cloneInstruction(const ir::Instruction &inst, const ValueMap &map,
                 const std::string &name);

} // namespace salam::opt

#endif // SALAM_OPT_CLONE_HH

#include "fold.hh"

#include <algorithm>
#include <functional>
#include <map>
#include <set>

#include "ir/eval.hh"
#include "sim/logging.hh"

namespace salam::opt
{

using namespace salam::ir;

namespace
{

/** Count uses of every instruction-defined value in @p fn. */
std::map<const Value *, std::size_t>
countUses(const Function &fn)
{
    std::map<const Value *, std::size_t> uses;
    for (std::size_t b = 0; b < fn.numBlocks(); ++b) {
        const BasicBlock *block = fn.block(b);
        for (const auto &inst : *block) {
            for (std::size_t o = 0; o < inst->numOperands(); ++o)
                ++uses[inst->operand(o)];
        }
    }
    return uses;
}

void
replaceAllUses(Function &fn, Value *from, Value *to)
{
    for (std::size_t b = 0; b < fn.numBlocks(); ++b) {
        BasicBlock *block = fn.block(b);
        for (std::size_t i = 0; i < block->size(); ++i)
            block->instruction(i)->replaceUsesOf(from, to);
    }
}

/** Drop @p pred from the incoming lists of phis in @p block. */
void
removePhiIncoming(BasicBlock *block, BasicBlock *pred)
{
    for (PhiInst *phi : block->phis()) {
        for (std::size_t i = 0; i < phi->numIncoming(); ++i) {
            if (phi->incomingBlock(i) == pred) {
                // Rebuild the phi without this entry.
                std::vector<std::pair<Value *, BasicBlock *>> keep;
                for (std::size_t k = 0; k < phi->numIncoming(); ++k) {
                    if (k != i) {
                        keep.emplace_back(phi->incomingValue(k),
                                          phi->incomingBlock(k));
                    }
                }
                // PhiInst has no removal API; recreate in place by
                // clearing via set operations is not possible, so we
                // mutate through a fresh phi swap below.
                // Instead, overwrite entries then shrink:
                // (simplest correct approach: build new phi)
                auto replacement = std::make_unique<PhiInst>(
                    phi->type(), phi->name());
                for (auto &[v, bb] : keep)
                    replacement->addIncoming(v, bb);
                // Find phi position.
                for (std::size_t p = 0; p < block->size(); ++p) {
                    if (block->instruction(p) == phi) {
                        Instruction *fresh = block->insert(
                            p, std::move(replacement));
                        // Redirect uses to the fresh phi, then drop
                        // the old one (now at p + 1).
                        Function *fn = block->parent();
                        replaceAllUses(*fn, phi, fresh);
                        block->erase(p + 1);
                        break;
                    }
                }
                // Restart scanning this block's phis.
                removePhiIncoming(block, pred);
                return;
            }
        }
    }
}

bool
hasSideEffects(const Instruction &inst)
{
    switch (inst.opcode()) {
      case Opcode::Store:
      case Opcode::Br:
      case Opcode::Ret:
        return true;
      case Opcode::Load:
        // Accelerator-local loads are idempotent; a dead load is a
        // dead memory port access the synthesizer would also drop.
        return false;
      default:
        return false;
    }
}

} // namespace

bool
foldConstants(Function &fn)
{
    bool any = false;
    bool changed = true;
    while (changed) {
        changed = false;
        for (std::size_t b = 0; b < fn.numBlocks(); ++b) {
            BasicBlock *block = fn.block(b);
            for (std::size_t i = 0; i < block->size(); ++i) {
                Instruction *inst = block->instruction(i);
                if (!inst->isComputeOp() ||
                    inst->opcode() == Opcode::Call) {
                    continue;
                }
                bool all_const = inst->numOperands() > 0;
                for (std::size_t o = 0; o < inst->numOperands(); ++o) {
                    if (!inst->operand(o)->isConstant())
                        all_const = false;
                }
                if (!all_const)
                    continue;

                std::vector<RuntimeValue> ops;
                for (std::size_t o = 0; o < inst->numOperands(); ++o)
                    ops.push_back(evalConstant(inst->operand(o)));
                RuntimeValue rv = evalCompute(*inst, ops);

                Module *mod = fn.parent();
                SALAM_ASSERT(mod != nullptr);
                Value *replacement;
                if (inst->type()->isFloatingPoint()) {
                    replacement = mod->getConstantFP(
                        inst->type(), rv.asFP(inst->type()));
                } else {
                    replacement = mod->getConstantInt(
                        inst->type(), rv.bits);
                }
                replaceAllUses(fn, inst, replacement);
                block->erase(i);
                --i;
                changed = true;
                any = true;
            }
        }

        // Fold constant conditional branches.
        for (std::size_t b = 0; b < fn.numBlocks(); ++b) {
            BasicBlock *block = fn.block(b);
            auto *br = dynamic_cast<BranchInst *>(block->terminator());
            if (br == nullptr || !br->isConditional() ||
                !br->condition()->isConstant()) {
                continue;
            }
            bool taken = evalConstant(br->condition()).asBool();
            BasicBlock *kept = taken ? br->ifTrue() : br->ifFalse();
            BasicBlock *dropped = taken ? br->ifFalse() : br->ifTrue();
            block->erase(block->size() - 1);
            block->append(std::make_unique<BranchInst>(
                fn.type(), kept));
            if (dropped != kept)
                removePhiIncoming(dropped, block);
            changed = true;
            any = true;
        }
    }
    return any;
}

bool
eliminateDeadCode(Function &fn)
{
    bool any = false;
    bool changed = true;
    while (changed) {
        changed = false;
        auto uses = countUses(fn);
        for (std::size_t b = 0; b < fn.numBlocks(); ++b) {
            BasicBlock *block = fn.block(b);
            for (std::size_t i = block->size(); i-- > 0;) {
                Instruction *inst = block->instruction(i);
                if (hasSideEffects(*inst))
                    continue;
                if (uses[inst] > 0)
                    continue;
                block->erase(i);
                changed = true;
                any = true;
            }
        }
    }
    return any;
}

bool
simplifyCfg(Function &fn)
{
    bool any = false;
    bool changed = true;
    while (changed) {
        changed = false;

        // 1. Remove unreachable blocks.
        std::set<const BasicBlock *> reachable;
        std::vector<BasicBlock *> worklist{fn.entry()};
        while (!worklist.empty()) {
            BasicBlock *block = worklist.back();
            worklist.pop_back();
            if (!reachable.insert(block).second)
                continue;
            for (auto *succ : block->successors())
                worklist.push_back(succ);
        }
        for (std::size_t b = fn.numBlocks(); b-- > 0;) {
            BasicBlock *block = fn.block(b);
            if (reachable.count(block))
                continue;
            for (auto *succ : block->successors())
                removePhiIncoming(succ, block);
            fn.eraseBlock(b);
            changed = true;
            any = true;
        }
        if (changed)
            continue;

        // 2. Fold single-incoming phis.
        for (std::size_t b = 0; b < fn.numBlocks(); ++b) {
            BasicBlock *block = fn.block(b);
            for (PhiInst *phi : block->phis()) {
                if (phi->numIncoming() == 1) {
                    replaceAllUses(fn, phi, phi->incomingValue(0));
                    for (std::size_t i = 0; i < block->size(); ++i) {
                        if (block->instruction(i) == phi) {
                            block->erase(i);
                            break;
                        }
                    }
                    changed = true;
                    any = true;
                    break;
                }
            }
            if (changed)
                break;
        }
        if (changed)
            continue;

        // 3. Merge straight-line chains: b -> s with single pred and
        //    no phis in s.
        for (std::size_t b = 0; b < fn.numBlocks(); ++b) {
            BasicBlock *block = fn.block(b);
            auto *br = dynamic_cast<BranchInst *>(block->terminator());
            if (br == nullptr || br->isConditional())
                continue;
            BasicBlock *succ = br->ifTrue();
            if (succ == block || succ == fn.entry())
                continue;
            if (fn.predecessors(succ).size() != 1)
                continue;
            if (!succ->phis().empty())
                continue;

            // Drop block's terminator, splice succ's instructions.
            block->erase(block->size() - 1);
            auto moved = succ->takeAll();
            for (auto &inst : moved)
                block->append(std::move(inst));

            // Phis in succ's successors must re-point at block.
            for (auto *after : block->successors()) {
                for (PhiInst *phi : after->phis()) {
                    for (std::size_t i = 0; i < phi->numIncoming();
                         ++i) {
                        if (phi->incomingBlock(i) == succ)
                            phi->setIncomingBlock(i, block);
                    }
                }
            }

            for (std::size_t k = 0; k < fn.numBlocks(); ++k) {
                if (fn.block(k) == succ) {
                    fn.eraseBlock(k);
                    break;
                }
            }
            changed = true;
            any = true;
            break;
        }
    }
    return any;
}

bool
reassociateConstants(Function &fn)
{
    auto const_of = [](Value *v) -> const ConstantInt * {
        return dynamic_cast<const ConstantInt *>(v);
    };

    Module *mod = fn.parent();
    bool any = false;
    bool changed = true;
    while (changed) {
        changed = false;
        for (std::size_t b = 0; b < fn.numBlocks(); ++b) {
            BasicBlock *block = fn.block(b);
            for (std::size_t i = 0; i < block->size(); ++i) {
                Instruction *inst = block->instruction(i);
                if (inst->opcode() != Opcode::Add)
                    continue;
                auto *outer = static_cast<BinaryOp *>(inst);
                const ConstantInt *c2 = const_of(outer->rhs());
                Value *base = outer->lhs();
                if (c2 == nullptr) {
                    c2 = const_of(outer->lhs());
                    base = outer->rhs();
                }
                if (c2 == nullptr)
                    continue;
                auto *inner = dynamic_cast<BinaryOp *>(base);
                if (inner == nullptr ||
                    inner->opcode() != Opcode::Add) {
                    continue;
                }
                const ConstantInt *c1 = const_of(inner->rhs());
                Value *root = inner->lhs();
                if (c1 == nullptr) {
                    c1 = const_of(inner->lhs());
                    root = inner->rhs();
                }
                if (c1 == nullptr)
                    continue;
                ConstantInt *sum = mod->getConstantInt(
                    inst->type(), c1->zext() + c2->zext());
                outer->setOperand(0, root);
                outer->setOperand(1, sum);
                changed = true;
                any = true;
            }
        }
    }
    return any;
}

namespace
{

bool
isBalanceable(Opcode op)
{
    switch (op) {
      case Opcode::Add:
      case Opcode::Mul:
      case Opcode::FAdd:
      case Opcode::FMul:
      case Opcode::And:
      case Opcode::Or:
      case Opcode::Xor:
        return true;
      default:
        return false;
    }
}

} // namespace

bool
balanceReductions(Function &fn)
{
    bool any = false;
    for (std::size_t b = 0; b < fn.numBlocks(); ++b) {
        BasicBlock *block = fn.block(b);
        bool changed = true;
        while (changed) {
            changed = false;
            auto uses = countUses(fn);

            for (std::size_t i = 0; i < block->size(); ++i) {
                Instruction *tail = block->instruction(i);
                if (!isBalanceable(tail->opcode()))
                    continue;
                if (uses[tail] == 0)
                    continue; // dead chain awaiting DCE
                Opcode op = tail->opcode();

                // A chain tail is a node whose result is not itself
                // a single-use input of another same-op node here.
                bool is_tail = true;
                for (std::size_t j = 0; j < block->size(); ++j) {
                    Instruction *user = block->instruction(j);
                    if (user->opcode() == op && uses[tail] == 1 &&
                        (user->operand(0) == tail ||
                         user->operand(1) == tail)) {
                        is_tail = false;
                        break;
                    }
                }
                if (!is_tail)
                    continue;

                // Gather leaves through single-use same-op links,
                // tracking the expression depth.
                std::vector<Value *> leaves;
                std::size_t links = 0;
                std::size_t max_depth = 0;
                std::function<void(Value *, bool, std::size_t)>
                    gather = [&](Value *v, bool root,
                                 std::size_t depth) {
                        auto *inst = dynamic_cast<Instruction *>(v);
                        if (inst != nullptr &&
                            inst->opcode() == op &&
                            inst->parent() == block &&
                            (root || uses[inst] == 1)) {
                            ++links;
                            gather(inst->operand(0), false,
                                   depth + 1);
                            gather(inst->operand(1), false,
                                   depth + 1);
                        } else {
                            leaves.push_back(v);
                            max_depth = std::max(max_depth, depth);
                        }
                    };
                gather(tail, true, 0);
                if (links < 4 || leaves.size() < 5)
                    continue;
                // Skip expressions that are already (near) balanced.
                std::size_t balanced_depth = 1;
                while ((1ull << balanced_depth) < leaves.size())
                    ++balanced_depth;
                if (max_depth <= balanced_depth + 1)
                    continue;

                // Already shallow? A pure chain has links ==
                // leaves-1 and depth == links; a balanced tree has
                // depth ~log2. Rebuild unconditionally; DCE removes
                // the old chain. Build pairwise levels just before
                // the tail (all leaves dominate that point).
                std::size_t pos = 0;
                while (block->instruction(pos) != tail)
                    ++pos;

                unsigned serial = 0;
                std::vector<Value *> level = std::move(leaves);
                while (level.size() > 1) {
                    std::vector<Value *> next;
                    std::size_t k = 0;
                    for (; k + 1 < level.size(); k += 2) {
                        auto node = std::make_unique<BinaryOp>(
                            op, level[k], level[k + 1],
                            tail->name() + ".bal" +
                                std::to_string(serial++));
                        Instruction *placed =
                            block->insert(pos++, std::move(node));
                        next.push_back(placed);
                    }
                    if (k < level.size())
                        next.push_back(level[k]);
                    level = std::move(next);
                }

                replaceAllUses(fn, tail, level.front());
                changed = true;
                any = true;
                break; // uses map is stale; rescan the block
            }
        }
    }
    if (any)
        eliminateDeadCode(fn);
    return any;
}

void
cleanup(Function &fn)

{
    bool changed = true;
    while (changed) {
        changed = false;
        changed |= foldConstants(fn);
        changed |= reassociateConstants(fn);
        changed |= eliminateDeadCode(fn);
        changed |= simplifyCfg(fn);
    }
}

} // namespace salam::opt

/**
 * @file
 * Loop analysis for the unroller.
 *
 * gem5-SALAM (like HLS tools) exposes loop unrolling as the primary
 * knob controlling datapath ILP. We analyze the canonical loop shape
 * our IRBuilder-based kernels (and clang's rotated loops) produce: a
 * single-block counted loop whose block is both header and latch:
 *
 *   loop:
 *     %i = phi i64 [ <init>, %pre ], [ %i.next, %loop ]
 *     ... body ...
 *     %i.next = add i64 %i, <step>
 *     %cond = icmp <pred> %i.next, <bound>
 *     br i1 %cond, label %loop, label %exit
 *
 * The trip count is recovered by symbolically executing the induction
 * slice, which handles any predicate/step combination without
 * closed-form case analysis.
 */

#ifndef SALAM_OPT_LOOP_ANALYSIS_HH
#define SALAM_OPT_LOOP_ANALYSIS_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "ir/function.hh"

namespace salam::opt
{

/** A recognized single-block counted loop. */
struct SimpleLoop
{
    ir::BasicBlock *block = nullptr;
    /** The unique predecessor outside the loop. */
    ir::BasicBlock *preheader = nullptr;
    /** The non-loop successor of the terminator. */
    ir::BasicBlock *exit = nullptr;
    /** Loop-carried phis (induction variable and accumulators). */
    std::vector<ir::PhiInst *> phis;
    /** Number of iterations the loop body executes. */
    std::uint64_t tripCount = 0;
};

/** Loop discovery and trip-count computation. */
class LoopAnalysis
{
  public:
    /**
     * Recognize @p block as a simple counted self-loop.
     * @return the loop descriptor, or nullopt if the shape or a
     *         computable trip count is not present.
     */
    static std::optional<SimpleLoop>
    analyze(ir::Function &fn, ir::BasicBlock *block);

    /** All simple loops in @p fn, in block order. */
    static std::vector<SimpleLoop> findLoops(ir::Function &fn);

  private:
    static std::optional<std::uint64_t>
    computeTripCount(const SimpleLoop &loop);
};

} // namespace salam::opt

#endif // SALAM_OPT_LOOP_ANALYSIS_HH

#include "loop_analysis.hh"

#include <algorithm>
#include <map>
#include <set>

#include "ir/eval.hh"
#include "sim/logging.hh"

namespace salam::opt
{

using namespace salam::ir;

std::optional<SimpleLoop>
LoopAnalysis::analyze(Function &fn, BasicBlock *block)
{
    auto *br = dynamic_cast<BranchInst *>(block->terminator());
    if (br == nullptr || !br->isConditional())
        return std::nullopt;

    BasicBlock *exit = nullptr;
    if (br->ifTrue() == block && br->ifFalse() != block)
        exit = br->ifFalse();
    else if (br->ifFalse() == block && br->ifTrue() != block)
        exit = br->ifTrue();
    else
        return std::nullopt;

    // Exactly one predecessor besides the block itself.
    BasicBlock *preheader = nullptr;
    for (auto *pred : fn.predecessors(block)) {
        if (pred == block)
            continue;
        if (preheader != nullptr)
            return std::nullopt;
        preheader = pred;
    }
    if (preheader == nullptr)
        return std::nullopt;

    SimpleLoop loop;
    loop.block = block;
    loop.preheader = preheader;
    loop.exit = exit;
    for (PhiInst *phi : block->phis()) {
        if (phi->numIncoming() != 2)
            return std::nullopt;
        if (phi->valueFor(preheader) == nullptr ||
            phi->valueFor(block) == nullptr) {
            return std::nullopt;
        }
        loop.phis.push_back(phi);
    }

    auto trip = computeTripCount(loop);
    if (!trip || *trip == 0)
        return std::nullopt;
    loop.tripCount = *trip;
    return loop;
}

std::optional<std::uint64_t>
LoopAnalysis::computeTripCount(const SimpleLoop &loop)
{
    BasicBlock *block = loop.block;
    auto *br = static_cast<BranchInst *>(block->terminator());
    auto *cond = dynamic_cast<Instruction *>(br->condition());
    if (cond == nullptr || cond->parent() != block)
        return std::nullopt;

    // Backward slice from the condition, restricted to this block.
    // Every leaf must be a constant (possibly through a phi whose
    // preheader-incoming value is constant).
    std::set<const Instruction *> slice;
    std::vector<const Instruction *> worklist{cond};
    while (!worklist.empty()) {
        const Instruction *inst = worklist.back();
        worklist.pop_back();
        if (!slice.insert(inst).second)
            continue;
        if (inst->isMemoryOp() || inst->opcode() == Opcode::Call)
            return std::nullopt;

        if (const auto *phi = dynamic_cast<const PhiInst *>(inst)) {
            Value *init = phi->valueFor(loop.preheader);
            Value *update = phi->valueFor(block);
            if (!init->isConstant())
                return std::nullopt;
            if (auto *ui = dynamic_cast<Instruction *>(update)) {
                if (ui->parent() != block)
                    return std::nullopt;
                worklist.push_back(ui);
            } else if (!update->isConstant()) {
                return std::nullopt;
            }
            continue;
        }
        for (std::size_t o = 0; o < inst->numOperands(); ++o) {
            const Value *op = inst->operand(o);
            if (op->isConstant())
                continue;
            const auto *dep = dynamic_cast<const Instruction *>(op);
            if (dep == nullptr || dep->parent() != block)
                return std::nullopt;
            worklist.push_back(dep);
        }
    }

    // Order the slice by block position for in-order evaluation.
    std::vector<const Instruction *> ordered;
    for (std::size_t i = 0; i < block->size(); ++i) {
        const Instruction *inst = block->instruction(i);
        if (slice.count(inst))
            ordered.push_back(inst);
    }

    // Symbolically execute the slice until the branch exits.
    constexpr std::uint64_t iterationCap = 1ULL << 26;
    std::map<const Value *, RuntimeValue> env;
    auto value_of = [&](const Value *v) {
        if (v->isConstant())
            return evalConstant(v);
        auto it = env.find(v);
        SALAM_ASSERT(it != env.end());
        return it->second;
    };

    for (const Instruction *inst : ordered) {
        if (const auto *phi = dynamic_cast<const PhiInst *>(inst))
            env[phi] = evalConstant(phi->valueFor(loop.preheader));
    }

    bool exit_on_true = (br->ifFalse() == block);
    std::uint64_t trips = 0;
    while (true) {
        // Evaluate non-phi slice instructions in order.
        for (const Instruction *inst : ordered) {
            if (inst->opcode() == Opcode::Phi)
                continue;
            std::vector<RuntimeValue> ops;
            for (std::size_t o = 0; o < inst->numOperands(); ++o)
                ops.push_back(value_of(inst->operand(o)));
            env[inst] = evalCompute(*inst, ops);
        }
        ++trips;
        if (trips > iterationCap)
            return std::nullopt;

        bool cond_val = value_of(cond).asBool();
        if (cond_val == exit_on_true)
            return trips;

        // Advance phis simultaneously for the next iteration.
        std::map<const Value *, RuntimeValue> next;
        for (const Instruction *inst : ordered) {
            if (const auto *phi = dynamic_cast<const PhiInst *>(inst))
                next[phi] = value_of(phi->valueFor(block));
        }
        for (auto &[k, v] : next)
            env[k] = v;
    }
}

std::vector<SimpleLoop>
LoopAnalysis::findLoops(Function &fn)
{
    std::vector<SimpleLoop> loops;
    for (std::size_t b = 0; b < fn.numBlocks(); ++b) {
        auto loop = analyze(fn, fn.block(b));
        if (loop)
            loops.push_back(*loop);
    }
    return loops;
}

} // namespace salam::opt

#include "unroll.hh"

#include <algorithm>

#include "clone.hh"
#include "fold.hh"
#include "sim/logging.hh"

namespace salam::opt
{

using namespace salam::ir;

namespace
{

std::uint64_t
clampFactor(std::uint64_t trip_count, std::uint64_t factor)
{
    factor = std::min(factor, trip_count);
    while (factor > 1 && trip_count % factor != 0)
        --factor;
    return std::max<std::uint64_t>(factor, 1);
}

/** Rename helper: base for iteration 0, base.uK for later copies. */
std::string
iterName(const std::string &base, std::uint64_t k)
{
    if (base.empty())
        return base;
    if (k == 0)
        return base;
    return base + ".u" + std::to_string(k);
}

} // namespace

std::uint64_t
Unroller::unroll(Function &fn, SimpleLoop &loop, std::uint64_t factor)
{
    factor = clampFactor(loop.tripCount, factor);
    if (factor <= 1)
        return 1;
    bool full = (factor == loop.tripCount);

    BasicBlock *block = loop.block;
    auto original = block->takeAll();

    // Partition the original instructions.
    std::vector<PhiInst *> phis;
    std::vector<Instruction *> body;
    BranchInst *term = nullptr;
    for (auto &inst : original) {
        if (auto *phi = dynamic_cast<PhiInst *>(inst.get())) {
            phis.push_back(phi);
        } else if (auto *br = dynamic_cast<BranchInst *>(inst.get())) {
            term = br;
        } else {
            body.push_back(inst.get());
        }
    }
    SALAM_ASSERT(term != nullptr && term->isConditional());
    Value *orig_cond = term->condition();

    // phiCur maps each phi to its value at the start of the current
    // unrolled iteration. For partial unroll iteration 0 that is the
    // (retained) phi itself; for full unroll it is the initial value.
    ValueMap phiCur;
    for (PhiInst *phi : phis) {
        phiCur[phi] = full ? phi->valueFor(loop.preheader)
                           : static_cast<Value *>(phi);
    }

    // Re-install retained phis first (they must lead the block).
    if (!full) {
        for (auto &inst : original) {
            if (dynamic_cast<PhiInst *>(inst.get()) != nullptr)
                block->append(std::move(inst));
        }
    }

    ValueMap iterMap;
    Value *last_cond = nullptr;
    for (std::uint64_t k = 0; k < factor; ++k) {
        iterMap = phiCur;
        for (Instruction *inst : body) {
            auto clone = cloneInstruction(
                *inst, iterMap, iterName(inst->name(), k));
            iterMap[inst] = block->append(std::move(clone));
        }
        last_cond = mapped(iterMap, orig_cond);
        // Advance the phi state to the next unrolled iteration.
        for (PhiInst *phi : phis)
            phiCur[phi] = mapped(iterMap, phi->valueFor(block));
    }

    // Rebuild the terminator.
    auto *ctx_void = term->type();
    if (full) {
        block->append(
            std::make_unique<BranchInst>(ctx_void, loop.exit));
    } else {
        SALAM_ASSERT(last_cond != nullptr);
        if (term->ifTrue() == block) {
            block->append(std::make_unique<BranchInst>(
                ctx_void, last_cond, block, loop.exit));
        } else {
            block->append(std::make_unique<BranchInst>(
                ctx_void, last_cond, loop.exit, block));
        }
        // Each phi now advances `factor` iterations per trip.
        for (PhiInst *phi : phis) {
            for (std::size_t i = 0; i < phi->numIncoming(); ++i) {
                if (phi->incomingBlock(i) == block)
                    phi->setIncomingValue(i, phiCur[phi]);
            }
        }
    }

    // Rewire out-of-loop uses of loop-defined values. On exit, users
    // observed the value produced in the final executed iteration,
    // which is now the last unrolled copy (iterMap); a use of the phi
    // itself observed the value at the start of that iteration.
    ValueMap outside = iterMap;
    for (std::size_t b = 0; b < fn.numBlocks(); ++b) {
        BasicBlock *other = fn.block(b);
        if (other == block)
            continue;
        for (std::size_t i = 0; i < other->size(); ++i) {
            Instruction *inst = other->instruction(i);
            for (auto &[orig, repl] : outside) {
                if (orig != repl)
                    inst->replaceUsesOf(orig, repl);
            }
        }
    }

    // The original body instructions (and, for full unroll, phis and
    // terminator) die with `original` here. Verify nothing still
    // references them in debug runs via the Verifier in tests.
    return factor;
}

std::uint64_t
Unroller::unrollByLabel(Function &fn, const std::string &label,
                        std::uint64_t factor)
{
    BasicBlock *block = fn.findBlock(label);
    if (block == nullptr)
        return 0;
    auto loop = LoopAnalysis::analyze(fn, block);
    if (!loop)
        return 0;
    return unroll(fn, *loop, factor);
}

void
Unroller::unrollAll(Function &fn)
{
    bool changed = true;
    while (changed) {
        changed = false;
        auto loops = LoopAnalysis::findLoops(fn);
        for (auto &loop : loops) {
            if (unroll(fn, loop, loop.tripCount) > 1) {
                changed = true;
                break; // block list changed; re-analyze
            }
        }
        if (changed) {
            // Merging the now-straight-line body back into its outer
            // loop block exposes the next nesting level.
            cleanup(fn);
        }
    }
}

} // namespace salam::opt

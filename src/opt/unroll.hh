/**
 * @file
 * Loop unrolling: the primary datapath-shaping transform.
 *
 * Unrolling a loop by factor U replicates the body U times per trip,
 * multiplying the static instruction count — and therefore, under
 * gem5-SALAM's default 1-to-1 functional-unit mapping, the datapath
 * parallelism. Fully unrolling removes the loop entirely.
 */

#ifndef SALAM_OPT_UNROLL_HH
#define SALAM_OPT_UNROLL_HH

#include <cstdint>

#include "loop_analysis.hh"

namespace salam::opt
{

/** Loop unroller over SimpleLoop shapes. */
class Unroller
{
  public:
    /**
     * Unroll @p loop by @p factor. The factor is clamped to the
     * largest divisor of the trip count that is <= factor (clang
     * behaves equivalently by emitting an epilogue; our kernels use
     * power-of-two bounds so the clamp rarely fires).
     *
     * A factor equal to the trip count fully unrolls: phis are folded
     * to their initial values and the backedge is removed.
     *
     * @return the factor actually applied (1 means unchanged).
     */
    static std::uint64_t unroll(ir::Function &fn, SimpleLoop &loop,
                                std::uint64_t factor);

    /**
     * Convenience: unroll the loop whose header block is named
     * @p label by @p factor.
     * @return factor applied, or 0 when no such simple loop exists.
     */
    static std::uint64_t unrollByLabel(ir::Function &fn,
                                       const std::string &label,
                                       std::uint64_t factor);

    /** Fully unroll every simple loop (innermost first, repeatedly). */
    static void unrollAll(ir::Function &fn);
};

} // namespace salam::opt

#endif // SALAM_OPT_UNROLL_HH

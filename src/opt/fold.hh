/**
 * @file
 * Scalar and CFG cleanup passes: constant folding, dead-code
 * elimination, and CFG simplification.
 *
 * These mirror the clang -O cleanups the original flow relies on so
 * the IR handed to static elaboration reflects a realistic datapath
 * (no dead functional units, no empty blocks from unrolling).
 */

#ifndef SALAM_OPT_FOLD_HH
#define SALAM_OPT_FOLD_HH

#include "ir/function.hh"

namespace salam::opt
{

/**
 * Fold compute instructions with all-constant operands and branches
 * with constant conditions, to fixpoint.
 * @return true if anything changed.
 */
bool foldConstants(ir::Function &fn);

/**
 * Remove side-effect-free instructions with no uses, to fixpoint.
 * @return true if anything changed.
 */
bool eliminateDeadCode(ir::Function &fn);

/**
 * Remove unreachable blocks, fold single-incoming phis, and merge
 * straight-line block chains.
 * @return true if anything changed.
 */
bool simplifyCfg(ir::Function &fn);

/**
 * Reassociate chained constant additions: (x + c1) + c2 -> x + (c1
 * + c2). Breaks the serial induction-variable chains the unroller
 * produces, the way clang's instcombine does, so unrolled iterations
 * become truly parallel.
 * @return true if anything changed.
 */
bool reassociateConstants(ir::Function &fn);

/**
 * Balance long chains of a commutative, associative operator (fadd,
 * fmul, add, mul, and, or, xor) into trees, the way HLS expression
 * balancing does: a 32-deep accumulation chain becomes a 5-level
 * reduction tree. For floating point this is a fast-math transform
 * (it changes rounding), matching HLS tools' unsafe-math expression
 * balancing; kernels opt in via their pass pipelines.
 * @return true if anything changed.
 */
bool balanceReductions(ir::Function &fn);

/** Run all cleanup passes to a combined fixpoint. */
void cleanup(ir::Function &fn);

} // namespace salam::opt

#endif // SALAM_OPT_FOLD_HH

#include "comm_interface.hh"

#include "inject/fault_injector.hh"

namespace salam::core
{

using namespace salam::mem;

CommInterface::CommInterface(Simulation &sim, std::string name,
                             Tick clock_period,
                             const CommInterfaceConfig &config)
    : ClockedObject(sim, std::move(name), clock_period), cfg(config),
      pioPort(*this),
      regs(config.mmrRange.size() / 8, 0),
      mmrEvent([this] { sendMmrResponses(); },
               this->name() + ".mmr", Event::memoryResponsePri,
               obs::HostPhase::MemoryModel)
{
    if (cfg.mmrRange.size() == 0 || cfg.mmrRange.size() % 8 != 0)
        fatal("%s: MMR range must be a multiple of 8 bytes",
              this->name().c_str());
    for (const auto &spec : cfg.dataPorts) {
        dataPorts.push_back(
            std::make_unique<DataPort>(*this, spec.label));
    }
}

void
CommInterface::init()
{
    StatRegistry &reg = simulation().stats();
    const std::string n = name();
    reg.addFormula(n + ".comm.mmr_reads", "MMR reads", [this] {
        return static_cast<double>(mmrReadCount);
    });
    reg.addFormula(n + ".comm.mmr_writes", "MMR writes", [this] {
        return static_cast<double>(mmrWriteCount);
    });
    reg.addFormula(n + ".comm.data_requests",
                   "data requests issued for the engine", [this] {
                       return static_cast<double>(dataRequestsIssued);
                   });
    reg.addFormula(
        n + ".comm.data_requests_blocked",
        "data requests initially refused downstream", [this] {
            return static_cast<double>(dataRequestsBlocked);
        });
}

RequestPort &
CommInterface::dataPort(unsigned i)
{
    if (i >= dataPorts.size())
        fatal("%s: no data port %u", name().c_str(), i);
    return *dataPorts[i];
}

int
CommInterface::portFor(std::uint64_t addr, unsigned size) const
{
    for (std::size_t p = 0; p < cfg.dataPorts.size(); ++p) {
        for (const AddrRange &range : cfg.dataPorts[p].ranges) {
            if (range.contains(addr, size))
                return static_cast<int>(p);
        }
    }
    return -1;
}

bool
CommInterface::issueMemory(DynInst *op)
{
    int port = portFor(op->memAddr, op->memSize);
    if (port < 0)
        fatal("%s: no data port serves address 0x%llx",
              name().c_str(),
              static_cast<unsigned long long>(op->memAddr));

    PacketPtr pkt;
    if (op->isLoad) {
        pkt = new Packet(MemCmd::ReadReq, op->memAddr, op->memSize);
    } else {
        pkt = new Packet(MemCmd::WriteReq, op->memAddr, op->memSize);
        // Store data is operand 0 of the store instruction.
        pkt->setData(&op->operandValues[0].bits, op->memSize);
    }
    pkt->context = op;
    ++dataRequestsIssued;
    SALAM_TRACE(Comm, "%s port %d addr=0x%llx size=%u",
                op->isLoad ? "load" : "store", port,
                (unsigned long long)op->memAddr, op->memSize);
    if (!dataPorts[static_cast<unsigned>(port)]->sendTimingReq(pkt)) {
        ++dataRequestsBlocked;
        pkt->serviceFlags |= svcQueued;
        blockedRequests.emplace_back(pkt,
                                     static_cast<unsigned>(port));
    }
    return true;
}

void
CommInterface::retryBlockedRequests()
{
    while (!blockedRequests.empty()) {
        auto [pkt, port] = blockedRequests.front();
        if (!dataPorts[port]->sendTimingReq(pkt))
            return;
        blockedRequests.pop_front();
    }
}

bool
CommInterface::handleDataResponse(PacketPtr pkt)
{
    auto *op = static_cast<DynInst *>(pkt->context);
    SALAM_ASSERT(op != nullptr);
    // Surface the memory system's service annotations to the engine
    // before the commit they will be attributed at.
    op->memServiceFlags = pkt->serviceFlags;
    if (onResponse)
        onResponse(op, pkt->data(), pkt->size());
    delete pkt;
    return true;
}

std::uint64_t
CommInterface::readReg(unsigned index) const
{
    SALAM_ASSERT(index < regs.size());
    return regs[index];
}

void
CommInterface::writeReg(unsigned index, std::uint64_t value)
{
    SALAM_ASSERT(index < regs.size());
    if (index == 0) {
        controlWrite(value);
    } else {
        regs[index] = value;
    }
}

void
CommInterface::controlWrite(std::uint64_t value)
{
    bool started = (value & ctrl_bits::start) != 0 && !running();
    // The start bit is self-clearing; done is cleared by writing a
    // zero (host acknowledge).
    std::uint64_t keep = regs[0] &
        (ctrl_bits::running | ctrl_bits::done);
    regs[0] = (value & ~(ctrl_bits::start | ctrl_bits::running |
                         ctrl_bits::done)) |
        keep;
    if ((value & ctrl_bits::done) == 0)
        regs[0] &= ~ctrl_bits::done;
    if (started) {
        regs[0] |= ctrl_bits::running;
        regs[0] &= ~ctrl_bits::done;
        SALAM_TRACE(Comm, "start bit set; launching kernel");
        if (onStart)
            onStart();
    }
}

void
CommInterface::signalDone()
{
    SALAM_TRACE(Comm, "kernel signalled done");
    regs[0] &= ~ctrl_bits::running;
    regs[0] |= ctrl_bits::done;
    if ((regs[0] & ctrl_bits::irqEnable) && irq) {
        if (inject::FaultInjector *fi = simulation().faultInjector();
            fi && fi->dropIrq(name())) {
            return; // completion interrupt lost in flight
        }
        irq();
    }
}

bool
CommInterface::handleMmrAccess(PacketPtr pkt)
{
    // A mis-programmed driver is a user error, not a simulator bug:
    // answer undecodable accesses with an error response instead of
    // tearing the run down on an assert.
    if (!cfg.mmrRange.contains(pkt->addr(), pkt->size()) ||
        pkt->size() != 8 ||
        (pkt->addr() - cfg.mmrRange.start) % 8 != 0) {
        warn("%s: undecodable MMR %s addr=0x%llx size=%u "
             "(window [0x%llx, 0x%llx), 8-byte aligned)",
             name().c_str(), pkt->isRead() ? "read" : "write",
             static_cast<unsigned long long>(pkt->addr()),
             pkt->size(),
             static_cast<unsigned long long>(cfg.mmrRange.start),
             static_cast<unsigned long long>(cfg.mmrRange.end));
        ++mmrDecodeErrors;
        pkt->makeErrorResponse();
        mmrResponses.push_back(PendingMmr{
            pkt, clockEdge(Cycles(cfg.mmrLatencyCycles))});
        if (!mmrEvent.scheduled())
            schedule(mmrEvent, mmrResponses.front().readyAt);
        return true;
    }
    unsigned index = static_cast<unsigned>(
        (pkt->addr() - cfg.mmrRange.start) / 8);

    if (pkt->cmd() == MemCmd::ReadReq) {
        std::uint64_t value = readReg(index);
        pkt->setData(&value, 8);
        ++mmrReadCount;
    } else {
        std::uint64_t value = 0;
        pkt->copyData(&value, 8);
        writeReg(index, value);
        ++mmrWriteCount;
    }
    pkt->makeResponse();
    mmrResponses.push_back(PendingMmr{
        pkt, clockEdge(Cycles(cfg.mmrLatencyCycles))});
    if (!mmrEvent.scheduled())
        schedule(mmrEvent, mmrResponses.front().readyAt);
    return true;
}

void
CommInterface::dumpDiagnostics(obs::JsonBuilder &json) const
{
    json.field("running", running()).field("done", done());
    json.field("blocked_data_requests",
               static_cast<std::uint64_t>(blockedRequests.size()));
    json.field("pending_mmr_responses",
               static_cast<std::uint64_t>(mmrResponses.size()));
    json.field("mmr_decode_errors", mmrDecodeErrors);
    json.beginArray("regs");
    for (std::uint64_t reg : regs)
        json.value(reg);
    json.endArray();
    json.beginArray("blocked_requests");
    for (const auto &[pkt, port] : blockedRequests) {
        json.beginObject()
            .field("addr", pkt->addr())
            .field("size", std::uint64_t(pkt->size()))
            .field("read", pkt->isRead())
            .field("port", std::uint64_t(port))
            .field("service_flags", std::uint64_t(pkt->serviceFlags))
            .endObject();
    }
    json.endArray();
}

std::string
CommInterface::stuckReason() const
{
    if (!blockedRequests.empty()) {
        return std::to_string(blockedRequests.size()) +
               " data request(s) awaiting a downstream retry";
    }
    return {};
}

void
CommInterface::sendMmrResponses()
{
    while (!mmrResponses.empty()) {
        PendingMmr &front = mmrResponses.front();
        if (front.readyAt > curTick()) {
            if (!mmrEvent.scheduled())
                schedule(mmrEvent, front.readyAt);
            return;
        }
        if (!pioPort.sendTimingResp(front.pkt))
            return;
        mmrResponses.pop_front();
    }
}

} // namespace salam::core

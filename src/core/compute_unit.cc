#include "compute_unit.hh"

#include "ir/verifier.hh"

namespace salam::core
{

ComputeUnit::ComputeUnit(Simulation &sim, std::string name,
                         const ir::Function &fn,
                         const DeviceConfig &config,
                         CommInterface &comm)
    : ClockedObject(sim, std::move(name), config.clockPeriod),
      cfg(config), staticCdfg(fn, cfg), comm(comm),
      engine(staticCdfg, cfg,
             RuntimeEngine::Hooks{
                 [this](DynInst *op) {
                     return this->comm.issueMemory(op);
                 },
                 [this] { requestTick(); },
                 [this] {
                     this->comm.signalDone();
                     if (onDone)
                         onDone();
                 },
             }),
      tickEvent([this] { tick(); }, this->name() + ".tick",
                Event::cpuTickPri)
{
    ir::Verifier::verifyOrDie(fn);
    comm.setResponseHandler(
        [this](DynInst *op, const std::uint8_t *data, unsigned size) {
            engine.memoryResponse(op, data, size);
        });
    comm.setStartHandler([this] { startFromMmrs(); });
}

void
ComputeUnit::start(const std::vector<ir::RuntimeValue> &args)
{
    engine.start(args);
}

void
ComputeUnit::startFromMmrs()
{
    const ir::Function &fn = staticCdfg.function();
    std::vector<ir::RuntimeValue> args;
    for (std::size_t i = 0; i < fn.numArguments(); ++i) {
        ir::RuntimeValue value;
        value.bits = comm.readReg(static_cast<unsigned>(i) + 1);
        args.push_back(value);
    }
    start(args);
}

void
ComputeUnit::requestTick()
{
    Tick next = clockEdge();
    if (lastCycleTick != maxTick && next <= lastCycleTick)
        next = lastCycleTick + clockPeriod();
    if (!tickEvent.scheduled()) {
        schedule(tickEvent, next);
    } else if (tickEvent.when() > next) {
        reschedule(tickEvent, next);
    }
}

void
ComputeUnit::tick()
{
    lastCycleTick = curTick();
    engine.cycle();
}

} // namespace salam::core

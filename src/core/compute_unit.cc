#include "compute_unit.hh"

#include "ir/verifier.hh"
#include "obs/debug_flags.hh"

namespace salam::core
{

namespace
{

/**
 * Elaboration-order guards: the IR must verify and the config must
 * validate BEFORE StaticCdfg elaborates from them — a malformed
 * function or zero queue size would otherwise crash (or silently
 * mis-build) inside elaboration, far from the actual mistake.
 */
const ir::Function &
verifiedOrDie(const ir::Function &fn)
{
    ir::Verifier::verifyOrDie(fn);
    return fn;
}

const DeviceConfig &
validatedOrDie(const DeviceConfig &config, const ir::Function &fn)
{
    std::string error = config.validate();
    if (!error.empty())
        fatal("device config for kernel '%s': %s", fn.name().c_str(),
              error.c_str());
    return config;
}

} // namespace

ComputeUnit::ComputeUnit(Simulation &sim, std::string name,
                         const ir::Function &fn,
                         const DeviceConfig &config,
                         CommInterface &comm)
    : ClockedObject(sim, std::move(name), config.clockPeriod),
      cfg(validatedOrDie(config, fn)),
      staticCdfg(verifiedOrDie(fn), cfg), comm(comm),
      engine(staticCdfg, cfg, *this),
      tickEvent([this] { tick(); }, this->name() + ".tick",
                Event::cpuTickPri, obs::HostPhase::EngineSchedule)
{
    comm.setResponseHandler(
        [this](DynInst *op, const std::uint8_t *data, unsigned size) {
            engine.memoryResponse(op, data, size);
        });
    comm.setStartHandler([this] { startFromMmrs(); });
}

void
ComputeUnit::init()
{
    StatRegistry &reg = simulation().stats();
    const std::string n = name();

    auto &mem_occ = reg.addHistogram(
        n + ".engine.mem_queue_occupancy",
        "loads+stores in flight, sampled every engine cycle", 0.0,
        static_cast<double>(cfg.readQueueSize + cfg.writeQueueSize),
        8);
    auto &rsv_occ = reg.addHistogram(
        n + ".engine.reservation_occupancy",
        "reservation-queue depth, sampled every engine cycle", 0.0,
        static_cast<double>(cfg.reservationQueueSize), 8);
    auto &stalls = reg.addVector(
        n + ".engine.stall_causes",
        "stall cycles broken down by in-flight class",
        RuntimeEngine::stallLaneNames());
    auto &issues = reg.addVector(
        n + ".engine.issue_classes",
        "dynamic instructions issued, by class",
        RuntimeEngine::issueLaneNames());

    reg.addFormula(
        n + ".engine.total_cycles", "kernel execution cycles",
        [this] {
            const EngineStats &s = engine.stats();
            return static_cast<double>(
                s.totalCycles ? s.totalCycles
                              : engine.currentCycle());
        });
    reg.addFormula(
        n + ".engine.stall_cycles",
        "cycles where nothing new could issue",
        [this] {
            return static_cast<double>(engine.stats().stallCycles);
        });
    reg.addFormula(
        n + ".engine.dynamic_insts",
        "dynamic instructions entered into the window",
        [this] {
            return static_cast<double>(
                engine.stats().dynamicInstructions);
        });
    reg.addFormula(
        n + ".engine.fu_utilization",
        "mean occupied fraction of the limited functional units",
        [this] {
            const EngineStats &s = engine.stats();
            std::uint64_t cycles = s.totalCycles
                ? s.totalCycles : engine.currentCycle();
            std::uint64_t units = 0;
            std::uint64_t busy = 0;
            for (std::size_t t = 0; t < hw::numFuTypes; ++t) {
                if (cfg.fuLimits[t] == 0)
                    continue;
                units += cfg.fuLimits[t];
                busy += s.fuBusyCycleSum[t];
            }
            if (cycles == 0 || units == 0)
                return 0.0;
            return static_cast<double>(busy) /
                   (static_cast<double>(cycles) *
                    static_cast<double>(units));
        });

    EngineObserver obs;
    obs.name = n;
    obs.now = [this] { return curTick(); };
    obs.cyclePeriod = clockPeriod();
    obs.sink = simulation().traceSink();
    obs.memQueueOccupancy = &mem_occ;
    obs.reservationOccupancy = &rsv_occ;
    obs.stallCauses = &stalls;
    obs.issueClasses = &issues;
    if (simulation().profilingEnabled() ||
        salam::obs::flag::Profile.enabled()) {
        salam::obs::Profiler &prof =
            simulation().createProfiler(n);
        // Static-id → label table so hotspot reports can name
        // instructions without keeping IR pointers alive.
        const ir::Function &fn = staticCdfg.function();
        std::vector<salam::obs::ProfStaticInfo> table(
            staticCdfg.numInstructions());
        for (std::size_t b = 0; b < fn.numBlocks(); ++b) {
            const ir::BasicBlock *block = fn.block(b);
            for (std::size_t i = 0; i < block->size(); ++i) {
                const ir::Instruction *inst =
                    block->instruction(i);
                salam::obs::ProfStaticInfo &entry =
                    table[staticCdfg.info(inst).id];
                entry.inst = "%" + inst->name();
                entry.block = block->name();
                entry.func = fn.name();
                entry.opcode = ir::opcodeName(inst->opcode());
            }
        }
        prof.setStaticTable(std::move(table));
        obs.profiler = &prof;
    }
    engine.setObserver(std::move(obs));
}

void
ComputeUnit::start(const std::vector<ir::RuntimeValue> &args)
{
    engine.start(args);
}

void
ComputeUnit::startFromMmrs()
{
    const ir::Function &fn = staticCdfg.function();
    std::vector<ir::RuntimeValue> args;
    for (std::size_t i = 0; i < fn.numArguments(); ++i) {
        ir::RuntimeValue value;
        value.bits = comm.readReg(static_cast<unsigned>(i) + 1);
        args.push_back(value);
    }
    start(args);
}

void
ComputeUnit::requestTick()
{
    Tick next = clockEdge();
    if (lastCycleTick != maxTick && next <= lastCycleTick)
        next = lastCycleTick + clockPeriod();
    if (!tickEvent.scheduled()) {
        schedule(tickEvent, next);
    } else if (tickEvent.when() > next) {
        reschedule(tickEvent, next);
    }
}

void
ComputeUnit::tick()
{
    lastCycleTick = curTick();
    engine.cycle();
    // Only instruction retirement counts as forward progress: a unit
    // that keeps ticking without committing anything is livelocked
    // and must still trip the watchdog.
    std::uint64_t committed = engine.stats().committedInstructions;
    if (committed != lastCommitted) {
        lastCommitted = committed;
        noteProgress();
    }
}

void
ComputeUnit::dumpDiagnostics(obs::JsonBuilder &json) const
{
    engine.dumpState(json);
}

std::string
ComputeUnit::stuckReason() const
{
    if (!engine.running())
        return {};
    const unsigned loads = engine.readsInFlight();
    const unsigned stores = engine.writesInFlight();
    if (loads + stores > 0) {
        return "kernel running with " + std::to_string(loads) +
               " load(s) and " + std::to_string(stores) +
               " store(s) in flight that never received responses";
    }
    return "kernel running but no instruction can issue or commit";
}

} // namespace salam::core

/**
 * @file
 * Power/area report generation (Sec. III-C metrics estimation).
 *
 * Combines the static CDFG (leakage, area), the runtime engine's
 * per-cycle energy accounting (dynamic FU and register power), and
 * CactiLite scratchpad models driven by SPM usage statistics, into
 * the Fig. 4-style breakdown.
 */

#ifndef SALAM_CORE_POWER_REPORT_HH
#define SALAM_CORE_POWER_REPORT_HH

#include "compute_unit.hh"
#include "hw/cacti_lite.hh"
#include "hw/power_model.hh"
#include "mem/scratchpad.hh"

namespace salam::core
{

/** Full power/area accounting for one accelerator. */
struct AcceleratorReport
{
    hw::PowerBreakdown power;
    hw::AreaBreakdown area;
    std::uint64_t cycles = 0;
    double runtimeNs = 0.0;
};

/**
 * Build the report for @p cu.
 *
 * @param cu The finished compute unit.
 * @param private_spm Optional private scratchpad whose power/area is
 *        attributed to this accelerator (nullptr when using caches
 *        or shared memory only).
 */
AcceleratorReport
buildReport(const ComputeUnit &cu,
            const mem::Scratchpad *private_spm = nullptr);

/**
 * SPM usage summary for the SimObject-free overload below: the same
 * facts buildReport(cu, spm) reads off a live Scratchpad, supplied
 * directly — how a trace replay (which builds no SimObjects) scores
 * its scratchpad.
 */
struct SpmUsage
{
    std::uint64_t sizeBytes = 0;
    unsigned wordBytes = 4;
    unsigned readPorts = 1;
    unsigned writePorts = 1;
    unsigned banks = 1;
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
};

/**
 * Build the report from raw ingredients — identical arithmetic to
 * buildReport(cu, spm), without a ComputeUnit or Scratchpad. Used by
 * the trace-reuse fast path, whose replays produce EngineStats
 * without elaborating a simulation.
 */
AcceleratorReport
buildReport(const StaticCdfg &cdfg, const DeviceConfig &cfg,
            const EngineStats &stats,
            const SpmUsage *spm = nullptr);

/**
 * Accumulated dynamic energy (pJ) of @p cu so far: functional-unit
 * and register activity, plus SPM access energy when a private
 * scratchpad is attached. Monotonically non-decreasing over a run,
 * and readable mid-run — the IntervalStats energy probe
 * differentiates it into per-interval dynamic power.
 */
double
accumulatedDynamicEnergyPj(const ComputeUnit &cu,
                           const mem::Scratchpad *private_spm =
                               nullptr);

} // namespace salam::core

#endif // SALAM_CORE_POWER_REPORT_HH

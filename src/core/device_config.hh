/**
 * @file
 * Device configuration: the per-accelerator tuning knobs.
 *
 * Mirrors gem5-SALAM's "device config" file: accelerator clock,
 * functional-unit constraints (to force reuse), runtime scheduler
 * queue sizes, and the memory-interface issue widths. The separation
 * from the kernel IR is the paper's third contribution — datapath and
 * memory can be swept independently.
 */

#ifndef SALAM_CORE_DEVICE_CONFIG_HH
#define SALAM_CORE_DEVICE_CONFIG_HH

#include <array>
#include <cstdint>
#include <string>

#include "hw/functional_unit.hh"
#include "hw/hardware_profile.hh"
#include "sim/types.hh"

namespace salam::core
{

/** Per-accelerator datapath and scheduler configuration. */
struct DeviceConfig
{
    /** Accelerator clock period in ticks (default 100 MHz). */
    Tick clockPeriod = periodFromMhz(100);

    /**
     * Maximum functional units per type. 0 means the default 1-to-1
     * map: every static instruction gets a dedicated unit.
     */
    std::array<unsigned, hw::numFuTypes> fuLimits{};

    /** Hardware characterization (latency/power/area). */
    hw::HardwareProfile profile = hw::HardwareProfile::defaultProfile();

    /** Reservation queue capacity in dynamic instructions. */
    unsigned reservationQueueSize = 1024;

    /**
     * Runtime-scheduler option: import a *different* successor block
     * only after all in-flight work drains, while self-loop
     * back-edges still import immediately (pipelined loops). This
     * matches the block-sequential FSM semantics HLS tools
     * synthesize and is the configuration the timing-validation
     * experiments use (the paper's "IR tuned to the same ILP as the
     * HLS datapath"). The default keeps the fully dynamic dataflow
     * behaviour.
     */
    bool blockSequentialImport = false;

    /** In-flight load limit (read queue depth). */
    unsigned readQueueSize = 16;

    /** In-flight store limit (write queue depth). */
    unsigned writeQueueSize = 16;

    /** Loads issued to the memory interface per cycle. */
    unsigned readPortsPerCycle = 2;

    /** Stores issued to the memory interface per cycle. */
    unsigned writePortsPerCycle = 2;

    unsigned
    fuLimit(hw::FuType type) const
    {
        return fuLimits[static_cast<std::size_t>(type)];
    }

    void
    setFuLimit(hw::FuType type, unsigned limit)
    {
        fuLimits[static_cast<std::size_t>(type)] = limit;
    }

    /**
     * Elaboration-time sanity check. A zero clock or queue size does
     * not crash immediately — it deadlocks or div-by-zeroes deep in
     * a run — so it is rejected here, before anything is built.
     * @return "" when valid, else a diagnostic for fatal().
     */
    std::string
    validate() const
    {
        if (clockPeriod == 0)
            return "clock period must be non-zero";
        if (reservationQueueSize == 0)
            return "reservation queue size must be non-zero";
        if (readQueueSize == 0)
            return "read queue size must be non-zero";
        if (writeQueueSize == 0)
            return "write queue size must be non-zero";
        if (readPortsPerCycle == 0)
            return "read ports per cycle must be non-zero";
        if (writePortsPerCycle == 0)
            return "write ports per cycle must be non-zero";
        return {};
    }
};

} // namespace salam::core

#endif // SALAM_CORE_DEVICE_CONFIG_HH

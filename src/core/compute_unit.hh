/**
 * @file
 * ComputeUnit: the accelerator datapath SimObject.
 *
 * Owns the statically elaborated CDFG and the dynamic runtime
 * engine, drives the engine on its clock, and bridges it to a
 * CommInterface. The split matches the paper's API: a ComputeUnit
 * models computation; a CommInterface models system communication;
 * either can be replaced independently.
 */

#ifndef SALAM_CORE_COMPUTE_UNIT_HH
#define SALAM_CORE_COMPUTE_UNIT_HH

#include <functional>

#include "comm_interface.hh"
#include "runtime_engine.hh"
#include "sim/sim_object.hh"
#include "sim/simulation.hh"

namespace salam::core
{

/** The accelerator compute unit. */
class ComputeUnit : public ClockedObject, private EngineClient
{
  public:
    /**
     * @param fn Verified kernel IR; must outlive the unit.
     * @param comm The communications interface this datapath uses.
     */
    ComputeUnit(Simulation &sim, std::string name,
                const ir::Function &fn, const DeviceConfig &config,
                CommInterface &comm);

    /**
     * Registers this unit's statistics (occupancy histograms, stall
     * and issue-class vectors, utilization formulas) and wires the
     * engine's observer — including the simulation trace sink when
     * tracing was enabled before init.
     */
    void init() override;

    /** Begin execution directly (bypassing MMR programming). */
    void start(const std::vector<ir::RuntimeValue> &args);

    /**
     * Begin execution from the argument registers: MMR reg 1..N are
     * bound in order to the kernel's N arguments. Wired to the
     * CommInterface start bit by the constructor.
     */
    void startFromMmrs();

    /** Completion hook (in addition to CommInterface::signalDone). */
    void setDoneCallback(std::function<void()> callback)
    { onDone = std::move(callback); }

    bool finished() const { return engine.finished(); }

    bool running() const { return engine.running(); }

    /** Kernel execution length in accelerator cycles. */
    std::uint64_t cycleCount() const
    { return engine.stats().totalCycles; }

    const EngineStats &stats() const { return engine.stats(); }

    const StaticCdfg &cdfg() const { return staticCdfg; }

    /**
     * Capture this unit's dynamic trace into @p trace (the
     * trace-reuse fast path's input). Call before start().
     */
    void enableTraceCapture(DynTrace *trace)
    { engine.setTraceCapture(trace); }

    const DeviceConfig &deviceConfig() const { return cfg; }

    CommInterface &commInterface() { return comm; }

    void dumpDiagnostics(obs::JsonBuilder &json) const override;

    std::string stuckReason() const override;

  private:
    void tick();

    void requestTick();

    // EngineClient: the engine's upcalls into its owner.
    bool engineIssueMemory(DynInst *op) override
    { return comm.issueMemory(op); }

    void engineRequestTick() override { requestTick(); }

    void engineDone() override
    {
        comm.signalDone();
        if (onDone)
            onDone();
    }

    DeviceConfig cfg;
    StaticCdfg staticCdfg;
    CommInterface &comm;
    RuntimeEngine engine;
    EventFunctionWrapper tickEvent;
    Tick lastCycleTick = maxTick;
    std::function<void()> onDone;
    /** Commit count at the last tick (progress detection). */
    std::uint64_t lastCommitted = 0;
};

} // namespace salam::core

#endif // SALAM_CORE_COMPUTE_UNIT_HH

#include "power_report.hh"

#include "sim/logging.hh"

namespace salam::core
{

AcceleratorReport
buildReport(const ComputeUnit &cu, const mem::Scratchpad *private_spm)
{
    SpmUsage usage;
    if (private_spm != nullptr) {
        const mem::ScratchpadConfig &scfg = private_spm->config();
        usage.sizeBytes = scfg.range.size();
        usage.wordBytes = scfg.wordBytes;
        usage.readPorts = scfg.readPorts;
        usage.writePorts = scfg.writePorts;
        usage.banks = scfg.banks;
        usage.reads = private_spm->readCount();
        usage.writes = private_spm->writeCount();
    }
    return buildReport(cu.cdfg(), cu.deviceConfig(), cu.stats(),
                       private_spm != nullptr ? &usage : nullptr);
}

AcceleratorReport
buildReport(const StaticCdfg &cdfg, const DeviceConfig &cfg,
            const EngineStats &stats, const SpmUsage *spm)
{
    AcceleratorReport report;
    report.cycles = stats.totalCycles;
    report.runtimeNs = static_cast<double>(stats.totalCycles) *
        static_cast<double>(cfg.clockPeriod) / 1000.0;
    if (report.runtimeNs <= 0.0) {
        warn("power report requested before execution finished");
        report.runtimeNs = 1.0;
    }

    // Dynamic power: accumulated energy (pJ) over runtime (ns) is
    // directly milliwatts.
    report.power.dynamicFuMw = stats.fuEnergyPj / report.runtimeNs;
    report.power.dynamicRegisterMw =
        (stats.registerReadEnergyPj + stats.registerWriteEnergyPj) /
        report.runtimeNs;

    // Static power and datapath area from elaboration.
    report.power.staticFuMw = cdfg.staticFuPowerMw();
    report.power.staticRegisterMw = cdfg.staticRegisterPowerMw();
    report.area = cdfg.area();

    if (spm != nullptr) {
        hw::SramConfig sram;
        sram.sizeBytes = spm->sizeBytes;
        sram.wordBytes = spm->wordBytes;
        sram.ports = std::max(spm->readPorts, spm->writePorts);
        sram.banks = spm->banks;
        hw::SramMetrics metrics = hw::CactiLite::evaluate(sram);

        report.power.dynamicSpmReadMw =
            static_cast<double>(spm->reads) * metrics.readEnergyPj /
            report.runtimeNs;
        report.power.dynamicSpmWriteMw =
            static_cast<double>(spm->writes) *
            metrics.writeEnergyPj / report.runtimeNs;
        report.power.staticSpmMw = metrics.leakagePowerMw;
        report.area.spmUm2 = metrics.areaUm2;
    }
    return report;
}

double
accumulatedDynamicEnergyPj(const ComputeUnit &cu,
                           const mem::Scratchpad *private_spm)
{
    const EngineStats &stats = cu.stats();
    double pj = stats.fuEnergyPj + stats.registerReadEnergyPj +
        stats.registerWriteEnergyPj;
    if (private_spm != nullptr) {
        const mem::ScratchpadConfig &scfg = private_spm->config();
        hw::SramConfig sram;
        sram.sizeBytes = scfg.range.size();
        sram.wordBytes = scfg.wordBytes;
        sram.ports = std::max(scfg.readPorts, scfg.writePorts);
        sram.banks = scfg.banks;
        hw::SramMetrics metrics = hw::CactiLite::evaluate(sram);
        pj += static_cast<double>(private_spm->readCount()) *
            metrics.readEnergyPj;
        pj += static_cast<double>(private_spm->writeCount()) *
            metrics.writeEnergyPj;
    }
    return pj;
}

} // namespace salam::core

#include "runtime_engine.hh"

#include <algorithm>
#include <cstring>

#include "mem/packet.hh"
#include "sim/logging.hh"

namespace salam::core
{

using namespace salam::ir;
using namespace salam::hw;

const std::vector<std::string> &
RuntimeEngine::stallLaneNames()
{
    static const std::vector<std::string> names = {
        "load_only",    "store_only",      "compute_only",
        "load_compute", "store_compute",   "load_store",
        "load_store_compute", "empty",
    };
    return names;
}

const std::vector<std::string> &
RuntimeEngine::issueLaneNames()
{
    static const std::vector<std::string> names = {
        "load", "store", "fp", "int", "other",
    };
    return names;
}

RuntimeEngine::RuntimeEngine(const StaticCdfg &cdfg,
                             const DeviceConfig &config,
                             EngineClient &client)
    : staticCdfg(cdfg), cfg(config), client(client)
{
    for (std::size_t t = 0; t < numFuTypes; ++t) {
        unsigned limit = cfg.fuLimits[t];
        if (limit > 0)
            poolFreeAt[t].assign(limit, 0);
    }
    latestInstance.assign(staticCdfg.numInstructions(), nullptr);
    committedValues.assign(staticCdfg.numValueIds(), RuntimeValue{});
    committedKnown.assign(staticCdfg.numValueIds(), 0);
}

void
RuntimeEngine::start(const std::vector<RuntimeValue> &args)
{
    const Function &fn = staticCdfg.function();
    if (args.size() != fn.numArguments())
        fatal("engine: @%s expects %zu args, got %zu",
              fn.name().c_str(), fn.numArguments(), args.size());
    SALAM_ASSERT(!active);

    for (std::size_t i = 0; i < args.size(); ++i) {
        committedValues[i] = args[i];
        committedKnown[i] = 1;
    }

    active = true;
    completed = false;
    retSeen = false;
    cycleCount = 0;
    importBlock(fn.entry(), nullptr);
    // The entry block may issue in cycle 0.
    for (DynInst *di : window)
        di->minIssueCycle = 0;
    client.engineRequestTick();
}

DynInst *
RuntimeEngine::acquireDynInst()
{
    if (freeList.empty()) {
        ++engineStats.arenaMisses;
        arena.push_back(std::make_unique<DynInst>());
        return arena.back().get();
    }
    ++engineStats.arenaHits;
    DynInst *di = freeList.back();
    freeList.pop_back();
    di->reset();
    return di;
}

DynInst *
RuntimeEngine::createDynInst(const StaticInstInfo &info)
{
    const Instruction *inst = info.inst;
    DynInst *di = acquireDynInst();
    di->inst = inst;
    di->staticInfo = &info;
    di->seq = nextSeq++;
    di->minIssueCycle = cycleCount + 1;
    di->ctrlParentSeq = importCtrlSeq;
    di->ctrlLinkCause = importCtrlCause;
    di->isLoad = inst->opcode() == Opcode::Load;
    di->isStore = inst->opcode() == Opcode::Store;
    di->producers.assign(inst->numOperands(), nullptr);
    di->operandValues.assign(inst->numOperands(), RuntimeValue{});

    // WAW/WAR chain against the previous dynamic instance.
    DynInst *&latest = latestInstance[info.id];
    if (latest != nullptr) {
        di->prevInstance = latest;
        latest->nextInstance = di;
    }
    latest = di;

    window.push_back(di);
    ++engineStats.dynamicInstructions;
    if (capture != nullptr)
        capture->insts.push_back({info.id, DynTrace::noBranchTarget,
                                  0, 0});
    return di;
}

void
RuntimeEngine::importBlock(const BasicBlock *block,
                           const BasicBlock *from)
{
    const StaticBlockInfo &binfo = staticCdfg.blockInfo(block);
    if (binfo.numInsts > cfg.reservationQueueSize)
        fatal("engine: block '%s' (%zu instructions) exceeds the "
              "reservation queue (%u); raise "
              "DeviceConfig::reservationQueueSize",
              block->name().c_str(), block->size(),
              cfg.reservationQueueSize);
    if (reservationLive() + binfo.numInsts >
        cfg.reservationQueueSize) {
        pendingImport = block;
        pendingImportFrom = from;
        pendingImportCtrlSeq = importCtrlSeq;
        return;
    }
    pendingImport = nullptr;
    SALAM_TRACE_AT(RuntimeEngine, obsNow(), observer.name,
                   "import block '%s' (%zu instructions)",
                   block->name().c_str(), block->size());
    if (observer.sink) {
        observer.sink->recordInstant(obsNow(), observer.name,
                                     "engine",
                                     "import " + block->name());
    }

    unsigned from_id = 0;
    bool have_from = false;
    if (from != nullptr) {
        from_id = staticCdfg.blockInfo(from).id;
        have_from = true;
    }

    for (unsigned i = 0; i < binfo.numInsts; ++i) {
        const StaticInstInfo &sinfo =
            staticCdfg.infoById(binfo.firstInstId + i);
        DynInst *di = createDynInst(sinfo);

        // Bind operands from the elaboration-time plans. A Producer
        // plan checks the live-instance table first (RAW edge or
        // in-window result), then falls back to the committed-value
        // slot; Committed plans go straight there.
        auto bind_plan = [&](std::size_t slot,
                             const OperandPlan &plan) {
            switch (plan.kind) {
              case OperandPlan::Kind::Constant:
                di->operandValues[slot] = plan.constant;
                return;
              case OperandPlan::Kind::Control:
                return; // control references carry no data
              case OperandPlan::Kind::Producer: {
                DynInst *latest = latestInstance[plan.producerId];
                if (latest != nullptr && !latest->committed) {
                    di->producers[slot] = latest;
                    ++latest->unissuedReaders;
                    return;
                }
                if (latest != nullptr) {
                    di->operandValues[slot] = latest->result;
                    return;
                }
                break;
              }
              case OperandPlan::Kind::Committed:
                break;
            }
            if (!committedKnown[plan.valueId]) {
                panic("engine: operand %%%s of %%%s has no value",
                      sinfo.isPhi
                          ? "phi-incoming"
                          : di->inst->operand(slot)->name().c_str(),
                      di->inst->name().c_str());
            }
            di->operandValues[slot] = committedValues[plan.valueId];
        };

        if (sinfo.isPhi) {
            const OperandPlan *plan = nullptr;
            if (have_from) {
                for (const auto &[pred_id, p] : sinfo.phiIncoming) {
                    if (pred_id == from_id) {
                        plan = &p;
                        break;
                    }
                }
            }
            if (plan == nullptr)
                panic("phi %%%s has no incoming for edge",
                      di->inst->name().c_str());
            // Keep exactly one live operand slot for the edge taken.
            di->producers.assign(1, nullptr);
            di->operandValues.assign(1, RuntimeValue{});
            bind_plan(0, *plan);
        } else {
            for (std::size_t o = 0; o < sinfo.operands.size(); ++o)
                bind_plan(o, sinfo.operands[o]);
        }

        reservationQueue.push_back(di);
        if (di->isMemory()) {
            di->memSeq = nextMemSeq++;
            memoryOrder.push_back(di);
            if (di->isLoad)
                ++pendingLoadOps;
            else
                ++pendingStoreOps;
        }
    }
}

bool
RuntimeEngine::operandsReady(const DynInst &di) const
{
    for (const DynInst *producer : di.producers) {
        if (producer != nullptr && !producer->committed)
            return false;
    }
    return true;
}

void
RuntimeEngine::captureOperands(DynInst *di)
{
    for (std::size_t i = 0; i < di->producers.size(); ++i) {
        DynInst *producer = di->producers[i];
        if (producer != nullptr) {
            SALAM_ASSERT(producer->committed);
            di->operandValues[i] = producer->result;
            SALAM_ASSERT(producer->unissuedReaders > 0);
            --producer->unissuedReaders;
            di->producers[i] = nullptr;
            // Remember the latest-committing producer: it is the
            // critical data predecessor in the recorded CDFG.
            if (observer.profiler != nullptr &&
                (di->prodParentSeq == obs::noProfSeq ||
                 producer->commitCycle > di->prodReadyCycle ||
                 (producer->commitCycle == di->prodReadyCycle &&
                  producer->seq > di->prodParentSeq))) {
                di->prodReadyCycle = producer->commitCycle;
                di->prodParentSeq = producer->seq;
            }
        }
    }
}

bool
RuntimeEngine::fuAvailable(const DynInst &di) const
{
    FuType type = di.staticInfo->fu;
    if (type == FuType::None)
        return true;

    // WAW/WAR against the previous instance of this instruction:
    // the shared (or dedicated) unit enforces the initiation
    // interval, and the destination register cannot be rewritten
    // while readers of the previous value are pending.
    const DynInst *prev = di.prevInstance;
    if (prev != nullptr) {
        if (!prev->issued)
            return false;
        if (cycleCount <
            prev->issueCycle + di.staticInfo->initiationInterval) {
            return false;
        }
        if (prev->unissuedReaders > 0)
            return false;
    }

    std::size_t t = static_cast<std::size_t>(type);
    unsigned limit = cfg.fuLimits[t];
    if (limit == 0)
        return true; // dedicated unit per static instruction
    for (std::uint64_t free_at : poolFreeAt[t]) {
        if (free_at <= cycleCount)
            return true;
    }
    return false;
}

void
RuntimeEngine::occupyFu(DynInst *di)
{
    FuType type = di->staticInfo->fu;
    if (type == FuType::None)
        return;
    std::size_t t = static_cast<std::size_t>(type);
    unsigned limit = cfg.fuLimits[t];
    if (limit == 0)
        return; // dedicated: II enforced via prevInstance
    for (auto &free_at : poolFreeAt[t]) {
        if (free_at <= cycleCount) {
            free_at = cycleCount + di->staticInfo->initiationInterval;
            return;
        }
    }
    panic("occupyFu called without an available unit");
}

void
RuntimeEngine::resolveAddress(DynInst *di)
{
    if (di->addrKnown)
        return;
    std::size_t ptr_slot = di->isLoad ? 0 : 1;
    const DynInst *producer = di->producers[ptr_slot];
    RuntimeValue addr;
    if (producer == nullptr) {
        addr = di->operandValues[ptr_slot];
    } else if (producer->committed) {
        addr = producer->result;
    } else {
        return;
    }
    di->memAddr = addr.bits;
    if (di->isLoad) {
        di->memSize = static_cast<unsigned>(
            di->inst->type()->storeSize());
    } else {
        const auto *store =
            static_cast<const StoreInst *>(di->inst);
        di->memSize = static_cast<unsigned>(
            store->value()->type()->storeSize());
    }
    di->addrKnown = true;
    if (capture != nullptr) {
        DynTraceInst &rec = capture->insts[di->seq];
        rec.memAddr = di->memAddr;
        rec.memSize = di->memSize;
    }
}

void
RuntimeEngine::buildMemorySummary()
{
    memSummary.unknownStoreSeq = ~0ull;
    memSummary.unknownLoadSeq = ~0ull;
    memSummary.stores.clear();
    memSummary.loads.clear();
    for (const DynInst *op : memoryOrder) {
        if (op->committed)
            continue;
        if (op->isStore) {
            if (!op->addrKnown) {
                memSummary.unknownStoreSeq = std::min(
                    memSummary.unknownStoreSeq, op->memSeq);
            } else {
                memSummary.stores.push_back(
                    {op->memSeq, op->memAddr, op->memSize});
            }
        } else {
            if (!op->addrKnown) {
                memSummary.unknownLoadSeq = std::min(
                    memSummary.unknownLoadSeq, op->memSeq);
            } else {
                memSummary.loads.push_back(
                    {op->memSeq, op->memAddr, op->memSize});
            }
        }
    }
}

bool
RuntimeEngine::memoryOrderingAllows(const DynInst &di) const
{
    SALAM_ASSERT(di.addrKnown);
    // Unknown-address older stores block everything younger;
    // unknown older loads block younger stores.
    if (memSummary.unknownStoreSeq < di.memSeq)
        return false;
    if (di.isStore && memSummary.unknownLoadSeq < di.memSeq)
        return false;

    auto overlaps = [&](const MemRef &ref) {
        return ref.seq < di.memSeq &&
            ref.addr < di.memAddr + di.memSize &&
            di.memAddr < ref.addr + ref.size;
    };
    for (const MemRef &store : memSummary.stores) {
        if (overlaps(store))
            return false;
    }
    if (di.isStore) {
        for (const MemRef &load : memSummary.loads) {
            if (overlaps(load))
                return false;
        }
    }
    return true;
}

void
RuntimeEngine::issueCompute(DynInst *di)
{
    SALAM_TRACE_AT(Issue, obsNow(), observer.name.c_str(),
                   "issue %s seq=%llu fu=%u",
                   di->inst->name().c_str(),
                   (unsigned long long)di->seq,
                   static_cast<unsigned>(di->staticInfo->fu));
    captureOperands(di);
    occupyFu(di);
    di->issued = true;
    di->issueCycle = cycleCount;
    if (observer.sink)
        di->issueTick = obsNow();

    const HardwareProfile &profile = cfg.profile;
    FuType type = di->staticInfo->fu;
    if (type != FuType::None) {
        engineStats.fuEnergyPj +=
            profile.fu(type).dynamicEnergyPj;
    }
    // Register file activity: operand reads now, result write at
    // commit.
    double read_bits = 0.0;
    for (std::size_t o = 0; o < di->inst->numOperands(); ++o)
        read_bits += di->inst->operand(o)->type()->bitWidth();
    engineStats.registerReadEnergyPj +=
        read_bits * profile.registers().readEnergyPjPerBit;

    // Functional evaluation happens at issue; the commit of the
    // result is delayed by the unit latency.
    if (di->inst->opcode() == Opcode::Phi) {
        di->result = di->operandValues[0];
    } else if (di->inst->isComputeOp()) {
        di->result = evalCompute(*di->inst, di->operandValues);
    }

    unsigned latency = di->staticInfo->latency;
    if (latency == 0) {
        commit(di);
    } else {
        di->commitCycle = cycleCount + latency;
        computeQueue.push_back(di);
    }
}

void
RuntimeEngine::commit(DynInst *di)
{
    SALAM_ASSERT(!di->committed);
    di->committed = true;
    ++engineStats.committedInstructions;
    // The engine is ticked every cycle while active, so queued
    // compute ops reach here exactly at their scheduled cycle; for
    // everything else (memory, branches, zero-latency wiring) this
    // is the only place the commit cycle gets stamped.
    di->commitCycle = cycleCount;
    if (observer.sink && di->issued &&
        (di->isMemory() || di->staticInfo->latency > 0)) {
        Tick end = obsNow();
        Tick dur = end > di->issueTick ? end - di->issueTick : 0;
        observer.sink->recordSlice(
            di->issueTick, dur, observer.name,
            di->isMemory() ? "mem" : "compute",
            di->isLoad ? "load"
                       : di->isStore ? "store" : di->inst->name());
    }
    if (!di->inst->type()->isVoid()) {
        committedValues[di->staticInfo->resultValueId] = di->result;
        committedKnown[di->staticInfo->resultValueId] = 1;
        engineStats.registerWriteEnergyPj +=
            static_cast<double>(di->staticInfo->resultBits) *
            cfg.profile.registers().writeEnergyPjPerBit;
    }
    if (observer.profiler != nullptr)
        recordProfile(di);
}

void
RuntimeEngine::recordProfile(DynInst *di)
{
    obs::ProfNode node;
    node.seq = di->seq;
    node.staticId = di->staticInfo->id;
    node.issueCycle = di->issueCycle;
    node.commitCycle = di->commitCycle;

    // The instance became ready when its last constraint cleared:
    // the importing terminator (minIssueCycle fence) or the
    // latest-committing operand producer. Ties go to the data edge —
    // it is the longer dependence chain.
    node.readyCycle = di->minIssueCycle;
    if (di->ctrlParentSeq != obs::noProfSeq) {
        node.parentSeq = di->ctrlParentSeq;
        node.linkCause = di->ctrlLinkCause;
    }
    if (di->prodParentSeq != obs::noProfSeq &&
        di->prodReadyCycle >= node.readyCycle) {
        node.readyCycle = di->prodReadyCycle;
        node.parentSeq = di->prodParentSeq;
        node.linkCause = obs::ProfCause::DataDep;
    }
    if (node.readyCycle > node.issueCycle)
        node.readyCycle = node.issueCycle;

    node.waitCause = di->waitCause;
    if (di->isMemory()) {
        // Precedence: the most specific memory-system annotation
        // wins; a plain round trip is the default.
        unsigned flags = di->memServiceFlags;
        if (flags & mem::svcCacheMiss)
            node.execCause = obs::ProfCause::CacheMiss;
        else if (flags & mem::svcBankConflict)
            node.execCause = obs::ProfCause::BankConflict;
        else if (flags & mem::svcDmaWait)
            node.execCause = obs::ProfCause::DmaWait;
        else if (flags & mem::svcCreditStall)
            node.execCause = obs::ProfCause::CreditStall;
        else if (flags & mem::svcBusArbitration)
            node.execCause = obs::ProfCause::BusArbitration;
        else if (flags & mem::svcQueued)
            node.execCause = obs::ProfCause::MemQueue;
        else
            node.execCause = obs::ProfCause::MemResponse;
    } else {
        node.execCause = obs::ProfCause::Compute;
    }
    observer.profiler->record(node);
}

void
RuntimeEngine::memoryResponse(DynInst *op, const std::uint8_t *data,
                              unsigned size)
{
    SALAM_ASSERT(op->memInFlight);
    SALAM_TRACE_AT(RuntimeEngine, obsNow(), observer.name,
                   "%s response seq=%llu addr=0x%llx size=%u",
                   op->isLoad ? "load" : "store",
                   (unsigned long long)op->seq,
                   (unsigned long long)op->memAddr, op->memSize);
    op->memInFlight = false;
    if (op->isLoad) {
        SALAM_ASSERT(size >= op->memSize);
        std::uint64_t raw = 0;
        std::memcpy(&raw, data, op->memSize);
        op->result.bits = RuntimeValue::mask(op->inst->type(), raw);
        SALAM_ASSERT(loadsInFlight > 0);
        --loadsInFlight;
    } else {
        SALAM_ASSERT(storesInFlight > 0);
        --storesInFlight;
    }
    commit(op);
    if (active)
        client.engineRequestTick();
}

void
RuntimeEngine::pruneWindow()
{
    // Retire from the window front (oldest first). An instruction
    // may leave once it is committed, every reader has captured its
    // result, and a newer instance of the same static instruction
    // has issued (so nothing consults it for WAW/WAR any more).
    while (!window.empty()) {
        DynInst *front = window.front();
        if (!front->committed || front->unissuedReaders > 0)
            break;
        if (front->nextInstance != nullptr &&
            !front->nextInstance->issued) {
            break;
        }
        if (front->nextInstance == nullptr) {
            // Still the newest instance of its static instruction:
            // unregister it so later readers bind to the committed
            // value instead. (A future instance then starts without
            // a WAW link to this long-retired one; by then the
            // initiation-interval spacing is trivially satisfied.)
            DynInst *&latest =
                latestInstance[front->staticInfo->id];
            if (latest == front)
                latest = nullptr;
        } else {
            front->nextInstance->prevInstance = nullptr;
        }
        if (front->isMemory()) {
            SALAM_ASSERT(!memoryOrder.empty() &&
                         memoryOrder.front() == front);
            memoryOrder.pop_front();
        }
        window.pop_front();
        releaseDynInst(front);
    }
}

void
RuntimeEngine::recordCycleStats(bool issued_any,
                                unsigned loads_issued,
                                unsigned stores_issued,
                                unsigned fp_issued)
{
    // In-flight FU occupancy by type.
    for (const DynInst *op : computeQueue) {
        std::size_t t =
            static_cast<std::size_t>(op->staticInfo->fu);
        ++engineStats.fuBusyCycleSum[t];
    }

    if (observer.memQueueOccupancy) {
        observer.memQueueOccupancy->sample(
            static_cast<double>(loadsInFlight + storesInFlight));
    }
    if (observer.reservationOccupancy) {
        observer.reservationOccupancy->sample(
            static_cast<double>(reservationQueue.size()));
    }
    if (observer.sink) {
        observer.sink->recordCounter(
            obsNow(), observer.name, "queues",
            {{"reservation",
              static_cast<double>(reservationQueue.size())},
             {"compute", static_cast<double>(computeQueue.size())},
             {"loads_in_flight", static_cast<double>(loadsInFlight)},
             {"stores_in_flight",
              static_cast<double>(storesInFlight)}});
    }

    if (issued_any) {
        ++engineStats.newExecCycles;
        if (loads_issued > 0)
            ++engineStats.cyclesWithLoadIssue;
        if (stores_issued > 0)
            ++engineStats.cyclesWithStoreIssue;
        if (fp_issued > 0)
            ++engineStats.cyclesWithFpIssue;
        if (loads_issued > 0 && stores_issued > 0)
            ++engineStats.cyclesWithLoadAndStoreIssue;
        if (loads_issued > 0 && fp_issued > 0)
            ++engineStats.cyclesWithLoadAndFpIssue;
        return;
    }

    ++engineStats.stallCycles;
    // A stall involves a memory class when an access of that class
    // is in flight or was ready but blocked by port/queue limits
    // this cycle; it involves computation when operations occupy
    // functional units.
    bool load_busy = loadsInFlight > 0 || memStallLoadBlocked;
    bool store_busy = storesInFlight > 0 || memStallStoreBlocked;
    bool compute_busy = !computeQueue.empty();
    StallLane lane;
    if (load_busy && store_busy && compute_busy) {
        ++engineStats.stallLoadStoreCompute;
        lane = laneLoadStoreCompute;
    } else if (load_busy && compute_busy) {
        ++engineStats.stallLoadCompute;
        lane = laneLoadCompute;
    } else if (store_busy && compute_busy) {
        ++engineStats.stallStoreCompute;
        lane = laneStoreCompute;
    } else if (load_busy && store_busy) {
        ++engineStats.stallLoadStore;
        lane = laneLoadStore;
    } else if (compute_busy) {
        ++engineStats.stallComputeOnly;
        lane = laneComputeOnly;
    } else if (load_busy) {
        ++engineStats.stallLoadOnly;
        lane = laneLoadOnly;
    } else if (store_busy) {
        ++engineStats.stallStoreOnly;
        lane = laneStoreOnly;
    } else {
        ++engineStats.stallEmpty;
        lane = laneEmpty;
    }
    if (observer.stallCauses)
        observer.stallCauses->add(lane);
}

void
RuntimeEngine::dumpState(obs::JsonBuilder &json) const
{
    json.field("active", active).field("completed", completed);
    json.field("cycle", cycleCount);
    json.field("window",
               static_cast<std::uint64_t>(window.size()));
    json.field("loads_in_flight", std::uint64_t(loadsInFlight));
    json.field("stores_in_flight", std::uint64_t(storesInFlight));
    json.field("committed_instructions",
               engineStats.committedInstructions);
    if (pendingImport)
        json.field("pending_import", pendingImport->name());

    auto describe = [&json](const DynInst *di) {
        json.beginObject()
            .field("seq", di->seq)
            .field("inst", "%" + di->inst->name())
            .field("issued", di->issued)
            .field("committed", di->committed);
        if (di->isMemory()) {
            json.field("mem",
                       di->isLoad ? "load" : "store")
                .field("addr_known", di->addrKnown)
                .field("addr", di->memAddr)
                .field("in_flight", di->memInFlight)
                .field("service_flags",
                       std::uint64_t(di->memServiceFlags));
        }
        json.endObject();
    };

    json.beginArray("reservation_queue");
    for (const DynInst *di : reservationQueue)
        describe(di);
    json.endArray();
    json.beginArray("compute_queue");
    for (const DynInst *di : computeQueue)
        describe(di);
    json.endArray();
    json.beginArray("memory_order");
    for (const DynInst *di : memoryOrder)
        describe(di);
    json.endArray();
}

void
RuntimeEngine::finish()
{
    active = false;
    completed = true;
    engineStats.totalCycles = cycleCount + 1;
    SALAM_TRACE_AT(RuntimeEngine, obsNow(), observer.name,
                   "finished after %llu cycles (%llu dynamic insts)",
                   (unsigned long long)engineStats.totalCycles,
                   (unsigned long long)
                       engineStats.dynamicInstructions);
    if (observer.sink) {
        observer.sink->recordInstant(obsNow(), observer.name,
                                     "engine", "kernel done");
    }
    client.engineDone();
}

void
RuntimeEngine::cycle()
{
    if (!active)
        return;

    // 1. Commit compute operations whose latency has elapsed.
    for (std::size_t i = 0; i < computeQueue.size();) {
        DynInst *op = computeQueue[i];
        if (op->commitCycle <= cycleCount) {
            commit(op);
            computeQueue[i] = computeQueue.back();
            computeQueue.pop_back();
        } else {
            ++i;
        }
    }

    // 2. Retry a deferred block import. Under block-sequential
    //    scheduling a cross-block import additionally waits for the
    //    pipeline to drain (FSM state-transition semantics).
    if (pendingImport != nullptr) {
        bool drained = reservationQueue.empty() &&
            computeQueue.empty() && loadsInFlight == 0 &&
            storesInFlight == 0;
        if (!cfg.blockSequentialImport || drained ||
            pendingImportFrom == pendingImport) {
            importCtrlSeq = pendingImportCtrlSeq;
            // Charge the control link for what actually held the
            // import back: mostly memory ops clogging the pipeline,
            // or genuine control-flow serialization.
            importCtrlCause =
                importMemWaitCycles > importOtherWaitCycles
                    ? obs::ProfCause::MemPort
                    : obs::ProfCause::Control;
            importBlock(pendingImport, pendingImportFrom);
            importCtrlSeq = obs::noProfSeq;
            importCtrlCause = obs::ProfCause::Control;
            if (pendingImport == nullptr) {
                importMemWaitCycles = 0;
                importOtherWaitCycles = 0;
            }
        }
        if (pendingImport != nullptr) {
            // Memory holds the import back either as in-flight ops
            // or as ready ops the ports refused last cycle.
            if (loadsInFlight + storesInFlight > 0 ||
                memStallLoadBlocked || memStallStoreBlocked) {
                ++importMemWaitCycles;
            } else {
                ++importOtherWaitCycles;
            }
        }
    }

    // 3. Scan the reservation queue and issue everything that is
    //    ready. The scan is in program order but issue is dataflow:
    //    younger ready instructions are not blocked by older
    //    unready ones (other than through the explicit dependency,
    //    FU, and memory-ordering rules).
    unsigned loads_issued = 0;
    unsigned stores_issued = 0;
    unsigned fp_issued = 0;
    bool issued_any = false;
    bool ready_load_blocked = false;
    bool ready_store_blocked = false;
    buildMemorySummary();

    // Single-pass in-place compaction: entries that stay are slid
    // to `write`, issued entries are dropped, and importBlock() may
    // append during the walk (terminator evaluation) — appended
    // entries are visited by the same scan (and kept: their
    // minIssueCycle fence is next cycle). Visit order matches the
    // old erase-in-place deque scan exactly, so timing is
    // unchanged; rsvConsumed keeps the live count correct for the
    // capacity check inside importBlock().
    std::size_t write = 0;
    rsvConsumed = 0;
    for (std::size_t read = 0; read < reservationQueue.size();
         ++read) {
        DynInst *di = reservationQueue[read];
        if (di->minIssueCycle > cycleCount) {
            reservationQueue[write++] = di;
            continue;
        }
        // Effective addresses resolve as soon as the pointer operand
        // commits, even if the op cannot issue yet — younger memory
        // ops use them for disambiguation.
        if (di->isMemory())
            resolveAddress(di);
        if (!operandsReady(*di)) {
            reservationQueue[write++] = di;
            continue;
        }

        Opcode op = di->inst->opcode();
        if (op == Opcode::Br) {
            const auto *br =
                static_cast<const BranchInst *>(di->inst);
            captureOperands(di);
            const BasicBlock *target;
            if (br->isConditional()) {
                target = di->operandValues[0].asBool()
                             ? br->ifTrue()
                             : br->ifFalse();
            } else {
                target = br->ifTrue();
            }
            di->issued = true;
            di->issueCycle = cycleCount;
            commit(di);
            if (capture != nullptr) {
                capture->insts[di->seq].branchTarget =
                    staticCdfg.blockInfo(target).id;
            }
            const BasicBlock *cur = di->inst->parent();
            if (cfg.blockSequentialImport && target != cur &&
                pendingImport == nullptr) {
                // Defer the state transition until drain.
                pendingImport = target;
                pendingImportFrom = cur;
                pendingImportCtrlSeq = di->seq;
            } else {
                importCtrlSeq = di->seq;
                // The branch still occupies its queue slot during
                // the import (it is dropped just below), matching
                // the historical erase-after-import capacity
                // accounting.
                importBlock(target, cur);
                importCtrlSeq = obs::noProfSeq;
            }
            ++rsvConsumed;
            issued_any = true;
            ++engineStats.otherOpsIssued;
            if (observer.issueClasses)
                observer.issueClasses->add(laneOther);
            continue;
        }
        if (op == Opcode::Ret) {
            captureOperands(di);
            if (di->inst->numOperands() == 1)
                di->result = di->operandValues[0];
            di->issued = true;
            di->issueCycle = cycleCount;
            commit(di);
            retSeen = true;
            ++rsvConsumed;
            issued_any = true;
            ++engineStats.otherOpsIssued;
            if (observer.issueClasses)
                observer.issueClasses->add(laneOther);
            continue;
        }

        if (di->isMemory()) {
            if (!di->addrKnown) {
                // Pointer producer pending: stays a data wait.
                reservationQueue[write++] = di;
                continue;
            }
            if (!memoryOrderingAllows(*di)) {
                di->waitCause = obs::ProfCause::MemOrdering;
                reservationQueue[write++] = di;
                continue;
            }
            bool is_load = di->isLoad;
            if (is_load &&
                (loads_issued >= cfg.readPortsPerCycle ||
                 loadsInFlight >= cfg.readQueueSize)) {
                ready_load_blocked = true;
                di->waitCause = obs::ProfCause::MemPort;
                reservationQueue[write++] = di;
                continue;
            }
            if (!is_load &&
                (stores_issued >= cfg.writePortsPerCycle ||
                 storesInFlight >= cfg.writeQueueSize)) {
                ready_store_blocked = true;
                di->waitCause = obs::ProfCause::MemPort;
                reservationQueue[write++] = di;
                continue;
            }
            captureOperands(di);
            if (!client.engineIssueMemory(di)) {
                // Interface refused; operands stay captured, retry
                // next cycle (captureOperands is idempotent once
                // producers are cleared).
                di->waitCause = obs::ProfCause::MemPort;
                reservationQueue[write++] = di;
                continue;
            }
            di->issued = true;
            di->issueCycle = cycleCount;
            di->memInFlight = true;
            // An issued (uncommitted) op still participates in the
            // summary; address resolution of scanned ops may have
            // added entries, so refresh lazily next cycle. Newly
            // resolved addresses this cycle only *relax* ordering,
            // so the stale summary is conservative, not wrong.
            if (observer.sink)
                di->issueTick = obsNow();
            SALAM_TRACE_AT(Issue, obsNow(), observer.name,
                           "issue %s seq=%llu addr=0x%llx size=%u",
                           is_load ? "load" : "store",
                           (unsigned long long)di->seq,
                           (unsigned long long)di->memAddr,
                           di->memSize);
            if (is_load) {
                ++loadsInFlight;
                ++loads_issued;
                ++engineStats.loadsIssued;
                --pendingLoadOps;
                if (observer.issueClasses)
                    observer.issueClasses->add(laneLoad);
            } else {
                ++storesInFlight;
                ++stores_issued;
                ++engineStats.storesIssued;
                --pendingStoreOps;
                if (observer.issueClasses)
                    observer.issueClasses->add(laneStore);
            }
            issued_any = true;
            ++rsvConsumed;
            continue;
        }

        // Compute ops (including phi and zero-latency wiring).
        if (!fuAvailable(*di)) {
            di->waitCause = obs::ProfCause::FuContention;
            reservationQueue[write++] = di;
            continue;
        }
        issueCompute(di);
        issued_any = true;
        ++rsvConsumed;
        if (isFloatingPointOp(op) ||
            di->staticInfo->fu == FuType::FpSpecial) {
            ++fp_issued;
            ++engineStats.fpOpsIssued;
            if (observer.issueClasses)
                observer.issueClasses->add(laneFp);
        } else if (di->staticInfo->fu != FuType::None) {
            ++engineStats.intOpsIssued;
            if (observer.issueClasses)
                observer.issueClasses->add(laneInt);
        } else {
            ++engineStats.otherOpsIssued;
            if (observer.issueClasses)
                observer.issueClasses->add(laneOther);
        }
    }
    reservationQueue.resize(write);
    rsvConsumed = 0;

    SALAM_TRACE_AT(RuntimeEngine, obsNow(), observer.name,
                   "cyc %llu: issued=%d loads=%u stores=%u fp=%u "
                   "rq=%zu cq=%zu lif=%u sif=%u",
                   (unsigned long long)cycleCount, (int)issued_any,
                   loads_issued, stores_issued, fp_issued,
                   reservationQueue.size(), computeQueue.size(),
                   loadsInFlight, storesInFlight);
    memStallLoadBlocked = ready_load_blocked;
    memStallStoreBlocked = ready_store_blocked;
    recordCycleStats(issued_any, loads_issued, stores_issued,
                     fp_issued);
    pruneWindow();

    // 4. Completion check: the kernel is done when ret has executed
    //    and every queue has drained.
    if (retSeen && reservationQueue.empty() &&
        computeQueue.empty() && loadsInFlight == 0 &&
        storesInFlight == 0 && pendingImport == nullptr) {
        finish();
        return;
    }

    ++cycleCount;
    client.engineRequestTick();
}

} // namespace salam::core

/**
 * @file
 * DynTrace: a reusable dynamic-execution trace of one (kernel,
 * input) pair.
 *
 * The trace-reuse fast path (Sec. "incremental simulation") runs the
 * full execute-in-execute engine once with capture enabled, recording
 * per dynamic instance everything that depends on *data*: the static
 * instruction executed, the control edge each terminator took, and
 * every resolved memory address. A TraceReplayer can then re-schedule
 * the identical instruction stream under different FU counts, port
 * limits, queue sizes, and memory latencies without re-executing a
 * single operand — those knobs change *when* instances issue, never
 * *which* instances exist or *where* they touch memory.
 *
 * The record is deliberately minimal: one 24-byte POD per dynamic
 * instance, indexed by the engine's dynamic seq. Operand values are
 * NOT stored — replays never evaluate, so they only need the
 * dependence shape (already in the StaticCdfg) plus the data-driven
 * outcomes captured here.
 */

#ifndef SALAM_CORE_DYN_TRACE_HH
#define SALAM_CORE_DYN_TRACE_HH

#include <cstdint>
#include <string>
#include <vector>

namespace salam::core
{

/** Per-dynamic-instance capture record (index == engine seq). */
struct DynTraceInst
{
    /** StaticInstInfo::id of the instruction executed. */
    std::uint32_t staticId = 0;

    /**
     * For terminators: StaticBlockInfo::id of the successor block
     * the branch imported (noBranchTarget for everything else,
     * including ret).
     */
    std::uint32_t branchTarget = ~0u;

    /** Resolved effective address (memory ops). */
    std::uint64_t memAddr = 0;

    /** Access size in bytes (memory ops; 0 otherwise). */
    std::uint32_t memSize = 0;
};

/** One captured execution of one (kernel, input) pair. */
struct DynTrace
{
    static constexpr std::uint32_t noBranchTarget = ~0u;

    /**
     * Caller-assigned identity of the (kernel variant, input) pair.
     * Kernel::name() alone is NOT enough — e.g. every GEMM unroll
     * variant is named "gemm" — so the capturing bench must key the
     * trace on everything that changes the IR or the seeded input.
     */
    std::string kernelKey;

    /**
     * DeviceConfig::blockSequentialImport at capture time. The one
     * scheduling knob that changes which dynamic instances exist
     * (FSM-style drain points alter import timing but, more to the
     * point, a replay under the other mode has no captured drain
     * semantics to honour) — a mismatch forces full simulation.
     */
    bool capturedBlockSequential = false;

    /** runConfigHash of the capturing run (informational). */
    std::uint64_t sourceConfigHash = 0;

    /** The dynamic instruction stream, in seq order. */
    std::vector<DynTraceInst> insts;

    bool empty() const { return insts.empty(); }
};

} // namespace salam::core

#endif // SALAM_CORE_DYN_TRACE_HH

/**
 * @file
 * Dma: MMR-programmed burst data mover.
 *
 * One engine covers both of gem5-SALAM's DMA flavours:
 *  - block DMA: both source and destination addresses increment
 *    (memory-to-memory bulk transfer);
 *  - stream DMA: one side is a fixed FIFO address (stream buffer),
 *    turning the engine into a memory-to-stream or stream-to-memory
 *    pump.
 *
 * Programming model (64-bit registers): reg0 = CTRL (same bits as
 * the accelerator control register), reg1 = SRC, reg2 = DST,
 * reg3 = LEN in bytes. Completion sets DONE and optionally raises an
 * interrupt.
 */

#ifndef SALAM_CORE_DMA_HH
#define SALAM_CORE_DMA_HH

#include <deque>
#include <functional>

#include "comm_interface.hh"
#include "mem/port.hh"
#include "sim/sim_object.hh"
#include "sim/simulation.hh"

namespace salam::core
{

/** DMA configuration. */
struct DmaConfig
{
    mem::AddrRange mmrRange;
    /** Bytes moved per burst packet. */
    unsigned burstBytes = 64;
    /** Outstanding bursts allowed in flight. */
    unsigned maxOutstanding = 4;
    /** Source address advances per burst (false = stream source). */
    bool incrementSrc = true;
    /** Destination advances per burst (false = stream sink). */
    bool incrementDst = true;
};

/** The DMA device. */
class Dma : public ClockedObject
{
  public:
    Dma(Simulation &sim, std::string name, Tick clock_period,
        const DmaConfig &config);

    /** Registers transfer statistics with the simulation. */
    void init() override;

    /** MMR endpoint for host programming. */
    mem::ResponsePort &mmrPort() { return pioPort; }

    /** Data port; bind toward the interconnect. */
    mem::RequestPort &dataPort() { return dmaPort; }

    const DmaConfig &config() const { return cfg; }

    void setIrqCallback(std::function<void()> callback)
    { irq = std::move(callback); }

    /** Program and start directly (driver backdoor). */
    void startTransfer(std::uint64_t src, std::uint64_t dst,
                       std::uint64_t bytes);

    bool busy() const { return active; }

    bool done() const { return (regs[0] & ctrl_bits::done) != 0; }

    /** Untimed register access for drivers/tests. */
    std::uint64_t readReg(unsigned index) const;

    void writeReg(unsigned index, std::uint64_t value);

    std::uint64_t bytesMoved() const { return totalBytes; }

    /** Ticks from start to completion of the last transfer. */
    Tick lastTransferTicks() const { return lastDuration; }

    void dumpDiagnostics(obs::JsonBuilder &json) const override;

    std::string stuckReason() const override;

  private:
    class PioPort : public mem::ResponsePort
    {
      public:
        explicit PioPort(Dma &owner)
            : mem::ResponsePort(owner.name() + ".pio"), owner(owner)
        {}

        bool
        recvTimingReq(mem::PacketPtr pkt) override
        {
            return owner.handleMmrAccess(pkt);
        }

        void recvRespRetry() override { owner.sendMmrResponses(); }

      private:
        Dma &owner;
    };

    class DmaPort : public mem::RequestPort
    {
      public:
        explicit DmaPort(Dma &owner)
            : mem::RequestPort(owner.name() + ".data"), owner(owner)
        {}

        bool
        recvTimingResp(mem::PacketPtr pkt) override
        {
            return owner.handleDataResponse(pkt);
        }

        void recvReqRetry() override { owner.pump(); }

      private:
        Dma &owner;
    };

    struct PendingMmr
    {
        mem::PacketPtr pkt;
        Tick readyAt;
    };

    bool handleMmrAccess(mem::PacketPtr pkt);

    void sendMmrResponses();

    bool handleDataResponse(mem::PacketPtr pkt);

    /** Issue read bursts while outstanding slots remain. */
    void pump();

    void finishTransfer();

    DmaConfig cfg;
    PioPort pioPort;
    DmaPort dmaPort;
    std::array<std::uint64_t, 4> regs{};
    /** Write bursts refused downstream, resent from pump(). */
    std::deque<mem::PacketPtr> blockedWrites;
    std::deque<PendingMmr> mmrResponses;
    EventFunctionWrapper mmrEvent;
    EventFunctionWrapper pumpEvent;
    std::function<void()> irq;

    bool active = false;
    std::uint64_t srcCursor = 0;
    std::uint64_t dstCursor = 0;
    std::uint64_t bytesRemainingToRead = 0;
    std::uint64_t bytesRemainingToWrite = 0;
    unsigned outstanding = 0;
    Tick startedAt = 0;
    Tick lastDuration = 0;
    std::uint64_t totalBytes = 0;
    std::uint64_t transfersCompleted = 0;
    obs::TraceSink *sink = nullptr;
};

} // namespace salam::core

#endif // SALAM_CORE_DMA_HH

/**
 * @file
 * CommInterface: the accelerator's window onto the system.
 *
 * Implements the paper's "Communications Interface" (Fig. 5): a
 * memory-mapped register file for control/status/argument passing, a
 * set of data request ports routed by address range (private SPM,
 * global crossbar/cache, stream buffers), and an interrupt line.
 *
 * The interface is deliberately decoupled from the ComputeUnit: any
 * memory hierarchy can be swapped in by rebinding ports and editing
 * the range map, with no change to the datapath model — the property
 * the multi-accelerator scenarios in Sec. IV-E rely on.
 */

#ifndef SALAM_CORE_COMM_INTERFACE_HH
#define SALAM_CORE_COMM_INTERFACE_HH

#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "mem/port.hh"
#include "runtime_engine.hh"
#include "sim/sim_object.hh"
#include "sim/simulation.hh"

namespace salam::core
{

/** CommInterface configuration. */
struct CommInterfaceConfig
{
    /** MMR window (control register + argument registers). */
    mem::AddrRange mmrRange;

    /** One data port per entry, each serving its address ranges. */
    struct PortSpec
    {
        std::string label;
        std::vector<mem::AddrRange> ranges;
    };

    std::vector<PortSpec> dataPorts;

    /** MMR access latency in interface-clock cycles. */
    unsigned mmrLatencyCycles = 1;
};

/** Control-register bit definitions. */
namespace ctrl_bits
{
constexpr std::uint64_t start = 1u << 0;
constexpr std::uint64_t done = 1u << 1;
constexpr std::uint64_t irqEnable = 1u << 2;
constexpr std::uint64_t running = 1u << 3;
} // namespace ctrl_bits

/** The communications interface device. */
class CommInterface : public ClockedObject
{
  public:
    CommInterface(Simulation &sim, std::string name,
                  Tick clock_period,
                  const CommInterfaceConfig &config);

    /** Registers MMR/data-traffic statistics with the simulation. */
    void init() override;

    /** The MMR (pio) endpoint; bind a host-facing port to it. */
    mem::ResponsePort &mmrPort() { return pioPort; }

    /** Data request port @p i (bind to SPM/crossbar/stream). */
    mem::RequestPort &dataPort(unsigned i);

    const CommInterfaceConfig &config() const { return cfg; }

    // -- Engine-facing API ------------------------------------------

    /**
     * Issue the memory operation @p op. Routes by address to the
     * matching data port. Returns false when no port serves the
     * address range (a configuration error surfaces as fatal) —
     * otherwise the request is accepted.
     */
    bool issueMemory(DynInst *op);

    /** Handler invoked when a data response arrives. */
    void
    setResponseHandler(
        std::function<void(DynInst *, const std::uint8_t *,
                           unsigned)> handler)
    {
        onResponse = std::move(handler);
    }

    // -- Host/control-facing API ------------------------------------

    /** Invoked when the host sets the start bit. */
    void setStartHandler(std::function<void()> handler)
    { onStart = std::move(handler); }

    /** Interrupt wire toward the interrupt controller. */
    void setIrqCallback(std::function<void()> callback)
    { irq = std::move(callback); }

    /** The ComputeUnit reports completion here. */
    void signalDone();

    /** Direct (untimed) register access for drivers and tests. */
    std::uint64_t readReg(unsigned index) const;

    void writeReg(unsigned index, std::uint64_t value);

    unsigned numRegs() const
    { return static_cast<unsigned>(regs.size()); }

    bool running() const
    { return (regs[0] & ctrl_bits::running) != 0; }

    bool done() const { return (regs[0] & ctrl_bits::done) != 0; }

    std::uint64_t mmrReads() const { return mmrReadCount; }

    std::uint64_t mmrWrites() const { return mmrWriteCount; }

    /** MMIO accesses answered with an error response. */
    std::uint64_t mmrDecodeErrorCount() const
    { return mmrDecodeErrors; }

    void dumpDiagnostics(obs::JsonBuilder &json) const override;

    std::string stuckReason() const override;

  private:
    class PioPort : public mem::ResponsePort
    {
      public:
        explicit PioPort(CommInterface &owner)
            : mem::ResponsePort(owner.name() + ".pio"), owner(owner)
        {}

        bool
        recvTimingReq(mem::PacketPtr pkt) override
        {
            return owner.handleMmrAccess(pkt);
        }

        void recvRespRetry() override { owner.sendMmrResponses(); }

      private:
        CommInterface &owner;
    };

    class DataPort : public mem::RequestPort
    {
      public:
        DataPort(CommInterface &owner, const std::string &label)
            : mem::RequestPort(owner.name() + "." + label),
              owner(owner)
        {}

        bool
        recvTimingResp(mem::PacketPtr pkt) override
        {
            return owner.handleDataResponse(pkt);
        }

        void recvReqRetry() override { owner.retryBlockedRequests(); }

      private:
        CommInterface &owner;
    };

    struct PendingMmr
    {
        mem::PacketPtr pkt;
        Tick readyAt;
    };

    bool handleMmrAccess(mem::PacketPtr pkt);

    void sendMmrResponses();

    bool handleDataResponse(mem::PacketPtr pkt);

    void retryBlockedRequests();

    void controlWrite(std::uint64_t value);

    /** Data port index serving @p addr, or -1. */
    int portFor(std::uint64_t addr, unsigned size) const;

    CommInterfaceConfig cfg;
    PioPort pioPort;
    std::vector<std::unique_ptr<DataPort>> dataPorts;
    std::vector<std::uint64_t> regs;
    std::deque<PendingMmr> mmrResponses;
    std::deque<std::pair<mem::PacketPtr, unsigned>> blockedRequests;
    EventFunctionWrapper mmrEvent;

    std::function<void()> onStart;
    std::function<void()> irq;
    std::function<void(DynInst *, const std::uint8_t *, unsigned)>
        onResponse;

    std::uint64_t mmrReadCount = 0;
    std::uint64_t mmrWriteCount = 0;
    std::uint64_t dataRequestsIssued = 0;
    std::uint64_t dataRequestsBlocked = 0;
    std::uint64_t mmrDecodeErrors = 0;
};

} // namespace salam::core

#endif // SALAM_CORE_COMM_INTERFACE_HH

/**
 * @file
 * StaticCdfg: the statically elaborated control/data-flow graph.
 *
 * gem5-SALAM's "LLVM Interface" parses the kernel IR once, links
 * every instruction to a virtual functional unit and register, and
 * produces the static skeleton of the datapath arranged at basic-
 * block granularity. The runtime engine instantiates its dynamic
 * CDFG from this structure, and the static power/area estimates come
 * straight from it — independent of any input data (the property
 * trace-based simulators lack).
 */

#ifndef SALAM_CORE_STATIC_CDFG_HH
#define SALAM_CORE_STATIC_CDFG_HH

#include <array>
#include <map>
#include <vector>

#include "device_config.hh"
#include "hw/power_model.hh"
#include "ir/function.hh"

namespace salam::core
{

/** Static information about one instruction in the datapath. */
struct StaticInstInfo
{
    const ir::Instruction *inst = nullptr;
    /** Unique id across the function (reservation order). */
    unsigned id = 0;
    hw::FuType fu = hw::FuType::None;
    /** Dedicated unit index within its type pool (1-to-1 map). */
    unsigned fuUnit = 0;
    unsigned latency = 0;
    unsigned initiationInterval = 1;
    /** Result register width in bits (0 for void results). */
    unsigned resultBits = 0;
};

/** The elaborated datapath skeleton. */
class StaticCdfg
{
  public:
    /**
     * Elaborate @p fn under @p config: map instructions to units,
     * size the register file, and compute static power and area.
     */
    StaticCdfg(const ir::Function &fn, const DeviceConfig &config);

    const ir::Function &function() const { return *fn; }

    const StaticInstInfo &info(const ir::Instruction *inst) const;

    /** Instantiated units of @p type (after applying limits). */
    unsigned fuCount(hw::FuType type) const
    { return fuCounts[static_cast<std::size_t>(type)]; }

    /** Static instructions mapped to @p type (before limits). */
    unsigned fuDemand(hw::FuType type) const
    { return fuDemands[static_cast<std::size_t>(type)]; }

    /** Total internal register bits in the datapath. */
    std::uint64_t registerBits() const { return regBits; }

    /** Leakage power of functional units + registers (mW). */
    double staticFuPowerMw() const { return staticFuMw; }

    double staticRegisterPowerMw() const { return staticRegMw; }

    /** Datapath area (FUs + registers), excluding memories. */
    hw::AreaBreakdown area() const { return areas; }

    std::size_t numInstructions() const { return infos.size(); }

  private:
    const ir::Function *fn;
    std::map<const ir::Instruction *, StaticInstInfo> infoMap;
    std::vector<const ir::Instruction *> infos;
    std::array<unsigned, hw::numFuTypes> fuCounts{};
    std::array<unsigned, hw::numFuTypes> fuDemands{};
    std::uint64_t regBits = 0;
    double staticFuMw = 0.0;
    double staticRegMw = 0.0;
    hw::AreaBreakdown areas;
};

} // namespace salam::core

#endif // SALAM_CORE_STATIC_CDFG_HH

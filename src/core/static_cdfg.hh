/**
 * @file
 * StaticCdfg: the statically elaborated control/data-flow graph.
 *
 * gem5-SALAM's "LLVM Interface" parses the kernel IR once, links
 * every instruction to a virtual functional unit and register, and
 * produces the static skeleton of the datapath arranged at basic-
 * block granularity. The runtime engine instantiates its dynamic
 * CDFG from this structure, and the static power/area estimates come
 * straight from it — independent of any input data (the property
 * trace-based simulators lack).
 */

#ifndef SALAM_CORE_STATIC_CDFG_HH
#define SALAM_CORE_STATIC_CDFG_HH

#include <array>
#include <unordered_map>
#include <utility>
#include <vector>

#include "device_config.hh"
#include "hw/power_model.hh"
#include "ir/eval.hh"
#include "ir/function.hh"

namespace salam::core
{

/**
 * Precomputed binding recipe for one operand slot, resolved once at
 * elaboration so the runtime engine's block import runs on dense
 * integer indices instead of pointer-keyed map lookups.
 */
struct OperandPlan
{
    enum class Kind : unsigned char
    {
        /** Pre-evaluated constant; `constant` holds the value. */
        Constant,
        /** Block/function reference: carries no data. */
        Control,
        /**
         * Produced by another instruction: check the live instance
         * table at `producerId` first, then the committed-value
         * slot at `valueId`.
         */
        Producer,
        /** Function argument: read committed-value slot `valueId`. */
        Committed,
    };

    Kind kind = Kind::Control;
    /** Static id of the producing instruction (Producer only). */
    unsigned producerId = 0;
    /** Dense committed-value slot (Producer and Committed). */
    unsigned valueId = 0;
    /** The evaluated constant (Constant only). */
    ir::RuntimeValue constant{};
};

/** Static information about one instruction in the datapath. */
struct StaticInstInfo
{
    const ir::Instruction *inst = nullptr;
    /** Unique id across the function (reservation order). */
    unsigned id = 0;
    hw::FuType fu = hw::FuType::None;
    /** Dedicated unit index within its type pool (1-to-1 map). */
    unsigned fuUnit = 0;
    unsigned latency = 0;
    unsigned initiationInterval = 1;
    /** Result register width in bits (0 for void results). */
    unsigned resultBits = 0;

    /** Dense committed-value slot this result commits into. */
    unsigned resultValueId = 0;

    bool isPhi = false;

    /** Per-operand binding plans (empty for phis). */
    std::vector<OperandPlan> operands;

    /** Phi only: (predecessor block id, plan) per incoming edge. */
    std::vector<std::pair<unsigned, OperandPlan>> phiIncoming;
};

/** Static information about one basic block. */
struct StaticBlockInfo
{
    const ir::BasicBlock *block = nullptr;
    /** Dense block id, in function block order. */
    unsigned id = 0;
    /** Instruction ids are contiguous: [firstInstId, +numInsts). */
    unsigned firstInstId = 0;
    unsigned numInsts = 0;
};

/** The elaborated datapath skeleton. */
class StaticCdfg
{
  public:
    /**
     * Elaborate @p fn under @p config: map instructions to units,
     * size the register file, and compute static power and area.
     */
    StaticCdfg(const ir::Function &fn, const DeviceConfig &config);

    const ir::Function &function() const { return *fn; }

    const StaticInstInfo &info(const ir::Instruction *inst) const;

    /** Look up by dense instruction id (the hot-path accessor). */
    const StaticInstInfo &infoById(unsigned id) const
    { return infoVec[id]; }

    const StaticBlockInfo &blockInfo(const ir::BasicBlock *b) const;

    const StaticBlockInfo &blockInfoById(unsigned id) const
    { return blockInfos[id]; }

    std::size_t numBlocks() const { return blockInfos.size(); }

    /**
     * Size of the dense committed-value space: arguments take slots
     * [0, numArguments), instruction results take
     * numArguments + StaticInstInfo::id.
     */
    std::size_t numValueIds() const
    { return fn->numArguments() + infoVec.size(); }

    /** Instantiated units of @p type (after applying limits). */
    unsigned fuCount(hw::FuType type) const
    { return fuCounts[static_cast<std::size_t>(type)]; }

    /** Static instructions mapped to @p type (before limits). */
    unsigned fuDemand(hw::FuType type) const
    { return fuDemands[static_cast<std::size_t>(type)]; }

    /** Total internal register bits in the datapath. */
    std::uint64_t registerBits() const { return regBits; }

    std::size_t numInstructions() const { return infoVec.size(); }

    /** Leakage power of functional units + registers (mW). */
    double staticFuPowerMw() const { return staticFuMw; }

    double staticRegisterPowerMw() const { return staticRegMw; }

    /** Datapath area (FUs + registers), excluding memories. */
    hw::AreaBreakdown area() const { return areas; }

  private:
    /** Build the per-operand binding plans (after ids exist). */
    void buildPlans();

    OperandPlan planFor(const ir::Value *operand,
                        const ir::Instruction *user) const;

    const ir::Function *fn;
    /** All instruction infos, indexed by dense id. */
    std::vector<StaticInstInfo> infoVec;
    std::unordered_map<const ir::Instruction *, unsigned> idOf;
    std::vector<StaticBlockInfo> blockInfos;
    std::unordered_map<const ir::BasicBlock *, unsigned> blockIdOf;
    std::array<unsigned, hw::numFuTypes> fuCounts{};
    std::array<unsigned, hw::numFuTypes> fuDemands{};
    std::uint64_t regBits = 0;
    double staticFuMw = 0.0;
    double staticRegMw = 0.0;
    hw::AreaBreakdown areas;
};

} // namespace salam::core

#endif // SALAM_CORE_STATIC_CDFG_HH

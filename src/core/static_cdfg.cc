#include "static_cdfg.hh"

#include "sim/logging.hh"

namespace salam::core
{

using namespace salam::ir;
using namespace salam::hw;

StaticCdfg::StaticCdfg(const Function &fn, const DeviceConfig &config)
    : fn(&fn)
{
    const HardwareProfile &profile = config.profile;

    unsigned id = 0;
    for (std::size_t b = 0; b < fn.numBlocks(); ++b) {
        const BasicBlock *block = fn.block(b);
        for (const auto &inst : *block) {
            StaticInstInfo info;
            info.inst = inst.get();
            info.id = id++;
            info.fu = fuTypeFor(*inst);
            info.latency = profile.latencyFor(*inst);
            info.initiationInterval =
                info.fu == FuType::None
                    ? 1
                    : profile.fu(info.fu).initiationInterval;
            if (!inst->type()->isVoid())
                info.resultBits = inst->type()->bitWidth();

            std::size_t fu_index = static_cast<std::size_t>(info.fu);
            if (info.fu != FuType::None) {
                info.fuUnit = fuDemands[fu_index];
                ++fuDemands[fu_index];
            }
            regBits += info.resultBits;

            infoMap.emplace(inst.get(), info);
            infos.push_back(inst.get());
        }
    }

    // Apply resource constraints: the instantiated count is the
    // demand (1-to-1 default) or the user's cap, whichever is lower.
    for (std::size_t t = 0; t < numFuTypes; ++t) {
        unsigned demand = fuDemands[t];
        unsigned limit = config.fuLimits[t];
        fuCounts[t] = (limit == 0) ? demand
                                   : std::min(demand, limit);
        // Re-bind units for capped types (round-robin over the pool).
        if (limit != 0 && fuCounts[t] < demand) {
            unsigned next = 0;
            for (const ir::Instruction *inst : infos) {
                auto &info = infoMap.at(inst);
                if (static_cast<std::size_t>(info.fu) == t) {
                    info.fuUnit = next;
                    next = (next + 1) % fuCounts[t];
                }
            }
        }
    }

    // Static (leakage) power and area from the instantiated units.
    for (std::size_t t = 0; t < numFuTypes; ++t) {
        const FuParams &params =
            profile.fu(static_cast<FuType>(t));
        staticFuMw += fuCounts[t] * params.leakagePowerMw;
        areas.fuUm2 += fuCounts[t] * params.areaUm2;
    }
    const RegisterParams &regs = profile.registers();
    staticRegMw = static_cast<double>(regBits) *
        regs.leakagePowerMwPerBit;
    areas.registerUm2 = static_cast<double>(regBits) *
        regs.areaUm2PerBit;
}

const StaticInstInfo &
StaticCdfg::info(const ir::Instruction *inst) const
{
    auto it = infoMap.find(inst);
    if (it == infoMap.end())
        panic("instruction not in static CDFG");
    return it->second;
}

} // namespace salam::core

#include "static_cdfg.hh"

#include "sim/logging.hh"

namespace salam::core
{

using namespace salam::ir;
using namespace salam::hw;

StaticCdfg::StaticCdfg(const Function &fn, const DeviceConfig &config)
    : fn(&fn)
{
    const HardwareProfile &profile = config.profile;

    unsigned id = 0;
    for (std::size_t b = 0; b < fn.numBlocks(); ++b) {
        const BasicBlock *block = fn.block(b);
        StaticBlockInfo binfo;
        binfo.block = block;
        binfo.id = static_cast<unsigned>(b);
        binfo.firstInstId = id;
        binfo.numInsts = static_cast<unsigned>(block->size());
        blockIdOf.emplace(block, binfo.id);
        blockInfos.push_back(binfo);
        for (const auto &inst : *block) {
            StaticInstInfo info;
            info.inst = inst.get();
            info.id = id++;
            info.resultValueId =
                static_cast<unsigned>(fn.numArguments()) + info.id;
            info.isPhi = inst->opcode() == Opcode::Phi;
            info.fu = fuTypeFor(*inst);
            info.latency = profile.latencyFor(*inst);
            info.initiationInterval =
                info.fu == FuType::None
                    ? 1
                    : profile.fu(info.fu).initiationInterval;
            if (!inst->type()->isVoid())
                info.resultBits = inst->type()->bitWidth();

            std::size_t fu_index = static_cast<std::size_t>(info.fu);
            if (info.fu != FuType::None) {
                info.fuUnit = fuDemands[fu_index];
                ++fuDemands[fu_index];
            }
            regBits += info.resultBits;

            idOf.emplace(inst.get(), info.id);
            infoVec.push_back(std::move(info));
        }
    }

    buildPlans();

    // Apply resource constraints: the instantiated count is the
    // demand (1-to-1 default) or the user's cap, whichever is lower.
    for (std::size_t t = 0; t < numFuTypes; ++t) {
        unsigned demand = fuDemands[t];
        unsigned limit = config.fuLimits[t];
        fuCounts[t] = (limit == 0) ? demand
                                   : std::min(demand, limit);
        // Re-bind units for capped types (round-robin over the pool).
        if (limit != 0 && fuCounts[t] < demand) {
            unsigned next = 0;
            for (StaticInstInfo &info : infoVec) {
                if (static_cast<std::size_t>(info.fu) == t) {
                    info.fuUnit = next;
                    next = (next + 1) % fuCounts[t];
                }
            }
        }
    }

    // Static (leakage) power and area from the instantiated units.
    for (std::size_t t = 0; t < numFuTypes; ++t) {
        const FuParams &params =
            profile.fu(static_cast<FuType>(t));
        staticFuMw += fuCounts[t] * params.leakagePowerMw;
        areas.fuUm2 += fuCounts[t] * params.areaUm2;
    }
    const RegisterParams &regs = profile.registers();
    staticRegMw = static_cast<double>(regBits) *
        regs.leakagePowerMwPerBit;
    areas.registerUm2 = static_cast<double>(regBits) *
        regs.areaUm2PerBit;
}

OperandPlan
StaticCdfg::planFor(const Value *operand,
                    const Instruction *user) const
{
    OperandPlan plan;
    if (operand->isConstant()) {
        plan.kind = OperandPlan::Kind::Constant;
        plan.constant = evalConstant(operand);
        return plan;
    }
    switch (operand->valueKind()) {
      case Value::ValueKind::BasicBlock:
      case Value::ValueKind::Function:
        plan.kind = OperandPlan::Kind::Control;
        return plan;
      case Value::ValueKind::Instruction: {
        auto it = idOf.find(
            static_cast<const Instruction *>(operand));
        if (it == idOf.end()) {
            panic("engine: operand %%%s of %%%s is outside the "
                  "elaborated function",
                  operand->name().c_str(), user->name().c_str());
        }
        plan.kind = OperandPlan::Kind::Producer;
        plan.producerId = it->second;
        plan.valueId =
            static_cast<unsigned>(fn->numArguments()) + it->second;
        return plan;
      }
      case Value::ValueKind::Argument:
        plan.kind = OperandPlan::Kind::Committed;
        plan.valueId =
            static_cast<const Argument *>(operand)->index();
        return plan;
      default:
        panic("engine: operand %%%s of %%%s has no value",
              operand->name().c_str(), user->name().c_str());
    }
}

void
StaticCdfg::buildPlans()
{
    // A second pass so Producer plans can reference forward ids
    // (loop-carried phis name instructions from later blocks).
    for (StaticInstInfo &info : infoVec) {
        const Instruction *inst = info.inst;
        if (info.isPhi) {
            const auto *phi = static_cast<const PhiInst *>(inst);
            for (std::size_t i = 0; i < phi->numIncoming(); ++i) {
                auto bit = blockIdOf.find(phi->incomingBlock(i));
                if (bit == blockIdOf.end()) {
                    panic("phi %%%s names a block outside the "
                          "function", phi->name().c_str());
                }
                info.phiIncoming.emplace_back(
                    bit->second,
                    planFor(phi->incomingValue(i), inst));
            }
            continue;
        }
        info.operands.reserve(inst->numOperands());
        for (std::size_t o = 0; o < inst->numOperands(); ++o)
            info.operands.push_back(planFor(inst->operand(o), inst));
    }
}

const StaticInstInfo &
StaticCdfg::info(const ir::Instruction *inst) const
{
    auto it = idOf.find(inst);
    if (it == idOf.end())
        panic("instruction not in static CDFG");
    return infoVec[it->second];
}

const StaticBlockInfo &
StaticCdfg::blockInfo(const ir::BasicBlock *b) const
{
    auto it = blockIdOf.find(b);
    if (it == blockIdOf.end())
        panic("block not in static CDFG");
    return blockInfos[it->second];
}

} // namespace salam::core

#include "dma.hh"

#include <algorithm>

#include "inject/fault_injector.hh"

namespace salam::core
{

using namespace salam::mem;

Dma::Dma(Simulation &sim, std::string name, Tick clock_period,
         const DmaConfig &config)
    : ClockedObject(sim, std::move(name), clock_period), cfg(config),
      pioPort(*this), dmaPort(*this),
      mmrEvent([this] { sendMmrResponses(); },
               this->name() + ".mmr", Event::memoryResponsePri,
               obs::HostPhase::MemoryModel),
      pumpEvent([this] { pump(); }, this->name() + ".pump",
                Event::defaultPri, obs::HostPhase::MemoryModel)
{
    if (cfg.burstBytes == 0 || cfg.maxOutstanding == 0)
        fatal("%s: bad DMA configuration", this->name().c_str());
}

void
Dma::init()
{
    StatRegistry &reg = simulation().stats();
    const std::string n = name();
    reg.addFormula(n + ".dma.bytes_moved", "payload bytes moved",
                   [this] {
                       return static_cast<double>(totalBytes);
                   });
    reg.addFormula(n + ".dma.transfers", "transfers completed",
                   [this] {
                       return static_cast<double>(transfersCompleted);
                   });
    reg.addFormula(n + ".dma.last_transfer_ticks",
                   "duration of the most recent transfer", [this] {
                       return static_cast<double>(lastDuration);
                   });
    sink = simulation().traceSink();
}

std::uint64_t
Dma::readReg(unsigned index) const
{
    SALAM_ASSERT(index < regs.size());
    return regs[index];
}

void
Dma::writeReg(unsigned index, std::uint64_t value)
{
    SALAM_ASSERT(index < regs.size());
    if (index == 0) {
        bool start = (value & ctrl_bits::start) != 0 && !active;
        regs[0] = (value & ctrl_bits::irqEnable) |
            (regs[0] & (ctrl_bits::running | ctrl_bits::done));
        if ((value & ctrl_bits::done) == 0)
            regs[0] &= ~ctrl_bits::done;
        if (start)
            startTransfer(regs[1], regs[2], regs[3]);
    } else {
        regs[index] = value;
    }
}

void
Dma::startTransfer(std::uint64_t src, std::uint64_t dst,
                   std::uint64_t bytes)
{
    if (active)
        fatal("%s: transfer started while busy", name().c_str());
    if (bytes == 0) {
        finishTransfer();
        return;
    }
    active = true;
    SALAM_TRACE(DMA,
                "start transfer src=0x%llx dst=0x%llx len=%llu",
                (unsigned long long)src, (unsigned long long)dst,
                (unsigned long long)bytes);
    regs[1] = src;
    regs[2] = dst;
    regs[3] = bytes;
    regs[0] |= ctrl_bits::running;
    regs[0] &= ~ctrl_bits::done;
    srcCursor = src;
    dstCursor = dst;
    bytesRemainingToRead = bytes;
    bytesRemainingToWrite = bytes;
    outstanding = 0;
    startedAt = curTick();
    if (!pumpEvent.scheduled())
        schedule(pumpEvent, clockEdge());
}

void
Dma::pump()
{
    // Refused write bursts have priority: they carry data already
    // read out of the source.
    while (!blockedWrites.empty()) {
        if (!dmaPort.sendTimingReq(blockedWrites.front()))
            return; // retried via recvReqRetry
        blockedWrites.pop_front();
    }
    if (inject::FaultInjector *fi = simulation().faultInjector();
        fi && active && bytesRemainingToRead > 0) {
        if (Tick stall = fi->dmaStall(name())) {
            if (!pumpEvent.scheduled())
                schedule(pumpEvent, curTick() + stall);
            return;
        }
    }
    while (active && bytesRemainingToRead > 0 &&
           outstanding < cfg.maxOutstanding) {
        unsigned chunk = static_cast<unsigned>(std::min<std::uint64_t>(
            cfg.burstBytes, bytesRemainingToRead));
        auto *pkt = new Packet(MemCmd::ReadReq, srcCursor, chunk);
        // Stash the destination for this chunk in the context.
        pkt->context = reinterpret_cast<void *>(dstCursor);
        // Mark the chunk's place in the logical burst train so a
        // burst-aware interconnect can attribute arbitration time.
        pkt->firstBeat = bytesRemainingToRead == regs[3];
        pkt->lastBeat = chunk == bytesRemainingToRead;
        if (!dmaPort.sendTimingReq(pkt)) {
            delete pkt;
            return; // retried via recvReqRetry
        }
        ++outstanding;
        bytesRemainingToRead -= chunk;
        if (cfg.incrementSrc)
            srcCursor += chunk;
        if (cfg.incrementDst)
            dstCursor += chunk;
    }
}

bool
Dma::handleDataResponse(PacketPtr pkt)
{
    if (pkt->cmd() == MemCmd::ReadResp) {
        // Turn the read data around into a write burst.
        auto dst = reinterpret_cast<std::uint64_t>(pkt->context);
        auto *wr = new Packet(MemCmd::WriteReq, dst, pkt->size());
        wr->setData(pkt->data(), pkt->size());
        wr->firstBeat = pkt->firstBeat;
        wr->lastBeat = pkt->lastBeat;
        if (!blockedWrites.empty() || !dmaPort.sendTimingReq(wr)) {
            // Refused (or behind an earlier refusal): keep ordering
            // and resend from pump() on the next retry.
            wr->serviceFlags |= svcQueued;
            blockedWrites.push_back(wr);
        }
        delete pkt;
        return true;
    }

    SALAM_ASSERT(pkt->cmd() == MemCmd::WriteResp);
    SALAM_ASSERT(outstanding > 0);
    --outstanding;
    bytesRemainingToWrite -= pkt->size();
    totalBytes += pkt->size();
    noteProgress();
    delete pkt;
    if (bytesRemainingToWrite == 0) {
        finishTransfer();
    } else if (bytesRemainingToRead > 0 &&
               !pumpEvent.scheduled()) {
        schedule(pumpEvent, clockEdge(Cycles(1)));
    }
    return true;
}

void
Dma::finishTransfer()
{
    active = false;
    lastDuration = curTick() - startedAt;
    ++transfersCompleted;
    SALAM_TRACE(DMA, "transfer done: %llu bytes in %llu ticks",
                (unsigned long long)regs[3],
                (unsigned long long)lastDuration);
    if (sink) {
        sink->recordSlice(
            startedAt, lastDuration, name(), "dma", "transfer",
            {{"bytes", static_cast<double>(regs[3])}});
    }
    // Surface the transfer to the profilers as external busy time —
    // DMA traffic is not part of any instruction graph but often
    // explains where wall-clock went.
    simulation().noteExternalWait(name(), lastDuration);
    regs[0] &= ~ctrl_bits::running;
    regs[0] |= ctrl_bits::done;
    if ((regs[0] & ctrl_bits::irqEnable) && irq) {
        if (inject::FaultInjector *fi = simulation().faultInjector();
            fi && fi->dropIrq(name())) {
            return; // completion interrupt lost in flight
        }
        irq();
    }
}

void
Dma::dumpDiagnostics(obs::JsonBuilder &json) const
{
    json.field("active", active);
    json.field("outstanding_bursts", std::uint64_t(outstanding));
    json.field("bytes_remaining_to_read", bytesRemainingToRead);
    json.field("bytes_remaining_to_write", bytesRemainingToWrite);
    json.field("blocked_writes",
               static_cast<std::uint64_t>(blockedWrites.size()));
    json.field("src_cursor", srcCursor).field("dst_cursor", dstCursor);
    json.beginArray("regs");
    for (std::uint64_t reg : regs)
        json.value(reg);
    json.endArray();
}

std::string
Dma::stuckReason() const
{
    if (!blockedWrites.empty()) {
        return std::to_string(blockedWrites.size()) +
               " write burst(s) awaiting a downstream retry";
    }
    if (active && outstanding > 0) {
        return std::to_string(outstanding) +
               " read burst(s) in flight with no response";
    }
    if (active) {
        return "transfer active but idle (" +
               std::to_string(bytesRemainingToWrite) +
               " bytes unwritten)";
    }
    return {};
}

bool
Dma::handleMmrAccess(PacketPtr pkt)
{
    SALAM_ASSERT(cfg.mmrRange.contains(pkt->addr(), pkt->size()));
    SALAM_ASSERT(pkt->size() == 8);
    unsigned index = static_cast<unsigned>(
        (pkt->addr() - cfg.mmrRange.start) / 8);
    if (pkt->cmd() == MemCmd::ReadReq) {
        std::uint64_t value = readReg(index);
        pkt->setData(&value, 8);
    } else {
        std::uint64_t value = 0;
        pkt->copyData(&value, 8);
        writeReg(index, value);
    }
    pkt->makeResponse();
    mmrResponses.push_back(PendingMmr{pkt, clockEdge(Cycles(1))});
    if (!mmrEvent.scheduled())
        schedule(mmrEvent, mmrResponses.front().readyAt);
    return true;
}

void
Dma::sendMmrResponses()
{
    while (!mmrResponses.empty()) {
        PendingMmr &front = mmrResponses.front();
        if (front.readyAt > curTick()) {
            if (!mmrEvent.scheduled())
                schedule(mmrEvent, front.readyAt);
            return;
        }
        if (!pioPort.sendTimingResp(front.pkt))
            return;
        mmrResponses.pop_front();
    }
}

} // namespace salam::core

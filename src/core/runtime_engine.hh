/**
 * @file
 * RuntimeEngine: gem5-SALAM's dynamic LLVM runtime execution engine.
 *
 * This is the paper's "execute-in-execute" model (Sec. III-B). The
 * engine maintains:
 *
 *  - a reservation queue of dynamic instructions, imported at basic-
 *    block granularity from the static CDFG;
 *  - a compute queue of in-flight operations occupying functional
 *    units until their latency elapses;
 *  - asynchronous read/write memory queues that forward requests to
 *    the communications interface and commit on response.
 *
 * Dynamic dependencies are generated as instructions enter the
 *  reservation queue: RAW edges to the most recent uncommitted
 * producer of each operand, plus WAW/WAR constraints against the
 * previous dynamic instance of the same static instruction and its
 * readers. Basic-block terminators import the successor block
 * immediately after evaluation, which is what enables loop pipelining
 * and correct data-dependent control — the behaviours trace-based
 * models cannot capture.
 *
 * The engine is a plain clock-stepped class (no SimObject coupling)
 * so it can be unit-tested against a scripted memory interface; the
 * ComputeUnit SimObject drives it inside a full system.
 */

#ifndef SALAM_CORE_RUNTIME_ENGINE_HH
#define SALAM_CORE_RUNTIME_ENGINE_HH

#include <array>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "dyn_trace.hh"
#include "ir/eval.hh"
#include "obs/json.hh"
#include "obs/profiler.hh"
#include "obs/trace_sink.hh"
#include "sim/statistics.hh"
#include "sim/types.hh"
#include "static_cdfg.hh"

namespace salam::core
{

/** One dynamic instruction in flight. */
struct DynInst
{
    const ir::Instruction *inst = nullptr;
    const StaticInstInfo *staticInfo = nullptr;
    std::uint64_t seq = 0;

    /** First cycle this instance may issue (block-import fence). */
    std::uint64_t minIssueCycle = 0;

    bool issued = false;
    bool committed = false;

    /** Dynamic consumers that have not issued yet (WAR tracking). */
    unsigned unissuedReaders = 0;

    /** Previous dynamic instance of the same static instruction. */
    DynInst *prevInstance = nullptr;

    /** Next dynamic instance (for safe window retirement). */
    DynInst *nextInstance = nullptr;

    /** Producer instance for each operand (null when committed). */
    std::vector<DynInst *> producers;

    /** Captured operand values (filled at issue). */
    std::vector<ir::RuntimeValue> operandValues;

    ir::RuntimeValue result;

    /** Cycle the result commits (valid once issued, compute ops). */
    std::uint64_t commitCycle = 0;
    std::uint64_t issueCycle = 0;

    /** Tick at issue (recorded only while event tracing is on). */
    Tick issueTick = 0;

    // Memory-op state.
    bool isLoad = false;
    bool isStore = false;
    bool addrKnown = false;
    bool memInFlight = false;
    std::uint64_t memAddr = 0;
    unsigned memSize = 0;
    /** Position in program memory order (disambiguation). */
    std::uint64_t memSeq = 0;

    // Profiling state, maintained only while a profiler is attached.
    /** Commit cycle of the latest dynamic operand producer. */
    std::uint64_t prodReadyCycle = 0;
    /** That producer's seq; obs::noProfSeq without one. */
    std::uint64_t prodParentSeq = obs::noProfSeq;
    /** Seq of the terminator that imported this instance. */
    std::uint64_t ctrlParentSeq = obs::noProfSeq;
    /**
     * Cause for the control link segment. Control for a prompt
     * import; a memory cause when the import was deferred mostly
     * behind in-flight memory operations.
     */
    obs::ProfCause ctrlLinkCause = obs::ProfCause::Control;
    /** Last reason this instance was seen blocked while ready. */
    obs::ProfCause waitCause = obs::ProfCause::DataDep;
    /** mem::Packet service annotations copied from the response. */
    unsigned memServiceFlags = 0;

    bool isMemory() const { return isLoad || isStore; }

    /**
     * Return to freshly-constructed state, keeping the capacity of
     * the producer/operand vectors (freelist-arena recycling).
     */
    void
    reset()
    {
        inst = nullptr;
        staticInfo = nullptr;
        seq = 0;
        minIssueCycle = 0;
        issued = false;
        committed = false;
        unissuedReaders = 0;
        prevInstance = nullptr;
        nextInstance = nullptr;
        producers.clear();
        operandValues.clear();
        result = ir::RuntimeValue{};
        commitCycle = 0;
        issueCycle = 0;
        issueTick = 0;
        isLoad = false;
        isStore = false;
        addrKnown = false;
        memInFlight = false;
        memAddr = 0;
        memSize = 0;
        memSeq = 0;
        prodReadyCycle = 0;
        prodParentSeq = obs::noProfSeq;
        ctrlParentSeq = obs::noProfSeq;
        ctrlLinkCause = obs::ProfCause::Control;
        waitCause = obs::ProfCause::DataDep;
        memServiceFlags = 0;
    }
};

/** Per-run statistics, the raw material for Figs. 13-15. */
struct EngineStats
{
    std::uint64_t totalCycles = 0;
    /** Cycles with at least one new instruction issued. */
    std::uint64_t newExecCycles = 0;
    /** Active cycles where nothing new could be scheduled. */
    std::uint64_t stallCycles = 0;

    // Stall-cycle breakdown by what was in flight while stalled.
    std::uint64_t stallLoadOnly = 0;
    std::uint64_t stallStoreOnly = 0;
    std::uint64_t stallComputeOnly = 0;
    std::uint64_t stallLoadCompute = 0;
    std::uint64_t stallStoreCompute = 0;
    std::uint64_t stallLoadStore = 0;
    std::uint64_t stallLoadStoreCompute = 0;
    std::uint64_t stallEmpty = 0;

    // Issue counts.
    std::uint64_t loadsIssued = 0;
    std::uint64_t storesIssued = 0;
    std::uint64_t fpOpsIssued = 0;
    std::uint64_t intOpsIssued = 0;
    std::uint64_t otherOpsIssued = 0;
    std::uint64_t dynamicInstructions = 0;
    /** Dynamic instructions retired (forward-progress signal). */
    std::uint64_t committedInstructions = 0;

    // Allocation pressure (host telemetry): DynInst requests served
    // from the freelist vs ones that grew the arena with a heap
    // allocation.
    std::uint64_t arenaHits = 0;
    std::uint64_t arenaMisses = 0;

    // Cycle-granularity scheduling overlap (Fig. 15).
    std::uint64_t cyclesWithLoadIssue = 0;
    std::uint64_t cyclesWithStoreIssue = 0;
    std::uint64_t cyclesWithFpIssue = 0;
    std::uint64_t cyclesWithLoadAndStoreIssue = 0;
    std::uint64_t cyclesWithLoadAndFpIssue = 0;

    /** Σ over cycles of busy units, per FU type (occupancy). */
    std::array<std::uint64_t, hw::numFuTypes> fuBusyCycleSum{};

    // Dynamic energy (pJ) accumulated over the run.
    double fuEnergyPj = 0.0;
    double registerReadEnergyPj = 0.0;
    double registerWriteEnergyPj = 0.0;

    /** Stalled cycles where a load (and possibly compute) blocked. */
    std::uint64_t
    stallsInvolvingMemory() const
    {
        return stallLoadOnly + stallStoreOnly + stallLoadStore +
               stallLoadCompute + stallStoreCompute +
               stallLoadStoreCompute;
    }
};

/**
 * Observability attachments for one engine. All fields are optional;
 * a default-constructed observer keeps the engine silent. The owner
 * (ComputeUnit) wires the registry-owned stats and the simulation's
 * trace sink here; the plain clock-stepped engine stays decoupled
 * from SimObject and can still be unit-tested bare.
 */
struct EngineObserver
{
    /** Object name used in trace lines and event records. */
    std::string name = "engine";

    /** Tick stamp source; when null, the cycle count is the stamp. */
    std::function<Tick()> now;

    /** Ticks per engine cycle (for event durations). */
    Tick cyclePeriod = 1;

    /** Event-trace sink (counters + per-op slices); may be null. */
    obs::TraceSink *sink = nullptr;

    /** Sampled each cycle with loads+stores in flight. */
    Histogram *memQueueOccupancy = nullptr;

    /** Sampled each cycle with the reservation-queue depth. */
    Histogram *reservationOccupancy = nullptr;

    /** Stall-cause lanes, in RuntimeEngine::stallLaneNames() order. */
    VectorStat *stallCauses = nullptr;

    /** Issue-class lanes, in RuntimeEngine::issueLaneNames() order. */
    VectorStat *issueClasses = nullptr;

    /** Dynamic-CDFG recorder; one node per commit. May be null. */
    obs::Profiler *profiler = nullptr;
};

/**
 * The owner-side interface the engine calls into (ComputeUnit in a
 * full system, a scripted stub in unit tests). A narrow virtual
 * interface instead of per-call std::function hooks: these are the
 * engine's hottest upcalls (every memory issue, every cycle).
 */
class EngineClient
{
  public:
    virtual ~EngineClient() = default;

    /**
     * Issue a memory operation to the communications interface.
     * For stores, op->operandValues[0] holds the data. Returns
     * false when the interface cannot accept it this cycle.
     */
    virtual bool engineIssueMemory(DynInst *op) = 0;

    /** Called when the engine has future work to do. */
    virtual void engineRequestTick() = 0;

    /** Called once when execution completes. */
    virtual void engineDone() {}
};

/** The dynamic engine. */
class RuntimeEngine
{
  public:
    RuntimeEngine(const StaticCdfg &cdfg, const DeviceConfig &config,
                  EngineClient &client);

    /** Begin execution with the given argument values. */
    void start(const std::vector<ir::RuntimeValue> &args);

    /** Advance one accelerator clock cycle. */
    void cycle();

    /**
     * Deliver a memory response for @p op. Loads carry @p data of
     * @p size bytes. May arrive between engine cycles.
     */
    void memoryResponse(DynInst *op, const std::uint8_t *data,
                        unsigned size);

    bool running() const { return active; }

    bool finished() const { return completed; }

    std::uint64_t currentCycle() const { return cycleCount; }

    const EngineStats &stats() const { return engineStats; }

    const DeviceConfig &config() const { return cfg; }

    const StaticCdfg &cdfg() const { return staticCdfg; }

    /** In-flight loads (read queue occupancy). */
    unsigned readsInFlight() const { return loadsInFlight; }

    unsigned writesInFlight() const { return storesInFlight; }

    /** Attach (or replace) the observability wiring. */
    void setObserver(EngineObserver obs) { observer = std::move(obs); }

    /**
     * Capture this run's dynamic trace into @p trace (see
     * dyn_trace.hh): one record per dynamic instance, with branch
     * outcomes and resolved addresses filled in as the run decides
     * them. Attach before start(); pass nullptr to detach. The
     * engine only appends — identity fields (kernelKey, ...) are the
     * caller's.
     */
    void setTraceCapture(DynTrace *trace) { capture = trace; }

    /** Lane names for EngineObserver::stallCauses, in lane order. */
    static const std::vector<std::string> &stallLaneNames();

    /** Lane names for EngineObserver::issueClasses, in lane order. */
    static const std::vector<std::string> &issueLaneNames();

    /**
     * Append the scheduler's live state — reservation, compute, and
     * memory queues, in-flight counts, pending block import — to a
     * watchdog state dump.
     */
    void dumpState(obs::JsonBuilder &json) const;

  private:
    /** Stall-cause lane indices (stallLaneNames() order). */
    enum StallLane : std::size_t
    {
        laneLoadOnly = 0,
        laneStoreOnly,
        laneComputeOnly,
        laneLoadCompute,
        laneStoreCompute,
        laneLoadStore,
        laneLoadStoreCompute,
        laneEmpty,
        numStallLanes
    };

    /** Issue-class lane indices (issueLaneNames() order). */
    enum IssueLane : std::size_t
    {
        laneLoad = 0,
        laneStore,
        laneFp,
        laneInt,
        laneOther,
        numIssueLanes
    };

    /** Trace timestamp: wall tick when wired, cycle count bare. */
    Tick
    obsNow() const
    {
        return observer.now ? observer.now() : Tick{cycleCount};
    }
    /** Import @p block's instructions into the reservation queue. */
    void importBlock(const ir::BasicBlock *block,
                     const ir::BasicBlock *from);

    /** Create the dynamic instance of @p info's instruction. */
    DynInst *createDynInst(const StaticInstInfo &info);

    /** Pop a recycled DynInst from the arena (or grow it). */
    DynInst *acquireDynInst();

    /** Return a retired DynInst to the arena freelist. */
    void releaseDynInst(DynInst *di) { freeList.push_back(di); }

    /** Reservation-queue entries alive right now: during the issue
     *  scan, consumed entries await compaction and must not count
     *  against the queue capacity. */
    std::size_t
    reservationLive() const
    {
        return reservationQueue.size() - rsvConsumed;
    }

    bool operandsReady(const DynInst &di) const;

    /** Capture operand values (producers committed by now). */
    void captureOperands(DynInst *di);

    bool fuAvailable(const DynInst &di) const;

    void occupyFu(DynInst *di);

    /** Try to resolve a memory op's effective address. */
    void resolveAddress(DynInst *di);

    /** Rebuild the per-cycle memory disambiguation summary. */
    void buildMemorySummary();

    /** Memory ordering: may @p di access memory now? */
    bool memoryOrderingAllows(const DynInst &di) const;

    void issueCompute(DynInst *di);

    void commit(DynInst *di);

    /** Emit @p di's dynamic-CDFG node (profiler is attached). */
    void recordProfile(DynInst *di);

    /** Drop fully retired instructions from the window front. */
    void pruneWindow();

    void recordCycleStats(bool issued_any, unsigned loads_issued,
                          unsigned stores_issued,
                          unsigned fp_issued);

    void finish();

    const StaticCdfg &staticCdfg;
    DeviceConfig cfg;
    EngineClient &client;

    bool active = false;
    bool completed = false;
    bool retSeen = false;
    std::uint64_t cycleCount = 0;
    std::uint64_t nextSeq = 0;

    /**
     * The instruction window (reservation + in-flight), oldest
     * first. Entries are arena-pooled: retirement returns them to
     * the freelist instead of deallocating.
     */
    std::deque<DynInst *> window;

    /** Backing storage for every DynInst ever created (arena). */
    std::vector<std::unique_ptr<DynInst>> arena;

    /** Retired instances ready for reuse. */
    std::vector<DynInst *> freeList;

    /**
     * Unissued instructions, in program order. The per-cycle issue
     * scan compacts in place: consumed entries are counted in
     * rsvConsumed until the scan's single erase at the end.
     */
    std::vector<DynInst *> reservationQueue;

    /** Entries consumed so far by the in-progress issue scan. */
    std::size_t rsvConsumed = 0;

    /** Issued compute ops waiting to commit, ordered by cycle. */
    std::vector<DynInst *> computeQueue;

    /** Memory ops in window, in program order (for ordering). */
    std::deque<DynInst *> memoryOrder;

    /** One uncommitted memory reference in the summary. */
    struct MemRef
    {
        std::uint64_t seq;
        std::uint64_t addr;
        unsigned size;
    };

    /** Per-cycle disambiguation summary over memoryOrder. */
    struct MemorySummary
    {
        std::uint64_t unknownStoreSeq = ~0ull;
        std::uint64_t unknownLoadSeq = ~0ull;
        std::vector<MemRef> stores;
        std::vector<MemRef> loads;
    };

    MemorySummary memSummary;
    std::uint64_t nextMemSeq = 0;

    /**
     * Latest in-window dynamic instance per static instruction,
     * indexed by StaticInstInfo::id (null = none in window).
     */
    std::vector<DynInst *> latestInstance;

    /**
     * Last committed value per static value, indexed by the dense
     * value id (arguments first, then instruction results);
     * committedKnown marks slots that have ever committed.
     */
    std::vector<ir::RuntimeValue> committedValues;
    std::vector<unsigned char> committedKnown;

    /** Pool FU release times: per type, per unit, free-at cycle. */
    std::array<std::vector<std::uint64_t>, hw::numFuTypes> poolFreeAt;

    /** Pending block import deferred by a full reservation queue. */
    const ir::BasicBlock *pendingImport = nullptr;
    const ir::BasicBlock *pendingImportFrom = nullptr;

    /** Terminator seq behind the import in progress (profiling). */
    std::uint64_t importCtrlSeq = obs::noProfSeq;
    std::uint64_t pendingImportCtrlSeq = obs::noProfSeq;

    /** Link cause handed to instances of the import in progress. */
    obs::ProfCause importCtrlCause = obs::ProfCause::Control;

    /**
     * Cycles the pending import has been deferred with (memory ops
     * in flight) vs. (no memory in flight). The majority decides
     * whether the eventual control link is charged to the memory
     * system or to control flow.
     */
    std::uint64_t importMemWaitCycles = 0;
    std::uint64_t importOtherWaitCycles = 0;


    unsigned loadsInFlight = 0;
    unsigned storesInFlight = 0;
    /** Unissued memory ops in the reservation queue. */
    unsigned pendingLoadOps = 0;
    unsigned pendingStoreOps = 0;
    /** Ready-but-port-blocked memory ops seen this cycle. */
    bool memStallLoadBlocked = false;
    bool memStallStoreBlocked = false;

    EngineStats engineStats;
    EngineObserver observer;

    /** Dynamic-trace capture sink; null = capture off (hot path). */
    DynTrace *capture = nullptr;
};

} // namespace salam::core

#endif // SALAM_CORE_RUNTIME_ENGINE_HH

/**
 * @file
 * Context: the interning arena for types.
 *
 * A Context owns every Type used by the Modules built against it,
 * guaranteeing pointer identity for structurally equal types.
 */

#ifndef SALAM_IR_CONTEXT_HH
#define SALAM_IR_CONTEXT_HH

#include <cstdint>
#include <map>
#include <memory>
#include <tuple>
#include <vector>

#include "type.hh"

namespace salam::ir
{

/** Owns and interns types. Not copyable; Modules reference it. */
class Context
{
  public:
    Context();

    Context(const Context &) = delete;
    Context &operator=(const Context &) = delete;

    const Type *voidType() const { return _void; }

    const Type *labelType() const { return _label; }

    const Type *floatType() const { return _float; }

    const Type *doubleType() const { return _double; }

    const Type *i1() const { return intType(1); }

    const Type *i8() const { return intType(8); }

    const Type *i16() const { return intType(16); }

    const Type *i32() const { return intType(32); }

    const Type *i64() const { return intType(64); }

    /** Intern an arbitrary-width integer type (1..64 bits). */
    const Type *intType(unsigned bits) const;

    /** Intern a pointer to @p pointee. */
    const Type *pointerTo(const Type *pointee) const;

    /** Intern an array of @p count elements of @p elem. */
    const Type *arrayOf(const Type *elem, std::uint64_t count) const;

  private:
    const Type *make(Type::Kind kind, unsigned bits, const Type *elem,
                     std::uint64_t count) const;

    mutable std::vector<std::unique_ptr<Type>> storage;
    mutable std::map<std::tuple<int, unsigned, const Type *,
                                std::uint64_t>,
                     const Type *> interned;

    const Type *_void;
    const Type *_label;
    const Type *_float;
    const Type *_double;
};

} // namespace salam::ir

#endif // SALAM_IR_CONTEXT_HH

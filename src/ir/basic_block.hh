/**
 * @file
 * BasicBlock: an ordered list of instructions ending in a terminator.
 *
 * Basic blocks are the granularity at which gem5-SALAM's reservation
 * queue imports work, so the block structure directly shapes the
 * simulated datapath schedule.
 */

#ifndef SALAM_IR_BASIC_BLOCK_HH
#define SALAM_IR_BASIC_BLOCK_HH

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "instruction.hh"

namespace salam::ir
{

class Function;

/** A basic block; owns its instructions. */
class BasicBlock : public Value
{
  public:
    BasicBlock(const Type *label_type, std::string name)
        : Value(ValueKind::BasicBlock, label_type, std::move(name))
    {}

    Function *parent() const { return _parent; }

    void setParent(Function *f) { _parent = f; }

    /** Append an instruction, taking ownership. */
    Instruction *
    append(std::unique_ptr<Instruction> inst)
    {
        inst->setParent(this);
        instrs.push_back(std::move(inst));
        return instrs.back().get();
    }

    /** Insert an instruction at @p pos, taking ownership. */
    Instruction *
    insert(std::size_t pos, std::unique_ptr<Instruction> inst)
    {
        inst->setParent(this);
        auto it = instrs.begin() + static_cast<std::ptrdiff_t>(pos);
        return instrs.insert(it, std::move(inst))->get();
    }

    /** Remove and destroy the instruction at @p pos. */
    void
    erase(std::size_t pos)
    {
        instrs.erase(instrs.begin() + static_cast<std::ptrdiff_t>(pos));
    }

    /**
     * Remove and return all instructions, leaving the block empty.
     * Used by transforms that rebuild a block in place.
     */
    std::vector<std::unique_ptr<Instruction>>
    takeAll()
    {
        return std::exchange(instrs, {});
    }

    std::size_t size() const { return instrs.size(); }

    bool empty() const { return instrs.empty(); }

    Instruction *instruction(std::size_t i) const
    { return instrs.at(i).get(); }

    /** The block terminator; nullptr while under construction. */
    Instruction *
    terminator() const
    {
        if (instrs.empty() || !instrs.back()->isTerminator())
            return nullptr;
        return instrs.back().get();
    }

    /** Successor blocks derived from the terminator. */
    std::vector<BasicBlock *> successors() const;

    /** All phi nodes, which by construction lead the block. */
    std::vector<PhiInst *> phis() const;

    auto begin() const { return instrs.begin(); }

    auto end() const { return instrs.end(); }

  private:
    Function *_parent = nullptr;
    std::vector<std::unique_ptr<Instruction>> instrs;
};

} // namespace salam::ir

#endif // SALAM_IR_BASIC_BLOCK_HH

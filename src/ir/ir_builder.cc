#include "ir_builder.hh"

#include "sim/logging.hh"

namespace salam::ir
{

Instruction *
IRBuilder::append(std::unique_ptr<Instruction> inst)
{
    if (block == nullptr)
        panic("IRBuilder has no insertion point");
    if (block->terminator() != nullptr)
        panic("appending to already-terminated block '%s'",
              block->name().c_str());
    return block->append(std::move(inst));
}

std::string
IRBuilder::autoName(const std::string &name)
{
    std::string candidate =
        name.empty() ? std::to_string(nextId++) : name;
    // Instruction names must be unique within a function for the
    // printed form to re-parse; suffix repeats the way LLVM does.
    unsigned suffix = 1;
    std::string unique = candidate;
    while (!usedNames.insert(unique).second ||
           (fn != nullptr && fn->findArgument(unique) != nullptr)) {
        unique = candidate + "." + std::to_string(suffix++);
    }
    return unique;
}

std::string
IRBuilder::uniqueLabel(const std::string &name)
{
    if (fn->findBlock(name) == nullptr)
        return name;
    unsigned suffix = 1;
    std::string candidate;
    do {
        candidate = name + "." + std::to_string(suffix++);
    } while (fn->findBlock(candidate) != nullptr);
    return candidate;
}

Value *
IRBuilder::binary(Opcode op, Value *a, Value *b, const std::string &name)
{
    if (a->type() != b->type())
        panic("%s: operand type mismatch (%s vs %s)", opcodeName(op),
              a->type()->toString().c_str(),
              b->type()->toString().c_str());
    return append(std::make_unique<BinaryOp>(op, a, b, autoName(name)));
}

Value *
IRBuilder::icmp(Predicate pred, Value *a, Value *b,
                const std::string &name)
{
    return append(std::make_unique<CmpInst>(
        Opcode::ICmp, pred, ctx.i1(), a, b, autoName(name)));
}

Value *
IRBuilder::fcmp(Predicate pred, Value *a, Value *b,
                const std::string &name)
{
    return append(std::make_unique<CmpInst>(
        Opcode::FCmp, pred, ctx.i1(), a, b, autoName(name)));
}

Value *
IRBuilder::cast(Opcode op, Value *src, const Type *dest,
                const std::string &name)
{
    return append(std::make_unique<CastInst>(op, src, dest,
                                             autoName(name)));
}

Value *
IRBuilder::load(Value *pointer, const std::string &name)
{
    if (!pointer->type()->isPointer())
        panic("load from non-pointer value '%s'",
              pointer->name().c_str());
    return append(std::make_unique<LoadInst>(pointer, autoName(name)));
}

void
IRBuilder::store(Value *value, Value *pointer)
{
    if (!pointer->type()->isPointer())
        panic("store to non-pointer value '%s'",
              pointer->name().c_str());
    append(std::make_unique<StoreInst>(ctx.voidType(), value, pointer));
}

Value *
IRBuilder::gep(const Type *elem, Value *base, Value *index,
               const std::string &name)
{
    return gep(elem, base, std::vector<Value *>{index}, name);
}

Value *
IRBuilder::gep(const Type *source_elem, Value *base,
               const std::vector<Value *> &indices,
               const std::string &name)
{
    if (!base->type()->isPointer())
        panic("gep over non-pointer base '%s'", base->name().c_str());
    // Resolve the result type by walking the indices: the first index
    // scales by the source element type; subsequent indices step into
    // arrays.
    const Type *cur = source_elem;
    for (std::size_t i = 1; i < indices.size(); ++i) {
        if (!cur->isArray())
            panic("gep index %zu into non-array type %s", i,
                  cur->toString().c_str());
        cur = cur->arrayElement();
    }
    const Type *result = ctx.pointerTo(cur);
    return append(std::make_unique<GetElementPtrInst>(
        source_elem, result, base, indices, autoName(name)));
}

PhiInst *
IRBuilder::phi(const Type *type, const std::string &name)
{
    auto inst = std::make_unique<PhiInst>(type, autoName(name));
    PhiInst *raw = inst.get();
    // Phis must lead the block: insert after any existing phis.
    std::size_t pos = 0;
    while (pos < block->size() &&
           block->instruction(pos)->opcode() == Opcode::Phi) {
        ++pos;
    }
    block->insert(pos, std::move(inst));
    return raw;
}

Value *
IRBuilder::select(Value *cond, Value *if_true, Value *if_false,
                  const std::string &name)
{
    if (if_true->type() != if_false->type())
        panic("select arm type mismatch");
    return append(std::make_unique<SelectInst>(cond, if_true, if_false,
                                               autoName(name)));
}

Value *
IRBuilder::call(const Type *type, const std::string &callee,
                const std::vector<Value *> &args, const std::string &name)
{
    return append(std::make_unique<CallInst>(type, callee, args,
                                             autoName(name)));
}

void
IRBuilder::br(BasicBlock *target)
{
    append(std::make_unique<BranchInst>(ctx.voidType(), target));
}

void
IRBuilder::condBr(Value *cond, BasicBlock *if_true, BasicBlock *if_false)
{
    if (cond->type() != ctx.i1())
        panic("branch condition must be i1");
    append(std::make_unique<BranchInst>(ctx.voidType(), cond, if_true,
                                        if_false));
}

void
IRBuilder::ret()
{
    append(std::make_unique<ReturnInst>(ctx.voidType()));
}

void
IRBuilder::ret(Value *value)
{
    append(std::make_unique<ReturnInst>(ctx.voidType(), value));
}

} // namespace salam::ir

/**
 * @file
 * Function and Module containers.
 *
 * A Function is one accelerator kernel: a list of typed arguments (the
 * pointers/scalars the host maps to MMRs) and the basic blocks of its
 * body. A Module owns functions and the constants they reference, and
 * holds the Context used to intern types.
 */

#ifndef SALAM_IR_FUNCTION_HH
#define SALAM_IR_FUNCTION_HH

#include <memory>
#include <string>
#include <vector>

#include "basic_block.hh"
#include "context.hh"
#include "value.hh"

namespace salam::ir
{

class Module;

/** One IR function (an accelerator kernel). */
class Function : public Value
{
  public:
    Function(const Type *fn_marker_type, std::string name,
             const Type *return_type)
        : Value(ValueKind::Function, fn_marker_type, std::move(name)),
          _returnType(return_type)
    {}

    const Type *returnType() const { return _returnType; }

    /** Owning module (set by Module::addFunction). */
    Module *parent() const { return _parent; }

    void setParent(Module *m) { _parent = m; }

    Argument *
    addArgument(const Type *type, std::string name)
    {
        args.push_back(std::make_unique<Argument>(
            type, std::move(name),
            static_cast<unsigned>(args.size())));
        return args.back().get();
    }

    std::size_t numArguments() const { return args.size(); }

    Argument *argument(std::size_t i) const { return args.at(i).get(); }

    /** Argument lookup by name; nullptr when absent. */
    Argument *findArgument(const std::string &name) const;

    BasicBlock *
    addBlock(std::unique_ptr<BasicBlock> block)
    {
        block->setParent(this);
        blocks.push_back(std::move(block));
        return blocks.back().get();
    }

    std::size_t numBlocks() const { return blocks.size(); }

    BasicBlock *block(std::size_t i) const { return blocks.at(i).get(); }

    /** Block lookup by label name; nullptr when absent. */
    BasicBlock *findBlock(const std::string &name) const;

    /** The entry block (first block). */
    BasicBlock *
    entry() const
    {
        return blocks.empty() ? nullptr : blocks.front().get();
    }

    /** Remove block at index @p i (must be unreachable). */
    void eraseBlock(std::size_t i)
    { blocks.erase(blocks.begin() + static_cast<std::ptrdiff_t>(i)); }

    /** Predecessor blocks of @p block, in deterministic order. */
    std::vector<BasicBlock *> predecessors(const BasicBlock *block) const;

    /** Total instruction count across all blocks. */
    std::size_t instructionCount() const;

    auto begin() const { return blocks.begin(); }

    auto end() const { return blocks.end(); }

  private:
    Module *_parent = nullptr;
    const Type *_returnType;
    std::vector<std::unique_ptr<Argument>> args;
    std::vector<std::unique_ptr<BasicBlock>> blocks;
};

/** Top-level IR container; owns functions and interned constants. */
class Module
{
  public:
    explicit Module(std::string name)
        : _name(std::move(name)), ctx(std::make_unique<Context>())
    {}

    const std::string &name() const { return _name; }

    Context &context() { return *ctx; }

    const Context &context() const { return *ctx; }

    Function *
    addFunction(std::string name, const Type *return_type)
    {
        functions.push_back(std::make_unique<Function>(
            ctx->voidType(), std::move(name), return_type));
        functions.back()->setParent(this);
        return functions.back().get();
    }

    std::size_t numFunctions() const { return functions.size(); }

    Function *function(std::size_t i) const
    { return functions.at(i).get(); }

    Function *findFunction(const std::string &name) const;

    /** Intern an integer constant of the given type. */
    ConstantInt *getConstantInt(const Type *type, std::uint64_t bits);

    /** Intern a floating-point constant of the given type. */
    ConstantFP *getConstantFP(const Type *type, double value);

    auto begin() const { return functions.begin(); }

    auto end() const { return functions.end(); }

  private:
    std::string _name;
    std::unique_ptr<Context> ctx;
    std::vector<std::unique_ptr<Function>> functions;
    std::vector<std::unique_ptr<ConstantInt>> intConstants;
    std::vector<std::unique_ptr<ConstantFP>> fpConstants;
};

} // namespace salam::ir

#endif // SALAM_IR_FUNCTION_HH

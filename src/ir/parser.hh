/**
 * @file
 * Parser: reads the LLVM-assembly subset emitted by Printer.
 *
 * Accepts function definitions built from the instruction set in
 * instruction.hh. Diagnostics carry line numbers. Forward references
 * (phi incoming values, branch targets) are resolved with a
 * placeholder-and-patch scheme after the function body is read.
 */

#ifndef SALAM_IR_PARSER_HH
#define SALAM_IR_PARSER_HH

#include <memory>
#include <stdexcept>
#include <string>

#include "function.hh"

namespace salam::ir
{

/** Raised on malformed input; carries a line-annotated message. */
class ParseError : public std::runtime_error
{
  public:
    ParseError(unsigned line, const std::string &message)
        : std::runtime_error("line " + std::to_string(line) + ": " +
                             message),
          _line(line)
    {}

    unsigned line() const { return _line; }

  private:
    unsigned _line;
};

/** Parser front-end. */
class Parser
{
  public:
    /**
     * Parse a module from LLVM-assembly text.
     * @throws ParseError on malformed input.
     */
    static std::unique_ptr<Module>
    parseModule(const std::string &text,
                const std::string &module_name = "parsed");
};

} // namespace salam::ir

#endif // SALAM_IR_PARSER_HH

/**
 * @file
 * Interpreter: functional (untimed) execution of IR functions.
 *
 * Used three ways:
 *  - functional validation of kernels against golden C++ references;
 *  - trace generation for the Aladdin-style baseline simulator;
 *  - computing expected memory images in tests of the timed engine.
 *
 * Memory is abstracted behind MemoryAccessor so the interpreter can
 * run against a flat test memory or a simulated scratchpad image.
 */

#ifndef SALAM_IR_INTERPRETER_HH
#define SALAM_IR_INTERPRETER_HH

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "eval.hh"
#include "function.hh"

namespace salam::ir
{

/** Byte-addressable memory the interpreter executes against. */
class MemoryAccessor
{
  public:
    virtual ~MemoryAccessor() = default;

    virtual void readBytes(std::uint64_t addr, std::size_t size,
                           void *out) = 0;

    virtual void writeBytes(std::uint64_t addr, std::size_t size,
                            const void *in) = 0;

    /** Load a value of @p type at @p addr into a RuntimeValue. */
    RuntimeValue loadValue(const Type *type, std::uint64_t addr);

    /** Store a RuntimeValue of @p type at @p addr. */
    void storeValue(const Type *type, std::uint64_t addr,
                    RuntimeValue value);

    // Typed convenience helpers for populating test memories.

    void writeI32(std::uint64_t addr, std::int32_t v)
    { writeBytes(addr, 4, &v); }

    void writeI64(std::uint64_t addr, std::int64_t v)
    { writeBytes(addr, 8, &v); }

    void writeF32(std::uint64_t addr, float v)
    { writeBytes(addr, 4, &v); }

    void writeF64(std::uint64_t addr, double v)
    { writeBytes(addr, 8, &v); }

    std::int32_t
    readI32(std::uint64_t addr)
    {
        std::int32_t v;
        readBytes(addr, 4, &v);
        return v;
    }

    std::int64_t
    readI64(std::uint64_t addr)
    {
        std::int64_t v;
        readBytes(addr, 8, &v);
        return v;
    }

    float
    readF32(std::uint64_t addr)
    {
        float v;
        readBytes(addr, 4, &v);
        return v;
    }

    double
    readF64(std::uint64_t addr)
    {
        double v;
        readBytes(addr, 8, &v);
        return v;
    }
};

/** Sparse flat memory backed by a page map; zero-initialized. */
class FlatMemory : public MemoryAccessor
{
  public:
    void readBytes(std::uint64_t addr, std::size_t size,
                   void *out) override;

    void writeBytes(std::uint64_t addr, std::size_t size,
                    const void *in) override;

    /** Total bytes touched (for footprint statistics). */
    std::size_t touchedBytes() const
    { return pages.size() * pageSize; }

  private:
    static constexpr std::uint64_t pageSize = 4096;

    std::uint8_t *pageFor(std::uint64_t addr);

    std::map<std::uint64_t, std::vector<std::uint8_t>> pages;
};

/** One executed-instruction record delivered to trace observers. */
struct ExecRecord
{
    const Instruction *inst = nullptr;
    const BasicBlock *block = nullptr;
    RuntimeValue result;
    /** Effective address for load/store, else 0. */
    std::uint64_t memAddr = 0;
    /** Access size for load/store, else 0. */
    std::uint32_t memSize = 0;
    /** Dynamic sequence number. */
    std::uint64_t seq = 0;
};

/** Functional executor for one function at a time. */
class Interpreter
{
  public:
    explicit Interpreter(MemoryAccessor &memory) : mem(memory) {}

    /** Observe every executed instruction (for trace generation). */
    void
    setObserver(std::function<void(const ExecRecord &)> observer)
    {
        onExec = std::move(observer);
    }

    /** Abort execution after this many dynamic instructions. */
    void setStepLimit(std::uint64_t limit) { stepLimit = limit; }

    /**
     * Execute @p fn with the given argument values.
     * @return the function result (undefined for void functions).
     */
    RuntimeValue run(const Function &fn,
                     const std::vector<RuntimeValue> &args);

    std::uint64_t stepsExecuted() const { return steps; }

  private:
    RuntimeValue valueOf(const Value *v) const;

    MemoryAccessor &mem;
    std::function<void(const ExecRecord &)> onExec;
    std::uint64_t stepLimit = 500'000'000;
    std::uint64_t steps = 0;
    std::map<const Value *, RuntimeValue> bindings;
};

} // namespace salam::ir

#endif // SALAM_IR_INTERPRETER_HH

#include "context.hh"

#include "sim/logging.hh"

namespace salam::ir
{

Context::Context()
{
    _void = make(Type::Kind::Void, 0, nullptr, 0);
    _label = make(Type::Kind::Label, 0, nullptr, 0);
    _float = make(Type::Kind::Float, 0, nullptr, 0);
    _double = make(Type::Kind::Double, 0, nullptr, 0);
}

const Type *
Context::make(Type::Kind kind, unsigned bits, const Type *elem,
              std::uint64_t count) const
{
    auto key = std::make_tuple(static_cast<int>(kind), bits, elem, count);
    auto it = interned.find(key);
    if (it != interned.end())
        return it->second;
    storage.emplace_back(new Type(kind, bits, elem, count));
    const Type *type = storage.back().get();
    interned.emplace(key, type);
    return type;
}

const Type *
Context::intType(unsigned bits) const
{
    if (bits == 0 || bits > 64)
        fatal("unsupported integer width i%u", bits);
    return make(Type::Kind::Integer, bits, nullptr, 0);
}

const Type *
Context::pointerTo(const Type *pointee) const
{
    SALAM_ASSERT(pointee != nullptr);
    return make(Type::Kind::Pointer, 0, pointee, 0);
}

const Type *
Context::arrayOf(const Type *elem, std::uint64_t count) const
{
    SALAM_ASSERT(elem != nullptr);
    return make(Type::Kind::Array, 0, elem, count);
}

} // namespace salam::ir

#include "printer.hh"

#include <cstring>
#include <sstream>

#include "sim/logging.hh"

namespace salam::ir
{

namespace
{

std::string
fpHex(double value)
{
    std::uint64_t bits;
    std::memcpy(&bits, &value, sizeof(bits));
    char buf[32];
    std::snprintf(buf, sizeof(buf), "0x%016llX",
                  static_cast<unsigned long long>(bits));
    return buf;
}

} // namespace

std::string
Printer::operandRef(const Value &value)
{
    switch (value.valueKind()) {
      case Value::ValueKind::ConstantInt: {
        const auto &ci = static_cast<const ConstantInt &>(value);
        return std::to_string(ci.sext());
      }
      case Value::ValueKind::ConstantFP: {
        const auto &cf = static_cast<const ConstantFP &>(value);
        return fpHex(cf.value());
      }
      case Value::ValueKind::BasicBlock:
        return "%" + value.name();
      default:
        return "%" + value.name();
    }
}

namespace
{

/** "type ref" pair used in most operand positions. */
std::string
typedRef(const Value &value)
{
    return value.type()->toString() + " " + Printer::operandRef(value);
}

} // namespace

std::string
Printer::toString(const Instruction &inst)
{
    std::ostringstream os;
    Opcode op = inst.opcode();

    if (!inst.type()->isVoid())
        os << "%" << inst.name() << " = ";

    switch (op) {
      case Opcode::ICmp:
      case Opcode::FCmp: {
        const auto &cmp = static_cast<const CmpInst &>(inst);
        os << opcodeName(op) << " " << predicateName(cmp.predicate())
           << " " << cmp.lhs()->type()->toString() << " "
           << operandRef(*cmp.lhs()) << ", " << operandRef(*cmp.rhs());
        break;
      }
      case Opcode::Trunc:
      case Opcode::ZExt:
      case Opcode::SExt:
      case Opcode::FPToSI:
      case Opcode::SIToFP:
      case Opcode::FPTrunc:
      case Opcode::FPExt:
      case Opcode::BitCast:
      case Opcode::PtrToInt:
      case Opcode::IntToPtr: {
        const auto &cast = static_cast<const CastInst &>(inst);
        os << opcodeName(op) << " " << typedRef(*cast.source())
           << " to " << cast.type()->toString();
        break;
      }
      case Opcode::Load: {
        const auto &load = static_cast<const LoadInst &>(inst);
        os << "load " << load.type()->toString() << ", "
           << typedRef(*load.pointer());
        break;
      }
      case Opcode::Store: {
        const auto &store = static_cast<const StoreInst &>(inst);
        os << "store " << typedRef(*store.value()) << ", "
           << typedRef(*store.pointer());
        break;
      }
      case Opcode::GetElementPtr: {
        const auto &gep =
            static_cast<const GetElementPtrInst &>(inst);
        os << "getelementptr "
           << gep.sourceElementType()->toString() << ", "
           << typedRef(*gep.base());
        for (std::size_t i = 0; i < gep.numIndices(); ++i)
            os << ", " << typedRef(*gep.index(i));
        break;
      }
      case Opcode::Phi: {
        const auto &phi = static_cast<const PhiInst &>(inst);
        os << "phi " << phi.type()->toString() << " ";
        for (std::size_t i = 0; i < phi.numIncoming(); ++i) {
            if (i > 0)
                os << ", ";
            os << "[ " << operandRef(*phi.incomingValue(i)) << ", %"
               << phi.incomingBlock(i)->name() << " ]";
        }
        break;
      }
      case Opcode::Select: {
        const auto &sel = static_cast<const SelectInst &>(inst);
        os << "select " << typedRef(*sel.condition()) << ", "
           << typedRef(*sel.ifTrue()) << ", "
           << typedRef(*sel.ifFalse());
        break;
      }
      case Opcode::Call: {
        const auto &call = static_cast<const CallInst &>(inst);
        os << "call " << call.type()->toString() << " @"
           << call.callee() << "(";
        for (std::size_t i = 0; i < call.numOperands(); ++i) {
            if (i > 0)
                os << ", ";
            os << typedRef(*call.operand(i));
        }
        os << ")";
        break;
      }
      case Opcode::Br: {
        const auto &br = static_cast<const BranchInst &>(inst);
        if (br.isConditional()) {
            os << "br i1 " << operandRef(*br.condition())
               << ", label %" << br.ifTrue()->name() << ", label %"
               << br.ifFalse()->name();
        } else {
            os << "br label %" << br.ifTrue()->name();
        }
        break;
      }
      case Opcode::Ret: {
        const auto &ret = static_cast<const ReturnInst &>(inst);
        if (ret.hasValue())
            os << "ret " << typedRef(*ret.value());
        else
            os << "ret void";
        break;
      }
      default: {
        // Binary arithmetic/bitwise ops share one format.
        const auto &bin = static_cast<const BinaryOp &>(inst);
        os << opcodeName(op) << " " << bin.type()->toString() << " "
           << operandRef(*bin.lhs()) << ", " << operandRef(*bin.rhs());
        break;
      }
    }
    return os.str();
}

void
Printer::print(std::ostream &os, const Function &fn)
{
    os << "define " << fn.returnType()->toString() << " @"
       << fn.name() << "(";
    for (std::size_t i = 0; i < fn.numArguments(); ++i) {
        if (i > 0)
            os << ", ";
        const Argument *arg = fn.argument(i);
        os << arg->type()->toString() << " %" << arg->name();
    }
    os << ") {\n";
    for (std::size_t b = 0; b < fn.numBlocks(); ++b) {
        const BasicBlock *block = fn.block(b);
        os << block->name() << ":\n";
        for (const auto &inst : *block)
            os << "  " << toString(*inst) << "\n";
    }
    os << "}\n";
}

void
Printer::print(std::ostream &os, const Module &module)
{
    os << "; ModuleID = '" << module.name() << "'\n";
    for (std::size_t i = 0; i < module.numFunctions(); ++i) {
        os << "\n";
        print(os, *module.function(i));
    }
}

std::string
Printer::toString(const Module &module)
{
    std::ostringstream os;
    print(os, module);
    return os.str();
}

} // namespace salam::ir

/**
 * @file
 * Instruction classes: the executable IR subset.
 *
 * Mirrors LLVM's instruction set for the kernels accelerators are
 * written in: integer/FP arithmetic, bitwise ops, comparisons, casts,
 * loads/stores, getelementptr address arithmetic, phi/select, and the
 * br/ret control flow. Each instruction is a Value (its result).
 */

#ifndef SALAM_IR_INSTRUCTION_HH
#define SALAM_IR_INSTRUCTION_HH

#include <cstdint>
#include <string>
#include <vector>

#include "value.hh"

namespace salam::ir
{

class BasicBlock;

/** Instruction opcodes (a subset of LLVM's). */
enum class Opcode
{
    // Integer binary ops.
    Add, Sub, Mul, UDiv, SDiv, URem, SRem,
    And, Or, Xor, Shl, LShr, AShr,
    // Floating-point binary ops.
    FAdd, FSub, FMul, FDiv,
    // Comparisons.
    ICmp, FCmp,
    // Casts.
    Trunc, ZExt, SExt, FPToSI, SIToFP, FPTrunc, FPExt, BitCast,
    PtrToInt, IntToPtr,
    // Memory.
    Load, Store, GetElementPtr,
    // Other.
    Phi, Select, Call,
    // Terminators.
    Br, Ret,
};

/** Printable LLVM-assembly mnemonic for an opcode. */
const char *opcodeName(Opcode op);

/** True for br/ret. */
bool isTerminator(Opcode op);

/** True for integer/FP arithmetic, bitwise, compare, cast, select. */
bool isComputeOp(Opcode op);

/** True for load/store. */
bool isMemoryOp(Opcode op);

/** True for FP arithmetic (fadd/fsub/fmul/fdiv) and fcmp. */
bool isFloatingPointOp(Opcode op);

/** Comparison predicates, shared by icmp and fcmp. */
enum class Predicate
{
    // icmp
    EQ, NE, UGT, UGE, ULT, ULE, SGT, SGE, SLT, SLE,
    // fcmp (ordered subset)
    OEQ, ONE, OGT, OGE, OLT, OLE,
};

const char *predicateName(Predicate pred);

/**
 * Base class of all instructions. Operands are raw Value pointers
 * into the owning Function's arguments/constants/instructions.
 */
class Instruction : public Value
{
  public:
    Instruction(Opcode op, const Type *type, std::string name)
        : Value(ValueKind::Instruction, type, std::move(name)), _op(op)
    {}

    Opcode opcode() const { return _op; }

    BasicBlock *parent() const { return _parent; }

    void setParent(BasicBlock *block) { _parent = block; }

    std::size_t numOperands() const { return operands.size(); }

    Value *operand(std::size_t i) const { return operands.at(i); }

    void setOperand(std::size_t i, Value *v) { operands.at(i) = v; }

    const std::vector<Value *> &allOperands() const { return operands; }

    bool isTerminator() const { return ir::isTerminator(_op); }

    bool isComputeOp() const { return ir::isComputeOp(_op); }

    bool isMemoryOp() const { return ir::isMemoryOp(_op); }

    /** Replace every use of @p from in this instruction with @p to. */
    void
    replaceUsesOf(Value *from, Value *to)
    {
        for (auto &op : operands) {
            if (op == from)
                op = to;
        }
    }

  protected:
    void addOperand(Value *v) { operands.push_back(v); }

  private:
    Opcode _op;
    BasicBlock *_parent = nullptr;
    std::vector<Value *> operands;
};

/** Two-operand arithmetic/bitwise instruction. */
class BinaryOp : public Instruction
{
  public:
    BinaryOp(Opcode op, Value *lhs, Value *rhs, std::string name)
        : Instruction(op, lhs->type(), std::move(name))
    {
        addOperand(lhs);
        addOperand(rhs);
    }

    Value *lhs() const { return operand(0); }

    Value *rhs() const { return operand(1); }
};

/** icmp/fcmp; result type is i1. */
class CmpInst : public Instruction
{
  public:
    CmpInst(Opcode op, Predicate pred, const Type *i1, Value *lhs,
            Value *rhs, std::string name)
        : Instruction(op, i1, std::move(name)), _pred(pred)
    {
        addOperand(lhs);
        addOperand(rhs);
    }

    Predicate predicate() const { return _pred; }

    Value *lhs() const { return operand(0); }

    Value *rhs() const { return operand(1); }

  private:
    Predicate _pred;
};

/** Value conversions (trunc/zext/sext/fpto.../bitcast/...). */
class CastInst : public Instruction
{
  public:
    CastInst(Opcode op, Value *src, const Type *dest, std::string name)
        : Instruction(op, dest, std::move(name))
    {
        addOperand(src);
    }

    Value *source() const { return operand(0); }
};

/** Load from a pointer operand. */
class LoadInst : public Instruction
{
  public:
    LoadInst(Value *pointer, std::string name)
        : Instruction(Opcode::Load, pointer->type()->pointee(),
                      std::move(name))
    {
        addOperand(pointer);
    }

    Value *pointer() const { return operand(0); }
};

/** Store a value through a pointer operand. Produces no result. */
class StoreInst : public Instruction
{
  public:
    StoreInst(const Type *void_type, Value *value, Value *pointer)
        : Instruction(Opcode::Store, void_type, "")
    {
        addOperand(value);
        addOperand(pointer);
    }

    Value *value() const { return operand(0); }

    Value *pointer() const { return operand(1); }
};

/**
 * Address arithmetic over a typed base pointer, modern-LLVM style:
 * `getelementptr T, T* base, idx...`. The source element type is kept
 * explicitly so byte offsets can be computed without opaque pointers.
 */
class GetElementPtrInst : public Instruction
{
  public:
    GetElementPtrInst(const Type *source_elem, const Type *result_type,
                      Value *base, const std::vector<Value *> &indices,
                      std::string name)
        : Instruction(Opcode::GetElementPtr, result_type,
                      std::move(name)),
          _sourceElem(source_elem)
    {
        addOperand(base);
        for (auto *idx : indices)
            addOperand(idx);
    }

    const Type *sourceElementType() const { return _sourceElem; }

    Value *base() const { return operand(0); }

    std::size_t numIndices() const { return numOperands() - 1; }

    Value *index(std::size_t i) const { return operand(i + 1); }

  private:
    const Type *_sourceElem;
};

/** SSA phi node; incoming (value, block) pairs. */
class PhiInst : public Instruction
{
  public:
    PhiInst(const Type *type, std::string name)
        : Instruction(Opcode::Phi, type, std::move(name))
    {}

    void
    addIncoming(Value *value, BasicBlock *block)
    {
        addOperand(value);
        blocks.push_back(block);
    }

    std::size_t numIncoming() const { return blocks.size(); }

    Value *incomingValue(std::size_t i) const { return operand(i); }

    void setIncomingValue(std::size_t i, Value *v) { setOperand(i, v); }

    BasicBlock *incomingBlock(std::size_t i) const
    { return blocks.at(i); }

    void setIncomingBlock(std::size_t i, BasicBlock *b)
    { blocks.at(i) = b; }

    /** Incoming value for @p block; nullptr when absent. */
    Value *valueFor(const BasicBlock *block) const;

  private:
    std::vector<BasicBlock *> blocks;
};

/** Ternary select: cond ? ifTrue : ifFalse. */
class SelectInst : public Instruction
{
  public:
    SelectInst(Value *cond, Value *if_true, Value *if_false,
               std::string name)
        : Instruction(Opcode::Select, if_true->type(), std::move(name))
    {
        addOperand(cond);
        addOperand(if_true);
        addOperand(if_false);
    }

    Value *condition() const { return operand(0); }

    Value *ifTrue() const { return operand(1); }

    Value *ifFalse() const { return operand(2); }
};

/**
 * Intrinsic call (sqrt/exp/sin/cos/fabs/...). General calls are not
 * modeled: accelerator kernels are fully inlined single functions.
 */
class CallInst : public Instruction
{
  public:
    CallInst(const Type *type, std::string callee,
             const std::vector<Value *> &args, std::string name)
        : Instruction(Opcode::Call, type, std::move(name)),
          _callee(std::move(callee))
    {
        for (auto *a : args)
            addOperand(a);
    }

    const std::string &callee() const { return _callee; }

  private:
    std::string _callee;
};

/** Conditional or unconditional branch. */
class BranchInst : public Instruction
{
  public:
    /** Unconditional form. */
    BranchInst(const Type *void_type, BasicBlock *target)
        : Instruction(Opcode::Br, void_type, ""), _ifTrue(target),
          _ifFalse(nullptr)
    {}

    /** Conditional form. */
    BranchInst(const Type *void_type, Value *cond, BasicBlock *if_true,
               BasicBlock *if_false)
        : Instruction(Opcode::Br, void_type, ""), _ifTrue(if_true),
          _ifFalse(if_false)
    {
        addOperand(cond);
    }

    bool isConditional() const { return numOperands() == 1; }

    Value *condition() const { return operand(0); }

    BasicBlock *ifTrue() const { return _ifTrue; }

    BasicBlock *ifFalse() const { return _ifFalse; }

    void setIfTrue(BasicBlock *b) { _ifTrue = b; }

    void setIfFalse(BasicBlock *b) { _ifFalse = b; }

  private:
    BasicBlock *_ifTrue;
    BasicBlock *_ifFalse;
};

/** Function return, optionally carrying a value. */
class ReturnInst : public Instruction
{
  public:
    explicit ReturnInst(const Type *void_type)
        : Instruction(Opcode::Ret, void_type, "")
    {}

    ReturnInst(const Type *void_type, Value *value)
        : Instruction(Opcode::Ret, void_type, "")
    {
        addOperand(value);
    }

    bool hasValue() const { return numOperands() == 1; }

    Value *value() const { return operand(0); }
};

} // namespace salam::ir

#endif // SALAM_IR_INSTRUCTION_HH

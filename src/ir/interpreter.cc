#include "interpreter.hh"

#include <cstring>

#include "sim/logging.hh"

namespace salam::ir
{

RuntimeValue
MemoryAccessor::loadValue(const Type *type, std::uint64_t addr)
{
    std::uint64_t raw = 0;
    std::size_t size = type->storeSize();
    SALAM_ASSERT(size > 0 && size <= 8);
    readBytes(addr, size, &raw);
    RuntimeValue rv;
    rv.bits = RuntimeValue::mask(type, raw);
    return rv;
}

void
MemoryAccessor::storeValue(const Type *type, std::uint64_t addr,
                           RuntimeValue value)
{
    std::size_t size = type->storeSize();
    SALAM_ASSERT(size > 0 && size <= 8);
    writeBytes(addr, size, &value.bits);
}

std::uint8_t *
FlatMemory::pageFor(std::uint64_t addr)
{
    std::uint64_t base = addr & ~(pageSize - 1);
    auto it = pages.find(base);
    if (it == pages.end()) {
        it = pages.emplace(base, std::vector<std::uint8_t>(pageSize))
                 .first;
    }
    return it->second.data();
}

void
FlatMemory::readBytes(std::uint64_t addr, std::size_t size, void *out)
{
    auto *dst = static_cast<std::uint8_t *>(out);
    while (size > 0) {
        std::uint64_t offset = addr & (pageSize - 1);
        std::size_t chunk = std::min<std::size_t>(
            size, static_cast<std::size_t>(pageSize - offset));
        std::memcpy(dst, pageFor(addr) + offset, chunk);
        dst += chunk;
        addr += chunk;
        size -= chunk;
    }
}

void
FlatMemory::writeBytes(std::uint64_t addr, std::size_t size,
                       const void *in)
{
    const auto *src = static_cast<const std::uint8_t *>(in);
    while (size > 0) {
        std::uint64_t offset = addr & (pageSize - 1);
        std::size_t chunk = std::min<std::size_t>(
            size, static_cast<std::size_t>(pageSize - offset));
        std::memcpy(pageFor(addr) + offset, src, chunk);
        src += chunk;
        addr += chunk;
        size -= chunk;
    }
}

RuntimeValue
Interpreter::valueOf(const Value *v) const
{
    if (v->isConstant())
        return evalConstant(v);
    auto it = bindings.find(v);
    if (it == bindings.end())
        panic("interpreter: unbound value %%%s", v->name().c_str());
    return it->second;
}

RuntimeValue
Interpreter::run(const Function &fn,
                 const std::vector<RuntimeValue> &args)
{
    if (args.size() != fn.numArguments())
        fatal("interpreter: @%s expects %zu args, got %zu",
              fn.name().c_str(), fn.numArguments(), args.size());

    bindings.clear();
    steps = 0;
    for (std::size_t i = 0; i < args.size(); ++i)
        bindings[fn.argument(i)] = args[i];

    const BasicBlock *block = fn.entry();
    const BasicBlock *prev = nullptr;
    SALAM_ASSERT(block != nullptr);

    while (true) {
        // Phi nodes read their incoming values simultaneously on
        // block entry, before any are rebound.
        auto phis = block->phis();
        std::vector<RuntimeValue> phi_values;
        phi_values.reserve(phis.size());
        for (const PhiInst *phi : phis) {
            Value *incoming = phi->valueFor(prev);
            if (incoming == nullptr)
                panic("phi %%%s has no incoming for %%%s",
                      phi->name().c_str(),
                      prev ? prev->name().c_str() : "<entry>");
            phi_values.push_back(valueOf(incoming));
        }
        for (std::size_t i = 0; i < phis.size(); ++i) {
            bindings[phis[i]] = phi_values[i];
            if (onExec) {
                ExecRecord rec;
                rec.inst = phis[i];
                rec.block = block;
                rec.result = phi_values[i];
                rec.seq = steps;
                onExec(rec);
            }
            ++steps;
        }

        // Remaining instructions in order.
        for (std::size_t i = phis.size(); i < block->size(); ++i) {
            const Instruction *inst = block->instruction(i);
            if (++steps > stepLimit)
                fatal("interpreter: step limit exceeded in @%s",
                      fn.name().c_str());

            ExecRecord rec;
            rec.inst = inst;
            rec.block = block;
            rec.seq = steps;

            switch (inst->opcode()) {
              case Opcode::Load: {
                const auto *load =
                    static_cast<const LoadInst *>(inst);
                std::uint64_t addr =
                    valueOf(load->pointer()).bits;
                RuntimeValue v = mem.loadValue(load->type(), addr);
                bindings[inst] = v;
                rec.result = v;
                rec.memAddr = addr;
                rec.memSize = static_cast<std::uint32_t>(
                    load->type()->storeSize());
                break;
              }
              case Opcode::Store: {
                const auto *store =
                    static_cast<const StoreInst *>(inst);
                std::uint64_t addr =
                    valueOf(store->pointer()).bits;
                RuntimeValue v = valueOf(store->value());
                mem.storeValue(store->value()->type(), addr, v);
                rec.result = v;
                rec.memAddr = addr;
                rec.memSize = static_cast<std::uint32_t>(
                    store->value()->type()->storeSize());
                break;
              }
              case Opcode::Br: {
                const auto *br =
                    static_cast<const BranchInst *>(inst);
                const BasicBlock *next;
                if (br->isConditional()) {
                    bool taken = valueOf(br->condition()).asBool();
                    next = taken ? br->ifTrue() : br->ifFalse();
                    rec.result.bits = taken ? 1 : 0;
                } else {
                    next = br->ifTrue();
                }
                if (onExec)
                    onExec(rec);
                prev = block;
                block = next;
                goto next_block;
              }
              case Opcode::Ret: {
                const auto *ret =
                    static_cast<const ReturnInst *>(inst);
                RuntimeValue result;
                if (ret->hasValue())
                    result = valueOf(ret->value());
                rec.result = result;
                if (onExec)
                    onExec(rec);
                return result;
              }
              default: {
                std::vector<RuntimeValue> ops;
                ops.reserve(inst->numOperands());
                for (std::size_t o = 0; o < inst->numOperands(); ++o)
                    ops.push_back(valueOf(inst->operand(o)));
                RuntimeValue v = evalCompute(*inst, ops);
                bindings[inst] = v;
                rec.result = v;
                break;
              }
            }
            if (onExec)
                onExec(rec);
        }
        panic("block %%%s fell through without terminator",
              block->name().c_str());
      next_block:;
    }
}

} // namespace salam::ir

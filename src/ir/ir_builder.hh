/**
 * @file
 * IRBuilder: convenience API for constructing IR.
 *
 * Plays the role clang plays in the original flow: kernels (and tests)
 * build their IR through this interface. Instructions are appended at
 * the current insertion point and auto-named (%0, %1, ...) when no
 * explicit name is given, matching LLVM's conventions.
 */

#ifndef SALAM_IR_IR_BUILDER_HH
#define SALAM_IR_IR_BUILDER_HH

#include <set>
#include <string>
#include <vector>

#include "function.hh"

namespace salam::ir
{

/** Builds instructions into a Function's basic blocks. */
class IRBuilder
{
  public:
    explicit IRBuilder(Module &module)
        : mod(module), ctx(module.context())
    {}

    Module &module() { return mod; }

    Context &context() { return ctx; }

    /** Create a function and make it current. */
    Function *
    createFunction(const std::string &name, const Type *return_type)
    {
        fn = mod.addFunction(name, return_type);
        block = nullptr;
        nextId = 0;
        usedNames.clear();
        return fn;
    }

    Function *currentFunction() const { return fn; }

    /** Create a block in the current function (no insertion change). */
    BasicBlock *
    createBlock(const std::string &name)
    {
        return fn->addBlock(std::make_unique<BasicBlock>(
            ctx.labelType(), uniqueLabel(name)));
    }

    /** Set the insertion point to the end of @p b. */
    void setInsertPoint(BasicBlock *b) { block = b; }

    BasicBlock *insertBlock() const { return block; }

    // Constants ----------------------------------------------------

    ConstantInt *constI64(std::int64_t v)
    { return mod.getConstantInt(ctx.i64(), static_cast<std::uint64_t>(v)); }

    ConstantInt *constI32(std::int32_t v)
    { return mod.getConstantInt(ctx.i32(), static_cast<std::uint32_t>(v)); }

    ConstantInt *constI1(bool v)
    { return mod.getConstantInt(ctx.i1(), v ? 1 : 0); }

    ConstantInt *constInt(const Type *type, std::uint64_t v)
    { return mod.getConstantInt(type, v); }

    ConstantFP *constDouble(double v)
    { return mod.getConstantFP(ctx.doubleType(), v); }

    ConstantFP *constFloat(float v)
    { return mod.getConstantFP(ctx.floatType(), v); }

    // Integer arithmetic -------------------------------------------

    /** Generic binary operation by opcode (same checks as the
     * named helpers). */
    Value *
    binaryOp(Opcode op, Value *a, Value *b,
             const std::string &name = "")
    {
        return binary(op, a, b, name);
    }


    Value *add(Value *a, Value *b, const std::string &name = "")
    { return binary(Opcode::Add, a, b, name); }

    Value *sub(Value *a, Value *b, const std::string &name = "")
    { return binary(Opcode::Sub, a, b, name); }

    Value *mul(Value *a, Value *b, const std::string &name = "")
    { return binary(Opcode::Mul, a, b, name); }

    Value *udiv(Value *a, Value *b, const std::string &name = "")
    { return binary(Opcode::UDiv, a, b, name); }

    Value *sdiv(Value *a, Value *b, const std::string &name = "")
    { return binary(Opcode::SDiv, a, b, name); }

    Value *urem(Value *a, Value *b, const std::string &name = "")
    { return binary(Opcode::URem, a, b, name); }

    Value *srem(Value *a, Value *b, const std::string &name = "")
    { return binary(Opcode::SRem, a, b, name); }

    Value *bAnd(Value *a, Value *b, const std::string &name = "")
    { return binary(Opcode::And, a, b, name); }

    Value *bOr(Value *a, Value *b, const std::string &name = "")
    { return binary(Opcode::Or, a, b, name); }

    Value *bXor(Value *a, Value *b, const std::string &name = "")
    { return binary(Opcode::Xor, a, b, name); }

    Value *shl(Value *a, Value *b, const std::string &name = "")
    { return binary(Opcode::Shl, a, b, name); }

    Value *lshr(Value *a, Value *b, const std::string &name = "")
    { return binary(Opcode::LShr, a, b, name); }

    Value *ashr(Value *a, Value *b, const std::string &name = "")
    { return binary(Opcode::AShr, a, b, name); }

    // FP arithmetic ------------------------------------------------

    Value *fadd(Value *a, Value *b, const std::string &name = "")
    { return binary(Opcode::FAdd, a, b, name); }

    Value *fsub(Value *a, Value *b, const std::string &name = "")
    { return binary(Opcode::FSub, a, b, name); }

    Value *fmul(Value *a, Value *b, const std::string &name = "")
    { return binary(Opcode::FMul, a, b, name); }

    Value *fdiv(Value *a, Value *b, const std::string &name = "")
    { return binary(Opcode::FDiv, a, b, name); }

    // Comparisons --------------------------------------------------

    Value *icmp(Predicate pred, Value *a, Value *b,
                const std::string &name = "");

    Value *fcmp(Predicate pred, Value *a, Value *b,
                const std::string &name = "");

    // Casts ----------------------------------------------------------

    Value *cast(Opcode op, Value *src, const Type *dest,
                const std::string &name = "");

    Value *zext(Value *src, const Type *dest,
                const std::string &name = "")
    { return cast(Opcode::ZExt, src, dest, name); }

    Value *sext(Value *src, const Type *dest,
                const std::string &name = "")
    { return cast(Opcode::SExt, src, dest, name); }

    Value *trunc(Value *src, const Type *dest,
                 const std::string &name = "")
    { return cast(Opcode::Trunc, src, dest, name); }

    Value *sitofp(Value *src, const Type *dest,
                  const std::string &name = "")
    { return cast(Opcode::SIToFP, src, dest, name); }

    Value *fptosi(Value *src, const Type *dest,
                  const std::string &name = "")
    { return cast(Opcode::FPToSI, src, dest, name); }

    Value *fpext(Value *src, const Type *dest,
                 const std::string &name = "")
    { return cast(Opcode::FPExt, src, dest, name); }

    Value *fptrunc(Value *src, const Type *dest,
                   const std::string &name = "")
    { return cast(Opcode::FPTrunc, src, dest, name); }

    // Memory ---------------------------------------------------------

    Value *load(Value *pointer, const std::string &name = "");

    void store(Value *value, Value *pointer);

    /**
     * getelementptr with a scalar element type and one index — the
     * common kernel idiom `&base[i]`.
     */
    Value *gep(const Type *elem, Value *base, Value *index,
               const std::string &name = "");

    /** General multi-index GEP. */
    Value *gep(const Type *source_elem, Value *base,
               const std::vector<Value *> &indices,
               const std::string &name = "");

    // Other ----------------------------------------------------------

    PhiInst *phi(const Type *type, const std::string &name = "");

    Value *select(Value *cond, Value *if_true, Value *if_false,
                  const std::string &name = "");

    Value *call(const Type *type, const std::string &callee,
                const std::vector<Value *> &args,
                const std::string &name = "");

    // Terminators ----------------------------------------------------

    void br(BasicBlock *target);

    void condBr(Value *cond, BasicBlock *if_true, BasicBlock *if_false);

    void ret();

    void ret(Value *value);

  private:
    Value *binary(Opcode op, Value *a, Value *b,
                  const std::string &name);

    Instruction *append(std::unique_ptr<Instruction> inst);

    std::string autoName(const std::string &name);

    std::string uniqueLabel(const std::string &name);

    Module &mod;
    Context &ctx;
    Function *fn = nullptr;
    BasicBlock *block = nullptr;
    unsigned nextId = 0;
    std::set<std::string> usedNames;
};

} // namespace salam::ir

#endif // SALAM_IR_IR_BUILDER_HH

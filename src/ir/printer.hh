/**
 * @file
 * Printer: renders IR in LLVM assembly syntax.
 *
 * The emitted text is the exact subset the Parser accepts, so
 * print -> parse round-trips are identity (up to value numbering).
 * FP constants are printed as 64-bit hex encodings, as LLVM does, so
 * round-trips are bit-exact.
 */

#ifndef SALAM_IR_PRINTER_HH
#define SALAM_IR_PRINTER_HH

#include <ostream>
#include <string>

#include "function.hh"

namespace salam::ir
{

/** Pretty-printer for modules, functions, and instructions. */
class Printer
{
  public:
    /** Print a whole module. */
    static void print(std::ostream &os, const Module &module);

    /** Print one function definition. */
    static void print(std::ostream &os, const Function &fn);

    /** Render one instruction (no trailing newline). */
    static std::string toString(const Instruction &inst);

    /** Render an operand reference, e.g. "%i" or "42" or "0x3FF...". */
    static std::string operandRef(const Value &value);

    /** Render a module to a string (convenience for tests). */
    static std::string toString(const Module &module);
};

} // namespace salam::ir

#endif // SALAM_IR_PRINTER_HH

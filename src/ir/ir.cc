/**
 * @file
 * Out-of-line implementations for the IR core classes.
 */

#include "basic_block.hh"
#include "function.hh"
#include "instruction.hh"

#include "sim/logging.hh"

namespace salam::ir
{

const char *
opcodeName(Opcode op)
{
    switch (op) {
      case Opcode::Add: return "add";
      case Opcode::Sub: return "sub";
      case Opcode::Mul: return "mul";
      case Opcode::UDiv: return "udiv";
      case Opcode::SDiv: return "sdiv";
      case Opcode::URem: return "urem";
      case Opcode::SRem: return "srem";
      case Opcode::And: return "and";
      case Opcode::Or: return "or";
      case Opcode::Xor: return "xor";
      case Opcode::Shl: return "shl";
      case Opcode::LShr: return "lshr";
      case Opcode::AShr: return "ashr";
      case Opcode::FAdd: return "fadd";
      case Opcode::FSub: return "fsub";
      case Opcode::FMul: return "fmul";
      case Opcode::FDiv: return "fdiv";
      case Opcode::ICmp: return "icmp";
      case Opcode::FCmp: return "fcmp";
      case Opcode::Trunc: return "trunc";
      case Opcode::ZExt: return "zext";
      case Opcode::SExt: return "sext";
      case Opcode::FPToSI: return "fptosi";
      case Opcode::SIToFP: return "sitofp";
      case Opcode::FPTrunc: return "fptrunc";
      case Opcode::FPExt: return "fpext";
      case Opcode::BitCast: return "bitcast";
      case Opcode::PtrToInt: return "ptrtoint";
      case Opcode::IntToPtr: return "inttoptr";
      case Opcode::Load: return "load";
      case Opcode::Store: return "store";
      case Opcode::GetElementPtr: return "getelementptr";
      case Opcode::Phi: return "phi";
      case Opcode::Select: return "select";
      case Opcode::Call: return "call";
      case Opcode::Br: return "br";
      case Opcode::Ret: return "ret";
    }
    panic("unknown opcode");
}

bool
isTerminator(Opcode op)
{
    return op == Opcode::Br || op == Opcode::Ret;
}

bool
isMemoryOp(Opcode op)
{
    return op == Opcode::Load || op == Opcode::Store;
}

bool
isComputeOp(Opcode op)
{
    return !isTerminator(op) && !isMemoryOp(op) && op != Opcode::Phi;
}

bool
isFloatingPointOp(Opcode op)
{
    switch (op) {
      case Opcode::FAdd:
      case Opcode::FSub:
      case Opcode::FMul:
      case Opcode::FDiv:
      case Opcode::FCmp:
        return true;
      default:
        return false;
    }
}

const char *
predicateName(Predicate pred)
{
    switch (pred) {
      case Predicate::EQ: return "eq";
      case Predicate::NE: return "ne";
      case Predicate::UGT: return "ugt";
      case Predicate::UGE: return "uge";
      case Predicate::ULT: return "ult";
      case Predicate::ULE: return "ule";
      case Predicate::SGT: return "sgt";
      case Predicate::SGE: return "sge";
      case Predicate::SLT: return "slt";
      case Predicate::SLE: return "sle";
      case Predicate::OEQ: return "oeq";
      case Predicate::ONE: return "one";
      case Predicate::OGT: return "ogt";
      case Predicate::OGE: return "oge";
      case Predicate::OLT: return "olt";
      case Predicate::OLE: return "ole";
    }
    panic("unknown predicate");
}

Value *
PhiInst::valueFor(const BasicBlock *block) const
{
    for (std::size_t i = 0; i < numIncoming(); ++i) {
        if (incomingBlock(i) == block)
            return incomingValue(i);
    }
    return nullptr;
}

std::vector<BasicBlock *>
BasicBlock::successors() const
{
    std::vector<BasicBlock *> succs;
    Instruction *term = terminator();
    if (term == nullptr)
        return succs;
    if (auto *br = dynamic_cast<BranchInst *>(term)) {
        succs.push_back(br->ifTrue());
        if (br->isConditional() && br->ifFalse() != br->ifTrue())
            succs.push_back(br->ifFalse());
    }
    return succs;
}

std::vector<PhiInst *>
BasicBlock::phis() const
{
    std::vector<PhiInst *> result;
    for (const auto &inst : instrs) {
        auto *phi = dynamic_cast<PhiInst *>(inst.get());
        if (phi == nullptr)
            break;
        result.push_back(phi);
    }
    return result;
}

Argument *
Function::findArgument(const std::string &name) const
{
    for (const auto &arg : args) {
        if (arg->name() == name)
            return arg.get();
    }
    return nullptr;
}

BasicBlock *
Function::findBlock(const std::string &name) const
{
    for (const auto &block : blocks) {
        if (block->name() == name)
            return block.get();
    }
    return nullptr;
}

std::vector<BasicBlock *>
Function::predecessors(const BasicBlock *block) const
{
    std::vector<BasicBlock *> preds;
    for (const auto &candidate : blocks) {
        for (auto *succ : candidate->successors()) {
            if (succ == block) {
                preds.push_back(candidate.get());
                break;
            }
        }
    }
    return preds;
}

std::size_t
Function::instructionCount() const
{
    std::size_t count = 0;
    for (const auto &block : blocks)
        count += block->size();
    return count;
}

Function *
Module::findFunction(const std::string &name) const
{
    for (const auto &fn : functions) {
        if (fn->name() == name)
            return fn.get();
    }
    return nullptr;
}

ConstantInt *
Module::getConstantInt(const Type *type, std::uint64_t bits)
{
    SALAM_ASSERT(type->isInteger() || type->isPointer());
    std::uint64_t masked = bits;
    if (type->isInteger() && type->intBits() < 64)
        masked &= (1ULL << type->intBits()) - 1;
    for (const auto &c : intConstants) {
        if (c->type() == type && c->zext() == masked)
            return c.get();
    }
    intConstants.push_back(std::make_unique<ConstantInt>(type, masked));
    return intConstants.back().get();
}

ConstantFP *
Module::getConstantFP(const Type *type, double value)
{
    SALAM_ASSERT(type->isFloatingPoint());
    if (type->isFloat())
        value = static_cast<float>(value);
    for (const auto &c : fpConstants) {
        if (c->type() == type && c->value() == value)
            return c.get();
    }
    fpConstants.push_back(std::make_unique<ConstantFP>(type, value));
    return fpConstants.back().get();
}

} // namespace salam::ir

#include "verifier.hh"

#include <algorithm>
#include <set>

#include "sim/logging.hh"

namespace salam::ir
{

namespace
{

std::map<const BasicBlock *, std::size_t>
blockIndices(const Function &fn)
{
    std::map<const BasicBlock *, std::size_t> index;
    for (std::size_t i = 0; i < fn.numBlocks(); ++i)
        index.emplace(fn.block(i), i);
    return index;
}

} // namespace

std::vector<std::vector<bool>>
Verifier::dominators(const Function &fn)
{
    std::size_t n = fn.numBlocks();
    auto index = blockIndices(fn);

    // Iterative dataflow: dom(entry) = {entry};
    // dom(b) = {b} ∪ ⋂ dom(preds).
    std::vector<std::vector<bool>> dom(n, std::vector<bool>(n, true));
    if (n == 0)
        return dom;
    dom[0].assign(n, false);
    dom[0][0] = true;

    std::vector<std::vector<std::size_t>> preds(n);
    for (std::size_t b = 0; b < n; ++b) {
        for (auto *pred : fn.predecessors(fn.block(b)))
            preds[b].push_back(index.at(pred));
    }

    bool changed = true;
    while (changed) {
        changed = false;
        for (std::size_t b = 1; b < n; ++b) {
            std::vector<bool> next(n, !preds[b].empty());
            for (std::size_t p : preds[b]) {
                for (std::size_t k = 0; k < n; ++k)
                    next[k] = next[k] && dom[p][k];
            }
            // Unreachable blocks keep the "all" set except that they
            // must not dominate others; leave them as computed.
            next[b] = true;
            if (next != dom[b]) {
                dom[b] = std::move(next);
                changed = true;
            }
        }
    }
    return dom;
}

std::vector<std::string>
Verifier::verify(const Function &fn)
{
    std::vector<std::string> problems;
    auto complain = [&](const std::string &msg) {
        problems.push_back("@" + fn.name() + ": " + msg);
    };

    if (fn.numBlocks() == 0) {
        complain("function has no basic blocks");
        return problems;
    }

    auto index = blockIndices(fn);

    // Collect all values defined in the function.
    std::set<const Value *> defined;
    for (std::size_t i = 0; i < fn.numArguments(); ++i)
        defined.insert(fn.argument(i));
    for (std::size_t b = 0; b < fn.numBlocks(); ++b) {
        const BasicBlock *block = fn.block(b);
        for (const auto &inst : *block)
            defined.insert(inst.get());
    }

    // Per-block structural checks.
    for (std::size_t b = 0; b < fn.numBlocks(); ++b) {
        const BasicBlock *block = fn.block(b);
        const std::string where = "block %" + block->name();

        if (block->empty()) {
            complain(where + " is empty");
            continue;
        }
        if (block->terminator() == nullptr)
            complain(where + " lacks a terminator");

        bool seen_non_phi = false;
        for (std::size_t i = 0; i < block->size(); ++i) {
            const Instruction *inst = block->instruction(i);
            if (inst->isTerminator() && i + 1 != block->size())
                complain(where + " has a terminator mid-block");
            if (inst->opcode() == Opcode::Phi) {
                if (seen_non_phi)
                    complain(where + " has a phi after non-phi");
            } else {
                seen_non_phi = true;
            }

            // Operand sanity.
            for (std::size_t o = 0; o < inst->numOperands(); ++o) {
                const Value *op = inst->operand(o);
                if (op == nullptr) {
                    complain(where + ": null operand in " +
                             std::string(opcodeName(inst->opcode())));
                    continue;
                }
                if (op->valueKind() == Value::ValueKind::Instruction ||
                    op->valueKind() == Value::ValueKind::Argument) {
                    if (defined.find(op) == defined.end()) {
                        complain(where + ": operand %" + op->name() +
                                 " not defined in this function");
                    }
                }
            }

            // Type rules for common cases.
            switch (inst->opcode()) {
              case Opcode::Load: {
                const auto *load =
                    static_cast<const LoadInst *>(inst);
                if (!load->pointer()->type()->isPointer())
                    complain(where + ": load from non-pointer");
                break;
              }
              case Opcode::Store: {
                const auto *store =
                    static_cast<const StoreInst *>(inst);
                if (!store->pointer()->type()->isPointer()) {
                    complain(where + ": store to non-pointer");
                } else if (store->pointer()->type()->pointee() !=
                           store->value()->type()) {
                    complain(where + ": store value/pointee mismatch");
                }
                break;
              }
              case Opcode::GetElementPtr: {
                const auto *gep =
                    static_cast<const GetElementPtrInst *>(inst);
                if (!gep->base()->type()->isPointer())
                    complain(where + ": gep over non-pointer");
                if (gep->numIndices() == 0)
                    complain(where + ": gep without indices");
                break;
              }
              case Opcode::Br: {
                const auto *br =
                    static_cast<const BranchInst *>(inst);
                if (br->isConditional() &&
                    br->condition()->type()->bitWidth() != 1) {
                    complain(where + ": branch condition is not i1");
                }
                if (index.find(br->ifTrue()) == index.end() ||
                    (br->isConditional() &&
                     index.find(br->ifFalse()) == index.end())) {
                    complain(where +
                             ": branch to block of another function");
                }
                break;
              }
              default:
                if (const auto *bin =
                        dynamic_cast<const BinaryOp *>(inst)) {
                    if (bin->lhs()->type() != bin->rhs()->type())
                        complain(where + ": binary operand mismatch");
                }
                break;
            }
        }

        // Phi / predecessor agreement.
        auto preds = fn.predecessors(block);
        for (const PhiInst *phi : block->phis()) {
            if (phi->numIncoming() != preds.size()) {
                complain(where + ": phi %" + phi->name() + " has " +
                         std::to_string(phi->numIncoming()) +
                         " incoming, block has " +
                         std::to_string(preds.size()) +
                         " predecessors");
                continue;
            }
            for (std::size_t k = 0; k < phi->numIncoming(); ++k) {
                const BasicBlock *in = phi->incomingBlock(k);
                if (std::find(preds.begin(), preds.end(), in) ==
                    preds.end()) {
                    complain(where + ": phi %" + phi->name() +
                             " names non-predecessor %" + in->name());
                }
                if (phi->incomingValue(k)->type() != phi->type()) {
                    complain(where + ": phi %" + phi->name() +
                             " incoming type mismatch");
                }
            }
        }
    }

    // SSA dominance. Defs in block D dominate uses in block U when
    // dom[U] contains D; same-block uses must come after the def.
    auto dom = dominators(fn);
    std::map<const Value *, std::pair<std::size_t, std::size_t>>
        defSite;
    for (std::size_t b = 0; b < fn.numBlocks(); ++b) {
        const BasicBlock *block = fn.block(b);
        for (std::size_t i = 0; i < block->size(); ++i)
            defSite[block->instruction(i)] = {b, i};
    }
    for (std::size_t b = 0; b < fn.numBlocks(); ++b) {
        const BasicBlock *block = fn.block(b);
        for (std::size_t i = 0; i < block->size(); ++i) {
            const Instruction *inst = block->instruction(i);
            const auto *phi = dynamic_cast<const PhiInst *>(inst);
            for (std::size_t o = 0; o < inst->numOperands(); ++o) {
                const Value *op = inst->operand(o);
                auto it = defSite.find(op);
                if (it == defSite.end())
                    continue; // argument or constant
                auto [db, di] = it->second;
                if (phi != nullptr) {
                    // Use site is the end of the incoming block.
                    const BasicBlock *in = phi->incomingBlock(o);
                    std::size_t ub = index.at(in);
                    if (!dom[ub][db]) {
                        complain("phi %" + phi->name() +
                                 " incoming %" + op->name() +
                                 " does not dominate edge");
                    }
                } else if (db == b) {
                    if (di >= i) {
                        complain("use of %" + op->name() +
                                 " before definition in %" +
                                 block->name());
                    }
                } else if (!dom[b][db]) {
                    complain("use of %" + op->name() + " in %" +
                             block->name() +
                             " not dominated by definition");
                }
            }
        }
    }

    return problems;
}

std::vector<std::string>
Verifier::verify(const Module &module)
{
    std::vector<std::string> problems;
    for (std::size_t i = 0; i < module.numFunctions(); ++i) {
        auto fn_problems = verify(*module.function(i));
        problems.insert(problems.end(), fn_problems.begin(),
                        fn_problems.end());
    }
    return problems;
}

void
Verifier::verifyOrDie(const Function &fn)
{
    auto problems = verify(fn);
    if (!problems.empty())
        fatal("IR verification failed: %s", problems.front().c_str());
}

} // namespace salam::ir

/**
 * @file
 * RuntimeValue and the pure evaluation semantics of compute opcodes.
 *
 * This is the single source of truth for what each IR operation
 * computes. The functional interpreter, the trace-based baseline, and
 * gem5-SALAM's compute queue all call into these helpers, so the
 * execute-in-execute engine and the reference execution can never
 * diverge functionally.
 */

#ifndef SALAM_IR_EVAL_HH
#define SALAM_IR_EVAL_HH

#include <cstdint>
#include <cstring>
#include <vector>

#include "instruction.hh"

namespace salam::ir
{

/**
 * A dynamic value: 64 raw bits interpreted according to an IR type.
 * Integers are stored zero-extended; float occupies the low 32 bits
 * with its IEEE encoding; double occupies all 64 bits.
 */
struct RuntimeValue
{
    std::uint64_t bits = 0;

    static RuntimeValue
    fromInt(const Type *type, std::uint64_t v)
    {
        RuntimeValue rv;
        rv.bits = mask(type, v);
        return rv;
    }

    static RuntimeValue
    fromPointer(std::uint64_t addr)
    {
        RuntimeValue rv;
        rv.bits = addr;
        return rv;
    }

    static RuntimeValue
    fromFloat(float f)
    {
        RuntimeValue rv;
        std::uint32_t enc;
        std::memcpy(&enc, &f, sizeof(enc));
        rv.bits = enc;
        return rv;
    }

    static RuntimeValue
    fromDouble(double d)
    {
        RuntimeValue rv;
        std::memcpy(&rv.bits, &d, sizeof(rv.bits));
        return rv;
    }

    /** Encode a scalar of the given type. */
    static RuntimeValue fromFP(const Type *type, double v);

    /** Zero-extended integer view. */
    std::uint64_t
    asUInt(const Type *type) const
    {
        return mask(type, bits);
    }

    /** Sign-extended integer view. */
    std::int64_t
    asSInt(const Type *type) const
    {
        unsigned width = type->isInteger() ? type->intBits() : 64;
        if (width >= 64)
            return static_cast<std::int64_t>(bits);
        std::uint64_t sign = 1ULL << (width - 1);
        std::uint64_t v = mask(type, bits);
        return static_cast<std::int64_t>((v ^ sign) - sign);
    }

    float
    asFloat() const
    {
        float f;
        auto enc = static_cast<std::uint32_t>(bits);
        std::memcpy(&f, &enc, sizeof(f));
        return f;
    }

    double
    asDouble() const
    {
        double d;
        std::memcpy(&d, &bits, sizeof(d));
        return d;
    }

    /** Floating-point view according to @p type (float or double). */
    double
    asFP(const Type *type) const
    {
        return type->isFloat() ? static_cast<double>(asFloat())
                               : asDouble();
    }

    bool asBool() const { return (bits & 1) != 0; }

    static std::uint64_t
    mask(const Type *type, std::uint64_t v)
    {
        if (type->isInteger() && type->intBits() < 64)
            return v & ((1ULL << type->intBits()) - 1);
        return v;
    }
};

/** Evaluate a constant or argument-free value to a RuntimeValue. */
RuntimeValue evalConstant(const Value *value);

/** Evaluate a binary arithmetic/bitwise op. */
RuntimeValue evalBinary(Opcode op, const Type *type, RuntimeValue a,
                        RuntimeValue b);

/** Evaluate icmp/fcmp; result is an i1. */
RuntimeValue evalCompare(Opcode op, Predicate pred, const Type *opnd_type,
                         RuntimeValue a, RuntimeValue b);

/** Evaluate a cast. */
RuntimeValue evalCast(Opcode op, const Type *src_type,
                      const Type *dest_type, RuntimeValue v);

/** Evaluate a math intrinsic (sqrt/exp/log/sin/cos/fabs/...). */
RuntimeValue evalIntrinsic(const std::string &callee, const Type *type,
                           const std::vector<RuntimeValue> &args);

/**
 * Byte offset computed by a GEP given its index operand values.
 * The base address is not included.
 */
std::int64_t evalGepOffset(const GetElementPtrInst &gep,
                           const std::vector<RuntimeValue> &indices);

/**
 * Evaluate any compute instruction (arithmetic, compare, cast, select,
 * GEP, intrinsic call) from its operand values, in operand order.
 * Loads, stores, phis and terminators are the caller's responsibility.
 */
RuntimeValue evalCompute(const Instruction &inst,
                         const std::vector<RuntimeValue> &operands);

} // namespace salam::ir

#endif // SALAM_IR_EVAL_HH

#include "type.hh"

#include "sim/logging.hh"

namespace salam::ir
{

std::uint64_t
Type::storeSize() const
{
    switch (_kind) {
      case Kind::Void:
      case Kind::Label:
        return 0;
      case Kind::Integer:
        return (_bits + 7) / 8;
      case Kind::Float:
        return 4;
      case Kind::Double:
        return 8;
      case Kind::Pointer:
        return 8;
      case Kind::Array:
        return _elem->storeSize() * _count;
    }
    panic("unknown type kind");
}

unsigned
Type::bitWidth() const
{
    switch (_kind) {
      case Kind::Void:
      case Kind::Label:
        return 0;
      case Kind::Integer:
        return _bits;
      case Kind::Float:
        return 32;
      case Kind::Double:
        return 64;
      case Kind::Pointer:
        return 64;
      case Kind::Array:
        return static_cast<unsigned>(_elem->bitWidth() * _count);
    }
    panic("unknown type kind");
}

std::string
Type::toString() const
{
    switch (_kind) {
      case Kind::Void:
        return "void";
      case Kind::Label:
        return "label";
      case Kind::Integer:
        return "i" + std::to_string(_bits);
      case Kind::Float:
        return "float";
      case Kind::Double:
        return "double";
      case Kind::Pointer:
        return _elem->toString() + "*";
      case Kind::Array:
        return "[" + std::to_string(_count) + " x " +
               _elem->toString() + "]";
    }
    panic("unknown type kind");
}

} // namespace salam::ir

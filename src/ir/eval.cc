#include "eval.hh"

#include <cmath>

#include "sim/logging.hh"

namespace salam::ir
{

RuntimeValue
RuntimeValue::fromFP(const Type *type, double v)
{
    return type->isFloat() ? fromFloat(static_cast<float>(v))
                           : fromDouble(v);
}

RuntimeValue
evalConstant(const Value *value)
{
    if (auto *ci = dynamic_cast<const ConstantInt *>(value))
        return RuntimeValue::fromInt(ci->type(), ci->zext());
    if (auto *cf = dynamic_cast<const ConstantFP *>(value))
        return RuntimeValue::fromFP(cf->type(), cf->value());
    panic("evalConstant on non-constant value '%s'",
          value->name().c_str());
}

RuntimeValue
evalBinary(Opcode op, const Type *type, RuntimeValue a, RuntimeValue b)
{
    using RV = RuntimeValue;
    if (type->isFloatingPoint()) {
        double x = a.asFP(type);
        double y = b.asFP(type);
        switch (op) {
          case Opcode::FAdd: return RV::fromFP(type, x + y);
          case Opcode::FSub: return RV::fromFP(type, x - y);
          case Opcode::FMul: return RV::fromFP(type, x * y);
          case Opcode::FDiv: return RV::fromFP(type, x / y);
          default:
            panic("non-FP opcode %s on FP type", opcodeName(op));
        }
    }

    std::uint64_t ua = a.asUInt(type);
    std::uint64_t ub = b.asUInt(type);
    std::int64_t sa = a.asSInt(type);
    std::int64_t sb = b.asSInt(type);
    unsigned width = type->isInteger() ? type->intBits() : 64;

    switch (op) {
      case Opcode::Add: return RV::fromInt(type, ua + ub);
      case Opcode::Sub: return RV::fromInt(type, ua - ub);
      case Opcode::Mul: return RV::fromInt(type, ua * ub);
      case Opcode::UDiv:
        if (ub == 0)
            fatal("udiv by zero in simulated kernel");
        return RV::fromInt(type, ua / ub);
      case Opcode::SDiv:
        if (sb == 0)
            fatal("sdiv by zero in simulated kernel");
        return RV::fromInt(type,
                           static_cast<std::uint64_t>(sa / sb));
      case Opcode::URem:
        if (ub == 0)
            fatal("urem by zero in simulated kernel");
        return RV::fromInt(type, ua % ub);
      case Opcode::SRem:
        if (sb == 0)
            fatal("srem by zero in simulated kernel");
        return RV::fromInt(type,
                           static_cast<std::uint64_t>(sa % sb));
      case Opcode::And: return RV::fromInt(type, ua & ub);
      case Opcode::Or: return RV::fromInt(type, ua | ub);
      case Opcode::Xor: return RV::fromInt(type, ua ^ ub);
      case Opcode::Shl:
        return RV::fromInt(type, ub >= width ? 0 : ua << ub);
      case Opcode::LShr:
        return RV::fromInt(type, ub >= width ? 0 : ua >> ub);
      case Opcode::AShr:
        if (ub >= width)
            return RV::fromInt(type,
                               static_cast<std::uint64_t>(sa < 0 ? -1
                                                                 : 0));
        return RV::fromInt(type, static_cast<std::uint64_t>(sa >> sb));
      default:
        panic("unsupported binary opcode %s", opcodeName(op));
    }
}

RuntimeValue
evalCompare(Opcode op, Predicate pred, const Type *opnd_type,
            RuntimeValue a, RuntimeValue b)
{
    bool result = false;
    if (op == Opcode::FCmp) {
        double x = a.asFP(opnd_type);
        double y = b.asFP(opnd_type);
        switch (pred) {
          case Predicate::OEQ: result = x == y; break;
          case Predicate::ONE: result = x != y; break;
          case Predicate::OGT: result = x > y; break;
          case Predicate::OGE: result = x >= y; break;
          case Predicate::OLT: result = x < y; break;
          case Predicate::OLE: result = x <= y; break;
          default:
            panic("integer predicate on fcmp");
        }
    } else {
        std::uint64_t ua = a.asUInt(opnd_type);
        std::uint64_t ub = b.asUInt(opnd_type);
        std::int64_t sa = a.asSInt(opnd_type);
        std::int64_t sb = b.asSInt(opnd_type);
        switch (pred) {
          case Predicate::EQ: result = ua == ub; break;
          case Predicate::NE: result = ua != ub; break;
          case Predicate::UGT: result = ua > ub; break;
          case Predicate::UGE: result = ua >= ub; break;
          case Predicate::ULT: result = ua < ub; break;
          case Predicate::ULE: result = ua <= ub; break;
          case Predicate::SGT: result = sa > sb; break;
          case Predicate::SGE: result = sa >= sb; break;
          case Predicate::SLT: result = sa < sb; break;
          case Predicate::SLE: result = sa <= sb; break;
          default:
            panic("FP predicate on icmp");
        }
    }
    RuntimeValue rv;
    rv.bits = result ? 1 : 0;
    return rv;
}

RuntimeValue
evalCast(Opcode op, const Type *src_type, const Type *dest_type,
         RuntimeValue v)
{
    using RV = RuntimeValue;
    switch (op) {
      case Opcode::Trunc:
        return RV::fromInt(dest_type, v.bits);
      case Opcode::ZExt:
        return RV::fromInt(dest_type, v.asUInt(src_type));
      case Opcode::SExt:
        return RV::fromInt(dest_type, static_cast<std::uint64_t>(
                                          v.asSInt(src_type)));
      case Opcode::FPToSI:
        return RV::fromInt(dest_type, static_cast<std::uint64_t>(
                                          static_cast<std::int64_t>(
                                              v.asFP(src_type))));
      case Opcode::SIToFP:
        return RV::fromFP(dest_type,
                          static_cast<double>(v.asSInt(src_type)));
      case Opcode::FPTrunc:
      case Opcode::FPExt:
        return RV::fromFP(dest_type, v.asFP(src_type));
      case Opcode::BitCast:
      case Opcode::PtrToInt:
      case Opcode::IntToPtr:
        return v;
      default:
        panic("unsupported cast opcode %s", opcodeName(op));
    }
}

RuntimeValue
evalIntrinsic(const std::string &callee, const Type *type,
              const std::vector<RuntimeValue> &args)
{
    auto arg = [&](std::size_t i) { return args.at(i).asFP(type); };
    if (callee == "sqrt")
        return RuntimeValue::fromFP(type, std::sqrt(arg(0)));
    if (callee == "exp")
        return RuntimeValue::fromFP(type, std::exp(arg(0)));
    if (callee == "log")
        return RuntimeValue::fromFP(type, std::log(arg(0)));
    if (callee == "sin")
        return RuntimeValue::fromFP(type, std::sin(arg(0)));
    if (callee == "cos")
        return RuntimeValue::fromFP(type, std::cos(arg(0)));
    if (callee == "fabs")
        return RuntimeValue::fromFP(type, std::fabs(arg(0)));
    if (callee == "pow")
        return RuntimeValue::fromFP(type, std::pow(arg(0), arg(1)));
    fatal("unknown intrinsic '%s'", callee.c_str());
}

std::int64_t
evalGepOffset(const GetElementPtrInst &gep,
              const std::vector<RuntimeValue> &indices)
{
    SALAM_ASSERT(indices.size() == gep.numIndices());
    const Type *cur = gep.sourceElementType();
    std::int64_t offset = 0;
    for (std::size_t i = 0; i < indices.size(); ++i) {
        std::int64_t idx =
            indices[i].asSInt(gep.index(i)->type());
        if (i == 0) {
            offset += idx *
                static_cast<std::int64_t>(cur->storeSize());
        } else {
            SALAM_ASSERT(cur->isArray());
            cur = cur->arrayElement();
            offset += idx *
                static_cast<std::int64_t>(cur->storeSize());
        }
    }
    return offset;
}

RuntimeValue
evalCompute(const Instruction &inst,
            const std::vector<RuntimeValue> &operands)
{
    Opcode op = inst.opcode();
    switch (op) {
      case Opcode::ICmp:
      case Opcode::FCmp: {
        const auto &cmp = static_cast<const CmpInst &>(inst);
        return evalCompare(op, cmp.predicate(), cmp.lhs()->type(),
                           operands.at(0), operands.at(1));
      }
      case Opcode::Trunc:
      case Opcode::ZExt:
      case Opcode::SExt:
      case Opcode::FPToSI:
      case Opcode::SIToFP:
      case Opcode::FPTrunc:
      case Opcode::FPExt:
      case Opcode::BitCast:
      case Opcode::PtrToInt:
      case Opcode::IntToPtr: {
        const auto &cast = static_cast<const CastInst &>(inst);
        return evalCast(op, cast.source()->type(), cast.type(),
                        operands.at(0));
      }
      case Opcode::Select:
        return operands.at(0).asBool() ? operands.at(1)
                                       : operands.at(2);
      case Opcode::GetElementPtr: {
        const auto &gep =
            static_cast<const GetElementPtrInst &>(inst);
        std::vector<RuntimeValue> indices(operands.begin() + 1,
                                          operands.end());
        std::uint64_t base = operands.at(0).bits;
        std::int64_t off = evalGepOffset(gep, indices);
        return RuntimeValue::fromPointer(
            base + static_cast<std::uint64_t>(off));
      }
      case Opcode::Call: {
        const auto &call = static_cast<const CallInst &>(inst);
        return evalIntrinsic(call.callee(), call.type(), operands);
      }
      default:
        if (inst.isComputeOp()) {
            return evalBinary(op, inst.type(), operands.at(0),
                              operands.at(1));
        }
        panic("evalCompute on non-compute opcode %s", opcodeName(op));
    }
}

} // namespace salam::ir

/**
 * @file
 * The IR type system, closely modeled on LLVM's.
 *
 * Types are immutable and interned: each distinct type exists exactly
 * once per Context, so types compare by pointer. Supported kinds are
 * void, iN integers, float, double, labels, pointers, and arrays —
 * the subset MachSuite-style accelerator kernels need.
 */

#ifndef SALAM_IR_TYPE_HH
#define SALAM_IR_TYPE_HH

#include <cstdint>
#include <string>

namespace salam::ir
{

class Context;

/** An interned IR type. Compare with ==; obtain from a Context. */
class Type
{
  public:
    enum class Kind
    {
        Void,
        Integer,
        Float,
        Double,
        Label,
        Pointer,
        Array,
    };

    Kind kind() const { return _kind; }

    bool isVoid() const { return _kind == Kind::Void; }

    bool isInteger() const { return _kind == Kind::Integer; }

    bool isFloat() const { return _kind == Kind::Float; }

    bool isDouble() const { return _kind == Kind::Double; }

    bool isFloatingPoint() const { return isFloat() || isDouble(); }

    bool isLabel() const { return _kind == Kind::Label; }

    bool isPointer() const { return _kind == Kind::Pointer; }

    bool isArray() const { return _kind == Kind::Array; }

    /** Integer bit width; only valid for integer types. */
    unsigned intBits() const { return _bits; }

    /** Pointee type; only valid for pointers. */
    const Type *pointee() const { return _elem; }

    /** Element type; only valid for arrays. */
    const Type *arrayElement() const { return _elem; }

    /** Element count; only valid for arrays. */
    std::uint64_t arrayCount() const { return _count; }

    /**
     * Size in bytes when stored in simulated memory (the data layout).
     * Integers round up to whole bytes; pointers are 8 bytes.
     */
    std::uint64_t storeSize() const;

    /** Bit width of the value itself (register width). */
    unsigned bitWidth() const;

    /** Render in LLVM assembly syntax, e.g. "i32", "[8 x double]". */
    std::string toString() const;

  private:
    friend class Context;

    Type(Kind kind, unsigned bits, const Type *elem, std::uint64_t count)
        : _kind(kind), _bits(bits), _elem(elem), _count(count)
    {}

    Kind _kind;
    unsigned _bits;
    const Type *_elem;
    std::uint64_t _count;
};

} // namespace salam::ir

#endif // SALAM_IR_TYPE_HH

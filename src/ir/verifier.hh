/**
 * @file
 * Verifier: structural and SSA well-formedness checks.
 *
 * Run after construction or parsing and before simulation; the static
 * elaborator and runtime engine assume verified IR. Checks include
 * terminator presence, phi/predecessor agreement, operand typing, and
 * SSA dominance (every use dominated by its definition).
 */

#ifndef SALAM_IR_VERIFIER_HH
#define SALAM_IR_VERIFIER_HH

#include <map>
#include <string>
#include <vector>

#include "function.hh"

namespace salam::ir
{

/** IR validity checker. */
class Verifier
{
  public:
    /**
     * Verify a function.
     * @return list of human-readable problems; empty when valid.
     */
    static std::vector<std::string> verify(const Function &fn);

    /** Verify every function in a module. */
    static std::vector<std::string> verify(const Module &module);

    /** Verify and fatal() with the first problem if invalid. */
    static void verifyOrDie(const Function &fn);

    /**
     * Dominator sets for each block of @p fn: result[b] contains all
     * blocks that dominate block index b (including itself). Exposed
     * for the optimizer's loop analysis.
     */
    static std::vector<std::vector<bool>>
    dominators(const Function &fn);
};

} // namespace salam::ir

#endif // SALAM_IR_VERIFIER_HH

/**
 * @file
 * Value: the base of the IR object hierarchy.
 *
 * Everything an instruction can reference — arguments, constants,
 * other instructions, basic blocks (as branch targets) — is a Value
 * with a Type. Values are owned by their containers (Function owns
 * arguments and blocks; BasicBlock owns instructions; Module owns
 * constants) and referenced by raw pointer elsewhere.
 */

#ifndef SALAM_IR_VALUE_HH
#define SALAM_IR_VALUE_HH

#include <cstdint>
#include <string>

#include "type.hh"

namespace salam::ir
{

/** Base class for all IR entities that can be used as operands. */
class Value
{
  public:
    enum class ValueKind
    {
        Argument,
        ConstantInt,
        ConstantFP,
        Instruction,
        BasicBlock,
        Function,
    };

    Value(ValueKind kind, const Type *type, std::string name)
        : _kind(kind), _type(type), _name(std::move(name))
    {}

    virtual ~Value() = default;

    Value(const Value &) = delete;
    Value &operator=(const Value &) = delete;

    ValueKind valueKind() const { return _kind; }

    const Type *type() const { return _type; }

    const std::string &name() const { return _name; }

    void setName(std::string name) { _name = std::move(name); }

    bool isConstant() const
    {
        return _kind == ValueKind::ConstantInt ||
               _kind == ValueKind::ConstantFP;
    }

  private:
    ValueKind _kind;
    const Type *_type;
    std::string _name;
};

/** A formal parameter of a Function. */
class Argument : public Value
{
  public:
    Argument(const Type *type, std::string name, unsigned index)
        : Value(ValueKind::Argument, type, std::move(name)),
          _index(index)
    {}

    unsigned index() const { return _index; }

  private:
    unsigned _index;
};

/** An integer constant, stored as raw (zero-extended) bits. */
class ConstantInt : public Value
{
  public:
    ConstantInt(const Type *type, std::uint64_t bits)
        : Value(ValueKind::ConstantInt, type, ""), _bits(bits)
    {}

    /** Raw bits, masked to the type width. */
    std::uint64_t zext() const { return _bits; }

    /** Sign-extended interpretation. */
    std::int64_t
    sext() const
    {
        unsigned width = type()->intBits();
        if (width == 64)
            return static_cast<std::int64_t>(_bits);
        std::uint64_t sign = 1ULL << (width - 1);
        std::uint64_t mask = (1ULL << width) - 1;
        std::uint64_t v = _bits & mask;
        return static_cast<std::int64_t>((v ^ sign) - sign);
    }

  private:
    std::uint64_t _bits;
};

/** A floating-point constant (float or double). */
class ConstantFP : public Value
{
  public:
    ConstantFP(const Type *type, double value)
        : Value(ValueKind::ConstantFP, type, ""), _value(value)
    {}

    double value() const { return _value; }

  private:
    double _value;
};

} // namespace salam::ir

#endif // SALAM_IR_VALUE_HH

#include "parser.hh"

#include <cctype>
#include <cstring>
#include <map>
#include <optional>
#include <sstream>
#include <vector>

#include "sim/logging.hh"

namespace salam::ir
{

namespace
{

/** Internal stand-in for a value referenced before its definition. */
class Placeholder : public Value
{
  public:
    Placeholder(const Type *type, std::string name)
        : Value(ValueKind::Argument, type, std::move(name))
    {}
};

/** Cursor over one line of text. */
class LineCursor
{
  public:
    LineCursor(const std::string &text, unsigned line_no)
        : text(text), lineNo(line_no)
    {}

    void
    skipSpace()
    {
        while (pos < text.size() &&
               std::isspace(static_cast<unsigned char>(text[pos]))) {
            ++pos;
        }
    }

    bool
    atEnd()
    {
        skipSpace();
        return pos >= text.size();
    }

    char
    peek()
    {
        skipSpace();
        return pos < text.size() ? text[pos] : '\0';
    }

    /** Consume @p token if next; return whether consumed. */
    bool
    tryConsume(const std::string &token)
    {
        skipSpace();
        if (text.compare(pos, token.size(), token) == 0) {
            // Word tokens must not continue as identifier chars.
            if (isWordChar(token.back())) {
                std::size_t after = pos + token.size();
                if (after < text.size() && isWordChar(text[after]))
                    return false;
            }
            pos += token.size();
            return true;
        }
        return false;
    }

    void
    expect(const std::string &token)
    {
        if (!tryConsume(token))
            fail("expected '" + token + "'");
    }

    /** Read a bare word (letters, digits, '.', '_', '-'). */
    std::string
    word()
    {
        skipSpace();
        std::size_t start = pos;
        while (pos < text.size() && isWordChar(text[pos]))
            ++pos;
        if (pos == start)
            fail("expected identifier");
        return text.substr(start, pos - start);
    }

    /** Read "%name" and return the name. */
    std::string
    localName()
    {
        expect("%");
        return word();
    }

    std::int64_t
    integer()
    {
        skipSpace();
        std::size_t start = pos;
        if (pos < text.size() && (text[pos] == '-' || text[pos] == '+'))
            ++pos;
        while (pos < text.size() &&
               std::isdigit(static_cast<unsigned char>(text[pos]))) {
            ++pos;
        }
        if (pos == start)
            fail("expected integer");
        return std::stoll(text.substr(start, pos - start));
    }

    [[noreturn]] void
    fail(const std::string &message) const
    {
        throw ParseError(lineNo, message + " near '" +
                                     text.substr(pos, 24) + "'");
    }

    unsigned line() const { return lineNo; }

  private:
    static bool
    isWordChar(char c)
    {
        return std::isalnum(static_cast<unsigned char>(c)) ||
               c == '.' || c == '_' || c == '-';
    }

    const std::string &text;
    std::size_t pos = 0;
    unsigned lineNo;
};

/** Parse a type expression using @p ctx for interning. */
const Type *
parseTypeExpr(const Context &ctx, LineCursor &cur)
{
    const Type *base = nullptr;
    if (cur.tryConsume("void")) {
        base = ctx.voidType();
    } else if (cur.tryConsume("float")) {
        base = ctx.floatType();
    } else if (cur.tryConsume("double")) {
        base = ctx.doubleType();
    } else if (cur.tryConsume("label")) {
        base = ctx.labelType();
    } else if (cur.tryConsume("[")) {
        std::int64_t count = cur.integer();
        cur.expect("x");
        const Type *elem = parseTypeExpr(ctx, cur);
        cur.expect("]");
        base = ctx.arrayOf(elem, static_cast<std::uint64_t>(count));
    } else if (cur.peek() == 'i') {
        std::string w = cur.word();
        if (w.size() < 2 || w[0] != 'i')
            cur.fail("unknown type '" + w + "'");
        base = ctx.intType(
            static_cast<unsigned>(std::stoul(w.substr(1))));
    } else {
        cur.fail("expected type");
    }
    while (cur.tryConsume("*"))
        base = ctx.pointerTo(base);
    return base;
}

/** Per-function parsing state. */
class FunctionParser
{
  public:
    FunctionParser(Module &mod, Function &fn)
        : mod(mod), ctx(mod.context()), fn(fn)
    {}

    /** Register a named definition (argument or instruction). */
    void
    define(const std::string &name, Value *value, LineCursor &cur)
    {
        auto [it, inserted] = values.emplace(name, value);
        if (!inserted)
            cur.fail("redefinition of %" + name);
    }

    const Type *
    parseType(LineCursor &cur)
    {
        return parseTypeExpr(ctx, cur);
    }

    /**
     * Resolve an operand of known type. Literals become constants;
     * unknown names become placeholders patched later.
     */
    Value *
    parseOperand(const Type *type, LineCursor &cur)
    {
        char c = cur.peek();
        if (c == '%') {
            std::string name = cur.localName();
            auto it = values.find(name);
            if (it != values.end())
                return it->second;
            placeholders.push_back(
                std::make_unique<Placeholder>(type, name));
            return placeholders.back().get();
        }
        if (type->isFloatingPoint()) {
            // Either a 64-bit hex encoding (printer output) or a
            // decimal literal (hand-written input).
            std::string w = cur.word();
            if (w.size() > 2 && w[0] == '0' &&
                (w[1] == 'x' || w[1] == 'X')) {
                std::uint64_t bits =
                    std::stoull(w.substr(2), nullptr, 16);
                double d;
                std::memcpy(&d, &bits, sizeof(d));
                return mod.getConstantFP(type, d);
            }
            return mod.getConstantFP(type, std::stod(w));
        }
        std::int64_t v = cur.integer();
        return mod.getConstantInt(type,
                                  static_cast<std::uint64_t>(v));
    }

    BasicBlock *
    blockByName(const std::string &name, LineCursor &cur)
    {
        BasicBlock *block = fn.findBlock(name);
        if (block == nullptr)
            cur.fail("unknown block %" + name);
        return block;
    }

    /** Parse one instruction line and append it to @p block. */
    void
    parseInstruction(BasicBlock *block, LineCursor &cur)
    {
        std::string result;
        bool has_result = false;
        if (cur.peek() == '%') {
            result = cur.localName();
            cur.expect("=");
            has_result = true;
        }

        std::string op = cur.word();
        Instruction *inst = nullptr;

        auto binop = opcodeForBinary(op);
        if (binop) {
            const Type *type = parseType(cur);
            Value *lhs = parseOperand(type, cur);
            cur.expect(",");
            Value *rhs = parseOperand(type, cur);
            inst = block->append(std::make_unique<BinaryOp>(
                *binop, lhs, rhs, result));
        } else if (op == "icmp" || op == "fcmp") {
            Predicate pred = parsePredicate(cur.word(), cur);
            const Type *type = parseType(cur);
            Value *lhs = parseOperand(type, cur);
            cur.expect(",");
            Value *rhs = parseOperand(type, cur);
            inst = block->append(std::make_unique<CmpInst>(
                op == "icmp" ? Opcode::ICmp : Opcode::FCmp, pred,
                ctx.i1(), lhs, rhs, result));
        } else if (auto castop = opcodeForCast(op)) {
            const Type *src_type = parseType(cur);
            Value *src = parseOperand(src_type, cur);
            cur.expect("to");
            const Type *dest = parseType(cur);
            inst = block->append(std::make_unique<CastInst>(
                *castop, src, dest, result));
        } else if (op == "load") {
            const Type *type = parseType(cur);
            cur.expect(",");
            const Type *ptr_type = parseType(cur);
            if (ptr_type != ctx.pointerTo(type))
                cur.fail("load pointer/result type mismatch");
            Value *ptr = parseOperand(ptr_type, cur);
            inst = block->append(
                std::make_unique<LoadInst>(ptr, result));
        } else if (op == "store") {
            const Type *vtype = parseType(cur);
            Value *v = parseOperand(vtype, cur);
            cur.expect(",");
            const Type *ptr_type = parseType(cur);
            Value *ptr = parseOperand(ptr_type, cur);
            inst = block->append(std::make_unique<StoreInst>(
                ctx.voidType(), v, ptr));
        } else if (op == "getelementptr") {
            const Type *src_elem = parseType(cur);
            cur.expect(",");
            const Type *base_type = parseType(cur);
            Value *base = parseOperand(base_type, cur);
            std::vector<Value *> indices;
            while (cur.tryConsume(",")) {
                const Type *ity = parseType(cur);
                indices.push_back(parseOperand(ity, cur));
            }
            const Type *walked = src_elem;
            for (std::size_t i = 1; i < indices.size(); ++i) {
                if (!walked->isArray())
                    cur.fail("gep steps into non-array type");
                walked = walked->arrayElement();
            }
            inst = block->append(std::make_unique<GetElementPtrInst>(
                src_elem, ctx.pointerTo(walked), base, indices,
                result));
        } else if (op == "phi") {
            const Type *type = parseType(cur);
            auto phi = std::make_unique<PhiInst>(type, result);
            bool first = true;
            while (first || cur.tryConsume(",")) {
                first = false;
                cur.expect("[");
                Value *v = parseOperand(type, cur);
                cur.expect(",");
                std::string bb = cur.localName();
                cur.expect("]");
                phi->addIncoming(v, blockByName(bb, cur));
            }
            inst = block->append(std::move(phi));
        } else if (op == "select") {
            const Type *ctype = parseType(cur);
            Value *cond = parseOperand(ctype, cur);
            cur.expect(",");
            const Type *ttype = parseType(cur);
            Value *tval = parseOperand(ttype, cur);
            cur.expect(",");
            const Type *ftype = parseType(cur);
            Value *fval = parseOperand(ftype, cur);
            inst = block->append(std::make_unique<SelectInst>(
                cond, tval, fval, result));
        } else if (op == "call") {
            const Type *rtype = parseType(cur);
            cur.expect("@");
            std::string callee = cur.word();
            cur.expect("(");
            std::vector<Value *> args;
            if (!cur.tryConsume(")")) {
                do {
                    const Type *atype = parseType(cur);
                    args.push_back(parseOperand(atype, cur));
                } while (cur.tryConsume(","));
                cur.expect(")");
            }
            inst = block->append(std::make_unique<CallInst>(
                rtype, callee, args, result));
        } else if (op == "br") {
            if (cur.tryConsume("label")) {
                std::string bb = cur.localName();
                inst = block->append(std::make_unique<BranchInst>(
                    ctx.voidType(), blockByName(bb, cur)));
            } else {
                cur.expect("i1");
                Value *cond = parseOperand(ctx.i1(), cur);
                cur.expect(",");
                cur.expect("label");
                std::string tbb = cur.localName();
                cur.expect(",");
                cur.expect("label");
                std::string fbb = cur.localName();
                inst = block->append(std::make_unique<BranchInst>(
                    ctx.voidType(), cond, blockByName(tbb, cur),
                    blockByName(fbb, cur)));
            }
        } else if (op == "ret") {
            if (cur.tryConsume("void")) {
                inst = block->append(
                    std::make_unique<ReturnInst>(ctx.voidType()));
            } else {
                const Type *type = parseType(cur);
                Value *v = parseOperand(type, cur);
                inst = block->append(std::make_unique<ReturnInst>(
                    ctx.voidType(), v));
            }
        } else {
            cur.fail("unknown instruction '" + op + "'");
        }

        if (has_result)
            define(result, inst, cur);
        if (!cur.atEnd())
            cur.fail("trailing tokens after instruction");
    }

    /** Replace placeholders with the now-defined values. */
    void
    resolvePlaceholders(unsigned line_no)
    {
        for (auto &ph : placeholders) {
            auto it = values.find(ph->name());
            if (it == values.end()) {
                throw ParseError(line_no, "use of undefined value %" +
                                              ph->name());
            }
            for (std::size_t b = 0; b < fn.numBlocks(); ++b) {
                BasicBlock *block = fn.block(b);
                for (std::size_t i = 0; i < block->size(); ++i) {
                    block->instruction(i)->replaceUsesOf(ph.get(),
                                                         it->second);
                }
            }
        }
        placeholders.clear();
    }

  private:
    static std::optional<Opcode>
    opcodeForBinary(const std::string &op)
    {
        static const std::map<std::string, Opcode> table = {
            {"add", Opcode::Add}, {"sub", Opcode::Sub},
            {"mul", Opcode::Mul}, {"udiv", Opcode::UDiv},
            {"sdiv", Opcode::SDiv}, {"urem", Opcode::URem},
            {"srem", Opcode::SRem}, {"and", Opcode::And},
            {"or", Opcode::Or}, {"xor", Opcode::Xor},
            {"shl", Opcode::Shl}, {"lshr", Opcode::LShr},
            {"ashr", Opcode::AShr}, {"fadd", Opcode::FAdd},
            {"fsub", Opcode::FSub}, {"fmul", Opcode::FMul},
            {"fdiv", Opcode::FDiv},
        };
        auto it = table.find(op);
        if (it == table.end())
            return std::nullopt;
        return it->second;
    }

    static std::optional<Opcode>
    opcodeForCast(const std::string &op)
    {
        static const std::map<std::string, Opcode> table = {
            {"trunc", Opcode::Trunc}, {"zext", Opcode::ZExt},
            {"sext", Opcode::SExt}, {"fptosi", Opcode::FPToSI},
            {"sitofp", Opcode::SIToFP}, {"fptrunc", Opcode::FPTrunc},
            {"fpext", Opcode::FPExt}, {"bitcast", Opcode::BitCast},
            {"ptrtoint", Opcode::PtrToInt},
            {"inttoptr", Opcode::IntToPtr},
        };
        auto it = table.find(op);
        if (it == table.end())
            return std::nullopt;
        return it->second;
    }

    static Predicate
    parsePredicate(const std::string &word, LineCursor &cur)
    {
        static const std::map<std::string, Predicate> table = {
            {"eq", Predicate::EQ}, {"ne", Predicate::NE},
            {"ugt", Predicate::UGT}, {"uge", Predicate::UGE},
            {"ult", Predicate::ULT}, {"ule", Predicate::ULE},
            {"sgt", Predicate::SGT}, {"sge", Predicate::SGE},
            {"slt", Predicate::SLT}, {"sle", Predicate::SLE},
            {"oeq", Predicate::OEQ}, {"one", Predicate::ONE},
            {"ogt", Predicate::OGT}, {"oge", Predicate::OGE},
            {"olt", Predicate::OLT}, {"ole", Predicate::OLE},
        };
        auto it = table.find(word);
        if (it == table.end())
            cur.fail("unknown predicate '" + word + "'");
        return it->second;
    }

    Module &mod;
    Context &ctx;
    Function &fn;
    std::map<std::string, Value *> values;
    std::vector<std::unique_ptr<Placeholder>> placeholders;
};

std::string
stripComment(const std::string &line)
{
    auto pos = line.find(';');
    return pos == std::string::npos ? line : line.substr(0, pos);
}

bool
isBlank(const std::string &line)
{
    for (char c : line) {
        if (!std::isspace(static_cast<unsigned char>(c)))
            return false;
    }
    return true;
}

} // namespace

std::unique_ptr<Module>
Parser::parseModule(const std::string &text,
                    const std::string &module_name)
{
    auto module = std::make_unique<Module>(module_name);

    std::vector<std::string> lines;
    {
        std::istringstream stream(text);
        std::string line;
        while (std::getline(stream, line))
            lines.push_back(stripComment(line));
    }

    const Context &ctx = module->context();

    std::size_t i = 0;
    while (i < lines.size()) {
        if (isBlank(lines[i])) {
            ++i;
            continue;
        }

        // Function header: define <type> @<name>(<args>) {
        unsigned header_line = static_cast<unsigned>(i + 1);
        LineCursor cur(lines[i], header_line);
        cur.expect("define");
        const Type *ret_type = parseTypeExpr(ctx, cur);
        cur.expect("@");
        std::string fname = cur.word();
        cur.expect("(");

        Function *fn = module->addFunction(fname, ret_type);
        FunctionParser parser(*module, *fn);

        if (!cur.tryConsume(")")) {
            do {
                const Type *atype = parseTypeExpr(ctx, cur);
                std::string aname = cur.localName();
                Argument *arg = fn->addArgument(atype, aname);
                parser.define(aname, arg, cur);
            } while (cur.tryConsume(","));
            cur.expect(")");
        }
        cur.expect("{");
        ++i;

        // First pass: pre-create blocks so branch targets resolve.
        std::size_t body_start = i;
        for (std::size_t j = i; j < lines.size(); ++j) {
            std::string line = lines[j];
            if (isBlank(line))
                continue;
            LineCursor scan(line, static_cast<unsigned>(j + 1));
            if (scan.tryConsume("}"))
                break;
            // A label line is "<word>:".
            auto colon = line.find(':');
            if (colon != std::string::npos &&
                line.find('=') == std::string::npos &&
                isBlank(line.substr(colon + 1))) {
                LineCursor lab(line, static_cast<unsigned>(j + 1));
                std::string label = lab.word();
                fn->addBlock(std::make_unique<BasicBlock>(
                    ctx.labelType(), label));
            }
        }
        if (fn->numBlocks() == 0) {
            throw ParseError(header_line,
                             "function @" + fname + " has no blocks");
        }

        // Second pass: parse instructions into blocks.
        BasicBlock *block = nullptr;
        unsigned last_line = header_line;
        bool closed = false;
        for (i = body_start; i < lines.size(); ++i) {
            std::string line = lines[i];
            unsigned line_no = static_cast<unsigned>(i + 1);
            last_line = line_no;
            if (isBlank(line))
                continue;
            LineCursor body(line, line_no);
            if (body.tryConsume("}")) {
                closed = true;
                ++i;
                break;
            }
            auto colon = line.find(':');
            if (colon != std::string::npos &&
                line.find('=') == std::string::npos &&
                isBlank(line.substr(colon + 1))) {
                LineCursor lab(line, line_no);
                block = fn->findBlock(lab.word());
                continue;
            }
            if (block == nullptr) {
                throw ParseError(line_no,
                                 "instruction before first label");
            }
            parser.parseInstruction(block, body);
        }
        if (!closed)
            throw ParseError(last_line, "missing closing '}'");

        parser.resolvePlaceholders(last_line);
    }

    return module;
}

} // namespace salam::ir

/**
 * @file
 * HardwareProfile: the validated power/area/latency characterization.
 *
 * Plays the role of gem5-SALAM's "hardware profile" input: per
 * functional-unit latency, leakage power, per-operation dynamic
 * energy, and area, plus a single-bit register model. The default
 * profile corresponds to a 40nm standard-cell library characterized
 * against RTL synthesis (in this reproduction, numbers are derived
 * from published Aladdin/gem5-SALAM-era 40nm figures; the validation
 * benches compare against an independent estimator rather than
 * absolute silicon numbers).
 *
 * Device configs may override any entry or cap the available count of
 * a unit type to force reuse.
 */

#ifndef SALAM_HW_HARDWARE_PROFILE_HH
#define SALAM_HW_HARDWARE_PROFILE_HH

#include <array>
#include <cstdint>

#include "functional_unit.hh"

namespace salam::hw
{

/** Characterization of one functional-unit type. */
struct FuParams
{
    /** Operation latency in accelerator cycles. */
    unsigned latencyCycles = 1;
    /** Initiation interval: cycles between issues to one unit. */
    unsigned initiationInterval = 1;
    /** Static leakage power per instantiated unit (mW). */
    double leakagePowerMw = 0.0;
    /** Dynamic energy per operation (pJ), internal + switching. */
    double dynamicEnergyPj = 0.0;
    /** Silicon area per unit (um^2). */
    double areaUm2 = 0.0;
};

/** Characterization of one bit of datapath register storage. */
struct RegisterParams
{
    double leakagePowerMwPerBit = 0.0;
    double readEnergyPjPerBit = 0.0;
    double writeEnergyPjPerBit = 0.0;
    double areaUm2PerBit = 0.0;
};

/** The full profile: FU table + register model. */
class HardwareProfile
{
  public:
    /** The validated default 40nm profile. */
    static HardwareProfile defaultProfile();

    const FuParams &
    fu(FuType type) const
    {
        return table[static_cast<std::size_t>(type)];
    }

    FuParams &
    fu(FuType type)
    {
        return table[static_cast<std::size_t>(type)];
    }

    const RegisterParams &registers() const { return regs; }

    RegisterParams &registers() { return regs; }

    /** Latency for an instruction under this profile. */
    unsigned
    latencyFor(const ir::Instruction &inst) const
    {
        FuType type = fuTypeFor(inst);
        if (type == FuType::None)
            return 0;
        return fu(type).latencyCycles;
    }

  private:
    std::array<FuParams, numFuTypes> table{};
    RegisterParams regs{};
};

} // namespace salam::hw

#endif // SALAM_HW_HARDWARE_PROFILE_HH

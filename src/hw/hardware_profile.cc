#include "hardware_profile.hh"

namespace salam::hw
{

HardwareProfile
HardwareProfile::defaultProfile()
{
    HardwareProfile p;

    auto set = [&p](FuType type, unsigned latency, unsigned ii,
                    double leak_mw, double energy_pj,
                    double area_um2) {
        p.fu(type) = FuParams{latency, ii, leak_mw, energy_pj,
                              area_um2};
    };

    // 40nm-class characterization. Latencies follow gem5-SALAM's
    // defaults: single-cycle integer ops, 3-stage pipelined FP
    // add/mul, long-latency unpipelined dividers.
    set(FuType::None, 0, 1, 0.0, 0.0, 0.0);
    set(FuType::IntAdder, 1, 1, 0.0035, 1.1, 280.0);
    set(FuType::IntMultiplier, 1, 1, 0.0320, 6.5, 4200.0);
    set(FuType::IntDivider, 16, 16, 0.0450, 28.0, 9800.0);
    set(FuType::Shifter, 1, 1, 0.0042, 1.3, 430.0);
    set(FuType::Bitwise, 1, 1, 0.0018, 0.45, 160.0);
    set(FuType::Comparator, 1, 1, 0.0021, 0.52, 190.0);
    set(FuType::Multiplexer, 1, 1, 0.0016, 0.38, 140.0);
    set(FuType::FpAddSub, 3, 1, 0.0280, 7.8, 5200.0);
    set(FuType::FpMultiplier, 3, 1, 0.0520, 13.0, 9400.0);
    set(FuType::FpDivider, 12, 12, 0.0760, 52.0, 18000.0);
    set(FuType::FpAddSubDouble, 3, 1, 0.0510, 16.4, 9800.0);
    set(FuType::FpMultiplierDouble, 3, 1, 0.1040, 29.5, 19200.0);
    set(FuType::FpDividerDouble, 18, 18, 0.1480, 104.0, 36500.0);
    set(FuType::FpComparator, 1, 1, 0.0047, 1.1, 420.0);
    set(FuType::FpSpecial, 20, 20, 0.1900, 160.0, 48000.0);
    set(FuType::Conversion, 2, 1, 0.0110, 3.2, 2100.0);

    // Single-bit register (latch + clock tree share) @40nm.
    p.registers() = RegisterParams{
        /* leakagePowerMwPerBit = */ 7.5e-5,
        /* readEnergyPjPerBit  = */ 0.0018,
        /* writeEnergyPjPerBit = */ 0.0026,
        /* areaUm2PerBit       = */ 5.8,
    };

    return p;
}

} // namespace salam::hw

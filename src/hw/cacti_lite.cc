#include "cacti_lite.hh"

#include <algorithm>
#include <cmath>

namespace salam::hw
{

SramMetrics
CactiLite::evaluate(const SramConfig &config)
{
    // Reference point: 1 KiB, 4-byte word, single port, one bank.
    const double kib = std::max(
        1.0, static_cast<double>(config.sizeBytes) / 1024.0);
    const double word = static_cast<double>(config.wordBytes) / 4.0;
    const double ports = static_cast<double>(std::max(1u,
                                                      config.ports));
    const double banks = static_cast<double>(std::max(1u,
                                                      config.banks));

    // Bitline/wordline energy scales with the square root of the
    // per-bank capacity; wider words switch more bitlines.
    const double bank_kib = kib / banks;
    const double size_scale = std::pow(std::max(bank_kib, 0.25), 0.56);
    const double port_cell = 1.0 + 0.65 * (ports - 1.0);

    SramMetrics m;
    m.readEnergyPj = 0.62 * size_scale * word * std::sqrt(port_cell);
    m.writeEnergyPj = m.readEnergyPj * 1.18;
    // Leakage and area scale with total capacity and cell size.
    m.leakagePowerMw = 0.0125 * kib * port_cell *
        (1.0 + 0.04 * (banks - 1.0));
    m.areaUm2 = 6200.0 * std::pow(kib, 0.92) * port_cell *
        (1.0 + 0.06 * (banks - 1.0));
    // Latency grows logarithmically with per-bank depth.
    m.accessLatencyNs = 0.45 + 0.21 * std::log2(
        std::max(bank_kib, 0.25) * 4.0);
    return m;
}

SramMetrics
CactiLite::evaluateCache(const SramConfig &config, unsigned assoc)
{
    SramMetrics data = evaluate(config);

    // Tag array: assume 32-bit tags per block of wordBytes * 8 (a
    // typical 32-byte line with 4-byte words); model it as a narrow
    // SRAM plus comparator energy per way.
    SramConfig tag_cfg;
    tag_cfg.sizeBytes =
        std::max<std::uint64_t>(64, config.sizeBytes / 16);
    tag_cfg.wordBytes = 4;
    tag_cfg.ports = config.ports;
    tag_cfg.banks = config.banks;
    SramMetrics tag = evaluate(tag_cfg);

    const double ways = static_cast<double>(std::max(1u, assoc));
    SramMetrics m;
    m.readEnergyPj = data.readEnergyPj +
        tag.readEnergyPj * ways * 0.5 + 0.11 * ways;
    m.writeEnergyPj = data.writeEnergyPj + tag.writeEnergyPj;
    m.leakagePowerMw = data.leakagePowerMw + tag.leakagePowerMw +
        0.002 * ways;
    m.areaUm2 = data.areaUm2 + tag.areaUm2 + 310.0 * ways;
    m.accessLatencyNs = data.accessLatencyNs +
        0.18 + 0.02 * ways;
    return m;
}

} // namespace salam::hw

/**
 * @file
 * Power and area accounting structures.
 *
 * The runtime engine, scratchpads, and static elaborator each
 * contribute to a PowerBreakdown / AreaBreakdown; the categories
 * match Fig. 4 of the paper (dynamic FU / internal registers / SPM
 * read / SPM write, static FU / registers / SPM).
 */

#ifndef SALAM_HW_POWER_MODEL_HH
#define SALAM_HW_POWER_MODEL_HH

namespace salam::hw
{

/** Average-power breakdown over a run, in milliwatts. */
struct PowerBreakdown
{
    double dynamicFuMw = 0.0;
    double dynamicRegisterMw = 0.0;
    double dynamicSpmReadMw = 0.0;
    double dynamicSpmWriteMw = 0.0;
    double staticFuMw = 0.0;
    double staticRegisterMw = 0.0;
    double staticSpmMw = 0.0;

    double
    dynamicTotalMw() const
    {
        return dynamicFuMw + dynamicRegisterMw + dynamicSpmReadMw +
               dynamicSpmWriteMw;
    }

    double
    staticTotalMw() const
    {
        return staticFuMw + staticRegisterMw + staticSpmMw;
    }

    double totalMw() const
    { return dynamicTotalMw() + staticTotalMw(); }

    PowerBreakdown &
    operator+=(const PowerBreakdown &o)
    {
        dynamicFuMw += o.dynamicFuMw;
        dynamicRegisterMw += o.dynamicRegisterMw;
        dynamicSpmReadMw += o.dynamicSpmReadMw;
        dynamicSpmWriteMw += o.dynamicSpmWriteMw;
        staticFuMw += o.staticFuMw;
        staticRegisterMw += o.staticRegisterMw;
        staticSpmMw += o.staticSpmMw;
        return *this;
    }
};

/** Area breakdown in square micrometers. */
struct AreaBreakdown
{
    double fuUm2 = 0.0;
    double registerUm2 = 0.0;
    double spmUm2 = 0.0;

    double totalUm2() const { return fuUm2 + registerUm2 + spmUm2; }

    AreaBreakdown &
    operator+=(const AreaBreakdown &o)
    {
        fuUm2 += o.fuUm2;
        registerUm2 += o.registerUm2;
        spmUm2 += o.spmUm2;
        return *this;
    }
};

} // namespace salam::hw

#endif // SALAM_HW_POWER_MODEL_HH

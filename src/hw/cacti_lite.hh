/**
 * @file
 * CactiLite: analytic SRAM power/area model.
 *
 * Stands in for the McPAT/CACTI backend gem5-SALAM invokes for
 * private scratchpads and caches: given a memory configuration it
 * produces access energies, leakage, and area. The model uses the
 * standard power-law scaling of SRAM arrays (energy and delay grow
 * with the square root to ~0.6 power of capacity; leakage and area
 * roughly linearly; multi-porting multiplies cell size).
 */

#ifndef SALAM_HW_CACTI_LITE_HH
#define SALAM_HW_CACTI_LITE_HH

#include <cstdint>

namespace salam::hw
{

/** Configuration of one SRAM array (scratchpad or cache data array). */
struct SramConfig
{
    std::uint64_t sizeBytes = 1024;
    /** Access word width in bytes. */
    unsigned wordBytes = 4;
    /** Independent read/write ports. */
    unsigned ports = 1;
    /** Banks (partitions); each bank serves one access per cycle. */
    unsigned banks = 1;
};

/** CACTI-style output metrics. */
struct SramMetrics
{
    double readEnergyPj = 0.0;
    double writeEnergyPj = 0.0;
    double leakagePowerMw = 0.0;
    double areaUm2 = 0.0;
    /** Random access latency in nanoseconds. */
    double accessLatencyNs = 0.0;
};

/** Analytic SRAM estimator. */
class CactiLite
{
  public:
    /** Evaluate the model for @p config. */
    static SramMetrics evaluate(const SramConfig &config);

    /**
     * Cache overhead factor: tag array + comparators add energy,
     * leakage, and area on top of the data array. @p assoc is the
     * set associativity.
     */
    static SramMetrics evaluateCache(const SramConfig &config,
                                     unsigned assoc);
};

} // namespace salam::hw

#endif // SALAM_HW_CACTI_LITE_HH

#include "functional_unit.hh"

#include "sim/logging.hh"

namespace salam::hw
{

const char *
fuTypeName(FuType type)
{
    switch (type) {
      case FuType::None: return "none";
      case FuType::IntAdder: return "int_add";
      case FuType::IntMultiplier: return "int_mul";
      case FuType::IntDivider: return "int_div";
      case FuType::Shifter: return "shifter";
      case FuType::Bitwise: return "bitwise";
      case FuType::Comparator: return "int_cmp";
      case FuType::Multiplexer: return "mux";
      case FuType::FpAddSub: return "fp_add_sp";
      case FuType::FpMultiplier: return "fp_mul_sp";
      case FuType::FpDivider: return "fp_div_sp";
      case FuType::FpAddSubDouble: return "fp_add_dp";
      case FuType::FpMultiplierDouble: return "fp_mul_dp";
      case FuType::FpDividerDouble: return "fp_div_dp";
      case FuType::FpComparator: return "fp_cmp";
      case FuType::FpSpecial: return "fp_special";
      case FuType::Conversion: return "conversion";
    }
    panic("unknown FuType");
}

bool
isFpUnit(FuType type)
{
    switch (type) {
      case FuType::FpAddSub:
      case FuType::FpMultiplier:
      case FuType::FpDivider:
      case FuType::FpAddSubDouble:
      case FuType::FpMultiplierDouble:
      case FuType::FpDividerDouble:
      case FuType::FpComparator:
      case FuType::FpSpecial:
        return true;
      default:
        return false;
    }
}

FuType
fuTypeFor(const ir::Instruction &inst)
{
    using ir::Opcode;
    const ir::Type *type = inst.type();
    bool dp = type->isDouble();

    switch (inst.opcode()) {
      case Opcode::Add:
      case Opcode::Sub:
        return FuType::IntAdder;
      case Opcode::Mul:
        return FuType::IntMultiplier;
      case Opcode::UDiv:
      case Opcode::SDiv:
      case Opcode::URem:
      case Opcode::SRem:
        return FuType::IntDivider;
      case Opcode::Shl:
      case Opcode::LShr:
      case Opcode::AShr:
        return FuType::Shifter;
      case Opcode::And:
      case Opcode::Or:
      case Opcode::Xor:
        return FuType::Bitwise;
      case Opcode::ICmp:
        return FuType::Comparator;
      case Opcode::FCmp:
        return FuType::FpComparator;
      case Opcode::FAdd:
      case Opcode::FSub:
        return dp ? FuType::FpAddSubDouble : FuType::FpAddSub;
      case Opcode::FMul:
        return dp ? FuType::FpMultiplierDouble : FuType::FpMultiplier;
      case Opcode::FDiv:
        return dp ? FuType::FpDividerDouble : FuType::FpDivider;
      case Opcode::Select:
        return FuType::Multiplexer;
      case Opcode::GetElementPtr:
        // Address arithmetic synthesizes to integer adders.
        return FuType::IntAdder;
      case Opcode::Call:
        return FuType::FpSpecial;
      case Opcode::FPToSI:
      case Opcode::SIToFP:
      case Opcode::FPTrunc:
      case Opcode::FPExt:
        return FuType::Conversion;
      case Opcode::Trunc:
      case Opcode::ZExt:
      case Opcode::SExt:
      case Opcode::BitCast:
      case Opcode::PtrToInt:
      case Opcode::IntToPtr:
        // Integer width changes are wiring in a custom datapath.
        return FuType::None;
      case Opcode::Load:
      case Opcode::Store:
      case Opcode::Phi:
      case Opcode::Br:
      case Opcode::Ret:
        return FuType::None;
    }
    panic("unmapped opcode %s", opcodeName(inst.opcode()));
}

} // namespace salam::hw

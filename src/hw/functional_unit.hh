/**
 * @file
 * Functional unit taxonomy and the opcode -> unit mapping.
 *
 * gem5-SALAM's static elaboration links every compute instruction in
 * the kernel IR to a virtual hardware functional unit. The default
 * hardware profile instantiates one unit per static instruction
 * (1-to-1 map); device configs may cap unit counts to force reuse.
 */

#ifndef SALAM_HW_FUNCTIONAL_UNIT_HH
#define SALAM_HW_FUNCTIONAL_UNIT_HH

#include <string>

#include "ir/instruction.hh"
#include "ir/type.hh"

namespace salam::hw
{

/** Kinds of datapath functional units. */
enum class FuType
{
    None,            ///< no hardware (phi, branch bookkeeping)
    IntAdder,        ///< add/sub (also GEP address adders)
    IntMultiplier,   ///< mul
    IntDivider,      ///< udiv/sdiv/urem/srem
    Shifter,         ///< shl/lshr/ashr
    Bitwise,         ///< and/or/xor
    Comparator,      ///< icmp
    Multiplexer,     ///< select, control muxing
    FpAddSub,        ///< fadd/fsub (single precision)
    FpMultiplier,    ///< fmul (single precision)
    FpDivider,       ///< fdiv (single precision)
    FpAddSubDouble,  ///< fadd/fsub (double precision)
    FpMultiplierDouble, ///< fmul (double precision)
    FpDividerDouble, ///< fdiv (double precision)
    FpComparator,    ///< fcmp
    FpSpecial,       ///< sqrt/exp/sin/... intrinsic units
    Conversion,      ///< casts with hardware cost
    FirstFuType = None,
    LastFuType = Conversion,
};

/** Number of FuType values (for array-indexed tables). */
constexpr std::size_t numFuTypes =
    static_cast<std::size_t>(FuType::LastFuType) + 1;

/** Printable unit name, e.g. "fp_mul_dp". */
const char *fuTypeName(FuType type);

/**
 * Map an instruction to the functional-unit type that executes it.
 * Returns FuType::None for operations with no datapath hardware
 * (phi, br, ret) and for zero-cost casts (bitcast, trunc, zext when
 * implemented as wiring).
 */
FuType fuTypeFor(const ir::Instruction &inst);

/** True if the unit type operates on floating-point data. */
bool isFpUnit(FuType type);

} // namespace salam::hw

#endif // SALAM_HW_FUNCTIONAL_UNIT_HH

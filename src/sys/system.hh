/**
 * @file
 * SalamSystem and AcceleratorCluster: full-system composition.
 *
 * SalamSystem owns the common spine of every full-system
 * simulation: host CPU, interrupt controller, global crossbar, and
 * DRAM. AcceleratorCluster implements the paper's hierarchical
 * cluster construct: a pool of accelerators behind a local crossbar
 * with shared scratchpads and DMA, self-contained enough that
 * accelerators can coordinate without host involvement, and bridged
 * to the global crossbar for DRAM access.
 *
 * Construction order mirrors gem5-SALAM's python configs: create
 * memories (private SPMs, shared SPMs, stream buffers) first so
 * their address ranges exist, then accelerators whose data-port
 * specs reference those ranges, then bind any non-crossbar ports
 * directly (private SPMs, stream endpoints).
 */

#ifndef SALAM_SYS_SYSTEM_HH
#define SALAM_SYS_SYSTEM_HH

#include <memory>
#include <string>
#include <vector>

#include "core/compute_unit.hh"
#include "core/dma.hh"
#include "driver_cpu.hh"
#include "gic.hh"
#include "inject/progress_sentinel.hh"
#include "mem/cache.hh"
#include "mem/crossbar.hh"
#include "mem/interconnect.hh"
#include "mem/scratchpad.hh"
#include "mem/simple_dram.hh"
#include "mem/stream_buffer.hh"

namespace salam::sys
{

/** Global address map defaults. */
struct SystemAddressMap
{
    static constexpr std::uint64_t dramBase = 0x8000'0000;
    static constexpr std::uint64_t dramSize = 64ull << 20;
    static constexpr std::uint64_t clusterBase = 0x0100'0000;
    static constexpr std::uint64_t clusterStride = 0x0100'0000;
};

/** System-level parameters. */
struct SystemConfig
{
    Tick hostClockPeriod = periodFromGhz(1.2);
    Tick busClockPeriod = periodFromMhz(300);
    mem::DramConfig dram;

    /**
     * Fabric between the host, clusters, and DRAM: kind plus
     * parameters, validated at elaboration like DeviceConfig.
     */
    mem::InterconnectConfig globalInterconnect;

    /**
     * Forward-progress watchdog window; 0 disables the periodic
     * sentinel. The queue-drain deadlock check in run() is always
     * active regardless.
     */
    Tick watchdogWindowTicks = 0;

    /** State-dump destination on hang; "" skips the file. */
    std::string stateDumpPath = "state_dump.json";

    SystemConfig()
    {
        dram.range = mem::AddrRange{
            SystemAddressMap::dramBase,
            SystemAddressMap::dramBase + SystemAddressMap::dramSize};
    }
};

class AcceleratorCluster;

/** The full-system spine. */
class SalamSystem
{
  public:
    explicit SalamSystem(Simulation &sim,
                         const SystemConfig &config = {});

    Simulation &simulation() { return sim; }

    DriverCpu &host() { return *hostCpu; }

    Gic &gic() { return *interruptController; }

    mem::Interconnect &globalXbar() { return *global; }

    mem::SimpleDram &dram() { return *mainMemory; }

    const SystemConfig &config() const { return cfg; }

    /** Hand out a system-unique interrupt line. */
    unsigned allocateIrq() { return nextIrq++; }

    /**
     * Create a cluster occupying the @p index-th cluster address
     * window (bridged to the global crossbar in both directions).
     */
    AcceleratorCluster &
    addCluster(const std::string &name, Tick accel_clock_period,
               unsigned index = 0,
               const mem::InterconnectConfig &interconnect = {});

    /** Run until the host program (and all events) complete. */
    Tick run();

  private:
    Simulation &sim;
    SystemConfig cfg;
    Gic *interruptController;
    DriverCpu *hostCpu;
    mem::Interconnect *global;
    mem::SimpleDram *mainMemory;
    inject::ProgressSentinel *watchdog = nullptr;
    unsigned nextIrq = 32;
    std::vector<std::unique_ptr<AcceleratorCluster>> clusters;
};

/** One accelerator with its interface. */
struct ClusterAccelerator
{
    core::CommInterface *comm = nullptr;
    core::ComputeUnit *cu = nullptr;
    /** MMR base address (host/driver view). */
    std::uint64_t mmrBase = 0;
    unsigned irqId = 0;

    /** Driver view of control/argument register addresses. */
    std::uint64_t ctrlAddr() const { return mmrBase; }

    std::uint64_t argAddr(unsigned i) const
    { return mmrBase + 8ull * (i + 1); }
};

/** The hierarchical accelerator cluster. */
class AcceleratorCluster
{
  public:
    AcceleratorCluster(SalamSystem &system, std::string name,
                       Tick clock_period, std::uint64_t window_base,
                       std::uint64_t window_size,
                       const mem::InterconnectConfig &interconnect
                       = {});

    const std::string &name() const { return clusterName; }

    SalamSystem &parent() { return system; }

    mem::Interconnect &localXbar() { return *local; }

    mem::AddrRange window() const { return clusterWindow; }

    /** Reserve cluster address space (4 KiB aligned). */
    std::uint64_t allocate(std::uint64_t bytes);

    /**
     * Create a scratchpad in the cluster window.
     * @param on_local_xbar Shared SPMs are routed via the local
     *        crossbar; private SPMs (false) leave their ports for
     *        direct binding to one accelerator.
     */
    mem::Scratchpad &addSpm(const std::string &name,
                            std::uint64_t bytes,
                            mem::ScratchpadConfig proto = {},
                            bool on_local_xbar = false);

    /** Stream buffer with write/read port ranges in the window. */
    mem::StreamBuffer &
    addStreamBuffer(const std::string &name, unsigned capacity_bytes,
                    mem::StreamBufferConfig proto = {});

    /** Cluster DMA; MMRs on the local xbar, data via the xbar. */
    core::Dma &addDma(const std::string &name,
                      core::DmaConfig proto = {});

    /** Data-port plan for an accelerator. */
    struct DataPortSpec
    {
        std::string label;
        std::vector<mem::AddrRange> ranges;
        /** Bound to the local crossbar when true; else caller
         * binds the port directly (private SPM, stream end). */
        bool onLocalXbar = true;
    };

    /** Add an accelerator running @p fn. */
    ClusterAccelerator &
    addAccelerator(const std::string &name, const ir::Function &fn,
                   const core::DeviceConfig &device_config,
                   const std::vector<DataPortSpec> &port_specs);

    std::vector<std::unique_ptr<ClusterAccelerator>> &accelerators()
    { return accels; }

  private:
    SalamSystem &system;
    std::string clusterName;
    Tick clockPeriod;
    mem::Interconnect *local;
    mem::AddrRange clusterWindow;
    std::uint64_t allocCursor;
    std::vector<std::unique_ptr<ClusterAccelerator>> accels;
};

/**
 * Driver-program helpers: the canonical MMIO sequences host code
 * uses against CommInterface/Dma register layouts.
 */
namespace driver
{

/** Program a DMA transfer and start it (4 register writes). */
void pushDmaTransfer(DriverCpu &cpu, std::uint64_t dma_mmr_base,
                     std::uint64_t src, std::uint64_t dst,
                     std::uint64_t bytes, bool irq_enable = true);

/** Write kernel arguments and start an accelerator. */
void pushAcceleratorStart(DriverCpu &cpu,
                          const ClusterAccelerator &accel,
                          const std::vector<std::uint64_t> &args,
                          bool irq_enable = true);

} // namespace driver

} // namespace salam::sys

#endif // SALAM_SYS_SYSTEM_HH

#include "system.hh"

namespace salam::sys
{

using namespace salam::mem;
using namespace salam::core;

SalamSystem::SalamSystem(Simulation &sim, const SystemConfig &config)
    : sim(sim), cfg(config)
{
    interruptController = &sim.create<Gic>("gic");
    hostCpu = &sim.create<DriverCpu>("host", cfg.hostClockPeriod,
                                     interruptController);
    global = &makeInterconnect(sim, "global_xbar",
                               cfg.busClockPeriod,
                               cfg.globalInterconnect);
    mainMemory =
        &sim.create<SimpleDram>("dram", cfg.busClockPeriod,
                                cfg.dram);
    global->connectDevice(mainMemory->port(), cfg.dram.range);
    bindPorts(hostCpu->port(), global->addRequester("host"));
}

AcceleratorCluster &
SalamSystem::addCluster(const std::string &name,
                        Tick accel_clock_period, unsigned index,
                        const mem::InterconnectConfig &interconnect)
{
    std::uint64_t base = SystemAddressMap::clusterBase +
        index * SystemAddressMap::clusterStride;
    clusters.push_back(std::make_unique<AcceleratorCluster>(
        *this, name, accel_clock_period, base,
        SystemAddressMap::clusterStride, interconnect));
    return *clusters.back();
}

Tick
SalamSystem::run()
{
    if (cfg.watchdogWindowTicks > 0 && watchdog == nullptr) {
        inject::ProgressSentinel::Config wcfg;
        wcfg.windowTicks = cfg.watchdogWindowTicks;
        wcfg.dumpPath = cfg.stateDumpPath;
        wcfg.done = [this] { return hostCpu->finished(); };
        watchdog = &sim.create<inject::ProgressSentinel>(
            "watchdog", std::move(wcfg));
        watchdog->start();
    }
    Tick end = sim.run();
    if (!hostCpu->finished()) {
        // True deadlock: nothing left on the event queue to wake the
        // host. Dump the full state and name the stuck components.
        inject::reportHang(sim,
                           "event queue drained with the host "
                           "program unfinished",
                           cfg.stateDumpPath);
    }
    return end;
}

AcceleratorCluster::AcceleratorCluster(
    SalamSystem &system, std::string name, Tick clock_period,
    std::uint64_t window_base, std::uint64_t window_size,
    const mem::InterconnectConfig &interconnect)
    : system(system), clusterName(std::move(name)),
      clockPeriod(clock_period),
      clusterWindow{window_base, window_base + window_size},
      allocCursor(window_base)
{
    local = &makeInterconnect(
        system.simulation(),
        clusterName + "." + interconnectKindName(interconnect.kind),
        clock_period, interconnect);
    // Bridge: cluster-internal misses go out to the global
    // crossbar; the cluster window routes in from the global side.
    local->connectDefault(
        system.globalXbar().addRequester(clusterName + ".out"));
    system.globalXbar().connectDevice(
        local->addRequester(clusterName + ".in"), clusterWindow);
}

std::uint64_t
AcceleratorCluster::allocate(std::uint64_t bytes)
{
    std::uint64_t aligned = (bytes + 0xFFF) & ~0xFFFull;
    std::uint64_t base = allocCursor;
    if (base + aligned > clusterWindow.end)
        fatal("%s: cluster address window exhausted",
              clusterName.c_str());
    allocCursor += aligned;
    return base;
}

Scratchpad &
AcceleratorCluster::addSpm(const std::string &name,
                           std::uint64_t bytes,
                           ScratchpadConfig proto,
                           bool on_local_xbar)
{
    std::uint64_t base = allocate(bytes);
    proto.range = AddrRange{base, base + bytes};
    auto &spm = system.simulation().create<Scratchpad>(
        clusterName + "." + name, clockPeriod, proto);
    if (on_local_xbar)
        local->connectDevice(spm.port(0), proto.range);
    return spm;
}

StreamBuffer &
AcceleratorCluster::addStreamBuffer(const std::string &name,
                                    unsigned capacity_bytes,
                                    StreamBufferConfig proto)
{
    std::uint64_t wbase = allocate(4096);
    std::uint64_t rbase = allocate(4096);
    proto.writeRange = AddrRange{wbase, wbase + 4096};
    proto.readRange = AddrRange{rbase, rbase + 4096};
    proto.capacityBytes = capacity_bytes;
    return system.simulation().create<StreamBuffer>(
        clusterName + "." + name, clockPeriod, proto);
}

Dma &
AcceleratorCluster::addDma(const std::string &name, DmaConfig proto)
{
    std::uint64_t base = allocate(4096);
    proto.mmrRange = AddrRange{base, base + 8 * 4};
    auto &dma = system.simulation().create<Dma>(
        clusterName + "." + name, clockPeriod, proto);
    local->connectDevice(dma.mmrPort(), proto.mmrRange);
    bindPorts(dma.dataPort(),
              local->addRequester(clusterName + "." + name +
                                  ".data"));
    return dma;
}

ClusterAccelerator &
AcceleratorCluster::addAccelerator(
    const std::string &name, const ir::Function &fn,
    const DeviceConfig &device_config,
    const std::vector<DataPortSpec> &port_specs)
{
    auto accel = std::make_unique<ClusterAccelerator>();
    std::uint64_t mmr_base = allocate(4096);
    accel->mmrBase = mmr_base;

    CommInterfaceConfig ccfg;
    ccfg.mmrRange = AddrRange{mmr_base, mmr_base + 8 * 32};
    for (const DataPortSpec &spec : port_specs)
        ccfg.dataPorts.push_back({spec.label, spec.ranges});

    accel->comm = &system.simulation().create<CommInterface>(
        clusterName + "." + name + ".comm",
        device_config.clockPeriod, ccfg);
    accel->cu = &system.simulation().create<ComputeUnit>(
        clusterName + "." + name, fn, device_config, *accel->comm);

    local->connectDevice(accel->comm->mmrPort(), ccfg.mmrRange);
    for (std::size_t i = 0; i < port_specs.size(); ++i) {
        if (port_specs[i].onLocalXbar) {
            bindPorts(accel->comm->dataPort(
                          static_cast<unsigned>(i)),
                      local->addRequester(clusterName + "." + name +
                                          "." +
                                          port_specs[i].label));
        }
    }

    accel->irqId = system.allocateIrq();
    accel->comm->setIrqCallback(
        system.gic().lineCallback(accel->irqId));

    accels.push_back(std::move(accel));
    return *accels.back();
}

namespace driver
{

void
pushDmaTransfer(DriverCpu &cpu, std::uint64_t dma_mmr_base,
                std::uint64_t src, std::uint64_t dst,
                std::uint64_t bytes, bool irq_enable)
{
    cpu.push(HostOp::writeReg(dma_mmr_base + 8, src));
    cpu.push(HostOp::writeReg(dma_mmr_base + 16, dst));
    cpu.push(HostOp::writeReg(dma_mmr_base + 24, bytes));
    std::uint64_t ctrl = ctrl_bits::start;
    if (irq_enable)
        ctrl |= ctrl_bits::irqEnable;
    cpu.push(HostOp::writeReg(dma_mmr_base, ctrl));
}

void
pushAcceleratorStart(DriverCpu &cpu, const ClusterAccelerator &accel,
                     const std::vector<std::uint64_t> &args,
                     bool irq_enable)
{
    for (std::size_t i = 0; i < args.size(); ++i) {
        cpu.push(HostOp::writeReg(
            accel.argAddr(static_cast<unsigned>(i)), args[i]));
    }
    std::uint64_t ctrl = ctrl_bits::start;
    if (irq_enable)
        ctrl |= ctrl_bits::irqEnable;
    cpu.push(HostOp::writeReg(accel.ctrlAddr(), ctrl));
}

} // namespace driver

} // namespace salam::sys

#include "driver_cpu.hh"

#include <cstdio>

#include "inject/fault_injector.hh"

namespace salam::sys
{

using namespace salam::mem;

namespace
{

const char *
hostOpKindName(HostOp::Kind kind)
{
    switch (kind) {
      case HostOp::Kind::WriteReg: return "write_reg";
      case HostOp::Kind::ReadReg: return "read_reg";
      case HostOp::Kind::Poll: return "poll";
      case HostOp::Kind::WaitIrq: return "wait_irq";
      case HostOp::Kind::Delay: return "delay";
      case HostOp::Kind::Mark: return "mark";
      case HostOp::Kind::Call: return "call";
    }
    return "?";
}

} // namespace

DriverCpu::DriverCpu(Simulation &sim, std::string name,
                     Tick clock_period, Gic *gic)
    : ClockedObject(sim, std::move(name), clock_period),
      cpuPort(*this), gic(gic),
      stepEvent([this] { step(); }, this->name() + ".step",
                Event::cpuTickPri, obs::HostPhase::Other)
{
    if (gic != nullptr)
        gic->setSink([this](unsigned id) { handleIrq(id); });
}

void
DriverCpu::init()
{
    if (!program.empty())
        scheduleStep(Cycles(0));
}

void
DriverCpu::scheduleStep(Cycles delay)
{
    if (!stepEvent.scheduled())
        schedule(stepEvent, clockEdge(delay));
}

Tick
DriverCpu::markAt(const std::string &label) const
{
    auto it = marks.find(label);
    return it == marks.end() ? 0 : it->second;
}

void
DriverCpu::step()
{
    if (busy || program.empty())
        return;

    HostOp &op = program.front();
    switch (op.kind) {
      case HostOp::Kind::WriteReg: {
        auto *pkt = new Packet(MemCmd::WriteReq, op.addr, 8);
        pkt->setData(&op.value, 8);
        program.pop_front();
        sendMmio(pkt);
        break;
      }
      case HostOp::Kind::ReadReg: {
        auto *pkt = new Packet(MemCmd::ReadReq, op.addr, 8);
        program.pop_front();
        sendMmio(pkt);
        break;
      }
      case HostOp::Kind::Poll: {
        // Issue a read; the response handler decides whether the
        // poll completes or retries. Keep the op at queue front.
        auto *pkt = new Packet(MemCmd::ReadReq, op.addr, 8);
        pkt->context = &program.front();
        sendMmio(pkt);
        break;
      }
      case HostOp::Kind::WaitIrq: {
        SALAM_ASSERT(gic != nullptr);
        if (gic->isPending(op.irqId)) {
            gic->acknowledge(op.irqId);
            program.pop_front();
            retireOp();
            scheduleStep(Cycles(opOverhead));
        } else {
            busy = true;
            waitingIrq = true;
            waitedIrqId = op.irqId;
            if (inject::FaultInjector *fi =
                    simulation().faultInjector()) {
                int line = -1;
                if (fi->spuriousIrq(name(), line)) {
                    handleIrq(line >= 0
                                  ? static_cast<unsigned>(line)
                                  : op.irqId);
                }
            }
        }
        break;
      }
      case HostOp::Kind::Delay: {
        std::uint64_t cycles = op.cycles;
        program.pop_front();
        retireOp();
        scheduleStep(Cycles(cycles));
        break;
      }
      case HostOp::Kind::Mark: {
        marks[op.label] = curTick();
        program.pop_front();
        retireOp();
        scheduleStep(Cycles(0));
        break;
      }
      case HostOp::Kind::Call: {
        auto callback = std::move(op.callback);
        program.pop_front();
        retireOp();
        if (callback)
            callback();
        scheduleStep(Cycles(0));
        break;
      }
    }
}

void
DriverCpu::sendMmio(PacketPtr pkt)
{
    busy = true;
    ++mmioCount;
    if (!cpuPort.sendTimingReq(pkt)) {
        // The interconnect refused: hold the request and resend when
        // the peer grants a retry (recvReqRetry).
        pkt->serviceFlags |= svcQueued;
        blockedPkt = pkt;
    }
}

void
DriverCpu::handleReqRetry()
{
    if (blockedPkt == nullptr)
        return;
    PacketPtr pkt = blockedPkt;
    blockedPkt = nullptr;
    if (!cpuPort.sendTimingReq(pkt))
        blockedPkt = pkt; // refused again; wait for the next retry
}

bool
DriverCpu::handleResponse(PacketPtr pkt)
{
    busy = false;
    if (pkt->error) {
        warn("%s: error response for MMIO %s at 0x%llx",
             name().c_str(),
             pkt->cmd() == MemCmd::ReadReq ? "read" : "write",
             static_cast<unsigned long long>(pkt->addr()));
    }
    if (pkt->context != nullptr && !program.empty() &&
        pkt->context == &program.front()) {
        // Poll response: check the condition.
        const HostOp &op = program.front();
        std::uint64_t value = 0;
        pkt->copyData(&value, 8);
        if ((value & op.mask) == op.value) {
            program.pop_front();
            retireOp();
            scheduleStep(Cycles(opOverhead));
        } else {
            // A retry is not progress: the poll loop must not keep
            // the watchdog fed.
            scheduleStep(Cycles(pollInterval));
        }
    } else {
        retireOp();
        scheduleStep(Cycles(opOverhead));
    }
    delete pkt;
    return true;
}

void
DriverCpu::handleIrq(unsigned id)
{
    if (waitingIrq && id == waitedIrqId) {
        waitingIrq = false;
        busy = false;
        if (gic->isPending(id)) {
            gic->acknowledge(id);
        } else {
            warn("%s: woken by interrupt %u that is not pending in "
                 "the gic (spurious)", name().c_str(), id);
        }
        SALAM_ASSERT(!program.empty());
        program.pop_front();
        retireOp();
        scheduleStep(Cycles(opOverhead));
    }
}

void
DriverCpu::dumpDiagnostics(obs::JsonBuilder &json) const
{
    json.field("busy", busy);
    json.field("waiting_irq", waitingIrq);
    if (waitingIrq)
        json.field("waited_irq_id", waitedIrqId);
    json.field("ops_retired", opsRetired);
    json.field("ops_remaining",
               static_cast<std::uint64_t>(program.size()));
    json.field("mmio_ops", mmioCount);
    json.field("request_blocked", blockedPkt != nullptr);
    if (blockedPkt != nullptr)
        json.field("blocked_addr", blockedPkt->addr());
    if (!program.empty()) {
        const HostOp &op = program.front();
        json.beginObject("current_op");
        json.field("kind", hostOpKindName(op.kind));
        json.field("addr", op.addr);
        if (op.kind == HostOp::Kind::WaitIrq)
            json.field("irq_id", op.irqId);
        json.endObject();
    }
}

std::string
DriverCpu::stuckReason() const
{
    if (waitingIrq) {
        return "waiting for interrupt " +
               std::to_string(waitedIrqId) + " that never arrived";
    }
    if (blockedPkt != nullptr) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "0x%llx",
                      static_cast<unsigned long long>(
                          blockedPkt->addr()));
        return std::string("MMIO request to ") + buf +
               " blocked awaiting a port retry";
    }
    if (busy)
        return "MMIO request in flight with no response";
    return {};
}

} // namespace salam::sys

#include "driver_cpu.hh"

namespace salam::sys
{

using namespace salam::mem;

DriverCpu::DriverCpu(Simulation &sim, std::string name,
                     Tick clock_period, Gic *gic)
    : ClockedObject(sim, std::move(name), clock_period),
      cpuPort(*this), gic(gic),
      stepEvent([this] { step(); }, this->name() + ".step",
                Event::cpuTickPri)
{
    if (gic != nullptr)
        gic->setSink([this](unsigned id) { handleIrq(id); });
}

void
DriverCpu::init()
{
    if (!program.empty())
        scheduleStep(Cycles(0));
}

void
DriverCpu::scheduleStep(Cycles delay)
{
    if (!stepEvent.scheduled())
        schedule(stepEvent, clockEdge(delay));
}

Tick
DriverCpu::markAt(const std::string &label) const
{
    auto it = marks.find(label);
    return it == marks.end() ? 0 : it->second;
}

void
DriverCpu::step()
{
    if (busy || program.empty())
        return;

    HostOp &op = program.front();
    switch (op.kind) {
      case HostOp::Kind::WriteReg: {
        auto *pkt = new Packet(MemCmd::WriteReq, op.addr, 8);
        pkt->setData(&op.value, 8);
        busy = true;
        ++mmioCount;
        bool ok = cpuPort.sendTimingReq(pkt);
        SALAM_ASSERT(ok);
        program.pop_front();
        break;
      }
      case HostOp::Kind::ReadReg: {
        auto *pkt = new Packet(MemCmd::ReadReq, op.addr, 8);
        busy = true;
        ++mmioCount;
        bool ok = cpuPort.sendTimingReq(pkt);
        SALAM_ASSERT(ok);
        program.pop_front();
        break;
      }
      case HostOp::Kind::Poll: {
        // Issue a read; the response handler decides whether the
        // poll completes or retries. Keep the op at queue front.
        auto *pkt = new Packet(MemCmd::ReadReq, op.addr, 8);
        pkt->context = &program.front();
        busy = true;
        ++mmioCount;
        bool ok = cpuPort.sendTimingReq(pkt);
        SALAM_ASSERT(ok);
        break;
      }
      case HostOp::Kind::WaitIrq: {
        SALAM_ASSERT(gic != nullptr);
        if (gic->isPending(op.irqId)) {
            gic->acknowledge(op.irqId);
            program.pop_front();
            scheduleStep(Cycles(opOverhead));
        } else {
            busy = true;
            waitingIrq = true;
            waitedIrqId = op.irqId;
        }
        break;
      }
      case HostOp::Kind::Delay: {
        std::uint64_t cycles = op.cycles;
        program.pop_front();
        scheduleStep(Cycles(cycles));
        break;
      }
      case HostOp::Kind::Mark: {
        marks[op.label] = curTick();
        program.pop_front();
        scheduleStep(Cycles(0));
        break;
      }
      case HostOp::Kind::Call: {
        auto callback = std::move(op.callback);
        program.pop_front();
        if (callback)
            callback();
        scheduleStep(Cycles(0));
        break;
      }
    }
}

bool
DriverCpu::handleResponse(PacketPtr pkt)
{
    busy = false;
    if (pkt->context != nullptr && !program.empty() &&
        pkt->context == &program.front()) {
        // Poll response: check the condition.
        const HostOp &op = program.front();
        std::uint64_t value = 0;
        pkt->copyData(&value, 8);
        if ((value & op.mask) == op.value) {
            program.pop_front();
            scheduleStep(Cycles(opOverhead));
        } else {
            scheduleStep(Cycles(pollInterval));
        }
    } else {
        scheduleStep(Cycles(opOverhead));
    }
    delete pkt;
    return true;
}

void
DriverCpu::handleIrq(unsigned id)
{
    if (waitingIrq && id == waitedIrqId) {
        waitingIrq = false;
        busy = false;
        SALAM_ASSERT(gic->isPending(id));
        gic->acknowledge(id);
        SALAM_ASSERT(!program.empty());
        program.pop_front();
        scheduleStep(Cycles(opOverhead));
    }
}

} // namespace salam::sys

/**
 * @file
 * Gic: a minimal ARM-GIC-like interrupt controller.
 *
 * Devices raise numbered interrupt lines; the controller latches
 * them and notifies its (single) CPU sink. Pending interrupts stay
 * latched until acknowledged, so a CPU that starts waiting after
 * the device fired still observes it — the race the real driver
 * code has to handle too.
 */

#ifndef SALAM_SYS_GIC_HH
#define SALAM_SYS_GIC_HH

#include <functional>
#include <set>

#include "sim/sim_object.hh"
#include "sim/simulation.hh"

namespace salam::sys
{

/** The interrupt controller. */
class Gic : public SimObject
{
  public:
    Gic(Simulation &sim, std::string name)
        : SimObject(sim, std::move(name))
    {}

    /** Wire the CPU-side notification. */
    void setSink(std::function<void(unsigned)> sink)
    { notify = std::move(sink); }

    /** Device-side: raise interrupt line @p id. */
    void
    raise(unsigned id)
    {
        pending.insert(id);
        ++raisedCount;
        if (notify)
            notify(id);
    }

    /** CPU-side: is line @p id pending? */
    bool isPending(unsigned id) const { return pending.count(id); }

    /** CPU-side: acknowledge (clear) line @p id. */
    void acknowledge(unsigned id) { pending.erase(id); }

    /** Convenience for devices: a callback bound to one line. */
    std::function<void()>
    lineCallback(unsigned id)
    {
        return [this, id] { raise(id); };
    }

    std::uint64_t interruptsRaised() const { return raisedCount; }

    void
    dumpDiagnostics(obs::JsonBuilder &json) const override
    {
        json.field("interrupts_raised", raisedCount);
        json.beginArray("pending_lines");
        for (unsigned id : pending)
            json.value(static_cast<std::uint64_t>(id));
        json.endArray();
    }

    std::string
    stuckReason() const override
    {
        if (pending.empty())
            return {};
        std::string lines;
        for (unsigned id : pending) {
            if (!lines.empty())
                lines += ", ";
            lines += std::to_string(id);
        }
        return "interrupt line(s) " + lines +
               " pending but never acknowledged";
    }

  private:
    std::function<void(unsigned)> notify;
    std::set<unsigned> pending;
    std::uint64_t raisedCount = 0;
};

} // namespace salam::sys

#endif // SALAM_SYS_GIC_HH

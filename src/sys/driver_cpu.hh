/**
 * @file
 * DriverCpu: the scripted host processor.
 *
 * Models the ARM host running bare-metal driver code: a sequential
 * program of MMIO register writes/reads, polls, interrupt waits, and
 * host-side delays, issued over a timing port into the system
 * interconnect. Each operation carries a configurable instruction
 * overhead, standing in for the driver's own execution time.
 *
 * The accelerated portion of an application's host code is expressed
 * as one of these programs — set MMRs, kick DMAs, wait for IRQs —
 * exactly the workflow the paper describes for full-system runs.
 */

#ifndef SALAM_SYS_DRIVER_CPU_HH
#define SALAM_SYS_DRIVER_CPU_HH

#include <deque>
#include <functional>
#include <map>
#include <string>

#include "gic.hh"
#include "mem/port.hh"
#include "sim/sim_object.hh"
#include "sim/simulation.hh"

namespace salam::sys
{

/** One step of a host driver program. */
struct HostOp
{
    enum class Kind
    {
        WriteReg,   ///< *addr = value
        ReadReg,    ///< read addr (result discarded; timing only)
        Poll,       ///< spin until (*addr & mask) == expect
        WaitIrq,    ///< sleep until interrupt id fires (then ack)
        Delay,      ///< host busy for N cycles
        Mark,       ///< record current tick under a label
        Call,       ///< invoke a host-side callback (untimed)
    };

    Kind kind = Kind::Delay;
    std::uint64_t addr = 0;
    std::uint64_t value = 0;
    std::uint64_t mask = 0;
    unsigned irqId = 0;
    std::uint64_t cycles = 0;
    std::string label;
    std::function<void()> callback;

    static HostOp
    writeReg(std::uint64_t addr, std::uint64_t value)
    {
        HostOp op;
        op.kind = Kind::WriteReg;
        op.addr = addr;
        op.value = value;
        return op;
    }

    static HostOp
    readReg(std::uint64_t addr)
    {
        HostOp op;
        op.kind = Kind::ReadReg;
        op.addr = addr;
        return op;
    }

    static HostOp
    poll(std::uint64_t addr, std::uint64_t mask,
         std::uint64_t expect)
    {
        HostOp op;
        op.kind = Kind::Poll;
        op.addr = addr;
        op.mask = mask;
        op.value = expect;
        return op;
    }

    static HostOp
    waitIrq(unsigned id)
    {
        HostOp op;
        op.kind = Kind::WaitIrq;
        op.irqId = id;
        return op;
    }

    static HostOp
    delay(std::uint64_t cycles)
    {
        HostOp op;
        op.kind = Kind::Delay;
        op.cycles = cycles;
        return op;
    }

    static HostOp
    mark(std::string label)
    {
        HostOp op;
        op.kind = Kind::Mark;
        op.label = std::move(label);
        return op;
    }

    static HostOp
    call(std::function<void()> fn)
    {
        HostOp op;
        op.kind = Kind::Call;
        op.callback = std::move(fn);
        return op;
    }
};

/** The host CPU. */
class DriverCpu : public ClockedObject
{
  public:
    /**
     * @param clock_period Host clock (e.g. 1.2 GHz ARM).
     * @param gic Interrupt controller to wait on (may be null when
     *        the program never waits for interrupts).
     */
    DriverCpu(Simulation &sim, std::string name, Tick clock_period,
              Gic *gic = nullptr);

    /** Port toward the system interconnect. */
    mem::RequestPort &port() { return cpuPort; }

    /** Append a program step. */
    void push(HostOp op) { program.push_back(std::move(op)); }

    /** Append a sequence of steps. */
    void
    push(std::initializer_list<HostOp> ops)
    {
        for (const auto &op : ops)
            program.push_back(op);
    }

    /** Per-MMIO-operation driver overhead in host cycles. */
    void setOpOverheadCycles(std::uint64_t cycles)
    { opOverhead = cycles; }

    /** Poll retry interval in host cycles. */
    void setPollIntervalCycles(std::uint64_t cycles)
    { pollInterval = cycles; }

    bool finished() const
    { return program.empty() && !busy; }

    /** Tick recorded by a Mark op; 0 when absent. */
    Tick markAt(const std::string &label) const;

    std::uint64_t mmioOps() const { return mmioCount; }

    /** Program steps fully retired (the host "program counter"). */
    std::uint64_t opsCompleted() const { return opsRetired; }

    void dumpDiagnostics(obs::JsonBuilder &json) const override;

    std::string stuckReason() const override;

  private:
    class CpuPort : public mem::RequestPort
    {
      public:
        explicit CpuPort(DriverCpu &owner)
            : mem::RequestPort(owner.name() + ".port"), owner(owner)
        {}

        bool
        recvTimingResp(mem::PacketPtr pkt) override
        {
            return owner.handleResponse(pkt);
        }

        void recvReqRetry() override { owner.handleReqRetry(); }

      private:
        DriverCpu &owner;
    };

    void init() override;

    /** Start the next program op (called from the event loop). */
    void step();

    bool handleResponse(mem::PacketPtr pkt);

    void handleIrq(unsigned id);

    /** The interconnect granted a retry for a refused request. */
    void handleReqRetry();

    /** Issue an MMIO request, stashing it if the port refuses. */
    void sendMmio(mem::PacketPtr pkt);

    /**
     * Count one retired program step as forward progress. Poll
     * retries deliberately do not retire — a host spinning on an MMR
     * that never changes must still trip the watchdog.
     */
    void
    retireOp()
    {
        ++opsRetired;
        noteProgress();
    }

    void scheduleStep(Cycles delay);

    CpuPort cpuPort;
    Gic *gic;
    std::deque<HostOp> program;
    EventFunctionWrapper stepEvent;
    bool busy = false; ///< an op is in flight (MMIO or wait)
    bool waitingIrq = false;
    unsigned waitedIrqId = 0;
    std::uint64_t opOverhead = 20;
    std::uint64_t pollInterval = 50;
    std::map<std::string, Tick> marks;
    std::uint64_t mmioCount = 0;
    std::uint64_t opsRetired = 0;
    /** Request the interconnect refused; resent on recvReqRetry. */
    mem::PacketPtr blockedPkt = nullptr;
};

} // namespace salam::sys

#endif // SALAM_SYS_DRIVER_CPU_HH

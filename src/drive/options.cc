#include "drive/options.hh"

#include <cstdio>
#include <cstdlib>

#include "obs/run_report.hh"
#include "sim/logging.hh"

namespace salam::drive
{

std::uint64_t
parseUint(const std::string &flag, const std::string &value, int base)
{
    char *end = nullptr;
    unsigned long long v = std::strtoull(value.c_str(), &end, base);
    if (end == value.c_str() || *end != '\0')
        fatal("%s needs a number, got '%s'", flag.c_str(),
              value.c_str());
    return v;
}

void
printOptionTable(const OptionList &table)
{
    for (const Option &opt : table) {
        std::string head = opt.name;
        if (!opt.valueName.empty())
            head += " " + opt.valueName;
        std::printf("  %-26s %s\n", head.c_str(), opt.help.c_str());
    }
}

namespace
{

/** The "--trace-out, --report-out, ..., or --help" error listing. */
std::string
knownOptionListing(const OptionList &table)
{
    std::string known;
    for (std::size_t k = 0; k < table.size(); ++k) {
        if (k)
            known += k + 1 == table.size() ? ", or " : ", ";
        known += table[k].name;
    }
    return known;
}

ParseResult
parseError(const ParsePolicy &policy, const OptionList &table,
           std::string message, bool list_known)
{
    if (policy.fatalErrors) {
        if (list_known)
            fatal("%s (expected %s)", message.c_str(),
                  knownOptionListing(table).c_str());
        fatal("%s", message.c_str());
    }
    ParseResult result;
    result.ok = false;
    result.error = std::move(message);
    return result;
}

} // namespace

ParseResult
parseOptions(int argc, char **argv, const OptionList &table,
             const ParsePolicy &policy)
{
    for (int i = policy.firstArg; i < argc; ++i) {
        std::string arg = argv[i];

        if (policy.positionals != nullptr &&
            arg.rfind("--", 0) != 0) {
            policy.positionals->push_back(arg);
            continue;
        }

        std::string inline_value;
        bool has_inline_value = false;
        if (policy.inlineValues) {
            if (auto eq = arg.find('='); eq != std::string::npos) {
                inline_value = arg.substr(eq + 1);
                has_inline_value = true;
                arg.erase(eq);
            }
        }

        if (policy.handleHelp && arg == "--help") {
            std::printf("usage: %s [options]\n\noptions:\n",
                        policy.program.c_str());
            printOptionTable(table);
            std::exit(0);
        }

        const Option *opt = nullptr;
        for (const Option &candidate : table) {
            if (candidate.name == arg) {
                opt = &candidate;
                break;
            }
        }
        if (opt == nullptr) {
            // The bench-style fatal appends the known-option listing;
            // the soft error is terse because the caller prints its
            // own usage synopsis.
            return parseError(policy, table,
                              policy.fatalErrors
                                  ? "unknown argument '" + arg + "'"
                                  : "unknown option '" + arg + "'",
                              true);
        }

        std::string value;
        if (opt->valueName.empty()) {
            if (has_inline_value)
                return parseError(policy, table,
                                  arg + " takes no value", false);
        } else if (has_inline_value) {
            value = inline_value;
        } else if (i + 1 >= argc) {
            return parseError(policy, table, arg + " needs a value",
                              false);
        } else {
            value = argv[++i];
        }
        if (opt->outputPath && !value.empty() &&
            !obs::ensureParentDir(value))
            return parseError(policy, table,
                              arg + ": cannot create parent "
                                    "directory of '" + value + "'",
                              false);
        opt->apply(value);
    }
    return {};
}

} // namespace salam::drive

/**
 * @file
 * Trace-reuse fast path: replay a captured dynamic trace under new
 * datapath/memory parameters without re-executing the kernel.
 *
 * A sweep evaluates the same (kernel, input) pair under dozens of
 * DeviceConfigs. The dynamic CDFG's *values* — branch outcomes and
 * effective addresses — do not depend on the timing knobs being
 * swept (FU limits, ports, queue depths, latencies, clock), because
 * the engine's memory disambiguation enforces value determinism
 * regardless of schedule. So the expensive part of a sweep point,
 * executing the kernel, can be done once: capture a DynTrace (see
 * core/dyn_trace.hh), then re-schedule it here per point.
 *
 * TraceReplayer mirrors RuntimeEngine::cycle() decision-for-decision
 * — block import, operand/WAW/WAR edges, FU pools and initiation
 * intervals, memory disambiguation, port/queue budgets — plus a
 * cycle-domain model of the private scratchpad's service/latency
 * pipeline, and produces bit-identical EngineStats (cycles, stall
 * attribution, issue mix, FU occupancy, dynamic energy).
 *
 * Unlike the engine, it does not rescan the whole reservation window
 * every cycle. The trace's scheduling skeleton — producer edges,
 * same-instruction chains, memory conflicts — is config-independent,
 * so it is prepared once per capture (ReplayPrep) and each replay
 * runs event-driven on top of it: commits decrement dependency and
 * conflict counters, instructions enter an issue-candidate bitmap
 * exactly when every engine gate that is not re-evaluated per cycle
 * has cleared, and the per-cycle work is proportional to the
 * instructions that actually issue, not to the window size.
 * Provably-idle stall spans are fast-forwarded in closed form.
 *
 * When a swept parameter *could* change data-dependent control flow
 * or the capture regime, fastPathBlocker() reports why and the
 * caller falls back to full simulation.
 */

#ifndef SALAM_DRIVE_TRACE_REPLAY_HH
#define SALAM_DRIVE_TRACE_REPLAY_HH

#include <array>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <queue>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/device_config.hh"
#include "core/dyn_trace.hh"
#include "core/runtime_engine.hh"
#include "core/static_cdfg.hh"

namespace salam::drive
{

/**
 * The scratchpad parameters the replay's cycle-domain SPM model
 * needs: mem::ScratchpadConfig minus the SimObject plumbing.
 */
struct ReplaySpmConfig
{
    std::uint64_t rangeStart = 0;
    unsigned latencyCycles = 1;
    unsigned readPorts = 2;
    unsigned writePorts = 2;
    unsigned banks = 1;
    unsigned wordBytes = 4;
};

/** Outcome of one trace replay. */
struct ReplayResult
{
    /** False when the trace could not be replayed (see error). */
    bool ok = false;

    /** Diagnostic when !ok (trace/static mismatch, overflow, ...). */
    std::string error;

    /** Bit-identical to the full simulation's engine statistics. */
    core::EngineStats stats;

    /** SPM accesses serviced (the CactiLite usage inputs). */
    std::uint64_t spmReads = 0;
    std::uint64_t spmWrites = 0;
};

/**
 * Config-independent scheduling skeleton of a trace, shared by every
 * replay of it. Everything here depends only on the instruction
 * stream and its addresses — which instances exist, which produce
 * operands for which, which touch overlapping memory — never on the
 * FU/port/latency knobs a sweep varies.
 */
struct ReplayPrep
{
    static constexpr std::uint32_t npos = ~0u;

    /** Non-empty when the trace does not match the static CDFG. */
    std::string error;

    /** Previous/next dynamic instance of the same static id. */
    std::vector<std::uint32_t> prevSame;
    std::vector<std::uint32_t> nextSame;

    /** Memory program order (loads/stores only; 0 otherwise). */
    std::vector<std::uint32_t> memSeq;

    /**
     * Producer slots, CSR by seq: slot s of seq holds the dynamic
     * seq that produces its value, or npos when the operand is a
     * constant/control/argument. Phi instances hold exactly the one
     * slot their traced incoming edge selects.
     */
    std::vector<std::uint32_t> slotOffsets;
    std::vector<std::uint32_t> slotTargets;

    /**
     * Reverse producer edges, CSR by producer seq, ascending by
     * reader: packed (absolute slot index << 32 | reader seq).
     */
    std::vector<std::uint32_t> readerOffsets;
    std::vector<std::uint64_t> readerEdges;

    /**
     * Memory-conflict edges: for seq i, the earlier memory ops whose
     * byte ranges overlap i's with a conflicting kind (store-load,
     * load-store, store-store), reduced to the set the engine's
     * disambiguation can actually block on (per-word latest store,
     * loads since it). notify* is the reverse direction, ascending.
     */
    std::vector<std::uint32_t> conflictOffsets;
    std::vector<std::uint32_t> conflictEdges;
    std::vector<std::uint32_t> notifyOffsets;
    std::vector<std::uint32_t> notifyEdges;
};

/**
 * Build the scheduling skeleton for @p trace. @p cdfg may be
 * elaborated under any DeviceConfig of the same kernel — only its
 * config-independent structure (opcodes, operand plans, block
 * layout) is consulted.
 */
ReplayPrep buildReplayPrep(const core::StaticCdfg &cdfg,
                           const core::DynTrace &trace);

/**
 * Reason @p dev cannot reuse @p trace, or "" when the fast path is
 * sound. The rule is conservative: any delta that changes the
 * capture regime (block-sequential import) or makes outcomes
 * schedule-dependent (fault injection) forces full simulation.
 * @p interconnect_in_path declares that the accelerator's memory
 * traffic crosses a modeled interconnect; replay models a private
 * SPM only, so that also forces full simulation.
 */
std::string fastPathBlocker(const core::DynTrace &trace,
                            const core::DeviceConfig &dev,
                            bool fault_injection_active,
                            bool interconnect_in_path = false);

/** One-shot re-scheduler: construct, run() once, read the result. */
class TraceReplayer
{
  public:
    /**
     * @param cdfg Elaborated under @p dev (the *replay* config, not
     *        the capture config); must outlive the replayer.
     * @param trace Captured trace for the same kernel and input.
     * @param spm The private scratchpad serving all memory traffic.
     * @param prep Skeleton from buildReplayPrep for @p trace; pass
     *        nullptr to have the replayer build a private one.
     */
    TraceReplayer(const core::StaticCdfg &cdfg,
                  const core::DeviceConfig &dev,
                  const core::DynTrace &trace,
                  const ReplaySpmConfig &spm,
                  const ReplayPrep *prep = nullptr);

    ReplayResult run();

  private:
    static constexpr std::uint32_t noNode = ~0u;
    static constexpr std::uint32_t noBlock = ~0u;
    static constexpr std::uint64_t never = ~0ull;
    static constexpr std::uint32_t noMemSeq = ~0u;

    /** Replay twin of DynInst: scheduling state, no values. */
    struct RNode
    {
        /** First cycle this instance may issue (import fence). */
        std::uint64_t fence = 0;
        std::uint64_t issueCycle = 0;
        std::uint64_t commitCycle = 0;
        /** prevSame when it was still in-window at import. */
        std::uint32_t prevLink = noNode;
        std::uint32_t unissuedReaders = 0;
        /** Uncommitted producer slots (issue gate). */
        std::uint16_t pendingOperands = 0;
        /** Uncommitted earlier conflicting memory ops. */
        std::uint16_t pendingConflicts = 0;
        bool issued = false;
        bool committed = false;
        bool addrKnown = false;
    };

    /** Precomputed per-static-instruction facts (hot-path tables). */
    struct StaticFacts
    {
        /** Σ operand register bits × read energy (issue cost). */
        double readEnergyPj = 0.0;
        /** Result bits × write energy; 0 for void results. */
        double writeEnergyPj = 0.0;
        double fuEnergyPj = 0.0;
        std::uint32_t parentBlock = 0;
        hw::FuType fu = hw::FuType::None;
        unsigned latency = 0;
        unsigned initiationInterval = 1;
        std::uint8_t opKind = 0;        // OpKind below
        std::uint8_t issueLane = 0;     // Lane below
        /** Dense index among FU types with a pool limit (0xff: none). */
        std::uint8_t limitedIdx = 0xff;
        bool isVoid = true;
    };

    enum OpKind : std::uint8_t
    {
        opCompute = 0,
        opBr,
        opRet,
        opLoad,
        opStore
    };

    enum Lane : std::uint8_t
    {
        laneFp = 0,
        laneInt,
        laneOther
    };

    bool fail(std::string why);

    const StaticFacts &factOf(std::uint32_t seq) const
    {
        return facts[trace.insts[seq].staticId];
    }

    /** Import @p block_id's instructions; may defer (pendingImport). */
    void importBlock(std::uint32_t block_id, std::uint32_t from_id);

    /** Null live producer slots, releasing reader counts (issue). */
    void captureOperands(std::uint32_t seq);

    /** Enter the candidate bitmap if every counter gate cleared. */
    void maybeCandidate(std::uint32_t seq);

    /** Mark the address resolved (engine: resolveAddress in-scan). */
    void applyResolve(std::uint32_t seq);

    bool fuAvailable(std::uint32_t seq, const StaticFacts &f,
                     std::uint64_t cyc);

    void occupyFu(const StaticFacts &f, std::uint64_t cyc);

    void commitNode(std::uint32_t seq, std::uint64_t cyc);

    void pruneWindow();

    /** Deliver SPM responses ready at @p cyc; commits at @p eff. */
    void deliverResponses(std::uint64_t cyc, std::uint64_t eff);

    /** One SPM service pass at @p cyc (pre- or post-engine). */
    void servicePass(std::uint64_t cyc, bool post_engine);

    void scheduleService(std::uint64_t cyc);

    /** One engine cycle; returns true when the kernel finished. */
    bool engineCycle(std::uint64_t cyc);

    /** Process one candidate seq during the issue sweep. */
    void handleCandidate(std::uint32_t seq, std::uint64_t cyc);

    /** Count @p count stall cycles into the current stall lane. */
    void accrueStall(std::uint64_t count);

    const core::StaticCdfg &cdfg;
    const core::DeviceConfig cfg;
    const core::DynTrace &trace;
    const ReplaySpmConfig spmCfg;
    std::unique_ptr<const ReplayPrep> ownPrep;
    const ReplayPrep *prep = nullptr;

    std::vector<StaticFacts> facts;

    std::vector<RNode> nodes;
    /** Live producer bindings (npos = value already available). */
    std::vector<std::uint32_t> slots;

    /** Window is the contiguous seq range [pruneFront, imported). */
    std::uint32_t imported = 0;
    std::uint32_t pruneFront = 0;
    /** Instructions imported but not yet issued (capacity/drain). */
    std::uint32_t unissuedCount = 0;
    /** Lower bound for the candidate sweep (min unissued seq). */
    std::uint32_t firstUnissued = 0;

    /** Issue-candidate bitmap, bit per seq. */
    std::vector<std::uint64_t> candBits;
    /**
     * Class shadows of candBits (loads/stores only): once a cycle's
     * port or queue budget for a class is exhausted — witnessed by
     * the first blocked ready op, which also sets the stall flag the
     * engine would set — every later candidate of that class parks
     * identically, so the sweep masks the whole class out instead
     * of visiting each parked op.
     */
    std::vector<std::uint64_t> candLoadBits;
    std::vector<std::uint64_t> candStoreBits;
    /**
     * Same idea for compute candidates bound to a *limited* FU pool,
     * one shadow bitmap per limited type: pool state only tightens
     * within a scan (releases are purely time-based), so the first
     * candidate to find its pool exhausted closes that type for the
     * rest of the cycle and the sweep masks its whole class out.
     * The closing visit already fed the pool's release time into
     * earliestWake, and no skipped instance can issue before it.
     */
    std::vector<std::vector<std::uint64_t>> candFuBits;
    /** Bit per limited FU type: pool exhausted this cycle. */
    std::uint32_t fuClosedMask = 0;
    std::array<std::uint8_t, hw::numFuTypes> limitedIdxOf{};
    std::uint32_t numLimitedFus = 0;

    std::uint64_t curCycle = 0;

    std::vector<std::uint32_t> computeQueue;
    std::array<std::vector<std::uint64_t>, hw::numFuTypes> poolFreeAt;

    /**
     * Unresolved-address tracking, mirroring the engine's memory
     * summary: seqs of in-window memory ops whose address is not yet
     * resolved, in import (= memSeq) order. The per-cycle snapshot
     * is the front's memSeq — resolutions apply mid-scan and so
     * become visible to the ordering gates one cycle later, exactly
     * like the engine's rebuilt-next-cycle summary.
     */
    std::deque<std::uint32_t> unresolvedStores;
    std::deque<std::uint32_t> unresolvedLoads;
    std::uint32_t snapUnknownStore = noMemSeq;
    std::uint32_t snapUnknownLoad = noMemSeq;
    /**
     * The snapshot can only change after a resolution (front may
     * pop) or an unresolved import (front may appear); skip the
     * deque walks on every other cycle.
     */
    bool snapDirty = false;

    /**
     * Scheduled address resolutions: (cycle, seq). Every due cycle
     * is at most curCycle + 1 — import fences are curCycle + 1 and
     * commit-time dues are max(commit cycle, fence) — so entries
     * live for at most one cycle and a flat unsorted vector beats a
     * heap.
     */
    using ResolveEvent = std::pair<std::uint64_t, std::uint32_t>;
    std::vector<ResolveEvent> futureResolves;

    /** True while the issue sweep runs (mid-scan commit handling). */
    bool inScan = false;

    std::uint32_t pendingImport = noBlock;
    std::uint32_t pendingImportFrom = noBlock;

    unsigned loadsInFlight = 0;
    unsigned storesInFlight = 0;
    bool memStallLoadBlocked = false;
    bool memStallStoreBlocked = false;
    bool retSeen = false;

    /** Arena-freelist mirror (exact arenaHits/Misses parity). */
    std::uint64_t freeCount = 0;

    // Cycle-domain SPM model (see scratchpad.cc for the original).
    struct SpmRequest
    {
        std::uint32_t seq;
    };

    struct SpmResponse
    {
        std::uint32_t seq;
        std::uint64_t readyCycle;
    };

    std::deque<SpmRequest> spmRequestQueue;
    std::deque<SpmResponse> spmResponseQueue;
    /** Loads/stores currently in spmRequestQueue (early exit). */
    unsigned queuedLoads = 0;
    unsigned queuedStores = 0;
    bool servicePending = false;
    std::uint64_t serviceCycle = 0;
    bool havePass = false;
    std::uint64_t lastPassCycle = 0;
    std::vector<unsigned char> busyBank;
    std::uint64_t spmReads = 0;
    std::uint64_t spmWrites = 0;

    // Per-cycle issue bookkeeping (shared with handleCandidate).
    bool issuedAny = false;
    bool readyLoadBlocked = false;
    bool readyStoreBlocked = false;
    /**
     * Memory candidates are swept in ascending memory-program
     * order, so the first one parked by the unresolved-address
     * snapshot proves every later one of its class parks too —
     * the sweep then drops that class for the rest of the cycle.
     */
    bool snapClosedLoads = false;
    bool snapClosedStores = false;
    unsigned loadsIssuedNow = 0;
    unsigned storesIssuedNow = 0;
    unsigned fpIssuedNow = 0;

    /**
     * Fast-forward bookkeeping, reset each engine cycle: the
     * earliest future cycle at which any candidate's time-gated
     * constraint (import fence, initiation interval, FU pool
     * release) clears. Everything else a parked instruction waits on
     * is a commit, delivery, or address resolution — all timed.
     */
    std::uint64_t earliestWake = never;

    /** Earliest scheduled compute commit (fast-forward bound). */
    std::uint64_t minComputeCommit = never;
    /**
     * Incremental replacements for the engine's per-cycle
     * reservation/compute-queue walks: the earliest pending compute
     * commit (exact — recomputed whenever the commit walk runs, and
     * pushes only lower it), and per-FU-type in-flight counts that
     * stand in for walking computeQueue to accrue fuBusyCycleSum.
     */
    std::uint64_t nextCommitDue = never;
    std::array<std::uint32_t, hw::numFuTypes> fuInflight{};

    /** Whether the last engine cycle issued anything. */
    bool lastIssuedAny = true;
    // Whether the last cycle applied an address resolution: the
    // ordering snapshot changes the following cycle, so idle spans
    // must not be fast-forwarded across it.
    bool lastScanResolvedAddr = false;

    core::EngineStats stats;
    bool failed = false;
    std::string failReason;
};

/**
 * Capture-once cache shared by sweep workers: the first caller of a
 * key runs @p build (a full capture simulation); concurrent callers
 * for the same key block on its completion and share the entry.
 */
class TraceCache
{
  public:
    struct Entry
    {
        core::DynTrace trace;
        /** Keeps the kernel module (and thus fn) alive. */
        std::shared_ptr<void> holder;
        const ir::Function *fn = nullptr;
        /** Shared scheduling skeleton (see buildReplayPrep). */
        std::shared_ptr<const ReplayPrep> prep;
        /** Wall seconds the capture run took (telemetry). */
        double captureSeconds = 0.0;
    };

    using EntryPtr = std::shared_ptr<const Entry>;

    /**
     * Return the entry for @p key, running @p build to create it if
     * this is the first request. Exceptions from @p build propagate
     * to every waiter of that key.
     */
    EntryPtr getOrBuild(const std::string &key,
                        const std::function<Entry()> &build);

  private:
    std::mutex mutex;
    std::unordered_map<std::string, std::shared_future<EntryPtr>>
        entries;
};

} // namespace salam::drive

#endif // SALAM_DRIVE_TRACE_REPLAY_HH

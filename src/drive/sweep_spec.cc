#include "sweep_spec.hh"

#include "sim/logging.hh"

namespace salam::drive
{

SweepSpec &
SweepSpec::axis(std::string name, std::vector<std::uint64_t> values)
{
    if (values.empty())
        fatal("sweep axis '%s' has no values", name.c_str());
    axes.push_back({std::move(name), std::move(values)});
    return *this;
}

SweepSpec &
SweepSpec::axisRange(std::string name, std::uint64_t first,
                     std::uint64_t last, std::uint64_t step)
{
    if (step == 0)
        fatal("sweep axis '%s' has step 0", name.c_str());
    std::vector<std::uint64_t> values;
    for (std::uint64_t v = first; v <= last; v += step) {
        values.push_back(v);
        if (last - v < step)
            break; // avoid wraparound near UINT64_MAX
    }
    return axis(std::move(name), std::move(values));
}

SweepSpec &
SweepSpec::axisPow(std::string name, std::uint64_t first,
                   std::uint64_t last, std::uint64_t factor)
{
    if (first == 0 || factor < 2)
        fatal("sweep axis '%s' needs first > 0 and factor >= 2",
              name.c_str());
    std::vector<std::uint64_t> values;
    for (std::uint64_t v = first; v <= last; v *= factor) {
        values.push_back(v);
        if (v > last / factor)
            break; // next multiply would overflow
    }
    return axis(std::move(name), std::move(values));
}

std::size_t
SweepSpec::numPoints() const
{
    if (axes.empty())
        return 0;
    std::size_t n = 1;
    for (const SweepAxis &a : axes)
        n *= a.values.size();
    return n;
}

std::uint64_t
SweepSpec::value(std::size_t point, std::size_t axis) const
{
    SALAM_ASSERT(axis < axes.size());
    SALAM_ASSERT(point < numPoints());
    // Row-major: the last axis varies fastest, so the divisor for
    // axis i is the product of the sizes of all later axes.
    std::size_t divisor = 1;
    for (std::size_t a = axes.size(); a-- > axis + 1;)
        divisor *= axes[a].values.size();
    std::size_t i = (point / divisor) % axes[axis].values.size();
    return axes[axis].values[i];
}

std::vector<std::uint64_t>
SweepSpec::valuesAt(std::size_t point) const
{
    std::vector<std::uint64_t> values(axes.size());
    std::size_t remainder = point;
    for (std::size_t a = axes.size(); a-- > 0;) {
        std::size_t size = axes[a].values.size();
        values[a] = axes[a].values[remainder % size];
        remainder /= size;
    }
    return values;
}

std::string
SweepSpec::axesJson(std::size_t point) const
{
    std::vector<std::uint64_t> values = valuesAt(point);
    std::string json = "{";
    for (std::size_t a = 0; a < axes.size(); ++a) {
        if (a > 0)
            json += ",";
        json += "\"" + axes[a].name +
            "\":" + std::to_string(values[a]);
    }
    json += "}";
    return json;
}

void
SweepSpec::forEachPoint(
    const std::function<void(std::size_t,
                             const std::vector<std::uint64_t> &)>
        &fn) const
{
    std::size_t n = numPoints();
    for (std::size_t p = 0; p < n; ++p)
        fn(p, valuesAt(p));
}

} // namespace salam::drive

/**
 * @file
 * SweepSpec: declarative design-space sweep grids.
 *
 * A sweep is a cartesian product of named axes ("fu_limit" x
 * "spm_ports" x ...). The benches used to hand-roll nested loops,
 * which scattered the grid shape, the point count, and the axis
 * naming across each bench. SweepSpec centralizes it: declare the
 * axes once, expand to point vectors, and carry the axis names into
 * the result store so `salam-query` output is self-describing.
 *
 * Expansion order is row-major with the FIRST axis slowest — the
 * exact order of the equivalent nested loops — so ports of existing
 * benches keep their historical point numbering (and with it,
 * resume/config-hash compatibility).
 */

#ifndef SALAM_DRIVE_SWEEP_SPEC_HH
#define SALAM_DRIVE_SWEEP_SPEC_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace salam::drive
{

/** One named sweep dimension and the values it takes. */
struct SweepAxis
{
    std::string name;
    std::vector<std::uint64_t> values;
};

/** A cartesian sweep grid built from named axes. */
class SweepSpec
{
  public:
    /** Add an axis with an explicit value list. */
    SweepSpec &axis(std::string name,
                    std::vector<std::uint64_t> values);

    /**
     * Add an axis covering [first, last] in steps of @p step
     * (inclusive of @p last when the stride lands on it).
     */
    SweepSpec &axisRange(std::string name, std::uint64_t first,
                         std::uint64_t last, std::uint64_t step = 1);

    /** Add an axis where each value is first * factor^k <= last. */
    SweepSpec &axisPow(std::string name, std::uint64_t first,
                       std::uint64_t last, std::uint64_t factor = 2);

    std::size_t numAxes() const { return axes.size(); }

    const SweepAxis &axisAt(std::size_t i) const { return axes[i]; }

    /** Total grid points (product of axis sizes; 0 when empty). */
    std::size_t numPoints() const;

    /**
     * The axis values of grid point @p point, first axis first.
     * Point 0 is every axis at its first value; the LAST axis
     * varies fastest.
     */
    std::vector<std::uint64_t> valuesAt(std::size_t point) const;

    /** Value of axis @p axis at grid point @p point. */
    std::uint64_t value(std::size_t point, std::size_t axis) const;

    /**
     * Compact JSON object mapping axis names to the point's values,
     * e.g. {"fu_limit":8,"spm_ports":4} — the store's sweep-point
     * "axes" payload.
     */
    std::string axesJson(std::size_t point) const;

    /** Invoke @p fn for every point in expansion order. */
    void forEachPoint(
        const std::function<void(
            std::size_t, const std::vector<std::uint64_t> &)> &fn)
        const;

  private:
    std::vector<SweepAxis> axes;
};

} // namespace salam::drive

#endif // SALAM_DRIVE_SWEEP_SPEC_HH

#include "trace_replay.hh"

#include <algorithm>
#include <bit>

#include "ir/instruction.hh"

namespace salam::drive
{

using namespace salam::core;
using namespace salam::hw;

std::string
fastPathBlocker(const DynTrace &trace, const DeviceConfig &dev,
                bool fault_injection_active,
                bool interconnect_in_path)
{
    if (trace.empty())
        return "no captured trace";
    if (fault_injection_active) {
        return "fault injection makes outcomes schedule-dependent";
    }
    if (interconnect_in_path) {
        return "memory path crosses a modeled interconnect; replay "
               "models a private scratchpad only";
    }
    if (dev.blockSequentialImport != trace.capturedBlockSequential) {
        return "block-sequential import differs from the capture "
               "run (control-affecting parameter)";
    }
    return {};
}

ReplayPrep
buildReplayPrep(const StaticCdfg &cdfg, const DynTrace &trace)
{
    ReplayPrep prep;
    constexpr std::uint32_t npos = ReplayPrep::npos;
    constexpr std::uint32_t no_block = ~0u;
    const std::size_t n = trace.insts.size();
    prep.prevSame.assign(n, npos);
    prep.nextSame.assign(n, npos);
    prep.memSeq.assign(n, 0);
    prep.slotOffsets.assign(n + 1, 0);
    prep.slotTargets.reserve(n * 2);

    // 0 = not a memory op, 1 = load, 2 = store.
    std::vector<std::uint8_t> memKind(n, 0);

    // Pass 1: group the trace into whole-block imports (the capture
    // appends block-at-a-time, in import order), tracking the
    // control edge each import took so phi operand plans can be
    // selected statically, and mirroring latestInstance to turn the
    // engine's live-instance operand binding into per-seq targets.
    std::vector<std::uint32_t> lastInstance(cdfg.numInstructions(),
                                            npos);
    std::uint32_t from_id = no_block;
    std::uint32_t mem_count = 0;
    std::size_t pos = 0;
    while (pos < n) {
        std::uint32_t first_sid = trace.insts[pos].staticId;
        if (first_sid >= cdfg.numInstructions()) {
            prep.error = "trace references an unknown instruction";
            return prep;
        }
        const StaticInstInfo &finfo = cdfg.infoById(first_sid);
        const StaticBlockInfo &binfo =
            cdfg.blockInfo(finfo.inst->parent());
        if (binfo.firstInstId != first_sid ||
            pos + binfo.numInsts > n) {
            prep.error = "trace/static mismatch at seq " +
                std::to_string(pos);
            return prep;
        }
        for (unsigned i = 0; i < binfo.numInsts; ++i) {
            auto seq = static_cast<std::uint32_t>(pos + i);
            const StaticInstInfo &sinfo =
                cdfg.infoById(binfo.firstInstId + i);
            if (trace.insts[seq].staticId != sinfo.id) {
                prep.error = "trace/static mismatch at seq " +
                    std::to_string(seq);
                return prep;
            }

            // Same-instruction chain. The engine registers the new
            // instance before binding its operands, so update
            // lastInstance first, exactly as createDynInst does.
            std::uint32_t prev = lastInstance[sinfo.id];
            prep.prevSame[seq] = prev;
            if (prev != npos)
                prep.nextSame[prev] = seq;
            lastInstance[sinfo.id] = seq;

            auto bind = [&](const OperandPlan &plan) {
                prep.slotTargets.push_back(
                    plan.kind == OperandPlan::Kind::Producer
                        ? lastInstance[plan.producerId]
                        : npos);
            };
            if (sinfo.isPhi) {
                const OperandPlan *plan = nullptr;
                if (from_id != no_block) {
                    for (const auto &[pred_id, p] :
                         sinfo.phiIncoming) {
                        if (pred_id == from_id) {
                            plan = &p;
                            break;
                        }
                    }
                }
                if (plan == nullptr) {
                    prep.error = "phi has no incoming edge for the "
                                 "traced control flow";
                    return prep;
                }
                bind(*plan);
            } else {
                for (const OperandPlan &plan : sinfo.operands)
                    bind(plan);
            }
            prep.slotOffsets[seq + 1] =
                static_cast<std::uint32_t>(prep.slotTargets.size());

            auto opc = sinfo.inst->opcode();
            if (opc == ir::Opcode::Load) {
                memKind[seq] = 1;
                prep.memSeq[seq] = mem_count++;
            } else if (opc == ir::Opcode::Store) {
                memKind[seq] = 2;
                prep.memSeq[seq] = mem_count++;
            }
        }
        from_id = binfo.id;
        pos += binfo.numInsts;
    }

    // Reverse producer edges (commit notifications), ascending by
    // reader within each producer because seq is walked ascending.
    prep.readerOffsets.assign(n + 1, 0);
    for (std::uint32_t t : prep.slotTargets) {
        if (t != npos)
            ++prep.readerOffsets[t + 1];
    }
    for (std::size_t i = 0; i < n; ++i)
        prep.readerOffsets[i + 1] += prep.readerOffsets[i];
    prep.readerEdges.resize(prep.readerOffsets[n]);
    {
        std::vector<std::uint32_t> cursor(
            prep.readerOffsets.begin(), prep.readerOffsets.end() - 1);
        for (std::uint32_t seq = 0;
             seq < static_cast<std::uint32_t>(n); ++seq) {
            for (std::uint32_t s = prep.slotOffsets[seq];
                 s < prep.slotOffsets[seq + 1]; ++s) {
                std::uint32_t t = prep.slotTargets[s];
                if (t == npos)
                    continue;
                prep.readerEdges[cursor[t]++] =
                    (static_cast<std::uint64_t>(s) << 32) | seq;
            }
        }
    }

    // Memory-conflict edges. Work at the coarsest granularity that
    // divides every traced address and size: then two ops share a
    // bucket iff their byte ranges overlap, and the engine's
    // disambiguation reduces exactly to (a) the latest store per
    // bucket — earlier stores on a bucket serialize through it, so
    // it is uncommitted whenever any of them is — and (b) for
    // stores, every load on the bucket since that store (loads do
    // not serialize; loads before the store must commit before the
    // store can issue).
    std::uint64_t align_acc = 0;
    for (std::size_t i = 0; i < n; ++i) {
        if (memKind[i] != 0 && trace.insts[i].memSize != 0)
            align_acc |= trace.insts[i].memAddr |
                trace.insts[i].memSize;
    }
    unsigned shift =
        align_acc == 0
            ? 0
            : static_cast<unsigned>(std::countr_zero(align_acc));

    struct Cell
    {
        std::uint32_t lastStore = ReplayPrep::npos;
        std::vector<std::uint32_t> loadsSince;
    };
    std::unordered_map<std::uint64_t, Cell> cells;
    prep.conflictOffsets.assign(n + 1, 0);
    std::vector<std::uint32_t> scratch;
    for (std::uint32_t seq = 0; seq < static_cast<std::uint32_t>(n);
         ++seq) {
        if (memKind[seq] == 0) {
            prep.conflictOffsets[seq + 1] =
                prep.conflictOffsets[seq];
            continue;
        }
        const DynTraceInst &rec = trace.insts[seq];
        bool is_store = memKind[seq] == 2;
        scratch.clear();
        if (rec.memSize != 0) {
            std::uint64_t b0 = rec.memAddr >> shift;
            std::uint64_t b1 =
                (rec.memAddr + rec.memSize - 1) >> shift;
            for (std::uint64_t b = b0; b <= b1; ++b) {
                Cell &cell = cells[b];
                if (cell.lastStore != npos)
                    scratch.push_back(cell.lastStore);
                if (is_store) {
                    for (std::uint32_t ld : cell.loadsSince)
                        scratch.push_back(ld);
                    cell.lastStore = seq;
                    cell.loadsSince.clear();
                } else {
                    cell.loadsSince.push_back(seq);
                }
            }
        }
        std::sort(scratch.begin(), scratch.end());
        scratch.erase(std::unique(scratch.begin(), scratch.end()),
                      scratch.end());
        prep.conflictEdges.insert(prep.conflictEdges.end(),
                                  scratch.begin(), scratch.end());
        prep.conflictOffsets[seq + 1] = static_cast<std::uint32_t>(
            prep.conflictEdges.size());
    }

    prep.notifyOffsets.assign(n + 1, 0);
    for (std::uint32_t t : prep.conflictEdges)
        ++prep.notifyOffsets[t + 1];
    for (std::size_t i = 0; i < n; ++i)
        prep.notifyOffsets[i + 1] += prep.notifyOffsets[i];
    prep.notifyEdges.resize(prep.notifyOffsets[n]);
    {
        std::vector<std::uint32_t> cursor(
            prep.notifyOffsets.begin(), prep.notifyOffsets.end() - 1);
        for (std::uint32_t seq = 0;
             seq < static_cast<std::uint32_t>(n); ++seq) {
            for (std::uint32_t e = prep.conflictOffsets[seq];
                 e < prep.conflictOffsets[seq + 1]; ++e) {
                prep.notifyEdges[cursor[prep.conflictEdges[e]]++] =
                    seq;
            }
        }
    }
    return prep;
}

TraceReplayer::TraceReplayer(const StaticCdfg &cdfg,
                             const DeviceConfig &dev,
                             const DynTrace &trace,
                             const ReplaySpmConfig &spm,
                             const ReplayPrep *prep)
    : cdfg(cdfg), cfg(dev), trace(trace), spmCfg(spm), prep(prep)
{
    limitedIdxOf.fill(0xff);
    for (std::size_t t = 0; t < numFuTypes; ++t) {
        unsigned limit = cfg.fuLimits[t];
        if (limit > 0) {
            poolFreeAt[t].assign(limit, 0);
            limitedIdxOf[t] =
                static_cast<std::uint8_t>(numLimitedFus++);
        }
    }
    if (spmCfg.banks > 1)
        busyBank.assign(spmCfg.banks, 0);

    // Per-static-instruction facts, hoisted out of the hot loop.
    // The energy terms reproduce RuntimeEngine's arithmetic exactly
    // (same operand-bit double sum, same products) so the replayed
    // accumulators are bit-identical.
    const HardwareProfile &profile = cfg.profile;
    facts.resize(cdfg.numInstructions());
    for (std::size_t id = 0; id < cdfg.numInstructions(); ++id) {
        const StaticInstInfo &info =
            cdfg.infoById(static_cast<unsigned>(id));
        const ir::Instruction *inst = info.inst;
        StaticFacts &f = facts[id];
        double read_bits = 0.0;
        for (std::size_t o = 0; o < inst->numOperands(); ++o)
            read_bits += inst->operand(o)->type()->bitWidth();
        f.readEnergyPj =
            read_bits * profile.registers().readEnergyPjPerBit;
        f.isVoid = inst->type()->isVoid();
        f.writeEnergyPj = f.isVoid
            ? 0.0
            : static_cast<double>(info.resultBits) *
                  profile.registers().writeEnergyPjPerBit;
        f.fuEnergyPj = info.fu != FuType::None
            ? profile.fu(info.fu).dynamicEnergyPj
            : 0.0;
        f.parentBlock = cdfg.blockInfo(inst->parent()).id;
        f.fu = info.fu;
        if (info.fu != FuType::None)
            f.limitedIdx =
                limitedIdxOf[static_cast<std::size_t>(info.fu)];
        f.latency = info.latency;
        f.initiationInterval = info.initiationInterval;
        switch (inst->opcode()) {
          case ir::Opcode::Load:
            f.opKind = opLoad;
            break;
          case ir::Opcode::Store:
            f.opKind = opStore;
            break;
          case ir::Opcode::Br:
            f.opKind = opBr;
            break;
          case ir::Opcode::Ret:
            f.opKind = opRet;
            break;
          default:
            f.opKind = opCompute;
            break;
        }
        if (ir::isFloatingPointOp(inst->opcode()) ||
            info.fu == FuType::FpSpecial) {
            f.issueLane = laneFp;
        } else if (info.fu != FuType::None) {
            f.issueLane = laneInt;
        } else {
            f.issueLane = laneOther;
        }
    }
}

bool
TraceReplayer::fail(std::string why)
{
    if (!failed) {
        failed = true;
        failReason = std::move(why);
    }
    return false;
}

void
TraceReplayer::importBlock(std::uint32_t block_id,
                           std::uint32_t from_id)
{
    const StaticBlockInfo &binfo = cdfg.blockInfoById(block_id);
    if (binfo.numInsts > cfg.reservationQueueSize) {
        fail("block exceeds the reservation queue (the full "
             "simulation would fatal too)");
        return;
    }
    if (unissuedCount + binfo.numInsts > cfg.reservationQueueSize) {
        pendingImport = block_id;
        pendingImportFrom = from_id;
        return;
    }
    pendingImport = noBlock;

    if (static_cast<std::uint64_t>(imported) + binfo.numInsts >
        trace.insts.size()) {
        fail("trace ends mid-import: control flow diverged from "
             "the capture run");
        return;
    }

    const ReplayPrep &pp = *prep;
    for (unsigned i = 0; i < binfo.numInsts; ++i) {
        std::uint32_t seq = imported++;
        // Mirrors createDynInst, including the arena-freelist
        // hit/miss accounting (the engine recycles retired DynInsts;
        // the replay only mirrors the counters).
        if (freeCount == 0) {
            ++stats.arenaMisses;
        } else {
            ++stats.arenaHits;
            --freeCount;
        }
        ++stats.dynamicInstructions;
        ++unissuedCount;

        RNode &n = nodes[seq];
        n.fence = curCycle + 1;
        // The engine only applies initiation-interval/hand-off
        // checks against a previous instance that is still in the
        // reservation window at import time.
        std::uint32_t prev = pp.prevSame[seq];
        n.prevLink =
            (prev != noNode && prev >= pruneFront) ? prev : noNode;

        // Bind producer edges with the engine's exact rule: an
        // uncommitted live instance is a RAW edge (and counts a
        // reader); anything else resolves to an already-available
        // value, i.e. no edge.
        std::uint32_t sb = pp.slotOffsets[seq];
        std::uint32_t se = pp.slotOffsets[seq + 1];
        std::uint16_t pend = 0;
        for (std::uint32_t s = sb; s < se; ++s) {
            std::uint32_t t = pp.slotTargets[s];
            if (t != noNode && !nodes[t].committed) {
                slots[s] = t;
                ++nodes[t].unissuedReaders;
                ++pend;
            } else {
                slots[s] = noNode;
            }
        }
        n.pendingOperands = pend;

        const StaticFacts &f = factOf(seq);
        if (f.opKind == opLoad || f.opKind == opStore) {
            std::uint16_t conf = 0;
            for (std::uint32_t e = pp.conflictOffsets[seq];
                 e < pp.conflictOffsets[seq + 1]; ++e) {
                if (!nodes[pp.conflictEdges[e]].committed)
                    ++conf;
            }
            n.pendingConflicts = conf;
            if (f.opKind == opStore)
                unresolvedStores.push_back(seq);
            else
                unresolvedLoads.push_back(seq);
            snapDirty = true;
            // Pointer operand already available: the address
            // resolves the first cycle the scan can visit this op.
            std::uint32_t ptr_abs = sb + (f.opKind == opLoad ? 0 : 1);
            if (slots[ptr_abs] == noNode)
                futureResolves.push_back({n.fence, seq});
        } else if (pend == 0) {
            maybeCandidate(seq);
        }
    }
}

void
TraceReplayer::captureOperands(std::uint32_t seq)
{
    for (std::uint32_t s = prep->slotOffsets[seq];
         s < prep->slotOffsets[seq + 1]; ++s) {
        std::uint32_t &p = slots[s];
        if (p != noNode) {
            std::uint32_t prod = p;
            p = noNode;
            if (--nodes[prod].unissuedReaders == 0) {
                // Draining the producer's output register may open
                // its successor instance's FU hand-off gate.
                std::uint32_t nxt = prep->nextSame[prod];
                if (nxt != noNode && nxt < imported &&
                    nodes[nxt].prevLink == prod) {
                    maybeCandidate(nxt);
                }
            }
        }
    }
}

void
TraceReplayer::maybeCandidate(std::uint32_t seq)
{
    const RNode &n = nodes[seq];
    if (n.issued || n.pendingOperands != 0)
        return;
    const StaticFacts &f = factOf(seq);
    std::uint64_t bit = 1ull << (seq & 63);
    if (f.opKind == opLoad || f.opKind == opStore) {
        if (!n.addrKnown || n.pendingConflicts != 0)
            return;
        if (f.opKind == opLoad)
            candLoadBits[seq >> 6] |= bit;
        else
            candStoreBits[seq >> 6] |= bit;
    } else if (f.opKind == opCompute && f.fu != FuType::None) {
        if (n.prevLink != noNode) {
            // The engine's FU hand-off rejects an instance whose
            // in-window predecessor has not issued or still holds
            // readers on its output register, unconditionally —
            // the same untimed checks fuAvailable applies. The
            // predecessor's issue (clear_bit) and its last reader
            // draining (captureOperands) re-enter this instance.
            const RNode &prev = nodes[n.prevLink];
            if (!prev.issued || prev.unissuedReaders > 0)
                return;
        }
        if (f.limitedIdx != 0xff)
            candFuBits[f.limitedIdx][seq >> 6] |= bit;
    }
    candBits[seq >> 6] |= bit;
}

void
TraceReplayer::applyResolve(std::uint32_t seq)
{
    // The engine resolves as soon as the pointer operand's value is
    // available and the fence has passed; the *address* comes from
    // the trace (the value the capture run computed — identical by
    // value determinism). The ordering snapshot for this cycle was
    // taken before resolutions apply, reproducing the engine's
    // built-before-the-scan summary staleness.
    RNode &n = nodes[seq];
    if (n.addrKnown)
        return;
    n.addrKnown = true;
    lastScanResolvedAddr = true;
    snapDirty = true;
    maybeCandidate(seq);
}

bool
TraceReplayer::fuAvailable(std::uint32_t seq, const StaticFacts &f,
                           std::uint64_t cyc)
{
    if (f.fu == FuType::None)
        return true;

    // Same check order as the engine; the first *timed* blocker
    // (initiation interval, pool release) also feeds earliestWake
    // so stall spans can be fast-forwarded.
    const RNode &n = nodes[seq];
    if (n.prevLink != noNode) {
        const RNode &prev = nodes[n.prevLink];
        if (!prev.issued) {
            return false;
        }
        std::uint64_t ii_ready =
            prev.issueCycle + f.initiationInterval;
        if (cyc < ii_ready) {
            earliestWake = std::min(earliestWake, ii_ready);
            return false;
        }
        if (prev.unissuedReaders > 0) {
            return false;
        }
    }

    std::size_t t = static_cast<std::size_t>(f.fu);
    unsigned limit = cfg.fuLimits[t];
    if (limit == 0)
        return true;
    std::uint64_t min_free = never;
    for (std::uint64_t free_at : poolFreeAt[t]) {
        if (free_at <= cyc)
            return true;
        min_free = std::min(min_free, free_at);
    }
    earliestWake = std::min(earliestWake, min_free);
    // Pool state only tightens for the rest of this scan, so every
    // later candidate of this type parks too — close the class.
    if (f.limitedIdx != 0xff)
        fuClosedMask |= 1u << f.limitedIdx;
    return false;
}

void
TraceReplayer::occupyFu(const StaticFacts &f, std::uint64_t cyc)
{
    if (f.fu == FuType::None)
        return;
    std::size_t t = static_cast<std::size_t>(f.fu);
    if (cfg.fuLimits[t] == 0)
        return;
    for (auto &free_at : poolFreeAt[t]) {
        if (free_at <= cyc) {
            free_at = cyc + f.initiationInterval;
            return;
        }
    }
}

void
TraceReplayer::commitNode(std::uint32_t seq, std::uint64_t cyc)
{
    RNode &n = nodes[seq];
    n.committed = true;
    ++stats.committedInstructions;
    n.commitCycle = cyc;
    const StaticFacts &f = factOf(seq);
    if (!f.isVoid)
        stats.registerWriteEnergyPj += f.writeEnergyPj;

    const ReplayPrep &pp = *prep;
    // Wake readers: every reader imported before this commit bound a
    // live RAW edge to us (we were uncommitted then, and commit
    // happens once), so the decrement matches the engine's
    // operandsReady flipping for exactly those instances. Readers
    // not yet imported bind no edge (they see a committed value).
    for (std::uint32_t e = pp.readerOffsets[seq];
         e < pp.readerOffsets[seq + 1]; ++e) {
        std::uint64_t edge = pp.readerEdges[e];
        auto r = static_cast<std::uint32_t>(edge);
        if (r >= imported)
            break;
        auto abs_slot = static_cast<std::uint32_t>(edge >> 32);
        RNode &rn = nodes[r];
        --rn.pendingOperands;
        const StaticFacts &rf = factOf(r);
        if (rf.opKind == opLoad || rf.opKind == opStore) {
            std::uint32_t ptr_abs = pp.slotOffsets[r] +
                (rf.opKind == opLoad ? 0 : 1);
            if (abs_slot == ptr_abs && !rn.addrKnown) {
                // A mid-scan commit resolves later scan visits this
                // same cycle; commits landing outside the scan (or a
                // fence still ahead) resolve at the next scan the
                // engine would reach them in.
                std::uint64_t due = std::max(cyc, rn.fence);
                if (inScan && due <= curCycle)
                    applyResolve(r);
                else
                    futureResolves.push_back({due, r});
            }
        }
        maybeCandidate(r);
    }
    if (f.opKind == opLoad || f.opKind == opStore) {
        for (std::uint32_t e = pp.notifyOffsets[seq];
             e < pp.notifyOffsets[seq + 1]; ++e) {
            std::uint32_t r = pp.notifyEdges[e];
            if (r >= imported)
                break;
            RNode &rn = nodes[r];
            if (--rn.pendingConflicts == 0)
                maybeCandidate(r);
        }
    }
}

void
TraceReplayer::pruneWindow()
{
    const ReplayPrep &pp = *prep;
    while (pruneFront < imported) {
        RNode &front = nodes[pruneFront];
        if (!front.committed || front.unissuedReaders > 0)
            break;
        std::uint32_t next = pp.nextSame[pruneFront];
        if (next != noNode && next < imported &&
            !nodes[next].issued) {
            break;
        }
        ++freeCount;
        ++pruneFront;
    }
}

void
TraceReplayer::deliverResponses(std::uint64_t cyc, std::uint64_t eff)
{
    while (!spmResponseQueue.empty() &&
           spmResponseQueue.front().readyCycle <= cyc) {
        std::uint32_t seq = spmResponseQueue.front().seq;
        spmResponseQueue.pop_front();
        if (factOf(seq).opKind == opLoad)
            --loadsInFlight;
        else
            --storesInFlight;
        commitNode(seq, eff);
    }
}

void
TraceReplayer::scheduleService(std::uint64_t cyc)
{
    // Mirrors Scratchpad::scheduleService tick arithmetic in the
    // cycle domain: at most one pass per SPM cycle; requests that
    // arrive after this cycle's pass wait for the next edge. A pass
    // scheduled from within the engine scan runs post-engine (event
    // priorities: service 0 < engine tick 10).
    if (servicePending)
        return;
    servicePending = true;
    serviceCycle = (havePass && lastPassCycle == cyc) ? cyc + 1 : cyc;
}

void
TraceReplayer::servicePass(std::uint64_t cyc, bool post_engine)
{
    servicePending = false;
    havePass = true;
    lastPassCycle = cyc;
    if (spmRequestQueue.empty())
        return;

    unsigned reads_left = spmCfg.readPorts;
    unsigned writes_left = spmCfg.writePorts;
    if (spmCfg.banks > 1)
        std::fill(busyBank.begin(), busyBank.end(), 0);

    std::uint64_t ready = cyc + spmCfg.latencyCycles;
    unsigned loads_remaining = queuedLoads;
    unsigned stores_remaining = queuedStores;
    for (auto it = spmRequestQueue.begin();
         it != spmRequestQueue.end();) {
        // Stop once neither class can be serviced any more; the
        // entries this skips would all be passed over anyway.
        if ((reads_left == 0 || loads_remaining == 0) &&
            (writes_left == 0 || stores_remaining == 0)) {
            break;
        }
        bool is_load = factOf(it->seq).opKind == opLoad;
        if (is_load)
            --loads_remaining;
        else
            --stores_remaining;
        unsigned bank = 0;
        if (spmCfg.banks > 1) {
            bank = static_cast<unsigned>(
                ((trace.insts[it->seq].memAddr - spmCfg.rangeStart) /
                 spmCfg.wordBytes) % spmCfg.banks);
        }
        unsigned &budget = is_load ? reads_left : writes_left;
        if (budget == 0 ||
            (spmCfg.banks > 1 && busyBank[bank] != 0)) {
            ++it;
            continue;
        }
        --budget;
        if (spmCfg.banks > 1)
            busyBank[bank] = 1;
        if (is_load) {
            ++spmReads;
            --queuedLoads;
        } else {
            ++spmWrites;
            --queuedStores;
        }
        spmResponseQueue.push_back({it->seq, ready});
        it = spmRequestQueue.erase(it);
    }

    // Zero-latency responses fire in the same tick (priority -10):
    // pre-engine passes commit with this cycle's count, post-engine
    // passes after the engine already advanced it.
    if (spmCfg.latencyCycles == 0)
        deliverResponses(cyc, post_engine ? cyc + 1 : cyc);

    if (!spmRequestQueue.empty()) {
        servicePending = true;
        serviceCycle = cyc + 1;
    }
}

void
TraceReplayer::handleCandidate(std::uint32_t seq, std::uint64_t cyc)
{
    RNode &n = nodes[seq];
    if (n.fence > cyc) {
        earliestWake = std::min(earliestWake, n.fence);
        return;
    }
    const StaticFacts &f = factOf(seq);
    auto clear_bit = [&] {
        std::uint64_t keep = ~(1ull << (seq & 63));
        candBits[seq >> 6] &= keep;
        candLoadBits[seq >> 6] &= keep;
        candStoreBits[seq >> 6] &= keep;
        if (f.limitedIdx != 0xff)
            candFuBits[f.limitedIdx][seq >> 6] &= keep;
        --unissuedCount;
        // Issuing may open the successor instance's hand-off gate.
        std::uint32_t nxt = prep->nextSame[seq];
        if (nxt != noNode && nxt < imported &&
            nodes[nxt].prevLink == seq) {
            maybeCandidate(nxt);
        }
    };

    if (f.opKind == opBr) {
        captureOperands(seq);
        std::uint32_t target = trace.insts[seq].branchTarget;
        if (target == DynTrace::noBranchTarget ||
            target >= cdfg.numBlocks()) {
            fail("trace has no branch outcome at seq " +
                 std::to_string(seq));
            return;
        }
        n.issued = true;
        n.issueCycle = cyc;
        clear_bit();
        commitNode(seq, cyc);
        std::uint32_t cur = f.parentBlock;
        if (cfg.blockSequentialImport && target != cur &&
            pendingImport == noBlock) {
            pendingImport = target;
            pendingImportFrom = cur;
        } else {
            importBlock(target, cur);
        }
        issuedAny = true;
        ++stats.otherOpsIssued;
        return;
    }
    if (f.opKind == opRet) {
        captureOperands(seq);
        n.issued = true;
        n.issueCycle = cyc;
        clear_bit();
        commitNode(seq, cyc);
        retSeen = true;
        issuedAny = true;
        ++stats.otherOpsIssued;
        return;
    }

    if (f.opKind == opLoad || f.opKind == opStore) {
        // Candidacy certifies operands, address, and resolved
        // conflicts; the snapshot gate reproduces the engine's
        // conservative any-earlier-unresolved check.
        std::uint32_t ms = prep->memSeq[seq];
        bool is_load = f.opKind == opLoad;
        if (snapUnknownStore < ms) {
            // Every later memory candidate has a larger memSeq
            // against the same frozen snapshot, so both classes
            // are done for this cycle.
            snapClosedLoads = true;
            snapClosedStores = true;
            return;
        }
        if (!is_load && snapUnknownLoad < ms) {
            snapClosedStores = true;
            return;
        }
        if (is_load &&
            (loadsIssuedNow >= cfg.readPortsPerCycle ||
             loadsInFlight >= cfg.readQueueSize)) {
            readyLoadBlocked = true;
            return;
        }
        if (!is_load &&
            (storesIssuedNow >= cfg.writePortsPerCycle ||
             storesInFlight >= cfg.writeQueueSize)) {
            readyStoreBlocked = true;
            return;
        }
        captureOperands(seq);
        n.issued = true;
        n.issueCycle = cyc;
        clear_bit();
        spmRequestQueue.push_back({seq});
        scheduleService(cyc);
        if (is_load)
            ++queuedLoads;
        else
            ++queuedStores;
        if (is_load) {
            ++loadsInFlight;
            ++loadsIssuedNow;
            ++stats.loadsIssued;
        } else {
            ++storesInFlight;
            ++storesIssuedNow;
            ++stats.storesIssued;
        }
        issuedAny = true;
        return;
    }

    // Compute ops (including phi and zero-latency wiring).
    if (!fuAvailable(seq, f, cyc)) {
        return;
    }
    captureOperands(seq);
    occupyFu(f, cyc);
    n.issued = true;
    n.issueCycle = cyc;
    clear_bit();
    if (f.fu != FuType::None)
        stats.fuEnergyPj += f.fuEnergyPj;
    stats.registerReadEnergyPj += f.readEnergyPj;
    unsigned latency = f.latency;
    if (latency == 0) {
        commitNode(seq, cyc);
    } else {
        n.commitCycle = cyc + latency;
        computeQueue.push_back(seq);
        nextCommitDue = std::min(nextCommitDue, n.commitCycle);
        ++fuInflight[static_cast<std::size_t>(f.fu)];
    }
    issuedAny = true;
    if (f.issueLane == laneFp) {
        ++fpIssuedNow;
        ++stats.fpOpsIssued;
    } else if (f.issueLane == laneInt) {
        ++stats.intOpsIssued;
    } else {
        ++stats.otherOpsIssued;
    }
}

bool
TraceReplayer::engineCycle(std::uint64_t cyc)
{
    curCycle = cyc;
    earliestWake = never;
    lastScanResolvedAddr = false;

    // 1. Commit compute operations whose latency has elapsed (same
    //    swap-remove order as the engine: it shapes computeQueue for
    //    the rest of the run, and commit order fixes the FP
    //    accumulation order of the energy counters).
    //    The walk only runs on cycles with a due commit (pushes keep
    //    nextCommitDue a lower bound; each walk recomputes it
    //    exactly), and a walk without removals leaves the order
    //    unchanged, so the removal order the engine would produce is
    //    preserved.
    if (cyc >= nextCommitDue) {
        nextCommitDue = never;
        for (std::size_t i = 0; i < computeQueue.size();) {
            std::uint32_t idx = computeQueue[i];
            if (nodes[idx].commitCycle <= cyc) {
                --fuInflight[static_cast<std::size_t>(
                    factOf(idx).fu)];
                commitNode(idx, cyc);
                computeQueue[i] = computeQueue.back();
                computeQueue.pop_back();
            } else {
                nextCommitDue = std::min(nextCommitDue,
                                         nodes[idx].commitCycle);
                ++i;
            }
        }
    }

    // 2. Retry a deferred block import.
    if (pendingImport != noBlock) {
        bool drained = unissuedCount == 0 && computeQueue.empty() &&
            loadsInFlight == 0 && storesInFlight == 0;
        if (!cfg.blockSequentialImport || drained ||
            pendingImportFrom == pendingImport) {
            importBlock(pendingImport, pendingImportFrom);
            if (failed)
                return false;
        }
    }

    // 3. Ordering snapshot (the engine builds its memory summary
    //    before the scan; resolutions applied below are therefore
    //    invisible to this cycle's ordering gates). The deques are
    //    in memory-program order, so the first still-unresolved
    //    entry is the minimum the engine's summary would carry.
    if (snapDirty) {
        snapDirty = false;
        while (!unresolvedStores.empty() &&
               nodes[unresolvedStores.front()].addrKnown) {
            unresolvedStores.pop_front();
        }
        snapUnknownStore = unresolvedStores.empty()
            ? noMemSeq
            : prep->memSeq[unresolvedStores.front()];
        while (!unresolvedLoads.empty() &&
               nodes[unresolvedLoads.front()].addrKnown) {
            unresolvedLoads.pop_front();
        }
        snapUnknownLoad = unresolvedLoads.empty()
            ? noMemSeq
            : prep->memSeq[unresolvedLoads.front()];
    }

    // 4. Apply address resolutions that came due.
    for (std::size_t i = 0; i < futureResolves.size();) {
        if (futureResolves[i].first <= cyc) {
            std::uint32_t seq = futureResolves[i].second;
            futureResolves[i] = futureResolves.back();
            futureResolves.pop_back();
            applyResolve(seq);
        } else {
            ++i;
        }
    }

    // 5. Issue sweep over the candidate bitmap, ascending seq — the
    //    reservation queue keeps import order, so this is the
    //    engine's exact visit order over the instructions that can
    //    matter. Handlers may set bits (mid-scan commits and block
    //    imports unblock strictly later seqs); re-reading the
    //    current word after each candidate picks those up within
    //    the same cycle, as the engine's growing scan does.
    issuedAny = false;
    readyLoadBlocked = false;
    readyStoreBlocked = false;
    snapClosedLoads = false;
    snapClosedStores = false;
    fuClosedMask = 0;
    loadsIssuedNow = 0;
    storesIssuedNow = 0;
    fpIssuedNow = 0;
    inScan = true;
    while (firstUnissued < imported && nodes[firstUnissued].issued)
        ++firstUnissued;
    std::uint32_t wi = firstUnissued >> 6;
    std::uint64_t mask = ~0ull << (firstUnissued & 63);
    while (!failed && imported != 0) {
        std::uint32_t hi_word = (imported - 1) >> 6;
        if (wi > hi_word)
            break;
        std::uint64_t w = candBits[wi] & mask;
        // A set stall flag witnesses this cycle's budget for that
        // class closing (budgets only tighten within a scan), so
        // every remaining candidate of the class parks without
        // side effects — drop them wholesale.
        if (readyLoadBlocked || snapClosedLoads)
            w &= ~candLoadBits[wi];
        if (readyStoreBlocked || snapClosedStores)
            w &= ~candStoreBits[wi];
        for (std::uint32_t cm = fuClosedMask; cm != 0;
             cm &= cm - 1) {
            w &= ~candFuBits[std::countr_zero(cm)][wi];
        }
        if (w == 0) {
            ++wi;
            mask = ~0ull;
            continue;
        }
        auto b = static_cast<unsigned>(std::countr_zero(w));
        std::uint32_t seq = (wi << 6) | b;
        mask = b == 63 ? 0 : ~0ull << (b + 1);
        handleCandidate(seq, cyc);
    }
    inScan = false;
    if (failed)
        return false;

    memStallLoadBlocked = readyLoadBlocked;
    memStallStoreBlocked = readyStoreBlocked;

    // recordCycleStats, minus the (absent) observers; the in-flight
    // counters stand in for walking computeQueue, and nextCommitDue
    // is exact here (last walk recomputed it, pushes only lower it).
    minComputeCommit = nextCommitDue;
    for (std::size_t t = 0; t < hw::numFuTypes; ++t)
        stats.fuBusyCycleSum[t] += fuInflight[t];
    if (issuedAny) {
        ++stats.newExecCycles;
        if (loadsIssuedNow > 0)
            ++stats.cyclesWithLoadIssue;
        if (storesIssuedNow > 0)
            ++stats.cyclesWithStoreIssue;
        if (fpIssuedNow > 0)
            ++stats.cyclesWithFpIssue;
        if (loadsIssuedNow > 0 && storesIssuedNow > 0)
            ++stats.cyclesWithLoadAndStoreIssue;
        if (loadsIssuedNow > 0 && fpIssuedNow > 0)
            ++stats.cyclesWithLoadAndFpIssue;
    } else {
        accrueStall(1);
    }
    lastIssuedAny = issuedAny;
    pruneWindow();

    // 6. Completion check.
    if (retSeen && unissuedCount == 0 && computeQueue.empty() &&
        loadsInFlight == 0 && storesInFlight == 0 &&
        pendingImport == noBlock) {
        stats.totalCycles = cyc + 1;
        if (imported != trace.insts.size()) {
            fail("replay finished before consuming the whole "
                 "trace: control flow diverged");
            return false;
        }
        return true;
    }
    return false;
}

void
TraceReplayer::accrueStall(std::uint64_t count)
{
    stats.stallCycles += count;
    bool load_busy = loadsInFlight > 0 || memStallLoadBlocked;
    bool store_busy = storesInFlight > 0 || memStallStoreBlocked;
    bool compute_busy = !computeQueue.empty();
    if (load_busy && store_busy && compute_busy)
        stats.stallLoadStoreCompute += count;
    else if (load_busy && compute_busy)
        stats.stallLoadCompute += count;
    else if (store_busy && compute_busy)
        stats.stallStoreCompute += count;
    else if (load_busy && store_busy)
        stats.stallLoadStore += count;
    else if (compute_busy)
        stats.stallComputeOnly += count;
    else if (load_busy)
        stats.stallLoadOnly += count;
    else if (store_busy)
        stats.stallStoreOnly += count;
    else
        stats.stallEmpty += count;
}

ReplayResult
TraceReplayer::run()
{
    ReplayResult result;
    if (trace.empty()) {
        result.error = "empty trace";
        return result;
    }
    if (prep == nullptr) {
        ownPrep = std::make_unique<const ReplayPrep>(
            buildReplayPrep(cdfg, trace));
        prep = ownPrep.get();
    }
    if (!prep->error.empty()) {
        result.error = prep->error;
        return result;
    }
    nodes.assign(trace.insts.size(), RNode{});
    slots.assign(prep->slotTargets.size(), noNode);
    candBits.assign((trace.insts.size() + 63) / 64, 0);
    candLoadBits.assign(candBits.size(), 0);
    candStoreBits.assign(candBits.size(), 0);
    candFuBits.assign(numLimitedFus,
                      std::vector<std::uint64_t>(candBits.size(), 0));

    // start(): import the entry block, then lift its fence so it
    // may issue in cycle 0 (the engine does exactly this) — which
    // also moves the entry block's already-available address
    // resolutions to cycle 0.
    curCycle = 0;
    importBlock(cdfg.blockInfo(cdfg.function().entry()).id, noBlock);
    for (std::uint32_t seq = 0; seq < imported; ++seq)
        nodes[seq].fence = 0;
    futureResolves.clear();
    for (std::uint32_t seq = 0; seq < imported; ++seq) {
        const StaticFacts &f = factOf(seq);
        if (f.opKind != opLoad && f.opKind != opStore)
            continue;
        std::uint32_t ptr_abs = prep->slotOffsets[seq] +
            (f.opKind == opLoad ? 0 : 1);
        if (slots[ptr_abs] == noNode)
            futureResolves.push_back({0, seq});
    }

    std::uint64_t cyc = 0;
    while (!failed) {
        deliverResponses(cyc, cyc);
        if (servicePending && serviceCycle <= cyc)
            servicePass(cyc, false);
        bool done = engineCycle(cyc);
        if (failed)
            break;
        if (done) {
            result.ok = true;
            result.stats = stats;
            result.spmReads = spmReads;
            result.spmWrites = spmWrites;
            return result;
        }
        if (servicePending && serviceCycle <= cyc)
            servicePass(cyc, true);

        // Fast-forward provably idle spans: when nothing issued,
        // the next state change is a timed event — a compute
        // commit, an SPM response or service pass, a scheduled
        // address resolution, or a candidate's fence/II/pool
        // release (earliestWake). Parked non-candidates need one of
        // those commits or resolutions first, so the bound is
        // sound. The skipped cycles are stalls with an unchanged
        // in-flight profile, so their statistics are accrued in
        // closed form. One non-timed hazard: a scan that issues
        // nothing can still resolve a memory address, and the
        // ordering snapshot only reflects that NEXT cycle — so a
        // newly resolved address means cycle+1 may issue even with
        // no timed event pending.
        std::uint64_t next = cyc + 1;
        if (!lastIssuedAny && !lastScanResolvedAddr) {
            std::uint64_t skip_to = earliestWake;
            skip_to = std::min(skip_to, minComputeCommit);
            if (!spmResponseQueue.empty()) {
                skip_to = std::min(
                    skip_to, spmResponseQueue.front().readyCycle);
            }
            if (servicePending)
                skip_to = std::min(skip_to, serviceCycle);
            for (const ResolveEvent &ev : futureResolves)
                skip_to = std::min(skip_to, ev.first);
            if (skip_to == never) {
                fail("replay deadlocked: no runnable work and no "
                     "pending event");
                break;
            }
            if (skip_to > next) {
                std::uint64_t k = skip_to - next;
                accrueStall(k);
                for (std::size_t t = 0; t < hw::numFuTypes; ++t)
                    stats.fuBusyCycleSum[t] += k * fuInflight[t];
                next = skip_to;
            }
        }
        cyc = next;
    }

    result.error = failReason.empty() ? "replay failed" : failReason;
    return result;
}

TraceCache::EntryPtr
TraceCache::getOrBuild(const std::string &key,
                       const std::function<Entry()> &build)
{
    std::promise<EntryPtr> promise;
    std::shared_future<EntryPtr> future;
    bool builder = false;
    {
        std::lock_guard<std::mutex> lock(mutex);
        auto it = entries.find(key);
        if (it == entries.end()) {
            future = promise.get_future().share();
            entries.emplace(key, future);
            builder = true;
        } else {
            future = it->second;
        }
    }
    if (builder) {
        try {
            promise.set_value(
                std::make_shared<const Entry>(build()));
        } catch (...) {
            promise.set_exception(std::current_exception());
        }
    }
    return future.get();
}

} // namespace salam::drive

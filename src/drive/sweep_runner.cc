#include "sweep_runner.hh"

#include <atomic>
#include <chrono>
#include <exception>
#include <fstream>
#include <thread>

#include "obs/json.hh"
#include "sim/sim_context.hh"

namespace salam::drive
{

std::vector<SweepPointResult>
SweepRunner::run(std::size_t num_points, const PointFn &fn)
{
    using clock = std::chrono::steady_clock;

    std::vector<SweepPointResult> results(num_points);
    for (std::size_t i = 0; i < num_points; ++i)
        results[i].index = i;

    // Workers inherit the launching thread's debug-flag selection
    // (so --debug-flags applies to every point) but nothing else.
    const std::uint64_t flag_mask = SimContext::current().flagMask();

    unsigned threads = opts.threads;
    if (threads == 0) {
        threads = std::thread::hardware_concurrency();
        if (threads == 0)
            threads = 1;
    }
    if (num_points < threads)
        threads = static_cast<unsigned>(num_points ? num_points : 1);
    usedThreads = threads;

    std::atomic<std::size_t> next{0};
    auto worker = [&] {
        for (;;) {
            std::size_t idx =
                next.fetch_add(1, std::memory_order_relaxed);
            if (idx >= num_points)
                return;
            SweepPointResult &r = results[idx];

            // A fresh context per point: flag state, sinks, and
            // termination hooks are isolated, and fatal() throws so
            // one bad point cannot take down the sweep.
            SimContext ctx;
            ctx.setFlagMask(flag_mask);
            ctx.setFatalMode(SimContext::FatalMode::Throw);
            ScopedSimContext bind(ctx);

            auto t0 = clock::now();
            try {
                r.payload = fn(idx);
                r.ok = true;
                r.outcome = "ok";
            } catch (const FatalError &e) {
                r.ok = false;
                r.outcome = e.outcome();
                r.error = e.what();
            } catch (const std::exception &e) {
                r.ok = false;
                r.outcome = "error";
                r.error = e.what();
            }
            r.wallSeconds =
                std::chrono::duration<double>(clock::now() - t0)
                    .count();
        }
    };

    auto sweep_t0 = clock::now();
    if (threads <= 1) {
        worker();
    } else {
        std::vector<std::thread> pool;
        pool.reserve(threads);
        for (unsigned t = 0; t < threads; ++t)
            pool.emplace_back(worker);
        for (std::thread &t : pool)
            t.join();
    }
    wallSeconds =
        std::chrono::duration<double>(clock::now() - sweep_t0)
            .count();
    return results;
}

void
SweepRunner::writeAggregateJson(
    std::ostream &os, const std::string &name,
    const std::vector<SweepPointResult> &results, unsigned threads,
    double wall_seconds)
{
    double serial_seconds = 0.0;
    std::size_t failed = 0;
    for (const SweepPointResult &r : results) {
        serial_seconds += r.wallSeconds;
        if (!r.ok)
            ++failed;
    }
    os << "{\"sweep\": \"" << obs::jsonEscape(name) << "\",\n";
    os << " \"points\": " << results.size() << ",\n";
    os << " \"failed_points\": " << failed << ",\n";
    os << " \"threads\": " << threads << ",\n";
    os << " \"wall_seconds\": " << obs::jsonNumber(wall_seconds)
       << ",\n";
    // Sum of per-point times: an estimate of the one-thread cost,
    // for speedup bookkeeping without rerunning serially.
    os << " \"point_seconds_sum\": "
       << obs::jsonNumber(serial_seconds) << ",\n";
    os << " \"results\": [\n";
    for (std::size_t i = 0; i < results.size(); ++i) {
        const SweepPointResult &r = results[i];
        os << "  {\"index\": " << r.index << ", \"outcome\": \""
           << obs::jsonEscape(r.outcome) << "\", \"wall_seconds\": "
           << obs::jsonNumber(r.wallSeconds);
        if (!r.error.empty())
            os << ", \"error\": \"" << obs::jsonEscape(r.error)
               << "\"";
        if (!r.payload.empty())
            os << ", \"point\": " << r.payload;
        os << "}" << (i + 1 < results.size() ? "," : "") << "\n";
    }
    os << " ]}\n";
}

bool
SweepRunner::writeAggregateJsonFile(
    const std::string &path, const std::string &name,
    const std::vector<SweepPointResult> &results, unsigned threads,
    double wall_seconds)
{
    std::ofstream os(path);
    if (!os)
        return false;
    writeAggregateJson(os, name, results, threads, wall_seconds);
    return static_cast<bool>(os);
}

} // namespace salam::drive

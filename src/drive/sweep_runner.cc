#include "sweep_runner.hh"

#include <atomic>
#include <chrono>
#include <csignal>
#include <exception>
#include <fstream>
#include <map>
#include <sstream>
#include <thread>
#include <unordered_set>

#include "obs/json.hh"
#include "obs/result_store.hh"
#include "obs/run_report.hh"
#include "sim/logging.hh"
#include "sim/sim_context.hh"

namespace salam::drive
{

namespace
{

// Shutdown state shared between the async signal handlers and the
// worker pool. One flag pair per process: concurrent SweepRunners are
// not a supported configuration (the benches run one), and a signal
// aimed at the process should drain all of them anyway.
std::atomic<bool> g_shutdown{false};
std::atomic<bool> g_cancel{false};
std::atomic<int> g_signalCount{0};

extern "C" void
sweepSignalHandler(int)
{
    // Async-signal-safe: atomics only. First signal drains (finish
    // in-flight points, skip the queue); a second escalates to
    // cancelling in-flight points at their next event-loop check.
    int seen = g_signalCount.fetch_add(1, std::memory_order_relaxed);
    g_shutdown.store(true, std::memory_order_relaxed);
    if (seen >= 1)
        g_cancel.store(true, std::memory_order_relaxed);
}

/** Installs SIGINT/SIGTERM drain handlers for one run() scope. */
class ScopedSignalHandlers
{
  public:
    ScopedSignalHandlers()
    {
#ifdef __unix__
        struct sigaction sa = {};
        sa.sa_handler = sweepSignalHandler;
        sigemptyset(&sa.sa_mask);
        sa.sa_flags = 0;
        sigaction(SIGINT, &sa, &oldInt);
        sigaction(SIGTERM, &sa, &oldTerm);
#endif
    }

    ~ScopedSignalHandlers()
    {
#ifdef __unix__
        sigaction(SIGINT, &oldInt, nullptr);
        sigaction(SIGTERM, &oldTerm, nullptr);
#endif
    }

    ScopedSignalHandlers(const ScopedSignalHandlers &) = delete;
    ScopedSignalHandlers &
    operator=(const ScopedSignalHandlers &) = delete;

  private:
#ifdef __unix__
    struct sigaction oldInt = {};
    struct sigaction oldTerm = {};
#endif
};

/**
 * The done-set a resume store implies: configurations (by hash) and
 * points (by bench-scoped index) that already have an ok record.
 * Only ok records count — a fault/timeout/truncated record means the
 * point must run again.
 */
struct ResumeIndex
{
    bool loaded = false;
    std::unordered_set<std::uint64_t> okHashes;
    std::unordered_set<long> okPoints;
};

ResumeIndex
buildResumeIndex(const std::string &path, const std::string &bench)
{
    ResumeIndex index;
    if (path.empty())
        return index;
    obs::StoreReader reader = obs::StoreReader::load(path);
    if (!reader.ok()) {
        // First run of a resumable sweep: nothing to resume from is
        // the normal cold-start case, not an error.
        warn("--resume: %s; starting from scratch",
             reader.error().c_str());
        return index;
    }
    for (const std::string &warning : reader.warnings())
        warn("--resume: %s", warning.c_str());
    for (const obs::LoadedRecord &rec : reader.records()) {
        const bool ok_run =
            rec.kind == "run" && rec.outcome == "ok";
        const bool ok_point =
            rec.kind == "sweep_point" &&
            (rec.outcome == "ok" || rec.outcome == "cached");
        if (!ok_run && !ok_point)
            continue;
        if (ok_run && rec.configHash != 0)
            index.okHashes.insert(rec.configHash);
        if (rec.point >= 0 &&
            (bench.empty() || rec.bench.empty() ||
             rec.bench == bench))
            index.okPoints.insert(rec.point);
    }
    index.loaded = true;
    return index;
}

/** Outcome histogram over a result set, insertion-stable enough. */
std::map<std::string, std::size_t>
outcomeCounts(const std::vector<SweepPointResult> &results)
{
    std::map<std::string, std::size_t> counts;
    for (const SweepPointResult &r : results)
        ++counts[r.outcome];
    return counts;
}

/**
 * A failed point, for exit-status and summary purposes: not ok and
 * not merely deferred ("skipped" re-runs on resume, "cached" is a
 * success).
 */
bool
isFailed(const SweepPointResult &r)
{
    return !r.ok && r.outcome != "skipped";
}

void
appendPointRecord(obs::ResultStore &store, const std::string &bench,
                  const SweepPointResult &r,
                  const std::string &axes_json)
{
    obs::StoreRecord rec;
    rec.kind = "sweep_point";
    rec.bench = bench;
    rec.outcome = r.outcome;
    rec.point = static_cast<long>(r.index);
    std::ostringstream payload;
    payload << "{\"index\":" << r.index << ",\"outcome\":\""
            << obs::jsonEscape(r.outcome)
            << "\",\"attempts\":" << r.attempts
            << ",\"wall_seconds\":" << obs::jsonNumber(r.wallSeconds);
    if (!axes_json.empty())
        payload << ",\"axes\":" << axes_json;
    if (!r.error.empty())
        payload << ",\"error\":\"" << obs::jsonEscape(r.error)
                << "\"";
    if (!r.payload.empty())
        payload << ",\"point\":" << r.payload;
    payload << "}";
    rec.json = payload.str();
    store.append(std::move(rec));
}

void
appendAttemptRecord(obs::ResultStore &store, const std::string &bench,
                    std::size_t index, unsigned attempt,
                    const std::string &outcome, double wall_seconds,
                    const std::string &error)
{
    obs::StoreRecord rec;
    rec.kind = "attempt";
    rec.bench = bench;
    rec.outcome = outcome;
    rec.point = static_cast<long>(index);
    std::ostringstream payload;
    payload << "{\"index\":" << index << ",\"attempt\":" << attempt
            << ",\"outcome\":\"" << obs::jsonEscape(outcome)
            << "\",\"wall_seconds\":" << obs::jsonNumber(wall_seconds);
    if (!error.empty())
        payload << ",\"error\":\"" << obs::jsonEscape(error) << "\"";
    payload << "}";
    rec.json = payload.str();
    store.append(std::move(rec));
}

} // namespace

void
SweepRunner::requestShutdown()
{
    g_shutdown.store(true, std::memory_order_relaxed);
}

void
SweepRunner::requestCancel()
{
    g_shutdown.store(true, std::memory_order_relaxed);
    g_cancel.store(true, std::memory_order_relaxed);
}

bool
SweepRunner::shutdownRequested()
{
    return g_shutdown.load(std::memory_order_relaxed);
}

unsigned
SweepRunner::resolveThreads(unsigned requested)
{
    if (requested != 0)
        return requested;
    unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : hw;
}

std::vector<SweepPointResult>
SweepRunner::run(std::size_t num_points, const PointFn &fn)
{
    using clock = std::chrono::steady_clock;

    std::vector<SweepPointResult> results(num_points);
    for (std::size_t i = 0; i < num_points; ++i)
        results[i].index = i;

    // Workers inherit the launching thread's debug-flag selection
    // (so --debug-flags applies to every point) but nothing else.
    const std::uint64_t flag_mask = SimContext::current().flagMask();

    unsigned threads = resolveThreads(opts.threads);
    if (num_points < threads)
        threads = static_cast<unsigned>(num_points ? num_points : 1);
    usedThreads = threads;

    // Reset process shutdown state for this run — a resume started in
    // the same process must not inherit the previous interrupt — and
    // install the SIGINT/SIGTERM drain handlers for the run() scope.
    g_shutdown.store(false, std::memory_order_relaxed);
    g_cancel.store(false, std::memory_order_relaxed);
    g_signalCount.store(0, std::memory_order_relaxed);
    wasInterrupted = false;
    ScopedSignalHandlers signal_guard;

    const ResumeIndex resume =
        buildResumeIndex(opts.resumePath, opts.storeName);
    const unsigned max_attempts = 1 + opts.pointRetries;

    summary = SweepHostSummary{};
    summary.enabled = opts.hostTelemetry;
    summary.threads = threads;
    summary.timelines.resize(num_points);
    summary.workerBusySeconds.assign(threads, 0.0);
    summary.workerBusyFraction.assign(threads, 0.0);
    summary.workerPoints.assign(threads, 0);

    // Per-point telemetry slots: each index is touched by exactly
    // one worker, and the joins publish them back to this thread.
    std::vector<obs::HostTelemetry> point_tel(
        opts.hostTelemetry ? num_points : 0);

    const std::uint64_t lock_wait_before =
        obs::TimedMutex::totalWaitNanos();
    const std::uint64_t sweep_start_ns = obs::hostNowNs();

    std::atomic<std::size_t> next{0};
    std::atomic<unsigned> worker_ids{0};
    auto worker = [&] {
        const unsigned wid =
            worker_ids.fetch_add(1, std::memory_order_relaxed);
        // All RunReport appends from this worker's points buffer
        // here and hit the filesystem once, when the worker drains —
        // the per-point lock-during-I/O bottleneck is gone.
        obs::ReportBuffer report_buffer;
        for (;;) {
            // Shutdown drain: stop dequeuing; points never picked up
            // keep the default outcome "skipped" and re-run on the
            // next --resume.
            if (g_shutdown.load(std::memory_order_relaxed))
                break;
            std::size_t idx =
                next.fetch_add(1, std::memory_order_relaxed);
            if (idx >= num_points)
                break;
            SweepPointResult &r = results[idx];
            SweepPointTimeline &tl = summary.timelines[idx];
            tl.index = idx;
            tl.worker = wid;
            tl.pickedNs = obs::hostNowNs() - sweep_start_ns;

            // Resume short-circuit: an ok record for this point's
            // configuration already exists in the resume store.
            if (resume.loaded &&
                (opts.pointHash
                     ? resume.okHashes.count(opts.pointHash(idx)) != 0
                     : resume.okPoints.count(
                           static_cast<long>(idx)) != 0)) {
                r.ok = true;
                r.outcome = "cached";
                r.attempts = 0;
                std::uint64_t now = obs::hostNowNs() - sweep_start_ns;
                tl.setupEndNs = tl.runEndNs = tl.endNs = now;
                if (opts.store != nullptr) {
                    appendPointRecord(*opts.store, opts.storeName, r,
                                  opts.pointAxes
                                      ? opts.pointAxes(r.index)
                                      : std::string());
                    if (opts.durable)
                        opts.store->flush();
                }
                continue;
            }

            for (unsigned attempt = 1; attempt <= max_attempts;
                 ++attempt) {
                // A fresh context per attempt: flag state, sinks, and
                // termination hooks are isolated, fatal() throws so
                // one bad point cannot take down the sweep, and the
                // host-side limits (deadline, cancel flag) are armed
                // where the event loop and the deadline sentinel can
                // see them.
                SimContext ctx;
                ctx.setFlagMask(flag_mask);
                ctx.setFatalMode(SimContext::FatalMode::Throw);
                ctx.setReportSink(&report_buffer);
                ctx.setSweepPointIndex(static_cast<long>(idx));
                ctx.setCancelFlag(&g_cancel);
                if (opts.pointTimeoutSeconds > 0.0)
                    ctx.setPointDeadlineNs(
                        obs::hostNowNs() +
                        static_cast<std::uint64_t>(
                            opts.pointTimeoutSeconds * 1e9));
                ScopedSimContext bind(ctx);
                if (opts.hostTelemetry) {
                    if (opts.captureSimTracePoint >= 0 &&
                        idx == static_cast<std::size_t>(
                                   opts.captureSimTracePoint))
                        point_tel[idx].setSimTraceCapture(true);
                    ctx.setHostTelemetry(&point_tel[idx]);
                }
                tl.setupEndNs = obs::hostNowNs() - sweep_start_ns;

                auto t0 = clock::now();
                r.error.clear();
                r.payload.clear();
                try {
                    r.payload = fn(idx);
                    r.ok = true;
                    r.outcome = "ok";
                } catch (const FatalError &e) {
                    r.ok = false;
                    r.outcome = e.outcome();
                    r.error = e.what();
                } catch (const std::exception &e) {
                    r.ok = false;
                    r.outcome = "error";
                    r.error = e.what();
                }
                r.wallSeconds =
                    std::chrono::duration<double>(clock::now() - t0)
                        .count();
                r.attempts = attempt;
                tl.runEndNs = obs::hostNowNs() - sweep_start_ns;
                if (opts.hostTelemetry) {
                    point_tel[idx].samplePeakRss();
                    tl.reportIoNs =
                        point_tel[idx]
                            .phase(obs::HostPhase::ReportIo)
                            .selfNanos;
                    ctx.setHostTelemetry(nullptr);
                }

                if (opts.store != nullptr && opts.pointRetries > 0)
                    appendAttemptRecord(*opts.store, opts.storeName,
                                        idx, attempt, r.outcome,
                                        r.wallSeconds, r.error);

                // "skipped" here means the attempt was cancelled by a
                // shutdown escalation — retrying would fight the
                // drain, and a resume re-runs the point anyway.
                if (r.ok || r.outcome == "skipped")
                    break;
                if (attempt == max_attempts ||
                    g_shutdown.load(std::memory_order_relaxed))
                    break;
                std::uint64_t backoff_ms =
                    static_cast<std::uint64_t>(opts.retryBackoffMs)
                    << (attempt - 1);
                if (backoff_ms > 5000)
                    backoff_ms = 5000;
                warn("sweep point %zu attempt %u/%u failed (%s); "
                     "retrying in %llums",
                     idx, attempt, max_attempts, r.outcome.c_str(),
                     static_cast<unsigned long long>(backoff_ms));
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(backoff_ms));
            }
            tl.endNs = obs::hostNowNs() - sweep_start_ns;

            // Checkpoint the point as soon as it completes. With
            // Options::durable the flush also lands any kind="run"
            // record the point function appended, so a killed process
            // (SIGKILL, OOM) loses only in-flight points.
            if (opts.store != nullptr) {
                appendPointRecord(*opts.store, opts.storeName, r,
                                  opts.pointAxes
                                      ? opts.pointAxes(r.index)
                                      : std::string());
                if (opts.durable && !opts.store->flush())
                    warn("sweep point %zu: durable store flush "
                         "failed",
                         idx);
            }
        }
        if (!report_buffer.flush())
            warn("sweep worker %u: report-buffer flush failed", wid);
    };

    auto sweep_t0 = clock::now();
    if (threads <= 1) {
        worker();
    } else {
        std::vector<std::thread> pool;
        pool.reserve(threads);
        for (unsigned t = 0; t < threads; ++t)
            pool.emplace_back(worker);
        for (std::thread &t : pool)
            t.join();
    }
    wallSeconds =
        std::chrono::duration<double>(clock::now() - sweep_t0)
            .count();

    // --- scaling-efficiency summary (workers have joined; all
    // per-point state is safely visible to this thread) ---
    summary.wallSeconds = wallSeconds;
    double busy_total = 0.0;
    for (std::size_t i = 0; i < num_points; ++i) {
        const SweepPointTimeline &tl = summary.timelines[i];
        double busy = static_cast<double>(tl.endNs - tl.pickedNs) /
                      1e9;
        summary.workerBusySeconds[tl.worker] += busy;
        summary.workerPoints[tl.worker] += 1;
        busy_total += busy;
        summary.pointSecondsSum += results[i].wallSeconds;
        if (opts.hostTelemetry)
            summary.merged.mergeFrom(point_tel[i]);
    }
    for (unsigned w = 0; w < threads; ++w)
        summary.workerBusyFraction[w] =
            wallSeconds > 0.0
                ? summary.workerBusySeconds[w] / wallSeconds
                : 0.0;
    summary.effectiveSpeedup =
        wallSeconds > 0.0 ? summary.pointSecondsSum / wallSeconds
                          : 0.0;
    double capacity = wallSeconds * threads;
    summary.serialSeconds =
        capacity > 0.0 ? (capacity - busy_total) / threads : 0.0;
    if (summary.serialSeconds < 0.0)
        summary.serialSeconds = 0.0;
    summary.serialShare =
        wallSeconds > 0.0 ? summary.serialSeconds / wallSeconds
                          : 0.0;
    summary.lockWaitSeconds =
        static_cast<double>(obs::TimedMutex::totalWaitNanos() -
                            lock_wait_before) /
        1e9;
    summary.lockWaitShare =
        capacity > 0.0 ? summary.lockWaitSeconds / capacity : 0.0;
    summary.locks = obs::TimedMutex::snapshotAll();

    // Retrieve the one captured simulated-time trace (if any) so
    // writeHostTelemetryFiles can show both time domains.
    if (opts.hostTelemetry && opts.captureSimTracePoint >= 0 &&
        static_cast<std::size_t>(opts.captureSimTracePoint) <
            num_points) {
        summary.merged.captureSimTrace(
            point_tel[static_cast<std::size_t>(
                          opts.captureSimTracePoint)]
                .capturedSimTrace());
    }

    wasInterrupted = g_shutdown.load(std::memory_order_relaxed);

    std::size_t failed_points = 0;
    std::size_t cached_points = 0;
    std::size_t skipped_points = 0;
    for (const SweepPointResult &r : results) {
        if (isFailed(r))
            ++failed_points;
        if (r.outcome == "cached")
            ++cached_points;
        if (r.outcome == "skipped")
            ++skipped_points;
    }

    if (opts.store != nullptr) {
        // Per-point records for completed points were appended by the
        // workers; the drain leftovers get theirs here so the store
        // accounts for every point of the grid.
        for (const SweepPointResult &r : results) {
            if (r.outcome == "skipped" && r.attempts == 0)
                appendPointRecord(*opts.store, opts.storeName, r,
                                  opts.pointAxes
                                      ? opts.pointAxes(r.index)
                                      : std::string());
        }
        obs::StoreRecord rec;
        rec.kind = "sweep";
        rec.bench = opts.storeName;
        rec.outcome = wasInterrupted      ? "interrupted"
                      : failed_points != 0 ? "error"
                                           : "ok";
        std::ostringstream payload;
        payload << "{\"points\":" << num_points
                << ",\"failed_points\":" << failed_points
                << ",\"cached_points\":" << cached_points
                << ",\"skipped_points\":" << skipped_points
                << ",\"threads\":" << threads << ",\"wall_seconds\":"
                << obs::jsonNumber(wallSeconds)
                << ",\"point_seconds_sum\":"
                << obs::jsonNumber(summary.pointSecondsSum) << "}";
        rec.json = payload.str();
        opts.store->append(std::move(rec));
        if (!opts.store->flush())
            warn("sweep '%s': result-store flush failed",
                 opts.storeName.c_str());
    }

    if (threads > 1 && summary.effectiveSpeedup < 1.0 &&
        num_points > 0 && !wasInterrupted && cached_points == 0 &&
        skipped_points == 0) {
        warn("parallel sweep ran %.2fx the serial estimate with %u "
             "threads (%zu points, %.3fs wall, %.3fs points-sum) — "
             "check hardware concurrency and serial sections",
             summary.effectiveSpeedup, threads, num_points,
             wallSeconds, summary.pointSecondsSum);
    }

    return results;
}

void
SweepHostSummary::writeJson(std::ostream &os) const
{
    os << "{\"schema\": \"sweep_host_telemetry_v1\""
       << ", \"enabled\": " << (enabled ? "true" : "false")
       << ", \"threads\": " << threads
       << ", \"wall_seconds\": " << obs::jsonNumber(wallSeconds)
       << ", \"point_seconds_sum\": "
       << obs::jsonNumber(pointSecondsSum)
       << ", \"effective_speedup\": "
       << obs::jsonNumber(effectiveSpeedup)
       << ", \"serial_seconds\": " << obs::jsonNumber(serialSeconds)
       << ", \"serial_share\": " << obs::jsonNumber(serialShare)
       << ", \"lock_wait_seconds\": "
       << obs::jsonNumber(lockWaitSeconds)
       << ", \"lock_wait_share\": "
       << obs::jsonNumber(lockWaitShare);
    os << ", \"workers\": [";
    for (unsigned w = 0; w < threads; ++w) {
        if (w)
            os << ",";
        os << "{\"worker\": " << w << ", \"busy_seconds\": "
           << obs::jsonNumber(workerBusySeconds[w])
           << ", \"busy_fraction\": "
           << obs::jsonNumber(workerBusyFraction[w])
           << ", \"points\": " << workerPoints[w] << "}";
    }
    os << "]";
    os << ", \"locks\": [";
    for (std::size_t i = 0; i < locks.size(); ++i) {
        if (i)
            os << ",";
        os << "{\"name\": \"" << obs::jsonEscape(locks[i].name)
           << "\", \"acquisitions\": " << locks[i].acquisitions
           << ", \"contended\": " << locks[i].contended
           << ", \"wait_seconds\": "
           << obs::jsonNumber(
                  static_cast<double>(locks[i].waitNanos) / 1e9)
           << "}";
    }
    os << "]";
    if (enabled)
        os << ", \"telemetry\": " << merged.dumpJsonString();
    os << ", \"points\": [";
    for (std::size_t i = 0; i < timelines.size(); ++i) {
        const SweepPointTimeline &tl = timelines[i];
        if (i)
            os << ",";
        os << "{\"index\": " << tl.index
           << ", \"worker\": " << tl.worker
           << ", \"queue_wait_seconds\": "
           << obs::jsonNumber(static_cast<double>(tl.pickedNs) /
                              1e9)
           << ", \"setup_seconds\": "
           << obs::jsonNumber(
                  static_cast<double>(tl.setupEndNs - tl.pickedNs) /
                  1e9)
           << ", \"run_seconds\": "
           << obs::jsonNumber(
                  static_cast<double>(tl.runEndNs - tl.setupEndNs) /
                  1e9)
           << ", \"teardown_seconds\": "
           << obs::jsonNumber(
                  static_cast<double>(tl.endNs - tl.runEndNs) / 1e9)
           << ", \"report_io_seconds\": "
           << obs::jsonNumber(static_cast<double>(tl.reportIoNs) /
                              1e9)
           << "}";
    }
    os << "]}";
}

bool
SweepRunner::writeHostTelemetryFiles(const std::string &json_path,
                                     const std::string &name) const
{
    {
        std::ofstream os(json_path);
        if (!os)
            return false;
        os << "{\"sweep\": \"" << obs::jsonEscape(name)
           << "\", \"host\": ";
        summary.writeJson(os);
        os << "}\n";
        if (!os)
            return false;
    }

    // Chrome trace: host-time worker tracks in pid 1 (wall ns
    // rendered as ticks, i.e. x1000 to ps so the ps->us writer
    // lands on microseconds), simulated-time tracks of the captured
    // point in pid 0.
    obs::TraceSink sink;
    for (const obs::TraceRecord &rec :
         summary.merged.capturedSimTrace())
        sink.pushRecord(rec);
    for (const SweepPointTimeline &tl : summary.timelines) {
        std::string track = "worker " + std::to_string(tl.worker);
        std::string point = "p" + std::to_string(tl.index);
        auto ticks = [](std::uint64_t ns) { return ns * 1000; };
        if (tl.setupEndNs > tl.pickedNs)
            sink.recordSlice(ticks(tl.pickedNs),
                             ticks(tl.setupEndNs - tl.pickedNs),
                             track, "sweep", point + ":setup", {},
                             obs::tracePidHost);
        sink.recordSlice(
            ticks(tl.setupEndNs), ticks(tl.runEndNs - tl.setupEndNs),
            track, "sweep", point + ":run",
            {{"queue_wait_ms",
              static_cast<double>(tl.pickedNs) / 1e6},
             {"report_io_ms",
              static_cast<double>(tl.reportIoNs) / 1e6}},
            obs::tracePidHost);
        if (tl.endNs > tl.runEndNs)
            sink.recordSlice(ticks(tl.runEndNs),
                             ticks(tl.endNs - tl.runEndNs), track,
                             "sweep", point + ":teardown", {},
                             obs::tracePidHost);
    }
    return sink.writeChromeTraceFile(json_path + ".trace.json");
}

void
SweepRunner::writeAggregateJson(
    std::ostream &os, const std::string &name,
    const std::vector<SweepPointResult> &results, unsigned threads,
    double wall_seconds, const SweepHostSummary *host)
{
    double serial_seconds = 0.0;
    std::size_t failed = 0;
    std::size_t cached = 0;
    std::size_t skipped = 0;
    for (const SweepPointResult &r : results) {
        serial_seconds += r.wallSeconds;
        if (isFailed(r))
            ++failed;
        if (r.outcome == "cached")
            ++cached;
        if (r.outcome == "skipped")
            ++skipped;
    }
    os << "{\"sweep\": \"" << obs::jsonEscape(name) << "\",\n";
    os << " \"points\": " << results.size() << ",\n";
    os << " \"failed_points\": " << failed << ",\n";
    os << " \"cached_points\": " << cached << ",\n";
    os << " \"skipped_points\": " << skipped << ",\n";
    {
        // Outcome histogram so downstream tooling can split the
        // deferred classes (skipped/cached) from real failures
        // without re-deriving the taxonomy.
        std::map<std::string, std::size_t> counts =
            outcomeCounts(results);
        os << " \"outcomes\": {";
        bool first = true;
        for (const auto &[outcome, count] : counts) {
            if (!first)
                os << ", ";
            first = false;
            os << "\"" << obs::jsonEscape(outcome)
               << "\": " << count;
        }
        os << "},\n";
    }
    os << " \"threads\": " << threads << ",\n";
    os << " \"wall_seconds\": " << obs::jsonNumber(wall_seconds)
       << ",\n";
    // Sum of per-point times: an estimate of the one-thread cost,
    // for speedup bookkeeping without rerunning serially.
    os << " \"point_seconds_sum\": "
       << obs::jsonNumber(serial_seconds) << ",\n";
    if (host != nullptr) {
        os << " \"host\": ";
        host->writeJson(os);
        os << ",\n";
    }
    os << " \"results\": [\n";
    for (std::size_t i = 0; i < results.size(); ++i) {
        const SweepPointResult &r = results[i];
        os << "  {\"index\": " << r.index << ", \"outcome\": \""
           << obs::jsonEscape(r.outcome)
           << "\", \"attempts\": " << r.attempts
           << ", \"wall_seconds\": "
           << obs::jsonNumber(r.wallSeconds);
        if (!r.error.empty())
            os << ", \"error\": \"" << obs::jsonEscape(r.error)
               << "\"";
        if (!r.payload.empty())
            os << ", \"point\": " << r.payload;
        os << "}" << (i + 1 < results.size() ? "," : "") << "\n";
    }
    os << " ]}\n";
}

void
SweepRunner::writeAggregateJson(
    std::ostream &os, const std::string &name,
    const std::vector<SweepPointResult> &results, unsigned threads,
    double wall_seconds)
{
    writeAggregateJson(os, name, results, threads, wall_seconds,
                       nullptr);
}

bool
SweepRunner::writeAggregateJsonFile(
    const std::string &path, const std::string &name,
    const std::vector<SweepPointResult> &results, unsigned threads,
    double wall_seconds, const SweepHostSummary *host)
{
    std::ofstream os(path);
    if (!os)
        return false;
    writeAggregateJson(os, name, results, threads, wall_seconds,
                       host);
    return static_cast<bool>(os);
}

} // namespace salam::drive

#include "sweep_runner.hh"

#include <atomic>
#include <chrono>
#include <exception>
#include <fstream>
#include <sstream>
#include <thread>

#include "obs/json.hh"
#include "obs/result_store.hh"
#include "obs/run_report.hh"
#include "sim/logging.hh"
#include "sim/sim_context.hh"

namespace salam::drive
{

unsigned
SweepRunner::resolveThreads(unsigned requested)
{
    if (requested != 0)
        return requested;
    unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : hw;
}

std::vector<SweepPointResult>
SweepRunner::run(std::size_t num_points, const PointFn &fn)
{
    using clock = std::chrono::steady_clock;

    std::vector<SweepPointResult> results(num_points);
    for (std::size_t i = 0; i < num_points; ++i)
        results[i].index = i;

    // Workers inherit the launching thread's debug-flag selection
    // (so --debug-flags applies to every point) but nothing else.
    const std::uint64_t flag_mask = SimContext::current().flagMask();

    unsigned threads = resolveThreads(opts.threads);
    if (num_points < threads)
        threads = static_cast<unsigned>(num_points ? num_points : 1);
    usedThreads = threads;

    summary = SweepHostSummary{};
    summary.enabled = opts.hostTelemetry;
    summary.threads = threads;
    summary.timelines.resize(num_points);
    summary.workerBusySeconds.assign(threads, 0.0);
    summary.workerBusyFraction.assign(threads, 0.0);
    summary.workerPoints.assign(threads, 0);

    // Per-point telemetry slots: each index is touched by exactly
    // one worker, and the joins publish them back to this thread.
    std::vector<obs::HostTelemetry> point_tel(
        opts.hostTelemetry ? num_points : 0);

    const std::uint64_t lock_wait_before =
        obs::TimedMutex::totalWaitNanos();
    const std::uint64_t sweep_start_ns = obs::hostNowNs();

    std::atomic<std::size_t> next{0};
    std::atomic<unsigned> worker_ids{0};
    auto worker = [&] {
        const unsigned wid =
            worker_ids.fetch_add(1, std::memory_order_relaxed);
        // All RunReport appends from this worker's points buffer
        // here and hit the filesystem once, when the worker drains —
        // the per-point lock-during-I/O bottleneck is gone.
        obs::ReportBuffer report_buffer;
        for (;;) {
            std::size_t idx =
                next.fetch_add(1, std::memory_order_relaxed);
            if (idx >= num_points)
                break;
            SweepPointResult &r = results[idx];
            SweepPointTimeline &tl = summary.timelines[idx];
            tl.index = idx;
            tl.worker = wid;
            tl.pickedNs = obs::hostNowNs() - sweep_start_ns;

            // A fresh context per point: flag state, sinks, and
            // termination hooks are isolated, and fatal() throws so
            // one bad point cannot take down the sweep.
            SimContext ctx;
            ctx.setFlagMask(flag_mask);
            ctx.setFatalMode(SimContext::FatalMode::Throw);
            ctx.setReportSink(&report_buffer);
            ctx.setSweepPointIndex(static_cast<long>(idx));
            ScopedSimContext bind(ctx);
            if (opts.hostTelemetry) {
                if (opts.captureSimTracePoint >= 0 &&
                    idx == static_cast<std::size_t>(
                               opts.captureSimTracePoint))
                    point_tel[idx].setSimTraceCapture(true);
                ctx.setHostTelemetry(&point_tel[idx]);
            }
            tl.setupEndNs = obs::hostNowNs() - sweep_start_ns;

            auto t0 = clock::now();
            try {
                r.payload = fn(idx);
                r.ok = true;
                r.outcome = "ok";
            } catch (const FatalError &e) {
                r.ok = false;
                r.outcome = e.outcome();
                r.error = e.what();
            } catch (const std::exception &e) {
                r.ok = false;
                r.outcome = "error";
                r.error = e.what();
            }
            r.wallSeconds =
                std::chrono::duration<double>(clock::now() - t0)
                    .count();
            tl.runEndNs = obs::hostNowNs() - sweep_start_ns;
            if (opts.hostTelemetry) {
                point_tel[idx].samplePeakRss();
                tl.reportIoNs =
                    point_tel[idx]
                        .phase(obs::HostPhase::ReportIo)
                        .selfNanos;
                ctx.setHostTelemetry(nullptr);
            }
            tl.endNs = obs::hostNowNs() - sweep_start_ns;
        }
        if (!report_buffer.flush())
            warn("sweep worker %u: report-buffer flush failed", wid);
    };

    auto sweep_t0 = clock::now();
    if (threads <= 1) {
        worker();
    } else {
        std::vector<std::thread> pool;
        pool.reserve(threads);
        for (unsigned t = 0; t < threads; ++t)
            pool.emplace_back(worker);
        for (std::thread &t : pool)
            t.join();
    }
    wallSeconds =
        std::chrono::duration<double>(clock::now() - sweep_t0)
            .count();

    // --- scaling-efficiency summary (workers have joined; all
    // per-point state is safely visible to this thread) ---
    summary.wallSeconds = wallSeconds;
    double busy_total = 0.0;
    for (std::size_t i = 0; i < num_points; ++i) {
        const SweepPointTimeline &tl = summary.timelines[i];
        double busy = static_cast<double>(tl.endNs - tl.pickedNs) /
                      1e9;
        summary.workerBusySeconds[tl.worker] += busy;
        summary.workerPoints[tl.worker] += 1;
        busy_total += busy;
        summary.pointSecondsSum += results[i].wallSeconds;
        if (opts.hostTelemetry)
            summary.merged.mergeFrom(point_tel[i]);
    }
    for (unsigned w = 0; w < threads; ++w)
        summary.workerBusyFraction[w] =
            wallSeconds > 0.0
                ? summary.workerBusySeconds[w] / wallSeconds
                : 0.0;
    summary.effectiveSpeedup =
        wallSeconds > 0.0 ? summary.pointSecondsSum / wallSeconds
                          : 0.0;
    double capacity = wallSeconds * threads;
    summary.serialSeconds =
        capacity > 0.0 ? (capacity - busy_total) / threads : 0.0;
    if (summary.serialSeconds < 0.0)
        summary.serialSeconds = 0.0;
    summary.serialShare =
        wallSeconds > 0.0 ? summary.serialSeconds / wallSeconds
                          : 0.0;
    summary.lockWaitSeconds =
        static_cast<double>(obs::TimedMutex::totalWaitNanos() -
                            lock_wait_before) /
        1e9;
    summary.lockWaitShare =
        capacity > 0.0 ? summary.lockWaitSeconds / capacity : 0.0;
    summary.locks = obs::TimedMutex::snapshotAll();

    // Retrieve the one captured simulated-time trace (if any) so
    // writeHostTelemetryFiles can show both time domains.
    if (opts.hostTelemetry && opts.captureSimTracePoint >= 0 &&
        static_cast<std::size_t>(opts.captureSimTracePoint) <
            num_points) {
        summary.merged.captureSimTrace(
            point_tel[static_cast<std::size_t>(
                          opts.captureSimTracePoint)]
                .capturedSimTrace());
    }

    if (opts.store != nullptr) {
        std::size_t failed = 0;
        for (std::size_t i = 0; i < num_points; ++i) {
            const SweepPointResult &r = results[i];
            if (!r.ok)
                ++failed;
            obs::StoreRecord rec;
            rec.kind = "sweep_point";
            rec.bench = opts.storeName;
            rec.outcome = r.outcome;
            rec.point = static_cast<long>(i);
            std::ostringstream payload;
            payload << "{\"index\":" << i << ",\"outcome\":\""
                    << obs::jsonEscape(r.outcome)
                    << "\",\"wall_seconds\":"
                    << obs::jsonNumber(r.wallSeconds);
            if (!r.error.empty())
                payload << ",\"error\":\"" << obs::jsonEscape(r.error)
                        << "\"";
            if (!r.payload.empty())
                payload << ",\"point\":" << r.payload;
            payload << "}";
            rec.json = payload.str();
            opts.store->append(std::move(rec));
        }
        obs::StoreRecord rec;
        rec.kind = "sweep";
        rec.bench = opts.storeName;
        rec.outcome = failed == 0 ? "ok" : "error";
        std::ostringstream payload;
        payload << "{\"points\":" << num_points
                << ",\"failed_points\":" << failed
                << ",\"threads\":" << threads << ",\"wall_seconds\":"
                << obs::jsonNumber(wallSeconds)
                << ",\"point_seconds_sum\":"
                << obs::jsonNumber(summary.pointSecondsSum) << "}";
        rec.json = payload.str();
        opts.store->append(std::move(rec));
        if (!opts.store->flush())
            warn("sweep '%s': result-store flush failed",
                 opts.storeName.c_str());
    }

    if (threads > 1 && summary.effectiveSpeedup < 1.0 &&
        num_points > 0) {
        warn("parallel sweep ran %.2fx the serial estimate with %u "
             "threads (%zu points, %.3fs wall, %.3fs points-sum) — "
             "check hardware concurrency and serial sections",
             summary.effectiveSpeedup, threads, num_points,
             wallSeconds, summary.pointSecondsSum);
    }

    return results;
}

void
SweepHostSummary::writeJson(std::ostream &os) const
{
    os << "{\"schema\": \"sweep_host_telemetry_v1\""
       << ", \"enabled\": " << (enabled ? "true" : "false")
       << ", \"threads\": " << threads
       << ", \"wall_seconds\": " << obs::jsonNumber(wallSeconds)
       << ", \"point_seconds_sum\": "
       << obs::jsonNumber(pointSecondsSum)
       << ", \"effective_speedup\": "
       << obs::jsonNumber(effectiveSpeedup)
       << ", \"serial_seconds\": " << obs::jsonNumber(serialSeconds)
       << ", \"serial_share\": " << obs::jsonNumber(serialShare)
       << ", \"lock_wait_seconds\": "
       << obs::jsonNumber(lockWaitSeconds)
       << ", \"lock_wait_share\": "
       << obs::jsonNumber(lockWaitShare);
    os << ", \"workers\": [";
    for (unsigned w = 0; w < threads; ++w) {
        if (w)
            os << ",";
        os << "{\"worker\": " << w << ", \"busy_seconds\": "
           << obs::jsonNumber(workerBusySeconds[w])
           << ", \"busy_fraction\": "
           << obs::jsonNumber(workerBusyFraction[w])
           << ", \"points\": " << workerPoints[w] << "}";
    }
    os << "]";
    os << ", \"locks\": [";
    for (std::size_t i = 0; i < locks.size(); ++i) {
        if (i)
            os << ",";
        os << "{\"name\": \"" << obs::jsonEscape(locks[i].name)
           << "\", \"acquisitions\": " << locks[i].acquisitions
           << ", \"contended\": " << locks[i].contended
           << ", \"wait_seconds\": "
           << obs::jsonNumber(
                  static_cast<double>(locks[i].waitNanos) / 1e9)
           << "}";
    }
    os << "]";
    if (enabled)
        os << ", \"telemetry\": " << merged.dumpJsonString();
    os << ", \"points\": [";
    for (std::size_t i = 0; i < timelines.size(); ++i) {
        const SweepPointTimeline &tl = timelines[i];
        if (i)
            os << ",";
        os << "{\"index\": " << tl.index
           << ", \"worker\": " << tl.worker
           << ", \"queue_wait_seconds\": "
           << obs::jsonNumber(static_cast<double>(tl.pickedNs) /
                              1e9)
           << ", \"setup_seconds\": "
           << obs::jsonNumber(
                  static_cast<double>(tl.setupEndNs - tl.pickedNs) /
                  1e9)
           << ", \"run_seconds\": "
           << obs::jsonNumber(
                  static_cast<double>(tl.runEndNs - tl.setupEndNs) /
                  1e9)
           << ", \"teardown_seconds\": "
           << obs::jsonNumber(
                  static_cast<double>(tl.endNs - tl.runEndNs) / 1e9)
           << ", \"report_io_seconds\": "
           << obs::jsonNumber(static_cast<double>(tl.reportIoNs) /
                              1e9)
           << "}";
    }
    os << "]}";
}

bool
SweepRunner::writeHostTelemetryFiles(const std::string &json_path,
                                     const std::string &name) const
{
    {
        std::ofstream os(json_path);
        if (!os)
            return false;
        os << "{\"sweep\": \"" << obs::jsonEscape(name)
           << "\", \"host\": ";
        summary.writeJson(os);
        os << "}\n";
        if (!os)
            return false;
    }

    // Chrome trace: host-time worker tracks in pid 1 (wall ns
    // rendered as ticks, i.e. x1000 to ps so the ps->us writer
    // lands on microseconds), simulated-time tracks of the captured
    // point in pid 0.
    obs::TraceSink sink;
    for (const obs::TraceRecord &rec :
         summary.merged.capturedSimTrace())
        sink.pushRecord(rec);
    for (const SweepPointTimeline &tl : summary.timelines) {
        std::string track = "worker " + std::to_string(tl.worker);
        std::string point = "p" + std::to_string(tl.index);
        auto ticks = [](std::uint64_t ns) { return ns * 1000; };
        if (tl.setupEndNs > tl.pickedNs)
            sink.recordSlice(ticks(tl.pickedNs),
                             ticks(tl.setupEndNs - tl.pickedNs),
                             track, "sweep", point + ":setup", {},
                             obs::tracePidHost);
        sink.recordSlice(
            ticks(tl.setupEndNs), ticks(tl.runEndNs - tl.setupEndNs),
            track, "sweep", point + ":run",
            {{"queue_wait_ms",
              static_cast<double>(tl.pickedNs) / 1e6},
             {"report_io_ms",
              static_cast<double>(tl.reportIoNs) / 1e6}},
            obs::tracePidHost);
        if (tl.endNs > tl.runEndNs)
            sink.recordSlice(ticks(tl.runEndNs),
                             ticks(tl.endNs - tl.runEndNs), track,
                             "sweep", point + ":teardown", {},
                             obs::tracePidHost);
    }
    return sink.writeChromeTraceFile(json_path + ".trace.json");
}

void
SweepRunner::writeAggregateJson(
    std::ostream &os, const std::string &name,
    const std::vector<SweepPointResult> &results, unsigned threads,
    double wall_seconds, const SweepHostSummary *host)
{
    double serial_seconds = 0.0;
    std::size_t failed = 0;
    for (const SweepPointResult &r : results) {
        serial_seconds += r.wallSeconds;
        if (!r.ok)
            ++failed;
    }
    os << "{\"sweep\": \"" << obs::jsonEscape(name) << "\",\n";
    os << " \"points\": " << results.size() << ",\n";
    os << " \"failed_points\": " << failed << ",\n";
    os << " \"threads\": " << threads << ",\n";
    os << " \"wall_seconds\": " << obs::jsonNumber(wall_seconds)
       << ",\n";
    // Sum of per-point times: an estimate of the one-thread cost,
    // for speedup bookkeeping without rerunning serially.
    os << " \"point_seconds_sum\": "
       << obs::jsonNumber(serial_seconds) << ",\n";
    if (host != nullptr) {
        os << " \"host\": ";
        host->writeJson(os);
        os << ",\n";
    }
    os << " \"results\": [\n";
    for (std::size_t i = 0; i < results.size(); ++i) {
        const SweepPointResult &r = results[i];
        os << "  {\"index\": " << r.index << ", \"outcome\": \""
           << obs::jsonEscape(r.outcome) << "\", \"wall_seconds\": "
           << obs::jsonNumber(r.wallSeconds);
        if (!r.error.empty())
            os << ", \"error\": \"" << obs::jsonEscape(r.error)
               << "\"";
        if (!r.payload.empty())
            os << ", \"point\": " << r.payload;
        os << "}" << (i + 1 < results.size() ? "," : "") << "\n";
    }
    os << " ]}\n";
}

void
SweepRunner::writeAggregateJson(
    std::ostream &os, const std::string &name,
    const std::vector<SweepPointResult> &results, unsigned threads,
    double wall_seconds)
{
    writeAggregateJson(os, name, results, threads, wall_seconds,
                       nullptr);
}

bool
SweepRunner::writeAggregateJsonFile(
    const std::string &path, const std::string &name,
    const std::vector<SweepPointResult> &results, unsigned threads,
    double wall_seconds, const SweepHostSummary *host)
{
    std::ofstream os(path);
    if (!os)
        return false;
    writeAggregateJson(os, name, results, threads, wall_seconds,
                       host);
    return static_cast<bool>(os);
}

} // namespace salam::drive

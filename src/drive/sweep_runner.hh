/**
 * @file
 * SweepRunner: thread-parallel design-space sweep execution.
 *
 * The paper's headline use case is rapid pre-RTL design-space
 * exploration; a sweep is dozens of independent simulations over a
 * configuration grid. SweepRunner shards the points across a worker
 * pool: each point runs under a fresh, thread-bound SimContext in
 * FatalMode::Throw, so a point that fatal()s (wrong result, deadlock)
 * is recorded as a failed point instead of killing the process, and
 * the debug-flag mask, trace sink, and termination hooks of one point
 * never leak into another.
 *
 * Results are returned in point order regardless of which worker
 * finished first, so serial and parallel sweeps produce bit-identical
 * output. The point function may also write into caller-owned
 * per-point slots (each index runs exactly once, and the joins
 * establish the happens-before edge back to the caller).
 */

#ifndef SALAM_DRIVE_SWEEP_RUNNER_HH
#define SALAM_DRIVE_SWEEP_RUNNER_HH

#include <cstddef>
#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

namespace salam::drive
{

/** Outcome of one sweep point. */
struct SweepPointResult
{
    std::size_t index = 0;

    bool ok = false;

    /** "ok", or the fatal classification ("fault", "deadlock"). */
    std::string outcome = "skipped";

    /** The fatal/exception message when !ok. */
    std::string error;

    /**
     * The point function's return value: a raw JSON fragment (or
     * empty) embedded verbatim in the aggregate dump.
     */
    std::string payload;

    /** Wall-clock seconds this point took on its worker. */
    double wallSeconds = 0.0;
};

/** Thread-pool executor for independent simulation points. */
class SweepRunner
{
  public:
    struct Options
    {
        /** Worker threads; 0 picks the hardware concurrency. */
        unsigned threads = 1;
    };

    SweepRunner() = default;

    explicit SweepRunner(Options options) : opts(options) {}

    /**
     * Evaluate one point. Runs on a worker thread under its own
     * SimContext (debug-flag mask inherited from the launching
     * thread, fatal() in throw mode). Returns the point's JSON
     * payload ("" for none).
     */
    using PointFn = std::function<std::string(std::size_t index)>;

    /**
     * Run @p num_points points; blocks until all complete. Results
     * are indexed by point, deterministically ordered.
     */
    std::vector<SweepPointResult> run(std::size_t num_points,
                                      const PointFn &fn);

    /** Threads the last run() actually used. */
    unsigned lastThreads() const { return usedThreads; }

    /** Wall-clock seconds of the last run(), all points included. */
    double lastWallSeconds() const { return wallSeconds; }

    /**
     * Write the aggregate sweep dump: sweep-level wall clock and
     * thread count plus every point's outcome, timing, and payload.
     */
    static void writeAggregateJson(
        std::ostream &os, const std::string &name,
        const std::vector<SweepPointResult> &results,
        unsigned threads, double wall_seconds);

    /** writeAggregateJson to @p path; false on I/O failure. */
    static bool writeAggregateJsonFile(
        const std::string &path, const std::string &name,
        const std::vector<SweepPointResult> &results,
        unsigned threads, double wall_seconds);

  private:
    Options opts;
    unsigned usedThreads = 0;
    double wallSeconds = 0.0;
};

} // namespace salam::drive

#endif // SALAM_DRIVE_SWEEP_RUNNER_HH

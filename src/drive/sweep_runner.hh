/**
 * @file
 * SweepRunner: thread-parallel design-space sweep execution.
 *
 * The paper's headline use case is rapid pre-RTL design-space
 * exploration; a sweep is dozens of independent simulations over a
 * configuration grid. SweepRunner shards the points across a worker
 * pool: each point runs under a fresh, thread-bound SimContext in
 * FatalMode::Throw, so a point that fatal()s (wrong result, deadlock)
 * is recorded as a failed point instead of killing the process, and
 * the debug-flag mask, trace sink, and termination hooks of one point
 * never leak into another.
 *
 * Results are returned in point order regardless of which worker
 * finished first, so serial and parallel sweeps produce bit-identical
 * output. The point function may also write into caller-owned
 * per-point slots (each index runs exactly once, and the joins
 * establish the happens-before edge back to the caller).
 *
 * Fault tolerance (a sweep is a durable job, not a fragile process):
 *  - per-point deadlines (Options::pointTimeoutSeconds) arm a host
 *    wall-clock limit on each attempt; a hung point is cancelled by
 *    the event-loop backstop or the deadline sentinel, classified
 *    outcome "timeout", and the pool moves on;
 *  - retry with exponential backoff (Options::pointRetries) re-runs
 *    failed points, recording one kind="attempt" store record per
 *    attempt so flakiness is auditable with `salam-query`;
 *  - checkpoint/resume (Options::resumePath) skips points whose
 *    config hash (or point index) already has an ok record in a
 *    ResultStore — outcome "cached" — so a killed sweep restarted
 *    with the same grid finishes only the remaining work;
 *  - graceful shutdown: SIGINT/SIGTERM drain in-flight points, flush
 *    buffers and the store, and the bench exits with
 *    interruptedExitCode; a second signal cancels in-flight points
 *    too (outcome "skipped", re-run by the next resume).
 */

#ifndef SALAM_DRIVE_SWEEP_RUNNER_HH
#define SALAM_DRIVE_SWEEP_RUNNER_HH

#include <cstddef>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "obs/host_telemetry.hh"

namespace salam::obs
{
class ResultStore;
} // namespace salam::obs

namespace salam::drive
{

/** Outcome of one sweep point. */
struct SweepPointResult
{
    std::size_t index = 0;

    bool ok = false;

    /**
     * Terminal classification of the point:
     *  - "ok":       ran and passed;
     *  - "cached":   resume hit — an ok record for this
     *                configuration already existed (ok == true);
     *  - "skipped":  never ran (shutdown drain) or cancelled
     *                in-flight by a shutdown escalation;
     *  - "timeout":  per-point deadline expired;
     *  - "fault" / "deadlock" / "error": the fatal or exception
     *    classification of the last attempt.
     */
    std::string outcome = "skipped";

    /** The fatal/exception message when !ok. */
    std::string error;

    /** Attempts actually executed (0 for cached/skipped points). */
    unsigned attempts = 0;

    /**
     * The point function's return value: a raw JSON fragment (or
     * empty) embedded verbatim in the aggregate dump.
     */
    std::string payload;

    /** Wall-clock seconds this point took on its worker. */
    double wallSeconds = 0.0;
};

/**
 * Host-time spans of one point's life on its worker, all in
 * nanoseconds relative to the sweep's start. Every point is enqueued
 * at sweep start, so pickedNs doubles as the point's queue wait.
 */
struct SweepPointTimeline
{
    std::size_t index = 0;
    unsigned worker = 0;
    std::uint64_t pickedNs = 0;   ///< dequeued (queue wait ends)
    std::uint64_t setupEndNs = 0; ///< SimContext bound, fn starting
    std::uint64_t runEndNs = 0;   ///< fn returned or threw
    std::uint64_t endNs = 0;      ///< result recorded, context gone
    /** ReportIo self time inside the point (file-append span). */
    std::uint64_t reportIoNs = 0;
};

/**
 * Scaling-efficiency summary of one sweep: where the pool's
 * wall-clock capacity (threads x wall) went. serialSeconds is the
 * pool-idle share — capacity no worker was running a point on —
 * which on a saturated machine is the serial-section cost.
 */
struct SweepHostSummary
{
    /** True when Options::hostTelemetry was set for the run. */
    bool enabled = false;

    unsigned threads = 0;
    double wallSeconds = 0.0;
    double pointSecondsSum = 0.0;

    /** pointSecondsSum / wallSeconds — the speedup actually won. */
    double effectiveSpeedup = 0.0;

    /** Pool-idle capacity: wall - sum(worker busy)/threads. */
    double serialSeconds = 0.0;
    double serialShare = 0.0;

    /** TimedMutex wait accrued during the run (process-wide delta). */
    double lockWaitSeconds = 0.0;
    /** lockWaitSeconds as a share of pool capacity. */
    double lockWaitShare = 0.0;

    /** Per-worker busy seconds (points executing on that worker). */
    std::vector<double> workerBusySeconds;
    /** Per-worker busy fraction of the sweep wall clock. */
    std::vector<double> workerBusyFraction;
    /** Per-worker point count. */
    std::vector<std::size_t> workerPoints;

    /** Per-point host-time spans, indexed by point. */
    std::vector<SweepPointTimeline> timelines;

    /** Phase/alloc totals merged over all points (telemetry runs). */
    obs::HostTelemetry merged;

    /** End-of-run TimedMutex snapshot (cumulative, process-wide). */
    std::vector<obs::TimedMutex::Stats> locks;

    /** Write the summary as one JSON object (no trailing newline). */
    void writeJson(std::ostream &os) const;
};

/** Thread-pool executor for independent simulation points. */
class SweepRunner
{
  public:
    struct Options
    {
        /** Worker threads; 0 picks the hardware concurrency. */
        unsigned threads = 1;

        /**
         * Attach a fresh HostTelemetry to every point's SimContext,
         * merge them into hostSummary().merged, and record lock
         * deltas. Timelines are recorded either way (four clock
         * reads per point).
         */
        bool hostTelemetry = false;

        /**
         * With hostTelemetry: the point whose simulated-time trace
         * is captured into its telemetry (so the host trace can
         * show both time domains). Negative disables capture.
         */
        long captureSimTracePoint = 0;

        /**
         * Destination result store (caller-owned, may be null).
         * Every point gets a kind="sweep_point" record and the run
         * gets one kind="sweep" summary record; the store is flushed
         * once at the end of run(). Point functions that build
         * RunReports also land kind="run" records here via their
         * bench wiring — this field only covers the sweep-level
         * bookkeeping.
         */
        obs::ResultStore *store = nullptr;

        /** Bench name stamped on store records. */
        std::string storeName;

        /**
         * Host wall-clock budget per attempt; 0 disables. An attempt
         * that exceeds it is terminated (outcome "timeout") by the
         * deadline sentinel the point function arms — or, for a
         * simulation whose tick is frozen, by the event loop's own
         * backstop — without stalling the rest of the pool.
         */
        double pointTimeoutSeconds = 0.0;

        /**
         * Extra attempts for a point whose attempt ends in a
         * retryable outcome (timeout, fault, deadlock, error); 0
         * disables retry. Each attempt is recorded as a
         * kind="attempt" store record when a store is attached.
         */
        unsigned pointRetries = 0;

        /**
         * First retry backoff; doubles per subsequent attempt,
         * capped at 5s. Shutdown interrupts the wait.
         */
        unsigned retryBackoffMs = 50;

        /**
         * Checkpoint/resume: a ResultStore path (directory or bare
         * JSONL) whose ok records mark points as already done. A
         * point whose pointHash (or, without a hash callback, whose
         * (storeName, index) pair) matches an ok kind="run" or
         * kind="sweep_point" record is skipped with outcome
         * "cached". Empty disables. A missing or empty store is a
         * warning, not an error — the first run of a resumable
         * sweep resumes from nothing.
         */
        std::string resumePath;

        /**
         * Config fingerprint of a point, matching the RunReport
         * configHash its point function would record (see
         * bench::runConfigHash). Enables exact resume matching
         * across grid reorderings; without it resume falls back to
         * (storeName, point index) identity.
         */
        std::function<std::uint64_t(std::size_t)> pointHash;

        /**
         * Flush the store after every completed point, so a killed
         * process (SIGKILL, OOM) loses at most the in-flight points
         * — the property chaos testing relies on. The benches turn
         * this on whenever a store is attached.
         */
        bool durable = false;

        /**
         * Axis values of a point as a compact JSON object (see
         * SweepSpec::axesJson), embedded as "axes" in the point's
         * kind="sweep_point" store record so query output is
         * self-describing. Empty/unset omits the field.
         */
        std::function<std::string(std::size_t)> pointAxes;
    };

    SweepRunner() = default;

    explicit SweepRunner(Options options) : opts(options) {}

    /**
     * Evaluate one point. Runs on a worker thread under its own
     * SimContext (debug-flag mask inherited from the launching
     * thread, fatal() in throw mode). Returns the point's JSON
     * payload ("" for none).
     */
    using PointFn = std::function<std::string(std::size_t index)>;

    /**
     * Run @p num_points points; blocks until all complete. Results
     * are indexed by point, deterministically ordered.
     */
    std::vector<SweepPointResult> run(std::size_t num_points,
                                      const PointFn &fn);

    /** Threads the last run() actually used. */
    unsigned lastThreads() const { return usedThreads; }

    /**
     * True when the last run() was drained by a shutdown request
     * (SIGINT/SIGTERM or requestShutdown()): some points carry
     * outcome "skipped" and the bench should exit with
     * interruptedExitCode so callers can tell "interrupted, resume
     * me" from success and from failure.
     */
    bool interrupted() const { return wasInterrupted; }

    /** Process exit code for an interrupted sweep (EX_TEMPFAIL). */
    static constexpr int interruptedExitCode = 75;

    /**
     * Programmatic equivalent of one SIGINT/SIGTERM: in-flight
     * points finish, queued points are skipped. Used by tests; the
     * signal handlers installed during run() call the same path.
     */
    static void requestShutdown();

    /**
     * Programmatic equivalent of a second signal: additionally
     * cancels in-flight points at the next event-loop limit check
     * (their outcome becomes "skipped").
     */
    static void requestCancel();

    /** True once a shutdown has been requested for the current run. */
    static bool shutdownRequested();

    /** Wall-clock seconds of the last run(), all points included. */
    double lastWallSeconds() const { return wallSeconds; }

    /** Host-time summary of the last run(). */
    const SweepHostSummary &hostSummary() const { return summary; }

    /**
     * Resolve a requested thread count: 0 means "use the hardware
     * concurrency" (min 1). The bench --sweep-threads flag feeds
     * through here.
     */
    static unsigned resolveThreads(unsigned requested);

    /**
     * Write the aggregate sweep dump: sweep-level wall clock and
     * thread count plus every point's outcome, timing, and payload.
     * With @p host, a "host" object carrying the scaling-efficiency
     * summary is included.
     */
    static void writeAggregateJson(
        std::ostream &os, const std::string &name,
        const std::vector<SweepPointResult> &results,
        unsigned threads, double wall_seconds,
        const SweepHostSummary *host);

    static void writeAggregateJson(
        std::ostream &os, const std::string &name,
        const std::vector<SweepPointResult> &results,
        unsigned threads, double wall_seconds);

    /** writeAggregateJson to @p path; false on I/O failure. */
    static bool writeAggregateJsonFile(
        const std::string &path, const std::string &name,
        const std::vector<SweepPointResult> &results,
        unsigned threads, double wall_seconds,
        const SweepHostSummary *host = nullptr);

    /**
     * Write the last run's host telemetry: the summary JSON to
     * @p json_path and a Chrome trace to "<json_path>.trace.json"
     * with per-worker host-time tracks (pid 1) beside any captured
     * simulated-time tracks (pid 0). False on I/O failure.
     */
    bool writeHostTelemetryFiles(const std::string &json_path,
                                 const std::string &name) const;

  private:
    Options opts;
    unsigned usedThreads = 0;
    double wallSeconds = 0.0;
    bool wasInterrupted = false;
    SweepHostSummary summary;
};

} // namespace salam::drive

#endif // SALAM_DRIVE_SWEEP_RUNNER_HH

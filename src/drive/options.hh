/**
 * @file
 * Table-driven command-line option parsing shared by the benches,
 * salam-query, and future tools.
 *
 * Every binary in the repo declares its options as a table of
 * {flag, value placeholder, help, apply-callback} rows and hands
 * argv to parseOptions(). One engine then provides consistent
 * "--opt value"/"--opt=value" handling, an unknown-argument listing,
 * a generated --help table, and parent-directory creation for
 * output-path values.
 *
 * The engine serves two policies through ParsePolicy:
 *  - benches: errors are fatal() (the process is about to run a long
 *    simulation — die loudly before it), --help prints the table and
 *    exits 0, and stray positional arguments are errors.
 *  - query-style tools: errors are returned as a message for the
 *    tool's own usage() text (soft, exit code 1), and positional
 *    arguments (store paths) are collected for the caller.
 */

#ifndef SALAM_DRIVE_OPTIONS_HH
#define SALAM_DRIVE_OPTIONS_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace salam::drive
{

/** One command-line option a tool accepts. */
struct Option
{
    /** Flag spelling, e.g. "--trace-out". */
    std::string name;

    /** Placeholder in help, e.g. "<file>"; empty = boolean flag. */
    std::string valueName;

    /** One-line help text. */
    std::string help;

    /** Applies the parsed value (flags receive ""). May fatal(). */
    std::function<void(const std::string &value)> apply;

    /**
     * The value names a file (or directory) the tool will write:
     * missing parent directories are created at parse time, so a
     * typo fails before a long simulation instead of after it.
     */
    bool outputPath = false;
};

using OptionList = std::vector<Option>;

/** Parse an unsigned integer option value; fatal()s on junk. */
std::uint64_t parseUint(const std::string &flag,
                        const std::string &value, int base = 10);

/** How parseOptions() reacts to the non-table parts of argv. */
struct ParsePolicy
{
    /** Program name for the --help header (argv[0] basename ok). */
    std::string program;

    /** First argv index to parse (2 for subcommand tools). */
    int firstArg = 1;

    /** Accept "--opt=value" in addition to "--opt value". */
    bool inlineValues = true;

    /**
     * Print the option table and std::exit(0) on --help. When
     * false, --help is an unknown option like any other.
     */
    bool handleHelp = true;

    /**
     * Errors (unknown option, missing value) call fatal() with the
     * known-option listing. When false they are returned in
     * ParseResult::error instead, for the tool's own usage() text.
     */
    bool fatalErrors = true;

    /**
     * Collect non-option arguments here instead of treating them as
     * errors. Null = positionals are unknown-argument errors.
     */
    std::vector<std::string> *positionals = nullptr;
};

/** Outcome of a soft-error parse (fatalErrors never returns !ok). */
struct ParseResult
{
    bool ok = true;
    std::string error;
};

/**
 * Parse argv against @p table under @p policy. Recognizes
 * "--opt value" (and "--opt=value" when the policy allows it);
 * output-path option values get their missing parent directories
 * created here, at parse time.
 */
ParseResult parseOptions(int argc, char **argv,
                         const OptionList &table,
                         const ParsePolicy &policy);

/** Print the --help table ("  --opt <v>   help") to stdout. */
void printOptionTable(const OptionList &table);

} // namespace salam::drive

#endif // SALAM_DRIVE_OPTIONS_HH

#include "simple_dram.hh"

#include <algorithm>

#include "inject/fault_injector.hh"

namespace salam::mem
{

SimpleDram::SimpleDram(Simulation &sim, std::string name,
                       Tick clock_period, const DramConfig &config)
    : ClockedObject(sim, std::move(name), clock_period), cfg(config),
      store(config.range.size(), 0), responsePort(*this),
      responseEvent([this] { trySendResponses(); },
                    this->name() + ".response",
                    Event::memoryResponsePri,
                    obs::HostPhase::MemoryModel)
{
    if (cfg.range.size() == 0)
        fatal("%s: DRAM range is empty", this->name().c_str());
    if (cfg.bytesPerTick <= 0.0)
        fatal("%s: DRAM bandwidth must be positive",
              this->name().c_str());
}

void
SimpleDram::backdoorWrite(std::uint64_t addr, const void *src,
                          std::size_t size)
{
    SALAM_ASSERT(cfg.range.contains(addr, static_cast<unsigned>(size)));
    std::memcpy(store.data() + (addr - cfg.range.start), src, size);
}

void
SimpleDram::backdoorRead(std::uint64_t addr, void *dst,
                         std::size_t size) const
{
    SALAM_ASSERT(cfg.range.contains(addr, static_cast<unsigned>(size)));
    std::memcpy(dst, store.data() + (addr - cfg.range.start), size);
}

void
SimpleDram::access(PacketPtr pkt)
{
    std::uint64_t offset = pkt->addr() - cfg.range.start;
    if (pkt->cmd() == MemCmd::ReadReq) {
        pkt->setData(store.data() + offset, pkt->size());
        ++reads;
    } else {
        std::memcpy(store.data() + offset, pkt->data(), pkt->size());
        ++writes;
    }
    bytes += pkt->size();
    pkt->makeResponse();
}

bool
SimpleDram::handleRequest(PacketPtr pkt)
{
    SALAM_ASSERT(cfg.range.contains(pkt->addr(), pkt->size()));
    inject::FaultInjector *fi = simulation().faultInjector();
    if (fi && fi->refuseRequest(name())) {
        pkt->serviceFlags |= svcQueued;
        eventQueue().schedule(
            clockEdge(Cycles(1)),
            [this] { responsePort.sendReqRetry(); },
            name() + ".injected_retry");
        return false;
    }
    access(pkt);

    // Timing: the transfer occupies the data bus for size/bandwidth
    // ticks starting when the bus frees up; the response arrives a
    // flat access latency after the transfer completes its slot.
    Tick now = curTick();
    Tick start = std::max(now, busFreeAt);
    if (start > now) {
        // Waited for the data bus. Kernel requests (those carrying
        // a DynInst context) queued behind contextless traffic —
        // DMA bursts, host accesses — get the more specific flag.
        pkt->serviceFlags |= svcQueued;
        if (pkt->context != nullptr && lastOccupantExternal)
            pkt->serviceFlags |= svcDmaWait;
    }
    lastOccupantExternal = pkt->context == nullptr;
    auto occupancy = static_cast<Tick>(
        static_cast<double>(pkt->size()) / cfg.bytesPerTick);
    busFreeAt = start + std::max<Tick>(occupancy, 1);
    Tick ready = busFreeAt + cfg.accessLatency;

    if (fi) {
        std::uint8_t *payload = pkt->isRead()
            ? pkt->data()
            : store.data() + (pkt->addr() - cfg.range.start);
        fi->corruptPayload(name(), pkt->addr(), payload, pkt->size());
        ready += fi->responseDelay(name());
        if (fi->dropResponse(name()))
            return true; // accepted, never answered
    }
    noteProgress();
    responseQueue.push_back(Pending{pkt, ready});
    // The front's readyAt can be in the past when it sat blocked
    // behind a refused send; never schedule before now.
    if (!responseEvent.scheduled())
        schedule(responseEvent,
                 std::max(responseQueue.front().readyAt, curTick()));
    return true;
}

void
SimpleDram::dumpDiagnostics(obs::JsonBuilder &json) const
{
    json.field("pending_responses",
               static_cast<std::uint64_t>(responseQueue.size()));
    json.field("bus_free_at", busFreeAt);
    json.field("reads", reads).field("writes", writes);
    json.beginArray("response_queue");
    for (const Pending &p : responseQueue) {
        json.beginObject()
            .field("addr", p.pkt->addr())
            .field("size", std::uint64_t(p.pkt->size()))
            .field("read", p.pkt->isRead())
            .field("ready_at", p.readyAt)
            .field("service_flags",
                   std::uint64_t(p.pkt->serviceFlags))
            .endObject();
    }
    json.endArray();
}

std::string
SimpleDram::stuckReason() const
{
    if (!responseQueue.empty() &&
        responseQueue.front().readyAt <= curTick()) {
        return std::to_string(responseQueue.size()) +
               " response(s) ready but the peer is not accepting";
    }
    return {};
}

void
SimpleDram::trySendResponses()
{
    while (!responseQueue.empty()) {
        Pending &front = responseQueue.front();
        if (front.readyAt > curTick()) {
            if (!responseEvent.scheduled())
                schedule(responseEvent, front.readyAt);
            return;
        }
        if (!responsePort.sendTimingResp(front.pkt))
            return;
        responseQueue.pop_front();
    }
}

} // namespace salam::mem

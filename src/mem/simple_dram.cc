#include "simple_dram.hh"

#include <algorithm>

namespace salam::mem
{

SimpleDram::SimpleDram(Simulation &sim, std::string name,
                       Tick clock_period, const DramConfig &config)
    : ClockedObject(sim, std::move(name), clock_period), cfg(config),
      store(config.range.size(), 0), responsePort(*this),
      responseEvent([this] { trySendResponses(); },
                    this->name() + ".response",
                    Event::memoryResponsePri)
{
    if (cfg.range.size() == 0)
        fatal("%s: DRAM range is empty", this->name().c_str());
    if (cfg.bytesPerTick <= 0.0)
        fatal("%s: DRAM bandwidth must be positive",
              this->name().c_str());
}

void
SimpleDram::backdoorWrite(std::uint64_t addr, const void *src,
                          std::size_t size)
{
    SALAM_ASSERT(cfg.range.contains(addr, static_cast<unsigned>(size)));
    std::memcpy(store.data() + (addr - cfg.range.start), src, size);
}

void
SimpleDram::backdoorRead(std::uint64_t addr, void *dst,
                         std::size_t size) const
{
    SALAM_ASSERT(cfg.range.contains(addr, static_cast<unsigned>(size)));
    std::memcpy(dst, store.data() + (addr - cfg.range.start), size);
}

void
SimpleDram::access(PacketPtr pkt)
{
    std::uint64_t offset = pkt->addr() - cfg.range.start;
    if (pkt->cmd() == MemCmd::ReadReq) {
        pkt->setData(store.data() + offset, pkt->size());
        ++reads;
    } else {
        std::memcpy(store.data() + offset, pkt->data(), pkt->size());
        ++writes;
    }
    bytes += pkt->size();
    pkt->makeResponse();
}

bool
SimpleDram::handleRequest(PacketPtr pkt)
{
    SALAM_ASSERT(cfg.range.contains(pkt->addr(), pkt->size()));
    access(pkt);

    // Timing: the transfer occupies the data bus for size/bandwidth
    // ticks starting when the bus frees up; the response arrives a
    // flat access latency after the transfer completes its slot.
    Tick now = curTick();
    Tick start = std::max(now, busFreeAt);
    if (start > now) {
        // Waited for the data bus. Kernel requests (those carrying
        // a DynInst context) queued behind contextless traffic —
        // DMA bursts, host accesses — get the more specific flag.
        pkt->serviceFlags |= svcQueued;
        if (pkt->context != nullptr && lastOccupantExternal)
            pkt->serviceFlags |= svcDmaWait;
    }
    lastOccupantExternal = pkt->context == nullptr;
    auto occupancy = static_cast<Tick>(
        static_cast<double>(pkt->size()) / cfg.bytesPerTick);
    busFreeAt = start + std::max<Tick>(occupancy, 1);
    Tick ready = busFreeAt + cfg.accessLatency;

    responseQueue.push_back(Pending{pkt, ready});
    if (!responseEvent.scheduled())
        schedule(responseEvent, responseQueue.front().readyAt);
    return true;
}

void
SimpleDram::trySendResponses()
{
    while (!responseQueue.empty()) {
        Pending &front = responseQueue.front();
        if (front.readyAt > curTick()) {
            if (!responseEvent.scheduled())
                schedule(responseEvent, front.readyAt);
            return;
        }
        if (!responsePort.sendTimingResp(front.pkt))
            return;
        responseQueue.pop_front();
    }
}

} // namespace salam::mem

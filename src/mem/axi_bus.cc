#include "axi_bus.hh"

#include <algorithm>

#include "inject/fault_injector.hh"

namespace salam::mem
{

AxiLikeBus::AxiLikeBus(Simulation &sim, std::string name,
                       Tick clock_period,
                       const InterconnectConfig &config)
    : ClockedObject(sim, std::move(name), clock_period), cfg(config),
      readReq("read",
              EventFunctionWrapper([this] { pumpRequests(readReq); },
                                   this->name() + ".ar",
                                   Event::defaultPri,
                                   obs::HostPhase::MemoryModel)),
      writeReq("write",
               EventFunctionWrapper(
                   [this] { pumpRequests(writeReq); },
                   this->name() + ".aw", Event::defaultPri,
                   obs::HostPhase::MemoryModel)),
      readResp("read",
               EventFunctionWrapper(
                   [this] { pumpResponses(readResp); },
                   this->name() + ".r", Event::memoryResponsePri,
                   obs::HostPhase::MemoryModel)),
      writeResp("write",
                EventFunctionWrapper(
                    [this] { pumpResponses(writeResp); },
                    this->name() + ".b", Event::memoryResponsePri,
                    obs::HostPhase::MemoryModel))
{
    std::string diag = cfg.validate();
    if (!diag.empty())
        fatal("%s: %s", this->name().c_str(), diag.c_str());
}

void
AxiLikeBus::init()
{
    StatRegistry &reg = simulation().stats();
    const std::string n = name();
    readQueueOccupancy = &reg.addHistogram(
        n + ".bus.read_queue_occupancy",
        "queued read transactions at each arrival", 0.0, 16.0, 8);
    writeQueueOccupancy = &reg.addHistogram(
        n + ".bus.write_queue_occupancy",
        "queued write transactions at each arrival", 0.0, 16.0, 8);
    reg.addFormula(n + ".bus.forwarded", "transactions granted",
                   [this] { return static_cast<double>(forwarded); });
    reg.addFormula(n + ".bus.arbitration_stalls",
                   "ready transactions held by a busy data channel",
                   [this] {
                       return static_cast<double>(arbitrationStalls);
                   });
    reg.addFormula(n + ".bus.credit_stalls",
                   "requests refused for exhausted credits",
                   [this] {
                       return static_cast<double>(creditStalls);
                   });
    reg.addFormula(n + ".bus.read_busy_cycles",
                   "extra beats serialized on the read data channel",
                   [this] {
                       return static_cast<double>(
                           readReq.busyCycles + readResp.busyCycles);
                   });
    reg.addFormula(n + ".bus.write_busy_cycles",
                   "extra beats serialized on the write data channel",
                   [this] {
                       return static_cast<double>(
                           writeReq.busyCycles +
                           writeResp.busyCycles);
                   });
}

ResponsePort &
AxiLikeBus::addRequester(const std::string &label)
{
    upstream.push_back(std::make_unique<UpstreamPort>(
        *this, static_cast<unsigned>(upstream.size()), label));
    readReq.pending.emplace_back();
    writeReq.pending.emplace_back();
    outstanding.push_back(0);
    creditRetryPending.push_back(false);
    wasCreditStalled.push_back(false);
    return *upstream.back();
}

void
AxiLikeBus::connectDevice(ResponsePort &device_port, AddrRange range)
{
    for (const AddrRange &existing : ranges) {
        if (existing.overlaps(range)) {
            fatal("%s: device range [0x%llx, 0x%llx) overlapping "
                  "existing range [0x%llx, 0x%llx)",
                  name().c_str(),
                  static_cast<unsigned long long>(range.start),
                  static_cast<unsigned long long>(range.end),
                  static_cast<unsigned long long>(existing.start),
                  static_cast<unsigned long long>(existing.end));
        }
    }
    downstream.push_back(std::make_unique<DownstreamPort>(
        *this, static_cast<unsigned>(downstream.size())));
    ranges.push_back(range);
    bindPorts(*downstream.back(), device_port);
}

void
AxiLikeBus::connectDefault(ResponsePort &device_port)
{
    if (defaultRoute >= 0)
        fatal("%s: default route already set", name().c_str());
    downstream.push_back(std::make_unique<DownstreamPort>(
        *this, static_cast<unsigned>(downstream.size())));
    // An empty range: never matched by lookup, reached via fallback.
    ranges.push_back(AddrRange{0, 0});
    defaultRoute = static_cast<int>(downstream.size()) - 1;
    bindPorts(*downstream.back(), device_port);
}

unsigned
AxiLikeBus::routeFor(PacketPtr pkt) const
{
    for (std::size_t i = 0; i < ranges.size(); ++i) {
        if (ranges[i].contains(pkt->addr(), pkt->size()))
            return static_cast<unsigned>(i);
    }
    if (defaultRoute >= 0)
        return static_cast<unsigned>(defaultRoute);
    panic("%s: no route for address 0x%llx", name().c_str(),
          static_cast<unsigned long long>(pkt->addr()));
}

unsigned
AxiLikeBus::beatsFor(unsigned bytes) const
{
    if (bytes == 0)
        return 1;
    return (bytes + cfg.busWidthBytes - 1) / cfg.busWidthBytes;
}

bool
AxiLikeBus::handleRequest(PacketPtr pkt, unsigned upstream_index)
{
    if (inject::FaultInjector *fi = simulation().faultInjector();
        fi && fi->refuseRequest(name())) {
        pkt->serviceFlags |= svcQueued;
        eventQueue().schedule(
            clockEdge(Cycles(1)),
            [this, upstream_index] {
                upstream[upstream_index]->sendReqRetry();
            },
            name() + ".injected_retry");
        return false;
    }
    // Outstanding-transaction credits, shared across both address
    // channels: a requester at its limit is refused outright and
    // retried when a response returns.
    if (cfg.maxOutstandingPerRequester != unlimitedCredits &&
        outstanding[upstream_index] >=
            cfg.maxOutstandingPerRequester) {
        ++creditStalls;
        creditRetryPending[upstream_index] = true;
        return false;
    }
    ++outstanding[upstream_index];
    if (wasCreditStalled[upstream_index]) {
        pkt->serviceFlags |= svcCreditStall;
        wasCreditStalled[upstream_index] = false;
    }

    unsigned target = routeFor(pkt);
    pkt->setBurst(beatsFor(pkt->size()), cfg.busWidthBytes);
    RequestChannel &ch = pkt->isRead() ? readReq : writeReq;
    Histogram *occupancy =
        pkt->isRead() ? readQueueOccupancy : writeQueueOccupancy;
    if (occupancy)
        occupancy->sample(static_cast<double>(ch.queued()));
    SALAM_TRACE(AxiBus,
                "%s addr=0x%llx up=%u -> down=%u beats=%u",
                ch.label, (unsigned long long)pkt->addr(),
                upstream_index, target, pkt->burstBeats);
    pkt->pushSenderState(std::make_unique<AxiState>(upstream_index));
    ch.pending[upstream_index].push_back(Routed{
        pkt, target, clockEdge(Cycles(cfg.forwardLatency))});
    if (!ch.event.scheduled()) {
        schedule(ch.event,
                 std::max(ch.pending[upstream_index].back().readyAt,
                          curTick()));
    }
    return true;
}

bool
AxiLikeBus::handleResponse(PacketPtr pkt)
{
    auto state = pkt->popSenderState();
    auto *axi_state = dynamic_cast<AxiState *>(state.get());
    SALAM_ASSERT(axi_state != nullptr);
    // Read data returns on R (multi-beat); write acks on B (single
    // beat regardless of the request's burst length).
    ResponseChannel &ch = pkt->isRead() ? readResp : writeResp;
    ch.pending.push_back(Routed{pkt, axi_state->upstream,
                                clockEdge(Cycles(cfg.responseLatency))});
    if (!ch.event.scheduled())
        schedule(ch.event,
                 std::max(ch.pending.front().readyAt, curTick()));
    return true;
}

void
AxiLikeBus::pumpRequests(RequestChannel &ch)
{
    const unsigned n = static_cast<unsigned>(upstream.size());
    for (;;) {
        Tick now = curTick();
        // Round-robin arbitration: the winner is the first upstream
        // after the cursor whose front transaction is ready.
        int winner = -1;
        bool any_pending = false;
        Tick next_ready = maxTick;
        for (unsigned k = 0; k < n; ++k) {
            unsigned idx = (ch.rrNext + k) % n;
            if (ch.pending[idx].empty())
                continue;
            any_pending = true;
            Tick ready = ch.pending[idx].front().readyAt;
            if (ready <= now) {
                if (winner < 0)
                    winner = static_cast<int>(idx);
            } else {
                next_ready = std::min(next_ready, ready);
            }
        }
        if (winner < 0) {
            if (any_pending && !ch.event.scheduled())
                schedule(ch.event, std::max(next_ready, now));
            return;
        }
        // Data-channel occupancy: a prior multi-beat burst still
        // holds the channel; every ready transaction waits for it.
        if (ch.busyUntil > now) {
            ++arbitrationStalls;
            for (unsigned idx = 0; idx < n; ++idx) {
                if (!ch.pending[idx].empty() &&
                    ch.pending[idx].front().readyAt <= now) {
                    ch.pending[idx].front().pkt->serviceFlags |=
                        svcBusArbitration;
                }
            }
            if (!ch.event.scheduled())
                schedule(ch.event, ch.busyUntil);
            return;
        }
        Routed &front = ch.pending[winner].front();
        // Read burst metadata before the send: downstream may
        // consume the packet (or respond reentrantly) inside it.
        unsigned extra_beats = front.pkt->burstBeats - 1;
        if (!downstream[front.portIndex]->sendTimingReq(front.pkt))
            return; // retry will pump again
        ch.busyUntil = now + extra_beats * clockPeriod();
        ch.busyCycles += extra_beats;
        ++ch.granted;
        ++forwarded;
        ch.pending[winner].pop_front();
        ch.rrNext = (static_cast<unsigned>(winner) + 1) % n;
    }
}

void
AxiLikeBus::pumpResponses(ResponseChannel &ch)
{
    while (!ch.pending.empty()) {
        Routed &front = ch.pending.front();
        Tick now = curTick();
        if (front.readyAt > now) {
            if (!ch.event.scheduled())
                schedule(ch.event, front.readyAt);
            return;
        }
        if (ch.busyUntil > now) {
            ++arbitrationStalls;
            front.pkt->serviceFlags |= svcBusArbitration;
            if (!ch.event.scheduled())
                schedule(ch.event, ch.busyUntil);
            return;
        }
        // R carries the read data (multi-beat); B is one beat. Read
        // the metadata before the send — the requester owns (and
        // typically deletes) the packet once the response lands.
        unsigned extra_beats =
            front.pkt->isRead() ? front.pkt->burstBeats - 1 : 0;
        unsigned up = front.portIndex;
        if (!upstream[up]->sendTimingResp(front.pkt))
            return;
        ch.busyUntil = now + extra_beats * clockPeriod();
        ch.busyCycles += extra_beats;
        ch.pending.pop_front();
        releaseCredit(up);
    }
}

void
AxiLikeBus::pumpAllRequests()
{
    pumpRequests(readReq);
    pumpRequests(writeReq);
}

void
AxiLikeBus::pumpAllResponses()
{
    pumpResponses(readResp);
    pumpResponses(writeResp);
}

void
AxiLikeBus::releaseCredit(unsigned upstream_index)
{
    SALAM_ASSERT(outstanding[upstream_index] > 0);
    --outstanding[upstream_index];
    if (creditRetryPending[upstream_index]) {
        creditRetryPending[upstream_index] = false;
        wasCreditStalled[upstream_index] = true;
        upstream[upstream_index]->sendReqRetry();
    }
}

void
AxiLikeBus::dumpDiagnostics(obs::JsonBuilder &json) const
{
    json.field("queued_reads",
               static_cast<std::uint64_t>(readReq.queued()));
    json.field("queued_writes",
               static_cast<std::uint64_t>(writeReq.queued()));
    json.field("queued_read_responses",
               static_cast<std::uint64_t>(readResp.pending.size()));
    json.field("queued_write_responses",
               static_cast<std::uint64_t>(writeResp.pending.size()));
    json.field("forwarded", forwarded);
    json.field("arbitration_stalls", arbitrationStalls);
    json.field("credit_stalls", creditStalls);
    json.beginArray("outstanding_per_requester");
    for (unsigned count : outstanding)
        json.value(static_cast<std::uint64_t>(count));
    json.endArray();
}

std::string
AxiLikeBus::stuckReason() const
{
    auto blocked_requests = [this](const RequestChannel &ch) {
        std::size_t n = 0;
        for (const auto &q : ch.pending) {
            for (const Routed &rp : q) {
                if (rp.readyAt <= curTick())
                    ++n;
            }
        }
        return n;
    };
    std::size_t reqs =
        blocked_requests(readReq) + blocked_requests(writeReq);
    if (reqs > 0 && readReq.busyUntil <= curTick() &&
        writeReq.busyUntil <= curTick()) {
        return std::to_string(reqs) +
               " request(s) blocked waiting for a downstream retry";
    }
    auto blocked_resps = [this](const ResponseChannel &ch) {
        return !ch.pending.empty() &&
               ch.pending.front().readyAt <= curTick() &&
               ch.busyUntil <= curTick();
    };
    if (blocked_resps(readResp) || blocked_resps(writeResp)) {
        return std::to_string(readResp.pending.size() +
                              writeResp.pending.size()) +
               " response(s) blocked waiting for an upstream retry";
    }
    return {};
}

} // namespace salam::mem

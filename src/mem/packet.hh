/**
 * @file
 * Packet: the unit of communication on memory ports.
 *
 * Modeled on gem5's Packet: a command, an address/size, a data
 * buffer, and a stack of sender states that interconnect layers push
 * on the way down and pop on the way back up to route responses.
 */

#ifndef SALAM_MEM_PACKET_HH
#define SALAM_MEM_PACKET_HH

#include <cstdint>
#include <cstring>
#include <memory>
#include <vector>

#include "sim/logging.hh"

namespace salam::mem
{

/** Packet commands. */
enum class MemCmd
{
    ReadReq,
    WriteReq,
    ReadResp,
    WriteResp,
};

inline bool
isRequest(MemCmd cmd)
{
    return cmd == MemCmd::ReadReq || cmd == MemCmd::WriteReq;
}

inline bool
isRead(MemCmd cmd)
{
    return cmd == MemCmd::ReadReq || cmd == MemCmd::ReadResp;
}

/** Base class for per-hop routing state carried by a packet. */
struct SenderState
{
    virtual ~SenderState() = default;
};

/**
 * Service annotations, set by memory components while a request is
 * serviced and carried back on the response. The original requester
 * (CommInterface) copies them to the issuing DynInst, where the
 * profiler turns them into execution-cause attributions. Flags
 * accumulate — a request can both miss in a cache and queue behind
 * the DRAM bus; the profiler applies a most-specific-wins precedence.
 */
enum ServiceFlags : unsigned
{
    /** Missed in a cache along the way (incl. MSHR coalescing). */
    svcCacheMiss = 1u << 0,

    /** Deferred at least one cycle by an SPM bank conflict. */
    svcBankConflict = 1u << 1,

    /** Waited in a queue (ports exhausted, bus busy, blocked send). */
    svcQueued = 1u << 2,

    /** Serialized behind external (e.g. DMA) traffic. */
    svcDmaWait = 1u << 3,

    /** Waited for a bus data channel occupied by another burst. */
    svcBusArbitration = 1u << 4,

    /** Refused at least once for exhausted outstanding credits. */
    svcCreditStall = 1u << 5,
};

/** A memory request/response in flight. */
class Packet
{
  public:
    Packet(MemCmd cmd, std::uint64_t addr, unsigned size)
        : _cmd(cmd), _addr(addr), _size(size)
    {
        if (mem::isRead(cmd) || cmd == MemCmd::WriteReq)
            _data.resize(size);
    }

    MemCmd cmd() const { return _cmd; }

    std::uint64_t addr() const { return _addr; }

    unsigned size() const { return _size; }

    bool isRead() const { return mem::isRead(_cmd); }

    bool isWrite() const { return !mem::isRead(_cmd); }

    bool isRequest() const { return mem::isRequest(_cmd); }

    bool isResponse() const { return !mem::isRequest(_cmd); }

    /** Turn this request into the corresponding response in place. */
    void
    makeResponse()
    {
        SALAM_ASSERT(isRequest());
        _cmd = (_cmd == MemCmd::ReadReq) ? MemCmd::ReadResp
                                         : MemCmd::WriteResp;
    }

    /**
     * Turn this request into an error response: the access could not
     * be decoded (out-of-range or misaligned MMIO). Read payloads are
     * zeroed so a requester that ignores the flag sees deterministic
     * data rather than stale buffer contents.
     */
    void
    makeErrorResponse()
    {
        makeResponse();
        error = true;
        if (!_data.empty())
            std::memset(_data.data(), 0, _data.size());
    }

    std::uint8_t *data() { return _data.data(); }

    const std::uint8_t *data() const { return _data.data(); }

    void
    setData(const void *src, unsigned bytes)
    {
        SALAM_ASSERT(bytes <= _size);
        std::memcpy(_data.data(), src, bytes);
    }

    void
    copyData(void *dst, unsigned bytes) const
    {
        SALAM_ASSERT(bytes <= _size);
        std::memcpy(dst, _data.data(), bytes);
    }

    /** Push routing state (interconnect request path). */
    void
    pushSenderState(std::unique_ptr<SenderState> state)
    {
        senderStack.push_back(std::move(state));
    }

    /** Pop routing state (interconnect response path). */
    std::unique_ptr<SenderState>
    popSenderState()
    {
        SALAM_ASSERT(!senderStack.empty());
        auto state = std::move(senderStack.back());
        senderStack.pop_back();
        return state;
    }

    bool hasSenderState() const { return !senderStack.empty(); }

    /**
     * Record the burst shape a finite-width data channel gave this
     * packet: ceil(size / beat width) beats of @p beat_bytes each.
     */
    void
    setBurst(unsigned beats, unsigned beat_bytes)
    {
        burstBeats = beats > 0 ? beats : 1;
        beatBytes = beat_bytes;
    }

    /** Opaque requester context (owned by the original requester). */
    void *context = nullptr;

    /**
     * Data-channel beats this packet occupies on a burst-capable
     * interconnect (1 on fabrics that move packets whole).
     */
    unsigned burstBeats = 1;

    /** Beat width that produced burstBeats; 0 = never burstified. */
    unsigned beatBytes = 0;

    /**
     * First/last packet of a logical burst train (e.g. the chunks of
     * one DMA transfer). Single-packet transactions are both.
     */
    bool firstBeat = true;
    bool lastBeat = true;

    /** Monotonic id for debugging/tracing. */
    std::uint64_t id = 0;

    /** ServiceFlags accumulated while this request was serviced. */
    unsigned serviceFlags = 0;

    /** Set on responses that failed to decode (bad address/size). */
    bool error = false;

  private:
    MemCmd _cmd;
    std::uint64_t _addr;
    unsigned _size;
    std::vector<std::uint8_t> _data;
    std::vector<std::unique_ptr<SenderState>> senderStack;
};

using PacketPtr = Packet *;

/** Inclusive-exclusive address range [start, end). */
struct AddrRange
{
    std::uint64_t start = 0;
    std::uint64_t end = 0;

    bool contains(std::uint64_t addr) const
    { return addr >= start && addr < end; }

    bool
    contains(std::uint64_t addr, unsigned size) const
    {
        return addr >= start && addr + size <= end;
    }

    std::uint64_t size() const { return end - start; }

    bool
    overlaps(const AddrRange &o) const
    {
        return start < o.end && o.start < end;
    }
};

} // namespace salam::mem

#endif // SALAM_MEM_PACKET_HH

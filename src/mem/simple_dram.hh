/**
 * @file
 * SimpleDram: a bandwidth- and latency-limited main memory.
 *
 * Models the system DRAM behind the global crossbar: a fixed access
 * latency (row activation + controller) plus a service rate of
 * bytesPerCycle, so large DMA bursts see realistic streaming
 * throughput while random accesses pay the flat latency.
 */

#ifndef SALAM_MEM_SIMPLE_DRAM_HH
#define SALAM_MEM_SIMPLE_DRAM_HH

#include <deque>
#include <vector>

#include "port.hh"
#include "sim/sim_object.hh"
#include "sim/simulation.hh"

namespace salam::mem
{

/** DRAM configuration. */
struct DramConfig
{
    AddrRange range;
    /** Flat access latency in ticks (controller + device). */
    Tick accessLatency = 40'000; // 40 ns
    /** Sustained bandwidth in bytes per tick. */
    double bytesPerTick = 0.0128; // 12.8 GB/s
};

/** The DRAM device: one response port, FCFS service. */
class SimpleDram : public ClockedObject
{
  public:
    SimpleDram(Simulation &sim, std::string name, Tick clock_period,
               const DramConfig &config);

    ResponsePort &port() { return responsePort; }

    const DramConfig &config() const { return cfg; }

    void backdoorWrite(std::uint64_t addr, const void *src,
                       std::size_t size);

    void backdoorRead(std::uint64_t addr, void *dst,
                      std::size_t size) const;

    std::uint64_t readCount() const { return reads; }

    std::uint64_t writeCount() const { return writes; }

    std::uint64_t bytesTransferred() const { return bytes; }

    void dumpDiagnostics(obs::JsonBuilder &json) const override;

    std::string stuckReason() const override;

  private:
    class DramPort : public ResponsePort
    {
      public:
        explicit DramPort(SimpleDram &owner)
            : ResponsePort(owner.name() + ".port"), owner(owner)
        {}

        bool
        recvTimingReq(PacketPtr pkt) override
        {
            return owner.handleRequest(pkt);
        }

        void recvRespRetry() override { owner.trySendResponses(); }

      private:
        SimpleDram &owner;
    };

    struct Pending
    {
        PacketPtr pkt;
        Tick readyAt;
    };

    bool handleRequest(PacketPtr pkt);

    void access(PacketPtr pkt);

    void trySendResponses();

    DramConfig cfg;
    std::vector<std::uint8_t> store;
    DramPort responsePort;
    std::deque<Pending> responseQueue;
    EventFunctionWrapper responseEvent;
    /** Earliest tick the data bus is free (bandwidth model). */
    Tick busFreeAt = 0;
    /** Whether the last bus occupant carried no requester context
     *  (DMA/host traffic) — classifies the next waiter's delay. */
    bool lastOccupantExternal = false;

    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    std::uint64_t bytes = 0;
};

} // namespace salam::mem

#endif // SALAM_MEM_SIMPLE_DRAM_HH

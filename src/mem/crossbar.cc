#include "crossbar.hh"

#include <algorithm>

#include "inject/fault_injector.hh"

namespace salam::mem
{

Crossbar::Crossbar(Simulation &sim, std::string name,
                   Tick clock_period, const CrossbarConfig &config)
    : ClockedObject(sim, std::move(name), clock_period), cfg(config),
      requestEvent([this] { pumpRequests(); },
                   this->name() + ".req", Event::defaultPri,
                   obs::HostPhase::MemoryModel),
      responseEvent([this] { pumpResponses(); },
                    this->name() + ".resp",
                    Event::memoryResponsePri,
                    obs::HostPhase::MemoryModel)
{
}

void
Crossbar::init()
{
    StatRegistry &reg = simulation().stats();
    const std::string n = name();
    requestQueueOccupancy = &reg.addHistogram(
        n + ".xbar.request_queue_occupancy",
        "queued requests at each arrival", 0.0, 16.0, 8);
    reg.addFormula(n + ".xbar.forwarded", "requests forwarded",
                   [this] { return static_cast<double>(forwarded); });
    reg.addFormula(n + ".xbar.throughput_stalls",
                   "cycles the per-cycle request limit was hit",
                   [this] {
                       return static_cast<double>(throughputStalls);
                   });
    reg.addFormula(n + ".xbar.credit_stalls",
                   "requests refused for exhausted credits",
                   [this] {
                       return static_cast<double>(creditStalls);
                   });
}

ResponsePort &
Crossbar::addRequester(const std::string &label)
{
    upstream.push_back(std::make_unique<UpstreamPort>(
        *this, static_cast<unsigned>(upstream.size()), label));
    outstanding.push_back(0);
    creditRetryPending.push_back(false);
    wasCreditStalled.push_back(false);
    return *upstream.back();
}

void
Crossbar::connectDevice(ResponsePort &device_port, AddrRange range)
{
    for (const AddrRange &existing : ranges) {
        if (existing.overlaps(range)) {
            fatal("%s: device range [0x%llx, 0x%llx) overlapping "
                  "existing range [0x%llx, 0x%llx)",
                  name().c_str(),
                  static_cast<unsigned long long>(range.start),
                  static_cast<unsigned long long>(range.end),
                  static_cast<unsigned long long>(existing.start),
                  static_cast<unsigned long long>(existing.end));
        }
    }
    downstream.push_back(std::make_unique<DownstreamPort>(
        *this, static_cast<unsigned>(downstream.size())));
    ranges.push_back(range);
    bindPorts(*downstream.back(), device_port);
}

void
Crossbar::connectDefault(ResponsePort &device_port)
{
    if (defaultRoute >= 0)
        fatal("%s: default route already set", name().c_str());
    downstream.push_back(std::make_unique<DownstreamPort>(
        *this, static_cast<unsigned>(downstream.size())));
    // An empty range: never matched by lookup, reached via fallback.
    ranges.push_back(AddrRange{0, 0});
    defaultRoute = static_cast<int>(downstream.size()) - 1;
    bindPorts(*downstream.back(), device_port);
}

unsigned
Crossbar::routeFor(PacketPtr pkt) const
{
    for (std::size_t i = 0; i < ranges.size(); ++i) {
        if (ranges[i].contains(pkt->addr(), pkt->size()))
            return static_cast<unsigned>(i);
    }
    if (defaultRoute >= 0)
        return static_cast<unsigned>(defaultRoute);
    panic("%s: no route for address 0x%llx", name().c_str(),
          static_cast<unsigned long long>(pkt->addr()));
}

bool
Crossbar::handleRequest(PacketPtr pkt, unsigned upstream_index)
{
    if (inject::FaultInjector *fi = simulation().faultInjector();
        fi && fi->refuseRequest(name())) {
        pkt->serviceFlags |= svcQueued;
        eventQueue().schedule(
            clockEdge(Cycles(1)),
            [this, upstream_index] {
                upstream[upstream_index]->sendReqRetry();
            },
            name() + ".injected_retry");
        return false;
    }
    // Per-requester outstanding-transaction credits: at the limit,
    // refuse and owe a retry for when a response frees a credit.
    if (cfg.maxOutstandingPerRequester != unlimitedCredits &&
        outstanding[upstream_index] >=
            cfg.maxOutstandingPerRequester) {
        ++creditStalls;
        creditRetryPending[upstream_index] = true;
        return false;
    }
    ++outstanding[upstream_index];
    if (wasCreditStalled[upstream_index]) {
        pkt->serviceFlags |= svcCreditStall;
        wasCreditStalled[upstream_index] = false;
    }
    unsigned target = routeFor(pkt);
    if (requestQueueOccupancy) {
        requestQueueOccupancy->sample(
            static_cast<double>(requestQueue.size()));
    }
    SALAM_TRACE(Crossbar, "route addr=0x%llx up=%u -> down=%u",
                (unsigned long long)pkt->addr(), upstream_index,
                target);
    pkt->pushSenderState(std::make_unique<XbarState>(upstream_index));
    requestQueue.push_back(RoutedPacket{
        pkt, target, clockEdge(Cycles(cfg.forwardLatency))});
    // The front's readyAt can be in the past when it sat blocked
    // behind a refused send; never schedule before now.
    if (!requestEvent.scheduled())
        schedule(requestEvent,
                 std::max(requestQueue.front().readyAt, curTick()));
    return true;
}

bool
Crossbar::handleResponse(PacketPtr pkt, unsigned downstream_index)
{
    (void)downstream_index;
    auto state = pkt->popSenderState();
    auto *xbar_state = dynamic_cast<XbarState *>(state.get());
    SALAM_ASSERT(xbar_state != nullptr);
    responseQueue.push_back(RoutedPacket{
        pkt, xbar_state->upstream,
        clockEdge(Cycles(cfg.responseLatency))});
    if (!responseEvent.scheduled())
        schedule(responseEvent,
                 std::max(responseQueue.front().readyAt, curTick()));
    return true;
}

void
Crossbar::pumpRequests()
{
    while (!requestQueue.empty()) {
        RoutedPacket &front = requestQueue.front();
        if (front.readyAt > curTick()) {
            if (!requestEvent.scheduled())
                schedule(requestEvent, front.readyAt);
            return;
        }
        // Per-cycle throughput limit.
        if (cfg.requestsPerCycle > 0) {
            Tick cycle = curTick() / clockPeriod();
            if (cycle != lastRequestCycle) {
                lastRequestCycle = cycle;
                requestsThisCycle = 0;
            }
            if (requestsThisCycle >= cfg.requestsPerCycle) {
                ++throughputStalls;
                if (!requestEvent.scheduled())
                    schedule(requestEvent, clockEdge(Cycles(1)));
                return;
            }
        }
        if (!downstream[front.portIndex]->sendTimingReq(front.pkt))
            return; // retry will pump again
        ++requestsThisCycle;
        ++forwarded;
        requestQueue.pop_front();
    }
}

void
Crossbar::dumpDiagnostics(obs::JsonBuilder &json) const
{
    json.field("queued_requests",
               static_cast<std::uint64_t>(requestQueue.size()));
    json.field("queued_responses",
               static_cast<std::uint64_t>(responseQueue.size()));
    json.field("forwarded", forwarded);
    json.field("credit_stalls", creditStalls);
    json.beginArray("outstanding_per_requester");
    for (unsigned count : outstanding)
        json.value(static_cast<std::uint64_t>(count));
    json.endArray();
    auto emit = [&json](const char *key,
                        const std::deque<RoutedPacket> &q) {
        json.beginArray(key);
        for (const RoutedPacket &rp : q) {
            json.beginObject()
                .field("addr", rp.pkt->addr())
                .field("size", std::uint64_t(rp.pkt->size()))
                .field("read", rp.pkt->isRead())
                .field("port", std::uint64_t(rp.portIndex))
                .field("ready_at", rp.readyAt)
                .field("service_flags",
                       std::uint64_t(rp.pkt->serviceFlags))
                .endObject();
        }
        json.endArray();
    };
    emit("request_queue", requestQueue);
    emit("response_queue", responseQueue);
}

std::string
Crossbar::stuckReason() const
{
    if (!requestQueue.empty() &&
        requestQueue.front().readyAt <= curTick()) {
        return std::to_string(requestQueue.size()) +
               " request(s) blocked waiting for a downstream retry";
    }
    if (!responseQueue.empty() &&
        responseQueue.front().readyAt <= curTick()) {
        return std::to_string(responseQueue.size()) +
               " response(s) blocked waiting for an upstream retry";
    }
    return {};
}

void
Crossbar::pumpResponses()
{
    while (!responseQueue.empty()) {
        RoutedPacket &front = responseQueue.front();
        if (front.readyAt > curTick()) {
            if (!responseEvent.scheduled())
                schedule(responseEvent, front.readyAt);
            return;
        }
        if (!upstream[front.portIndex]->sendTimingResp(front.pkt))
            return;
        unsigned up = front.portIndex;
        responseQueue.pop_front();
        releaseCredit(up);
    }
}

void
Crossbar::releaseCredit(unsigned upstream_index)
{
    SALAM_ASSERT(outstanding[upstream_index] > 0);
    --outstanding[upstream_index];
    if (creditRetryPending[upstream_index]) {
        creditRetryPending[upstream_index] = false;
        wasCreditStalled[upstream_index] = true;
        upstream[upstream_index]->sendReqRetry();
    }
}

} // namespace salam::mem

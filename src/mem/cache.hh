/**
 * @file
 * Cache: a set-associative, write-back, write-allocate timing cache.
 *
 * Used as accelerator-private L1s and as the shared last-level cache
 * between accelerator clusters and DRAM. Misses allocate MSHRs and
 * fetch full blocks from the memory side; dirty victims are written
 * back. LRU replacement.
 */

#ifndef SALAM_MEM_CACHE_HH
#define SALAM_MEM_CACHE_HH

#include <cstdint>
#include <deque>
#include <list>
#include <map>
#include <vector>

#include "port.hh"
#include "sim/sim_object.hh"
#include "sim/simulation.hh"

namespace salam::mem
{

/** Cache geometry and timing. */
struct CacheConfig
{
    std::uint64_t sizeBytes = 4096;
    unsigned blockBytes = 32;
    unsigned associativity = 4;
    unsigned hitLatencyCycles = 1;
    unsigned maxMshrs = 8;
};

/** The cache device. */
class Cache : public ClockedObject
{
  public:
    Cache(Simulation &sim, std::string name, Tick clock_period,
          const CacheConfig &config);

    /** Registers hit/miss/MSHR statistics with the simulation. */
    void init() override;

    /** Port facing the requester (accelerator/cluster). */
    ResponsePort &cpuSide() { return cpuPort; }

    /** Port facing memory; bind to a crossbar or DRAM. */
    RequestPort &memSide() { return memPort; }

    const CacheConfig &config() const { return cfg; }

    std::uint64_t hitCount() const { return hits; }

    std::uint64_t missCount() const { return misses; }

    std::uint64_t writebackCount() const { return writebacks; }

    double
    missRate() const
    {
        std::uint64_t total = hits + misses;
        return total == 0 ? 0.0
                          : static_cast<double>(misses) /
                                static_cast<double>(total);
    }

    void dumpDiagnostics(obs::JsonBuilder &json) const override;

    std::string stuckReason() const override;

  private:
    class CpuSidePort : public ResponsePort
    {
      public:
        explicit CpuSidePort(Cache &owner)
            : ResponsePort(owner.name() + ".cpu_side"), owner(owner)
        {}

        bool
        recvTimingReq(PacketPtr pkt) override
        {
            return owner.handleRequest(pkt);
        }

        void recvRespRetry() override { owner.trySendResponses(); }

      private:
        Cache &owner;
    };

    class MemSidePort : public RequestPort
    {
      public:
        explicit MemSidePort(Cache &owner)
            : RequestPort(owner.name() + ".mem_side"), owner(owner)
        {}

        bool
        recvTimingResp(PacketPtr pkt) override
        {
            return owner.handleFill(pkt);
        }

        void recvReqRetry() override { owner.pumpMemSide(); }

      private:
        Cache &owner;
    };

    struct Block
    {
        bool valid = false;
        bool dirty = false;
        std::uint64_t tag = 0;
        std::uint64_t lastUse = 0;
        std::vector<std::uint8_t> data;
    };

    struct Mshr
    {
        std::uint64_t blockAddr = 0;
        std::vector<PacketPtr> targets;
        bool fillIssued = false;
    };

    struct PendingResponse
    {
        PacketPtr pkt;
        Tick readyAt;
    };

    bool handleRequest(PacketPtr pkt);

    bool handleFill(PacketPtr pkt);

    void pumpMemSide();

    void trySendResponses();

    void respondAfter(PacketPtr pkt, unsigned cycles);

    std::uint64_t blockAddrOf(std::uint64_t addr) const
    { return addr / cfg.blockBytes * cfg.blockBytes; }

    unsigned setOf(std::uint64_t block_addr) const;

    std::uint64_t tagOf(std::uint64_t block_addr) const;

    Block *findBlock(std::uint64_t block_addr);

    /** Pick an LRU victim way in @p set. */
    Block &victimIn(unsigned set);

    /** Satisfy @p pkt from @p block (data copy + dirty marking). */
    void accessBlock(Block &block, PacketPtr pkt);

    CacheConfig cfg;
    unsigned numSets;
    std::vector<std::vector<Block>> sets;
    CpuSidePort cpuPort;
    MemSidePort memPort;
    std::map<std::uint64_t, Mshr> mshrs;
    std::deque<PacketPtr> memSideQueue;
    std::deque<PendingResponse> responseQueue;
    EventFunctionWrapper responseEvent;
    std::uint64_t useCounter = 0;

    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t writebacks = 0;
    std::uint64_t mshrFullRejects = 0;

    /** Sampled per request once init() has registered it. */
    Histogram *mshrOccupancy = nullptr;
};

} // namespace salam::mem

#endif // SALAM_MEM_CACHE_HH

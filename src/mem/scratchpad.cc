#include "scratchpad.hh"

#include <algorithm>
#include <set>

#include "inject/fault_injector.hh"

namespace salam::mem
{

Scratchpad::Scratchpad(Simulation &sim, std::string name,
                       Tick clock_period,
                       const ScratchpadConfig &config)
    : ClockedObject(sim, std::move(name), clock_period), cfg(config),
      store(config.range.size(), 0),
      serviceEvent([this] { serviceCycle(); },
                   this->name() + ".service", Event::defaultPri,
                   obs::HostPhase::MemoryModel),
      responseEvent([this] { trySendResponses(); },
                    this->name() + ".response",
                    Event::memoryResponsePri,
                    obs::HostPhase::MemoryModel)
{
    if (cfg.range.size() == 0)
        fatal("%s: scratchpad range is empty", this->name().c_str());
    if (cfg.numPorts == 0 || cfg.readPorts == 0 || cfg.writePorts == 0)
        fatal("%s: scratchpad needs at least one port",
              this->name().c_str());
    for (unsigned i = 0; i < cfg.numPorts; ++i)
        ports.push_back(std::make_unique<SpmPort>(*this, i));
}

void
Scratchpad::init()
{
    StatRegistry &reg = simulation().stats();
    const std::string n = name();
    queueOccupancy = &reg.addHistogram(
        n + ".spm.queue_occupancy",
        "pending requests at the start of each service cycle", 0.0,
        static_cast<double>(
            4 * (cfg.readPorts + cfg.writePorts)),
        8);
    reg.addFormula(n + ".spm.reads", "read accesses serviced",
                   [this] { return static_cast<double>(reads); });
    reg.addFormula(n + ".spm.writes", "write accesses serviced",
                   [this] { return static_cast<double>(writes); });
    reg.addFormula(n + ".spm.active_cycles",
                   "cycles with at least one request pending",
                   [this] {
                       return static_cast<double>(activeCycles);
                   });
    reg.addFormula(n + ".spm.bank_conflicts",
                   "service attempts skipped on a busy bank",
                   [this] {
                       return static_cast<double>(bankConflicts);
                   });
    reg.addFormula(n + ".spm.port_stalls",
                   "service attempts skipped with ports exhausted",
                   [this] {
                       return static_cast<double>(portStalls);
                   });
    sink = simulation().traceSink();
}

ResponsePort &
Scratchpad::port(unsigned i)
{
    if (i >= ports.size())
        fatal("%s: no port %u", name().c_str(), i);
    return *ports[i];
}

void
Scratchpad::backdoorWrite(std::uint64_t addr, const void *src,
                          std::size_t size)
{
    SALAM_ASSERT(cfg.range.contains(addr, static_cast<unsigned>(size)));
    std::memcpy(store.data() + (addr - cfg.range.start), src, size);
}

void
Scratchpad::backdoorRead(std::uint64_t addr, void *dst,
                         std::size_t size) const
{
    SALAM_ASSERT(cfg.range.contains(addr, static_cast<unsigned>(size)));
    std::memcpy(dst, store.data() + (addr - cfg.range.start), size);
}

unsigned
Scratchpad::bankOf(std::uint64_t addr) const
{
    std::uint64_t word = (addr - cfg.range.start) / cfg.wordBytes;
    return static_cast<unsigned>(word % cfg.banks);
}

bool
Scratchpad::handleRequest(PacketPtr pkt, unsigned source_port)
{
    SALAM_ASSERT(cfg.range.contains(pkt->addr(), pkt->size()));
    if (inject::FaultInjector *fi = simulation().faultInjector();
        fi && fi->refuseRequest(name())) {
        pkt->serviceFlags |= svcQueued;
        eventQueue().schedule(
            clockEdge(Cycles(1)),
            [this, source_port] {
                ports[source_port]->sendReqRetry();
            },
            name() + ".injected_retry");
        return false;
    }
    requestQueue.push_back(QueuedAccess{pkt, source_port});
    scheduleService();
    return true;
}

void
Scratchpad::scheduleService()
{
    if (serviceScheduled || requestQueue.empty())
        return;
    serviceScheduled = true;
    // At most one service pass per SPM cycle: if this cycle already
    // had its pass, wait for the next edge.
    Tick edge = clockEdge();
    if (lastServiceTick != maxTick && edge <= lastServiceTick)
        edge = lastServiceTick + clockPeriod();
    schedule(serviceEvent, edge);
}

void
Scratchpad::access(PacketPtr pkt)
{
    std::uint64_t offset = pkt->addr() - cfg.range.start;
    if (pkt->cmd() == MemCmd::ReadReq) {
        pkt->setData(store.data() + offset, pkt->size());
        ++reads;
    } else {
        std::memcpy(store.data() + offset, pkt->data(), pkt->size());
        ++writes;
    }
    pkt->makeResponse();
}

void
Scratchpad::serviceCycle()
{
    serviceScheduled = false;
    lastServiceTick = curTick();
    if (requestQueue.empty())
        return;

    ++activeCycles;
    if (queueOccupancy) {
        queueOccupancy->sample(
            static_cast<double>(requestQueue.size()));
    }
    if (sink) {
        sink->recordCounter(
            curTick(), name(), "queue",
            {{"pending", static_cast<double>(requestQueue.size())}});
    }
    unsigned reads_left = cfg.readPorts;
    unsigned writes_left = cfg.writePorts;
    std::set<unsigned> busy_banks;

    Tick ready = clockEdge(Cycles(cfg.latencyCycles));
    // In-order service: scan the queue, issuing accesses that fit
    // this cycle's port and bank budget. Accesses blocked by a busy
    // bank do not block younger accesses to other banks (banked SRAM
    // behaviour), but per-command ordering is preserved by the scan.
    for (auto it = requestQueue.begin(); it != requestQueue.end();) {
        PacketPtr pkt = it->pkt;
        unsigned bank = bankOf(pkt->addr());
        bool is_read = pkt->cmd() == MemCmd::ReadReq;
        unsigned &budget = is_read ? reads_left : writes_left;
        if (budget == 0 || busy_banks.count(bank)) {
            if (budget == 0) {
                ++portStalls;
                pkt->serviceFlags |= svcQueued;
            } else {
                ++bankConflicts;
                pkt->serviceFlags |= svcBankConflict;
                SALAM_TRACE(Scratchpad,
                            "bank conflict: %s addr=0x%llx bank=%u",
                            is_read ? "read" : "write",
                            (unsigned long long)pkt->addr(), bank);
            }
            ++it;
            continue;
        }
        SALAM_TRACE(Scratchpad, "%s addr=0x%llx size=%u bank=%u",
                    is_read ? "read" : "write",
                    (unsigned long long)pkt->addr(), pkt->size(),
                    bank);
        --budget;
        if (cfg.banks > 1)
            busy_banks.insert(bank);
        access(pkt);
        Tick pkt_ready = ready;
        bool dropped = false;
        if (inject::FaultInjector *fi = simulation().faultInjector()) {
            // Corrupt what the requester will observe: the response
            // payload for reads, the stored bytes for writes.
            std::uint8_t *payload = pkt->isRead()
                ? pkt->data()
                : store.data() + (pkt->addr() - cfg.range.start);
            fi->corruptPayload(name(), pkt->addr(), payload,
                               pkt->size());
            pkt_ready += fi->responseDelay(name());
            dropped = fi->dropResponse(name());
        }
        if (!dropped) {
            noteProgress();
            responseQueue.push_back(
                PendingResponse{pkt, it->sourcePort, pkt_ready});
        }
        it = requestQueue.erase(it);
        if (reads_left == 0 && writes_left == 0)
            break;
    }

    // The front's readyAt can be in the past when it sat blocked
    // behind a refused send; never schedule before now.
    if (!responseQueue.empty())
        reschedule(responseEvent,
                   std::max(responseQueue.front().readyAt,
                            curTick()));
    scheduleService();
}

void
Scratchpad::dumpDiagnostics(obs::JsonBuilder &json) const
{
    json.field("pending_requests",
               static_cast<std::uint64_t>(requestQueue.size()));
    json.field("pending_responses",
               static_cast<std::uint64_t>(responseQueue.size()));
    json.field("reads", reads).field("writes", writes);
    json.beginArray("request_queue");
    for (const QueuedAccess &qa : requestQueue) {
        json.beginObject()
            .field("addr", qa.pkt->addr())
            .field("size", std::uint64_t(qa.pkt->size()))
            .field("read", qa.pkt->isRead())
            .field("service_flags",
                   std::uint64_t(qa.pkt->serviceFlags))
            .endObject();
    }
    json.endArray();
    json.beginArray("response_queue");
    for (const PendingResponse &pr : responseQueue) {
        json.beginObject()
            .field("addr", pr.pkt->addr())
            .field("ready_at", pr.readyAt)
            .field("port", std::uint64_t(pr.sourcePort))
            .endObject();
    }
    json.endArray();
}

std::string
Scratchpad::stuckReason() const
{
    if (!responseQueue.empty() &&
        responseQueue.front().readyAt <= curTick()) {
        return std::to_string(responseQueue.size()) +
               " response(s) ready but the peer is not accepting";
    }
    return {};
}

void
Scratchpad::trySendResponses()
{
    while (!responseQueue.empty()) {
        PendingResponse &front = responseQueue.front();
        if (front.readyAt > curTick()) {
            reschedule(responseEvent, front.readyAt);
            return;
        }
        if (!ports[front.sourcePort]->sendTimingResp(front.pkt))
            return; // peer will call recvRespRetry
        responseQueue.pop_front();
    }
}

} // namespace salam::mem

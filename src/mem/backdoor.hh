/**
 * @file
 * Adaptors exposing simulated memories through the interpreter's
 * MemoryAccessor interface, so kernels can seed datasets into and
 * check results out of scratchpads and DRAM with the same code used
 * against flat test memory.
 */

#ifndef SALAM_MEM_BACKDOOR_HH
#define SALAM_MEM_BACKDOOR_HH

#include "ir/interpreter.hh"
#include "scratchpad.hh"
#include "simple_dram.hh"

namespace salam::mem
{

/** Untimed accessor over a Scratchpad. */
class ScratchpadBackdoor : public ir::MemoryAccessor
{
  public:
    explicit ScratchpadBackdoor(Scratchpad &spm) : spm(spm) {}

    void
    readBytes(std::uint64_t addr, std::size_t size,
              void *out) override
    {
        spm.backdoorRead(addr, out, size);
    }

    void
    writeBytes(std::uint64_t addr, std::size_t size,
               const void *in) override
    {
        spm.backdoorWrite(addr, in, size);
    }

  private:
    Scratchpad &spm;
};

/** Untimed accessor over a SimpleDram. */
class DramBackdoor : public ir::MemoryAccessor
{
  public:
    explicit DramBackdoor(SimpleDram &dram) : dram(dram) {}

    void
    readBytes(std::uint64_t addr, std::size_t size,
              void *out) override
    {
        dram.backdoorRead(addr, out, size);
    }

    void
    writeBytes(std::uint64_t addr, std::size_t size,
               const void *in) override
    {
        dram.backdoorWrite(addr, in, size);
    }

  private:
    SimpleDram &dram;
};

} // namespace salam::mem

#endif // SALAM_MEM_BACKDOOR_HH

/**
 * @file
 * RequestPort / ResponsePort: the gem5-style timing port protocol.
 *
 * A RequestPort (gem5 "master port") sends timing requests and
 * receives timing responses; a ResponsePort (gem5 "slave port") is
 * the device side. sendTimingReq may be refused (returns false), in
 * which case the responder promises a later recvReqRetry. Responses
 * may likewise be refused with a recvRespRetry promise.
 *
 * Port owners subclass and implement the recv* hooks; binding links
 * a request port to exactly one response port.
 */

#ifndef SALAM_MEM_PORT_HH
#define SALAM_MEM_PORT_HH

#include <string>

#include "packet.hh"

namespace salam::mem
{

class ResponsePort;

/** The initiating side of a memory connection. */
class RequestPort
{
  public:
    explicit RequestPort(std::string name) : _name(std::move(name)) {}

    virtual ~RequestPort() = default;

    const std::string &name() const { return _name; }

    bool isBound() const { return peer != nullptr; }

    /** Send a request; false means busy, retry will be signalled. */
    bool sendTimingReq(PacketPtr pkt);

    /** Ask the peer to resend a blocked response. */
    void sendRespRetry();

    /** Deliver a response from the peer. False defers it. */
    virtual bool recvTimingResp(PacketPtr pkt) = 0;

    /** The peer is ready for a previously refused request. */
    virtual void recvReqRetry() = 0;

  private:
    friend void bindPorts(RequestPort &req, ResponsePort &resp);
    friend class ResponsePort;

    std::string _name;
    ResponsePort *peer = nullptr;
};

/** The servicing side of a memory connection. */
class ResponsePort
{
  public:
    explicit ResponsePort(std::string name) : _name(std::move(name)) {}

    virtual ~ResponsePort() = default;

    const std::string &name() const { return _name; }

    bool isBound() const { return peer != nullptr; }

    /** Send a response; false means the requester deferred it. */
    bool sendTimingResp(PacketPtr pkt);

    /** Tell the requester a refused request may be retried. */
    void sendReqRetry();

    /** Handle an incoming request. False refuses (promise retry). */
    virtual bool recvTimingReq(PacketPtr pkt) = 0;

    /** The peer is ready for a previously refused response. */
    virtual void recvRespRetry() = 0;

  private:
    friend void bindPorts(RequestPort &req, ResponsePort &resp);
    friend class RequestPort;

    std::string _name;
    RequestPort *peer = nullptr;
};

/** Bind a request port to a response port (1:1, once). */
void bindPorts(RequestPort &req, ResponsePort &resp);

} // namespace salam::mem

#endif // SALAM_MEM_PORT_HH

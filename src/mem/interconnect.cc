#include "interconnect.hh"

#include "axi_bus.hh"
#include "crossbar.hh"
#include "sim/simulation.hh"

namespace salam::mem
{

const char *
interconnectKindName(InterconnectKind kind)
{
    switch (kind) {
      case InterconnectKind::Crossbar:
        return "xbar";
      case InterconnectKind::AxiBus:
        return "axi";
    }
    return "?";
}

std::string
InterconnectConfig::validate() const
{
    if (maxOutstandingPerRequester == 0) {
        return "outstanding-transaction credit limit of 0 can never "
               "accept a request (use unlimitedCredits for no limit)";
    }
    if (kind == InterconnectKind::AxiBus && busWidthBytes == 0)
        return "bus beat width of 0 bytes";
    if (forwardLatency == 0 && responseLatency == 0) {
        return "zero forward and response latency would deliver "
               "responses in the requesting cycle";
    }
    return {};
}

Interconnect &
makeInterconnect(Simulation &sim, const std::string &name,
                 Tick clock_period, const InterconnectConfig &cfg)
{
    std::string diag = cfg.validate();
    if (!diag.empty())
        fatal("%s: %s", name.c_str(), diag.c_str());
    switch (cfg.kind) {
      case InterconnectKind::AxiBus:
        return sim.create<AxiLikeBus>(name, clock_period, cfg);
      case InterconnectKind::Crossbar:
      default: {
        CrossbarConfig xcfg;
        xcfg.forwardLatency = cfg.forwardLatency;
        xcfg.responseLatency = cfg.responseLatency;
        xcfg.requestsPerCycle = cfg.requestsPerCycle;
        xcfg.maxOutstandingPerRequester =
            cfg.maxOutstandingPerRequester;
        return sim.create<Crossbar>(name, clock_period, xcfg);
      }
    }
}

} // namespace salam::mem

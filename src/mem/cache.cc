#include "cache.hh"

#include <algorithm>

#include "inject/fault_injector.hh"

namespace salam::mem
{

Cache::Cache(Simulation &sim, std::string name, Tick clock_period,
             const CacheConfig &config)
    : ClockedObject(sim, std::move(name), clock_period), cfg(config),
      numSets(0), cpuPort(*this), memPort(*this),
      responseEvent([this] { trySendResponses(); },
                    this->name() + ".response",
                    Event::memoryResponsePri,
                    obs::HostPhase::MemoryModel)
{
    if (cfg.blockBytes == 0 || cfg.sizeBytes % cfg.blockBytes != 0)
        fatal("%s: size must be a multiple of the block size",
              this->name().c_str());
    std::uint64_t blocks = cfg.sizeBytes / cfg.blockBytes;
    if (cfg.associativity == 0 || blocks % cfg.associativity != 0)
        fatal("%s: blocks must divide evenly into ways",
              this->name().c_str());
    numSets = static_cast<unsigned>(blocks / cfg.associativity);
    sets.resize(numSets);
    for (auto &set : sets) {
        set.resize(cfg.associativity);
        for (auto &block : set)
            block.data.resize(cfg.blockBytes, 0);
    }
}

void
Cache::init()
{
    StatRegistry &reg = simulation().stats();
    const std::string n = name();
    mshrOccupancy = &reg.addHistogram(
        n + ".cache.mshr_occupancy",
        "MSHRs allocated, sampled at every cpu-side request", 0.0,
        static_cast<double>(cfg.maxMshrs), std::max(cfg.maxMshrs, 1u));
    reg.addFormula(n + ".cache.hits", "demand hits", [this] {
        return static_cast<double>(hits);
    });
    reg.addFormula(n + ".cache.misses", "demand misses", [this] {
        return static_cast<double>(misses);
    });
    reg.addFormula(n + ".cache.writebacks", "dirty blocks written back",
                   [this] {
                       return static_cast<double>(writebacks);
                   });
    reg.addFormula(n + ".cache.mshr_full_rejects",
                   "requests rejected with all MSHRs busy", [this] {
                       return static_cast<double>(mshrFullRejects);
                   });
    reg.addFormula(n + ".cache.miss_rate", "misses / accesses",
                   [this] { return missRate(); });
}

unsigned
Cache::setOf(std::uint64_t block_addr) const
{
    return static_cast<unsigned>((block_addr / cfg.blockBytes) %
                                 numSets);
}

std::uint64_t
Cache::tagOf(std::uint64_t block_addr) const
{
    return block_addr / cfg.blockBytes / numSets;
}

Cache::Block *
Cache::findBlock(std::uint64_t block_addr)
{
    auto &set = sets[setOf(block_addr)];
    std::uint64_t tag = tagOf(block_addr);
    for (auto &block : set) {
        if (block.valid && block.tag == tag)
            return &block;
    }
    return nullptr;
}

Cache::Block &
Cache::victimIn(unsigned set_index)
{
    auto &set = sets[set_index];
    Block *victim = &set[0];
    for (auto &block : set) {
        if (!block.valid)
            return block;
        if (block.lastUse < victim->lastUse)
            victim = &block;
    }
    return *victim;
}

void
Cache::accessBlock(Block &block, PacketPtr pkt)
{
    std::uint64_t offset = pkt->addr() % cfg.blockBytes;
    SALAM_ASSERT(offset + pkt->size() <= cfg.blockBytes);
    if (pkt->cmd() == MemCmd::ReadReq) {
        pkt->setData(block.data.data() + offset, pkt->size());
    } else {
        std::memcpy(block.data.data() + offset, pkt->data(),
                    pkt->size());
        block.dirty = true;
    }
    block.lastUse = ++useCounter;
    pkt->makeResponse();
}

void
Cache::respondAfter(PacketPtr pkt, unsigned cycles)
{
    Tick ready = clockEdge(Cycles(cycles));
    if (inject::FaultInjector *fi = simulation().faultInjector()) {
        if (pkt->isRead()) {
            fi->corruptPayload(name(), pkt->addr(), pkt->data(),
                               pkt->size());
        }
        ready += fi->responseDelay(name());
        if (fi->dropResponse(name()))
            return;
    }
    noteProgress();
    responseQueue.push_back(PendingResponse{pkt, ready});
    // The front's readyAt can be in the past when it sat blocked
    // behind a refused send; never schedule before now.
    if (!responseEvent.scheduled())
        schedule(responseEvent,
                 std::max(responseQueue.front().readyAt, curTick()));
}

bool
Cache::handleRequest(PacketPtr pkt)
{
    std::uint64_t block_addr = blockAddrOf(pkt->addr());
    if (mshrOccupancy)
        mshrOccupancy->sample(static_cast<double>(mshrs.size()));

    if (Block *block = findBlock(block_addr)) {
        ++hits;
        SALAM_TRACE(Cache, "%s hit addr=0x%llx size=%u",
                    pkt->cmd() == MemCmd::ReadReq ? "read" : "write",
                    (unsigned long long)pkt->addr(), pkt->size());
        accessBlock(*block, pkt);
        respondAfter(pkt, cfg.hitLatencyCycles);
        return true;
    }

    // Miss: coalesce into an existing MSHR when possible.
    auto it = mshrs.find(block_addr);
    if (it != mshrs.end()) {
        ++misses;
        pkt->serviceFlags |= svcCacheMiss;
        SALAM_TRACE(Cache,
                    "miss addr=0x%llx coalesced into MSHR 0x%llx",
                    (unsigned long long)pkt->addr(),
                    (unsigned long long)block_addr);
        it->second.targets.push_back(pkt);
        return true;
    }

    if (mshrs.size() >= cfg.maxMshrs) {
        ++mshrFullRejects;
        SALAM_TRACE(Cache, "reject addr=0x%llx: all %u MSHRs busy",
                    (unsigned long long)pkt->addr(), cfg.maxMshrs);
        return false; // blocked; retried when an MSHR frees
    }

    ++misses;
    pkt->serviceFlags |= svcCacheMiss;
    SALAM_TRACE(Cache, "miss addr=0x%llx -> fill block 0x%llx",
                (unsigned long long)pkt->addr(),
                (unsigned long long)block_addr);
    Mshr &mshr = mshrs[block_addr];
    mshr.blockAddr = block_addr;
    mshr.targets.push_back(pkt);

    // Evict the victim now so the fill has a home; write back dirty
    // data before the fill request.
    Block &victim = victimIn(setOf(block_addr));
    if (victim.valid && victim.dirty) {
        std::uint64_t victim_addr =
            (victim.tag * numSets + setOf(block_addr)) *
            cfg.blockBytes;
        auto *wb = new Packet(MemCmd::WriteReq, victim_addr,
                              cfg.blockBytes);
        wb->setData(victim.data.data(), cfg.blockBytes);
        memSideQueue.push_back(wb);
        ++writebacks;
    }
    victim.valid = false;

    auto *fill = new Packet(MemCmd::ReadReq, block_addr,
                            cfg.blockBytes);
    memSideQueue.push_back(fill);
    mshr.fillIssued = true;
    pumpMemSide();
    return true;
}

void
Cache::pumpMemSide()
{
    while (!memSideQueue.empty()) {
        if (!memPort.sendTimingReq(memSideQueue.front()))
            return;
        memSideQueue.pop_front();
    }
}

bool
Cache::handleFill(PacketPtr pkt)
{
    if (pkt->cmd() == MemCmd::WriteResp) {
        // Writeback acknowledged.
        delete pkt;
        return true;
    }

    SALAM_ASSERT(pkt->cmd() == MemCmd::ReadResp);
    std::uint64_t block_addr = pkt->addr();
    auto it = mshrs.find(block_addr);
    SALAM_ASSERT(it != mshrs.end());
    SALAM_TRACE(Cache, "fill block 0x%llx (%zu targets)",
                (unsigned long long)block_addr,
                it->second.targets.size());

    // Install the block. The victim slot was invalidated at miss
    // time, but a racing fill in the same set may have reclaimed it;
    // re-select and write back if we displace live dirty data.
    Block &block = victimIn(setOf(block_addr));
    if (block.valid && block.dirty) {
        std::uint64_t victim_addr =
            (block.tag * numSets + setOf(block_addr)) *
            cfg.blockBytes;
        auto *wb = new Packet(MemCmd::WriteReq, victim_addr,
                              cfg.blockBytes);
        wb->setData(block.data.data(), cfg.blockBytes);
        memSideQueue.push_back(wb);
        ++writebacks;
        pumpMemSide();
    }
    block.valid = true;
    block.dirty = false;
    block.tag = tagOf(block_addr);
    pkt->copyData(block.data.data(), cfg.blockBytes);
    block.lastUse = ++useCounter;

    // Service all coalesced targets.
    for (PacketPtr target : it->second.targets) {
        accessBlock(block, target);
        respondAfter(target, cfg.hitLatencyCycles);
    }
    bool was_full = mshrs.size() >= cfg.maxMshrs;
    mshrs.erase(it);
    delete pkt;
    if (was_full)
        cpuPort.sendReqRetry();
    return true;
}

void
Cache::dumpDiagnostics(obs::JsonBuilder &json) const
{
    json.field("mshrs_allocated",
               static_cast<std::uint64_t>(mshrs.size()));
    json.field("mem_side_queue",
               static_cast<std::uint64_t>(memSideQueue.size()));
    json.field("pending_responses",
               static_cast<std::uint64_t>(responseQueue.size()));
    json.field("hits", hits).field("misses", misses);
    json.beginArray("mshr_blocks");
    for (const auto &[block_addr, mshr] : mshrs) {
        json.beginObject()
            .field("block_addr", block_addr)
            .field("targets",
                   static_cast<std::uint64_t>(mshr.targets.size()))
            .field("fill_issued", mshr.fillIssued)
            .endObject();
    }
    json.endArray();
}

std::string
Cache::stuckReason() const
{
    if (!memSideQueue.empty()) {
        return std::to_string(memSideQueue.size()) +
               " fill/writeback request(s) blocked toward memory";
    }
    if (!mshrs.empty()) {
        return std::to_string(mshrs.size()) +
               " MSHR(s) waiting on fills that never returned";
    }
    if (!responseQueue.empty() &&
        responseQueue.front().readyAt <= curTick()) {
        return std::to_string(responseQueue.size()) +
               " response(s) ready but the peer is not accepting";
    }
    return {};
}

void
Cache::trySendResponses()
{
    while (!responseQueue.empty()) {
        PendingResponse &front = responseQueue.front();
        if (front.readyAt > curTick()) {
            if (!responseEvent.scheduled())
                schedule(responseEvent, front.readyAt);
            return;
        }
        if (!cpuPort.sendTimingResp(front.pkt))
            return;
        responseQueue.pop_front();
    }
}

} // namespace salam::mem

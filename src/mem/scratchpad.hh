/**
 * @file
 * Scratchpad: a multi-ported, banked, private or shared SPM.
 *
 * Models gem5-SALAM's scratchpad memories: fixed-latency SRAM with a
 * configurable number of read and write ports per cycle and bank
 * partitioning. Requests beyond the per-cycle port budget (or hitting
 * a busy bank) queue and serialize — the mechanism behind the paper's
 * read/write-port design sweeps (Fig. 14/15).
 */

#ifndef SALAM_MEM_SCRATCHPAD_HH
#define SALAM_MEM_SCRATCHPAD_HH

#include <deque>
#include <memory>
#include <vector>

#include "port.hh"
#include "sim/sim_object.hh"
#include "sim/simulation.hh"

namespace salam::mem
{

/** Scratchpad configuration. */
struct ScratchpadConfig
{
    AddrRange range;
    /** SRAM access latency in SPM-clock cycles. */
    unsigned latencyCycles = 1;
    /** Read accesses serviced per cycle. */
    unsigned readPorts = 2;
    /** Write accesses serviced per cycle. */
    unsigned writePorts = 2;
    /** Bank partitions (cyclic interleave on words). */
    unsigned banks = 1;
    /** Interleave granularity in bytes. */
    unsigned wordBytes = 4;
    /** Number of connection endpoints exposed. */
    unsigned numPorts = 1;
};

/** The scratchpad device. */
class Scratchpad : public ClockedObject
{
  public:
    Scratchpad(Simulation &sim, std::string name, Tick clock_period,
               const ScratchpadConfig &config);

    /** Registers port/bank statistics with the simulation. */
    void init() override;

    const ScratchpadConfig &config() const { return cfg; }

    /** Connection endpoint @p i (bind a RequestPort to it). */
    ResponsePort &port(unsigned i);

    /** Debug/setup access that bypasses timing. */
    void backdoorWrite(std::uint64_t addr, const void *src,
                       std::size_t size);

    void backdoorRead(std::uint64_t addr, void *dst,
                      std::size_t size) const;

    // Usage statistics (inputs to the CactiLite power model).
    std::uint64_t readCount() const { return reads; }

    std::uint64_t writeCount() const { return writes; }

    std::uint64_t busyCycles() const { return activeCycles; }

    /** Service attempts skipped because the target bank was busy. */
    std::uint64_t bankConflictCount() const { return bankConflicts; }

    void dumpDiagnostics(obs::JsonBuilder &json) const override;

    std::string stuckReason() const override;

  private:
    class SpmPort : public ResponsePort
    {
      public:
        SpmPort(Scratchpad &owner, unsigned index)
            : ResponsePort(owner.name() + ".port" +
                           std::to_string(index)),
              owner(owner), index(index)
        {}

        bool
        recvTimingReq(PacketPtr pkt) override
        {
            return owner.handleRequest(pkt, index);
        }

        void recvRespRetry() override { owner.trySendResponses(); }

      private:
        Scratchpad &owner;
        unsigned index;
    };

    struct QueuedAccess
    {
        PacketPtr pkt;
        unsigned sourcePort;
    };

    struct PendingResponse
    {
        PacketPtr pkt;
        unsigned sourcePort;
        Tick readyAt;
    };

    bool handleRequest(PacketPtr pkt, unsigned source_port);

    /** Service up to the port budget each SPM clock cycle. */
    void serviceCycle();

    void access(PacketPtr pkt);

    unsigned bankOf(std::uint64_t addr) const;

    void scheduleService();

    void trySendResponses();

    ScratchpadConfig cfg;
    std::vector<std::uint8_t> store;
    std::vector<std::unique_ptr<SpmPort>> ports;
    std::deque<QueuedAccess> requestQueue;
    std::deque<PendingResponse> responseQueue;
    EventFunctionWrapper serviceEvent;
    EventFunctionWrapper responseEvent;
    bool serviceScheduled = false;
    /** Tick of the most recent service pass (one pass per cycle). */
    Tick lastServiceTick = maxTick;

    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    std::uint64_t activeCycles = 0;
    std::uint64_t bankConflicts = 0;
    std::uint64_t portStalls = 0;

    /** Sampled per service cycle once init() has registered it. */
    Histogram *queueOccupancy = nullptr;
    obs::TraceSink *sink = nullptr;
};

} // namespace salam::mem

#endif // SALAM_MEM_SCRATCHPAD_HH

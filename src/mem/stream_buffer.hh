/**
 * @file
 * StreamBuffer: a FIFO channel with two-way handshake semantics.
 *
 * Models the AXI-Stream-style interfaces used for direct
 * producer/consumer coupling between accelerators (the paper's third
 * multi-accelerator scenario). Writes push bytes and stall when the
 * buffer is full; reads pop bytes and stall until data is available.
 * The stalling (deferred responses) is exactly the two-way handshake
 * that lets devices with different data rates self-synchronize
 * without a host or central controller.
 */

#ifndef SALAM_MEM_STREAM_BUFFER_HH
#define SALAM_MEM_STREAM_BUFFER_HH

#include <deque>

#include "port.hh"
#include "sim/sim_object.hh"
#include "sim/simulation.hh"

namespace salam::mem
{

/** Stream buffer configuration. */
struct StreamBufferConfig
{
    /** Address window the producer writes into. */
    AddrRange writeRange;
    /** Address window the consumer reads from. */
    AddrRange readRange;
    /** FIFO capacity in bytes. */
    unsigned capacityBytes = 64;
    /** Per-transfer latency in cycles once data/space exists. */
    unsigned latencyCycles = 1;
};

/** The FIFO device. */
class StreamBuffer : public ClockedObject
{
  public:
    StreamBuffer(Simulation &sim, std::string name, Tick clock_period,
                 const StreamBufferConfig &config);

    ResponsePort &writePort() { return producerPort; }

    ResponsePort &readPort() { return consumerPort; }

    const StreamBufferConfig &config() const { return cfg; }

    std::size_t bytesBuffered() const { return fifo.size(); }

    std::uint64_t bytesStreamed() const { return streamed; }

    /** Cycles a consumer read spent waiting on an empty FIFO. */
    std::uint64_t consumerStallTicks() const { return readStallTicks; }

    /** Cycles a producer write spent waiting on a full FIFO. */
    std::uint64_t producerStallTicks() const
    { return writeStallTicks; }

    void dumpDiagnostics(obs::JsonBuilder &json) const override;

    std::string stuckReason() const override;

  private:
    class EndPort : public ResponsePort
    {
      public:
        EndPort(StreamBuffer &owner, bool is_write_side)
            : ResponsePort(owner.name() +
                           (is_write_side ? ".write" : ".read")),
              owner(owner), writeSide(is_write_side)
        {}

        bool
        recvTimingReq(PacketPtr pkt) override
        {
            return owner.handleRequest(pkt, writeSide);
        }

        void recvRespRetry() override { owner.pump(); }

      private:
        StreamBuffer &owner;
        bool writeSide;
    };

    struct Waiting
    {
        PacketPtr pkt;
        Tick arrivedAt;
    };

    bool handleRequest(PacketPtr pkt, bool write_side);

    /** Try to satisfy waiting reads/writes and send responses. */
    void pump();

    void sendResponse(PacketPtr pkt, bool write_side);

    StreamBufferConfig cfg;
    EndPort producerPort;
    EndPort consumerPort;
    std::deque<std::uint8_t> fifo;
    std::deque<Waiting> waitingWrites;
    std::deque<Waiting> waitingReads;
    std::deque<std::pair<PacketPtr, bool>> readyResponses;
    EventFunctionWrapper pumpEvent;

    std::uint64_t streamed = 0;
    std::uint64_t readStallTicks = 0;
    std::uint64_t writeStallTicks = 0;
};

} // namespace salam::mem

#endif // SALAM_MEM_STREAM_BUFFER_HH

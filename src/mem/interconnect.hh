/**
 * @file
 * Interconnect: the pluggable fabric between requesters and devices.
 *
 * Every interconnect exposes the same composition surface — create
 * an upstream endpoint per requester, attach downstream devices by
 * address range, optionally nominate a default route — so system
 * construction (sys::SalamSystem, the cluster bridges, the bench
 * testbenches) is written once against this interface and the
 * concrete fabric is a configuration choice:
 *
 *  - Crossbar: idealized address-routed switch with a fixed
 *    forwarding latency and an optional per-cycle throughput cap;
 *  - AxiLikeBus: separate read/write channels, round-robin
 *    arbitration, a finite data-bus width that turns wide packets
 *    into multi-beat bursts, and per-requester outstanding credits.
 *
 * InterconnectConfig is validated at elaboration time, mirroring
 * DeviceConfig::validate(): a misconfigured fabric fails before any
 * CDFG is built or a single event runs.
 */

#ifndef SALAM_MEM_INTERCONNECT_HH
#define SALAM_MEM_INTERCONNECT_HH

#include <string>
#include <vector>

#include "packet.hh"
#include "port.hh"
#include "sim/types.hh"

namespace salam
{
class Simulation;
}

namespace salam::mem
{

/** Which fabric implementation to elaborate. */
enum class InterconnectKind
{
    Crossbar,
    AxiBus,
};

/** Stable lower-case identifier, e.g. "axi". */
const char *interconnectKindName(InterconnectKind kind);

/**
 * Sentinel for "no outstanding-transaction limit". A limit of 0 is
 * rejected by validation — zero credits could never accept a request
 * and would deadlock every requester at the first send.
 */
constexpr unsigned unlimitedCredits = ~0u;

/**
 * Parameters of one interconnect instance. The kind selects the
 * implementation; unused knobs are ignored (requestsPerCycle is
 * crossbar-only, busWidthBytes is bus-only).
 */
struct InterconnectConfig
{
    InterconnectKind kind = InterconnectKind::Crossbar;

    /** Request forwarding latency in fabric cycles. */
    unsigned forwardLatency = 1;

    /** Response forwarding latency in fabric cycles. */
    unsigned responseLatency = 1;

    /** Crossbar: max requests forwarded per cycle; 0 = unlimited. */
    unsigned requestsPerCycle = 0;

    /**
     * AxiBus: data-channel beat width in bytes. A packet larger than
     * one beat occupies its channel for ceil(size / width) beats.
     */
    unsigned busWidthBytes = 64;

    /**
     * Outstanding-transaction credits per requester: an upstream
     * port with this many requests in flight has further sends
     * refused until a response returns (retry signalled). Applies to
     * both kinds; unlimitedCredits disables the limit, 0 is invalid.
     */
    unsigned maxOutstandingPerRequester = unlimitedCredits;

    /**
     * Elaboration-time validation, DeviceConfig::validate()-style:
     * returns a diagnostic for the first rejected parameter, or ""
     * when the configuration is usable.
     */
    std::string validate() const;
};

/**
 * The fabric interface system construction is written against.
 * Implementations (Crossbar, AxiLikeBus) route requests by address
 * range and return responses to the originating requester via packet
 * sender state; overlapping device ranges are fatal at connect time.
 */
class Interconnect
{
  public:
    virtual ~Interconnect() = default;

    /**
     * Create an upstream endpoint for one requester; bind the
     * requester's RequestPort to the returned port.
     */
    virtual ResponsePort &addRequester(const std::string &label) = 0;

    /**
     * Attach a downstream device servicing @p range. The fabric
     * creates and binds an internal request port to @p device_port.
     */
    virtual void connectDevice(ResponsePort &device_port,
                               AddrRange range) = 0;

    /**
     * Attach the default downstream: packets whose address matches
     * no device range are forwarded here.
     */
    virtual void connectDefault(ResponsePort &device_port) = 0;

    /** Ranges currently routed (for diagnostics/tests). */
    virtual const std::vector<AddrRange> &routedRanges() const = 0;
};

/**
 * Elaborate the fabric described by @p cfg as a simulation object
 * named @p name. fatal()s on an invalid configuration — validation
 * happens here, before any requester or device is attached.
 */
Interconnect &makeInterconnect(Simulation &sim,
                               const std::string &name,
                               Tick clock_period,
                               const InterconnectConfig &cfg);

} // namespace salam::mem

#endif // SALAM_MEM_INTERCONNECT_HH

/**
 * @file
 * AxiLikeBus: a burst/backpressure-capable shared bus beside the
 * crossbar.
 *
 * Modeled on the AMBA AXI channel split: read and write transactions
 * travel on separate channels (AR/R and AW/W/B respectively), each
 * arbitrated round-robin across requesters, with a finite data-bus
 * width and per-requester outstanding-transaction credits.
 *
 * Timing semantics, chosen so the bus degrades *to* the crossbar:
 *
 *  - A transaction's first beat rides the address/forward phase and
 *    is delivered forwardLatency cycles after acceptance — exactly
 *    the crossbar's forwarding latency.
 *  - Each ADDITIONAL beat (size > busWidthBytes) occupies the data
 *    channel for one more cycle, blocking later grants on that
 *    channel; responses carrying data (R channel) occupy the return
 *    path the same way. Single-beat transactions are
 *    handshake-limited, not data-limited, mirroring the crossbar's
 *    idealized switch.
 *  - A requester at its credit limit has sends refused outright;
 *    a retry is signalled when a response frees a credit.
 *
 * Hence a bus whose width covers every packet, with unlimited
 * credits, is cycle-identical to the crossbar (the fig10 A/B gate),
 * while a narrow-width/low-credit configuration serializes bursts
 * and starves requesters — the contention the crossbar cannot
 * express. Stalls are annotated on packets (svcBusArbitration,
 * svcCreditStall) so the profiler attributes the new timing.
 */

#ifndef SALAM_MEM_AXI_BUS_HH
#define SALAM_MEM_AXI_BUS_HH

#include <deque>
#include <memory>
#include <vector>

#include "interconnect.hh"
#include "port.hh"
#include "sim/sim_object.hh"
#include "sim/simulation.hh"

namespace salam::mem
{

/** The AXI-like split-channel bus. */
class AxiLikeBus : public ClockedObject, public Interconnect
{
  public:
    AxiLikeBus(Simulation &sim, std::string name, Tick clock_period,
               const InterconnectConfig &config = {});

    /** Registers arbitration/credit statistics. */
    void init() override;

    ResponsePort &addRequester(const std::string &label) override;

    void connectDevice(ResponsePort &device_port,
                       AddrRange range) override;

    void connectDefault(ResponsePort &device_port) override;

    const std::vector<AddrRange> &routedRanges() const override
    { return ranges; }

    /** Transactions granted onto either request channel. */
    std::uint64_t forwardedRequests() const { return forwarded; }

    /** Ready transactions that waited for a busy data channel. */
    std::uint64_t arbitrationStallCount() const
    { return arbitrationStalls; }

    /** Requests refused for an exhausted per-requester credit. */
    std::uint64_t creditStallCount() const { return creditStalls; }

    void dumpDiagnostics(obs::JsonBuilder &json) const override;

    std::string stuckReason() const override;

  private:
    class UpstreamPort : public ResponsePort
    {
      public:
        UpstreamPort(AxiLikeBus &owner, unsigned index,
                     const std::string &label)
            : ResponsePort(owner.name() + ".up." + label),
              owner(owner), index(index)
        {}

        bool
        recvTimingReq(PacketPtr pkt) override
        {
            return owner.handleRequest(pkt, index);
        }

        void recvRespRetry() override { owner.pumpAllResponses(); }

      private:
        AxiLikeBus &owner;
        unsigned index;
    };

    class DownstreamPort : public RequestPort
    {
      public:
        DownstreamPort(AxiLikeBus &owner, unsigned index)
            : RequestPort(owner.name() + ".down" +
                          std::to_string(index)),
              owner(owner), index(index)
        {}

        bool
        recvTimingResp(PacketPtr pkt) override
        {
            return owner.handleResponse(pkt);
        }

        void recvReqRetry() override { owner.pumpAllRequests(); }

      private:
        AxiLikeBus &owner;
        unsigned index;
    };

    struct Routed
    {
        PacketPtr pkt;
        unsigned portIndex; ///< downstream for reqs, upstream for resps
        Tick readyAt;
    };

    struct AxiState : SenderState
    {
        explicit AxiState(unsigned upstream) : upstream(upstream) {}

        unsigned upstream;
    };

    /** One request channel (AR or AW/W): per-requester queues. */
    struct RequestChannel
    {
        const char *label;
        std::vector<std::deque<Routed>> pending;
        unsigned rrNext = 0;
        Tick busyUntil = 0;
        std::uint64_t granted = 0;
        std::uint64_t busyCycles = 0;
        EventFunctionWrapper event;

        RequestChannel(const char *label, EventFunctionWrapper event)
            : label(label), event(std::move(event))
        {}

        std::size_t
        queued() const
        {
            std::size_t n = 0;
            for (const auto &q : pending)
                n += q.size();
            return n;
        }
    };

    /** One response channel (R or B): FIFO in device order. */
    struct ResponseChannel
    {
        const char *label;
        std::deque<Routed> pending;
        Tick busyUntil = 0;
        std::uint64_t busyCycles = 0;
        EventFunctionWrapper event;

        ResponseChannel(const char *label,
                        EventFunctionWrapper event)
            : label(label), event(std::move(event))
        {}
    };

    bool handleRequest(PacketPtr pkt, unsigned upstream_index);

    bool handleResponse(PacketPtr pkt);

    void pumpRequests(RequestChannel &ch);

    void pumpResponses(ResponseChannel &ch);

    void pumpAllRequests();

    void pumpAllResponses();

    /** Free one credit for @p upstream_index and wake it if blocked. */
    void releaseCredit(unsigned upstream_index);

    unsigned routeFor(PacketPtr pkt) const;

    /** Data-channel beats a packet of @p bytes occupies. */
    unsigned beatsFor(unsigned bytes) const;

    InterconnectConfig cfg;
    std::vector<std::unique_ptr<UpstreamPort>> upstream;
    std::vector<std::unique_ptr<DownstreamPort>> downstream;
    std::vector<AddrRange> ranges;
    int defaultRoute = -1;

    RequestChannel readReq;
    RequestChannel writeReq;
    ResponseChannel readResp;
    ResponseChannel writeResp;

    std::vector<unsigned> outstanding;
    std::vector<bool> creditRetryPending;
    std::vector<bool> wasCreditStalled;

    std::uint64_t forwarded = 0;
    std::uint64_t arbitrationStalls = 0;
    std::uint64_t creditStalls = 0;

    /** Sampled per incoming request once init() registered them. */
    Histogram *readQueueOccupancy = nullptr;
    Histogram *writeQueueOccupancy = nullptr;
};

} // namespace salam::mem

#endif // SALAM_MEM_AXI_BUS_HH

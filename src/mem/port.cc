#include "port.hh"

namespace salam::mem
{

bool
RequestPort::sendTimingReq(PacketPtr pkt)
{
    if (peer == nullptr)
        panic("request port '%s' is unbound", _name.c_str());
    SALAM_ASSERT(pkt->isRequest());
    return peer->recvTimingReq(pkt);
}

void
RequestPort::sendRespRetry()
{
    SALAM_ASSERT(peer != nullptr);
    peer->recvRespRetry();
}

bool
ResponsePort::sendTimingResp(PacketPtr pkt)
{
    if (peer == nullptr)
        panic("response port '%s' is unbound", _name.c_str());
    SALAM_ASSERT(pkt->isResponse());
    return peer->recvTimingResp(pkt);
}

void
ResponsePort::sendReqRetry()
{
    SALAM_ASSERT(peer != nullptr);
    peer->recvReqRetry();
}

void
bindPorts(RequestPort &req, ResponsePort &resp)
{
    if (req.peer != nullptr)
        panic("request port '%s' already bound", req.name().c_str());
    if (resp.peer != nullptr)
        panic("response port '%s' already bound",
              resp.name().c_str());
    req.peer = &resp;
    resp.peer = &req;
}

} // namespace salam::mem

/**
 * @file
 * Crossbar: address-routed interconnect between requesters and
 * devices.
 *
 * Used for both the cluster-local crossbar (accelerators, shared SPM,
 * DMA, peer MMRs) and the global crossbar (clusters, DRAM). Requests
 * are routed by address range with a configurable forwarding latency
 * and an optional per-cycle throughput limit; responses are routed
 * back to the originating requester via packet sender state.
 */

#ifndef SALAM_MEM_CROSSBAR_HH
#define SALAM_MEM_CROSSBAR_HH

#include <deque>
#include <memory>
#include <vector>

#include "interconnect.hh"
#include "port.hh"
#include "sim/sim_object.hh"
#include "sim/simulation.hh"

namespace salam::mem
{

/** Crossbar configuration. */
struct CrossbarConfig
{
    /** Request forwarding latency in crossbar cycles. */
    unsigned forwardLatency = 1;
    /** Response forwarding latency in crossbar cycles. */
    unsigned responseLatency = 1;
    /** Max requests forwarded per cycle; 0 means unlimited. */
    unsigned requestsPerCycle = 0;
    /**
     * Outstanding-transaction credits per requester: an upstream
     * port at the limit has further sends refused (retry signalled
     * when a response frees a credit). unlimitedCredits disables
     * the limit, preserving the historical unbounded behavior.
     */
    unsigned maxOutstandingPerRequester = unlimitedCredits;
};

/** The crossbar switch. */
class Crossbar : public ClockedObject, public Interconnect
{
  public:
    Crossbar(Simulation &sim, std::string name, Tick clock_period,
             const CrossbarConfig &config = {});

    /** Registers forwarding statistics with the simulation. */
    void init() override;

    /**
     * Create an upstream endpoint for one requester; bind the
     * requester's RequestPort to the returned port.
     */
    ResponsePort &addRequester(const std::string &label) override;

    /**
     * Attach a downstream device servicing @p range. The crossbar
     * creates and binds an internal request port to @p device_port.
     */
    void connectDevice(ResponsePort &device_port,
                       AddrRange range) override;

    /**
     * Attach the default downstream: packets whose address matches
     * no device range are forwarded here (e.g. a cluster-local
     * crossbar forwarding everything else to the global crossbar).
     */
    void connectDefault(ResponsePort &device_port) override;

    /** Ranges currently routed (for diagnostics/tests). */
    const std::vector<AddrRange> &routedRanges() const override
    { return ranges; }

    std::uint64_t forwardedRequests() const { return forwarded; }

    /** Requests refused for an exhausted per-requester credit. */
    std::uint64_t creditStallCount() const { return creditStalls; }

    void dumpDiagnostics(obs::JsonBuilder &json) const override;

    std::string stuckReason() const override;

  private:
    class UpstreamPort : public ResponsePort
    {
      public:
        UpstreamPort(Crossbar &owner, unsigned index,
                     const std::string &label)
            : ResponsePort(owner.name() + ".up." + label),
              owner(owner), index(index)
        {}

        bool
        recvTimingReq(PacketPtr pkt) override
        {
            return owner.handleRequest(pkt, index);
        }

        void recvRespRetry() override { owner.pumpResponses(); }

      private:
        Crossbar &owner;
        unsigned index;
    };

    class DownstreamPort : public RequestPort
    {
      public:
        DownstreamPort(Crossbar &owner, unsigned index)
            : RequestPort(owner.name() + ".down" +
                          std::to_string(index)),
              owner(owner), index(index)
        {}

        bool
        recvTimingResp(PacketPtr pkt) override
        {
            return owner.handleResponse(pkt, index);
        }

        void recvReqRetry() override { owner.pumpRequests(); }

      private:
        Crossbar &owner;
        unsigned index;
    };

    struct RoutedPacket
    {
        PacketPtr pkt;
        unsigned portIndex; ///< downstream for reqs, upstream for resps
        Tick readyAt;
    };

    struct XbarState : SenderState
    {
        explicit XbarState(unsigned upstream) : upstream(upstream) {}

        unsigned upstream;
    };

    bool handleRequest(PacketPtr pkt, unsigned upstream_index);

    bool handleResponse(PacketPtr pkt, unsigned downstream_index);

    /** Free one credit for @p upstream_index and wake it if blocked. */
    void releaseCredit(unsigned upstream_index);

    void pumpRequests();

    void pumpResponses();

    unsigned routeFor(PacketPtr pkt) const;

    CrossbarConfig cfg;
    std::vector<std::unique_ptr<UpstreamPort>> upstream;
    std::vector<std::unique_ptr<DownstreamPort>> downstream;
    std::vector<AddrRange> ranges;
    int defaultRoute = -1;
    std::deque<RoutedPacket> requestQueue;
    std::deque<RoutedPacket> responseQueue;
    EventFunctionWrapper requestEvent;
    EventFunctionWrapper responseEvent;
    Tick lastRequestCycle = maxTick;
    unsigned requestsThisCycle = 0;
    std::uint64_t forwarded = 0;
    std::uint64_t throughputStalls = 0;
    std::uint64_t creditStalls = 0;

    /** In-flight requests per upstream (credit accounting). */
    std::vector<unsigned> outstanding;

    /** Upstreams refused for credits, owed a retry. */
    std::vector<bool> creditRetryPending;

    /** Upstreams whose next accepted request carries svcCreditStall. */
    std::vector<bool> wasCreditStalled;

    /** Sampled per incoming request once init() registered it. */
    Histogram *requestQueueOccupancy = nullptr;
};

} // namespace salam::mem

#endif // SALAM_MEM_CROSSBAR_HH

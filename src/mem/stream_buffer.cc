#include "stream_buffer.hh"

namespace salam::mem
{

StreamBuffer::StreamBuffer(Simulation &sim, std::string name,
                           Tick clock_period,
                           const StreamBufferConfig &config)
    : ClockedObject(sim, std::move(name), clock_period), cfg(config),
      producerPort(*this, true), consumerPort(*this, false),
      pumpEvent([this] { pump(); }, this->name() + ".pump",
                Event::defaultPri, obs::HostPhase::MemoryModel)
{
    if (cfg.capacityBytes == 0)
        fatal("%s: stream buffer capacity must be non-zero",
              this->name().c_str());
}

bool
StreamBuffer::handleRequest(PacketPtr pkt, bool write_side)
{
    if (write_side) {
        SALAM_ASSERT(pkt->cmd() == MemCmd::WriteReq);
        waitingWrites.push_back(Waiting{pkt, curTick()});
    } else {
        SALAM_ASSERT(pkt->cmd() == MemCmd::ReadReq);
        waitingReads.push_back(Waiting{pkt, curTick()});
    }
    if (!pumpEvent.scheduled())
        schedule(pumpEvent, clockEdge(Cycles(cfg.latencyCycles)));
    return true;
}

void
StreamBuffer::pump()
{
    bool progress = true;
    while (progress) {
        progress = false;

        // Satisfy the oldest write if there is space.
        if (!waitingWrites.empty()) {
            Waiting &w = waitingWrites.front();
            if (fifo.size() + w.pkt->size() <= cfg.capacityBytes) {
                for (unsigned i = 0; i < w.pkt->size(); ++i)
                    fifo.push_back(w.pkt->data()[i]);
                streamed += w.pkt->size();
                writeStallTicks += curTick() - w.arrivedAt;
                noteProgress();
                w.pkt->makeResponse();
                readyResponses.emplace_back(w.pkt, true);
                waitingWrites.pop_front();
                progress = true;
            }
        }

        // Satisfy the oldest read if there is data.
        if (!waitingReads.empty()) {
            Waiting &r = waitingReads.front();
            if (fifo.size() >= r.pkt->size()) {
                for (unsigned i = 0; i < r.pkt->size(); ++i) {
                    r.pkt->data()[i] = fifo.front();
                    fifo.pop_front();
                }
                readStallTicks += curTick() - r.arrivedAt;
                noteProgress();
                r.pkt->makeResponse();
                readyResponses.emplace_back(r.pkt, false);
                waitingReads.pop_front();
                progress = true;
            }
        }
    }

    // Deliver ready responses.
    while (!readyResponses.empty()) {
        auto [pkt, write_side] = readyResponses.front();
        EndPort &port = write_side ? producerPort : consumerPort;
        if (!port.sendTimingResp(pkt))
            return; // retried via recvRespRetry -> pump()
        readyResponses.pop_front();
    }
}

void
StreamBuffer::dumpDiagnostics(obs::JsonBuilder &json) const
{
    json.field("buffered_bytes",
               static_cast<std::uint64_t>(fifo.size()));
    json.field("capacity_bytes", std::uint64_t(cfg.capacityBytes));
    json.field("waiting_writes",
               static_cast<std::uint64_t>(waitingWrites.size()));
    json.field("waiting_reads",
               static_cast<std::uint64_t>(waitingReads.size()));
    json.field("ready_responses",
               static_cast<std::uint64_t>(readyResponses.size()));
    json.field("bytes_streamed", streamed);
}

std::string
StreamBuffer::stuckReason() const
{
    if (!waitingReads.empty() &&
        fifo.size() < waitingReads.front().pkt->size()) {
        return "consumer read of " +
               std::to_string(waitingReads.front().pkt->size()) +
               " byte(s) waiting on an empty FIFO (" +
               std::to_string(fifo.size()) + " buffered)";
    }
    if (!waitingWrites.empty() &&
        fifo.size() + waitingWrites.front().pkt->size() >
            cfg.capacityBytes) {
        return "producer write waiting on a full FIFO";
    }
    return {};
}

} // namespace salam::mem

/**
 * @file
 * Needleman-Wunsch score-matrix fill (i32), MachSuite nw.
 *
 * The max-of-three selection maps to comparator + mux chains, the
 * operation mix the paper calls out for NW's power behaviour.
 *
 * Layout: seqA[len] i8, seqB[len] i8, M[(len+1)*(len+1)] i32.
 */

#include <algorithm>
#include <sstream>
#include <vector>

#include "loop_util.hh"
#include "machsuite.hh"

namespace salam::kernels
{

using namespace salam::ir;

namespace
{

constexpr std::int32_t matchScore = 1;
constexpr std::int32_t mismatchScore = -1;
constexpr std::int32_t gapScore = -1;

class NwKernel : public Kernel
{
  public:
    explicit NwKernel(unsigned length) : len(length) {}

    std::string name() const override { return "nw"; }

    std::uint64_t
    footprintBytes() const override
    {
        return 2ull * len + 4ull * (len + 1) * (len + 1);
    }

    ir::Function *
    build(ir::IRBuilder &b) const override
    {
        Context &ctx = b.context();
        const Type *i32 = ctx.i32();
        const Type *i8 = ctx.i8();
        Function *fn = b.createFunction("nw", ctx.voidType());
        Argument *seqa = fn->addArgument(ctx.pointerTo(i8), "seqA");
        Argument *seqb = fn->addArgument(ctx.pointerTo(i8), "seqB");
        Argument *m = fn->addArgument(ctx.pointerTo(i32), "M");

        auto w = static_cast<std::int64_t>(len) + 1;

        BasicBlock *entry = b.createBlock("entry");
        b.setInsertPoint(entry);

        // Boundary rows/columns: M[0][j] = j * gap; M[i][0] = i*gap.
        InnerLoop lb(b, "border", 0, w);
        Value *gap_mul = b.mul(
            b.trunc(lb.iv(), i32, "bj32"),
            b.constInt(i32, static_cast<std::uint64_t>(gapScore)),
            "gap.mul");
        b.store(gap_mul, b.gep(i32, m, lb.iv(), "p.row0"));
        Value *col_idx = b.mul(lb.iv(), b.constI64(w), "col.idx");
        b.store(gap_mul, b.gep(i32, m, col_idx, "p.col0"));
        lb.close();

        OuterLoop li(b, "i", 1, w);
        Value *i_base = b.mul(li.iv(), b.constI64(w), "i.base");
        Value *im1_base = b.sub(i_base, b.constI64(w), "im1.base");
        Value *ca = b.load(
            b.gep(i8, seqa,
                  b.sub(li.iv(), b.constI64(1), "ia"), "p.ca"),
            "ca");

        InnerLoop lj(b, "j", 1, w);
        Value *cb = b.load(
            b.gep(i8, seqb,
                  b.sub(lj.iv(), b.constI64(1), "jb"), "p.cb"),
            "cb");
        Value *same = b.icmp(Predicate::EQ, ca, cb, "same");
        Value *subst = b.select(
            same, b.constInt(i32, static_cast<std::uint64_t>(
                                      matchScore)),
            b.constInt(i32, static_cast<std::uint64_t>(
                                mismatchScore)),
            "subst");

        Value *jm1 = b.sub(lj.iv(), b.constI64(1), "jm1");
        Value *diag = b.load(
            b.gep(i32, m, b.add(im1_base, jm1, "d.idx"), "p.d"),
            "diag");
        Value *up = b.load(
            b.gep(i32, m, b.add(im1_base, lj.iv(), "u.idx"),
                  "p.u"),
            "up");
        Value *left = b.load(
            b.gep(i32, m, b.add(i_base, jm1, "l.idx"), "p.l"),
            "left");

        Value *score_d = b.add(diag, subst, "score.d");
        Value *score_u = b.add(
            up, b.constInt(i32, static_cast<std::uint64_t>(
                                    gapScore)),
            "score.u");
        Value *score_l = b.add(
            left, b.constInt(i32, static_cast<std::uint64_t>(
                                      gapScore)),
            "score.l");
        Value *du = b.select(
            b.icmp(Predicate::SGT, score_d, score_u, "c.du"),
            score_d, score_u, "max.du");
        Value *best = b.select(
            b.icmp(Predicate::SGT, du, score_l, "c.dul"), du,
            score_l, "best");
        b.store(best, b.gep(i32, m,
                            b.add(i_base, lj.iv(), "o.idx"),
                            "p.o"));
        lj.close();
        li.close();
        b.ret();
        return fn;
    }

    void
    seed(ir::MemoryAccessor &mem, std::uint64_t base) const override
    {
        Lcg rng(53);
        for (unsigned i = 0; i < len; ++i) {
            std::uint8_t a = static_cast<std::uint8_t>(
                'A' + rng.nextBelow(4));
            std::uint8_t bb = static_cast<std::uint8_t>(
                'A' + rng.nextBelow(4));
            mem.writeBytes(base + i, 1, &a);
            mem.writeBytes(base + len + i, 1, &bb);
        }
    }

    std::vector<ir::RuntimeValue>
    args(std::uint64_t base) const override
    {
        return {RuntimeValue::fromPointer(base),
                RuntimeValue::fromPointer(base + len),
                RuntimeValue::fromPointer(base + 2ull * len)};
    }

    std::string
    check(ir::MemoryAccessor &mem, std::uint64_t base) const override
    {
        unsigned w = len + 1;
        std::uint64_t mbase = base + 2ull * len;
        std::vector<std::int32_t> golden(w * w);
        for (unsigned j = 0; j < w; ++j)
            golden[j] = static_cast<std::int32_t>(j) * gapScore;
        for (unsigned i = 0; i < w; ++i)
            golden[i * w] = static_cast<std::int32_t>(i) * gapScore;
        for (unsigned i = 1; i < w; ++i) {
            std::uint8_t ca;
            mem.readBytes(base + i - 1, 1, &ca);
            for (unsigned j = 1; j < w; ++j) {
                std::uint8_t cb;
                mem.readBytes(base + len + j - 1, 1, &cb);
                std::int32_t subst =
                    (ca == cb) ? matchScore : mismatchScore;
                std::int32_t best = std::max(
                    {golden[(i - 1) * w + j - 1] + subst,
                     golden[(i - 1) * w + j] + gapScore,
                     golden[i * w + j - 1] + gapScore});
                golden[i * w + j] = best;
            }
        }
        for (unsigned i = 0; i < w * w; ++i) {
            std::int32_t got = mem.readI32(mbase + 4ull * i);
            if (got != golden[i]) {
                std::ostringstream os;
                os << "nw mismatch at " << i / w << "," << i % w
                   << ": got " << got << " expected " << golden[i];
                return os.str();
            }
        }
        return "";
    }

  private:
    unsigned len;
};

} // namespace

std::unique_ptr<Kernel>
makeNw(unsigned length)
{
    return std::make_unique<NwKernel>(length);
}

} // namespace salam::kernels

/**
 * @file
 * FFT strided: in-place radix-2 over `size` doubles (MachSuite
 * fft/strided), with precomputed twiddle factors.
 *
 * Layout from base:
 *   real[size]       double
 *   img[size]        double
 *   real_twid[size/2] double
 *   img_twid[size/2]  double
 */

#include <cmath>
#include <sstream>
#include <vector>

#include "loop_util.hh"
#include "machsuite.hh"
#include "sim/logging.hh"

namespace salam::kernels
{

using namespace salam::ir;

namespace
{

class FftKernel : public Kernel
{
  public:
    explicit FftKernel(unsigned size) : size(size)
    {
        SALAM_ASSERT(size >= 4 && (size & (size - 1)) == 0);
    }

    std::string name() const override { return "fft-strided"; }

    std::uint64_t
    footprintBytes() const override
    {
        return 8ull * (2 * size + size);
    }

    ir::Function *
    build(ir::IRBuilder &b) const override
    {
        Context &ctx = b.context();
        const Type *f64 = ctx.doubleType();
        const Type *i64 = ctx.i64();
        Function *fn = b.createFunction("fft", ctx.voidType());
        Argument *real = fn->addArgument(ctx.pointerTo(f64), "real");
        Argument *img = fn->addArgument(ctx.pointerTo(f64), "img");
        Argument *rtw =
            fn->addArgument(ctx.pointerTo(f64), "real_twid");
        Argument *itw =
            fn->addArgument(ctx.pointerTo(f64), "img_twid");
        auto nn = static_cast<std::int64_t>(size);

        BasicBlock *entry = b.createBlock("entry");
        BasicBlock *span_head = b.createBlock("span");
        BasicBlock *odd_head = b.createBlock("odd");
        BasicBlock *twiddle = b.createBlock("twiddle");
        BasicBlock *odd_latch = b.createBlock("odd.latch");
        BasicBlock *span_latch = b.createBlock("span.latch");
        BasicBlock *exit = b.createBlock("exit");

        b.setInsertPoint(entry);
        b.br(span_head);

        // for (span = size >> 1; span; span >>= 1, log++)
        b.setInsertPoint(span_head);
        PhiInst *span = b.phi(i64, "span.iv");
        PhiInst *log = b.phi(i64, "log.iv");
        b.br(odd_head);

        // for (odd = span; odd < size; odd++) { odd |= span; ... }
        b.setInsertPoint(odd_head);
        PhiInst *odd_in = b.phi(i64, "odd.in");
        Value *odd = b.bOr(odd_in, span, "odd");
        Value *even = b.bXor(odd, span, "even");

        Value *p_re = b.gep(f64, real, even, "p.re");
        Value *p_ro = b.gep(f64, real, odd, "p.ro");
        Value *p_ie = b.gep(f64, img, even, "p.ie");
        Value *p_io = b.gep(f64, img, odd, "p.io");
        Value *re = b.load(p_re, "re");
        Value *ro = b.load(p_ro, "ro");
        Value *ie = b.load(p_ie, "ie");
        Value *io = b.load(p_io, "io");

        Value *tr = b.fadd(re, ro, "t.r");
        Value *nro = b.fsub(re, ro, "n.ro");
        b.store(nro, p_ro);
        b.store(tr, p_re);
        Value *ti = b.fadd(ie, io, "t.i");
        Value *nio = b.fsub(ie, io, "n.io");
        b.store(nio, p_io);
        b.store(ti, p_ie);

        // rootindex = (even << log) & (size - 1)
        Value *root = b.bAnd(b.shl(even, log, "ev.shift"),
                             b.constI64(nn - 1), "rootindex");
        Value *has_root = b.icmp(Predicate::NE, root,
                                 b.constI64(0), "has.root");
        b.condBr(has_root, twiddle, odd_latch);

        b.setInsertPoint(twiddle);
        Value *twr = b.load(b.gep(f64, rtw, root, "p.twr"), "twr");
        Value *twi = b.load(b.gep(f64, itw, root, "p.twi"), "twi");
        // Reload the butterfly results (they were just stored).
        Value *cur_ro = b.load(p_ro, "cur.ro");
        Value *cur_io = b.load(p_io, "cur.io");
        Value *new_ro = b.fsub(b.fmul(twr, cur_ro, "a1"),
                               b.fmul(twi, cur_io, "a2"), "new.ro");
        Value *new_io = b.fadd(b.fmul(twr, cur_io, "a3"),
                               b.fmul(twi, cur_ro, "a4"), "new.io");
        b.store(new_io, p_io);
        b.store(new_ro, p_ro);
        b.br(odd_latch);

        b.setInsertPoint(odd_latch);
        Value *odd_next = b.add(odd, b.constI64(1), "odd.next");
        Value *odd_cont = b.icmp(Predicate::SLT, odd_next,
                                 b.constI64(nn), "odd.cont");
        b.condBr(odd_cont, odd_head, span_latch);
        odd_in->addIncoming(span, span_head);
        odd_in->addIncoming(odd_next, odd_latch);

        b.setInsertPoint(span_latch);
        Value *span_next =
            b.lshr(span, b.constI64(1), "span.next");
        Value *log_next = b.add(log, b.constI64(1), "log.next");
        Value *span_cont = b.icmp(Predicate::SGT, span_next,
                                  b.constI64(0), "span.cont");
        b.condBr(span_cont, span_head, exit);
        span->addIncoming(b.constI64(nn >> 1), entry);
        span->addIncoming(span_next, span_latch);
        log->addIncoming(b.constI64(0), entry);
        log->addIncoming(log_next, span_latch);

        b.setInsertPoint(exit);
        b.ret();
        return fn;
    }

    void
    seed(ir::MemoryAccessor &mem, std::uint64_t base) const override
    {
        Lcg rng(23);
        std::uint64_t real = base;
        std::uint64_t img = base + 8ull * size;
        std::uint64_t rtw = img + 8ull * size;
        std::uint64_t itw = rtw + 8ull * (size / 2);
        for (unsigned i = 0; i < size; ++i) {
            mem.writeF64(real + 8ull * i, rng.nextDouble() - 0.5);
            mem.writeF64(img + 8ull * i, rng.nextDouble() - 0.5);
        }
        for (unsigned i = 0; i < size / 2; ++i) {
            double angle = -2.0 * M_PI * static_cast<double>(i) /
                static_cast<double>(size);
            mem.writeF64(rtw + 8ull * i, std::cos(angle));
            mem.writeF64(itw + 8ull * i, std::sin(angle));
        }
    }

    std::vector<ir::RuntimeValue>
    args(std::uint64_t base) const override
    {
        std::uint64_t real = base;
        std::uint64_t img = base + 8ull * size;
        std::uint64_t rtw = img + 8ull * size;
        std::uint64_t itw = rtw + 8ull * (size / 2);
        return {RuntimeValue::fromPointer(real),
                RuntimeValue::fromPointer(img),
                RuntimeValue::fromPointer(rtw),
                RuntimeValue::fromPointer(itw)};
    }

    std::string
    check(ir::MemoryAccessor &mem, std::uint64_t base) const override
    {
        // Golden: re-run the same strided algorithm on a copy of
        // the ORIGINAL inputs. Since the kernel is in-place, we
        // reconstruct the inputs from the seed (deterministic).
        std::vector<double> re(size), im(size), twr(size / 2),
            twi(size / 2);
        Lcg rng(23);
        for (unsigned i = 0; i < size; ++i) {
            re[i] = rng.nextDouble() - 0.5;
            im[i] = rng.nextDouble() - 0.5;
        }
        for (unsigned i = 0; i < size / 2; ++i) {
            double angle = -2.0 * M_PI * static_cast<double>(i) /
                static_cast<double>(size);
            twr[i] = std::cos(angle);
            twi[i] = std::sin(angle);
        }

        unsigned log = 0;
        for (unsigned span = size >> 1; span; span >>= 1, ++log) {
            for (unsigned odd = span; odd < size; ++odd) {
                odd |= span;
                unsigned even = odd ^ span;
                double temp = re[even] + re[odd];
                re[odd] = re[even] - re[odd];
                re[even] = temp;
                temp = im[even] + im[odd];
                im[odd] = im[even] - im[odd];
                im[even] = temp;
                unsigned root = (even << log) & (size - 1);
                if (root) {
                    temp = twr[root] * re[odd] -
                        twi[root] * im[odd];
                    im[odd] = twr[root] * im[odd] +
                        twi[root] * re[odd];
                    re[odd] = temp;
                }
            }
        }

        for (unsigned i = 0; i < size; ++i) {
            double got_re = mem.readF64(base + 8ull * i);
            double got_im = mem.readF64(base + 8ull * (size + i));
            if (std::abs(got_re - re[i]) > 1e-9 ||
                std::abs(got_im - im[i]) > 1e-9) {
                std::ostringstream os;
                os << "fft mismatch at " << i << ": got ("
                   << got_re << "," << got_im << ") expected ("
                   << re[i] << "," << im[i] << ")";
                return os.str();
            }
        }
        return "";
    }

  private:
    unsigned size;
};

} // namespace

std::unique_ptr<Kernel>
makeFft(unsigned size)
{
    return std::make_unique<FftKernel>(size);
}

} // namespace salam::kernels

/**
 * @file
 * CNN layer kernels (float): conv2d 3x3 valid, ReLU, max-pool 2x2.
 *
 * Used by the Sec. IV-E multi-accelerator scenarios. Each kernel can
 * address its input/output either as a normal array (private or
 * shared SPM) or as a fixed-address FIFO port (stream buffer); the
 * stream flags switch the addressing, nothing else — demonstrating
 * the decoupling of datapath from communication interface.
 *
 * conv2d layout: in[w*h], weights[9], out[(w-2)*(h-2)].
 * relu layout:   in[count], out[count].
 * maxpool:       in[w*h], rowbuf[2*w] (scratch), out[(w/2)*(h/2)].
 */

#include <algorithm>
#include <cmath>
#include <sstream>
#include <vector>

#include "loop_util.hh"
#include "machsuite.hh"

namespace salam::kernels
{

using namespace salam::ir;

namespace
{

/** Index helper: stream side uses the fixed port slot 0. */
Value *
portIndex(IRBuilder &b, bool stream, Value *idx)
{
    return stream ? static_cast<Value *>(b.constI64(0)) : idx;
}

class Conv2dKernel : public Kernel
{
  public:
    Conv2dKernel(unsigned w, unsigned h, bool stream_out)
        : w(w), h(h), streamOut(stream_out)
    {}

    std::string name() const override { return "conv2d"; }

    unsigned outW() const { return w - 2; }

    unsigned outH() const { return h - 2; }

    std::uint64_t
    footprintBytes() const override
    {
        return 4ull * (w * h + 9 + outW() * outH());
    }

    ir::Function *
    build(ir::IRBuilder &b) const override
    {
        Context &ctx = b.context();
        const Type *f32 = ctx.floatType();
        Function *fn = b.createFunction("conv2d", ctx.voidType());
        Argument *in = fn->addArgument(ctx.pointerTo(f32), "in");
        Argument *wts =
            fn->addArgument(ctx.pointerTo(f32), "weights");
        Argument *out = fn->addArgument(ctx.pointerTo(f32), "out");

        BasicBlock *entry = b.createBlock("entry");
        b.setInsertPoint(entry);
        std::vector<Value *> k;
        for (int i = 0; i < 9; ++i)
            k.push_back(
                b.load(b.gep(f32, wts, b.constI64(i)), "w"));

        OuterLoop lr(b, "r", 0, outH());
        Value *r_base = b.mul(
            lr.iv(), b.constI64(static_cast<std::int64_t>(w)),
            "r.base");
        Value *o_base = b.mul(
            lr.iv(),
            b.constI64(static_cast<std::int64_t>(outW())),
            "o.base");

        InnerLoop lc(b, "c", 0, outW());
        Value *acc = nullptr;
        for (int k1 = 0; k1 < 3; ++k1) {
            for (int k2 = 0; k2 < 3; ++k2) {
                Value *idx = b.add(
                    b.add(r_base, lc.iv(), "rc"),
                    b.constI64(k1 * static_cast<std::int64_t>(w) +
                               k2),
                    "idx");
                Value *v = b.load(b.gep(f32, in, idx, "p.v"), "v");
                Value *prod = b.fmul(
                    k[static_cast<std::size_t>(k1 * 3 + k2)], v,
                    "prod");
                acc = acc ? b.fadd(acc, prod, "acc") : prod;
            }
        }
        Value *o_idx = b.add(o_base, lc.iv(), "o.idx");
        b.store(acc, b.gep(f32, out,
                           portIndex(b, streamOut, o_idx),
                           "p.out"));
        lc.close();
        lr.close();
        b.ret();
        return fn;
    }

    void
    seed(ir::MemoryAccessor &mem, std::uint64_t base) const override
    {
        Lcg rng(97);
        for (unsigned i = 0; i < w * h; ++i) {
            mem.writeF32(base + 4ull * i,
                         static_cast<float>(rng.nextDouble()) -
                             0.5f);
        }
        std::uint64_t wts = base + 4ull * w * h;
        for (unsigned i = 0; i < 9; ++i) {
            mem.writeF32(wts + 4ull * i,
                         static_cast<float>(rng.nextDouble()) -
                             0.5f);
        }
    }

    std::vector<ir::RuntimeValue>
    args(std::uint64_t base) const override
    {
        return {RuntimeValue::fromPointer(base),
                RuntimeValue::fromPointer(base + 4ull * w * h),
                RuntimeValue::fromPointer(base + 4ull * w * h +
                                          36)};
    }

    /** Golden conv output for element (r, c). */
    float
    golden(ir::MemoryAccessor &mem, std::uint64_t base, unsigned r,
           unsigned c) const
    {
        std::uint64_t wts = base + 4ull * w * h;
        float acc = 0.0f;
        for (unsigned k1 = 0; k1 < 3; ++k1) {
            for (unsigned k2 = 0; k2 < 3; ++k2) {
                acc += mem.readF32(wts + 4ull * (k1 * 3 + k2)) *
                    mem.readF32(base +
                                4ull * ((r + k1) * w + c + k2));
            }
        }
        return acc;
    }

    std::string
    check(ir::MemoryAccessor &mem, std::uint64_t base) const override
    {
        if (streamOut)
            return ""; // outputs left in the stream; checked there
        std::uint64_t out = base + 4ull * w * h + 36;
        for (unsigned r = 0; r < outH(); ++r) {
            for (unsigned c = 0; c < outW(); ++c) {
                float got =
                    mem.readF32(out + 4ull * (r * outW() + c));
                float expected = golden(mem, base, r, c);
                if (std::abs(got - expected) > 1e-5f) {
                    std::ostringstream os;
                    os << "conv2d mismatch at (" << r << "," << c
                       << ")";
                    return os.str();
                }
            }
        }
        return "";
    }

    std::vector<opt::PassSpec>
    defaultPasses() const override
    {
        return {opt::PassSpec::unroll("c", 6),
                opt::PassSpec::balance(),
                opt::PassSpec::cleanup()};
    }

  private:
    unsigned w, h;
    bool streamOut;
};

class ReluKernel : public Kernel
{
  public:
    ReluKernel(unsigned count, bool stream_in, bool stream_out)
        : count(count), streamIn(stream_in), streamOut(stream_out)
    {}

    std::string name() const override { return "relu"; }

    std::uint64_t
    footprintBytes() const override
    {
        return 8ull * count;
    }

    ir::Function *
    build(ir::IRBuilder &b) const override
    {
        Context &ctx = b.context();
        const Type *f32 = ctx.floatType();
        Function *fn = b.createFunction("relu", ctx.voidType());
        Argument *in = fn->addArgument(ctx.pointerTo(f32), "in");
        Argument *out = fn->addArgument(ctx.pointerTo(f32), "out");

        BasicBlock *entry = b.createBlock("entry");
        b.setInsertPoint(entry);
        InnerLoop li(b, "i", 0, count);
        Value *v = b.load(b.gep(f32, in,
                                portIndex(b, streamIn, li.iv()),
                                "p.in"),
                          "v");
        Value *neg = b.fcmp(Predicate::OLT, v,
                            b.constFloat(0.0f), "neg");
        Value *r = b.select(neg, b.constFloat(0.0f), v, "r");
        b.store(r, b.gep(f32, out,
                         portIndex(b, streamOut, li.iv()),
                         "p.out"));
        li.close();
        b.ret();
        return fn;
    }

    void
    seed(ir::MemoryAccessor &mem, std::uint64_t base) const override
    {
        Lcg rng(101);
        for (unsigned i = 0; i < count; ++i) {
            mem.writeF32(base + 4ull * i,
                         static_cast<float>(rng.nextDouble()) -
                             0.5f);
        }
    }

    std::vector<ir::RuntimeValue>
    args(std::uint64_t base) const override
    {
        return {RuntimeValue::fromPointer(base),
                RuntimeValue::fromPointer(base + 4ull * count)};
    }

    std::vector<opt::PassSpec>
    defaultPasses() const override
    {
        return {opt::PassSpec::unroll("i", 4),
                opt::PassSpec::cleanup()};
    }

    std::string
    check(ir::MemoryAccessor &mem, std::uint64_t base) const override
    {
        if (streamIn || streamOut)
            return "";
        for (unsigned i = 0; i < count; ++i) {
            float in = mem.readF32(base + 4ull * i);
            float got = mem.readF32(base + 4ull * (count + i));
            float expected = in < 0.0f ? 0.0f : in;
            if (got != expected) {
                std::ostringstream os;
                os << "relu mismatch at " << i;
                return os.str();
            }
        }
        return "";
    }

  private:
    unsigned count;
    bool streamIn, streamOut;
};

class MaxPoolKernel : public Kernel
{
  public:
    MaxPoolKernel(unsigned w, unsigned h, bool stream_in,
                  bool stream_out)
        : w(w), h(h), streamIn(stream_in), streamOut(stream_out)
    {}

    std::string name() const override { return "maxpool"; }

    unsigned outW() const { return w / 2; }

    unsigned outH() const { return h / 2; }

    std::uint64_t
    footprintBytes() const override
    {
        return 4ull * (w * h + 2 * w + outW() * outH());
    }

    ir::Function *
    build(ir::IRBuilder &b) const override
    {
        Context &ctx = b.context();
        const Type *f32 = ctx.floatType();
        Function *fn = b.createFunction("maxpool", ctx.voidType());
        Argument *in = fn->addArgument(ctx.pointerTo(f32), "in");
        Argument *rowbuf =
            fn->addArgument(ctx.pointerTo(f32), "rowbuf");
        Argument *out = fn->addArgument(ctx.pointerTo(f32), "out");
        auto ww = static_cast<std::int64_t>(w);

        BasicBlock *entry = b.createBlock("entry");
        b.setInsertPoint(entry);

        OuterLoop lr(b, "rowpair", 0, outH());

        // Stage 1: stage two input rows into the row buffer. When
        // the input is a stream this is the only way to get random
        // access for the 2x2 window.
        Value *in_base = b.mul(lr.iv(), b.constI64(2 * ww),
                               "in.base");
        InnerLoop lf(b, "fill", 0, 2 * static_cast<std::int64_t>(w));
        Value *src_idx = b.add(in_base, lf.iv(), "src.idx");
        Value *v = b.load(b.gep(f32, in,
                                portIndex(b, streamIn, src_idx),
                                "p.src"),
                          "v");
        b.store(v, b.gep(f32, rowbuf, lf.iv(), "p.buf"));
        lf.close();

        // Stage 2: pool 2x2 windows out of the row buffer.
        Value *o_base = b.mul(
            lr.iv(),
            b.constI64(static_cast<std::int64_t>(outW())),
            "o.base");
        InnerLoop lc(b, "pool", 0, outW());
        Value *c2 = b.mul(lc.iv(), b.constI64(2), "c2");
        Value *a = b.load(b.gep(f32, rowbuf, c2, "p.a"), "a");
        Value *bb = b.load(
            b.gep(f32, rowbuf, b.add(c2, b.constI64(1), "c2b"),
                  "p.b"),
            "bv");
        Value *c = b.load(
            b.gep(f32, rowbuf, b.add(c2, b.constI64(ww), "c2c"),
                  "p.c"),
            "cv");
        Value *d = b.load(
            b.gep(f32, rowbuf,
                  b.add(c2, b.constI64(ww + 1), "c2d"), "p.d"),
            "dv");
        Value *m1 = b.select(b.fcmp(Predicate::OGT, a, bb, "c.ab"),
                             a, bb, "m1");
        Value *m2 = b.select(b.fcmp(Predicate::OGT, c, d, "c.cd"),
                             c, d, "m2");
        Value *m = b.select(b.fcmp(Predicate::OGT, m1, m2, "c.m"),
                            m1, m2, "m");
        Value *o_idx = b.add(o_base, lc.iv(), "o.idx");
        b.store(m, b.gep(f32, out,
                         portIndex(b, streamOut, o_idx),
                         "p.out"));
        lc.close();
        lr.close();
        b.ret();
        return fn;
    }

    void
    seed(ir::MemoryAccessor &mem, std::uint64_t base) const override
    {
        Lcg rng(103);
        for (unsigned i = 0; i < w * h; ++i) {
            mem.writeF32(base + 4ull * i,
                         static_cast<float>(rng.nextDouble()) -
                             0.5f);
        }
    }

    std::vector<ir::RuntimeValue>
    args(std::uint64_t base) const override
    {
        std::uint64_t rowbuf = base + 4ull * w * h;
        std::uint64_t out = rowbuf + 4ull * 2 * w;
        return {RuntimeValue::fromPointer(base),
                RuntimeValue::fromPointer(rowbuf),
                RuntimeValue::fromPointer(out)};
    }

    std::vector<opt::PassSpec>
    defaultPasses() const override
    {
        return {opt::PassSpec::unroll("fill", 4),
                opt::PassSpec::unroll("pool", 3),
                opt::PassSpec::cleanup()};
    }

    std::string
    check(ir::MemoryAccessor &mem, std::uint64_t base) const override
    {
        if (streamIn || streamOut)
            return "";
        std::uint64_t out = base + 4ull * w * h + 4ull * 2 * w;
        for (unsigned r = 0; r < outH(); ++r) {
            for (unsigned c = 0; c < outW(); ++c) {
                float expected = std::max(
                    {mem.readF32(base +
                                 4ull * (2 * r * w + 2 * c)),
                     mem.readF32(base +
                                 4ull * (2 * r * w + 2 * c + 1)),
                     mem.readF32(
                         base + 4ull * ((2 * r + 1) * w + 2 * c)),
                     mem.readF32(base +
                                 4ull * ((2 * r + 1) * w + 2 * c +
                                         1))});
                float got =
                    mem.readF32(out + 4ull * (r * outW() + c));
                if (got != expected) {
                    std::ostringstream os;
                    os << "maxpool mismatch at (" << r << "," << c
                       << ")";
                    return os.str();
                }
            }
        }
        return "";
    }

  private:
    unsigned w, h;
    bool streamIn, streamOut;
};

} // namespace

std::unique_ptr<Kernel>
makeConv2d(unsigned width, unsigned height, bool stream_out)
{
    return std::make_unique<Conv2dKernel>(width, height,
                                          stream_out);
}

std::unique_ptr<Kernel>
makeRelu(unsigned count, bool stream_in, bool stream_out)
{
    return std::make_unique<ReluKernel>(count, stream_in,
                                        stream_out);
}

std::unique_ptr<Kernel>
makeMaxPool(unsigned width, unsigned height, bool stream_in,
            bool stream_out)
{
    return std::make_unique<MaxPoolKernel>(width, height, stream_in,
                                           stream_out);
}

} // namespace salam::kernels

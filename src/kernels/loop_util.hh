/**
 * @file
 * Loop-construction helpers for kernel builders.
 *
 * Kernels are written in the canonical rotated-loop shape the
 * optimizer and unroller understand: counted do-while loops with the
 * induction variable advanced at the bottom. InnerLoop keeps the
 * whole body in the header block (unrollable); OuterLoop gives the
 * body its own region and advances the induction variable in a
 * dedicated latch block.
 */

#ifndef SALAM_KERNELS_LOOP_UTIL_HH
#define SALAM_KERNELS_LOOP_UTIL_HH

#include <utility>
#include <vector>

#include "ir/ir_builder.hh"
#include "sim/logging.hh"

namespace salam::kernels
{

/** Accumulator wiring: phi and its per-iteration update value. */
using PhiUpdate = std::pair<ir::PhiInst *, ir::Value *>;

/**
 * A counted single-block loop. Construct with the builder positioned
 * in the (unterminated) preheader; emit the body; then close().
 * After close() the builder is positioned in the exit block.
 */
class InnerLoop
{
  public:
    InnerLoop(ir::IRBuilder &b, const std::string &label,
              std::int64_t begin, std::int64_t end,
              std::int64_t step = 1)
        : b(b), begin(begin), end(end), step(step)
    {
        pre = b.insertBlock();
        head = b.createBlock(label);
        exitBlock = b.createBlock(label + ".exit");
        b.br(head);
        b.setInsertPoint(head);
        ivPhi = b.phi(b.context().i64(), label + ".iv");
    }

    /** The induction variable, valid inside the body. */
    ir::Value *iv() const { return ivPhi; }

    /** Create a loop-carried accumulator with the given init. */
    ir::PhiInst *
    accumulator(const ir::Type *type, const std::string &name)
    {
        auto *phi = b.phi(type, name);
        return phi;
    }

    /**
     * Terminate the loop. @p accums wires each accumulator phi to
     * its update value; initial values are supplied here too.
     */
    void
    close(const std::vector<PhiUpdate> &accums = {},
          const std::vector<ir::Value *> &accum_inits = {})
    {
        using namespace salam::ir;
        Context &ctx = b.context();
        Value *iv_next =
            b.add(ivPhi, b.constI64(step), ivPhi->name() + ".next");
        Value *cond = b.icmp(Predicate::SLT, iv_next,
                             b.constI64(end),
                             ivPhi->name() + ".cond");
        b.condBr(cond, head, exitBlock);
        ivPhi->addIncoming(b.constI64(begin), pre);
        ivPhi->addIncoming(iv_next, head);
        SALAM_ASSERT(accums.size() == accum_inits.size());
        for (std::size_t i = 0; i < accums.size(); ++i) {
            accums[i].first->addIncoming(accum_inits[i], pre);
            accums[i].first->addIncoming(accums[i].second, head);
        }
        (void)ctx;
        b.setInsertPoint(exitBlock);
    }

    ir::BasicBlock *headBlock() const { return head; }

  private:
    ir::IRBuilder &b;
    ir::BasicBlock *pre;
    ir::BasicBlock *head;
    ir::BasicBlock *exitBlock;
    ir::PhiInst *ivPhi;
    std::int64_t begin, end, step;
};

/**
 * A counted loop whose body spans multiple blocks (e.g. contains
 * inner loops). The header holds the induction phi; the body region
 * must eventually leave the builder positioned in an unterminated
 * block, from which close() branches to the latch.
 */
class OuterLoop
{
  public:
    OuterLoop(ir::IRBuilder &b, const std::string &label,
              std::int64_t begin, std::int64_t end,
              std::int64_t step = 1)
        : b(b), begin(begin), end(end), step(step)
    {
        pre = b.insertBlock();
        head = b.createBlock(label);
        latch = b.createBlock(label + ".latch");
        exitBlock = b.createBlock(label + ".exit");
        b.br(head);
        b.setInsertPoint(head);
        ivPhi = b.phi(b.context().i64(), label + ".iv");
    }

    ir::Value *iv() const { return ivPhi; }

    ir::BasicBlock *latchBlock() const { return latch; }

    /**
     * Branch from the current block into the latch and close the
     * loop; leaves the builder in the exit block.
     */
    void
    close()
    {
        using namespace salam::ir;
        b.br(latch);
        b.setInsertPoint(latch);
        Value *iv_next =
            b.add(ivPhi, b.constI64(step), ivPhi->name() + ".next");
        Value *cond = b.icmp(Predicate::SLT, iv_next,
                             b.constI64(end),
                             ivPhi->name() + ".cond");
        b.condBr(cond, head, exitBlock);
        ivPhi->addIncoming(b.constI64(begin), pre);
        ivPhi->addIncoming(iv_next, latch);
        b.setInsertPoint(exitBlock);
    }

  private:
    ir::IRBuilder &b;
    ir::BasicBlock *pre;
    ir::BasicBlock *head;
    ir::BasicBlock *latch;
    ir::BasicBlock *exitBlock;
    ir::PhiInst *ivPhi;
    std::int64_t begin, end, step;
};

} // namespace salam::kernels

#endif // SALAM_KERNELS_LOOP_UTIL_HH

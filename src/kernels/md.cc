/**
 * @file
 * Molecular dynamics kernels (double precision): MD-KNN and MD-Grid,
 * both computing Lennard-Jones forces — the FP-heaviest kernels in
 * the suite, which drive the functional-unit-reuse validation.
 *
 * MD-KNN layout: x,y,z [atoms], NL [atoms*neighbours] i64,
 *                fx,fy,fz [atoms].
 * MD-Grid layout: nPoints [b^3] i64, position [b^3*density*3],
 *                 force [b^3*density*3].
 */

#include <cmath>
#include <sstream>
#include <vector>

#include "loop_util.hh"
#include "machsuite.hh"

namespace salam::kernels
{

using namespace salam::ir;

namespace
{

constexpr double lj1 = 1.5;
constexpr double lj2 = 2.0;

class MdKnnKernel : public Kernel
{
  public:
    MdKnnKernel(unsigned atoms, unsigned neighbours, unsigned unroll)
        : atoms(atoms), nl(neighbours), unroll(unroll)
    {}

    std::string name() const override { return "md-knn"; }

    std::uint64_t
    footprintBytes() const override
    {
        return 8ull * (6 * atoms + atoms * nl);
    }

    ir::Function *
    build(ir::IRBuilder &b) const override
    {
        Context &ctx = b.context();
        const Type *f64 = ctx.doubleType();
        const Type *i64 = ctx.i64();
        Function *fn = b.createFunction("md_knn", ctx.voidType());
        Argument *ax = fn->addArgument(ctx.pointerTo(f64), "x");
        Argument *ay = fn->addArgument(ctx.pointerTo(f64), "y");
        Argument *az = fn->addArgument(ctx.pointerTo(f64), "z");
        Argument *anl = fn->addArgument(ctx.pointerTo(i64), "NL");
        Argument *afx = fn->addArgument(ctx.pointerTo(f64), "fx");
        Argument *afy = fn->addArgument(ctx.pointerTo(f64), "fy");
        Argument *afz = fn->addArgument(ctx.pointerTo(f64), "fz");

        BasicBlock *entry = b.createBlock("entry");
        b.setInsertPoint(entry);

        OuterLoop li(b, "atom", 0, atoms);
        Value *ix = b.load(b.gep(f64, ax, li.iv(), "p.ix"), "ix");
        Value *iy = b.load(b.gep(f64, ay, li.iv(), "p.iy"), "iy");
        Value *iz = b.load(b.gep(f64, az, li.iv(), "p.iz"), "iz");
        Value *nl_base = b.mul(
            li.iv(), b.constI64(static_cast<std::int64_t>(nl)),
            "nl.base");

        InnerLoop lj(b, "neigh", 0, nl);
        PhiInst *fx = lj.accumulator(f64, "fx.acc");
        PhiInst *fy = lj.accumulator(f64, "fy.acc");
        PhiInst *fz = lj.accumulator(f64, "fz.acc");
        Value *nl_idx = b.add(nl_base, lj.iv(), "nl.idx");
        Value *n = b.load(b.gep(i64, anl, nl_idx, "p.n"), "n");
        Value *jx = b.load(b.gep(f64, ax, n, "p.jx"), "jx");
        Value *jy = b.load(b.gep(f64, ay, n, "p.jy"), "jy");
        Value *jz = b.load(b.gep(f64, az, n, "p.jz"), "jz");
        Value *dx = b.fsub(ix, jx, "dx");
        Value *dy = b.fsub(iy, jy, "dy");
        Value *dz = b.fsub(iz, jz, "dz");
        Value *r2 = b.fadd(
            b.fadd(b.fmul(dx, dx, "dx2"), b.fmul(dy, dy, "dy2"),
                   "dxy"),
            b.fmul(dz, dz, "dz2"), "r2");
        Value *r2inv =
            b.fdiv(b.constDouble(1.0), r2, "r2inv");
        Value *r6inv = b.fmul(b.fmul(r2inv, r2inv, "r4inv"),
                              r2inv, "r6inv");
        Value *pot = b.fmul(
            r6inv,
            b.fsub(b.fmul(b.constDouble(lj1), r6inv, "lj1r6"),
                   b.constDouble(lj2), "potdiff"),
            "potential");
        Value *force = b.fmul(r2inv, pot, "force");
        Value *fx_next =
            b.fadd(fx, b.fmul(force, dx, "fxd"), "fx.next");
        Value *fy_next =
            b.fadd(fy, b.fmul(force, dy, "fyd"), "fy.next");
        Value *fz_next =
            b.fadd(fz, b.fmul(force, dz, "fzd"), "fz.next");
        lj.close({{fx, fx_next}, {fy, fy_next}, {fz, fz_next}},
                 {b.constDouble(0.0), b.constDouble(0.0),
                  b.constDouble(0.0)});

        b.store(fx_next, b.gep(f64, afx, li.iv(), "p.fx"));
        b.store(fy_next, b.gep(f64, afy, li.iv(), "p.fy"));
        b.store(fz_next, b.gep(f64, afz, li.iv(), "p.fz"));
        li.close();
        b.ret();
        return fn;
    }

    void
    seed(ir::MemoryAccessor &mem, std::uint64_t base) const override
    {
        Lcg rng(61);
        std::uint64_t x = base, y = x + 8ull * atoms,
                      z = y + 8ull * atoms;
        std::uint64_t nlp = z + 8ull * atoms;
        for (unsigned i = 0; i < atoms; ++i) {
            mem.writeF64(x + 8ull * i, rng.nextDouble() * 10.0);
            mem.writeF64(y + 8ull * i, rng.nextDouble() * 10.0);
            mem.writeF64(z + 8ull * i, rng.nextDouble() * 10.0);
        }
        for (unsigned i = 0; i < atoms; ++i) {
            for (unsigned j = 0; j < nl; ++j) {
                std::uint64_t other;
                do {
                    other = rng.nextBelow(atoms);
                } while (other == i);
                mem.writeI64(nlp + 8ull * (i * nl + j),
                             static_cast<std::int64_t>(other));
            }
        }
    }

    std::vector<ir::RuntimeValue>
    args(std::uint64_t base) const override
    {
        std::uint64_t x = base, y = x + 8ull * atoms,
                      z = y + 8ull * atoms;
        std::uint64_t nlp = z + 8ull * atoms;
        std::uint64_t fx = nlp + 8ull * atoms * nl;
        std::uint64_t fy = fx + 8ull * atoms;
        std::uint64_t fz = fy + 8ull * atoms;
        return {RuntimeValue::fromPointer(x),
                RuntimeValue::fromPointer(y),
                RuntimeValue::fromPointer(z),
                RuntimeValue::fromPointer(nlp),
                RuntimeValue::fromPointer(fx),
                RuntimeValue::fromPointer(fy),
                RuntimeValue::fromPointer(fz)};
    }

    std::string
    check(ir::MemoryAccessor &mem, std::uint64_t base) const override
    {
        std::uint64_t x = base, y = x + 8ull * atoms,
                      z = y + 8ull * atoms;
        std::uint64_t nlp = z + 8ull * atoms;
        std::uint64_t fx = nlp + 8ull * atoms * nl;
        std::uint64_t fy = fx + 8ull * atoms;
        std::uint64_t fz = fy + 8ull * atoms;
        for (unsigned i = 0; i < atoms; ++i) {
            double ix = mem.readF64(x + 8ull * i);
            double iy = mem.readF64(y + 8ull * i);
            double iz = mem.readF64(z + 8ull * i);
            double efx = 0, efy = 0, efz = 0;
            for (unsigned j = 0; j < nl; ++j) {
                auto n = static_cast<std::uint64_t>(
                    mem.readI64(nlp + 8ull * (i * nl + j)));
                double dx = ix - mem.readF64(x + 8ull * n);
                double dy = iy - mem.readF64(y + 8ull * n);
                double dz = iz - mem.readF64(z + 8ull * n);
                double r2 = dx * dx + dy * dy + dz * dz;
                double r2inv = 1.0 / r2;
                double r6inv = r2inv * r2inv * r2inv;
                double pot = r6inv * (lj1 * r6inv - lj2);
                double force = r2inv * pot;
                efx += force * dx;
                efy += force * dy;
                efz += force * dz;
            }
            double tol = 1e-9;
            if (std::abs(mem.readF64(fx + 8ull * i) - efx) > tol ||
                std::abs(mem.readF64(fy + 8ull * i) - efy) > tol ||
                std::abs(mem.readF64(fz + 8ull * i) - efz) > tol) {
                std::ostringstream os;
                os << "md-knn mismatch at atom " << i;
                return os.str();
            }
        }
        return "";
    }

    std::vector<opt::PassSpec>
    defaultPasses() const override
    {
        std::vector<opt::PassSpec> passes;
        if (unroll > 1) {
            passes.push_back(
                opt::PassSpec::unroll("neigh", unroll));
            passes.push_back(opt::PassSpec::balance());
        }
        passes.push_back(opt::PassSpec::cleanup());
        return passes;
    }

  private:
    unsigned atoms, nl, unroll;
};

/**
 * MD-Grid: forces between particles of a block and its (up to 27)
 * neighbouring blocks in a 3D domain. Per-block populations come
 * from memory, so inner trip counts are data-dependent.
 */
class MdGridKernel : public Kernel
{
  public:
    MdGridKernel(unsigned side, unsigned density)
        : side(side), density(density)
    {}

    std::string name() const override { return "md-grid"; }

    unsigned numBlocks() const { return side * side * side; }

    std::uint64_t
    footprintBytes() const override
    {
        return 8ull * numBlocks() +
               8ull * 3 * numBlocks() * density * 2;
    }

    ir::Function *
    build(ir::IRBuilder &b) const override
    {
        Context &ctx = b.context();
        const Type *f64 = ctx.doubleType();
        const Type *i64 = ctx.i64();
        Function *fn = b.createFunction("md_grid", ctx.voidType());
        Argument *np = fn->addArgument(ctx.pointerTo(i64),
                                       "nPoints");
        Argument *pos = fn->addArgument(ctx.pointerTo(f64),
                                        "position");
        Argument *frc = fn->addArgument(ctx.pointerTo(f64),
                                        "force");

        auto s = static_cast<std::int64_t>(side);
        auto dens = static_cast<std::int64_t>(density);

        BasicBlock *entry = b.createBlock("entry");
        b.setInsertPoint(entry);

        // Iterate home blocks (flat index) and neighbour offsets.
        OuterLoop lb(b, "block", 0, numBlocks());
        Value *bx = b.sdiv(lb.iv(), b.constI64(s * s), "bx");
        Value *brem = b.srem(lb.iv(), b.constI64(s * s), "brem");
        Value *by = b.sdiv(brem, b.constI64(s), "by");
        Value *bz = b.srem(brem, b.constI64(s), "bz");
        Value *home_n = b.load(b.gep(i64, np, lb.iv(), "p.hn"),
                               "home.n");
        Value *home_base = b.mul(lb.iv(), b.constI64(dens),
                                 "home.base");

        OuterLoop ln(b, "neighbour", 0, 27);
        Value *ox = b.sub(b.sdiv(ln.iv(), b.constI64(9), "oxd"),
                          b.constI64(1), "ox");
        Value *orem = b.srem(ln.iv(), b.constI64(9), "orem");
        Value *oy = b.sub(b.sdiv(orem, b.constI64(3), "oyd"),
                          b.constI64(1), "oy");
        Value *oz = b.sub(b.srem(orem, b.constI64(3), "ozr"),
                          b.constI64(1), "oz");
        Value *nx = b.add(bx, ox, "nx");
        Value *ny = b.add(by, oy, "ny");
        Value *nz = b.add(bz, oz, "nz");

        // Bounds check: all of nx/ny/nz in [0, side).
        auto in_range = [&](Value *v, const char *nm) {
            Value *ge = b.icmp(Predicate::SGE, v, b.constI64(0),
                               std::string(nm) + ".ge");
            Value *lt = b.icmp(Predicate::SLT, v, b.constI64(s),
                               std::string(nm) + ".lt");
            return b.bAnd(ge, lt, std::string(nm) + ".ok");
        };
        Value *ok = b.bAnd(
            b.bAnd(in_range(nx, "nx"), in_range(ny, "ny"), "oka"),
            in_range(nz, "nz"), "ok");

        BasicBlock *compute = b.createBlock("compute");
        BasicBlock *skip = b.createBlock("skip");
        b.condBr(ok, compute, skip);

        b.setInsertPoint(compute);
        Value *nb_idx = b.add(
            b.add(b.mul(nx, b.constI64(s * s), "nxs"),
                  b.mul(ny, b.constI64(s), "nys"), "nxy"),
            nz, "nb.idx");
        Value *nb_n = b.load(b.gep(i64, np, nb_idx, "p.nn"),
                             "nb.n");
        Value *nb_base = b.mul(nb_idx, b.constI64(dens),
                               "nb.base");

        // Guard against empty home block.
        BasicBlock *home_loop = b.createBlock("home");
        BasicBlock *compute_done = b.createBlock("compute.done");
        Value *has_home = b.icmp(Predicate::SGT, home_n,
                                 b.constI64(0), "has.home");
        BasicBlock *compute_blk = b.insertBlock();
        b.condBr(has_home, home_loop, compute_done);

        b.setInsertPoint(home_loop);
        PhiInst *hp = b.phi(i64, "hp");
        Value *h_idx = b.add(home_base, hp, "h.idx");
        Value *h3 = b.mul(h_idx, b.constI64(3), "h3");
        Value *hx = b.load(b.gep(f64, pos, h3, "p.hx"), "hx");
        Value *hy = b.load(
            b.gep(f64, pos, b.add(h3, b.constI64(1), "h3y"),
                  "p.hy"),
            "hy");
        Value *hz = b.load(
            b.gep(f64, pos, b.add(h3, b.constI64(2), "h3z"),
                  "p.hz"),
            "hz");

        // Inner loop over neighbour particles (may be empty).
        BasicBlock *nb_loop = b.createBlock("nbp");
        BasicBlock *home_tail = b.createBlock("home.tail");
        Value *has_nb = b.icmp(Predicate::SGT, nb_n, b.constI64(0),
                               "has.nb");
        b.condBr(has_nb, nb_loop, home_tail);

        b.setInsertPoint(nb_loop);
        PhiInst *np_iv = b.phi(i64, "np.iv");
        PhiInst *sx = b.phi(f64, "sx");
        PhiInst *sy = b.phi(f64, "sy");
        PhiInst *sz = b.phi(f64, "sz");
        Value *n_idx = b.add(nb_base, np_iv, "n.idx");
        Value *n3 = b.mul(n_idx, b.constI64(3), "n3");
        Value *qx = b.load(b.gep(f64, pos, n3, "p.qx"), "qx");
        Value *qy = b.load(
            b.gep(f64, pos, b.add(n3, b.constI64(1), "n3y"),
                  "p.qy"),
            "qy");
        Value *qz = b.load(
            b.gep(f64, pos, b.add(n3, b.constI64(2), "n3z"),
                  "p.qz"),
            "qz");
        Value *dx = b.fsub(hx, qx, "dx");
        Value *dy = b.fsub(hy, qy, "dy");
        Value *dz = b.fsub(hz, qz, "dz");
        Value *r2 = b.fadd(
            b.fadd(b.fmul(dx, dx, "dx2"), b.fmul(dy, dy, "dy2"),
                   "dxy"),
            b.fmul(dz, dz, "dz2"), "r2");
        // Exclude self-interaction (r2 == 0) with a select.
        Value *r2safe = b.select(
            b.fcmp(Predicate::OEQ, r2, b.constDouble(0.0),
                   "is.self"),
            b.constDouble(1.0), r2, "r2.safe");
        Value *r2inv = b.fdiv(b.constDouble(1.0), r2safe,
                              "r2inv");
        Value *r6inv = b.fmul(b.fmul(r2inv, r2inv, "r4inv"),
                              r2inv, "r6inv");
        Value *pot = b.fmul(
            r6inv,
            b.fsub(b.fmul(b.constDouble(lj1), r6inv, "lj1r6"),
                   b.constDouble(lj2), "potdiff"),
            "pot");
        Value *force_raw = b.fmul(r2inv, pot, "force.raw");
        Value *force = b.select(
            b.fcmp(Predicate::OEQ, r2, b.constDouble(0.0),
                   "self2"),
            b.constDouble(0.0), force_raw, "force");
        Value *sx_next =
            b.fadd(sx, b.fmul(force, dx, "fdx"), "sx.next");
        Value *sy_next =
            b.fadd(sy, b.fmul(force, dy, "fdy"), "sy.next");
        Value *sz_next =
            b.fadd(sz, b.fmul(force, dz, "fdz"), "sz.next");
        Value *np_next = b.add(np_iv, b.constI64(1), "np.next");
        Value *np_cont = b.icmp(Predicate::SLT, np_next, nb_n,
                                "np.cont");
        b.condBr(np_cont, nb_loop, home_tail);
        np_iv->addIncoming(b.constI64(0), home_loop);
        np_iv->addIncoming(np_next, nb_loop);
        sx->addIncoming(b.constDouble(0.0), home_loop);
        sx->addIncoming(sx_next, nb_loop);
        sy->addIncoming(b.constDouble(0.0), home_loop);
        sy->addIncoming(sy_next, nb_loop);
        sz->addIncoming(b.constDouble(0.0), home_loop);
        sz->addIncoming(sz_next, nb_loop);

        b.setInsertPoint(home_tail);
        PhiInst *tx = b.phi(f64, "tx");
        PhiInst *ty = b.phi(f64, "ty");
        PhiInst *tz = b.phi(f64, "tz");
        tx->addIncoming(b.constDouble(0.0), home_loop);
        tx->addIncoming(sx_next, nb_loop);
        ty->addIncoming(b.constDouble(0.0), home_loop);
        ty->addIncoming(sy_next, nb_loop);
        tz->addIncoming(b.constDouble(0.0), home_loop);
        tz->addIncoming(sz_next, nb_loop);

        // Accumulate into force[home particle] (read-modify-write).
        Value *pfx = b.gep(f64, frc, h3, "p.fx");
        Value *pfy = b.gep(f64, frc,
                           b.add(h3, b.constI64(1), "f3y"), "p.fy");
        Value *pfz = b.gep(f64, frc,
                           b.add(h3, b.constI64(2), "f3z"), "p.fz");
        b.store(b.fadd(b.load(pfx, "ofx"), tx, "nfx"), pfx);
        b.store(b.fadd(b.load(pfy, "ofy"), ty, "nfy"), pfy);
        b.store(b.fadd(b.load(pfz, "ofz"), tz, "nfz"), pfz);

        Value *hp_next = b.add(hp, b.constI64(1), "hp.next");
        Value *hp_cont = b.icmp(Predicate::SLT, hp_next, home_n,
                                "hp.cont");
        b.condBr(hp_cont, home_loop, compute_done);
        hp->addIncoming(b.constI64(0), compute_blk);
        hp->addIncoming(hp_next, home_tail);

        b.setInsertPoint(compute_done);
        b.br(skip);

        b.setInsertPoint(skip);
        ln.close();
        lb.close();
        b.ret();
        return fn;
    }

    void
    seed(ir::MemoryAccessor &mem, std::uint64_t base) const override
    {
        Lcg rng(71);
        std::uint64_t np = base;
        std::uint64_t pos = base + 8ull * numBlocks();
        std::uint64_t frc =
            pos + 8ull * 3 * numBlocks() * density;
        for (unsigned blk = 0; blk < numBlocks(); ++blk) {
            std::int64_t count = 1 + static_cast<std::int64_t>(
                rng.nextBelow(density));
            mem.writeI64(np + 8ull * blk, count);
            for (unsigned p = 0; p < density; ++p) {
                for (unsigned d = 0; d < 3; ++d) {
                    mem.writeF64(
                        pos + 8ull * ((blk * density + p) * 3 + d),
                        rng.nextDouble() * side);
                }
            }
        }
        for (unsigned i = 0; i < 3 * numBlocks() * density; ++i)
            mem.writeF64(frc + 8ull * i, 0.0);
    }

    std::vector<ir::RuntimeValue>
    args(std::uint64_t base) const override
    {
        std::uint64_t pos = base + 8ull * numBlocks();
        std::uint64_t frc =
            pos + 8ull * 3 * numBlocks() * density;
        return {RuntimeValue::fromPointer(base),
                RuntimeValue::fromPointer(pos),
                RuntimeValue::fromPointer(frc)};
    }

    std::string
    check(ir::MemoryAccessor &mem, std::uint64_t base) const override
    {
        std::uint64_t npb = base;
        std::uint64_t pos = base + 8ull * numBlocks();
        std::uint64_t frc =
            pos + 8ull * 3 * numBlocks() * density;
        auto s = static_cast<int>(side);

        std::vector<double> golden(3ull * numBlocks() * density,
                                   0.0);
        auto position = [&](unsigned idx, unsigned d) {
            return mem.readF64(pos + 8ull * (idx * 3 + d));
        };
        for (int bx = 0; bx < s; ++bx)
            for (int by = 0; by < s; ++by)
                for (int bz = 0; bz < s; ++bz) {
                    unsigned blk = static_cast<unsigned>(
                        (bx * s + by) * s + bz);
                    auto home_n = static_cast<unsigned>(
                        mem.readI64(npb + 8ull * blk));
                    for (int ox = -1; ox <= 1; ++ox)
                        for (int oy = -1; oy <= 1; ++oy)
                            for (int oz = -1; oz <= 1; ++oz) {
                                int nx = bx + ox, ny = by + oy,
                                    nz = bz + oz;
                                if (nx < 0 || nx >= s || ny < 0 ||
                                    ny >= s || nz < 0 || nz >= s) {
                                    continue;
                                }
                                unsigned nb =
                                    static_cast<unsigned>(
                                        (nx * s + ny) * s + nz);
                                auto nb_n =
                                    static_cast<unsigned>(
                                        mem.readI64(npb +
                                                    8ull * nb));
                                for (unsigned h = 0; h < home_n;
                                     ++h) {
                                    unsigned hidx =
                                        blk * density + h;
                                    double hx = position(hidx, 0);
                                    double hy = position(hidx, 1);
                                    double hz = position(hidx, 2);
                                    double ax = 0, ay = 0, az = 0;
                                    for (unsigned q = 0; q < nb_n;
                                         ++q) {
                                        unsigned qidx =
                                            nb * density + q;
                                        double dx = hx -
                                            position(qidx, 0);
                                        double dy = hy -
                                            position(qidx, 1);
                                        double dz = hz -
                                            position(qidx, 2);
                                        double r2 = dx * dx +
                                            dy * dy + dz * dz;
                                        if (r2 == 0.0)
                                            continue;
                                        double r2inv = 1.0 / r2;
                                        double r6inv = r2inv *
                                            r2inv * r2inv;
                                        double pot = r6inv *
                                            (lj1 * r6inv - lj2);
                                        double f = r2inv * pot;
                                        ax += f * dx;
                                        ay += f * dy;
                                        az += f * dz;
                                    }
                                    golden[hidx * 3 + 0] += ax;
                                    golden[hidx * 3 + 1] += ay;
                                    golden[hidx * 3 + 2] += az;
                                }
                            }
                }

        for (unsigned i = 0; i < golden.size(); ++i) {
            double got = mem.readF64(frc + 8ull * i);
            if (std::abs(got - golden[i]) > 1e-6) {
                std::ostringstream os;
                os << "md-grid mismatch at slot " << i << ": got "
                   << got << " expected " << golden[i];
                return os.str();
            }
        }
        return "";
    }

  private:
    unsigned side, density;
};

} // namespace

std::unique_ptr<Kernel>
makeMdKnn(unsigned atoms, unsigned neighbours, unsigned unroll)
{
    return std::make_unique<MdKnnKernel>(atoms, neighbours, unroll);
}

std::unique_ptr<Kernel>
makeMdGrid(unsigned block_side, unsigned density)
{
    return std::make_unique<MdGridKernel>(block_side, density);
}

} // namespace salam::kernels

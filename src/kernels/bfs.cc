/**
 * @file
 * BFS (queue-based), MachSuite bfs/queue: level assignment from a
 * start node over a CSR graph. Every loop bound is data-dependent
 * (frontier size, per-node degree) — the canonical kernel that
 * trace-based pre-RTL models cannot retime across inputs.
 *
 * Layout: edgeBegin[n+1] i64, edges[n*epn] i64, level[n] i64,
 *         queue[n] i64.
 */

#include <sstream>
#include <vector>

#include "loop_util.hh"
#include "machsuite.hh"

namespace salam::kernels
{

using namespace salam::ir;

namespace
{

constexpr std::int64_t unvisited = -1;

class BfsKernel : public Kernel
{
  public:
    BfsKernel(unsigned nodes, unsigned edges_per_node)
        : n(nodes), epn(edges_per_node)
    {}

    std::string name() const override { return "bfs-queue"; }

    std::uint64_t
    footprintBytes() const override
    {
        return 8ull * (n + 1 + n * epn + n + n);
    }

    ir::Function *
    build(ir::IRBuilder &b) const override
    {
        Context &ctx = b.context();
        const Type *i64 = ctx.i64();
        Function *fn = b.createFunction("bfs", ctx.voidType());
        Argument *ebegin =
            fn->addArgument(ctx.pointerTo(i64), "edgeBegin");
        Argument *edges =
            fn->addArgument(ctx.pointerTo(i64), "edges");
        Argument *level =
            fn->addArgument(ctx.pointerTo(i64), "level");
        Argument *queue =
            fn->addArgument(ctx.pointerTo(i64), "queue");
        Argument *start = fn->addArgument(i64, "start");

        BasicBlock *entry = b.createBlock("entry");
        BasicBlock *outer = b.createBlock("frontier");
        BasicBlock *edge_head = b.createBlock("edge");
        BasicBlock *visit = b.createBlock("visit");
        BasicBlock *edge_latch = b.createBlock("edge.latch");
        BasicBlock *outer_latch = b.createBlock("frontier.latch");
        BasicBlock *exit = b.createBlock("exit");

        b.setInsertPoint(entry);
        // level[start] = 0; queue[0] = start; head = 0; tail = 1.
        b.store(b.constI64(0), b.gep(i64, level, start, "p.ls"));
        b.store(start, b.gep(i64, queue, b.constI64(0), "p.q0"));
        b.br(outer);

        // while (head < tail)
        b.setInsertPoint(outer);
        PhiInst *head = b.phi(i64, "head");
        PhiInst *tail = b.phi(i64, "tail");
        Value *node =
            b.load(b.gep(i64, queue, head, "p.qn"), "node");
        Value *node_level =
            b.load(b.gep(i64, level, node, "p.ln"), "node.level");
        Value *next_level = b.add(node_level, b.constI64(1),
                                  "next.level");
        Value *e_begin = b.load(b.gep(i64, ebegin, node, "p.eb"),
                                "e.begin");
        Value *node1 = b.add(node, b.constI64(1), "node1");
        Value *e_end =
            b.load(b.gep(i64, ebegin, node1, "p.ee"), "e.end");
        Value *has_edges =
            b.icmp(Predicate::SLT, e_begin, e_end, "has.edges");
        b.condBr(has_edges, edge_head, outer_latch);

        // for (e = begin; e < end; e++)
        b.setInsertPoint(edge_head);
        PhiInst *e = b.phi(i64, "e");
        PhiInst *tail_in = b.phi(i64, "tail.in");
        Value *dst = b.load(b.gep(i64, edges, e, "p.dst"), "dst");
        Value *dst_level =
            b.load(b.gep(i64, level, dst, "p.dl"), "dst.level");
        Value *fresh = b.icmp(Predicate::EQ, dst_level,
                              b.constI64(unvisited), "fresh");
        b.condBr(fresh, visit, edge_latch);

        b.setInsertPoint(visit);
        b.store(next_level, b.gep(i64, level, dst, "p.sl"));
        b.store(dst, b.gep(i64, queue, tail_in, "p.qt"));
        Value *tail_bump =
            b.add(tail_in, b.constI64(1), "tail.bump");
        b.br(edge_latch);

        b.setInsertPoint(edge_latch);
        PhiInst *tail_next = b.phi(i64, "tail.next");
        tail_next->addIncoming(tail_in, edge_head);
        tail_next->addIncoming(tail_bump, visit);
        Value *e_next = b.add(e, b.constI64(1), "e.next");
        Value *e_cont =
            b.icmp(Predicate::SLT, e_next, e_end, "e.cont");
        b.condBr(e_cont, edge_head, outer_latch);
        e->addIncoming(e_begin, outer);
        e->addIncoming(e_next, edge_latch);
        tail_in->addIncoming(tail, outer);
        tail_in->addIncoming(tail_next, edge_latch);

        b.setInsertPoint(outer_latch);
        PhiInst *tail_out = b.phi(i64, "tail.out");
        tail_out->addIncoming(tail, outer);
        tail_out->addIncoming(tail_next, edge_latch);
        Value *head_next =
            b.add(head, b.constI64(1), "head.next");
        Value *more = b.icmp(Predicate::SLT, head_next, tail_out,
                             "more");
        b.condBr(more, outer, exit);
        head->addIncoming(b.constI64(0), entry);
        head->addIncoming(head_next, outer_latch);
        tail->addIncoming(b.constI64(1), entry);
        tail->addIncoming(tail_out, outer_latch);

        b.setInsertPoint(exit);
        b.ret();
        return fn;
    }

    /** Deterministic graph: ring + pseudo-random chords. */
    void
    buildGraph(std::vector<std::vector<std::int64_t>> &adj) const
    {
        adj.assign(n, {});
        Lcg rng(83);
        for (unsigned i = 0; i < n; ++i) {
            adj[i].push_back((i + 1) % n);
            for (unsigned k = 2; k < epn; ++k) {
                if (rng.nextBelow(2) == 0)
                    adj[i].push_back(static_cast<std::int64_t>(
                        rng.nextBelow(n)));
            }
        }
    }

    void
    seed(ir::MemoryAccessor &mem, std::uint64_t base) const override
    {
        std::vector<std::vector<std::int64_t>> adj;
        buildGraph(adj);
        std::uint64_t ebegin = base;
        std::uint64_t edges = base + 8ull * (n + 1);
        std::uint64_t level = edges + 8ull * n * epn;
        std::uint64_t queue = level + 8ull * n;

        std::int64_t cursor = 0;
        for (unsigned i = 0; i < n; ++i) {
            mem.writeI64(ebegin + 8ull * i, cursor);
            for (std::int64_t dst : adj[i]) {
                mem.writeI64(
                    edges +
                        8ull * static_cast<std::uint64_t>(cursor),
                    dst);
                ++cursor;
            }
        }
        mem.writeI64(ebegin + 8ull * n, cursor);
        for (unsigned i = 0; i < n; ++i) {
            mem.writeI64(level + 8ull * i, unvisited);
            mem.writeI64(queue + 8ull * i, 0);
        }
    }

    std::vector<ir::RuntimeValue>
    args(std::uint64_t base) const override
    {
        std::uint64_t ebegin = base;
        std::uint64_t edges = base + 8ull * (n + 1);
        std::uint64_t level = edges + 8ull * n * epn;
        std::uint64_t queue = level + 8ull * n;
        return {RuntimeValue::fromPointer(ebegin),
                RuntimeValue::fromPointer(edges),
                RuntimeValue::fromPointer(level),
                RuntimeValue::fromPointer(queue),
                RuntimeValue{}}; // start node 0
    }

    std::string
    check(ir::MemoryAccessor &mem, std::uint64_t base) const override
    {
        std::vector<std::vector<std::int64_t>> adj;
        buildGraph(adj);
        std::uint64_t level = base + 8ull * (n + 1) +
            8ull * n * epn;

        // Golden BFS.
        std::vector<std::int64_t> golden(n, unvisited);
        std::vector<unsigned> queue{0};
        golden[0] = 0;
        for (std::size_t h = 0; h < queue.size(); ++h) {
            unsigned node = queue[h];
            for (std::int64_t dst : adj[node]) {
                auto d = static_cast<unsigned>(dst);
                if (golden[d] == unvisited) {
                    golden[d] = golden[node] + 1;
                    queue.push_back(d);
                }
            }
        }
        for (unsigned i = 0; i < n; ++i) {
            std::int64_t got = mem.readI64(level + 8ull * i);
            if (got != golden[i]) {
                std::ostringstream os;
                os << "bfs mismatch at node " << i << ": got "
                   << got << " expected " << golden[i];
                return os.str();
            }
        }
        return "";
    }

  private:
    unsigned n, epn;
};

} // namespace

std::unique_ptr<Kernel>
makeBfs(unsigned nodes, unsigned edges_per_node)
{
    return std::make_unique<BfsKernel>(nodes, edges_per_node);
}

} // namespace salam::kernels

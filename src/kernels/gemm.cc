/**
 * @file
 * GEMM n-cubed: prod = m1 * m2 over N x N doubles.
 *
 * The classic triple loop, with the reduction in the innermost
 * (unrollable) block — MachSuite gemm/ncubed.
 */

#include <cmath>
#include <sstream>

#include "loop_util.hh"
#include "machsuite.hh"

namespace salam::kernels
{

using namespace salam::ir;

namespace
{

class GemmKernel : public Kernel
{
  public:
    GemmKernel(unsigned n, unsigned unroll) : n(n), unroll(unroll) {}

    std::string name() const override { return "gemm"; }

    std::uint64_t
    footprintBytes() const override
    {
        return 3ull * n * n * 8;
    }

    ir::Function *
    build(ir::IRBuilder &b) const override
    {
        Context &ctx = b.context();
        const Type *f64 = ctx.doubleType();
        Function *fn = b.createFunction("gemm", ctx.voidType());
        Argument *m1 = fn->addArgument(ctx.pointerTo(f64), "m1");
        Argument *m2 = fn->addArgument(ctx.pointerTo(f64), "m2");
        Argument *prod = fn->addArgument(ctx.pointerTo(f64),
                                         "prod");
        auto nn = static_cast<std::int64_t>(n);

        BasicBlock *entry = b.createBlock("entry");
        b.setInsertPoint(entry);

        OuterLoop li(b, "i", 0, nn);
        OuterLoop lj(b, "j", 0, nn);

        Value *i_base = b.mul(li.iv(), b.constI64(nn), "i.base");

        InnerLoop lk(b, "k", 0, nn);
        PhiInst *sum = lk.accumulator(f64, "sum");
        Value *m1_idx = b.add(i_base, lk.iv(), "m1.idx");
        Value *k_base = b.mul(lk.iv(), b.constI64(nn), "k.base");
        Value *m2_idx = b.add(k_base, lj.iv(), "m2.idx");
        Value *a = b.load(b.gep(f64, m1, m1_idx, "m1.p"), "a");
        Value *bv = b.load(b.gep(f64, m2, m2_idx, "m2.p"), "b");
        Value *mult = b.fmul(a, bv, "mult");
        Value *sum_next = b.fadd(sum, mult, "sum.next");
        lk.close({{sum, sum_next}}, {b.constDouble(0.0)});

        Value *p_idx = b.add(i_base, lj.iv(), "prod.idx");
        b.store(sum_next, b.gep(f64, prod, p_idx, "prod.p"));
        lj.close();
        li.close();
        b.ret();
        return fn;
    }

    void
    seed(ir::MemoryAccessor &mem, std::uint64_t base) const override
    {
        Lcg rng(7);
        for (unsigned i = 0; i < n * n; ++i) {
            mem.writeF64(base + 8ull * i, rng.nextDouble() - 0.5);
            mem.writeF64(base + 8ull * (n * n + i),
                         rng.nextDouble() - 0.5);
        }
    }

    std::vector<ir::RuntimeValue>
    args(std::uint64_t base) const override
    {
        return {RuntimeValue::fromPointer(base),
                RuntimeValue::fromPointer(base + 8ull * n * n),
                RuntimeValue::fromPointer(base + 16ull * n * n)};
    }

    std::string
    check(ir::MemoryAccessor &mem, std::uint64_t base) const override
    {
        std::uint64_t m1 = base;
        std::uint64_t m2 = base + 8ull * n * n;
        std::uint64_t prod = base + 16ull * n * n;
        for (unsigned i = 0; i < n; ++i) {
            for (unsigned j = 0; j < n; ++j) {
                double expected = 0.0;
                for (unsigned k = 0; k < n; ++k) {
                    expected +=
                        mem.readF64(m1 + 8ull * (i * n + k)) *
                        mem.readF64(m2 + 8ull * (k * n + j));
                }
                double got = mem.readF64(prod + 8ull * (i * n + j));
                if (std::abs(got - expected) > 1e-9) {
                    std::ostringstream os;
                    os << "gemm mismatch at (" << i << "," << j
                       << "): got " << got << " expected "
                       << expected;
                    return os.str();
                }
            }
        }
        return "";
    }

    std::vector<opt::PassSpec>
    defaultPasses() const override
    {
        std::vector<opt::PassSpec> passes;
        if (unroll > 1) {
            passes.push_back(opt::PassSpec::unroll("k", unroll));
            // HLS expression balancing turns the accumulation chain
            // into a reduction tree (unsafe-math, as Vivado does
            // when unrolling reductions).
            passes.push_back(opt::PassSpec::balance());
        }
        passes.push_back(opt::PassSpec::cleanup());
        return passes;
    }

  private:
    unsigned n;
    unsigned unroll;
};

} // namespace

std::unique_ptr<Kernel>
makeGemm(unsigned n, unsigned unroll)
{
    return std::make_unique<GemmKernel>(n, unroll);
}

} // namespace salam::kernels

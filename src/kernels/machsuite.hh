/**
 * @file
 * Factory functions for the MachSuite benchmark kernels (and the CNN
 * layer kernels used in the multi-accelerator experiments).
 *
 * Default problem sizes are scaled-down MachSuite configurations that
 * preserve each kernel's structure (loop nesting, data-dependence,
 * operation mix) while keeping simulations fast; benches construct
 * larger instances where an experiment needs them.
 */

#ifndef SALAM_KERNELS_MACHSUITE_HH
#define SALAM_KERNELS_MACHSUITE_HH

#include "kernel.hh"

namespace salam::kernels
{

/** GEMM n-cubed (double). Inner k-loop label: "k". */
std::unique_ptr<Kernel> makeGemm(unsigned n = 32,
                                 unsigned unroll = 8);

/**
 * SPMV over CRS (double values, i64 column indices).
 * @param guarded Adds the paper's Table I modification: a bit-shift
 *        on the column index behind a data-dependent branch.
 * @param dataset 1 = no index triggers the guard; 2 = some do.
 */
std::unique_ptr<Kernel> makeSpmv(unsigned rows = 64,
                                 unsigned nnz_per_row = 8,
                                 bool guarded = false,
                                 unsigned dataset = 1);

/** FFT strided, radix-2 in-place (double). Size must be a power
 * of two. */
std::unique_ptr<Kernel> makeFft(unsigned size = 256);

/** MD K-nearest-neighbours Lennard-Jones force (double). */
std::unique_ptr<Kernel> makeMdKnn(unsigned atoms = 64,
                                  unsigned neighbours = 16,
                                  unsigned unroll = 4);

/** MD 3D-grid Lennard-Jones force (double). */
std::unique_ptr<Kernel> makeMdGrid(unsigned block_side = 3,
                                   unsigned density = 4);

/** Needleman-Wunsch score-matrix fill (i32). */
std::unique_ptr<Kernel> makeNw(unsigned length = 48);

/** Stencil2D 3x3 (i32). */
std::unique_ptr<Kernel> makeStencil2d(unsigned rows = 32,
                                      unsigned cols = 32,
                                      unsigned unroll = 4);

/** Stencil3D 7-point (i32). */
std::unique_ptr<Kernel> makeStencil3d(unsigned height = 8,
                                      unsigned rows = 12,
                                      unsigned cols = 12,
                                      unsigned unroll = 4);

/** BFS (queue-based, data-dependent control). */
std::unique_ptr<Kernel> makeBfs(unsigned nodes = 128,
                                unsigned edges_per_node = 4);

// CNN layer kernels (Sec. IV-E multi-accelerator scenarios). The
// stream flags replace the array indexing on that side with a fixed
// FIFO port address, matching an AXI-Stream interface.

/** 3x3 valid convolution over a width x height float image. */
std::unique_ptr<Kernel> makeConv2d(unsigned width = 32,
                                   unsigned height = 32,
                                   bool stream_out = false);

/** Elementwise ReLU over count floats. */
std::unique_ptr<Kernel> makeRelu(unsigned count = 900,
                                 bool stream_in = false,
                                 bool stream_out = false);

/** 2x2 max pooling (stride 2) over a width x height float image. */
std::unique_ptr<Kernel> makeMaxPool(unsigned width = 30,
                                    unsigned height = 30,
                                    bool stream_in = false,
                                    bool stream_out = false);

} // namespace salam::kernels

#endif // SALAM_KERNELS_MACHSUITE_HH

/**
 * @file
 * SPMV over Compact Row Storage: out = A * vec.
 *
 * Row extents come from rowDelim loads, so inner-loop trip counts
 * are data-dependent. The optional guard reproduces the paper's
 * Table I experiment: a bit-shift on the column index that only
 * executes when the index falls in a configured range, hidden
 * behind a real branch — visible to an execute-in-execute model,
 * invisible to a trace that never triggers it.
 *
 * Layout from base:
 *   val[rows * nnz]      double
 *   cols[rows * nnz]     i64
 *   rowDelim[rows + 1]   i64
 *   vec[2 * rows]        double (oversized so guarded indices land)
 *   out[rows]            double
 */

#include <cmath>
#include <sstream>
#include <vector>

#include "loop_util.hh"
#include "machsuite.hh"

namespace salam::kernels
{

using namespace salam::ir;

namespace
{

class SpmvKernel : public Kernel
{
  public:
    SpmvKernel(unsigned rows, unsigned nnz, bool guarded,
               unsigned dataset)
        : rows(rows), nnz(nnz), guarded(guarded), dataset(dataset)
    {}

    std::string
    name() const override
    {
        return guarded ? "spmv-crs-guarded" : "spmv-crs";
    }

    std::uint64_t valBytes() const { return 8ull * rows * nnz; }

    std::uint64_t colsBytes() const { return 8ull * rows * nnz; }

    std::uint64_t delimBytes() const { return 8ull * (rows + 1); }

    std::uint64_t vecBytes() const { return 8ull * 2 * rows; }

    std::uint64_t
    footprintBytes() const override
    {
        return valBytes() + colsBytes() + delimBytes() + vecBytes() +
               8ull * rows;
    }

    ir::Function *
    build(ir::IRBuilder &b) const override
    {
        Context &ctx = b.context();
        const Type *f64 = ctx.doubleType();
        const Type *i64 = ctx.i64();
        Function *fn = b.createFunction("spmv", ctx.voidType());
        Argument *val = fn->addArgument(ctx.pointerTo(f64), "val");
        Argument *cols = fn->addArgument(ctx.pointerTo(i64), "cols");
        Argument *delim =
            fn->addArgument(ctx.pointerTo(i64), "rowDelim");
        Argument *vec = fn->addArgument(ctx.pointerTo(f64), "vec");
        Argument *out = fn->addArgument(ctx.pointerTo(f64), "out");

        BasicBlock *entry = b.createBlock("entry");
        b.setInsertPoint(entry);

        OuterLoop li(b, "row", 0, rows);
        // Row bounds: begin = rowDelim[i], end = rowDelim[i+1].
        Value *begin = b.load(b.gep(i64, delim, li.iv(), "pb"),
                              "begin");
        Value *ip1 = b.add(li.iv(), b.constI64(1), "ip1");
        Value *end = b.load(b.gep(i64, delim, ip1, "pe"), "end");

        // Inner loop over the row's nonzeros; dynamic trip count, so
        // it is built by hand (while-style with a guard for empty
        // rows).
        BasicBlock *row_head = b.insertBlock();
        BasicBlock *inner = b.createBlock("nnz");
        BasicBlock *guard_then =
            guarded ? b.createBlock("guard.then") : nullptr;
        BasicBlock *inner_tail =
            guarded ? b.createBlock("nnz.tail") : nullptr;
        BasicBlock *row_done = b.createBlock("row.done");

        Value *has_work =
            b.icmp(Predicate::SLT, begin, end, "has.work");
        b.condBr(has_work, inner, row_done);

        b.setInsertPoint(inner);
        PhiInst *j = b.phi(i64, "j");
        PhiInst *sum = b.phi(f64, "sum");
        Value *v = b.load(b.gep(f64, val, j, "pv"), "v");
        Value *c = b.load(b.gep(i64, cols, j, "pc"), "c");

        Value *sum_next;
        Value *j_next;
        Value *cont;
        if (guarded) {
            // The Table I modification: shift the column index when
            // it falls inside [guardLo, rows): real branch, real
            // shifter in the datapath only when the data hits it.
            Value *hit = b.icmp(Predicate::SGE, c,
                                b.constI64(guardLo()), "hit");
            b.condBr(hit, guard_then, inner_tail);

            b.setInsertPoint(guard_then);
            Value *shifted = b.shl(c, b.constI64(1), "c.shift");
            b.br(inner_tail);

            b.setInsertPoint(inner_tail);
            PhiInst *c_eff = b.phi(i64, "c.eff");
            c_eff->addIncoming(c, inner);
            c_eff->addIncoming(shifted, guard_then);
            Value *x =
                b.load(b.gep(f64, vec, c_eff, "px"), "x");
            sum_next = b.fadd(sum, b.fmul(v, x, "prod"),
                              "sum.next");
            j_next = b.add(j, b.constI64(1), "j.next");
            cont = b.icmp(Predicate::SLT, j_next, end, "cont");
            b.condBr(cont, inner, row_done);
        } else {
            Value *x = b.load(b.gep(f64, vec, c, "px"), "x");
            sum_next = b.fadd(sum, b.fmul(v, x, "prod"),
                              "sum.next");
            j_next = b.add(j, b.constI64(1), "j.next");
            cont = b.icmp(Predicate::SLT, j_next, end, "cont");
            b.condBr(cont, inner, row_done);
        }
        BasicBlock *backedge_block = guarded ? inner_tail : inner;
        j->addIncoming(begin, row_head);
        j->addIncoming(j_next, backedge_block);
        sum->addIncoming(b.constDouble(0.0), row_head);
        sum->addIncoming(sum_next, backedge_block);

        b.setInsertPoint(row_done);
        PhiInst *row_sum = b.phi(f64, "row.sum");
        row_sum->addIncoming(b.constDouble(0.0), row_head);
        row_sum->addIncoming(sum_next, backedge_block);
        b.store(row_sum, b.gep(f64, out, li.iv(), "pout"));
        li.close();
        b.ret();
        return fn;
    }

    void
    seed(ir::MemoryAccessor &mem, std::uint64_t base) const override
    {
        Lcg rng(11 + dataset);
        std::uint64_t val = base;
        std::uint64_t cols = base + valBytes();
        std::uint64_t delim = cols + colsBytes();
        std::uint64_t vec = delim + delimBytes();

        std::uint64_t edge = 0;
        mem.writeI64(delim, 0);
        for (unsigned i = 0; i < rows; ++i) {
            unsigned count = 1 + static_cast<unsigned>(
                rng.nextBelow(nnz - 1));
            for (unsigned k = 0; k < count; ++k) {
                mem.writeF64(val + 8 * edge,
                             rng.nextDouble() - 0.5);
                // Dataset 2 occasionally emits indices in the guard
                // range; dataset 1 never does.
                std::int64_t col;
                if (dataset == 2 && rng.nextBelow(8) == 0) {
                    col = guardLo() +
                        static_cast<std::int64_t>(rng.nextBelow(
                            rows - static_cast<unsigned>(
                                       guardLo())));
                } else {
                    col = static_cast<std::int64_t>(
                        rng.nextBelow(guardLo()));
                }
                mem.writeI64(cols + 8 * edge, col);
                ++edge;
            }
            mem.writeI64(delim + 8ull * (i + 1),
                         static_cast<std::int64_t>(edge));
        }
        for (unsigned i = 0; i < 2 * rows; ++i)
            mem.writeF64(vec + 8ull * i, rng.nextDouble() - 0.5);
    }

    std::vector<ir::RuntimeValue>
    args(std::uint64_t base) const override
    {
        std::uint64_t val = base;
        std::uint64_t cols = base + valBytes();
        std::uint64_t delim = cols + colsBytes();
        std::uint64_t vec = delim + delimBytes();
        std::uint64_t out = vec + vecBytes();
        return {RuntimeValue::fromPointer(val),
                RuntimeValue::fromPointer(cols),
                RuntimeValue::fromPointer(delim),
                RuntimeValue::fromPointer(vec),
                RuntimeValue::fromPointer(out)};
    }

    std::string
    check(ir::MemoryAccessor &mem, std::uint64_t base) const override
    {
        std::uint64_t val = base;
        std::uint64_t cols = base + valBytes();
        std::uint64_t delim = cols + colsBytes();
        std::uint64_t vec = delim + delimBytes();
        std::uint64_t out = vec + vecBytes();
        for (unsigned i = 0; i < rows; ++i) {
            std::int64_t begin = mem.readI64(delim + 8ull * i);
            std::int64_t end = mem.readI64(delim + 8ull * (i + 1));
            double expected = 0.0;
            for (std::int64_t j = begin; j < end; ++j) {
                std::int64_t c = mem.readI64(
                    cols + 8ull * static_cast<std::uint64_t>(j));
                if (guarded && c >= guardLo())
                    c <<= 1;
                expected += mem.readF64(
                                val +
                                8ull *
                                    static_cast<std::uint64_t>(j)) *
                    mem.readF64(
                        vec + 8ull * static_cast<std::uint64_t>(c));
            }
            double got = mem.readF64(out + 8ull * i);
            if (std::abs(got - expected) > 1e-9) {
                std::ostringstream os;
                os << "spmv mismatch at row " << i << ": got "
                   << got << " expected " << expected;
                return os.str();
            }
        }
        return "";
    }

  private:
    std::int64_t guardLo() const { return rows / 2; }

    unsigned rows;
    unsigned nnz;
    bool guarded;
    unsigned dataset;
};

} // namespace

std::unique_ptr<Kernel>
makeSpmv(unsigned rows, unsigned nnz_per_row, bool guarded,
         unsigned dataset)
{
    return std::make_unique<SpmvKernel>(rows, nnz_per_row, guarded,
                                        dataset);
}

} // namespace salam::kernels

/**
 * @file
 * Kernel: the benchmark-kernel abstraction.
 *
 * Each MachSuite (and CNN) kernel knows how to build its IR through
 * the IRBuilder (standing in for clang), lay out and seed its data
 * relative to a base address, produce its argument values, and check
 * outputs against a golden C++ reference. All benches, tests, and
 * examples consume kernels through this interface, so the same
 * kernel definition drives the SALAM engine, the HLS surrogate, the
 * trace-based baseline, and functional validation.
 */

#ifndef SALAM_KERNELS_KERNEL_HH
#define SALAM_KERNELS_KERNEL_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "ir/interpreter.hh"
#include "ir/ir_builder.hh"
#include "opt/pass_manager.hh"

namespace salam::kernels
{

/** Deterministic LCG for dataset generation (no libc rand). */
class Lcg
{
  public:
    explicit Lcg(std::uint64_t seed = 0x5ALL) : state(seed * 2 + 1) {}

    std::uint64_t
    next()
    {
        state = state * 6364136223846793005ULL +
            1442695040888963407ULL;
        return state >> 16;
    }

    /** Uniform integer in [0, bound). */
    std::uint64_t nextBelow(std::uint64_t bound)
    { return next() % bound; }

    /** Uniform double in [0, 1). */
    double
    nextDouble()
    {
        return static_cast<double>(next() & 0xFFFFFFFFFFFFULL) /
            static_cast<double>(1ULL << 48);
    }

  private:
    std::uint64_t state;
};

/** One benchmark kernel. */
class Kernel
{
  public:
    virtual ~Kernel() = default;

    virtual std::string name() const = 0;

    /** Build the kernel function (clang stand-in). */
    virtual ir::Function *build(ir::IRBuilder &builder) const = 0;

    /** Bytes of memory the kernel touches, from the base address. */
    virtual std::uint64_t footprintBytes() const = 0;

    /** Write the input dataset at @p base. */
    virtual void seed(ir::MemoryAccessor &mem,
                      std::uint64_t base) const = 0;

    /** Argument values for a data layout rooted at @p base. */
    virtual std::vector<ir::RuntimeValue>
    args(std::uint64_t base) const = 0;

    /**
     * Verify outputs against the golden reference.
     * @return empty string when correct; else a diagnostic.
     */
    virtual std::string check(ir::MemoryAccessor &mem,
                              std::uint64_t base) const = 0;

    /**
     * The optimization pipeline the paper's configuration applies
     * (unrolling tuned to match HLS ILP). Default: cleanup only.
     */
    virtual std::vector<opt::PassSpec>
    defaultPasses() const
    {
        return {opt::PassSpec::cleanup()};
    }

    /**
     * Convenience: build into @p module and run defaultPasses().
     */
    ir::Function *
    buildOptimized(ir::IRBuilder &builder) const
    {
        ir::Function *fn = build(builder);
        opt::PassManager::run(*fn, defaultPasses());
        return fn;
    }
};

/** All MachSuite kernels at their default configurations. */
std::vector<std::unique_ptr<Kernel>> machsuiteKernels();

/** Look up one MachSuite kernel by name; nullptr when unknown. */
std::unique_ptr<Kernel> makeKernel(const std::string &name);

} // namespace salam::kernels

#endif // SALAM_KERNELS_KERNEL_HH

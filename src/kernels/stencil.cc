/**
 * @file
 * Stencil2D (3x3 filter) and Stencil3D (7-point), both i32, matching
 * MachSuite's stencil kernels. The small filter loops are emitted
 * straight-line, as clang's unroller would leave them.
 *
 * Stencil2D layout: orig[rows*cols], sol[rows*cols], filter[9].
 * Stencil3D layout: C[2], orig[h*r*c], sol[h*r*c].
 */

#include <sstream>
#include <vector>

#include "loop_util.hh"
#include "machsuite.hh"

namespace salam::kernels
{

using namespace salam::ir;

namespace
{

class Stencil2dKernel : public Kernel
{
  public:
    Stencil2dKernel(unsigned rows, unsigned cols, unsigned unroll)
        : rows(rows), cols(cols), unroll(unroll)
    {}

    std::string name() const override { return "stencil2d"; }

    std::uint64_t
    footprintBytes() const override
    {
        return 4ull * (2 * rows * cols + 9);
    }

    ir::Function *
    build(ir::IRBuilder &b) const override
    {
        Context &ctx = b.context();
        const Type *i32 = ctx.i32();
        Function *fn = b.createFunction("stencil2d",
                                        ctx.voidType());
        Argument *orig =
            fn->addArgument(ctx.pointerTo(i32), "orig");
        Argument *sol = fn->addArgument(ctx.pointerTo(i32), "sol");
        Argument *filter =
            fn->addArgument(ctx.pointerTo(i32), "filter");

        BasicBlock *entry = b.createBlock("entry");
        b.setInsertPoint(entry);
        // Filter coefficients are loop-invariant: load them once.
        std::vector<Value *> f;
        for (int k = 0; k < 9; ++k) {
            f.push_back(b.load(
                b.gep(i32, filter, b.constI64(k)), "f"));
        }

        OuterLoop lr(b, "r", 0, static_cast<std::int64_t>(rows) - 2);
        Value *r_base =
            b.mul(lr.iv(),
                  b.constI64(static_cast<std::int64_t>(cols)),
                  "r.base");

        InnerLoop lc(b, "c", 0, static_cast<std::int64_t>(cols) - 2);
        Value *acc = nullptr;
        for (int k1 = 0; k1 < 3; ++k1) {
            for (int k2 = 0; k2 < 3; ++k2) {
                Value *idx = b.add(
                    b.add(r_base, lc.iv(), "idx.rc"),
                    b.constI64(k1 * static_cast<std::int64_t>(cols) +
                               k2),
                    "idx");
                Value *v =
                    b.load(b.gep(i32, orig, idx, "p.in"), "in");
                Value *prod = b.mul(
                    f[static_cast<std::size_t>(k1 * 3 + k2)], v,
                    "prod");
                acc = acc ? b.add(acc, prod, "acc") : prod;
            }
        }
        Value *out_idx = b.add(r_base, lc.iv(), "out.idx");
        b.store(acc, b.gep(i32, sol, out_idx, "p.out"));
        lc.close();
        lr.close();
        b.ret();
        return fn;
    }

    void
    seed(ir::MemoryAccessor &mem, std::uint64_t base) const override
    {
        Lcg rng(31);
        for (unsigned i = 0; i < rows * cols; ++i) {
            mem.writeI32(base + 4ull * i,
                         static_cast<std::int32_t>(
                             rng.nextBelow(1000)) -
                             500);
        }
        std::uint64_t filter = base + 8ull * rows * cols;
        for (unsigned k = 0; k < 9; ++k) {
            mem.writeI32(filter + 4ull * k,
                         static_cast<std::int32_t>(
                             rng.nextBelow(16)) -
                             8);
        }
    }

    std::vector<ir::RuntimeValue>
    args(std::uint64_t base) const override
    {
        return {RuntimeValue::fromPointer(base),
                RuntimeValue::fromPointer(base + 4ull * rows * cols),
                RuntimeValue::fromPointer(base +
                                          8ull * rows * cols)};
    }

    std::string
    check(ir::MemoryAccessor &mem, std::uint64_t base) const override
    {
        std::uint64_t sol = base + 4ull * rows * cols;
        std::uint64_t filter = base + 8ull * rows * cols;
        for (unsigned r = 0; r + 2 < rows; ++r) {
            for (unsigned c = 0; c + 2 < cols; ++c) {
                std::int32_t expected = 0;
                for (unsigned k1 = 0; k1 < 3; ++k1) {
                    for (unsigned k2 = 0; k2 < 3; ++k2) {
                        expected += mem.readI32(filter +
                                                4ull *
                                                    (k1 * 3 + k2)) *
                            mem.readI32(
                                base +
                                4ull * ((r + k1) * cols + c + k2));
                    }
                }
                std::int32_t got =
                    mem.readI32(sol + 4ull * (r * cols + c));
                if (got != expected) {
                    std::ostringstream os;
                    os << "stencil2d mismatch at (" << r << ","
                       << c << "): got " << got << " expected "
                       << expected;
                    return os.str();
                }
            }
        }
        return "";
    }

    std::vector<opt::PassSpec>
    defaultPasses() const override
    {
        std::vector<opt::PassSpec> passes;
        if (unroll > 1)
            passes.push_back(opt::PassSpec::unroll("c", unroll));
        passes.push_back(opt::PassSpec::balance());
        passes.push_back(opt::PassSpec::cleanup());
        return passes;
    }

  private:
    unsigned rows, cols, unroll;
};

class Stencil3dKernel : public Kernel
{
  public:
    Stencil3dKernel(unsigned height, unsigned rows, unsigned cols,
                    unsigned unroll)
        : height(height), rows(rows), cols(cols), unroll(unroll)
    {}

    std::string name() const override { return "stencil3d"; }

    std::uint64_t
    footprintBytes() const override
    {
        return 4ull * (2 + 2ull * height * rows * cols);
    }

    ir::Function *
    build(ir::IRBuilder &b) const override
    {
        Context &ctx = b.context();
        const Type *i32 = ctx.i32();
        Function *fn = b.createFunction("stencil3d",
                                        ctx.voidType());
        Argument *coef = fn->addArgument(ctx.pointerTo(i32), "C");
        Argument *orig =
            fn->addArgument(ctx.pointerTo(i32), "orig");
        Argument *sol = fn->addArgument(ctx.pointerTo(i32), "sol");

        auto rc = static_cast<std::int64_t>(rows * cols);
        auto cc = static_cast<std::int64_t>(cols);

        BasicBlock *entry = b.createBlock("entry");
        b.setInsertPoint(entry);
        Value *c0 = b.load(b.gep(i32, coef, b.constI64(0)), "c0");
        Value *c1 = b.load(b.gep(i32, coef, b.constI64(1)), "c1");

        OuterLoop li(b, "i", 1, static_cast<std::int64_t>(height) - 1);
        Value *i_base = b.mul(li.iv(), b.constI64(rc), "i.base");
        OuterLoop lj(b, "j", 1, static_cast<std::int64_t>(rows) - 1);
        Value *j_base = b.mul(lj.iv(), b.constI64(cc), "j.base");
        Value *ij_base = b.add(i_base, j_base, "ij.base");

        InnerLoop lk(b, "kk", 1, static_cast<std::int64_t>(cols) - 1);
        Value *center_idx = b.add(ij_base, lk.iv(), "center.idx");
        auto load_at = [&](std::int64_t delta, const char *nm) {
            Value *idx = b.add(center_idx, b.constI64(delta), nm);
            return b.load(b.gep(i32, orig, idx), nm);
        };
        Value *center = load_at(0, "vc");
        Value *sum = b.add(load_at(rc, "xp"), load_at(-rc, "xm"),
                           "s1");
        sum = b.add(sum, load_at(cc, "yp"), "s2");
        sum = b.add(sum, load_at(-cc, "ym"), "s3");
        sum = b.add(sum, load_at(1, "zp"), "s4");
        sum = b.add(sum, load_at(-1, "zm"), "s5");
        Value *result = b.add(b.mul(c0, center, "mc"),
                              b.mul(c1, sum, "ms"), "result");
        b.store(result, b.gep(i32, sol, center_idx, "p.out"));
        lk.close();
        lj.close();
        li.close();
        b.ret();
        return fn;
    }

    void
    seed(ir::MemoryAccessor &mem, std::uint64_t base) const override
    {
        mem.writeI32(base, 2);
        mem.writeI32(base + 4, -1);
        Lcg rng(41);
        std::uint64_t orig = base + 8;
        for (unsigned i = 0; i < height * rows * cols; ++i) {
            mem.writeI32(orig + 4ull * i,
                         static_cast<std::int32_t>(
                             rng.nextBelow(256)) -
                             128);
        }
    }

    std::vector<ir::RuntimeValue>
    args(std::uint64_t base) const override
    {
        std::uint64_t orig = base + 8;
        std::uint64_t sol = orig + 4ull * height * rows * cols;
        return {RuntimeValue::fromPointer(base),
                RuntimeValue::fromPointer(orig),
                RuntimeValue::fromPointer(sol)};
    }

    std::string
    check(ir::MemoryAccessor &mem, std::uint64_t base) const override
    {
        std::uint64_t orig = base + 8;
        std::uint64_t sol = orig + 4ull * height * rows * cols;
        std::int32_t c0 = mem.readI32(base);
        std::int32_t c1 = mem.readI32(base + 4);
        auto at = [&](unsigned i, unsigned j, unsigned k) {
            return mem.readI32(orig +
                               4ull * ((i * rows + j) * cols + k));
        };
        for (unsigned i = 1; i + 1 < height; ++i) {
            for (unsigned j = 1; j + 1 < rows; ++j) {
                for (unsigned k = 1; k + 1 < cols; ++k) {
                    std::int32_t sum = at(i + 1, j, k) +
                        at(i - 1, j, k) + at(i, j + 1, k) +
                        at(i, j - 1, k) + at(i, j, k + 1) +
                        at(i, j, k - 1);
                    std::int32_t expected =
                        c0 * at(i, j, k) + c1 * sum;
                    std::int32_t got = mem.readI32(
                        sol +
                        4ull * ((i * rows + j) * cols + k));
                    if (got != expected) {
                        std::ostringstream os;
                        os << "stencil3d mismatch at (" << i << ","
                           << j << "," << k << ")";
                        return os.str();
                    }
                }
            }
        }
        return "";
    }

    std::vector<opt::PassSpec>
    defaultPasses() const override
    {
        std::vector<opt::PassSpec> passes;
        if (unroll > 1)
            passes.push_back(opt::PassSpec::unroll("kk", unroll));
        passes.push_back(opt::PassSpec::balance());
        passes.push_back(opt::PassSpec::cleanup());
        return passes;
    }

  private:
    unsigned height, rows, cols, unroll;
};

} // namespace

std::unique_ptr<Kernel>
makeStencil2d(unsigned rows, unsigned cols, unsigned unroll)
{
    return std::make_unique<Stencil2dKernel>(rows, cols, unroll);
}

std::unique_ptr<Kernel>
makeStencil3d(unsigned height, unsigned rows, unsigned cols,
              unsigned unroll)
{
    return std::make_unique<Stencil3dKernel>(height, rows, cols,
                                             unroll);
}

} // namespace salam::kernels

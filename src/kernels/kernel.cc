#include "kernel.hh"

#include "machsuite.hh"

namespace salam::kernels
{

std::vector<std::unique_ptr<Kernel>>
machsuiteKernels()
{
    std::vector<std::unique_ptr<Kernel>> kernels;
    kernels.push_back(makeBfs());
    kernels.push_back(makeFft());
    kernels.push_back(makeGemm());
    kernels.push_back(makeMdGrid());
    kernels.push_back(makeMdKnn());
    kernels.push_back(makeNw());
    kernels.push_back(makeSpmv());
    kernels.push_back(makeStencil2d());
    kernels.push_back(makeStencil3d());
    return kernels;
}

std::unique_ptr<Kernel>
makeKernel(const std::string &name)
{
    if (name == "bfs-queue")
        return makeBfs();
    if (name == "fft-strided")
        return makeFft();
    if (name == "gemm")
        return makeGemm();
    if (name == "md-grid")
        return makeMdGrid();
    if (name == "md-knn")
        return makeMdKnn();
    if (name == "nw")
        return makeNw();
    if (name == "spmv-crs")
        return makeSpmv();
    if (name == "stencil2d")
        return makeStencil2d();
    if (name == "stencil3d")
        return makeStencil3d();
    if (name == "conv2d")
        return makeConv2d();
    if (name == "relu")
        return makeRelu();
    if (name == "maxpool")
        return makeMaxPool();
    return nullptr;
}

} // namespace salam::kernels

/**
 * @file
 * FaultInjector: runtime firing decisions for a FaultPlan.
 *
 * Components ask the injector at named sites ("should this response
 * be delayed/dropped here?"); the injector counts opportunities per
 * spec and fires when a spec's window [nth, nth+count) is reached.
 * All decisions derive from the plan alone — same plan, same seed,
 * same simulation => the exact same faults, which is what makes
 * campaigns replayable.
 *
 * The injector is owned by whoever built the plan (bench or test)
 * and attached to a Simulation, which hands out a non-owning pointer
 * via Simulation::faultInjector(). Components tolerate a null
 * injector — the fast path is one pointer test.
 */

#ifndef SALAM_INJECT_FAULT_INJECTOR_HH
#define SALAM_INJECT_FAULT_INJECTOR_HH

#include <cstdint>
#include <string>
#include <vector>

#include "fault_plan.hh"
#include "obs/json.hh"
#include "sim/types.hh"

namespace salam
{
class Simulation;
} // namespace salam

namespace salam::inject
{

/** One fault that actually fired, for logs and state dumps. */
struct InjectionRecord
{
    Tick tick = 0;
    FaultKind kind = FaultKind::DelayResponse;
    std::string site;
    std::string detail;
};

class FaultInjector
{
  public:
    /** Resolves the plan's seeded defaults; see FaultPlan::resolve. */
    explicit FaultInjector(FaultPlan plan);

    /** Register with @p sim so components can find this injector. */
    void attach(Simulation &sim);

    const FaultPlan &plan() const { return _plan; }

    /**
     * DelayResponse: extra ticks to hold a response at @p site, or 0.
     * Queried once per response enqueued.
     */
    Tick responseDelay(const std::string &site);

    /**
     * DropResponse: true if the response at @p site should be
     * silently discarded. Queried once per response enqueued.
     */
    bool dropResponse(const std::string &site);

    /**
     * RetryStorm: true if the timing request arriving at @p site
     * should be refused (sender must take its retry path). Queried
     * once per arriving request.
     */
    bool refuseRequest(const std::string &site);

    /**
     * BitFlip: maybe corrupt @p size bytes of payload at @p site.
     * Queried once per serviced data access; flips spec.bit modulo
     * the payload width. @return true if a bit was flipped.
     */
    bool corruptPayload(const std::string &site, std::uint64_t addr,
                        std::uint8_t *data, unsigned size);

    /**
     * DropIrq: true if the interrupt being raised at @p site should
     * be swallowed. Queried once per raise.
     */
    bool dropIrq(const std::string &site);

    /**
     * SpuriousIrq: true if a spurious interrupt should be delivered
     * at @p site (queried when a waiter starts waiting). The spec's
     * "line" option, if >= 0, names the line; @p line_out receives
     * it (left untouched for "the awaited line").
     */
    bool spuriousIrq(const std::string &site, int &line_out);

    /**
     * DmaStall: extra ticks to stall the DMA pump at @p site, or 0.
     * Queried once per burst issue opportunity.
     */
    Tick dmaStall(const std::string &site);

    /** Every fault that fired so far, in firing order. */
    const std::vector<InjectionRecord> &log() const { return _log; }

    /** Append the plan and firing log to a state dump. */
    void dumpDiagnostics(obs::JsonBuilder &json) const;

  private:
    struct Armed
    {
        FaultSpec spec;
        std::uint64_t hits = 0;
    };

    /**
     * Find the first armed spec of @p kind whose site matches and
     * whose window covers this opportunity; counts the opportunity
     * against every matching spec either way.
     */
    Armed *match(FaultKind kind, const std::string &site);

    void record(FaultKind kind, const std::string &site,
                std::string detail);

    FaultPlan _plan;
    std::vector<Armed> armed;
    std::vector<InjectionRecord> _log;
    Simulation *sim = nullptr;
};

} // namespace salam::inject

#endif // SALAM_INJECT_FAULT_INJECTOR_HH

#include "fault_plan.hh"

#include <cstdlib>

#include "obs/run_report.hh"
#include "sim/logging.hh"

namespace salam::inject
{

const char *
faultKindName(FaultKind kind)
{
    switch (kind) {
      case FaultKind::DelayResponse: return "delay_response";
      case FaultKind::DropResponse: return "drop_response";
      case FaultKind::RetryStorm: return "retry_storm";
      case FaultKind::BitFlip: return "bit_flip";
      case FaultKind::DropIrq: return "drop_irq";
      case FaultKind::SpuriousIrq: return "spurious_irq";
      case FaultKind::DmaStall: return "dma_stall";
    }
    return "?";
}

namespace
{

bool
parseKind(const std::string &name, FaultKind &out)
{
    static const std::pair<const char *, FaultKind> kinds[] = {
        {"delay_response", FaultKind::DelayResponse},
        {"drop_response", FaultKind::DropResponse},
        {"retry_storm", FaultKind::RetryStorm},
        {"bit_flip", FaultKind::BitFlip},
        {"drop_irq", FaultKind::DropIrq},
        {"spurious_irq", FaultKind::SpuriousIrq},
        {"dma_stall", FaultKind::DmaStall},
    };
    for (const auto &[kname, kind] : kinds) {
        if (name == kname) {
            out = kind;
            return true;
        }
    }
    return false;
}

bool
parseU64(const std::string &text, std::uint64_t &out)
{
    if (text.empty())
        return false;
    char *end = nullptr;
    out = std::strtoull(text.c_str(), &end, 0);
    return end != text.c_str() && *end == '\0';
}

/** splitmix64: seed -> well-mixed 64-bit stream, no global state. */
std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

} // namespace

std::string
FaultSpec::describe() const
{
    std::string out = faultKindName(kind);
    out += '@';
    out += site;
    out += ":nth=" + std::to_string(nth);
    if (count != 1)
        out += ":count=" + std::to_string(count);
    if (kind == FaultKind::DelayResponse || kind == FaultKind::DmaStall)
        out += ":delay=" + std::to_string(delayTicks);
    if (kind == FaultKind::BitFlip)
        out += ":bit=" + std::to_string(bit);
    if (kind == FaultKind::SpuriousIrq && line >= 0)
        out += ":line=" + std::to_string(line);
    return out;
}

std::string
FaultPlan::parse(const std::string &text)
{
    auto at = text.find('@');
    if (at == std::string::npos)
        return "fault spec '" + text + "' is missing '@site' "
               "(grammar: kind@site[:key=value]*)";

    FaultSpec spec;
    if (!parseKind(text.substr(0, at), spec.kind))
        return "unknown fault kind '" + text.substr(0, at) +
               "' (expected delay_response, drop_response, "
               "retry_storm, bit_flip, drop_irq, spurious_irq, or "
               "dma_stall)";

    std::string rest = text.substr(at + 1);
    auto colon = rest.find(':');
    spec.site = rest.substr(0, colon);
    while (colon != std::string::npos) {
        rest = rest.substr(colon + 1);
        colon = rest.find(':');
        std::string kv = rest.substr(0, colon);
        auto eq = kv.find('=');
        if (eq == std::string::npos)
            return "fault option '" + kv + "' is missing '=value'";
        std::string key = kv.substr(0, eq);
        std::string value = kv.substr(eq + 1);
        std::uint64_t num = 0;
        if (!parseU64(value, num))
            return "fault option '" + key + "' needs a number, got '" +
                   value + "'";
        if (key == "nth") {
            if (num == 0)
                return "fault option nth is 1-based; 0 is invalid";
            spec.nth = num;
            spec.nthExplicit = true;
        } else if (key == "count") {
            if (num == 0)
                return "fault option count must be positive";
            spec.count = num;
        } else if (key == "delay") {
            spec.delayTicks = num;
        } else if (key == "bit") {
            spec.bit = num;
            spec.bitExplicit = true;
        } else if (key == "line") {
            spec.line = static_cast<int>(num);
        } else {
            return "unknown fault option '" + key +
                   "' (expected nth, count, delay, bit, or line)";
        }
    }
    specs.push_back(std::move(spec));
    return {};
}

void
FaultPlan::resolve()
{
    for (FaultSpec &spec : specs) {
        // Key the stream on the spec identity, not its list position,
        // so adding a spec to a campaign does not reshuffle the others.
        std::uint64_t stream = mix64(
            seed ^ obs::fnv1aHash(std::string(faultKindName(spec.kind)) +
                                  "@" + spec.site));
        if (!spec.nthExplicit) {
            spec.nth = 1 + stream % 16;
            spec.nthExplicit = true;
        }
        if (!spec.bitExplicit) {
            spec.bit = mix64(stream) % 64;
            spec.bitExplicit = true;
        }
    }
}

} // namespace salam::inject

#include "fault_injector.hh"

#include <utility>

#include "sim/logging.hh"
#include "sim/simulation.hh"

namespace salam::inject
{

FaultInjector::FaultInjector(FaultPlan plan) : _plan(std::move(plan))
{
    _plan.resolve();
    for (const FaultSpec &spec : _plan.specs)
        armed.push_back({spec, 0});
}

void
FaultInjector::attach(Simulation &sim_)
{
    sim = &sim_;
    sim_.setFaultInjector(this);
}

FaultInjector::Armed *
FaultInjector::match(FaultKind kind, const std::string &site)
{
    Armed *firing = nullptr;
    for (Armed &a : armed) {
        if (a.spec.kind != kind)
            continue;
        if (!a.spec.site.empty() &&
            site.find(a.spec.site) == std::string::npos) {
            continue;
        }
        // Count the opportunity even when it does not fire: nth is an
        // index into the opportunity stream, which must advance
        // identically on every replay.
        ++a.hits;
        if (!firing && a.hits >= a.spec.nth &&
            a.hits < a.spec.nth + a.spec.count) {
            firing = &a;
        }
    }
    return firing;
}

void
FaultInjector::record(FaultKind kind, const std::string &site,
                      std::string detail)
{
    InjectionRecord rec;
    rec.tick = sim ? sim->curTick() : 0;
    rec.kind = kind;
    rec.site = site;
    rec.detail = std::move(detail);
    inform("inject: %s at %s (tick %llu): %s", faultKindName(kind),
           site.c_str(),
           static_cast<unsigned long long>(rec.tick),
           rec.detail.c_str());
    _log.push_back(std::move(rec));
}

Tick
FaultInjector::responseDelay(const std::string &site)
{
    Armed *a = match(FaultKind::DelayResponse, site);
    if (!a)
        return 0;
    record(FaultKind::DelayResponse, site,
           "hold response " + std::to_string(a->spec.delayTicks) +
               " ticks");
    return a->spec.delayTicks;
}

bool
FaultInjector::dropResponse(const std::string &site)
{
    Armed *a = match(FaultKind::DropResponse, site);
    if (!a)
        return false;
    record(FaultKind::DropResponse, site, "response discarded");
    return true;
}

bool
FaultInjector::refuseRequest(const std::string &site)
{
    Armed *a = match(FaultKind::RetryStorm, site);
    if (!a)
        return false;
    record(FaultKind::RetryStorm, site, "request refused");
    return true;
}

bool
FaultInjector::corruptPayload(const std::string &site,
                              std::uint64_t addr, std::uint8_t *data,
                              unsigned size)
{
    if (size == 0)
        return false;
    Armed *a = match(FaultKind::BitFlip, site);
    if (!a)
        return false;
    std::uint64_t bit = a->spec.bit % (8ull * size);
    data[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
    record(FaultKind::BitFlip, site,
           "flipped bit " + std::to_string(bit) + " of payload at 0x" +
               [addr] {
                   char buf[20];
                   std::snprintf(buf, sizeof(buf), "%llx",
                                 static_cast<unsigned long long>(addr));
                   return std::string(buf);
               }());
    return true;
}

bool
FaultInjector::dropIrq(const std::string &site)
{
    Armed *a = match(FaultKind::DropIrq, site);
    if (!a)
        return false;
    record(FaultKind::DropIrq, site, "interrupt swallowed");
    return true;
}

bool
FaultInjector::spuriousIrq(const std::string &site, int &line_out)
{
    Armed *a = match(FaultKind::SpuriousIrq, site);
    if (!a)
        return false;
    if (a->spec.line >= 0)
        line_out = a->spec.line;
    record(FaultKind::SpuriousIrq, site,
           "spurious interrupt on line " + std::to_string(line_out));
    return true;
}

Tick
FaultInjector::dmaStall(const std::string &site)
{
    Armed *a = match(FaultKind::DmaStall, site);
    if (!a)
        return 0;
    record(FaultKind::DmaStall, site,
           "pump stalled " + std::to_string(a->spec.delayTicks) +
               " ticks");
    return a->spec.delayTicks;
}

void
FaultInjector::dumpDiagnostics(obs::JsonBuilder &json) const
{
    json.field("seed", _plan.seed);
    json.beginArray("plan");
    for (const Armed &a : armed) {
        json.beginObject()
            .field("spec", a.spec.describe())
            .field("opportunities", a.hits)
            .endObject();
    }
    json.endArray();
    json.beginArray("fired");
    for (const InjectionRecord &rec : _log) {
        json.beginObject()
            .field("tick", rec.tick)
            .field("kind", faultKindName(rec.kind))
            .field("site", rec.site)
            .field("detail", rec.detail)
            .endObject();
    }
    json.endArray();
}

} // namespace salam::inject

/**
 * @file
 * ProgressSentinel: the forward-progress watchdog.
 *
 * Components report retirement-level progress via
 * SimObject::noteProgress(); the sentinel samples the simulation's
 * progress counter on a periodic event. If a whole window passes with
 * no progress while the run is not done, the simulation is livelocked
 * (e.g. the driver CPU polling an MMR that will never change) — the
 * sentinel writes a structured state dump and terminates through
 * fatal() with outcome "deadlock", naming the stuck components.
 *
 * The second hang mode — the event queue draining with the host
 * unfinished (a true deadlock: nothing left to wake anyone) — cannot
 * fire an event, so SalamSystem::run()/the bench harness detect it
 * after run() returns and call reportHang() directly.
 */

#ifndef SALAM_INJECT_PROGRESS_SENTINEL_HH
#define SALAM_INJECT_PROGRESS_SENTINEL_HH

#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "sim/sim_object.hh"
#include "sim/types.hh"

namespace salam::inject
{

/**
 * Serialize the full simulation state — every object's last-progress
 * tick, stuck reason, and dumpDiagnostics() payload, plus the fault
 * injector's plan and firing log — as one JSON object.
 */
std::string buildStateDump(Simulation &sim, const std::string &reason);

/**
 * The objects that report themselves stuck (non-empty stuckReason),
 * as (name, reason) pairs in registration order.
 */
std::vector<std::pair<std::string, std::string>>
collectSuspects(Simulation &sim);

/** Write @p json to @p path; warn()s and returns false on failure. */
bool writeStateDump(const std::string &path, const std::string &json);

/**
 * Terminal hang path shared by the sentinel and the queue-drain
 * checks: write the state dump (if @p dump_path is non-empty), set
 * the fatal outcome (@p outcome: "deadlock" for the classic hang
 * modes, "timeout" for a host-deadline expiry), and fatal() with a
 * message naming the stuck components.
 */
[[noreturn]] void reportHang(Simulation &sim, const std::string &reason,
                             const std::string &dump_path,
                             const char *outcome = "deadlock");

/** Watchdog for livelock (events still firing, nothing retiring). */
class ProgressSentinel : public SimObject
{
  public:
    struct Config
    {
        /** No-progress window before the watchdog trips. */
        Tick windowTicks = 1'000'000;

        /** State-dump destination; "" skips the file. */
        std::string dumpPath;

        /**
         * Run-completion predicate; once true the sentinel stops
         * rescheduling itself. Required: without it the sentinel
         * would keep an otherwise-finished run alive forever.
         */
        std::function<bool()> done;

        /**
         * Absolute host-time deadline (obs::hostNowNs() value); 0
         * disables. When the wall clock passes it before done(),
         * the run is terminated with outcome "timeout" and a state
         * dump — the per-point deadline a sweep worker arms so a
         * hung configuration cannot stall the pool.
         */
        std::uint64_t hostDeadlineNs = 0;

        /**
         * Watch the retirement-progress counter (the classic
         * livelock watchdog). Deadline-only sentinels disable it so
         * a slow-but-progressing point is judged purely on time.
         */
        bool watchProgress = true;
    };

    ProgressSentinel(Simulation &sim, std::string name, Config cfg);

    /** Arm the watchdog (idempotent). */
    void start();

    std::string stuckReason() const override { return {}; }

  private:
    void check();

    Config cfg;
    std::uint64_t lastCount = 0;
    EventFunctionWrapper checkEvent;
};

/**
 * Arm a deadline-only sentinel over @p sim when the calling thread's
 * SimContext carries a point deadline (SweepRunner sets one per
 * attempt from --point-timeout). Returns null when no deadline is
 * set. The sentinel produces the structured hang dump at @p dump_path
 * and classifies the run "timeout"; the event loop's own backstop
 * (dump-less) still covers the frozen-tick case where no event can
 * fire.
 */
ProgressSentinel *armPointDeadline(Simulation &sim,
                                   std::function<bool()> done,
                                   const std::string &dump_path);

} // namespace salam::inject

#endif // SALAM_INJECT_PROGRESS_SENTINEL_HH

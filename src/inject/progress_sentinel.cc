#include "progress_sentinel.hh"

#include <fstream>

#include "fault_injector.hh"
#include "obs/host_telemetry.hh"
#include "sim/logging.hh"
#include "sim/simulation.hh"

namespace salam::inject
{

std::string
buildStateDump(Simulation &sim, const std::string &reason)
{
    obs::JsonBuilder json;
    json.beginObject()
        .field("schema", std::uint64_t(1))
        .field("kind", "salam_state_dump")
        .field("reason", reason)
        .field("tick", sim.curTick())
        .field("progress_events", sim.progressEvents());

    json.beginArray("suspects");
    for (const auto &[name, why] : collectSuspects(sim)) {
        json.beginObject()
            .field("object", name)
            .field("reason", why)
            .endObject();
    }
    json.endArray();

    json.beginArray("objects");
    for (const SimObject *obj : sim.objectList()) {
        json.beginObject()
            .field("name", obj->name())
            .field("last_progress_tick", obj->lastProgressTick());
        std::string why = obj->stuckReason();
        if (!why.empty())
            json.field("stuck", why);
        json.beginObject("state");
        obj->dumpDiagnostics(json);
        json.endObject();
        json.endObject();
    }
    json.endArray();

    if (FaultInjector *fi = sim.faultInjector()) {
        json.beginObject("injection");
        fi->dumpDiagnostics(json);
        json.endObject();
    }

    json.endObject();
    SALAM_ASSERT(json.balanced());
    return json.str();
}

std::vector<std::pair<std::string, std::string>>
collectSuspects(Simulation &sim)
{
    std::vector<std::pair<std::string, std::string>> out;
    for (const SimObject *obj : sim.objectList()) {
        std::string why = obj->stuckReason();
        if (!why.empty())
            out.emplace_back(obj->name(), std::move(why));
    }
    return out;
}

bool
writeStateDump(const std::string &path, const std::string &json)
{
    std::ofstream os(path);
    if (!os) {
        warn("could not write state dump to '%s'", path.c_str());
        return false;
    }
    os << json << "\n";
    return static_cast<bool>(os);
}

void
reportHang(Simulation &sim, const std::string &reason,
           const std::string &dump_path, const char *outcome)
{
    if (!dump_path.empty())
        writeStateDump(dump_path, buildStateDump(sim, reason));

    std::string who;
    for (const auto &[name, why] : collectSuspects(sim)) {
        if (!who.empty())
            who += "; ";
        who += name + ": " + why;
    }
    if (who.empty())
        who = "no component reports a stuck reason";

    setFatalOutcome(outcome);
    if (dump_path.empty()) {
        fatal("%s — stuck: %s", reason.c_str(), who.c_str());
    } else {
        fatal("%s — stuck: %s (state dump: %s)", reason.c_str(),
              who.c_str(), dump_path.c_str());
    }
}

ProgressSentinel::ProgressSentinel(Simulation &sim, std::string name,
                                   Config cfg_)
    : SimObject(sim, std::move(name)), cfg(std::move(cfg_)),
      checkEvent([this] { check(); }, this->name() + ".check",
                 Event::defaultPri, obs::HostPhase::Other)
{
    if (cfg.windowTicks == 0)
        fatal("%s: watchdog window must be non-zero",
              this->name().c_str());
    SALAM_ASSERT(cfg.done);
}

void
ProgressSentinel::start()
{
    lastCount = simulation().progressEvents();
    if (!checkEvent.scheduled())
        schedule(checkEvent, curTick() + cfg.windowTicks);
}

void
ProgressSentinel::check()
{
    if (cfg.done())
        return;
    if (cfg.hostDeadlineNs != 0 &&
        obs::hostNowNs() > cfg.hostDeadlineNs) {
        reportHang(simulation(),
                   "point deadline exceeded (host wall clock)",
                   cfg.dumpPath, "timeout");
    }
    if (cfg.watchProgress) {
        std::uint64_t now = simulation().progressEvents();
        if (now == lastCount) {
            reportHang(simulation(),
                       "no forward progress for " +
                           std::to_string(cfg.windowTicks) +
                           " ticks (watchdog)",
                       cfg.dumpPath);
        }
        lastCount = now;
    }
    schedule(checkEvent, curTick() + cfg.windowTicks);
}

ProgressSentinel *
armPointDeadline(Simulation &sim, std::function<bool()> done,
                 const std::string &dump_path)
{
    std::uint64_t deadline =
        SimContext::current().pointDeadlineNs();
    if (deadline == 0)
        return nullptr;
    ProgressSentinel::Config cfg;
    // The window only sets the polling cadence here; keep it small
    // relative to any realistic kernel so the dump-producing path
    // fires well before a caller-side timeout would.
    cfg.windowTicks = 100'000;
    cfg.dumpPath = dump_path;
    cfg.done = std::move(done);
    cfg.hostDeadlineNs = deadline;
    cfg.watchProgress = false;
    auto &sentinel = sim.create<ProgressSentinel>(
        "point_deadline", std::move(cfg));
    sentinel.start();
    return &sentinel;
}

} // namespace salam::inject

/**
 * @file
 * FaultPlan: the declarative description of a fault campaign.
 *
 * A plan is a list of FaultSpecs parsed from "--inject" arguments:
 *
 *     kind@site[:key=value]*
 *
 * where kind names what to break, site is a substring matched against
 * the component name at the injection point (empty matches every
 * site of that kind), and the optional keys tune when and how:
 *
 *   nth=N    fire on the N-th matching opportunity (1-based; when
 *            omitted, derived deterministically from the plan seed so
 *            the same seed replays the same campaign)
 *   count=N  fire on N consecutive opportunities (default 1)
 *   delay=T  extra ticks for delay_response / dma_stall (default 1000)
 *   bit=B    payload bit to flip for bit_flip (default seeded)
 *   line=L   IRQ line for spurious_irq (default: the awaited line)
 *
 * Plans are pure data: parsing and description here, firing decisions
 * in FaultInjector.
 */

#ifndef SALAM_INJECT_FAULT_PLAN_HH
#define SALAM_INJECT_FAULT_PLAN_HH

#include <cstdint>
#include <string>
#include <vector>

namespace salam::inject
{

/** What to break. */
enum class FaultKind
{
    /** Hold a memory response in the queue for extra ticks. */
    DelayResponse,

    /** Swallow a memory response entirely (requester hangs). */
    DropResponse,

    /** Refuse timing requests, forcing the sender onto retry paths. */
    RetryStorm,

    /** Flip one bit in a serviced data payload. */
    BitFlip,

    /** Swallow an interrupt at the moment it would be raised. */
    DropIrq,

    /** Deliver an interrupt the hardware never raised. */
    SpuriousIrq,

    /** Stall the DMA pump before issuing its next burst. */
    DmaStall,
};

const char *faultKindName(FaultKind kind);

/** One planned fault. */
struct FaultSpec
{
    FaultKind kind = FaultKind::DelayResponse;

    /** Substring matched against the site name; "" matches all. */
    std::string site;

    /** 1-based opportunity index at which to start firing. */
    std::uint64_t nth = 0;

    /** Number of consecutive opportunities to fire on. */
    std::uint64_t count = 1;

    /** Extra ticks for DelayResponse / DmaStall. */
    std::uint64_t delayTicks = 1000;

    /** Payload bit index for BitFlip (modulo payload width). */
    std::uint64_t bit = 0;

    /** IRQ line for SpuriousIrq; -1 = whatever line is awaited. */
    int line = -1;

    /** True once nth/bit were given explicitly (not seed-derived). */
    bool nthExplicit = false;
    bool bitExplicit = false;

    /** Render back to the grammar, with resolved nth/bit. */
    std::string describe() const;
};

/** A seeded list of faults to inject into one run. */
struct FaultPlan
{
    /** Campaign seed; resolves unspecified nth/bit fields. */
    std::uint64_t seed = 1;

    std::vector<FaultSpec> specs;

    /**
     * Parse one "kind@site[:key=value]*" spec and append it.
     * @return "" on success, else a diagnostic for fatal().
     */
    std::string parse(const std::string &text);

    /**
     * Fill in seed-derived defaults (nth, bit) for every spec that
     * did not set them explicitly. Idempotent; called by the
     * injector's constructor, and by tests that want to inspect the
     * resolved plan.
     */
    void resolve();

    bool empty() const { return specs.empty(); }
};

} // namespace salam::inject

#endif // SALAM_INJECT_FAULT_PLAN_HH

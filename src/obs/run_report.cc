#include "run_report.hh"

#include <cstdio>
#include <fstream>
#include <mutex>
#include <sstream>

#include "host_telemetry.hh"
#include "json.hh"

namespace salam::obs
{

const char *
simulatorVersionString()
{
    return "salam-0.2";
}

std::uint64_t
fnv1aHash(const std::string &text)
{
    std::uint64_t hash = 0xcbf29ce484222325ull;
    for (unsigned char c : text) {
        hash ^= c;
        hash *= 0x100000001b3ull;
    }
    return hash;
}

namespace
{

std::string
hex64(std::uint64_t v)
{
    char buf[2 + 16 + 1];
    std::snprintf(buf, sizeof(buf), "0x%016llx",
                  static_cast<unsigned long long>(v));
    return buf;
}

} // namespace

void
RunReport::writeJson(std::ostream &os) const
{
    os << "{\"schema_version\":" << schemaVersion
       << ",\"simulator_version\":\""
       << jsonEscape(simulatorVersion.empty()
                         ? simulatorVersionString()
                         : simulatorVersion)
       << "\""
       // Hex string, not a number: 64-bit hashes do not survive the
       // double-precision round trip most JSON readers apply.
       << ",\"config_hash\":\"" << hex64(configHash) << "\""
       << ",\"command_line\":\"" << jsonEscape(commandLine) << "\""
       << ",\"outcome\":\""
       << jsonEscape(outcome.empty() ? "ok" : outcome) << "\""
       << ",\"run\":\"" << jsonEscape(run) << "\""
       << ",\"cycles\":" << cycles
       << ",\"sim_seconds\":" << jsonNumber(simSeconds)
       << ",\"compile_seconds\":" << jsonNumber(compileSeconds);
    for (const auto &[key, value] : extra)
        os << ",\"" << jsonEscape(key) << "\":" << jsonNumber(value);
    if (!statsJson.empty())
        os << ",\"stats\":" << statsJson;
    if (!hostJson.empty())
        os << ",\"host\":" << hostJson;
    os << "}";
}

bool
RunReport::appendToFile(const std::string &path) const
{
    // Sweep workers may append reports to one shared JSONL file;
    // serialize so concurrent lines never interleave mid-record.
    // Serialization to text happens *outside* the lock so workers
    // only contend for the file append itself, not for JSON
    // rendering; the instrumented mutex lets host telemetry report
    // how much wall time that residual contention costs.
    ScopedHostPhase phase(HostPhase::ReportIo);
    std::ostringstream line;
    writeJson(line);
    line << "\n";

    static TimedMutex appendMutex("run_report_append");
    std::lock_guard<TimedMutex> lock(appendMutex);
    std::ofstream os(path, std::ios::app);
    if (!os)
        return false;
    os << line.str();
    return static_cast<bool>(os);
}

} // namespace salam::obs

#include "run_report.hh"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <mutex>
#include <sstream>

#include "host_telemetry.hh"
#include "json.hh"
#include "sim/sim_context.hh"

namespace salam::obs
{

const char *
simulatorVersionString()
{
    return "salam-0.2";
}

const char *
gitShaString()
{
#ifdef SALAM_GIT_SHA
    return SALAM_GIT_SHA;
#else
    return "unknown";
#endif
}

const char *
buildTypeString()
{
#ifdef SALAM_BUILD_TYPE
    return SALAM_BUILD_TYPE;
#else
    return "unknown";
#endif
}

const char *
sanitizersString()
{
#ifdef SALAM_SANITIZERS
    return SALAM_SANITIZERS;
#else
    return "";
#endif
}

std::string
buildInfoJson()
{
    std::string out = "{\"git_sha\":\"";
    out += jsonEscape(gitShaString());
    out += "\",\"build_type\":\"";
    out += jsonEscape(buildTypeString());
    out += "\",\"sanitizers\":\"";
    out += jsonEscape(sanitizersString());
    out += "\"}";
    return out;
}

std::uint64_t
fnv1aHash(const std::string &text)
{
    std::uint64_t hash = 0xcbf29ce484222325ull;
    for (unsigned char c : text) {
        hash ^= c;
        hash *= 0x100000001b3ull;
    }
    return hash;
}

bool
ensureParentDir(const std::string &path)
{
    std::filesystem::path parent =
        std::filesystem::path(path).parent_path();
    if (parent.empty())
        return true;
    std::error_code ec;
    std::filesystem::create_directories(parent, ec);
    return !ec || std::filesystem::is_directory(parent);
}

namespace
{

std::string
hex64(std::uint64_t v)
{
    char buf[2 + 16 + 1];
    std::snprintf(buf, sizeof(buf), "0x%016llx",
                  static_cast<unsigned long long>(v));
    return buf;
}

/**
 * Append @p data to @p path under the shared append lock. The lock
 * guards only the file operation — callers serialize to text first —
 * and the instrumented mutex lets host telemetry report how much
 * wall time the residual contention costs.
 */
bool
lockedAppend(const std::string &path, const std::string &data)
{
    static TimedMutex appendMutex("run_report_append");
    std::lock_guard<TimedMutex> lock(appendMutex);
    if (!ensureParentDir(path))
        return false;
    std::ofstream os(path, std::ios::app);
    if (!os)
        return false;
    os << data;
    return static_cast<bool>(os);
}

} // namespace

ReportBuffer::~ReportBuffer()
{
    flush();
}

bool
ReportBuffer::flush()
{
    if (entries.empty())
        return true;
    // Group by destination so each path is opened once per flush; a
    // sweep's worth of lines lands in one append per worker.
    std::map<std::string, std::string> by_path;
    for (auto &[path, line] : entries)
        by_path[path] += line;
    entries.clear();
    bool ok = true;
    for (const auto &[path, data] : by_path)
        ok = lockedAppend(path, data) && ok;
    return ok;
}

void
RunReport::writeJson(std::ostream &os) const
{
    os << "{\"schema_version\":" << schemaVersion
       << ",\"simulator_version\":\""
       << jsonEscape(simulatorVersion.empty()
                         ? simulatorVersionString()
                         : simulatorVersion)
       << "\""
       // Hex string, not a number: 64-bit hashes do not survive the
       // double-precision round trip most JSON readers apply.
       << ",\"config_hash\":\"" << hex64(configHash) << "\""
       << ",\"command_line\":\"" << jsonEscape(commandLine) << "\""
       << ",\"build\":" << buildInfoJson()
       << ",\"outcome\":\""
       << jsonEscape(outcome.empty() ? "ok" : outcome) << "\""
       << ",\"run\":\"" << jsonEscape(run) << "\""
       << ",\"cycles\":" << cycles
       << ",\"sim_seconds\":" << jsonNumber(simSeconds)
       << ",\"compile_seconds\":" << jsonNumber(compileSeconds);
    for (const auto &[key, value] : extra)
        os << ",\"" << jsonEscape(key) << "\":" << jsonNumber(value);
    if (!statsJson.empty())
        os << ",\"stats\":" << statsJson;
    if (!hostJson.empty())
        os << ",\"host\":" << hostJson;
    os << "}";
}

std::string
RunReport::jsonString() const
{
    std::ostringstream os;
    writeJson(os);
    return os.str();
}

bool
RunReport::appendToFile(const std::string &path) const
{
    ScopedHostPhase phase(HostPhase::ReportIo);
    std::ostringstream line;
    writeJson(line);
    line << "\n";

    // A sweep worker buffers worker-locally (no lock, no I/O); the
    // buffer's end-of-sweep flush performs the one real append.
    if (ReportBuffer *sink = SimContext::current().reportSink()) {
        sink->add(path, line.str());
        return true;
    }
    return lockedAppend(path, line.str());
}

} // namespace salam::obs

#include "run_report.hh"

#include <fstream>
#include <sstream>

#include "json.hh"

namespace salam::obs
{

void
RunReport::writeJson(std::ostream &os) const
{
    os << "{\"run\":\"" << jsonEscape(run) << "\""
       << ",\"cycles\":" << cycles
       << ",\"sim_seconds\":" << jsonNumber(simSeconds)
       << ",\"compile_seconds\":" << jsonNumber(compileSeconds);
    for (const auto &[key, value] : extra)
        os << ",\"" << jsonEscape(key) << "\":" << jsonNumber(value);
    if (!statsJson.empty())
        os << ",\"stats\":" << statsJson;
    os << "}";
}

bool
RunReport::appendToFile(const std::string &path) const
{
    std::ofstream os(path, std::ios::app);
    if (!os)
        return false;
    writeJson(os);
    os << "\n";
    return static_cast<bool>(os);
}

} // namespace salam::obs

#include "result_store.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <sstream>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>

#include "host_telemetry.hh"
#include "json.hh"
#include "run_report.hh"
#include "sim/sim_context.hh"

#ifdef __unix__
#include <unistd.h>
#endif

namespace salam::obs
{

namespace fs = std::filesystem;

namespace
{

std::uint64_t
wallClockNs()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::system_clock::now().time_since_epoch())
            .count());
}

std::string
hex64(std::uint64_t v)
{
    char buf[2 + 16 + 1];
    std::snprintf(buf, sizeof(buf), "0x%016llx",
                  static_cast<unsigned long long>(v));
    return buf;
}

unsigned long
processId()
{
#ifdef __unix__
    return static_cast<unsigned long>(::getpid());
#else
    return 0;
#endif
}

/** Envelope one StoreRecord as a single JSONL line. */
std::string
envelopeLine(const StoreRecord &rec)
{
    std::ostringstream os;
    os << "{\"store_schema\":" << ResultStore::storeSchemaVersion
       << ",\"kind\":\"" << jsonEscape(rec.kind) << "\""
       << ",\"bench\":\"" << jsonEscape(rec.bench) << "\""
       << ",\"kernel\":\"" << jsonEscape(rec.kernel) << "\""
       << ",\"outcome\":\"" << jsonEscape(rec.outcome) << "\""
       << ",\"config_hash\":\"" << hex64(rec.configHash) << "\"";
    if (rec.point >= 0)
        os << ",\"point\":" << rec.point;
    os << ",\"timestamp_ns\":" << rec.timestampNs
       << ",\"record\":"
       << (rec.json.empty() ? std::string("{}") : rec.json) << "}";
    os << "\n";
    return os.str();
}

} // namespace

const char *
ResultStore::manifestName()
{
    return "STORE.json";
}

struct ResultStore::Impl
{
    explicit Impl(std::string record_path)
        : recordPath(std::move(record_path)),
          pendingMutex("result_store_pending"),
          fileMutex("result_store_file")
    {}

    std::string recordPath;
    /** Guards pending only — never held across file I/O. */
    TimedMutex pendingMutex;
    /** Serializes flush()es of this store. */
    TimedMutex fileMutex;
    std::vector<std::string> pending;
    /** This writer's record file has been registered in STORE.json. */
    bool manifestRegistered = false;
};

ResultStore::ResultStore(std::string dir, std::string record_path)
    : impl(std::make_unique<Impl>(std::move(record_path))),
      storeDir(std::move(dir))
{}

ResultStore::~ResultStore()
{
    // fprintf, not warn(): the logging backend lives above salam_obs
    // in the link order and lean tools link salam_obs alone.
    if (!flush())
        std::fprintf(stderr,
                     "warn: result store: final flush to '%s' "
                     "failed\n",
                     impl->recordPath.c_str());
}

std::unique_ptr<ResultStore>
ResultStore::open(const std::string &dir, std::string *error)
{
    std::error_code ec;
    fs::create_directories(dir, ec);
    if (ec && !fs::is_directory(dir)) {
        if (error != nullptr)
            *error = "cannot create store directory '" + dir +
                     "': " + ec.message();
        return nullptr;
    }

    fs::path manifest = fs::path(dir) / manifestName();
    if (!fs::exists(manifest)) {
        std::ofstream os(manifest);
        if (os) {
            os << "{\"store_schema\":" << storeSchemaVersion
               << ",\"created_by\":\""
               << jsonEscape(simulatorVersionString()) << "\"}\n";
        }
        if (!os) {
            if (error != nullptr)
                *error = "cannot write store manifest in '" + dir +
                         "'";
            return nullptr;
        }
    }

    // One record file per writer process: concurrent processes never
    // share a file, so appends need no cross-process locking. The
    // sequence suffix keeps reopened stores in one process distinct.
    static std::atomic<unsigned> openSeq{0};
    unsigned seq = openSeq.fetch_add(1, std::memory_order_relaxed);
    std::string record_path =
        (fs::path(dir) /
         ("records-" + std::to_string(processId()) + "-" +
          std::to_string(seq) + ".jsonl"))
            .string();

    return std::unique_ptr<ResultStore>(
        new ResultStore(dir, std::move(record_path)));
}

void
ResultStore::append(StoreRecord rec)
{
    rec.timestampNs = wallClockNs();
    if (rec.point < 0)
        rec.point = SimContext::current().sweepPointIndex();
    // Serialize outside the lock; the lock guards one vector push.
    std::string line = envelopeLine(rec);
    std::lock_guard<TimedMutex> lock(impl->pendingMutex);
    impl->pending.push_back(std::move(line));
}

void
ResultStore::appendRunReport(const RunReport &report,
                             const std::string &bench)
{
    StoreRecord rec;
    rec.kind = "run";
    rec.bench = bench;
    rec.kernel = report.run;
    rec.outcome = report.outcome.empty() ? "ok" : report.outcome;
    rec.configHash = report.configHash;
    rec.json = report.jsonString();
    append(std::move(rec));
}

bool
ResultStore::flush()
{
    std::vector<std::string> lines;
    {
        std::lock_guard<TimedMutex> lock(impl->pendingMutex);
        lines.swap(impl->pending);
    }
    if (lines.empty())
        return true;
    std::lock_guard<TimedMutex> io(impl->fileMutex);
    {
        std::ofstream os(impl->recordPath, std::ios::app);
        if (!os) {
            // Put the records back so a later flush can retry.
            std::lock_guard<TimedMutex> lock(impl->pendingMutex);
            impl->pending.insert(
                impl->pending.begin(),
                std::make_move_iterator(lines.begin()),
                std::make_move_iterator(lines.end()));
            return false;
        }
        for (const std::string &line : lines)
            os << line;
        if (!os)
            return false;
    }

    // First successful flush: register this writer's record file in
    // the manifest (one appended JSON line; O_APPEND keeps concurrent
    // writers' lines intact). Registration after the record write
    // means a crash in between leaves an unmanifested record file —
    // the reader loads it anyway with a warning, never silently drops
    // it.
    if (!impl->manifestRegistered) {
        fs::path manifest = fs::path(storeDir) / manifestName();
        std::string base =
            fs::path(impl->recordPath).filename().string();
        std::ofstream ms(manifest, std::ios::app);
        if (ms) {
            ms << "{\"record_file\":\"" << jsonEscape(base)
               << "\"}\n";
        }
        if (ms) {
            impl->manifestRegistered = true;
        } else {
            std::fprintf(stderr,
                         "warn: result store: cannot register '%s' "
                         "in manifest '%s'\n",
                         base.c_str(), manifest.string().c_str());
        }
    }
    return true;
}

std::size_t
ResultStore::pendingRecords() const
{
    std::lock_guard<TimedMutex> lock(impl->pendingMutex);
    return impl->pending.size();
}

bool
RecordFilter::matches(const LoadedRecord &rec) const
{
    return (kind.empty() || rec.kind == kind) &&
           (bench.empty() || rec.bench == bench) &&
           (kernel.empty() || rec.kernel == kernel) &&
           (outcome.empty() || rec.outcome == outcome);
}

std::uint64_t
parseConfigHash(const std::string &text)
{
    if (text.empty())
        return 0;
    char *end = nullptr;
    std::uint64_t v = std::strtoull(text.c_str(), &end, 0);
    if (end == text.c_str() || *end != '\0')
        return 0;
    return v;
}

namespace
{

/**
 * Decode one record line into @p out. Returns false (with @p why)
 * on malformed input. A line that is valid JSON but carries no store
 * envelope is ingested as a bare RunReport payload — plain JSONL
 * from --report-out reads as a store of kind="run" records.
 */
bool
decodeLine(const std::string &text, LoadedRecord &out,
           std::string &why)
{
    JsonValue value;
    try {
        value = parseJson(text);
    } catch (const std::exception &e) {
        why = e.what();
        return false;
    }
    if (!value.isObject()) {
        why = "record line is not a JSON object";
        return false;
    }

    if (value.has("store_schema") && value.has("record")) {
        out.kind = value.stringOr("kind", "run");
        out.bench = value.stringOr("bench", "");
        out.kernel = value.stringOr("kernel", "");
        out.outcome = value.stringOr("outcome", "ok");
        out.configHash =
            parseConfigHash(value.stringOr("config_hash", ""));
        out.point = static_cast<long>(value.numberOr("point", -1));
        out.timestampNs = static_cast<std::uint64_t>(
            value.numberOr("timestamp_ns", 0));
        // Re-slice the raw payload from the original text so unknown
        // payload fields survive verbatim: find the "record": key and
        // take everything up to the envelope's closing brace.
        std::size_t at = text.find("\"record\":");
        std::size_t end = text.find_last_of('}');
        if (at != std::string::npos && end != std::string::npos &&
            end > at) {
            out.rawJson =
                text.substr(at + 9, end - (at + 9));
        }
        out.record = value.at("record");
        return true;
    }

    // Bare RunReport JSONL line.
    out.kind = "run";
    out.kernel = value.stringOr("run", "");
    out.outcome = value.stringOr("outcome", "ok");
    out.configHash =
        parseConfigHash(value.stringOr("config_hash", ""));
    out.rawJson = text;
    out.record = std::move(value);
    return true;
}

void
loadFile(const std::string &path, std::vector<LoadedRecord> &recs,
         std::vector<std::string> &warnings, bool skip_manifest)
{
    std::ifstream is(path);
    if (!is) {
        warnings.push_back("cannot read '" + path + "'");
        return;
    }
    std::string line;
    unsigned lineno = 0;
    while (std::getline(is, line)) {
        ++lineno;
        if (line.find_first_not_of(" \t\r") == std::string::npos)
            continue;
        LoadedRecord rec;
        std::string why;
        if (!decodeLine(line, rec, why)) {
            if (!skip_manifest || lineno > 1) {
                warnings.push_back(path + ":" +
                                   std::to_string(lineno) +
                                   ": skipped (" + why + ")");
            }
            continue;
        }
        rec.file = path;
        rec.line = lineno;
        recs.push_back(std::move(rec));
    }
}

/**
 * Parse the store manifest: the header line (schema version) followed
 * by one registration line per record file a writer has flushed.
 * Corrupt or truncated lines (a writer killed mid-append) are skipped
 * with a warning — the manifest is advisory, never load-fatal.
 * Returns false when the manifest is missing or unreadable.
 */
bool
readManifest(const std::string &dir,
             std::vector<std::string> &registered,
             std::vector<std::string> &warnings)
{
    fs::path manifest = fs::path(dir) / ResultStore::manifestName();
    std::ifstream is(manifest);
    if (!is) {
        warnings.push_back("store manifest '" + manifest.string() +
                           "' is missing or unreadable; loading "
                           "record files by directory scan only");
        return false;
    }
    std::string line;
    unsigned lineno = 0;
    while (std::getline(is, line)) {
        ++lineno;
        if (line.find_first_not_of(" \t\r") == std::string::npos)
            continue;
        JsonValue value;
        try {
            value = parseJson(line);
            if (!value.isObject())
                throw std::runtime_error(
                    "manifest line is not a JSON object");
        } catch (const std::exception &e) {
            warnings.push_back(manifest.string() + ":" +
                               std::to_string(lineno) +
                               ": skipped manifest line (" +
                               std::string(e.what()) + ")");
            continue;
        }
        std::string file = value.stringOr("record_file", "");
        if (!file.empty()) {
            registered.push_back(std::move(file));
            continue;
        }
        if (value.has("store_schema")) {
            double schema = value.numberOr("store_schema", 0.0);
            if (schema >
                static_cast<double>(ResultStore::storeSchemaVersion))
                warnings.push_back(
                    "store manifest declares schema " +
                    std::to_string(static_cast<long>(schema)) +
                    " (this reader understands " +
                    std::to_string(ResultStore::storeSchemaVersion) +
                    "); unknown fields are preserved verbatim");
            continue;
        }
        warnings.push_back(manifest.string() + ":" +
                           std::to_string(lineno) +
                           ": skipped manifest line (no record_file "
                           "or store_schema key)");
    }
    return true;
}

} // namespace

StoreReader
StoreReader::load(const std::string &path)
{
    StoreReader reader;
    std::error_code ec;

    if (fs::is_directory(path, ec)) {
        std::vector<std::string> files;
        for (const auto &entry : fs::directory_iterator(path, ec)) {
            if (entry.path().extension() == ".jsonl")
                files.push_back(entry.path().string());
        }
        if (ec) {
            reader.loadError =
                "cannot scan store '" + path + "': " + ec.message();
            return reader;
        }
        // Deterministic load order regardless of directory order.
        std::sort(files.begin(), files.end());

        // Cross-check the manifest against the directory: a record
        // file the manifest lists but the scan did not find means
        // data was lost (or the store was pruned by hand); a record
        // file on disk that no writer registered means the writer
        // died between its record flush and the manifest append.
        // Both are warnings — every readable record still loads, and
        // resume treats anything unreadable as not-done.
        std::vector<std::string> registered;
        if (readManifest(path, registered, reader.loadWarnings) &&
            !registered.empty()) {
            std::unordered_set<std::string> present;
            for (const std::string &file : files)
                present.insert(fs::path(file).filename().string());
            std::unordered_set<std::string> known(registered.begin(),
                                                  registered.end());
            for (const std::string &name : registered) {
                if (present.count(name) == 0)
                    reader.loadWarnings.push_back(
                        "manifest lists '" + name +
                        "' but the file is missing (partial flush "
                        "or pruned store); its records are treated "
                        "as not done");
            }
            for (const std::string &file : files) {
                std::string base =
                    fs::path(file).filename().string();
                if (known.count(base) == 0)
                    reader.loadWarnings.push_back(
                        "record file '" + base +
                        "' is not registered in the manifest "
                        "(writer interrupted before registration?); "
                        "loaded anyway");
            }
        }

        for (const std::string &file : files)
            loadFile(file, reader.recs, reader.loadWarnings, false);
        reader.loadOk = true;
    } else if (fs::exists(path, ec)) {
        loadFile(path, reader.recs, reader.loadWarnings, false);
        reader.loadOk = true;
    } else {
        reader.loadError = "no store at '" + path + "'";
        return reader;
    }

    for (std::size_t i = 0; i < reader.recs.size(); ++i)
        reader.recs[i].seq = i;
    return reader;
}

std::vector<const LoadedRecord *>
StoreReader::select(const RecordFilter &filter) const
{
    std::vector<const LoadedRecord *> out;
    for (const LoadedRecord &rec : recs) {
        if (filter.matches(rec))
            out.push_back(&rec);
    }
    return out;
}

const LoadedRecord *
StoreReader::findByConfigHash(std::uint64_t hash) const
{
    const LoadedRecord *found = nullptr;
    for (const LoadedRecord &rec : recs) {
        if (rec.configHash == hash && hash != 0)
            found = &rec;
    }
    return found;
}

std::vector<const LoadedRecord *>
StoreReader::findAllByConfigHash(std::uint64_t hash) const
{
    std::vector<const LoadedRecord *> out;
    for (const LoadedRecord &rec : recs) {
        if (rec.configHash == hash && hash != 0)
            out.push_back(&rec);
    }
    return out;
}

} // namespace salam::obs

/**
 * @file
 * RunReport: one machine-readable record per simulated run.
 *
 * Benches and examples emit these so experiment trajectories (the
 * BENCH_*.json inputs) can be derived from real instrumented runs
 * instead of hand-copied console output. The stats payload is the
 * StatRegistry::dumpJson rendering, embedded verbatim; the report
 * itself stays dependency-free so any layer can produce one.
 */

#ifndef SALAM_OBS_RUN_REPORT_HH
#define SALAM_OBS_RUN_REPORT_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

namespace salam::obs
{

/** Everything worth persisting about one run. */
struct RunReport
{
    /** Experiment or kernel identifier, e.g. "fig14.gemm". */
    std::string run;

    /** Accelerator cycles to completion (0 when not applicable). */
    std::uint64_t cycles = 0;

    /** Host wall-clock seconds spent simulating. */
    double simSeconds = 0.0;

    /** Host wall-clock seconds spent building/optimizing IR. */
    double compileSeconds = 0.0;

    /** Extra scalar fields (config knobs, derived metrics). */
    std::vector<std::pair<std::string, double>> extra;

    /** StatRegistry::dumpJson output (a JSON object), or empty. */
    std::string statsJson;

    /** Write the report as one self-contained JSON object. */
    void writeJson(std::ostream &os) const;

    /**
     * Append the report as one line of JSON (JSONL) to @p path.
     * @return false on I/O failure.
     */
    bool appendToFile(const std::string &path) const;
};

} // namespace salam::obs

#endif // SALAM_OBS_RUN_REPORT_HH

/**
 * @file
 * RunReport: one machine-readable record per simulated run.
 *
 * Benches and examples emit these so experiment trajectories (the
 * BENCH_*.json inputs) can be derived from real instrumented runs
 * instead of hand-copied console output. The stats payload is the
 * StatRegistry::dumpJson rendering, embedded verbatim; the report
 * itself stays dependency-free so any layer can produce one.
 */

#ifndef SALAM_OBS_RUN_REPORT_HH
#define SALAM_OBS_RUN_REPORT_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

namespace salam::obs
{

/** The simulator's version string, e.g. "salam-0.2". */
const char *simulatorVersionString();

/**
 * FNV-1a over @p text; used to fingerprint run configurations so
 * downstream tooling can group or reject dumps by exact config.
 */
std::uint64_t fnv1aHash(const std::string &text);

/** Everything worth persisting about one run. */
struct RunReport
{
    /**
     * Schema version of the emitted JSON. Bump whenever the layout
     * changes incompatibly; readers reject versions they do not
     * know.
     *   1: run/cycles/sim_seconds/compile_seconds/extra/stats (PR 1)
     *   2: adds schema_version, simulator_version, config_hash, and
     *      command_line metadata
     *   3: adds outcome ("ok" | "deadlock" | "fault")
     *   4: adds optional host (host-telemetry summary: wall-time
     *      phase attribution, lock contention, allocation pressure)
     */
    static constexpr unsigned schemaVersion = 4;

    /** Experiment or kernel identifier, e.g. "fig14.gemm". */
    std::string run;

    /** Producing simulator; simulatorVersionString() when empty. */
    std::string simulatorVersion;

    /** fnv1aHash() of the run's configuration text; 0 = unset. */
    std::uint64_t configHash = 0;

    /** The invoking command line, argv joined with spaces. */
    std::string commandLine;

    /**
     * How the run ended: "ok" (completed and checked), "deadlock"
     * (watchdog fired or the event queue drained with work pending),
     * or "fault" (wrong results or another fatal error).
     */
    std::string outcome = "ok";

    /** Accelerator cycles to completion (0 when not applicable). */
    std::uint64_t cycles = 0;

    /** Host wall-clock seconds spent simulating. */
    double simSeconds = 0.0;

    /** Host wall-clock seconds spent building/optimizing IR. */
    double compileSeconds = 0.0;

    /** Extra scalar fields (config knobs, derived metrics). */
    std::vector<std::pair<std::string, double>> extra;

    /** StatRegistry::dumpJson output (a JSON object), or empty. */
    std::string statsJson;

    /**
     * HostTelemetry::dumpJsonString output (a JSON object), or
     * empty. Host wall-time attribution for this run; schema v4.
     */
    std::string hostJson;

    /** Write the report as one self-contained JSON object. */
    void writeJson(std::ostream &os) const;

    /**
     * Append the report as one line of JSON (JSONL) to @p path.
     * @return false on I/O failure.
     */
    bool appendToFile(const std::string &path) const;
};

} // namespace salam::obs

#endif // SALAM_OBS_RUN_REPORT_HH

/**
 * @file
 * RunReport: one machine-readable record per simulated run.
 *
 * Benches and examples emit these so experiment trajectories (the
 * BENCH_*.json inputs) can be derived from real instrumented runs
 * instead of hand-copied console output. The stats payload is the
 * StatRegistry::dumpJson rendering, embedded verbatim; the report
 * itself stays dependency-free so any layer can produce one.
 *
 * Output routing: appendToFile() consults the calling thread's
 * SimContext. With no report sink bound it appends directly to the
 * file (serialization happens outside the lock; the lock guards only
 * the append). When a sweep has bound a per-worker ReportBuffer, the
 * line is buffered worker-locally with no locking at all and flushed
 * once when the sweep ends — the fix for the per-point
 * mutex-during-I/O contention the parallel-sweep work kept hitting.
 */

#ifndef SALAM_OBS_RUN_REPORT_HH
#define SALAM_OBS_RUN_REPORT_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

namespace salam::obs
{

/** The simulator's version string, e.g. "salam-0.2". */
const char *simulatorVersionString();

/**
 * Build attribution baked in at configure time: the git commit the
 * tree was built from (short SHA; "unknown" outside a checkout), the
 * CMake build type, and any sanitizers in the compile flags. These go
 * into every run report so store records remain attributable across
 * machines and build trees.
 */
const char *gitShaString();
const char *buildTypeString();
const char *sanitizersString();

/** {"git_sha":...,"build_type":...,"sanitizers":...} as JSON. */
std::string buildInfoJson();

/**
 * FNV-1a over @p text; used to fingerprint run configurations so
 * downstream tooling can group or reject dumps by exact config.
 */
std::uint64_t fnv1aHash(const std::string &text);

/**
 * Create the parent directory of @p path (and any missing ancestors)
 * so opening the file for writing cannot fail on a missing directory.
 * Returns false when creation failed; a path with no directory part
 * is trivially true.
 */
bool ensureParentDir(const std::string &path);

/**
 * Per-worker buffer of run-report lines, keyed by destination path.
 * Not thread-safe by design: one buffer belongs to one worker thread
 * (bound via SimContext::setReportSink), and flush() happens after
 * the worker is done — one file append per path per sweep instead of
 * one lock acquisition per point. The destructor flushes.
 */
class ReportBuffer
{
  public:
    ReportBuffer() = default;

    ~ReportBuffer();

    ReportBuffer(const ReportBuffer &) = delete;
    ReportBuffer &operator=(const ReportBuffer &) = delete;

    /** Buffer one already-serialized line (newline included). */
    void
    add(std::string path, std::string line)
    {
        entries.emplace_back(std::move(path), std::move(line));
    }

    /** Append every buffered line to its file; false on I/O error. */
    bool flush();

    std::size_t pendingLines() const { return entries.size(); }

  private:
    std::vector<std::pair<std::string, std::string>> entries;
};

/** Everything worth persisting about one run. */
struct RunReport
{
    /**
     * Schema version of the emitted JSON. Bump whenever the layout
     * changes incompatibly; readers reject versions they do not
     * know. The consolidated v1→v5 history lives in DESIGN.md
     * ("RunReport schema history").
     *   1: run/cycles/sim_seconds/compile_seconds/extra/stats (PR 1)
     *   2: adds schema_version, simulator_version, config_hash, and
     *      command_line metadata
     *   3: adds outcome ("ok" | "deadlock" | "fault")
     *   4: adds optional host (host-telemetry summary: wall-time
     *      phase attribution, lock contention, allocation pressure)
     *   5: adds build (git SHA, build type, sanitizers), always
     *      present
     */
    static constexpr unsigned schemaVersion = 5;

    /** Experiment or kernel identifier, e.g. "fig14.gemm". */
    std::string run;

    /** Producing simulator; simulatorVersionString() when empty. */
    std::string simulatorVersion;

    /** fnv1aHash() of the run's configuration text; 0 = unset. */
    std::uint64_t configHash = 0;

    /** The invoking command line, argv joined with spaces. */
    std::string commandLine;

    /**
     * How the run ended: "ok" (completed and checked), "deadlock"
     * (watchdog fired or the event queue drained with work pending),
     * or "fault" (wrong results or another fatal error).
     */
    std::string outcome = "ok";

    /** Accelerator cycles to completion (0 when not applicable). */
    std::uint64_t cycles = 0;

    /** Host wall-clock seconds spent simulating. */
    double simSeconds = 0.0;

    /** Host wall-clock seconds spent building/optimizing IR. */
    double compileSeconds = 0.0;

    /** Extra scalar fields (config knobs, derived metrics). */
    std::vector<std::pair<std::string, double>> extra;

    /** StatRegistry::dumpJson output (a JSON object), or empty. */
    std::string statsJson;

    /**
     * HostTelemetry::dumpJsonString output (a JSON object), or
     * empty. Host wall-time attribution for this run; schema v4.
     */
    std::string hostJson;

    /** Write the report as one self-contained JSON object. */
    void writeJson(std::ostream &os) const;

    /** writeJson as a string (the JSONL/store line body). */
    std::string jsonString() const;

    /**
     * Append the report as one line of JSON (JSONL) to @p path,
     * through the current SimContext's report sink when one is
     * bound (see the file comment). Creates missing parent
     * directories. @return false on I/O failure.
     */
    bool appendToFile(const std::string &path) const;
};

} // namespace salam::obs

#endif // SALAM_OBS_RUN_REPORT_HH

/**
 * @file
 * IntervalStats: gem5-style periodic statistics dump/reset.
 *
 * Scheduled on the simulation's event queue, it snapshots the
 * StatRegistry every N ticks, resets it, and reschedules — producing
 * a time series where each row holds the *delta* accumulated during
 * one interval (for resettable kinds: scalars, vectors, histograms;
 * Formula stats recompute from live inputs and therefore read as
 * cumulative in every row — that is by design, see statistics.hh).
 * Summing any resettable counter across all rows reproduces the
 * whole-run total, which the regression tests pin down.
 *
 * Because EventQueue::run() services events until the queue drains,
 * a naively self-rescheduling event would keep the run alive
 * forever. The `active` predicate bounds the series: once it returns
 * false the event stops rescheduling; with no predicate, it stops as
 * soon as it is the only thing left in the queue. finalize() then
 * captures the tail partial interval and writes the JSONL file.
 *
 * Each row can also carry per-interval dynamic power, derived from
 * an energy probe (accumulated dynamic energy in pJ — see
 * core/power_report.hh): power[mW] = ΔpJ / Δns.
 */

#ifndef SALAM_OBS_INTERVAL_STATS_HH
#define SALAM_OBS_INTERVAL_STATS_HH

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/statistics.hh"

namespace salam::obs
{

/** Periodic dump-and-reset of one StatRegistry. */
class IntervalStats
{
  public:
    struct Config
    {
        /** Interval length in ticks; must be > 0. */
        Tick intervalTicks = 0;

        /** JSONL output path; empty keeps rows in memory only. */
        std::string path;

        /**
         * Keep rescheduling while this returns true (e.g. "the
         * compute unit has not finished"). Without one, the series
         * stops when the interval event is alone in the queue.
         */
        std::function<bool()> active;
    };

    /** One captured interval. */
    struct Row
    {
        std::uint64_t index = 0;
        Tick startTick = 0;
        Tick endTick = 0;

        /** Dynamic power over this interval; 0 without a probe. */
        double dynamicPowerMw = 0.0;

        /** StatRegistry::dumpJsonString() at capture time. */
        std::string statsJson;
    };

    IntervalStats(EventQueue &queue, StatRegistry &registry,
                  Config config);

    /**
     * Attach an energy probe: accumulated dynamic energy in pJ,
     * monotonically non-decreasing across the run (it is read before
     * and after each interval; the delta becomes the row's power).
     */
    void setEnergyProbe(std::function<double()> accumulated_pj)
    { energyProbe = std::move(accumulated_pj); }

    /** Schedule the first boundary. Call before the run loop. */
    void start();

    /**
     * Capture the tail partial interval (if any time elapsed since
     * the last boundary) and write the JSONL file when a path was
     * configured. Idempotent. fatal()s on I/O failure since the
     * user asked for the file explicitly.
     */
    void finalize();

    const std::vector<Row> &rows() const { return captured; }

    /** Write all rows as JSONL (one JSON object per line). */
    void writeJsonl(std::ostream &os) const;

  private:
    void onBoundary();
    void scheduleNext();
    void captureRow(Tick end);

    EventQueue &queue;
    StatRegistry &registry;
    Config config;
    std::function<double()> energyProbe;
    std::vector<Row> captured;
    Tick lastBoundary = 0;
    double lastEnergyPj = 0.0;
    bool started = false;
    bool finalized = false;
};

} // namespace salam::obs

#endif // SALAM_OBS_INTERVAL_STATS_HH

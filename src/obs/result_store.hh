/**
 * @file
 * ResultStore: an embedded, append-friendly, queryable on-disk store
 * for run results.
 *
 * Every run so far emitted write-only artifacts (RunReport JSONL,
 * stats JSON, critical-path profiles, host-telemetry blobs); a
 * design-space sweep produces hundreds of them and nothing could
 * list, compare, or regress across runs. The store makes results a
 * managed collection with no external database dependency:
 *
 *   <dir>/STORE.json              manifest: schema header plus one
 *                                 registration line per record file
 *                                 (appended on a writer's first flush)
 *   <dir>/records-<pid>-<n>.jsonl one record file per writer process
 *
 * Each record is one line: a small envelope carrying the query keys
 * (kind, bench, kernel, outcome, config hash, sweep point, timestamp)
 * around the payload JSON verbatim. Writers are renameless appenders:
 * a process opens its own record file, so concurrent processes never
 * contend, and within a process appends buffer in memory under a
 * cheap lock and flush once (per sweep / at exit) — record I/O never
 * happens under a lock on the simulation path.
 *
 * The read side (StoreReader) scans every record file, indexes by
 * config hash, and skips corrupt or truncated lines with a warning
 * instead of failing the load — a killed writer must not poison the
 * store. Unknown envelope or payload fields are preserved: the raw
 * line is kept verbatim, so round-tripping a record written by a
 * newer schema loses nothing (forward compatibility).
 *
 * `salam-query` (src/tools) is the human front end; the
 * findByConfigHash() index is the memoization hook a future
 * sweep-service daemon needs to answer "has this exact configuration
 * already been simulated?".
 */

#ifndef SALAM_OBS_RESULT_STORE_HH
#define SALAM_OBS_RESULT_STORE_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "json_reader.hh"

namespace salam::obs
{

struct RunReport;

/** One record on its way into the store. */
struct StoreRecord
{
    /**
     * Record class: "run", "profile", "sweep_point", "sweep",
     * "attempt" (one per retry of a sweep point), "injection" (one
     * per fired fault of a campaign).
     */
    std::string kind = "run";

    /** Producing bench/sweep, e.g. "fig13_gemm_pareto". */
    std::string bench;

    /** Kernel / run identifier, e.g. "gemm"; may be empty. */
    std::string kernel;

    /**
     * "ok" | "fault" | "deadlock" | "error" | "timeout" |
     * "cached" | "skipped" | "interrupted".
     */
    std::string outcome = "ok";

    /** RunReport config fingerprint; 0 = not applicable. */
    std::uint64_t configHash = 0;

    /**
     * Sweep point index, or -1 outside a sweep. Defaulted from the
     * current SimContext by ResultStore::append(), so records written
     * from a sweep worker carry a stable point identity.
     */
    long point = -1;

    /** Wall-clock nanoseconds since the Unix epoch at append time. */
    std::uint64_t timestampNs = 0;

    /** The payload: one self-contained JSON object, verbatim. */
    std::string json;
};

/**
 * Append side of the store. Thread-safe: append() serializes the
 * envelope outside any lock and enqueues under a cheap in-memory
 * lock; flush() moves the queue to this process's record file in one
 * append. The destructor flushes.
 */
class ResultStore
{
  public:
    static constexpr unsigned storeSchemaVersion = 1;

    /** Manifest filename inside a store directory. */
    static const char *manifestName();

    /**
     * Open @p dir for appending, creating the directory (and missing
     * parents) and the manifest as needed. Returns null and sets
     * @p error on failure.
     */
    static std::unique_ptr<ResultStore>
    open(const std::string &dir, std::string *error = nullptr);

    ~ResultStore();

    ResultStore(const ResultStore &) = delete;
    ResultStore &operator=(const ResultStore &) = delete;

    const std::string &dir() const { return storeDir; }

    /**
     * Queue @p rec for the next flush. Fills timestampNs (wall
     * clock) and, when rec.point is -1, the current SimContext's
     * sweep point index.
     */
    void append(StoreRecord rec);

    /** Envelope a RunReport as a kind="run" record and append it. */
    void appendRunReport(const RunReport &report,
                         const std::string &bench);

    /** Write queued records to the record file; false on I/O error. */
    bool flush();

    /** Records appended and not yet flushed. */
    std::size_t pendingRecords() const;

  private:
    ResultStore(std::string dir, std::string record_path);

    struct Impl;
    std::unique_ptr<Impl> impl;
    std::string storeDir;
};

/** One record loaded from a store. */
struct LoadedRecord
{
    /** Load order across the whole store (file order, line order). */
    std::uint64_t seq = 0;

    std::string kind;
    std::string bench;
    std::string kernel;
    std::string outcome;
    std::uint64_t configHash = 0;
    long point = -1;
    std::uint64_t timestampNs = 0;

    /** Payload JSON verbatim (unknown fields preserved). */
    std::string rawJson;

    /** Parsed payload. */
    JsonValue record;

    /** Source location, for diagnostics. */
    std::string file;
    unsigned line = 0;

    /** Top-level numeric payload field, or @p dflt. */
    double
    number(const std::string &key, double dflt = 0.0) const
    {
        return record.numberOr(key, dflt);
    }
};

/** Record filter; empty fields match everything. */
struct RecordFilter
{
    std::string kind;
    std::string bench;
    std::string kernel;
    std::string outcome;

    bool matches(const LoadedRecord &rec) const;
};

/**
 * Read side: load a store directory (or a bare JSONL file — plain
 * --report-out output ingests as kind="run" records) into memory and
 * answer queries. Corrupt lines are skipped with a warning.
 */
class StoreReader
{
  public:
    /**
     * Load @p path (a store directory or one .jsonl file). Warnings
     * (skipped lines, unreadable files) accumulate in warnings();
     * ok() is false only when nothing could be read at all.
     */
    static StoreReader load(const std::string &path);

    bool ok() const { return loadOk; }

    const std::string &error() const { return loadError; }

    const std::vector<std::string> &warnings() const
    { return loadWarnings; }

    const std::vector<LoadedRecord> &records() const { return recs; }

    /** Records matching @p filter, in seq order. */
    std::vector<const LoadedRecord *>
    select(const RecordFilter &filter) const;

    /**
     * The latest (highest-seq) record with @p hash, or null — the
     * sweep-service memoization lookup: a hit means this exact
     * configuration has already been simulated.
     */
    const LoadedRecord *findByConfigHash(std::uint64_t hash) const;

    /** All records with @p hash, in seq order. */
    std::vector<const LoadedRecord *>
    findAllByConfigHash(std::uint64_t hash) const;

  private:
    bool loadOk = false;
    std::string loadError;
    std::vector<std::string> loadWarnings;
    std::vector<LoadedRecord> recs;
};

/** Parse "0x..."/decimal config-hash text; 0 on malformed input. */
std::uint64_t parseConfigHash(const std::string &text);

} // namespace salam::obs

#endif // SALAM_OBS_RESULT_STORE_HH
